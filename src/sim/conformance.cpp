#include "sim/conformance.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "sim/vcd.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nshot::sim {

using netlist::NetId;

std::string ConformanceReport::summary() const {
  std::ostringstream out;
  out << runs << " run(s): " << external_transitions << " conformant external transitions, "
      << internal_toggles << " internal toggles, " << deadlocks << " deadlock(s), "
      << violations.size() << " violation(s)";
  for (std::size_t i = 0; i < std::min<std::size_t>(violations.size(), 5); ++i)
    out << "\n  [seed " << violations[i].seed << " t=" << violations[i].time << "] "
        << violations[i].description;
  return out.str();
}

std::vector<std::pair<NetId, bool>> initial_net_values(const sg::StateGraph& spec,
                                                       const netlist::Netlist& circuit) {
  std::vector<std::pair<NetId, bool>> values;
  for (int x = 0; x < spec.num_signals(); ++x) {
    const bool v = spec.value(spec.initial(), x);
    if (const auto q = circuit.find_net(spec.signal(x).name)) values.emplace_back(*q, v);
    if (const auto qb = circuit.find_net(spec.signal(x).name + "_b"))
      values.emplace_back(*qb, !v);
  }
  if (const auto c0 = circuit.find_net("const0")) values.emplace_back(*c0, false);
  if (const auto c1 = circuit.find_net("const1")) values.emplace_back(*c1, true);
  return values;
}

namespace {

/// One closed-loop run; appends to the report.  When `recorder` is given,
/// every net change (and the initial values) are captured for VCD export.
void run_once(const sg::StateGraph& spec, const netlist::Netlist& circuit,
              const ConformanceOptions& options, std::uint64_t seed, ConformanceReport& report,
              VcdRecorder* recorder = nullptr) {
  const gatelib::GateLibrary& lib = gatelib::GateLibrary::standard();
  Simulator sim(circuit, lib, SimulatorOptions{seed, /*randomize_delays=*/true});
  Rng rng(seed ^ 0x5eedfeedULL);

  // Signal <-> net maps (by name, the repository-wide convention).
  std::vector<NetId> signal_net(static_cast<std::size_t>(spec.num_signals()), -1);
  std::vector<int> net_signal(static_cast<std::size_t>(circuit.num_nets()), -1);
  for (int x = 0; x < spec.num_signals(); ++x) {
    const auto net = circuit.find_net(spec.signal(x).name);
    NSHOT_REQUIRE(net.has_value(), "circuit has no net for signal " + spec.signal(x).name);
    signal_net[static_cast<std::size_t>(x)] = *net;
    net_signal[static_cast<std::size_t>(*net)] = x;
  }

  sg::StateId state = spec.initial();
  long run_transitions = 0;
  bool failed = false;

  NetObserver vcd_observer = recorder ? recorder->observer() : NetObserver{};
  sim.set_observer([&, vcd_observer](NetId net, bool value, double time) {
    if (vcd_observer) vcd_observer(net, value, time);
    const int x = net_signal[static_cast<std::size_t>(net)];
    if (x < 0 || failed) return;  // internal net, or already failing
    const sg::TransitionLabel label{x, value};
    const auto next = spec.successor(state, label);
    if (next) {
      state = *next;
      ++run_transitions;
      return;
    }
    failed = true;
    report.violations.push_back(ConformanceViolation{
        seed, time,
        "unexpected transition " + spec.label_name(label) + " in state " +
            spec.state_name(state) + (spec.is_input(x) ? " (environment bug)" : " (hazard)")});
  });

  sim.initialize(initial_net_values(spec, circuit));
  if (recorder) recorder->capture_initial(sim);

  struct InputDecision {
    sg::TransitionLabel label;
    double time;
  };
  std::optional<InputDecision> decision;

  while (!failed && run_transitions < options.max_transitions &&
         sim.now() < options.time_limit) {
    // (Re)validate or make the environment's next input decision.
    if (decision && !spec.enabled(state, decision->label)) decision.reset();
    if (!decision) {
      std::vector<sg::TransitionLabel> choices;
      for (const sg::TransitionLabel& label : spec.enabled_labels(state))
        if (spec.is_input(label.signal)) choices.push_back(label);
      if (!choices.empty()) {
        const sg::TransitionLabel pick = choices[rng.next_below(choices.size())];
        decision = InputDecision{
            pick, sim.now() + rng.next_double(options.input_delay_min, options.input_delay_max)};
      }
    }

    // Fundamental mode: drain all circuit activity before the input fires.
    if (sim.has_pending_events() &&
        (!decision || options.fundamental_mode || sim.next_event_time() <= decision->time)) {
      sim.step();
      continue;
    }
    if (decision) {
      if (options.fundamental_mode && decision->time < sim.now())
        decision->time = sim.now();  // the circuit outlasted the planned instant
      sim.set_input(signal_net[static_cast<std::size_t>(decision->label.signal)],
                    decision->label.rising, decision->time);
      // Commit the input immediately (it is the earliest pending event) so
      // the spec state advances before the next decision is made.
      sim.step();
      decision.reset();
      continue;
    }

    // No circuit events and no possible input: quiescent or deadlocked.
    bool output_pending = false;
    for (const sg::TransitionLabel& label : spec.enabled_labels(state))
      if (!spec.is_input(label.signal)) output_pending = true;
    if (output_pending) {
      ++report.deadlocks;
      report.violations.push_back(ConformanceViolation{
          seed, sim.now(),
          "deadlock: circuit quiescent but spec state " + spec.state_name(state) +
              " still enables a non-input transition"});
    }
    break;
  }

  report.external_transitions += run_transitions;
  std::vector<NetId> excluded;
  for (int x = 0; x < spec.num_signals(); ++x) {
    excluded.push_back(signal_net[static_cast<std::size_t>(x)]);
    if (const auto qb = circuit.find_net(spec.signal(x).name + "_b")) excluded.push_back(*qb);
  }
  report.internal_toggles += sim.total_toggles_excluding(excluded);
  report.absorbed_pulses += sim.mhs_absorbed_pulses();
  report.simulated_time += sim.now();
}

}  // namespace

ConformanceReport check_conformance(const sg::StateGraph& spec, const netlist::Netlist& circuit,
                                    const ConformanceOptions& options) {
  ConformanceReport report;
  report.runs = options.runs;
  for (int r = 0; r < options.runs; ++r)
    run_once(spec, circuit, options, options.seed + static_cast<std::uint64_t>(r) * 0x9e37ULL,
             report);
  return report;
}

TracedRun record_vcd_trace(const sg::StateGraph& spec, const netlist::Netlist& circuit,
                           std::uint64_t seed, int max_transitions) {
  VcdRecorder recorder(circuit);
  ConformanceOptions options;
  options.runs = 1;
  options.seed = seed;
  options.max_transitions = max_transitions;
  TracedRun traced;
  traced.report.runs = 1;
  run_once(spec, circuit, options, seed, traced.report, &recorder);
  traced.vcd = recorder.write();
  return traced;
}

}  // namespace nshot::sim
