// Ablation: WHY the acknowledgement scheme exists (Section IV-C).
//
// The enable-set / enable-reset gating holds new excitations off until the
// opposite SOP has settled, preventing "trespassing pulses" from a previous
// traversal from re-firing the flip-flop.  This bench removes the gating
// (ties both enables to 1) and re-runs the closed-loop conformance sweep:
// the stripped circuits misfire, the full N-SHOT circuits do not.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "netlist/transform.hpp"
#include "bench_suite/benchmarks.hpp"
#include "nshot/synthesis.hpp"
#include "sim/conformance.hpp"

namespace {

using namespace nshot;
using gatelib::GateType;

netlist::Netlist strip_acknowledgement(const netlist::Netlist& source) {
  return netlist::transform_netlist(
      source, [](const netlist::Gate& gate, netlist::Netlist& nl)
                  -> std::optional<netlist::Gate> {
        if (gate.type != GateType::kMhsFlipFlop) return gate;
        netlist::Gate stripped = gate;
        const netlist::NetId one = netlist::const_one(nl);
        stripped.inputs[2] = one;  // enable_set
        stripped.inputs[3] = one;  // enable_reset
        return stripped;
      });
}

void print_ablation() {
  std::printf("Ablation: N-SHOT with the acknowledgement scheme removed\n");
  std::printf("(both MHS enables tied high; everything else identical)\n\n");
  std::printf("%-15s | %10s %9s | %10s %9s\n", "circuit", "full:viol", "deadlock",
              "no-ack:viol", "deadlock");
  int stripped_failures = 0, full_failures = 0;
  for (const char* name : {"chu133", "chu150", "converta", "ebergen", "full", "hazard",
                           "hybridf", "qr42", "vbe5b", "pmcm1", "pmcm2", "combuf1", "combuf2",
                           "read-write", "sing2dual-inp"}) {
    const sg::StateGraph g = bench_suite::build_benchmark(name);
    const core::SynthesisResult result = core::synthesize(g);
    const netlist::Netlist stripped = strip_acknowledgement(result.circuit);

    sim::ConformanceOptions options;
    options.runs = 25;
    options.max_transitions = 150;
    options.seed = 99;
    options.input_delay_min = 0.05;  // a fast environment widens the
    options.input_delay_max = 4.0;   // trespassing-pulse window
    const sim::ConformanceReport full = sim::check_conformance(g, result.circuit, options);
    const sim::ConformanceReport noack = sim::check_conformance(g, stripped, options);
    std::printf("%-15s | %10zu %9d | %10zu %9d\n", name, full.violations.size(), full.deadlocks,
                noack.violations.size(), noack.deadlocks);
    full_failures += full.clean() ? 0 : 1;
    stripped_failures += noack.clean() ? 0 : 1;
  }
  std::printf(
      "\ncircuits failing: full N-SHOT %d, acknowledgement removed %d.\n"
      "Trespassing pulses (Section IV-C) re-fire the flip-flop once the\n"
      "gating that implements Eq. 1's timing contract is gone.  Note the\n"
      "asymmetry with the paper's own finding: when set/reset SOP depths are\n"
      "balanced, the MAX of Eq. 1 is negative and the reset path + flip-flop\n"
      "response alone provide the settle margin — only the circuits with the\n"
      "largest set/reset skew (here converta, 2-level vs 1-level SOPs)\n"
      "actually misfire without the gating.\n",
      full_failures, stripped_failures);
}

void bm_strip(benchmark::State& state) {
  const core::SynthesisResult result = core::synthesize(bench_suite::build_benchmark("pmcm1"));
  for (auto _ : state) {
    const netlist::Netlist stripped = strip_acknowledgement(result.circuit);
    benchmark::DoNotOptimize(stripped.num_gates());
  }
}
BENCHMARK(bm_strip);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
