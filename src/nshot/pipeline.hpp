// nshot::Pipeline — the one-call facade over the full N-SHOT flow:
//
//   STG (.g text)  --reachability-->  SG  --synthesize-->  netlist
//        --check_conformance-->  closed-loop verification
//        --run_stress-->        fault battery + margins (optional)
//
// plus an owned obs::Session so every run is traced and reportable
// without the caller touching the observability layer.  The shared
// nshot::RunConfig (seed / jobs / grain / reference_kernels) is applied
// once here and propagated to every stage's options, replacing the
// per-stage copies callers previously had to keep in sync.
//
// The facade adds no policy of its own: each stage is the same public
// function the examples called directly, in the same order, with the
// same defaults, so porting a caller to Pipeline changes no results.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "faults/stress.hpp"
#include "nshot/synthesis.hpp"
#include "obs/obs.hpp"
#include "sg/state_graph.hpp"
#include "sim/conformance.hpp"
#include "util/error.hpp"
#include "util/run_config.hpp"

namespace nshot {

struct PipelineOptions {
  /// Shared run knobs, applied to synthesis/conformance/stress before a
  /// run (overriding whatever those sub-structs carry).
  RunConfig run;
  core::SynthesisOptions synthesis;
  sim::ConformanceOptions conformance;
  faults::StressOptions stress;

  /// Closed-loop random-delay conformance check after synthesis.
  bool verify_conformance = true;
  /// Fault battery + margin sweep (slow; off by default).
  bool stress_test = false;
  /// Own an obs::Session for the Pipeline's lifetime.  When false (or when
  /// a session already exists elsewhere) the pipeline runs uninstrumented
  /// and trace_json()/report() return empty results.
  bool collect_observability = true;
  /// Report label; the first run's benchmark name when empty.
  std::string label;
};

/// Everything one run produced.  Stage results keep their native types so
/// existing consumers (describe(), stress_report_json(), ...) work as-is.
struct PipelineRun {
  std::string benchmark;
  sg::StateGraph graph;  // the verified-against state graph
  core::SynthesisResult synthesis;
  sim::ConformanceReport conformance;  // default unless conformance_ran
  bool conformance_ran = false;
  faults::StressReport stress;  // default unless stress_ran
  bool stress_ran = false;
  /// Graceful-degradation record: stages that raised kKernelMismatch
  /// (verify_kernels divergence) and were re-run on the reference kernels.
  /// Empty on a clean run.  Each entry is "<stage>: <mismatch detail>".
  std::vector<std::string> kernel_fallbacks;

  /// Synthesized, conformant (when checked) and fault-clean (when stressed).
  bool ok() const {
    return (!conformance_ran || conformance.clean()) && (!stress_ran || stress.baseline_clean);
  }
};

/// The checked counterpart of PipelineRun: either a completed run, or a
/// classified failure with enough context to diagnose it without a
/// debugger — which stage failed, the rendered context chain, and the
/// stages that DID complete (the partial diagnostics a batch report
/// keeps).  run_checked never throws for circuit- or budget-shaped
/// failures; escaping exceptions indicate a harness bug.
struct RunOutcome {
  std::optional<PipelineRun> run;  // engaged iff the pipeline completed
  ErrorCode code = ErrorCode::kInternal;  // meaningful when !ok()
  std::string stage;    // failing stage: parse|reachability|synthesize|conformance|stress
  std::string message;  // rendered what() including the context chain
  std::vector<std::string> stages_completed;

  bool ok() const { return run.has_value(); }
};

class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options = {});
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Synthesize and verify an already-built state graph.
  /// Throws core::SynthesisError when the SG is not implementable.
  PipelineRun run(const sg::StateGraph& sg);

  /// Parse `.g` STG text, build the reachability state graph, then run().
  PipelineRun run_g(const std::string& g_text);

  /// Checked variants: every failure comes back as a classified RunOutcome
  /// instead of an exception, and the RunConfig deadline knobs are
  /// enforced — each stage runs under a CancelToken budgeted to
  /// min(stage_deadline_ms, remaining run deadline_ms), with a Watchdog
  /// thread firing the token on wall-clock overrun so even non-polling
  /// work is cancelled at its next checkpoint.  A kKernelMismatch from a
  /// verify_kernels stage is degraded (reference-kernel retry, recorded in
  /// PipelineRun::kernel_fallbacks) before it is ever reported as failure.
  RunOutcome run_checked(const sg::StateGraph& sg);
  RunOutcome run_checked_g(const std::string& g_text);

  const PipelineOptions& options() const { return options_; }

  /// The owned session; nullptr when collect_observability was false or
  /// another session was already active at construction.
  obs::Session* session() { return session_.get(); }

  /// Exporter pass-throughs; empty-session results when uninstrumented.
  obs::RunReport report() const;
  std::string report_json(const obs::ReportOptions& options = {}) const;
  std::string trace_json(const obs::TraceOptions& options = {}) const;

 private:
  RunOutcome run_checked_impl(const sg::StateGraph* graph, const std::string* g_text);

  PipelineOptions options_;
  std::unique_ptr<obs::Session> session_;
};

}  // namespace nshot
