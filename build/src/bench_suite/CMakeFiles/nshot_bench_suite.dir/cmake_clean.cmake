file(REMOVE_RECURSE
  "CMakeFiles/nshot_bench_suite.dir/benchmarks.cpp.o"
  "CMakeFiles/nshot_bench_suite.dir/benchmarks.cpp.o.d"
  "CMakeFiles/nshot_bench_suite.dir/generators.cpp.o"
  "CMakeFiles/nshot_bench_suite.dir/generators.cpp.o.d"
  "libnshot_bench_suite.a"
  "libnshot_bench_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nshot_bench_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
