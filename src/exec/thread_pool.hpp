// Deterministic parallel execution engine for the repository's sweeps.
//
// Every sweep in this codebase — Monte Carlo conformance trials, the fault
// battery, adversarial-search restarts, per-output exact minimization —
// is a bag of independent work items that are each reproducible from their
// index alone (trial r of base seed s depends only on run_seed(s, r); see
// util/rng.hpp).  This module exploits that: a work-stealing thread pool
// executes the items in whatever order the hardware likes, while the
// combinators below collect results BY INDEX, so the merged output is
// byte-identical to a serial run regardless of the worker count.
//
// Contract every caller relies on:
//  * parallel_for(n, body) calls body(i) exactly once for every i in
//    [0, n); the calling thread participates, so progress never depends on
//    pool workers being available (nested parallel sections cannot
//    deadlock — an inner section simply degrades toward serial when the
//    pool is saturated).
//  * parallel_map / parallel_reduce return results ordered (folded) by
//    index — determinism lives here, not in execution order.
//  * jobs <= 1 (or n <= 1) short-circuits to a plain serial loop on the
//    calling thread: no pool is created, no synchronization runs, and the
//    result is the reference output the parallel paths are tested against.
//  * If bodies throw, every item still runs; the exception for the LOWEST
//    index is rethrown after the loop (matching which failure a serial
//    sweep surfaces first).
//  * EXCEPTION to the above: when the thread-current exec::CancelToken
//    fires (deadline or explicit cancel — see exec/cancel.hpp), remaining
//    items are skipped and Error(kDeadlineExceeded) is rethrown; partial
//    results written by completed items remain valid, matching the serial
//    path where checkpoint() throws out of the loop.
#pragma once

#include <cstdlib>
#include <exception>
#include <functional>
#include <vector>

namespace nshot::exec {

/// Number of hardware threads, at least 1.
int hardware_jobs();

/// Process-wide default worker count used when a `jobs` option is 0:
/// the last set_default_jobs() value, else the NSHOT_JOBS environment
/// variable, else 1 (serial — the library never goes parallel unless a
/// caller opts in, so seed-era entry points keep their exact behaviour).
int default_jobs();
void set_default_jobs(int jobs);

/// Resolve a per-call `jobs` option: values >= 1 are taken as-is, 0 maps
/// to default_jobs().
int resolve_jobs(int jobs);

/// Cost-model admission threshold for parallel_for/parallel_for_chunks, in
/// microseconds of estimated REMAINING work: the calling thread always runs
/// the first chunk inline and times it; when the projected cost of the
/// remaining chunks is below this threshold the loop stays serial — worker
/// wakeups and steal traffic cost more than they save on small circuits
/// (BENCH_parallel's converta regression: 2.5 ms serial vs 11.9 ms at
/// --jobs 8).  Results are byte-identical either way (the by-index merge
/// contract), only the schedule changes.  Default 4000 µs; the
/// NSHOT_PARALLEL_MIN_US environment variable overrides it, and 0 disables
/// admission (always go parallel), which the sanitizer CI uses to keep the
/// pool itself exercised.
double parallel_admission_us();
void set_parallel_admission_us(double us);

/// Work-stealing thread pool.  Each worker owns a deque; submission
/// round-robins across the deques and idle workers steal from the back of
/// their peers', so an uneven bag of trials (one slow oscillating run,
/// many fast ones) still load-balances.  Tasks must not block on other
/// tasks; the parallel_for combinator obeys this by making the caller a
/// full participant.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const;
  void submit(std::function<void()> task);

  /// The process-wide pool backing parallel_for.  Created on first
  /// parallel use; serial call sites never touch it.
  static ThreadPool& shared();

 private:
  struct Impl;
  Impl* impl_;
};

/// Run body(0) ... body(n-1), each exactly once, using up to `jobs`
/// threads (0 = default_jobs()).  Blocks until all items completed.
/// `grain` >= 1 batches that many consecutive indices into one scheduled
/// task — sub-millisecond items (a single conformance trial) amortize the
/// per-task synchronization over `grain` items while the by-index result
/// contract is unchanged.  `grain` <= 0 picks a batch size automatically
/// from n and the worker count.
void parallel_for(int n, const std::function<void(int)>& body, int jobs = 0, int grain = 1);

/// Chunked variant: invoke chunk(begin, end) over disjoint ranges covering
/// [0, n), each range at most `grain` items (`grain` <= 0 = automatic).
/// This is the reuse primitive for expensive per-thread state: a chunk
/// body can construct one scratch object (e.g. a resettable Simulator) and
/// run `end - begin` items through it.  Chunk bodies must still produce
/// per-item results from the item index alone — the serial path (jobs <= 1)
/// runs ONE chunk covering [0, n), so chunk boundaries are not part of the
/// determinism contract.  If chunk bodies throw, every chunk still runs
/// and the exception of the lowest `begin` is rethrown.
void parallel_for_chunks(int n, int grain, const std::function<void(int, int)>& chunk,
                         int jobs = 0);

/// Grain for trial sweeps whose chunks carry heavy per-chunk state (a
/// compiled simulator, a 64-lane TrialBatch): one chunk per worker,
/// capped at the physical thread count — the automatic grain's
/// 4 chunks/worker rebuilds that state 4x and leaves the 64-lane batch
/// engine running quarter-full groups, and chunks beyond the hardware
/// concurrency only fragment it further.  Chunk boundaries stay a
/// scheduling detail (results merge by index).
///
/// `lanes` > 1 rounds the grain up to whole lane groups so a chunked
/// sweep feeding a lane-batched engine (TrialBatch::kLanes) never splits
/// full groups across chunks: ceil-division alone can hand every worker
/// a 48-trial chunk and quietly run the 64-lane engine at 75% occupancy
/// on each one.
int batch_grain(int n, int jobs = 0, int lanes = 1);

/// Map i -> fn(i) into a vector ordered by index.  T must be default
/// constructible and movable.
template <typename T, typename Fn>
std::vector<T> parallel_map(int n, Fn&& fn, int jobs = 0, int grain = 1) {
  std::vector<T> results(static_cast<std::size_t>(n > 0 ? n : 0));
  parallel_for(
      n, [&](int i) { results[static_cast<std::size_t>(i)] = fn(i); }, jobs, grain);
  return results;
}

/// Left fold of fn(0) ... fn(n-1) into `init` IN INDEX ORDER — the
/// reduction a serial loop would compute, whatever order the map ran in.
template <typename T, typename U, typename Fn, typename Combine>
T parallel_reduce(int n, T init, Fn&& fn, Combine&& combine, int jobs = 0, int grain = 1) {
  std::vector<U> mapped = parallel_map<U>(n, std::forward<Fn>(fn), jobs, grain);
  T acc = std::move(init);
  for (U& item : mapped) acc = combine(std::move(acc), std::move(item));
  return acc;
}

}  // namespace nshot::exec
