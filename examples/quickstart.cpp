// Quickstart: the complete N-SHOT flow on the paper's Figure 1 example —
// an OR-causality cell (output c fires when the FIRST of two concurrent
// inputs arrives), the canonical non-distributive behaviour that most
// prior gate-level methods cannot implement.
//
//   1. build the state graph through the public API,
//   2. check the Theorem 2 preconditions,
//   3. inspect regions (ER/QR/trigger, Definitions 5-7),
//   4. run the nshot::Pipeline facade: synthesis (Figure 3) plus
//      closed-loop validation under random gate delays in one call,
//   5. print the per-pass run report the pipeline's session collected.
#include <cstdio>

#include "bench_suite/generators.hpp"
#include "nshot/pipeline.hpp"
#include "sg/properties.hpp"
#include "sg/regions.hpp"

int main() {
  using namespace nshot;

  // 1. The Figure-1 OR cell: inputs a, b rise concurrently; output c fires
  // on the first arrival; input d acknowledges and the cycle reverses.
  const sg::StateGraph cell = bench_suite::or_causality_cell("fig1_or_cell", "");
  std::printf("state graph '%s': %d states, %d signals\n", cell.name().c_str(),
              cell.num_states(), cell.num_signals());

  // 2. Theorem 2 preconditions: consistency, semi-modularity, CSC.
  const sg::PropertyReport report = sg::check_implementability(cell);
  std::printf("implementability: %s\n", report.summary().c_str());
  std::printf("distributive: %s  (detonant states make this a case the\n"
              "  single-cube / monotonous-cover methods reject)\n",
              sg::is_distributive(cell) ? "yes" : "no");

  // 3. Regions of the output signal (Figure 1's ER/QR annotation).
  const sg::SignalId c = *cell.find_signal("c");
  std::printf("\n%s", sg::compute_regions(cell, c).to_string(cell).c_str());

  // 4. The facade: conventional two-level minimization, trigger check,
  //    Eq. 1, architecture mapping, then closed-loop validation — many
  //    random delay assignments; internal SOP nets may glitch, observable
  //    signals must not.
  PipelineOptions options;
  options.conformance.runs = 20;
  options.conformance.max_transitions = 150;
  Pipeline pipeline(std::move(options));

  // One Request is the whole unit of work: the submit() surface the batch
  // runner and the serve protocol use, here with an in-memory graph.
  Request request;
  request.id = "fig1";
  request.graph = std::make_shared<sg::StateGraph>(cell);
  const Response response = pipeline.submit(request);
  if (!response.outcome.ok()) {
    std::fprintf(stderr, "pipeline failed at stage %s: %s\n",
                 response.outcome.stage.c_str(), response.outcome.message.c_str());
    return 1;
  }
  const PipelineRun& run = *response.outcome.run;

  std::printf("\n%s", core::describe(cell, run.synthesis).c_str());
  std::printf("\nminimized joint set/reset cover (rows: input literals | outputs):\n%s",
              run.synthesis.cover.to_string().c_str());
  std::printf("\nsynthesized N-SHOT netlist (Figure 3 architecture):\n%s",
              run.synthesis.circuit.to_string().c_str());
  std::printf("\nconformance: %s\n", run.conformance.summary().c_str());
  std::printf("=> circuit is externally hazard-free%s\n",
              run.conformance.internal_toggles > run.conformance.external_transitions
                  ? " (while the SOP core glitched internally)"
                  : "");

  // 5. The observability session the pipeline owned: what each pass cost.
  const obs::RunReport timing = pipeline.report();
  std::printf("\nper-pass breakdown (%.1f ms total):\n", timing.total_ms);
  for (const obs::PassTime& pass : timing.passes)
    std::printf("  %-14s %8.2f ms\n", pass.name.c_str(), pass.wall_ms);
  return run.ok() ? 0 : 1;
}
