// Parametric pipeline/broadcast controller demo: generate an N-way
// controller STG of configurable width (the shape of the paper's large
// bus benchmarks), run it through the nshot::Pipeline facade —
// synthesis plus closed-loop stress in one call — and report the
// internal-vs-external hazard activity that motivates the architecture.
//
//   pipeline_controller [width] [chain_length] [runs]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_suite/generators.hpp"
#include "nshot/pipeline.hpp"
#include "sg/properties.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) try {
  using namespace nshot;
  const int width = argc > 1 ? parse_int(argv[1], 1, 64, "width") : 4;
  const int chain_length = argc > 2 ? parse_int(argv[2], 1, 64, "chain_length") : 2;
  const int runs = argc > 3 ? parse_int(argv[3], 0, 1'000'000, "runs") : 16;

  // Build: master input m releases `width` chains of `chain_length`
  // signals each; the first chain signal is an input (a request), the
  // rest are outputs (grant/done stages).
  std::vector<std::vector<std::string>> chains;
  std::vector<std::string> inputs, outputs;
  for (int c = 0; c < width; ++c) {
    std::vector<std::string> chain;
    for (int k = 0; k < chain_length; ++k) {
      const std::string name = std::string(1, static_cast<char>('a' + c)) + std::to_string(k);
      chain.push_back(name);
      (k == 0 ? inputs : outputs).push_back(name);
    }
    chains.push_back(std::move(chain));
  }
  const std::string g_text = bench_suite::parallel_chains_g(
      "pipeline", "m", /*master_is_input=*/true, chains, inputs, outputs);

  // The facade parses the .g text, builds the reachability state graph,
  // synthesizes and stress-verifies it in one call.
  PipelineOptions options;
  options.conformance.runs = runs;
  options.conformance.max_transitions = 60 * width;
  Pipeline pipeline(std::move(options));

  // The unified request surface: inline .g text plus the request id that
  // names the run in reports — the same Request shape a serve client
  // would put on the wire.
  Request request;
  request.id = "pipeline-controller";
  request.g_text = g_text;
  const Response response = pipeline.submit(request);
  if (!response.outcome.ok()) {
    std::fprintf(stderr, "pipeline failed at stage %s: %s\n",
                 response.outcome.stage.c_str(), response.outcome.message.c_str());
    return 1;
  }
  const PipelineRun& run = *response.outcome.run;

  std::printf("pipeline controller: width %d, chain length %d -> %d states, %d signals\n",
              width, chain_length, run.graph.num_states(), run.graph.num_signals());
  std::printf("preconditions: %s\n", sg::check_implementability(run.graph).summary().c_str());
  std::printf("%s", core::describe(run.graph, run.synthesis).c_str());

  std::printf("\nstress result over %d randomized-delay runs:\n", runs);
  std::printf("  observable transitions (all spec-conformant): %ld\n",
              run.conformance.external_transitions);
  std::printf("  internal net toggles (SOP core may glitch):   %ld\n",
              run.conformance.internal_toggles);
  std::printf("  violations: %zu, deadlocks: %d\n", run.conformance.violations.size(),
              run.conformance.deadlocks);
  std::printf("=> %s\n", run.ok() ? "externally hazard-free" : "FAILED");
  return run.ok() ? 0 : 1;
}
catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
