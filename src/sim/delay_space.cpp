#include "sim/delay_space.hpp"

namespace nshot::sim {

using gatelib::GateType;
using netlist::Gate;
using netlist::GateId;

DelaySpace::DelaySpace(const netlist::Netlist& netlist, const gatelib::GateLibrary& lib) {
  const std::size_t n = static_cast<std::size_t>(netlist.num_gates());
  lo_.resize(n);
  hi_.resize(n);
  fixed_.resize(n);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const Gate& gate = netlist.gate(g);
    const std::size_t i = static_cast<std::size_t>(g);
    if (gate.type == GateType::kDelayLine || gate.type == GateType::kInertialDelay) {
      lo_[i] = hi_[i] = gate.explicit_delay;
      fixed_[i] = true;
    } else if (gate.type == GateType::kMhsFlipFlop) {
      lo_[i] = hi_[i] = lib.mhs_response();
      fixed_[i] = true;
    } else {
      const gatelib::GateTiming timing = lib.timing(gate.type, static_cast<int>(gate.inputs.size()));
      lo_[i] = timing.min_delay;
      hi_[i] = timing.max_delay;
      fixed_[i] = false;
    }
  }
}

std::vector<double> DelaySpace::nominal_vector() const {
  std::vector<double> delays(lo_.size());
  for (std::size_t g = 0; g < lo_.size(); ++g) delays[g] = 0.5 * (lo_[g] + hi_[g]);
  return delays;
}

std::vector<double> DelaySpace::sample(Rng& rng) const {
  std::vector<double> delays;
  sample_into(rng, delays);
  return delays;
}

void DelaySpace::sample_into(Rng& rng, std::vector<double>& out) const {
  out.resize(lo_.size());
  for (std::size_t g = 0; g < lo_.size(); ++g)
    out[g] = fixed_[g] ? lo_[g] : rng.next_double(lo_[g], hi_[g]);
}

}  // namespace nshot::sim
