# Empty compiler generated dependencies file for nshot_bench_suite.
# This may be replaced when dependencies are built.
