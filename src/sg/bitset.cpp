#include "sg/bitset.hpp"

#include <algorithm>

#include "exec/thread_pool.hpp"

namespace nshot::sg {
namespace {

/// Dispatch `body(state_begin, state_end)` over 64-aligned state ranges.
/// Each range only writes plane words [state_begin/64, state_end/64), so
/// ranges are write-disjoint and the planes come out byte-identical at any
/// worker count.  jobs <= 1 (or a graph below the admission threshold)
/// degrades to one serial call over the full range.
void for_state_word_ranges(int num_states, int jobs,
                           const std::function<void(StateId, StateId)>& body) {
  const int words = (num_states + 63) / 64;
  if (jobs <= 1 || words <= 1) {
    body(0, num_states);
    return;
  }
  exec::parallel_for_chunks(
      words, /*grain=*/0,
      [&](int wbegin, int wend) {
        body(static_cast<StateId>(wbegin) * 64,
             std::min(static_cast<StateId>(wend) * 64, num_states));
      },
      jobs);
}

}  // namespace

void StateSet::clear() { std::fill(words_.begin(), words_.end(), 0); }

StateSet& StateSet::operator&=(const StateSet& other) {
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  return *this;
}

StateSet& StateSet::operator|=(const StateSet& other) {
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  return *this;
}

StateSet& StateSet::subtract(const StateSet& other) {
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= ~other.words_[w];
  return *this;
}

void StateSet::complement() {
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] = ~words_[w];
  const std::size_t tail = universe_ & 63;
  if (!words_.empty() && tail != 0) words_.back() &= (1ULL << tail) - 1ULL;
}

std::size_t StateSet::count() const {
  std::size_t total = 0;
  for (const std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool StateSet::empty() const {
  for (const std::uint64_t w : words_)
    if (w) return false;
  return true;
}

bool StateSet::intersects(const StateSet& other) const {
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (words_[w] & other.words_[w]) return true;
  return false;
}

bool StateSet::contains_all(const StateSet& other) const {
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (other.words_[w] & ~words_[w]) return false;
  return true;
}

std::vector<StateId> StateSet::to_vector() const {
  std::vector<StateId> members;
  members.reserve(count());
  for_each([&members](StateId s) { members.push_back(s); });
  return members;
}

StateSet value_set(const StateGraph& sg, SignalId x, int jobs) {
  StateSet plane(static_cast<std::size_t>(sg.num_states()));
  for_state_word_ranges(sg.num_states(), jobs, [&](StateId begin, StateId end) {
    for (StateId s = begin; s < end; ++s)
      if (sg.value(s, x)) plane.insert(s);
  });
  return plane;
}

StateSet excited_set(const StateGraph& sg, SignalId x, int jobs) {
  StateSet plane(static_cast<std::size_t>(sg.num_states()));
  for_state_word_ranges(sg.num_states(), jobs, [&](StateId begin, StateId end) {
    for (StateId s = begin; s < end; ++s)
      for (const Edge& e : sg.out_edges(s))
        if (e.label.signal == x) {
          plane.insert(s);
          break;
        }
  });
  return plane;
}

std::vector<StateSet> all_value_sets(const StateGraph& sg, int jobs) {
  std::vector<StateSet> planes(static_cast<std::size_t>(sg.num_signals()),
                               StateSet(static_cast<std::size_t>(sg.num_states())));
  for_state_word_ranges(sg.num_states(), jobs, [&](StateId begin, StateId end) {
    for (StateId s = begin; s < end; ++s) {
      std::uint64_t code = sg.code(s);
      while (code) {
        const int x = std::countr_zero(code);
        code &= code - 1;
        if (x < sg.num_signals()) planes[static_cast<std::size_t>(x)].insert(s);
      }
    }
  });
  return planes;
}

std::vector<StateSet> all_excited_sets(const StateGraph& sg, int jobs) {
  std::vector<StateSet> planes(static_cast<std::size_t>(sg.num_signals()),
                               StateSet(static_cast<std::size_t>(sg.num_states())));
  for_state_word_ranges(sg.num_states(), jobs, [&](StateId begin, StateId end) {
    for (StateId s = begin; s < end; ++s)
      for (const Edge& e : sg.out_edges(s))
        planes[static_cast<std::size_t>(e.label.signal)].insert(s);
  });
  return planes;
}

}  // namespace nshot::sg
