// Cooperative cancellation and deadlines for the long-running passes.
//
// A CancelToken is a shared handle to one cancellation flag plus an
// optional wall-clock deadline.  Work is cancelled cooperatively: the
// parallel engine checks the thread-current token at chunk boundaries, and
// the long serial loops (reachability BFS, region flood, exact prime
// generation, adversarial climbs) call exec::checkpoint() at iteration
// boundaries.  A fired token makes the next checkpoint throw
// nshot::Error(kDeadlineExceeded), which unwinds to the stage boundary
// where Pipeline::run_checked converts it into a clean classified result
// with partial diagnostics — no thread is ever killed, no invariant is
// left broken mid-update.
//
// Install a token for a region of work with CancelScope (RAII, per
// thread).  exec::ThreadPool::submit captures the submitting thread's
// current token and re-installs it on the worker, so a parallel_for under
// a deadline is covered on every participating thread, exactly like the
// obs span context.
//
// Checkpoints are cheap: no token installed -> one thread_local load; a
// token without a deadline -> one relaxed atomic load; deadlines read the
// steady clock only every kDeadlineStride-th call (see checkpoint()).
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <string>

namespace nshot::exec {

class CancelToken {
 public:
  /// A token that never fires (useful as a default).
  CancelToken();

  /// A token that fires `budget_ms` from now (<= 0 = no deadline).
  static CancelToken with_deadline(double budget_ms);

  /// Fire the token.  The first caller's reason wins; later calls no-op.
  void cancel(const std::string& reason) const;

  /// True once cancel() was called or the deadline passed.
  bool cancelled() const;

  /// Why the token fired; empty while live.
  std::string reason() const;

  /// Milliseconds until the deadline (infinity when none, 0 when passed).
  double remaining_ms() const;

  /// Throw Error(kDeadlineExceeded) when fired; otherwise return.
  void checkpoint() const;

  /// Tokens compare by identity (shared state).
  bool same_as(const CancelToken& other) const { return state_ == other.state_; }

  /// Shared cancellation state — defined in cancel.cpp; public so the
  /// thread-local plumbing there can name it, opaque everywhere else.
  struct State;

 private:
  friend class CancelScope;
  friend CancelToken current_token();
  std::shared_ptr<State> state_;
};

/// Install `token` as the calling thread's current token for the scope's
/// lifetime; nests (the previous token is restored on destruction).
class CancelScope {
 public:
  explicit CancelScope(const CancelToken& token);
  ~CancelScope();
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  std::shared_ptr<CancelToken::State> previous_;
};

/// Throw Error(kDeadlineExceeded) if the calling thread's current token
/// (if any) has fired.  Call this at iteration boundaries of long loops;
/// it is safe (and nearly free) to call from anywhere.
void checkpoint();

/// True when the current token has fired — for call sites that prefer to
/// drain gracefully instead of unwinding.
bool cancel_requested();

/// The calling thread's current token (a never-firing token when none is
/// installed) — capture this to propagate cancellation across threads.
CancelToken current_token();

namespace detail {
/// Type-erased capture of the calling thread's current token state (null
/// when none is installed) — the allocation-free propagation hook used by
/// ThreadPool::submit.
std::shared_ptr<void> capture_current();

/// Re-install a captured state on this thread for the scope's lifetime.
class PropagateScope {
 public:
  explicit PropagateScope(const std::shared_ptr<void>& state);
  ~PropagateScope();
  PropagateScope(const PropagateScope&) = delete;
  PropagateScope& operator=(const PropagateScope&) = delete;

 private:
  std::shared_ptr<void> previous_;
  bool installed_ = false;
};
}  // namespace detail

/// Watchdog: a background thread that fires `token` once `budget_ms`
/// elapses, so even work that only polls the atomic flag (never the clock)
/// observes the overrun promptly.  Disarm by destroying the watchdog; a
/// watchdog whose token already fired exits early.
class Watchdog {
 public:
  Watchdog(const CancelToken& token, double budget_ms, std::string reason);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nshot::exec
