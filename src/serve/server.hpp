// serve::Server — the concurrent batch-synthesis service core.
//
//   transports (socket / file queue / in-process)
//        │  WireRequest
//        ▼
//   fair-share admission (FairShareQueue: per-client in-flight caps,
//        │   backlog bound, deadline-aware rejection)
//        ▼
//   exec::ThreadPool::shared() workers ──► Pipeline::submit(Request)
//        │                                   (process-wide MemoCache keyed
//        │                                    on the (F,D,R) spec makes
//        ▼                                    repeated controllers warm)
//   Response  ──► journal (BatchRunner-parity JSONL) ──► completion
//                 callback (transport writes the NDJSON response)
//
// The server owns one Pipeline (and through it at most one obs::Session,
// labelled, so concurrent submits never race on the session label); every
// request runs through Pipeline::submit, so the full Error-taxonomy /
// deadline / kernel-fallback machinery of the checked path applies
// per-request.  Graceful drain: stop admitting, reject everything still
// queued (message prefix "draining" — transports restore those requests),
// wait for in-flight work, leaving a journal a later server OR a serial
// BatchRunner can resume from.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "nshot/batch.hpp"
#include "nshot/pipeline.hpp"
#include "serve/admission.hpp"
#include "serve/protocol.hpp"

namespace nshot::serve {

struct ServeOptions {
  /// Base pipeline configuration; per-request overrides layer over it.
  PipelineOptions pipeline;
  AdmissionOptions admission;
  /// JSONL journal (same line format as BatchRunner): completed requests
  /// are skipped on restart, and a BatchRunner pointed at the same file
  /// resumes the same prefix.  Empty disables journaling.
  std::string journal_path;
  /// obs session label (non-empty: concurrent submits must not race on
  /// the first-run-names-the-session convenience).
  std::string label = "serve";
};

struct ServeStats {
  long accepted = 0;
  long rejected = 0;   // admission rejections (incl. drain evictions)
  long completed = 0;  // terminal responses from executed requests
  long failed = 0;     // completed with !outcome.ok()
  long resumed = 0;    // answered from the journal without executing
  int queued = 0;
  int inflight = 0;
  double service_estimate_ms = 0.0;
  long memo_hits = 0;  // process-wide (F,D,R) minimization cache
  long memo_misses = 0;

  std::string to_json() const;
};

class Server {
 public:
  using ResponseCallback = std::function<void(const Response&)>;

  explicit Server(ServeOptions options);
  ~Server();  // drains

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submit a request; `done` fires exactly once with the terminal
  /// Response — immediately (admission rejection, resume hit) or from a
  /// worker thread after execution.  The callback must not block.
  void enqueue(const WireRequest& wire, ResponseCallback done);

  /// Future-flavored convenience over the callback form.
  std::future<Response> enqueue(const WireRequest& wire);

  /// The journal line of a previous incarnation's terminal result for
  /// `id`, empty when none — transports use it to answer without
  /// re-executing (resume parity with BatchRunner).
  std::string journaled(const std::string& id) const;

  /// Record `id` as resumed in the stats (transports call this when they
  /// answer from journaled()).
  void count_resumed();

  /// Graceful drain: stop admitting, complete every queued request with a
  /// "draining" rejection, wait for in-flight requests to finish (their
  /// results are journaled normally).  Idempotent.
  void drain();
  bool draining() const;

  ServeStats stats() const;

  /// Observability pass-throughs of the owned pipeline session.
  std::string report_json() const;
  std::string trace_json() const;

 private:
  struct Job {
    WireRequest wire;
    ResponseCallback done;
  };

  void pump_locked();
  void run_job(Ticket ticket, std::shared_ptr<Job> job);
  void finish_rejected(const std::shared_ptr<Job>& job, const std::string& id, ErrorCode code,
                       const std::string& message);

  ServeOptions options_;
  Pipeline pipeline_;

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  FairShareQueue queue_;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;  // queued payloads by seq
  std::uint64_t next_seq_ = 1;
  int running_ = 0;  // dispatched jobs whose completion callback hasn't returned
  std::map<std::string, std::string> journaled_;  // id -> terminal line
  std::unique_ptr<std::ofstream> journal_out_;
  bool draining_ = false;
  ServeStats stats_;
};

}  // namespace nshot::serve
