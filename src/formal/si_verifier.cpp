#include "formal/si_verifier.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>
#include <vector>

#include "sim/conformance.hpp"
#include "util/error.hpp"

namespace nshot::formal {
namespace {

using gatelib::GateType;
using netlist::Gate;
using netlist::NetId;

/// Composite search key: net values (<= 64 nets) and the spec state.
struct Key {
  std::uint64_t values;
  sg::StateId spec;
  friend bool operator==(const Key&, const Key&) = default;
};

struct KeyHash {
  std::size_t operator()(const Key& k) const {
    std::uint64_t x = k.values ^ (static_cast<std::uint64_t>(k.spec) * 0x9e3779b97f4a7c15ULL);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

class Explorer {
 public:
  Explorer(const sg::StateGraph& spec, const netlist::Netlist& circuit,
           const SiVerifyOptions& options)
      : spec_(spec), circuit_(circuit), options_(options) {}

  SiVerifyResult run() {
    SiVerifyResult result;
    NSHOT_REQUIRE(circuit_.num_nets() <= 64,
                  "formal verification supports at most 64 nets; use the timed simulator for "
                  "larger circuits");

    // Net <-> signal maps.
    net_signal_.assign(static_cast<std::size_t>(circuit_.num_nets()), -1);
    signal_net_.assign(static_cast<std::size_t>(spec_.num_signals()), -1);
    for (int x = 0; x < spec_.num_signals(); ++x) {
      const auto net = circuit_.find_net(spec_.signal(x).name);
      NSHOT_REQUIRE(net.has_value(), "circuit has no net for signal " + spec_.signal(x).name);
      signal_net_[static_cast<std::size_t>(x)] = *net;
      if (!spec_.is_input(x)) net_signal_[static_cast<std::size_t>(*net)] = x;
    }

    const std::uint64_t initial_values = settled_initial_values();
    std::unordered_set<Key, KeyHash> seen;
    std::deque<Key> queue;
    const Key start{initial_values, spec_.initial()};
    seen.insert(start);
    queue.push_back(start);

    while (!queue.empty()) {
      if (seen.size() > options_.max_states) {
        result.exhausted = true;
        result.states_explored = seen.size();
        return result;
      }
      const Key key = queue.front();
      queue.pop_front();

      bool any_move = false;
      // Environment moves: any input transition the spec enables.
      for (const sg::TransitionLabel& label : spec_.enabled_labels(key.spec)) {
        if (!spec_.is_input(label.signal)) continue;
        any_move = true;
        const NetId net = signal_net_[static_cast<std::size_t>(label.signal)];
        // The net must currently carry the pre-transition value (it does:
        // inputs are only driven by the environment itself).
        const Key next{key.values ^ (1ULL << net), *spec_.successor(key.spec, label)};
        if (seen.insert(next).second) queue.push_back(next);
      }

      // Gate moves: any excited gate may fire.
      for (const Gate& gate : circuit_.gates()) {
        std::uint64_t flips = 0;
        if (!excitation(gate, key.values, flips)) continue;
        any_move = true;

        // Does this firing change an observable net?
        sg::StateId next_spec = key.spec;
        bool violation = false;
        std::string reason;
        for (const NetId out : gate.outputs) {
          if (((flips >> out) & 1ULL) == 0) continue;
          const int x = net_signal_[static_cast<std::size_t>(out)];
          if (x < 0) continue;
          const bool new_value = ((key.values >> out) & 1ULL) == 0;
          const sg::TransitionLabel label{x, new_value};
          const auto successor = spec_.successor(next_spec, label);
          if (!successor) {
            violation = true;
            reason = "gate " + gate.name + " fires unexpected " + spec_.label_name(label) +
                     " in spec state " + spec_.state_name(next_spec);
            break;
          }
          next_spec = *successor;
        }
        if (violation) {
          result.ok = false;
          result.violation = reason;
          result.states_explored = seen.size();
          return result;
        }
        const Key next{key.values ^ flips, next_spec};
        if (seen.insert(next).second) queue.push_back(next);
      }

      if (!any_move) {
        // Quiescent: fine unless the spec still expects a non-input move.
        for (const sg::TransitionLabel& label : spec_.enabled_labels(key.spec)) {
          if (spec_.is_input(label.signal)) continue;
          result.ok = false;
          result.violation = "deadlock: circuit quiescent but spec state " +
                             spec_.state_name(key.spec) + " enables " + spec_.label_name(label);
          result.states_explored = seen.size();
          return result;
        }
      }
    }

    result.ok = true;
    result.states_explored = seen.size();
    return result;
  }

 private:
  bool value(std::uint64_t values, NetId n) const { return (values >> n) & 1ULL; }

  /// If `gate` is excited under `values`, set `flips` to the output bits
  /// that change and return true.
  bool excitation(const Gate& gate, std::uint64_t values, std::uint64_t& flips) const {
    auto in = [&](std::size_t i) {
      const bool v = value(values, gate.inputs[i]);
      return gate.input_inverted(i) ? !v : v;
    };
    const NetId out0 = gate.outputs[0];
    bool target = value(values, out0);
    switch (gate.type) {
      case GateType::kAnd: {
        target = true;
        for (std::size_t i = 0; i < gate.inputs.size(); ++i) target = target && in(i);
        break;
      }
      case GateType::kOr: {
        target = false;
        for (std::size_t i = 0; i < gate.inputs.size(); ++i) target = target || in(i);
        break;
      }
      case GateType::kInv:
        target = !in(0);
        break;
      case GateType::kBuf:
      case GateType::kDelayLine:
      case GateType::kInertialDelay:
        target = in(0);
        break;
      case GateType::kRsLatch:
        target = in(0) ? true : (in(1) ? false : value(values, out0));
        break;
      case GateType::kCElement: {
        bool all_one = true, all_zero = true;
        for (std::size_t i = 0; i < gate.inputs.size(); ++i) {
          if (in(i)) all_zero = false;
          else all_one = false;
        }
        target = all_one ? true : (all_zero ? false : value(values, out0));
        break;
      }
      case GateType::kMhsFlipFlop: {
        // Enable-gated C-element abstraction (threshold is a timed
        // property; every pulse is assumed to fire — pessimistic).
        const bool set_eff = in(0) && in(2);
        const bool reset_eff = in(1) && in(3);
        const bool q = value(values, out0);
        target = (set_eff && !reset_eff) ? true : ((reset_eff && !set_eff) ? false : q);
        if (target != q) {
          flips = (1ULL << out0) | (1ULL << gate.outputs[1]);  // dual rail flips atomically
          return true;
        }
        return false;
      }
    }
    if (target != value(values, out0)) {
      flips = 1ULL << out0;
      return true;
    }
    return false;
  }

  /// Initial net values: the conformance helper's assignments plus a
  /// combinational settle (same procedure as the timed simulator).
  std::uint64_t settled_initial_values() const {
    std::uint64_t values = 0;
    std::vector<bool> known(static_cast<std::size_t>(circuit_.num_nets()), false);
    for (const auto& [net, v] : sim::initial_net_values(spec_, circuit_)) {
      if (v) values |= (1ULL << net);
      known[static_cast<std::size_t>(net)] = true;
    }
    for (const NetId pi : circuit_.primary_inputs()) known[static_cast<std::size_t>(pi)] = true;

    std::vector<const Gate*> pending;
    for (const Gate& g : circuit_.gates())
      if (!gatelib::is_storage(g.type) && !g.feedback_cut) pending.push_back(&g);
    bool progress = true;
    while (progress && !pending.empty()) {
      progress = false;
      std::vector<const Gate*> still;
      for (const Gate* g : pending) {
        const bool ready = std::all_of(g->inputs.begin(), g->inputs.end(), [&](NetId n) {
          return known[static_cast<std::size_t>(n)];
        });
        if (!ready) {
          still.push_back(g);
          continue;
        }
        std::uint64_t flips = 0;
        if (excitation(*g, values, flips)) values ^= flips;
        known[static_cast<std::size_t>(g->outputs[0])] = true;
        progress = true;
      }
      pending = std::move(still);
    }
    NSHOT_ASSERT(pending.empty(), "initial settle failed (combinational cycle?)");
    return values;
  }

  const sg::StateGraph& spec_;
  const netlist::Netlist& circuit_;
  const SiVerifyOptions& options_;
  std::vector<int> net_signal_;
  std::vector<NetId> signal_net_;
};

}  // namespace

SiVerifyResult verify_external_hazard_freeness(const sg::StateGraph& spec,
                                               const netlist::Netlist& circuit,
                                               const SiVerifyOptions& options) {
  Explorer explorer(spec, circuit, options);
  return explorer.run();
}

}  // namespace nshot::formal
