#include "nshot/delay_requirement.hpp"

#include <algorithm>

namespace nshot::core {
namespace {

/// Depth of a balanced tree with `leaves` leaves and the library fanin.
int tree_depth(int leaves, int max_fanin) {
  if (leaves <= 1) return leaves;  // 0 leaves: no gate; 1 leaf: one gate
  int depth = 0;
  int width = leaves;
  while (width > 1) {
    width = (width + max_fanin - 1) / max_fanin;
    ++depth;
  }
  return depth;
}

}  // namespace

int sop_levels(const logic::Cover& cover, int output, const gatelib::GateLibrary& lib) {
  int cube_count = 0;
  int worst_and_depth = 0;
  for (const logic::Cube& cube : cover) {
    if (!cube.has_output(output)) continue;
    ++cube_count;
    worst_and_depth = std::max(worst_and_depth, tree_depth(cube.literal_count(), lib.max_fanin()));
  }
  if (cube_count == 0) return 0;                       // constant function
  return worst_and_depth + tree_depth(cube_count, lib.max_fanin()) -
         (cube_count == 1 ? 1 : 0);  // single cube: no OR tree
}

DelayRequirement compute_delay_requirement(int set_levels, int reset_levels,
                                           const gatelib::GateLibrary& lib) {
  DelayRequirement req;
  req.set_levels = set_levels;
  req.reset_levels = reset_levels;

  const gatelib::GateTiming gate = lib.timing(gatelib::GateType::kAnd, 2);
  req.t_set0_worst = set_levels * gate.max_delay;
  req.t_set1_fast = set_levels * gate.min_delay;
  req.t_res0_worst = reset_levels * gate.max_delay;
  req.t_res1_fast = reset_levels * gate.min_delay;
  req.t_mhs = lib.mhs_response();

  req.t_del = std::max(req.t_set0_worst - req.t_res1_fast - req.t_mhs,
                       req.t_res0_worst - req.t_set1_fast - req.t_mhs);
  return req;
}

}  // namespace nshot::core
