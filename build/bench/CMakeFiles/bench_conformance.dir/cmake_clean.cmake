file(REMOVE_RECURSE
  "CMakeFiles/bench_conformance.dir/bench_conformance.cpp.o"
  "CMakeFiles/bench_conformance.dir/bench_conformance.cpp.o.d"
  "bench_conformance"
  "bench_conformance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conformance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
