#include "sim/compiled_netlist.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nshot::sim {

using gatelib::GateType;
using netlist::GateId;
using netlist::NetId;

CompiledNetlist::CompiledNetlist(const netlist::Netlist& netlist,
                                 const gatelib::GateLibrary& lib)
    : netlist_(&netlist), lib_(&lib), space_(netlist, lib) {
  const std::size_t num_nets = static_cast<std::size_t>(netlist.num_nets());
  const std::size_t num_gates = static_cast<std::size_t>(netlist.num_gates());

  // CSR fanout: count, prefix-sum, fill.  Iterating gates in id order and
  // writing each net's slots left to right reproduces the per-net
  // gate-id-ordered lists the Simulator used to build with push_back.
  std::vector<std::uint32_t> degree(num_nets, 0);
  std::size_t total_inputs = 0;
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const netlist::Gate& gate = netlist.gate(g);
    total_inputs += gate.inputs.size();
    for (const NetId in : gate.inputs) ++degree[static_cast<std::size_t>(in)];
  }
  fanout_offset_.assign(num_nets + 1, 0);
  for (std::size_t n = 0; n < num_nets; ++n)
    fanout_offset_[n + 1] = fanout_offset_[n] + degree[n];
  fanout_gate_.resize(fanout_offset_[num_nets]);
  std::vector<std::uint32_t> cursor(fanout_offset_.begin(), fanout_offset_.end() - 1);
  for (GateId g = 0; g < netlist.num_gates(); ++g)
    for (const NetId in : netlist.gate(g).inputs)
      fanout_gate_[cursor[static_cast<std::size_t>(in)]++] = g;

  // Packed gate descriptors over the shared flat input-code array.
  gates_.reserve(num_gates);
  input_code_.reserve(total_inputs);
  driver_.assign(num_nets, -1);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const netlist::Gate& gate = netlist.gate(g);
    CompiledGate packed;
    packed.type = gate.type;
    packed.feedback_cut = gate.feedback_cut;
    packed.first_input = static_cast<std::uint32_t>(input_code_.size());
    packed.num_inputs = static_cast<std::uint32_t>(gate.inputs.size());
    for (std::size_t i = 0; i < gate.inputs.size(); ++i)
      input_code_.push_back((static_cast<std::uint32_t>(gate.inputs[i]) << 1) |
                            (gate.input_inverted(i) ? 1u : 0u));
    if (!gate.outputs.empty()) packed.out0 = gate.outputs[0];
    if (gate.outputs.size() > 1) packed.out1 = gate.outputs[1];
    for (const NetId out : gate.outputs) {
      NSHOT_REQUIRE(driver_[static_cast<std::size_t>(out)] < 0,
                    "net " + netlist.net_name(out) + " has multiple drivers");
      driver_[static_cast<std::size_t>(out)] = g;
    }
    gates_.push_back(packed);
  }

  // Fanout-of-1 chain links: a net whose only reader is a plain
  // combinational gate (no feedback cut) is fused — the event that reader
  // schedules can be held out of the queue by run_burst.  Everything else
  // (fanout != 1, storage, MHS, inertial, delay lines, feedback cuts) is a
  // boundary where events must enter the queue.
  fused_reader_.assign(num_nets, -1);
  for (std::size_t n = 0; n < num_nets; ++n) {
    if (fanout_offset_[n + 1] - fanout_offset_[n] != 1) continue;
    const GateId reader = fanout_gate_[fanout_offset_[n]];
    const CompiledGate& gate = gates_[static_cast<std::size_t>(reader)];
    if (gate.feedback_cut) continue;
    if (gate.type != GateType::kAnd && gate.type != GateType::kOr &&
        gate.type != GateType::kInv && gate.type != GateType::kBuf)
      continue;
    fused_reader_[n] = reader;
    ++num_fused_nets_;
  }
  // Chain statistics: follow fused links net -> reader.out0 -> ... until a
  // boundary.  Links form a forest (single driver, single reader), so the
  // walk from each chain head is linear overall.
  std::vector<std::uint8_t> is_link_target(num_nets, 0);
  for (std::size_t n = 0; n < num_nets; ++n)
    if (fused_reader_[n] >= 0) {
      const NetId out = gates_[static_cast<std::size_t>(fused_reader_[n])].out0;
      if (out >= 0) is_link_target[static_cast<std::size_t>(out)] = 1;
    }
  for (std::size_t n = 0; n < num_nets; ++n) {
    if (fused_reader_[n] < 0 || is_link_target[n]) continue;  // not a chain head
    int length = 0;
    NetId cur = static_cast<NetId>(n);
    while (cur >= 0 && fused_reader_[static_cast<std::size_t>(cur)] >= 0) {
      ++length;
      cur = gates_[static_cast<std::size_t>(fused_reader_[static_cast<std::size_t>(cur)])].out0;
    }
    longest_fused_chain_ = std::max(longest_fused_chain_, length);
  }
}

}  // namespace nshot::sim
