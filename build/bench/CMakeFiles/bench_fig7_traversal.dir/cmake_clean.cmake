file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_traversal.dir/bench_fig7_traversal.cpp.o"
  "CMakeFiles/bench_fig7_traversal.dir/bench_fig7_traversal.cpp.o.d"
  "bench_fig7_traversal"
  "bench_fig7_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
