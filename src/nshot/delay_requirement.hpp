// The delay requirement of the acknowledgement scheme (Section IV-C, Eq. 1):
//
//   t_del >= MAX{ t_set0w - t_res1f - t_mhs-,  t_res0w - t_set1f - t_mhs+ }
//
// where t_set0w (t_res0w) is the worst-case settle-to-0 time through the
// set (reset) SOP, t_res1f (t_set1f) the fastest propagate-to-1 time, and
// t_mhs± the response of the MHS flip-flop.  When the MAX is non-positive
// no delay line is needed (the paper reports this was the case for every
// benchmark tested).
#pragma once

#include "gatelib/gate_library.hpp"
#include "logic/cover.hpp"

namespace nshot::core {

struct DelayRequirement {
  int set_levels = 0;    // logic depth of the set SOP (AND + OR tree)
  int reset_levels = 0;  // logic depth of the reset SOP
  double t_set0_worst = 0.0;
  double t_res1_fast = 0.0;
  double t_res0_worst = 0.0;
  double t_set1_fast = 0.0;
  double t_mhs = 0.0;
  double t_del = 0.0;  // required compensation; <= 0 means none needed

  bool compensation_needed() const { return t_del > 0.0; }
};

/// Logic depth of the SOP network of `output` in `cover`: one AND level
/// (deeper if a product exceeds the library fanin) plus an OR tree over the
/// cubes of the output (absent for a single cube).
int sop_levels(const logic::Cover& cover, int output, const gatelib::GateLibrary& lib);

/// Evaluate Eq. 1 for a signal whose set/reset SOPs have the given depths.
DelayRequirement compute_delay_requirement(int set_levels, int reset_levels,
                                           const gatelib::GateLibrary& lib);

}  // namespace nshot::core
