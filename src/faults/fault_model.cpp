#include "faults/fault_model.hpp"

#include <algorithm>

#include "netlist/transform.hpp"
#include "sim/delay_space.hpp"
#include "sim/trial_batch.hpp"
#include "sim/vcd.hpp"
#include "util/error.hpp"

namespace nshot::faults {

using gatelib::GateType;
using netlist::Gate;
using netlist::GateId;
using netlist::NetId;

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStuckAt: return "stuck-at";
    case FaultKind::kGlitch: return "glitch";
    case FaultKind::kDelayOutlier: return "delay-outlier";
    case FaultKind::kDelayShave: return "delay-shave";
  }
  return "unknown";
}

std::string describe_fault(const Fault& fault, const netlist::Netlist& circuit) {
  switch (fault.kind) {
    case FaultKind::kStuckAt:
      return "stuck-at-" + std::string(fault.value ? "1" : "0") + " on net " +
             circuit.net_name(fault.net);
    case FaultKind::kGlitch:
      return "glitch to " + std::string(fault.value ? "1" : "0") + " on net " +
             circuit.net_name(fault.net) + " at t=" + std::to_string(fault.time) +
             " width=" + std::to_string(fault.width);
    case FaultKind::kDelayOutlier:
      return "delay outlier on gate " + circuit.gate(fault.gate).name + " (delay " +
             std::to_string(fault.delay) + ")";
    case FaultKind::kDelayShave:
      return "delay line " + circuit.gate(fault.gate).name + " shaved to " +
             std::to_string(fault.delay);
  }
  return "unknown fault";
}

sim::ClosedLoopConfig to_config(const FaultScenario& scenario, const ScenarioOptions& options) {
  sim::ClosedLoopConfig config;
  config.sim.seed = scenario.seed;
  config.sim.randomize_delays = true;
  config.sim.explicit_delays = scenario.delays;
  config.sim.max_events = options.max_events;
  config.max_transitions = options.max_transitions;
  config.input_delay_min = options.input_delay_min;
  config.input_delay_max = options.input_delay_max;
  config.time_limit = options.time_limit;

  for (const Fault& fault : scenario.faults) {
    switch (fault.kind) {
      case FaultKind::kStuckAt:
        config.forces.emplace_back(fault.net, fault.value);
        break;
      case FaultKind::kGlitch:
        config.injections.push_back(
            sim::TimedInjection{fault.time, fault.net, /*release=*/false, fault.value});
        config.injections.push_back(
            sim::TimedInjection{fault.time + fault.width, fault.net, /*release=*/true, false});
        break;
      case FaultKind::kDelayOutlier:
      case FaultKind::kDelayShave:
        config.sim.delay_overrides.emplace_back(fault.gate, fault.delay);
        break;
    }
  }
  std::stable_sort(config.injections.begin(), config.injections.end(),
                   [](const sim::TimedInjection& a, const sim::TimedInjection& b) {
                     return a.time < b.time;
                   });
  return config;
}

sim::ConformanceReport run_scenario(const sg::StateGraph& spec, const netlist::Netlist& circuit,
                                    const FaultScenario& scenario,
                                    const ScenarioOptions& options,
                                    sim::VcdRecorder* recorder) {
  return sim::run_closed_loop(spec, circuit, to_config(scenario, options), recorder);
}

sim::ConformanceReport run_scenario(const sg::StateGraph& spec, const sim::SpecBinding& binding,
                                    const sim::CompiledNetlist& compiled,
                                    const FaultScenario& scenario,
                                    const ScenarioOptions& options, sim::VcdRecorder* recorder,
                                    sim::Simulator* reuse) {
  return sim::run_closed_loop(spec, binding, compiled, to_config(scenario, options), recorder,
                              reuse);
}

sim::ConformanceReport run_scenario(const sg::StateGraph& spec, const sim::SpecBinding& binding,
                                    const FaultScenario& scenario,
                                    const ScenarioOptions& options, sim::TrialRunner& runner,
                                    sim::VcdRecorder* recorder) {
  return runner.run(spec, binding, to_config(scenario, options), recorder);
}

namespace {

std::vector<double> apply_delay_faults(std::vector<double> delays, const FaultScenario& scenario,
                                       std::size_t num_gates) {
  NSHOT_REQUIRE(delays.size() == num_gates, "delay vector does not match the circuit");
  for (const Fault& fault : scenario.faults)
    if (fault.kind == FaultKind::kDelayOutlier || fault.kind == FaultKind::kDelayShave)
      delays[static_cast<std::size_t>(fault.gate)] = fault.delay;
  return delays;
}

}  // namespace

std::vector<double> materialize_delays(const netlist::Netlist& circuit,
                                       const FaultScenario& scenario) {
  std::vector<double> delays = scenario.delays;
  if (delays.empty()) {
    const sim::DelaySpace space(circuit, gatelib::GateLibrary::standard());
    Rng rng(scenario.seed);
    delays = space.sample(rng);
  }
  return apply_delay_faults(std::move(delays), scenario,
                            static_cast<std::size_t>(circuit.num_gates()));
}

std::vector<double> materialize_delays(const sim::CompiledNetlist& compiled,
                                       const FaultScenario& scenario) {
  std::vector<double> delays = scenario.delays;
  if (delays.empty()) {
    Rng rng(scenario.seed);
    delays = compiled.delay_space().sample(rng);
  }
  return apply_delay_faults(std::move(delays), scenario,
                            static_cast<std::size_t>(compiled.num_gates()));
}

netlist::Netlist strip_delay_compensation(const netlist::Netlist& circuit) {
  return netlist::transform_netlist(
      circuit, [](const Gate& gate, netlist::Netlist&) -> std::optional<Gate> {
        if (gate.type != GateType::kDelayLine) return gate;
        Gate zeroed = gate;
        zeroed.explicit_delay = 0.0;
        return zeroed;
      });
}

netlist::Netlist deepen_set_path(const netlist::Netlist& circuit, const std::string& signal,
                                 int levels) {
  NSHOT_REQUIRE(levels >= 1, "deepen_set_path needs at least one buffer level");
  bool found = false;
  netlist::Netlist result = netlist::transform_netlist(
      circuit,
      [&](const Gate& gate, netlist::Netlist& nl) -> std::optional<Gate> {
        if (gate.type != GateType::kMhsFlipFlop || gate.name != signal + "_mhs") return gate;
        found = true;
        NetId prev = gate.inputs[0];
        for (int i = 0; i < levels; ++i) {
          const NetId out = nl.add_net(signal + "_setdeep" + std::to_string(i));
          nl.add_gate(Gate{.type = GateType::kBuf,
                           .name = signal + "_deep" + std::to_string(i),
                           .inputs = {prev},
                           .outputs = {out}});
          prev = out;
        }
        Gate rewired = gate;
        rewired.inputs[0] = prev;
        return rewired;
      });
  NSHOT_REQUIRE(found, "deepen_set_path: no MHS flip-flop for signal " + signal);
  result.check_well_formed();
  return result;
}

}  // namespace nshot::faults
