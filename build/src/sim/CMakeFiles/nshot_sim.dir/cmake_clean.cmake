file(REMOVE_RECURSE
  "CMakeFiles/nshot_sim.dir/conformance.cpp.o"
  "CMakeFiles/nshot_sim.dir/conformance.cpp.o.d"
  "CMakeFiles/nshot_sim.dir/event_sim.cpp.o"
  "CMakeFiles/nshot_sim.dir/event_sim.cpp.o.d"
  "CMakeFiles/nshot_sim.dir/mhs_structural.cpp.o"
  "CMakeFiles/nshot_sim.dir/mhs_structural.cpp.o.d"
  "CMakeFiles/nshot_sim.dir/vcd.cpp.o"
  "CMakeFiles/nshot_sim.dir/vcd.cpp.o.d"
  "libnshot_sim.a"
  "libnshot_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nshot_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
