#include "sim/mhs_structural.hpp"

namespace nshot::sim {

using gatelib::GateType;
using netlist::Gate;

StructuralMhs build_structural_mhs(double omega) {
  StructuralMhs model{netlist::Netlist("structural_mhs"), {}};
  netlist::Netlist& nl = model.circuit;
  StructuralMhsNets& nets = model.nets;

  nets.set_in = nl.add_net("set_in");
  nets.reset_in = nl.add_net("reset_in");
  nl.add_primary_input(nets.set_in);
  nl.add_primary_input(nets.reset_in);

  // Master stage: a pair of RS latches converting pulses into levels.
  nets.master_set = nl.add_net("master_set");
  nl.add_gate(Gate{.type = GateType::kRsLatch,
                   .name = "master_s",
                   .inputs = {nets.set_in, nets.reset_in},
                   .outputs = {nets.master_set}});
  nets.master_reset = nl.add_net("master_reset");
  nl.add_gate(Gate{.type = GateType::kRsLatch,
                   .name = "master_r",
                   .inputs = {nets.reset_in, nets.set_in},
                   .outputs = {nets.master_reset}});

  // Filter stage: inertial threshold elements (first filtering stage).
  nets.slave_set = nl.add_net("slave_set");
  nl.add_gate(Gate{.type = GateType::kInertialDelay,
                   .name = "filter_s",
                   .inputs = {nets.master_set},
                   .outputs = {nets.slave_set},
                   .explicit_delay = omega});
  nets.slave_reset = nl.add_net("slave_reset");
  nl.add_gate(Gate{.type = GateType::kInertialDelay,
                   .name = "filter_r",
                   .inputs = {nets.master_reset},
                   .outputs = {nets.slave_reset},
                   .explicit_delay = omega});

  // Slave stage: RS latch pair producing the dual-rail outputs.
  nets.q = nl.add_net("q");
  nl.add_gate(Gate{.type = GateType::kRsLatch,
                   .name = "slave_q",
                   .inputs = {nets.slave_set, nets.slave_reset},
                   .outputs = {nets.q}});
  nets.qb = nl.add_net("qb");
  nl.add_gate(Gate{.type = GateType::kRsLatch,
                   .name = "slave_qb",
                   .inputs = {nets.slave_reset, nets.slave_set},
                   .outputs = {nets.qb}});

  nl.add_primary_output(nets.q);
  nl.add_primary_output(nets.qb);
  nl.check_well_formed();
  return model;
}

}  // namespace nshot::sim
