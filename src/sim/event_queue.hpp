// Event queues for the gate-level simulator.
//
// Pop order is a TOTAL order on (time, seq): seq is unique per event, so
// every queue implementation that honors the comparator pops the exact
// same sequence — which is what lets the calendar queue replace the
// binary heap without moving a single byte of any simulation artifact
// (fingerprints, violation text, VCD witnesses all stay identical).
//
//  * BinaryHeapQueue — the arena-backed binary min-heap the simulator
//    shipped with (PR 3).  O(log n) per operation; kept compiled in as
//    the reference queue and as the engine of the frozen pre-batch
//    driver leg in bench_kernels.
//  * CalendarQueue — R. Brown's calendar queue (CACM 1988): buckets of
//    width `w` (a "day"), `nb` buckets to a "year"; an event lands in
//    bucket floor(t/w) mod nb and pops by scanning the current day
//    forward.  O(1) amortized per operation when the geometry tracks the
//    event population, which resize() maintains by doubling/halving nb
//    and re-deriving w from sampled inter-event gaps.  Buckets are
//    arena-backed vectors (the cache-decay caveat from the prs repo's
//    README: linked-list buckets decay into pointer-chasing; flat arrays
//    do not) and clear() keeps their capacity across trials.
//
// Geometry is reset to the defaults by clear() so a trial's resize
// trajectory depends only on the trial itself, never on what an earlier
// trial in the same chunk left behind — that keeps the obs counters
// deterministic across --jobs values.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace nshot::sim {

enum class EventKind : std::uint8_t { kNetChange, kMhsProbe };

// 32 bytes — both queues move events by value, so layout is throughput.
// `generation` wraps mod 2^32: a stale inertial event could alias the live
// generation only after 2^32 cancellations of one gate while it sits
// queued, which needs a >4-billion-event trial.
struct Event {
  double time;
  std::uint64_t seq;  // FIFO tie-break
  std::int32_t target;       // net id, or gate id for probes
  std::uint32_t generation;  // for cancellable inertial events
  EventKind kind;
  bool value;  // net change value

  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Arena-backed binary min-heap on (time, seq).  The comparator is total
/// (seq is unique), so pop order — and therefore every simulation — is
/// identical to the std::priority_queue it replaced; clear() keeps the
/// arena's capacity across reset().
class BinaryHeapQueue {
 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  const Event& top() const { return heap_.front(); }
  void push(const Event& e) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<Event>{});
  }
  void pop() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<Event>{});
    heap_.pop_back();
  }
  void clear() { heap_.clear(); }

  /// Hand every queued event to `fn` in UNSPECIFIED order and empty the
  /// queue — the adaptive queue's migration path.  The receiving queue
  /// re-establishes its own order, so pop order is unaffected (the
  /// comparator is total).
  template <typename Fn>
  void consume_all(Fn&& fn) {
    for (const Event& e : heap_) fn(e);
    heap_.clear();
  }

 private:
  std::vector<Event> heap_;
};

/// Calendar queue with arena-backed buckets.  See the file comment for
/// the geometry; the interface matches BinaryHeapQueue exactly.
///
/// Invariants:
///  * cursor_day_ <= day_of(e.time) for every queued event (a push behind
///    the cursor — legal, set_input allows t >= now - eps — lowers it);
///  * each bucket is sorted DESCENDING on (time, seq), so bucket.back()
///    is that bucket's minimum: pop is a pop_back and find_min compares
///    one element per occupied bucket instead of scanning contents;
///  * the cached minimum bucket (min_bucket_) is valid iff min_valid_;
///  * occupancy_ has bit b set iff bucket b is non-empty (summary_ has
///    bit w set iff occupancy word w is non-zero), so find_min touches
///    only occupied buckets — the simulator's queues are nearly empty
///    almost always, and a day-by-day year scan would pay O(nb) per pop
///    for a handful of events.
class CalendarQueue {
 public:
  CalendarQueue() { reset_geometry(); }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  const Event& top() const {
    if (!min_valid_) find_min();
    return buckets_[min_bucket_].back();
  }

  void push(const Event& e) {
    const std::int64_t day = day_of(e.time);
    if (day < cursor_day_) cursor_day_ = day;
    const std::size_t b = index_of(day);
    std::vector<Event>& bucket = buckets_[b];
    if (bucket.empty()) mark_occupied(b);
    // Insertion keeping descending (time, seq) order; with the geometry
    // tracking the population, buckets hold ~2 events, so the shift is a
    // couple of element moves at most.
    bucket.push_back(e);
    std::size_t i = bucket.size() - 1;
    while (i > 0 && e > bucket[i - 1]) {
      bucket[i] = bucket[i - 1];
      --i;
    }
    bucket[i] = e;
    if (min_valid_ && (min_time_ > e.time || (min_time_ == e.time && min_seq_ > e.seq)))
      cache_min(b, e);
    ++size_;
    if (size_ > buckets_.size() * 2 && buckets_.size() < kMaxBuckets) resize(buckets_.size() * 2);
  }

  void pop() {
    if (!min_valid_) find_min();
    std::vector<Event>& bucket = buckets_[min_bucket_];
    bucket.pop_back();
    --size_;
    if (bucket.empty()) {
      mark_vacant(min_bucket_);
      min_valid_ = false;
    } else if (day_of(bucket.back().time) == cursor_day_) {
      // Every queued event has day >= cursor_day_ and all cursor-day
      // events map to this bucket, so a new back still on the cursor day
      // is the next global minimum — no rescan needed.
      cache_min(min_bucket_, bucket.back());
    } else {
      min_valid_ = false;
    }
    if (size_ * 4 < buckets_.size() && buckets_.size() > kMinBuckets) resize(buckets_.size() / 2);
  }

  /// Drop every event and return to the default geometry; bucket arenas
  /// keep their capacity.  Buckets beyond the default count are stashed
  /// in spare_ (not destroyed) so a later grow re-uses their storage —
  /// per-trial clears must not turn calendar growth into malloc churn.
  void clear() {
    for (std::vector<Event>& bucket : buckets_) bucket.clear();
    while (buckets_.size() > kMinBuckets) {
      spare_.push_back(std::move(buckets_.back()));
      buckets_.pop_back();
    }
    reset_geometry();
  }

  /// Hand every queued event to `fn` in UNSPECIFIED order, then clear()
  /// back to the default geometry — the adaptive queue's migration path.
  template <typename Fn>
  void consume_all(Fn&& fn) {
    for (const std::vector<Event>& bucket : buckets_)
      for (const Event& e : bucket) fn(e);
    clear();
  }

  /// Number of resize (re-bucketing) passes since construction/clear —
  /// exposed for the property tests; the obs counter aggregates the same
  /// quantity across trials.
  std::uint64_t resizes() const { return resizes_; }
  std::size_t num_buckets() const { return buckets_.size(); }
  double day_width() const { return width_; }

 private:
  static constexpr std::size_t kMinBuckets = 16;    // power of two
  static constexpr std::size_t kMaxBuckets = 1u << 12;  // 64 occupancy words
  static constexpr double kDefaultWidth = 1.0;
  static constexpr double kMinWidth = 1e-9;

  std::int64_t day_of(double t) const { return static_cast<std::int64_t>(t * inv_width_); }
  std::size_t index_of(std::int64_t day) const {
    return static_cast<std::size_t>(day) & (buckets_.size() - 1);
  }

  void reset_geometry() {
    if (buckets_.empty()) buckets_.resize(kMinBuckets);
    occupancy_.assign((buckets_.size() + 63) / 64, 0);
    summary_ = 0;
    width_ = kDefaultWidth;
    inv_width_ = 1.0 / width_;
    cursor_day_ = 0;
    size_ = 0;
    min_valid_ = false;
    resizes_ = 0;
  }

  // kMaxBuckets = 4096 keeps the occupancy map at <= 64 words, so the
  // summary is exactly one word and both marks are O(1).
  void mark_occupied(std::size_t b) {
    occupancy_[b >> 6] |= std::uint64_t{1} << (b & 63);
    summary_ |= std::uint64_t{1} << (b >> 6);
  }
  void mark_vacant(std::size_t b) {
    const std::size_t w = b >> 6;
    occupancy_[w] &= ~(std::uint64_t{1} << (b & 63));
    if (occupancy_[w] == 0) summary_ &= ~(std::uint64_t{1} << w);
  }

  void cache_min(std::size_t b, const Event& e) const {
    min_bucket_ = b;
    min_time_ = e.time;
    min_seq_ = e.seq;
    min_valid_ = true;
  }

  void find_min() const;
  void resize(std::size_t new_buckets);
  double sampled_width() const;

  std::vector<std::vector<Event>> buckets_;
  std::vector<std::vector<Event>> spare_;  // empty buckets kept for their capacity
  std::vector<Event> scratch_;             // resize staging arena
  std::vector<std::uint64_t> occupancy_;  // bit per bucket: non-empty
  std::uint64_t summary_ = 0;  // bit per occupancy word (mod 64): non-zero
  double width_ = kDefaultWidth;
  double inv_width_ = 1.0;
  std::size_t size_ = 0;
  std::uint64_t resizes_ = 0;
  // Lazily maintained read state; top() is const like the heap's.  The
  // minimum's (time, seq) is mirrored in scalars so push's cached-min
  // compare stays out of the bucket arrays.
  mutable std::int64_t cursor_day_ = 0;
  mutable std::size_t min_bucket_ = 0;
  mutable double min_time_ = 0.0;
  mutable std::uint64_t min_seq_ = 0;
  mutable bool min_valid_ = false;
};

enum class QueueKind : std::uint8_t { kBinaryHeap, kCalendar, kAdaptive };

/// The simulator's queue: one of the implementations above behind a branch
/// (predictable; all members are cheap when empty).  The kind is fixed at
/// construction — it is an engine choice, not per-trial state, so
/// Simulator::reset never flips it.
///
/// kAdaptive picks the engine by the live event population: a handful of
/// pending events lives in the binary heap (two hot cache lines beat the
/// calendar's day arithmetic at Table-2 scale — DESIGN §11), and when the
/// population crosses kAdaptiveUp the whole queue migrates into the
/// calendar, whose O(1) push/pop wins at the populations bench_queue_scaling
/// measures.  Migration is order-safe by construction: the comparator is a
/// TOTAL order on (time, seq), so any queue holding the same event set pops
/// the same sequence — switching engines mid-trial cannot move a byte of
/// any simulation artifact.  The down threshold leaves a wide hysteresis
/// band so a population oscillating around the crossover does not thrash.
class EventQueue {
 public:
  /// Population at which the adaptive queue migrates heap -> calendar.
  /// Chosen from the BENCH_queue_scaling ladder: the calendar's in-run
  /// events/sec overtakes the heap's between the ~200 and ~800 pending
  /// tiers on the reference container.
  static constexpr std::size_t kAdaptiveUp = 256;
  /// Population at which it migrates back (kAdaptiveUp / 8: re-migration
  /// only pays once the population is unambiguously heap-scale again).
  static constexpr std::size_t kAdaptiveDown = 32;

  explicit EventQueue(QueueKind kind = QueueKind::kBinaryHeap) : kind_(kind) {}

  QueueKind kind() const { return kind_; }
  bool empty() const { return on_calendar() ? calendar_.empty() : heap_.empty(); }
  std::size_t size() const { return on_calendar() ? calendar_.size() : heap_.size(); }
  const Event& top() const { return on_calendar() ? calendar_.top() : heap_.top(); }
  void push(const Event& e) {
    if (on_calendar()) {
      calendar_.push(e);
      return;
    }
    heap_.push(e);
    if (kind_ == QueueKind::kAdaptive && heap_.size() >= kAdaptiveUp) {
      heap_.consume_all([this](const Event& ev) { calendar_.push(ev); });
      adaptive_on_calendar_ = true;
      ++migrations_;
    }
  }
  void pop() {
    if (!on_calendar()) {
      heap_.pop();
      return;
    }
    calendar_.pop();
    if (kind_ == QueueKind::kAdaptive && calendar_.size() <= kAdaptiveDown) {
      calendar_.consume_all([this](const Event& ev) { heap_.push(ev); });
      adaptive_on_calendar_ = false;
      ++migrations_;
    }
  }
  void clear();

  /// Engine migrations since construction/clear (kAdaptive only) — for the
  /// property tests and the queue-scaling bench.
  std::uint64_t migrations() const { return migrations_; }

 private:
  bool on_calendar() const {
    return kind_ == QueueKind::kCalendar || adaptive_on_calendar_;
  }

  QueueKind kind_;
  bool adaptive_on_calendar_ = false;
  std::uint64_t migrations_ = 0;
  BinaryHeapQueue heap_;
  CalendarQueue calendar_;
};

}  // namespace nshot::sim
