// Ablation: WHY the MHS flip-flop instead of a plain C-element
// (Section IV-B: "a C-element is not immune to short pulse misbehavior").
//
// Each MHS cell is replaced by the standard alternative: two explicit
// acknowledgement AND gates feeding a C-element (set, !reset) plus an
// inverter for the qb rail.  The C-element reacts to EVERY pulse — it has
// no threshold ω and a faster, unmodelled response — so sub-threshold
// hazard pulses that the MHS filter absorbs can now misfire the latch.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "netlist/transform.hpp"
#include "bench_suite/benchmarks.hpp"
#include "nshot/synthesis.hpp"
#include "sim/conformance.hpp"

namespace {

using namespace nshot;
using gatelib::GateType;
using netlist::Gate;
using netlist::NetId;

netlist::Netlist replace_mhs_with_celement(const netlist::Netlist& source) {
  return netlist::transform_netlist(
      source,
      [](const Gate& gate, netlist::Netlist& nl) -> std::optional<Gate> {
        if (gate.type != GateType::kMhsFlipFlop) return gate;
        const std::string base = gate.name;
        const NetId gated_set = nl.add_net(base + "_gs");
        nl.add_gate(Gate{.type = GateType::kAnd,
                         .name = base + "_ack_s",
                         .inputs = {gate.inputs[0], gate.inputs[2]},
                         .outputs = {gated_set}});
        const NetId gated_reset = nl.add_net(base + "_gr");
        nl.add_gate(Gate{.type = GateType::kAnd,
                         .name = base + "_ack_r",
                         .inputs = {gate.inputs[1], gate.inputs[3]},
                         .outputs = {gated_reset}});
        nl.add_gate(Gate{.type = GateType::kCElement,
                         .name = base + "_c",
                         .inputs = {gated_set, gated_reset},
                         .inverted = {false, true},
                         .outputs = {gate.outputs[0]}});
        nl.add_gate(Gate{.type = GateType::kInv,
                         .name = base + "_inv",
                         .inputs = {gate.outputs[0]},
                         .outputs = {gate.outputs[1]}});
        return std::nullopt;  // replacement gates already inserted
      });
}

void print_ablation() {
  std::printf("Ablation: MHS flip-flop replaced by a plain C-element latch\n\n");
  std::printf("%-15s | %10s %9s %9s | %10s %9s\n", "circuit", "mhs:viol", "deadlock",
              "absorbed", "c-el:viol", "deadlock");
  int c_failures = 0, mhs_failures = 0;
  for (const char* name : {"chu133", "chu150", "converta", "ebergen", "full", "hazard",
                           "hybridf", "qr42", "vbe5b", "pmcm1", "pmcm2", "combuf1", "combuf2",
                           "read-write", "sing2dual-inp"}) {
    const sg::StateGraph g = bench_suite::build_benchmark(name);
    const core::SynthesisResult result = core::synthesize(g);
    const netlist::Netlist with_c = replace_mhs_with_celement(result.circuit);

    sim::ConformanceOptions options;
    options.runs = 25;
    options.max_transitions = 150;
    options.seed = 4242;
    options.input_delay_min = 0.05;
    options.input_delay_max = 4.0;
    const sim::ConformanceReport mhs = sim::check_conformance(g, result.circuit, options);
    const sim::ConformanceReport cel = sim::check_conformance(g, with_c, options);
    std::printf("%-15s | %10zu %9d %9ld | %10zu %9d\n", name, mhs.violations.size(),
                mhs.deadlocks, mhs.absorbed_pulses, cel.violations.size(), cel.deadlocks);
    mhs_failures += mhs.clean() ? 0 : 1;
    c_failures += cel.clean() ? 0 : 1;
  }
  std::printf(
      "\ncircuits failing: MHS %d, plain C-element %d.\n"
      "The 'absorbed' column counts the sub-threshold pulses the MHS master\n"
      "stage filtered — each one is an event a C-element would have latched.\n",
      mhs_failures, c_failures);
}

void bm_replace(benchmark::State& state) {
  const core::SynthesisResult result = core::synthesize(bench_suite::build_benchmark("pmcm1"));
  for (auto _ : state) {
    const netlist::Netlist with_c = replace_mhs_with_celement(result.circuit);
    benchmark::DoNotOptimize(with_c.num_gates());
  }
}
BENCHMARK(bm_replace);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
