// Scalability bench: word-parallel kernels vs their ordered-container
// references on generated controllers 10-1000x larger than the Table 2
// suite.
//
// Table 2 tops out at 4729 states (tsbmsiBRK); the tiers here extend the
// same parallel-chains controller family (the shape of master-read /
// wrdatab) to ~524k states by default and ~2.1M behind --huge, where the
// ordered std::set / std::map reference kernels leave the cache and the
// word-parallel StateSet / bit-plane engines pull away.  Per tier, four
// kernels run through both paths:
//   * regions       — compute_all_regions (shared plane sweep + threaded
//                     per-signal floods) vs compute_regions_reference;
//   * coding        — check_csc / check_usc / count_csc_conflicts /
//                     detonant_states vs their *_reference twins;
//   * trigger       — enforce_trigger_requirement, supercube-containment
//                     fast path vs the code-at-a-time reference membership;
//   * reachability  — build_state_graph, sharded level-synchronous BFS over
//                     mask-compiled firing vs loop firing over ordered
//                     std::map.
// The fast legs take a --jobs axis (thread×word fusion: the word-parallel
// kernels chunk their word ranges across the pool); every case row records
// the jobs value and the host's hardware concurrency so the JSON is
// interpretable on any machine.
//
// Every pair is asserted byte-identical outside the timers; tiers up to
// 131k states compare full region renderings and structural SG
// fingerprints, larger tiers compare deterministically sampled slices
// (evenly spaced signals, evenly spaced 4096-state windows) because a full
// 524k-state rendering is a ~100MB string.  The run aborts on any
// divergence, and — except under --smoke — also aborts if the combined
// regions+coding+trigger speedup at the largest tier falls below 3x.
//
// `--smoke` keeps only the smallest tiers with one timing sample for CI
// sanity; the JSON records the flag so smoke numbers are never mistaken
// for measurements.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_suite/generators.hpp"
#include "exec/thread_pool.hpp"
#include "logic/cover.hpp"
#include "logic/cube.hpp"
#include "nshot/spec_derivation.hpp"
#include "nshot/trigger.hpp"
#include "obs/obs.hpp"
#include "sg/properties.hpp"
#include "sg/regions.hpp"
#include "sg/state_graph.hpp"
#include "stg/g_format.hpp"
#include "stg/reachability.hpp"
#include "util/error.hpp"

namespace {

using namespace nshot;
using Clock = std::chrono::steady_clock;

/// Above this state count the byte-identity assertions switch from full
/// renderings to sampled slices.
constexpr int kFullIdentityLimit = 200000;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Wall-clock minimum over repeated samples, interleaved between the legs
/// under comparison so a load spike lands on both (see bench_kernels.cpp).
struct MinTimer {
  double best = 0.0;
  int n = 0;
  template <typename Body>
  void sample(Body&& body) {
    const auto t0 = Clock::now();
    body();
    const double ms = ms_since(t0);
    if (n++ == 0 || ms < best) best = ms;
  }
};

/// A parallel-chains controller with `chains` three-signal chains: the
/// master input releases every chain, the chains run concurrently, and the
/// interleavings multiply — each extra chain scales the marking graph by
/// roughly the chain's state contribution (~4x).
std::string tier_g(int chains) {
  std::vector<std::vector<std::string>> chain_signals;
  std::vector<std::string> inputs, outputs;
  for (int i = 1; i <= chains; ++i) {
    const std::string n = std::to_string(i);
    chain_signals.push_back({"r" + n, "p" + n, "q" + n});
    inputs.push_back("r" + n);
    outputs.push_back("p" + n);
    outputs.push_back("q" + n);
  }
  return bench_suite::parallel_chains_g("chains-" + std::to_string(chains) + "x3", "m",
                                        /*master_is_input=*/true, chain_signals, inputs, outputs);
}

/// Structural fingerprint of the state slice [begin, end): codes, names
/// and out-edges in state order (same rendering per state as the full
/// fingerprint in tests/kernel_equivalence_test.cpp).
std::string sg_slice_fingerprint(const sg::StateGraph& g, sg::StateId begin, sg::StateId end) {
  std::string out;
  for (sg::StateId s = begin; s < end && s < g.num_states(); ++s) {
    out += "\n" + std::to_string(s) + ":" + g.state_name(s) + "=" + std::to_string(g.code(s));
    for (const sg::Edge& e : g.out_edges(s))
      out += " --" + g.label_name(e.label) + "--> " + std::to_string(e.target);
  }
  return out;
}

/// Full structural fingerprint: signal table + every state slice.
std::string sg_fingerprint(const sg::StateGraph& g) {
  std::string out = "init=" + std::to_string(g.initial()) + ";";
  for (int i = 0; i < g.num_signals(); ++i)
    out += g.signal(i).name + (g.is_input(i) ? "?" : "!") + ",";
  return out + sg_slice_fingerprint(g, 0, g.num_states());
}

/// Do two graphs agree? Full fingerprints below kFullIdentityLimit;
/// above, the signal tables, state counts, initial states and eight
/// evenly spaced 4096-state windows (first and last included).
bool sg_identical(const sg::StateGraph& a, const sg::StateGraph& b) {
  if (a.num_states() != b.num_states() || a.num_signals() != b.num_signals() ||
      a.initial() != b.initial())
    return false;
  if (a.num_states() <= kFullIdentityLimit) return sg_fingerprint(a) == sg_fingerprint(b);
  constexpr int kWindows = 8;
  constexpr sg::StateId kWindow = 4096;
  for (int w = 0; w < kWindows; ++w) {
    const sg::StateId begin = static_cast<sg::StateId>(
        (static_cast<long long>(a.num_states() - kWindow) * w) / (kWindows - 1));
    if (sg_slice_fingerprint(a, begin, begin + kWindow) !=
        sg_slice_fingerprint(b, begin, begin + kWindow))
      return false;
  }
  for (int i = 0; i < a.num_signals(); ++i)
    if (a.signal(i).name != b.signal(i).name || a.is_input(i) != b.is_input(i)) return false;
  return true;
}

std::string trigger_fingerprint(const sg::StateGraph& g, const core::TriggerReport& report) {
  std::string out = std::to_string(report.cubes_added);
  for (const core::TriggerIssue& issue : report.issues) out += "|" + issue.describe(g);
  return out;
}

struct TierTiming {
  std::string name;
  int states = 0, signals = 0;
  int jobs = 1;
  double regions_reference_ms = 0, regions_fast_ms = 0;
  double coding_reference_ms = 0, coding_fast_ms = 0;
  double trigger_reference_ms = 0, trigger_fast_ms = 0;
  double reachability_reference_ms = 0, reachability_fast_ms = 0;
  bool identical = false;
  bool sampled_identity = false;  // true above kFullIdentityLimit

  /// The acceptance ratio: the three SG-analysis kernels combined (the
  /// reachability kernel has its own ratio but a separate reference axis —
  /// marking maps — so it stays out of the headline number).
  double combined_speedup() const {
    const double fast = regions_fast_ms + coding_fast_ms + trigger_fast_ms;
    return fast > 0 ? (regions_reference_ms + coding_reference_ms + trigger_reference_ms) / fast
                    : 0;
  }
};

TierTiming measure_tier(int chains, bool smoke, int jobs) {
  const std::string g_text = tier_g(chains);
  const stg::Stg net = stg::parse_g(g_text);
  stg::ReachabilityOptions build_options;
  build_options.max_states = 1u << 22;  // chains-10x3 reaches ~2.1M states
  build_options.jobs = jobs;
  const sg::StateGraph g = stg::build_state_graph(net, build_options);

  TierTiming timing;
  timing.name = "chains-" + std::to_string(chains) + "x3";
  timing.states = g.num_states();
  timing.signals = g.num_signals();
  timing.jobs = jobs;
  timing.sampled_identity = timing.states > kFullIdentityLimit;
  const std::vector<sg::SignalId> noninput = g.noninput_signals();
  // Deep min-of-N converges on the true floor on a noisy host, but the
  // reference sweeps at the large tiers run for seconds each; scale the
  // sample count down as the tier grows.
  const int reps = smoke                     ? 1
                   : timing.states > 1000000 ? 1
                   : timing.states > 100000  ? 2
                   : timing.states > 20000   ? 3
                                             : 5;

  // --- regions: ER extraction + quiescent closure + trigger SCCs ---------
  // The fast leg is the pipeline's production call: one shared plane sweep
  // for all signals, then the per-signal floods spread over the pool.
  std::size_t reference_regions = 0, fast_regions = 0;
  std::vector<sg::SignalRegions> fast_all_regions;
  MinTimer regions_ref_t, regions_fast_t;
  for (int r = 0; r < reps; ++r) {
    regions_ref_t.sample([&] {
      reference_regions = 0;
      for (const sg::SignalId a : noninput)
        reference_regions += sg::compute_regions_reference(g, a).regions.size();
    });
    regions_fast_t.sample([&] {
      fast_all_regions = sg::compute_all_regions(g, jobs);
      fast_regions = 0;
      for (const sg::SignalRegions& sr : fast_all_regions) fast_regions += sr.regions.size();
    });
  }
  timing.regions_reference_ms = regions_ref_t.best;
  timing.regions_fast_ms = regions_fast_t.best;

  bool identical = reference_regions == fast_regions;
  // Byte equality over the rendering, one signal at a time so the two
  // strings in flight stay bounded; above the full-identity limit a
  // deterministic sample of signals (first, last, every third) stands in
  // for the set — a full 524k-state rendering per signal is ~100MB.
  for (std::size_t k = 0; k < noninput.size(); ++k) {
    if (timing.sampled_identity && k % 3 != 0 && k + 1 != noninput.size()) continue;
    identical = identical && sg::compute_regions_reference(g, noninput[k]).to_string(g) ==
                                 fast_all_regions[k].to_string(g);
  }

  // --- coding: CSC / USC / conflict counting / detonant states -----------
  std::size_t reference_coding = 0, fast_coding = 0;
  MinTimer coding_ref_t, coding_fast_t;
  for (int r = 0; r < reps; ++r) {
    coding_ref_t.sample([&] {
      reference_coding = sg::check_csc_reference(g).violations.size() +
                         sg::check_usc_reference(g).violations.size() +
                         sg::count_csc_conflicts_reference(g);
      for (const sg::SignalId a : noninput)
        reference_coding += sg::detonant_states_reference(g, a).size();
    });
    coding_fast_t.sample([&] {
      fast_coding = sg::check_csc(g, jobs).violations.size() +
                    sg::check_usc(g, jobs).violations.size() + sg::count_csc_conflicts(g, jobs);
      for (const std::vector<sg::StateId>& det : sg::all_detonant_states(g, jobs))
        fast_coding += det.size();
    });
  }
  timing.coding_reference_ms = coding_ref_t.best;
  timing.coding_fast_ms = coding_fast_t.best;

  identical = identical && reference_coding == fast_coding &&
              sg::check_csc_reference(g).summary() == sg::check_csc(g, jobs).summary() &&
              sg::check_usc_reference(g).summary() == sg::check_usc(g, jobs).summary();
  const std::vector<std::vector<sg::StateId>> fast_detonant = sg::all_detonant_states(g, jobs);
  for (std::size_t k = 0; k < noninput.size(); ++k)
    identical = identical && sg::detonant_states_reference(g, noninput[k]) == fast_detonant[k];

  // --- trigger: cube membership over all trigger regions ------------------
  // The cover under test is the monotonous ER-supercube cover: one cube per
  // excitation region, which covers every trigger region (TR subset of ER),
  // so both membership kernels scan the whole cover without mutating it.
  // The spec part of DerivedSpec is only consulted when a repair is
  // attempted, so an empty spec with the standard output mapping suffices
  // — full derive_spec at 524k states x 28 signals would add minutes of
  // setup for bytes the kernel never reads.
  const std::vector<sg::SignalRegions>& regions = fast_all_regions;
  core::DerivedSpec derived{
      logic::TwoLevelSpec(g.num_signals(), 2 * static_cast<int>(noninput.size())), {}};
  for (std::size_t k = 0; k < noninput.size(); ++k)
    derived.outputs.push_back({noninput[k], 2 * static_cast<int>(k), 2 * static_cast<int>(k) + 1});
  logic::Cover base_cover(g.num_signals(), derived.spec.num_outputs());
  for (const sg::SignalRegions& sr : regions) {
    const core::OutputIndex& index = derived.for_signal(sr.signal);
    for (const sg::ExcitationRegion& er : sr.regions) {
      logic::Cube cube = logic::Cube::minterm(g.code(er.states.front()), g.num_signals(), 0);
      for (std::size_t i = 1; i < er.states.size(); ++i)
        cube = cube.supercube(logic::Cube::minterm(g.code(er.states[i]), g.num_signals(), 0));
      cube.set_outputs(1ULL << (er.rising ? index.set_output : index.reset_output));
      base_cover.add(cube);
    }
  }

  logic::Cover reference_cover = base_cover, fast_cover = base_cover;
  core::TriggerReport reference_report, fast_report;
  const int trigger_repeats = smoke ? 1 : 50;
  MinTimer trigger_ref_t, trigger_fast_t;
  for (int r = 0; r < reps; ++r) {
    trigger_ref_t.sample([&] {
      for (int i = 0; i < trigger_repeats; ++i)
        reference_report =
            core::enforce_trigger_requirement(g, regions, derived, reference_cover, {true});
    });
    trigger_fast_t.sample([&] {
      for (int i = 0; i < trigger_repeats; ++i)
        fast_report = core::enforce_trigger_requirement(g, regions, derived, fast_cover, {false});
    });
  }
  timing.trigger_reference_ms = trigger_ref_t.best;
  timing.trigger_fast_ms = trigger_fast_t.best;

  identical = identical &&
              trigger_fingerprint(g, reference_report) == trigger_fingerprint(g, fast_report) &&
              reference_cover.to_string() == fast_cover.to_string() &&
              reference_cover.to_string() == base_cover.to_string();

  // --- reachability: marking-graph construction from the STG --------------
  stg::ReachabilityOptions options = build_options;
  int reference_states = 0, fast_states = 0;
  MinTimer reach_ref_t, reach_fast_t;
  for (int r = 0; r < reps; ++r) {
    options.reference_maps = true;
    reach_ref_t.sample(
        [&] { reference_states = stg::build_state_graph(net, options).num_states(); });
    options.reference_maps = false;
    reach_fast_t.sample([&] { fast_states = stg::build_state_graph(net, options).num_states(); });
  }
  timing.reachability_reference_ms = reach_ref_t.best;
  timing.reachability_fast_ms = reach_fast_t.best;

  options.reference_maps = true;
  const sg::StateGraph reference_g = stg::build_state_graph(net, options);
  identical = identical && reference_states == fast_states && sg_identical(reference_g, g);

  timing.identical = identical;
  return timing;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool huge = false;
  int jobs = 1;
  int only_tier = 0;
  const char* out_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else if (std::strcmp(argv[i], "--huge") == 0)
      huge = true;
    else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      jobs = std::max(1, std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--tier") == 0 && i + 1 < argc)
      only_tier = std::clamp(std::atoi(argv[++i]), 1, 10);
    else
      out_path = argv[i];
  }

  const int hardware = exec::hardware_jobs();
  // 5..9 chains of 3 signals: ~2k, ~8k, ~33k, ~131k, ~524k states — the
  // default largest tier is ~111x the largest Table 2 circuit; --huge adds
  // chains-10x3 (~2.1M states), mostly as a bounded-memory soak of the
  // sharded reachability arena.  --tier N measures exactly one tier — CI
  // combines it with --smoke to touch the half-million-state tier without
  // paying for the full ladder.
  std::vector<int> tiers = smoke ? std::vector<int>{5, 6} : std::vector<int>{5, 6, 7, 8, 9};
  if (huge && !smoke) tiers.push_back(10);
  if (only_tier > 0) tiers = {only_tier};

  std::printf("Scale bench: word-parallel kernels vs ordered references, jobs=%d (host hw %d)%s\n\n",
              jobs, hardware, smoke ? " (smoke)" : "");
  std::printf("%-12s %8s %8s  %19s %19s %19s %19s %8s\n", "tier", "states", "signals",
              "regions ref/fast", "coding ref/fast", "trigger ref/fast", "reach ref/fast",
              "combined");

  bool all_identical = true;
  std::vector<TierTiming> timings;
  for (const int chains : tiers) {
    const TierTiming t = measure_tier(chains, smoke, jobs);
    NSHOT_REQUIRE(t.identical, "fast kernels diverged from reference on " + t.name);
    all_identical &= t.identical;
    std::printf("%-12s %8d %8d  %8.1f/%8.1fms %8.1f/%8.1fms %8.1f/%8.1fms %8.1f/%8.1fms %7.2fx\n",
                t.name.c_str(), t.states, t.signals, t.regions_reference_ms, t.regions_fast_ms,
                t.coding_reference_ms, t.coding_fast_ms, t.trigger_reference_ms, t.trigger_fast_ms,
                t.reachability_reference_ms, t.reachability_fast_ms, t.combined_speedup());
    timings.push_back(t);
  }

  // One single-shot analysis of the largest tier under an obs::Session —
  // parse → reachability → implementability → regions, each exactly once
  // (the timed loops above repeat kernels, which would turn pass totals
  // into rep-count artifacts) — so BENCH_scale.json carries a per-pass
  // wall-time breakdown at scale.
  std::string passes_fragment;
  {
    obs::Session session("bench_scale", "chains-" + std::to_string(tiers.back()) + "x3");
    const stg::Stg net = stg::parse_g(tier_g(tiers.back()));
    stg::ReachabilityOptions scale_options;
    scale_options.max_states = 1u << 22;
    scale_options.jobs = jobs;
    const sg::StateGraph scale_g = stg::build_state_graph(net, scale_options);
    sg::check_implementability(scale_g);
    sg::compute_all_regions(scale_g, jobs);
    passes_fragment = obs::passes_json_fragment(session.report());
  }

  const TierTiming& largest = timings.back();
  std::printf(
      "\nlargest tier (%s, %d states): combined regions+coding+trigger %.2fx, "
      "reachability %.2fx\n",
      largest.name.c_str(), largest.states, largest.combined_speedup(),
      largest.reachability_fast_ms > 0
          ? largest.reachability_reference_ms / largest.reachability_fast_ms
          : 0);
  // The acceptance floor this PR claims; smoke runs take one unwarmed
  // sample of shrunk workloads, which is a sanity check, not a measurement.
  if (!smoke)
    NSHOT_REQUIRE(largest.combined_speedup() >= 3.0,
                  "combined kernel speedup fell below the 3x floor at " + largest.name);

  std::ostringstream json;
  json << "{\n  \"hardware_jobs\": " << hardware << ",\n  \"jobs\": " << jobs
       << ",\n  \"smoke\": " << (smoke ? "true" : "false")
       << ",\n  \"byte_identical\": " << (all_identical ? "true" : "false")
       << ",\n  \"largest_tier_combined_speedup\": " << largest.combined_speedup()
       << ",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const TierTiming& t = timings[i];
    json << "    {\"name\": \"" << t.name << "\", \"states\": " << t.states
         << ", \"signals\": " << t.signals << ", \"jobs\": " << t.jobs
         << ", \"hardware_concurrency\": " << hardware
         << ", \"identity\": \"" << (t.sampled_identity ? "sampled" : "full") << "\""
         << ", \"regions_reference_ms\": " << t.regions_reference_ms
         << ", \"regions_fast_ms\": " << t.regions_fast_ms
         << ", \"coding_reference_ms\": " << t.coding_reference_ms
         << ", \"coding_fast_ms\": " << t.coding_fast_ms
         << ", \"trigger_reference_ms\": " << t.trigger_reference_ms
         << ", \"trigger_fast_ms\": " << t.trigger_fast_ms
         << ", \"reachability_reference_ms\": " << t.reachability_reference_ms
         << ", \"reachability_fast_ms\": " << t.reachability_fast_ms
         << ", \"combined_speedup\": " << t.combined_speedup() << "}"
         << (i + 1 < timings.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"observability\": {\"tier\": \"chains-" << tiers.back() << "x3\", "
       << passes_fragment << "}\n}\n";
  std::ofstream(out_path) << json.str();
  std::printf("wrote %s\n", out_path);
  return 0;
}
