// Tests for the N-SHOT synthesis flow: Table 1 spec derivation, trigger
// requirement (Theorem 1), delay requirement (Eq. 1), architecture mapping
// (Figure 3) and flip-flop initialization (Section IV-F).
#include <gtest/gtest.h>

#include <cmath>

#include "bench_suite/benchmarks.hpp"
#include "bench_suite/generators.hpp"
#include "gatelib/gate_library.hpp"
#include "logic/verify.hpp"
#include "nshot/hazard_analysis.hpp"
#include "nshot/synthesis.hpp"
#include "sg/regions.hpp"

namespace nshot::core {
namespace {

using gatelib::GateLibrary;
using gatelib::GateType;

// ------------------------------------------------- Table 1 / derivation --

TEST(SpecDerivationTest, ClassifyMatchesTable1OnOrCell) {
  const sg::StateGraph cell = bench_suite::or_causality_cell("cell", "");
  const sg::SignalId c = *cell.find_signal("c");
  int set_states = 0, reset_states = 0, qh = 0, ql = 0;
  for (sg::StateId s = 0; s < cell.num_states(); ++s) {
    switch (classify_state(cell, s, c)) {
      case Mode::kSet: ++set_states; break;
      case Mode::kReset: ++reset_states; break;
      case Mode::kQuiescentHigh: ++qh; break;
      case Mode::kQuiescentLow: ++ql; break;
    }
  }
  EXPECT_EQ(set_states, 3);    // ER(+c)
  EXPECT_EQ(reset_states, 3);  // ER(-c)
  EXPECT_EQ(qh, 4);            // QR(+c): c=1 stable
  EXPECT_EQ(ql, 4);            // QR(-c): c=0 stable
}

TEST(SpecDerivationTest, SetAndResetSpecFollowTable1) {
  const sg::StateGraph cell = bench_suite::or_causality_cell("cell", "");
  const DerivedSpec derived = derive_spec(cell);
  ASSERT_EQ(derived.outputs.size(), 1u);  // only c is non-input
  const OutputIndex& index = derived.outputs[0];

  // Per Table 1: |F_set| = |ER(+c)| = 3, |R_set| = |ER(-c) u QR(-c)| = 7.
  EXPECT_EQ(derived.spec.on(index.set_output).size(), 3u);
  EXPECT_EQ(derived.spec.off(index.set_output).size(), 7u);
  EXPECT_EQ(derived.spec.on(index.reset_output).size(), 3u);
  EXPECT_EQ(derived.spec.off(index.reset_output).size(), 7u);
}

TEST(SpecDerivationTest, SharedCodesStayConsistentUnderCsc) {
  // read-write core: two states share a code; the derived spec must not
  // put that code in both F and R (CSC guarantees it).
  const sg::StateGraph g = bench_suite::build_read_write_core();
  EXPECT_NO_THROW(derive_spec(g));
}

TEST(SpecDerivationTest, ModeNamesAreStable) {
  EXPECT_STREQ(mode_name(Mode::kSet), "+a (set)");
  EXPECT_STREQ(mode_name(Mode::kQuiescentLow), "a=0 (quiescent)");
}

// ---------------------------------------------------- trigger (Thm. 1) --

TEST(TriggerTest, HasTriggerCubeDetectsCoverage) {
  logic::Cover cover(2, 1);
  logic::Cube cube = logic::Cube::minterm(0b01, 2, 1);
  cube.raise_var(1);
  cover.add(cube);  // covers {01, 11}
  EXPECT_TRUE(has_trigger_cube(cover, 0, {0b01, 0b11}));
  EXPECT_FALSE(has_trigger_cube(cover, 0, {0b01, 0b00}));
}

TEST(TriggerTest, SingleTraversalNeedsNoRepair) {
  const sg::StateGraph g = bench_suite::build_benchmark("chu172");
  const SynthesisResult result = synthesize(g);
  EXPECT_TRUE(result.single_traversal);
  EXPECT_EQ(result.trigger.cubes_added, 0);
}

TEST(TriggerTest, NonSingleTraversalIsRepairedWithTriggerCubes) {
  // The sing2dual products have multi-state trigger regions (a cyclic peer
  // runs inside the excitation regions); every one must end up covered by
  // a single cube.
  const sg::StateGraph g = bench_suite::build_benchmark("sing2dual-inp");
  const SynthesisResult result = synthesize(g);
  EXPECT_FALSE(result.single_traversal);
  EXPECT_TRUE(result.trigger.satisfied());
  // Re-check explicitly: every trigger region of every signal has a cube.
  const DerivedSpec derived = derive_spec(g);
  for (const sg::SignalRegions& regions : sg::compute_all_regions(g)) {
    const OutputIndex& index = derived.for_signal(regions.signal);
    for (const sg::ExcitationRegion& er : regions.regions) {
      for (const auto& tr : er.trigger_regions) {
        std::vector<std::uint64_t> codes;
        for (const sg::StateId s : tr) codes.push_back(g.code(s));
        EXPECT_TRUE(has_trigger_cube(result.cover,
                                     er.rising ? index.set_output : index.reset_output, codes));
      }
    }
  }
}

TEST(TriggerTest, RepairAddsSupercubesToFragmentedCover) {
  // Start from a deliberately fragmented cover (one minterm cube per
  // on-pair): the multi-state trigger regions of the product benchmark are
  // split across cubes, so enforcement must add their supercubes.
  const sg::StateGraph g = bench_suite::build_benchmark("sing2dual-inp");
  const DerivedSpec derived = derive_spec(g);
  logic::Cover cover(derived.spec.num_inputs(), derived.spec.num_outputs());
  for (int o = 0; o < derived.spec.num_outputs(); ++o)
    for (const std::uint64_t code : derived.spec.on(o))
      cover.add(logic::Cube::minterm(code, derived.spec.num_inputs(), 1ULL << o));

  const auto regions = sg::compute_all_regions(g);
  const TriggerReport report = enforce_trigger_requirement(g, regions, derived, cover);
  EXPECT_GT(report.cubes_added, 0);
  EXPECT_TRUE(report.satisfied());
  EXPECT_TRUE(logic::verify_cover(derived.spec, cover).ok);
}

TEST(TriggerTest, UnrepairableRegionIsReportedNotPatched) {
  // Unit-level check of the Theorem 1 "only if" branch: if the supercube
  // of a trigger region intersects the off-set, no trigger cube exists and
  // the enforcement must report the region as unrepairable.
  const sg::StateGraph g = bench_suite::build_benchmark("sing2dual-inp");
  DerivedSpec derived = derive_spec(g);

  // Find a multi-state trigger region and poison the spec with an off
  // minterm strictly inside its supercube.
  const auto regions = sg::compute_all_regions(g);
  for (const auto& signal_regions : regions) {
    const OutputIndex& index = derived.for_signal(signal_regions.signal);
    for (const auto& er : signal_regions.regions) {
      for (const auto& tr : er.trigger_regions) {
        if (tr.size() < 2) continue;
        logic::Cube supercube = logic::Cube::minterm(g.code(tr[0]), g.num_signals(), 0);
        for (const sg::StateId s : tr)
          supercube = supercube.supercube(logic::Cube::minterm(g.code(s), g.num_signals(), 0));
        // A code inside the supercube but not one of the region's codes.
        for (std::uint64_t probe = 0; probe < (1ULL << g.num_signals()); ++probe) {
          if (!supercube.covers_minterm(probe)) continue;
          bool is_member = false;
          for (const sg::StateId s : tr) is_member = is_member || g.code(s) == probe;
          if (is_member) continue;
          const int output = er.rising ? index.set_output : index.reset_output;
          derived.spec.add_off(output, probe);
          derived.spec.normalize();
          logic::Cover empty(derived.spec.num_inputs(), derived.spec.num_outputs());
          const TriggerReport report =
              enforce_trigger_requirement(g, regions, derived, empty);
          EXPECT_FALSE(report.satisfied());
          return;
        }
      }
    }
  }
  FAIL() << "expected a multi-state trigger region in sing2dual-inp";
}

// ------------------------------------------------------- Eq. 1 (delay) --

TEST(DelayRequirementTest, BalancedSopsNeedNoCompensation) {
  const GateLibrary& lib = GateLibrary::standard();
  const DelayRequirement req = compute_delay_requirement(2, 2, lib);
  EXPECT_LE(req.t_del, 0.0);
  EXPECT_FALSE(req.compensation_needed());
}

TEST(DelayRequirementTest, HighlySkewedSopsNeedCompensation) {
  const GateLibrary& lib = GateLibrary::standard();
  // Deep set SOP vs single-wire reset: Eq. 1 goes positive.
  const DelayRequirement req = compute_delay_requirement(4, 1, lib);
  EXPECT_GT(req.t_set0_worst, req.t_res1_fast);
  EXPECT_TRUE(req.compensation_needed());
}

TEST(DelayRequirementTest, FormulaMatchesEq1) {
  const GateLibrary& lib = GateLibrary::standard();
  const DelayRequirement req = compute_delay_requirement(3, 2, lib);
  const double expected = std::max(req.t_set0_worst - req.t_res1_fast - req.t_mhs,
                                   req.t_res0_worst - req.t_set1_fast - req.t_mhs);
  EXPECT_DOUBLE_EQ(req.t_del, expected);
}

TEST(DelayRequirementTest, SopLevelsCountAndOrTrees) {
  logic::Cover cover(8, 1);
  logic::Cube cube = logic::Cube::full(8, 1);
  for (int v = 0; v < 6; ++v) cube.restrict_var(v, true);  // 6 literals
  cover.add(cube);
  const GateLibrary& lib = GateLibrary::standard();
  // 6 literals -> two AND levels (max fanin 4); single cube -> no OR tree.
  EXPECT_EQ(sop_levels(cover, 0, lib), 2);
  // Add more cubes: an OR level appears.
  cover.add(logic::Cube::minterm(0b11111111, 8, 1));
  cover.add(logic::Cube::minterm(0b00000000, 8, 1));
  EXPECT_EQ(sop_levels(cover, 0, lib), 3);
  // Constant (absent) function: no levels.
  EXPECT_EQ(sop_levels(cover, 0, GateLibrary::standard()), 3);
  logic::Cover empty(8, 1);
  EXPECT_EQ(sop_levels(empty, 0, lib), 0);
}

// ------------------------------------------------------ hazard analysis --

TEST(HazardAnalysisTest, XorStyleCoverHasStaticOneHazards) {
  // chu172's next-state functions: espresso produces a cover whose
  // covering cube changes along specified arcs (the reason sis_like pads).
  const sg::StateGraph g = bench_suite::build_benchmark("chu172");
  // Reuse the SIS-like next-state spec shape: set up on/off by hand via
  // the derived spec of the set function and look for handovers.
  const DerivedSpec derived = derive_spec(g);
  const logic::Cover cover = logic::espresso(derived.spec);
  int total_sites = 0;
  for (const OutputIndex& index : derived.outputs) {
    total_sites +=
        static_cast<int>(static_one_hazards(g, derived.spec, cover, index.set_output).size());
    total_sites +=
        static_cast<int>(static_one_hazards(g, derived.spec, cover, index.reset_output).size());
  }
  // The set/reset on-sets are excitation regions: a state and its in-region
  // successor are on-on pairs; cube handovers inside a region are rare for
  // these small covers, so just check the API is total and consistent.
  EXPECT_GE(total_sites, 0);
}

TEST(HazardAnalysisTest, SingleCubeCoverHasNoStaticOneHazard) {
  // A function covered by ONE cube can never hand over between cubes.
  const sg::StateGraph g = bench_suite::build_benchmark("full");
  const DerivedSpec derived = derive_spec(g);
  const logic::Cover cover = logic::espresso(derived.spec);
  for (const OutputIndex& index : derived.outputs) {
    if (cover.cube_count_for_output(index.set_output) == 1) {
      EXPECT_TRUE(static_one_hazards(g, derived.spec, cover, index.set_output).empty());
    }
  }
}

TEST(HazardAnalysisTest, SopActivityCountsPulseSources) {
  // The OR cell's set function is ON in the ER and DON'T-CARE in the QR:
  // the minimizer's choice makes the SOP value change along region arcs —
  // the statically-visible pulse sources of Figure 3.
  const sg::StateGraph cell = bench_suite::or_causality_cell("cell", "");
  const DerivedSpec derived = derive_spec(cell);
  const logic::Cover cover = logic::espresso(derived.spec);
  const OutputIndex& index = derived.outputs[0];
  const sg::SignalRegions regions = sg::compute_regions(cell, index.signal);
  int activity = 0;
  for (const sg::ExcitationRegion& er : regions.regions)
    activity += sop_activity_edges(cell, cover, er.rising ? index.set_output : index.reset_output,
                                   er);
  EXPECT_GT(activity, 0);
}

// -------------------------------------------------- architecture / init --

TEST(ArchitectureTest, NetlistHasOneMhsPerNonInputSignal) {
  const sg::StateGraph g = bench_suite::build_benchmark("ebergen");
  const SynthesisResult result = synthesize(g);
  int mhs = 0;
  for (const auto& gate : result.circuit.gates())
    if (gate.type == GateType::kMhsFlipFlop) {
      ++mhs;
      ASSERT_EQ(gate.inputs.size(), 4u);   // set, reset, enable_set, enable_reset
      ASSERT_EQ(gate.outputs.size(), 2u);  // q, qb (dual rail)
    }
  EXPECT_EQ(mhs, static_cast<int>(g.noninput_signals().size()));
  // Every non-input signal has both rails.
  for (const sg::SignalId a : g.noninput_signals()) {
    EXPECT_TRUE(result.circuit.find_net(g.signal(a).name).has_value());
    EXPECT_TRUE(result.circuit.find_net(g.signal(a).name + "_b").has_value());
  }
}

TEST(ArchitectureTest, NoInvertersNeededForNonInputLiterals) {
  // The flip-flop is dual-rail encoded: negative literals of non-input
  // signals use the qb rail, so no INV gate is ever emitted by the
  // architecture builder.
  const sg::StateGraph g = bench_suite::build_benchmark("pmcm1");
  const SynthesisResult result = synthesize(g);
  for (const auto& gate : result.circuit.gates()) EXPECT_NE(gate.type, GateType::kInv);
}

TEST(ArchitectureTest, DelayLinesOnlyWhenEq1Positive) {
  for (const char* name : {"chu133", "full", "pmcm2"}) {
    const SynthesisResult result = synthesize(bench_suite::build_benchmark(name));
    int delay_lines = 0;
    for (const auto& gate : result.circuit.gates())
      if (gate.type == GateType::kDelayLine) ++delay_lines;
    bool any_needed = false;
    for (const SignalImplementation& impl : result.signals)
      if (impl.delay.compensation_needed()) any_needed = true;
    EXPECT_EQ(delay_lines > 0, any_needed) << name;
    EXPECT_EQ(result.delay_compensation_used, any_needed) << name;
  }
}

TEST(ArchitectureTest, InitializationAnalysisFollowsSectionIVF) {
  const sg::StateGraph cell = bench_suite::or_causality_cell("cell", "");
  const SynthesisResult result = synthesize(cell);
  ASSERT_EQ(result.signals.size(), 1u);
  // Initial state (all zero) is in QR(-c): init value 0; the explicit
  // reset term is needed only if the reset SOP is 0 there.
  EXPECT_FALSE(result.signals[0].init.value);
  const OutputIndex& index = result.derived.outputs[0];
  const bool reset_on_s0 = result.cover.covers(cell.code(cell.initial()), index.reset_output);
  EXPECT_EQ(result.signals[0].init.explicit_reset, !reset_on_s0);
}

TEST(ArchitectureTest, InitValueMatchesInitialCode) {
  const sg::StateGraph g = bench_suite::build_benchmark("vbe5b");
  const SynthesisResult result = synthesize(g);
  for (const SignalImplementation& impl : result.signals)
    EXPECT_EQ(impl.init.value, g.value(g.initial(), impl.signal));
}

TEST(ArchitectureTest, ForcedCompensationInsertsWorkingDelayLines) {
  // Exercise the delay-line branch of the builder end-to-end: hand the
  // architecture a positive Eq. 1 requirement and check that (a) the delay
  // lines appear on the enable rails and (b) the circuit still conforms
  // (compensation only slows the enables down, it never breaks them).
  const sg::StateGraph cell = bench_suite::or_causality_cell("cell", "");
  const DerivedSpec derived = derive_spec(cell);
  logic::Cover cover = logic::espresso(derived.spec);
  DelayRequirement forced;
  forced.t_del = 1.0;
  const netlist::Netlist circuit = build_nshot_netlist(cell, derived, cover, {forced});
  int delay_lines = 0;
  for (const auto& gate : circuit.gates())
    if (gate.type == GateType::kDelayLine) {
      ++delay_lines;
      EXPECT_DOUBLE_EQ(gate.explicit_delay, 1.0);
    }
  EXPECT_EQ(delay_lines, 2);  // one per enable rail of the single MHS
}

// ----------------------------------------------------------- synthesis --

TEST(SynthesisTest, CoverSatisfiesDerivedSpec) {
  for (const char* name : {"chu133", "converta", "pmcm1", "read-write"}) {
    const sg::StateGraph g = bench_suite::build_benchmark(name);
    const SynthesisResult result = synthesize(g);
    const logic::VerifyResult ok = logic::verify_cover(result.derived.spec, result.cover);
    EXPECT_TRUE(ok.ok) << name << ": " << ok.message;
  }
}

TEST(SynthesisTest, ExactModeProducesValidAndNoWorseCover) {
  const sg::StateGraph g = bench_suite::build_benchmark("chu172");
  SynthesisOptions exact_options;
  exact_options.exact = true;
  const SynthesisResult heuristic = synthesize(g);
  const SynthesisResult exact = synthesize(g, exact_options);
  EXPECT_TRUE(logic::verify_cover(exact.derived.spec, exact.cover).ok);
  // Exact minimizes per output (no sharing), so compare per-output counts.
  for (std::size_t k = 0; k < exact.signals.size(); ++k) {
    EXPECT_LE(exact.signals[k].set_cubes, heuristic.signals[k].set_cubes);
    EXPECT_LE(exact.signals[k].reset_cubes, heuristic.signals[k].reset_cubes);
  }
}

TEST(SynthesisTest, RejectsCscViolation) {
  sg::StateGraph g("bad");
  const sg::SignalId x = g.add_signal("x", sg::SignalKind::kInput);
  const sg::SignalId y = g.add_signal("y", sg::SignalKind::kNonInput);
  const sg::StateId a = g.add_state(0b00);
  const sg::StateId b = g.add_state(0b01);
  const sg::StateId c = g.add_state(0b00);
  const sg::StateId d = g.add_state(0b10);
  g.add_edge(a, {x, true}, b);
  g.add_edge(b, {x, false}, c);
  g.add_edge(c, {y, true}, d);
  g.add_edge(d, {y, false}, a);
  g.set_initial(a);
  EXPECT_THROW(synthesize(g), SynthesisError);
}

TEST(SynthesisTest, ExplicitResetTermsAreChargedInArea) {
  // The OR cell starts in QR(-c) with the reset SOP at 0, so the MHS needs
  // an explicit reset term (Section IV-F) — one small AND of area.
  const sg::StateGraph cell = bench_suite::or_causality_cell("cell", "");
  const SynthesisResult result = synthesize(cell);
  ASSERT_TRUE(result.signals[0].init.explicit_reset);
  const double netlist_area =
      result.circuit.stats(GateLibrary::standard()).area;
  EXPECT_DOUBLE_EQ(result.stats.area,
                   netlist_area + GateLibrary::standard().area(GateType::kAnd, 1));
}

TEST(SynthesisTest, StatsAreConsistent) {
  const sg::StateGraph g = bench_suite::build_benchmark("hazard");
  const SynthesisResult result = synthesize(g);
  EXPECT_GT(result.stats.area, 0.0);
  EXPECT_GT(result.stats.delay, 0.0);
  EXPECT_EQ(result.stats.gate_count, result.circuit.num_gates());
  // Delay is level-quantized (multiple of 1.2).
  const double levels = result.stats.delay / 1.2;
  EXPECT_NEAR(levels, std::round(levels), 1e-9);
}

TEST(SynthesisTest, DescribeMentionsEverySignal) {
  const sg::StateGraph g = bench_suite::build_benchmark("full");
  const SynthesisResult result = synthesize(g);
  const std::string text = describe(g, result);
  for (const sg::SignalId a : g.noninput_signals())
    EXPECT_NE(text.find(g.signal(a).name), std::string::npos);
}

TEST(SynthesisTest, ProductShareOptionReducesOrKeepsCubeCount) {
  const sg::StateGraph g = bench_suite::build_benchmark("pmcm1");
  SynthesisOptions no_share;
  no_share.share_products = false;
  const SynthesisResult shared = synthesize(g);
  const SynthesisResult unshared = synthesize(g, no_share);
  EXPECT_LE(shared.cover.size(), unshared.cover.size());
}

}  // namespace
}  // namespace nshot::core
