// Value Change Dump (IEEE 1364) trace writer for the event simulator, so
// simulations can be inspected in any waveform viewer (GTKWave etc.) —
// the role the paper's VERILOG traces played in Section V.
//
// Usage: construct a VcdRecorder over the netlist, install its observer
// on the simulator (or chain it from your own observer), run, then
// `write()` the collected trace.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/event_sim.hpp"

namespace nshot::sim {

/// Collects net value changes and renders them as VCD text.
class VcdRecorder {
 public:
  /// Records every net of `netlist`; `timescale` is the VCD unit label
  /// for one simulator time unit (purely cosmetic).
  explicit VcdRecorder(const netlist::Netlist& netlist, std::string timescale = "1ns");

  /// Observer to install on the simulator.  Initial values must be
  /// captured by calling `capture_initial` after Simulator::initialize.
  NetObserver observer();

  /// Record the post-initialization value of every net at time 0.
  void capture_initial(const Simulator& sim);

  /// Render the collected trace as VCD text.
  std::string write() const;

 private:
  struct Change {
    double time;
    netlist::NetId net;
    bool value;
  };

  /// Compact VCD identifier for net `n` (printable-ASCII base-94).
  static std::string id_for(netlist::NetId n);

  const netlist::Netlist& netlist_;
  std::string timescale_;
  std::vector<bool> initial_;
  bool have_initial_ = false;
  std::vector<Change> changes_;
};

}  // namespace nshot::sim
