# Empty compiler generated dependencies file for nondistributive_interfaces.
# This may be replaced when dependencies are built.
