file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mhs.dir/bench_ablation_mhs.cpp.o"
  "CMakeFiles/bench_ablation_mhs.dir/bench_ablation_mhs.cpp.o.d"
  "bench_ablation_mhs"
  "bench_ablation_mhs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mhs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
