// Minimal PLA (espresso input format) reader/writer.
//
// Supported directives: .i, .o, .p (ignored), .ilb/.ob (names, optional),
// .e/.end.  Each row is an input pattern over {0,1,-} followed by an output
// pattern over {1,0,-} with "fd" semantics: '1' adds the minterms of the
// input cube to the on-set, '0' to the off-set, '-' to the don't-care set.
// Rows may use cubes (with '-'), which are expanded to minterms; the total
// expansion is capped to keep pathological files from exploding.
#pragma once

#include <string>

#include "logic/cover.hpp"
#include "logic/spec.hpp"

namespace nshot::logic {

struct PlaFile {
  TwoLevelSpec spec;
  std::vector<std::string> input_names;   // may be empty
  std::vector<std::string> output_names;  // may be empty
};

/// Parse PLA text; throws nshot::Error on malformed input.
PlaFile parse_pla(const std::string& text);

/// Render a cover as PLA text (on-set only, type fr-style rows).
std::string write_pla(const Cover& cover);

}  // namespace nshot::logic
