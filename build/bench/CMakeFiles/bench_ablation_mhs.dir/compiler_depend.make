# Empty compiler generated dependencies file for bench_ablation_mhs.
# This may be replaced when dependencies are built.
