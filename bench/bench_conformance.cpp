// Regenerates the experimental validation behind Section V's central
// claim: every synthesized circuit operates correctly under arbitrary
// internal delays — the combinational SOP core is allowed to glitch, the
// MHS hazard filter absorbs sub-threshold pulses, and every observable
// non-input signal sees exactly the transitions the specification enables
// (the paper validated this with VERILOG/SPICE simulation; here the
// closed-loop pure-delay event simulator plays that role).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_suite/benchmarks.hpp"
#include "nshot/synthesis.hpp"
#include "sim/conformance.hpp"

namespace {

using namespace nshot;

void print_sweep() {
  std::printf("Closed-loop conformance sweep: randomized gate delays, SG environment\n\n");
  std::printf("%-15s %6s %9s %10s %10s %9s %6s\n", "circuit", "runs", "extern", "internal",
              "absorbed", "violate", "dead");
  long total_external = 0, total_internal = 0, total_absorbed = 0;
  std::size_t total_violations = 0;
  for (const auto& info : bench_suite::all_benchmarks()) {
    if (info.paper_states > 2500) continue;  // tsbmsiBRK covered by tests
    const sg::StateGraph g = info.build();
    const core::SynthesisResult result = core::synthesize(g);
    sim::ConformanceOptions options;
    options.runs = 10;
    options.max_transitions = 150;
    options.seed = 2026;
    const sim::ConformanceReport report = sim::check_conformance(g, result.circuit, options);
    std::printf("%-15s %6d %9ld %10ld %10ld %9zu %6d\n", info.name.c_str(), report.runs,
                report.external_transitions, report.internal_toggles, report.absorbed_pulses,
                report.violations.size(), report.deadlocks);
    total_external += report.external_transitions;
    total_internal += report.internal_toggles;
    total_absorbed += report.absorbed_pulses;
    total_violations += report.violations.size();
  }
  std::printf("\ntotals: %ld conformant external transitions, %ld internal toggles,\n",
              total_external, total_internal);
  std::printf("        %ld sub-threshold pulses absorbed by MHS filters, %zu violations.\n",
              total_absorbed, total_violations);
  std::printf("=> internally hazardous, externally hazard-free — Theorem 2 in action.\n");
}

void bm_conformance_run(benchmark::State& state) {
  const sg::StateGraph g = bench_suite::build_benchmark("pmcm1");
  const core::SynthesisResult result = core::synthesize(g);
  sim::ConformanceOptions options;
  options.runs = 1;
  options.max_transitions = 100;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    const sim::ConformanceReport report = sim::check_conformance(g, result.circuit, options);
    benchmark::DoNotOptimize(report.external_transitions);
  }
}
BENCHMARK(bm_conformance_run);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
