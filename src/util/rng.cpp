#include "util/rng.hpp"

namespace nshot {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  state_ = splitmix64(s);
  if (state_ == 0) state_ = 0x2545f4914f6cdd1dULL;
}

std::uint64_t Rng::next_u64() {
  std::uint64_t x = state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  state_ = x;
  return x * 0x2545f4914f6cdd1dULL;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound * (~0ULL / bound);
  std::uint64_t value = next_u64();
  while (value >= limit) value = next_u64();
  return value % bound;
}

double Rng::next_double(double lo, double hi) {
  const double unit = static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  return lo + unit * (hi - lo);
}

bool Rng::next_bool(double p) { return next_double(0.0, 1.0) < p; }

}  // namespace nshot
