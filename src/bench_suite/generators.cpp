#include "bench_suite/generators.hpp"

#include <algorithm>
#include <sstream>

#include "stg/g_format.hpp"
#include "stg/reachability.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nshot::bench_suite {
namespace {

void emit_signals(std::ostringstream& out, const std::vector<std::string>& inputs,
                  const std::vector<std::string>& outputs) {
  if (!inputs.empty()) {
    out << ".inputs";
    for (const std::string& s : inputs) out << " " << s;
    out << "\n";
  }
  if (!outputs.empty()) {
    out << ".outputs";
    for (const std::string& s : outputs) out << " " << s;
    out << "\n";
  }
}

}  // namespace

std::string staged_cycle_g(const std::string& name, const std::vector<std::string>& inputs,
                           const std::vector<std::string>& outputs,
                           const std::vector<std::vector<std::string>>& stages) {
  NSHOT_REQUIRE(stages.size() >= 2, "staged cycle needs at least two stages");
  std::ostringstream out;
  out << ".model " << name << "\n";
  emit_signals(out, inputs, outputs);
  out << ".graph\n";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const std::vector<std::string>& next = stages[(i + 1) % stages.size()];
    for (const std::string& from : stages[i]) {
      out << from;
      for (const std::string& to : next) out << " " << to;
      out << "\n";
    }
  }
  out << ".marking {";
  for (const std::string& from : stages.back())
    for (const std::string& to : stages.front()) out << " <" << from << "," << to << ">";
  out << " }\n.end\n";
  return out.str();
}

std::string choice_cycle_g(const std::string& name, const std::vector<std::string>& inputs,
                           const std::vector<std::string>& outputs,
                           const std::vector<std::vector<std::string>>& branches) {
  NSHOT_REQUIRE(!branches.empty(), "choice cycle needs at least one branch");
  std::ostringstream out;
  out << ".model " << name << "\n";
  emit_signals(out, inputs, outputs);
  out << ".graph\n";
  for (const std::vector<std::string>& branch : branches) {
    NSHOT_REQUIRE(!branch.empty(), "empty choice branch");
    out << "p0 " << branch.front() << "\n";
    for (std::size_t i = 0; i + 1 < branch.size(); ++i)
      out << branch[i] << " " << branch[i + 1] << "\n";
    out << branch.back() << " p0\n";
  }
  out << ".marking { p0 }\n.end\n";
  return out.str();
}

std::string parallel_chains_g(const std::string& name, const std::string& master,
                              bool master_is_input,
                              const std::vector<std::vector<std::string>>& chains,
                              const std::vector<std::string>& inputs,
                              const std::vector<std::string>& outputs) {
  NSHOT_REQUIRE(!chains.empty(), "parallel chains generator needs at least one chain");
  std::ostringstream out;
  out << ".model " << name << "\n";
  std::vector<std::string> all_inputs = inputs, all_outputs = outputs;
  (master_is_input ? all_inputs : all_outputs).push_back(master);
  emit_signals(out, all_inputs, all_outputs);
  out << ".graph\n";
  for (const char polarity : {'+', '-'}) {
    const std::string m = master + polarity;
    const std::string m_next = master + (polarity == '+' ? '-' : '+');
    for (const std::vector<std::string>& chain : chains) {
      NSHOT_REQUIRE(!chain.empty(), "empty chain");
      out << m << " " << chain.front() << polarity << "\n";
      for (std::size_t i = 0; i + 1 < chain.size(); ++i)
        out << chain[i] << polarity << " " << chain[i + 1] << polarity << "\n";
      out << chain.back() << polarity << " " << m_next << "\n";
    }
  }
  out << ".marking {";
  for (const std::vector<std::string>& chain : chains)
    out << " <" << chain.back() << "-," << master << "+>";
  out << " }\n.end\n";
  return out.str();
}

sg::StateGraph build_g(const std::string& g_text) {
  return stg::build_state_graph(stg::parse_g(g_text));
}

namespace {

/// Split `names` (suffixed with `polarity`) into 1..max_stages consecutive
/// groups with random boundaries — the stage structure of every
/// reconstructed benchmark above, with the cut points drawn instead of
/// hand-picked.
std::vector<std::vector<std::string>> random_stages(Rng& rng,
                                                    const std::vector<std::string>& names,
                                                    char polarity, int max_stages) {
  std::vector<std::vector<std::string>> stages(1);
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (!stages.back().empty() && static_cast<int>(stages.size()) < max_stages &&
        rng.next_bool(0.45))
      stages.emplace_back();
    stages.back().push_back(names[i] + polarity);
  }
  return stages;
}

}  // namespace

std::string random_semimodular_g(const RandomStgOptions& options) {
  NSHOT_REQUIRE(options.max_signals >= 3, "random STG needs max_signals >= 3");
  Rng rng(options.seed ^ 0xa5a5'5a5a'1234'9e37ULL);
  const std::string name = "rand" + std::to_string(options.seed);
  const int family = static_cast<int>(rng.next_below(3));

  auto signal_name = [](int i) { return "x" + std::to_string(i); };

  if (family == 0) {
    // Staged cycle: n signals, a random nonempty proper prefix of which are
    // inputs; the rising phase and the falling phase are staged with
    // independent random barriers (mirroring chu150, where the two phases
    // cut differently).
    const int n = 3 + static_cast<int>(rng.next_below(
                          static_cast<std::uint64_t>(options.max_signals - 2)));
    const int num_inputs = 1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n - 1)));
    std::vector<std::string> inputs, outputs, all;
    for (int i = 0; i < n; ++i) {
      all.push_back(signal_name(i));
      (i < num_inputs ? inputs : outputs).push_back(all.back());
    }
    const int max_stages = 1 + n / 2;
    std::vector<std::vector<std::string>> stages = random_stages(rng, all, '+', max_stages);
    for (auto& stage : random_stages(rng, all, '-', max_stages))
      stages.push_back(std::move(stage));
    return staged_cycle_g(name, inputs, outputs, stages);
  }

  if (family == 1) {
    // Parallel chains: an input master releases 2..4 concurrent chains;
    // each chain leads with an input request and continues through output
    // stages (the wrdatab shape).
    const int num_chains =
        2 + static_cast<int>(rng.next_below(
                static_cast<std::uint64_t>(std::max(1, (options.max_signals - 2) / 2))));
    std::vector<std::vector<std::string>> chains;
    std::vector<std::string> inputs, outputs;
    int next = 0;
    for (int c = 0; c < num_chains && next < options.max_signals; ++c) {
      std::vector<std::string> chain;
      chain.push_back(signal_name(next++));
      inputs.push_back(chain.back());
      // The first chain always carries an output so the circuit has
      // something to synthesize even when every other draw comes up empty.
      const int extra = (c == 0 ? 1 : 0) + static_cast<int>(rng.next_below(c == 0 ? 2 : 3));
      for (int i = 0; i < extra && next < options.max_signals; ++i) {
        chain.push_back(signal_name(next++));
        outputs.push_back(chain.back());
      }
      chains.push_back(std::move(chain));
    }
    return parallel_chains_g(name, "m", /*master_is_input=*/true, chains, inputs, outputs);
  }

  // Choice cycle: a free-choice place selects one of 2..3 handshake
  // branches; each branch is `req+ outs+ req- outs-` over branch-private
  // signals, so the choice is confined to input transitions and distinct
  // branches cannot share codes.
  const int num_branches = 2 + static_cast<int>(rng.next_below(2));
  std::vector<std::vector<std::string>> branches;
  std::vector<std::string> inputs, outputs;
  int next = 0;
  for (int b = 0; b < num_branches; ++b) {
    const std::string req = signal_name(next++);
    inputs.push_back(req);
    std::vector<std::string> outs;
    const int extra = 1 + static_cast<int>(rng.next_below(2));
    for (int i = 0; i < extra && next < options.max_signals; ++i) {
      outs.push_back(signal_name(next++));
      outputs.push_back(outs.back());
    }
    std::vector<std::string> branch;
    branch.push_back(req + "+");
    for (const std::string& o : outs) branch.push_back(o + "+");
    branch.push_back(req + "-");
    for (const std::string& o : outs) branch.push_back(o + "-");
    branches.push_back(std::move(branch));
  }
  return choice_cycle_g(name, inputs, outputs, branches);
}

sg::StateGraph or_causality_cell(const std::string& name, const std::string& prefix) {
  sg::StateGraph cell(name);
  const sg::SignalId a = cell.add_signal(prefix + "a", sg::SignalKind::kInput);
  const sg::SignalId b = cell.add_signal(prefix + "b", sg::SignalKind::kInput);
  const sg::SignalId c = cell.add_signal(prefix + "c", sg::SignalKind::kNonInput);
  const sg::SignalId d = cell.add_signal(prefix + "d", sg::SignalKind::kInput);

  // Cycle: a+ and b+ arrive concurrently, c+ fires on the FIRST arrival
  // (OR causality: the pre-arrival state is detonant w.r.t. c); d+
  // acknowledges; a- and b- likewise race c-; d- closes the cycle.
  auto code = [&](bool va, bool vb, bool vc, bool vd) {
    return (va ? 1ULL << a : 0) | (vb ? 1ULL << b : 0) | (vc ? 1ULL << c : 0) |
           (vd ? 1ULL << d : 0);
  };
  // States, keyed by (a, b, c, d) values.
  const sg::StateId s0000 = cell.add_state(code(0, 0, 0, 0));
  const sg::StateId s1000 = cell.add_state(code(1, 0, 0, 0));
  const sg::StateId s0100 = cell.add_state(code(0, 1, 0, 0));
  const sg::StateId s1100 = cell.add_state(code(1, 1, 0, 0));
  const sg::StateId s1010 = cell.add_state(code(1, 0, 1, 0));
  const sg::StateId s0110 = cell.add_state(code(0, 1, 1, 0));
  const sg::StateId s1110 = cell.add_state(code(1, 1, 1, 0));
  const sg::StateId s1111 = cell.add_state(code(1, 1, 1, 1));
  const sg::StateId s0111 = cell.add_state(code(0, 1, 1, 1));
  const sg::StateId s1011 = cell.add_state(code(1, 0, 1, 1));
  const sg::StateId s0011 = cell.add_state(code(0, 0, 1, 1));
  const sg::StateId s0101 = cell.add_state(code(0, 1, 0, 1));
  const sg::StateId s1001 = cell.add_state(code(1, 0, 0, 1));
  const sg::StateId s0001 = cell.add_state(code(0, 0, 0, 1));

  const sg::TransitionLabel ap{a, true}, am{a, false}, bp{b, true}, bm{b, false};
  const sg::TransitionLabel cp{c, true}, cm{c, false}, dp{d, true}, dm{d, false};

  cell.add_edge(s0000, ap, s1000);  // detonant state w.r.t. c (0*0*00)
  cell.add_edge(s0000, bp, s0100);
  cell.add_edge(s1000, bp, s1100);
  cell.add_edge(s1000, cp, s1010);
  cell.add_edge(s0100, ap, s1100);
  cell.add_edge(s0100, cp, s0110);
  cell.add_edge(s1100, cp, s1110);
  cell.add_edge(s1010, bp, s1110);
  cell.add_edge(s0110, ap, s1110);
  cell.add_edge(s1110, dp, s1111);
  cell.add_edge(s1111, am, s0111);  // detonant state w.r.t. c (1*1*11)
  cell.add_edge(s1111, bm, s1011);
  cell.add_edge(s0111, bm, s0011);
  cell.add_edge(s0111, cm, s0101);
  cell.add_edge(s1011, am, s0011);
  cell.add_edge(s1011, cm, s1001);
  cell.add_edge(s0011, cm, s0001);
  cell.add_edge(s0101, bm, s0001);
  cell.add_edge(s1001, am, s0001);
  cell.add_edge(s0001, dm, s0000);
  cell.set_initial(s0000);
  return cell;
}

sg::StateGraph sg_product(const sg::StateGraph& a, const sg::StateGraph& b,
                          const std::string& name) {
  sg::StateGraph product(name);
  for (int x = 0; x < a.num_signals(); ++x)
    product.add_signal(a.signal(x).name, a.signal(x).kind);
  for (int x = 0; x < b.num_signals(); ++x)
    product.add_signal(b.signal(x).name, b.signal(x).kind);

  // All pairs are reachable (the components are independent).
  const int nb = b.num_states();
  auto pair_id = [nb](sg::StateId sa, sg::StateId sb) { return sa * nb + sb; };
  for (sg::StateId sa = 0; sa < a.num_states(); ++sa)
    for (sg::StateId sb = 0; sb < b.num_states(); ++sb) {
      const sg::StateId id =
          product.add_state(a.code(sa) | (b.code(sb) << a.num_signals()));
      NSHOT_ASSERT(id == pair_id(sa, sb), "product state numbering out of sync");
    }
  for (sg::StateId sa = 0; sa < a.num_states(); ++sa)
    for (sg::StateId sb = 0; sb < b.num_states(); ++sb) {
      for (const sg::Edge& e : a.out_edges(sa))
        product.add_edge(pair_id(sa, sb), e.label, pair_id(e.target, sb));
      for (const sg::Edge& e : b.out_edges(sb))
        product.add_edge(pair_id(sa, sb),
                         sg::TransitionLabel{e.label.signal + a.num_signals(), e.label.rising},
                         pair_id(sa, e.target));
    }
  product.set_initial(pair_id(a.initial(), b.initial()));
  return product;
}

}  // namespace nshot::bench_suite
