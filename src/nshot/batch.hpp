// nshot::BatchRunner — crash-safe batch execution over the Pipeline
// facade.
//
// A batch is a text manifest of independent runs (one per line); the
// runner executes them sequentially through Pipeline::submit — each
// manifest entry IS a nshot::Request (see entry_request) — so every
// failure comes back classified (ErrorCode + failing stage + context
// chain) instead of aborting the batch.  Robustness machinery:
//
//  * per-run error isolation — a run that fails, times out, or is
//    rejected as unimplementable is recorded and the batch continues;
//  * bounded retry with backoff for the transient failure classes
//    (resource-exhausted, deadline-exceeded); deterministic failures
//    (input-invalid, unimplementable, internal) are never retried;
//  * a checkpointed JSONL journal — one line appended and flushed per
//    finished run, so a crashed or killed batch resumes by re-reading the
//    journal and skipping every run that already has a terminal line
//    (truncated trailing lines from a mid-write crash are ignored);
//  * a machine-readable summary (schemas/batch.schema.json) with a
//    failure-class histogram.
//
// Manifest format (hash comments and blank lines are skipped):
//
//   <id> <spec> [key=value ...]
//
// where <spec> is one of
//   bench:NAME   a built-in Table 2 benchmark reconstruction
//   file:PATH    a .g (STG) or .sg (state graph) text file
//   gen:SEED     a seeded random semi-modular STG (bench_suite generator)
//
// and the keys override the shared RunConfig / stage knobs per run:
//   seed, jobs, grain, runs (conformance trials), deadline_ms,
//   stage_deadline_ms, verify_kernels, reference_kernels, stress, exact.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "nshot/pipeline.hpp"

namespace nshot {

struct BatchOptions {
  /// Base pipeline configuration every run starts from; manifest keys
  /// override per run.  Batch runs default to no owned obs session.
  PipelineOptions pipeline;
  /// JSONL journal path; empty disables journaling (and resume).
  std::string journal_path;
  /// Extra attempts for transient failures (resource/deadline), per run.
  int max_retries = 1;
  /// Sleep between retry attempts (0 = immediate, used by tests).
  double backoff_ms = 0.0;
  /// Stop after this many newly-executed runs (0 = no limit) — simulates
  /// a crash mid-batch; the CI resume smoke uses it to assert that a
  /// second invocation skips exactly the journaled prefix.
  int stop_after = 0;
  /// Keep each executed run's deterministic Response::payload_json() in
  /// BatchRunResult::payload — the serial reference the serve load-replay
  /// harness compares concurrent server payloads against, byte for byte.
  bool record_payloads = false;
};

/// One parsed manifest line.
struct BatchEntry {
  std::string id;
  std::string spec;                          // "bench:...", "file:...", "gen:..."
  std::map<std::string, std::string> params;  // key=value overrides
  int line = 0;                              // 1-based manifest line (diagnostics)
};

/// Terminal outcome of one batch run.
struct BatchRunResult {
  std::string id;
  bool ok = false;
  bool resumed = false;  // skipped: the journal already had a terminal line
  ErrorCode code = ErrorCode::kInternal;  // meaningful when !ok && !resumed
  std::string stage;
  std::string message;
  int attempts = 0;   // executed attempts this invocation (0 when resumed)
  double elapsed_ms = 0.0;
  int kernel_fallbacks = 0;  // stages degraded to reference kernels
  std::string payload;  // Response::payload_json() when record_payloads was set
};

struct BatchSummary {
  int total = 0;      // manifest entries
  int executed = 0;   // runs attempted this invocation
  int succeeded = 0;  // ok over the whole batch (including resumed oks)
  int failed = 0;
  int resumed = 0;    // skipped via journal
  int retries = 0;    // extra attempts spent on transient failures
  bool stopped_early = false;  // stop_after tripped before the manifest ended
  std::map<std::string, int> failures_by_code;  // code name -> count
  std::vector<BatchRunResult> runs;

  /// Render per schemas/batch.schema.json.
  std::string to_json() const;
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options);

  /// Parse manifest text; throws Error(kInputInvalid) naming the offending
  /// line on malformed entries or duplicate ids.
  static std::vector<BatchEntry> parse_manifest(const std::string& text);

  /// A manifest of `count` generated circuits (`gen-<i> gen:<seed_i>`),
  /// seeds derived run_seed(base_seed, i); `extra_params` is appended to
  /// every line (e.g. "deadline_ms=2000 verify_kernels=1").
  static std::string soak_manifest(int count, std::uint64_t base_seed,
                                   const std::string& extra_params = "");

  /// The Request a manifest entry denotes: id, spec and overrides carried
  /// over verbatim (the `stress` key stays an override, so `kind` is left
  /// empty).  Shared with the serve replay tooling so a manifest line and
  /// a wire request mean the same run.
  static Request entry_request(const BatchEntry& entry);

  /// Execute the batch.  Never throws for per-run failures; throws only
  /// for harness-level problems (unreadable journal, bad manifest keys).
  BatchSummary run(const std::vector<BatchEntry>& entries);

 private:
  BatchOptions options_;
};

}  // namespace nshot
