// Compiled form of a netlist for the simulation hot path: everything a
// Simulator trial needs that depends only on the netlist (not on the seed)
// is flattened once here and shared — read-only — by every trial.
//
//  * fanout in CSR form (one offsets array + one flat gate array) instead
//    of a vector-of-vectors rebuilt per Simulator;
//  * packed gate descriptors over one flat input-code array: each input is
//    a single uint32 `(net << 1) | inverted`, so eval walks one contiguous
//    word stream and applies the inversion with an XOR instead of a second
//    (parallel byte array) lookup and a branch;
//  * a per-net driver table (Netlist::driver is a linear scan over gates);
//  * a per-net fused-reader table marking fanout-of-1 combinational chain
//    links (BUF/INV/single-reader AND-OR): when a committed net's only
//    reader is a plain combinational gate, the event it schedules can be
//    walked inline by Simulator::run_burst without re-entering the event
//    queue (events enter the queue only at fanout>1 or stateful
//    boundaries);
//  * the DelaySpace, so per-trial delay sampling does not re-derive the
//    per-gate bounds.
//
// A CompiledNetlist is immutable after construction and safe to share
// across threads; the sweeps in sim/conformance.cpp and src/faults compile
// one per campaign and run thousands of trials against it.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/delay_space.hpp"

namespace nshot::sim {

/// Flattened gate descriptor.  Inputs live in the shared flat code array
/// [first_input, first_input + num_inputs); out1 is -1 except for the MHS
/// flip-flop (q, qb).
struct CompiledGate {
  gatelib::GateType type = gatelib::GateType::kBuf;
  bool feedback_cut = false;
  std::uint32_t first_input = 0;
  std::uint32_t num_inputs = 0;
  netlist::NetId out0 = -1;
  netlist::NetId out1 = -1;
};

class CompiledNetlist {
 public:
  CompiledNetlist(const netlist::Netlist& netlist, const gatelib::GateLibrary& lib);

  const netlist::Netlist& netlist() const { return *netlist_; }
  const gatelib::GateLibrary& lib() const { return *lib_; }
  const DelaySpace& delay_space() const { return space_; }

  int num_nets() const { return static_cast<int>(fanout_offset_.size()) - 1; }
  int num_gates() const { return static_cast<int>(gates_.size()); }

  const CompiledGate& gate(netlist::GateId g) const {
    return gates_[static_cast<std::size_t>(g)];
  }

  /// Gates reading `net`, in gate-id order (identical to the fanout lists
  /// the Simulator used to build per construction).
  std::span<const netlist::GateId> fanout(netlist::NetId net) const {
    const std::size_t begin = fanout_offset_[static_cast<std::size_t>(net)];
    const std::size_t end = fanout_offset_[static_cast<std::size_t>(net) + 1];
    return {fanout_gate_.data() + begin, end - begin};
  }

  /// Packed input code i of gate `g`: (net << 1) | inverted.
  std::uint32_t input_code(const CompiledGate& g, std::size_t i) const {
    return input_code_[g.first_input + i];
  }
  /// The flat code array; hot loops index it with CompiledGate::first_input.
  const std::uint32_t* input_codes() const { return input_code_.data(); }

  /// Input net i of gate `g` (0-based within the gate).
  netlist::NetId input(const CompiledGate& g, std::size_t i) const {
    return static_cast<netlist::NetId>(input_code_[g.first_input + i] >> 1);
  }
  bool input_inverted(const CompiledGate& g, std::size_t i) const {
    return (input_code_[g.first_input + i] & 1u) != 0;
  }

  /// Gate driving `net`, or -1 (precomputed; Netlist::driver scans).
  netlist::GateId driver(netlist::NetId net) const {
    return driver_[static_cast<std::size_t>(net)];
  }

  /// The fanout-of-1 chain link out of `net`: the single gate reading it,
  /// provided that gate is a plain combinational reader (AND/OR/INV/BUF,
  /// no feedback cut) — or -1 when the net is a fusion boundary (fanout
  /// != 1, or the reader is storage / MHS / inertial / delay-line /
  /// feedback-cut).  run_burst walks these links without queue traffic.
  netlist::GateId fused_reader(netlist::NetId net) const {
    return fused_reader_[static_cast<std::size_t>(net)];
  }
  /// Number of nets with a fused reader (chain links collapsed at compile
  /// time); exposed for tests and the queue-scaling bench.
  int num_fused_nets() const { return num_fused_nets_; }
  /// Length of the longest fused chain (successive fused links), for the
  /// bench's chain statistics.
  int longest_fused_chain() const { return longest_fused_chain_; }

 private:
  const netlist::Netlist* netlist_;
  const gatelib::GateLibrary* lib_;
  DelaySpace space_;
  std::vector<std::uint32_t> fanout_offset_;  // num_nets + 1 entries
  std::vector<netlist::GateId> fanout_gate_;
  std::vector<CompiledGate> gates_;
  std::vector<std::uint32_t> input_code_;     // flat (net<<1)|inverted codes
  std::vector<netlist::GateId> driver_;       // per net, -1 = undriven
  std::vector<netlist::GateId> fused_reader_; // per net, -1 = boundary
  int num_fused_nets_ = 0;
  int longest_fused_chain_ = 0;
};

}  // namespace nshot::sim
