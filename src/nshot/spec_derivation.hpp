// Derivation of the set/reset logic specifications from the state graph
// (Section IV-A, steps 1-5, and Table 1).
//
// For a non-input signal a:
//   set function:   F = U ER(+a_i)                 (a = 0, excited)
//                   D = U QR(+a_i) + unreachable   (a = 1, stable)
//                   R = U ER(-a_i) + U QR(-a_i)
//   reset function: symmetric.
//
// Because reachable states are classified by the excitation status of `a`
// and its value only, the classification is a total function of the state;
// the CSC property guarantees that states sharing a binary code classify
// identically, so the (F, D, R) sets handed to the minimizer are well
// defined on codes.
#pragma once

#include <string>
#include <vector>

#include "logic/spec.hpp"
#include "sg/state_graph.hpp"

namespace nshot::core {

/// Operating mode of the MHS flip-flop in a state (the rows of Table 1).
enum class Mode {
  kSet,            // s in ER(+a): SET = 1, RESET = 0
  kQuiescentHigh,  // s in QR(+a): SET = don't care, RESET = 0
  kReset,          // s in ER(-a): SET = 0, RESET = 1
  kQuiescentLow,   // s in QR(-a): SET = 0, RESET = don't care
};

const char* mode_name(Mode mode);

/// Table-1 classification of state `s` for non-input signal `a`.
Mode classify_state(const sg::StateGraph& sg, sg::StateId s, sg::SignalId a);

/// Output indices of signal `a` inside the joint specification: the set
/// function of the k-th non-input signal is output 2k, its reset function
/// output 2k+1.
struct OutputIndex {
  sg::SignalId signal = -1;
  int set_output = -1;
  int reset_output = -1;
};

/// The joint (F, D, R) specification of all set and reset functions over
/// the signal space of the SG, plus the signal-to-output mapping.
struct DerivedSpec {
  logic::TwoLevelSpec spec;
  std::vector<OutputIndex> outputs;  // one per non-input signal, in order

  const OutputIndex& for_signal(sg::SignalId a) const;
};

DerivedSpec derive_spec(const sg::StateGraph& sg);

}  // namespace nshot::core
