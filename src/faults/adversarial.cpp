#include "faults/adversarial.hpp"

#include <algorithm>

#include "sim/delay_space.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nshot::faults {

namespace {

/// The concrete search box: per-gate [lo, hi] bounds plus the list of
/// gates the search may move.  Simple gates get the library interval
/// stretched by the stress factor; delay lines join the box only when
/// shaving is enabled (bounds [0, installed delay] — under-compensation
/// only, a longer line never hurts Eq. 1).
struct SearchSpace {
  std::vector<double> lo, hi;
  std::vector<netlist::GateId> movable;
};

SearchSpace make_space(const netlist::Netlist& circuit, const sim::DelaySpace& space,
                       const AdversarialOptions& options) {
  NSHOT_REQUIRE(options.stress_factor >= 1.0, "stress factor must be >= 1");
  SearchSpace box;
  const std::size_t n = static_cast<std::size_t>(circuit.num_gates());
  box.lo.resize(n);
  box.hi.resize(n);
  for (netlist::GateId g = 0; g < circuit.num_gates(); ++g) {
    const std::size_t i = static_cast<std::size_t>(g);
    box.lo[i] = space.stressed_lo(g, options.stress_factor);
    box.hi[i] = space.stressed_hi(g, options.stress_factor);
    if (!space.fixed(g)) {
      box.movable.push_back(g);
    } else if (options.shave_delay_lines &&
               circuit.gate(g).type == gatelib::GateType::kDelayLine) {
      box.lo[i] = 0.0;
      box.movable.push_back(g);
    }
  }
  return box;
}

std::vector<double> sample_uniform(const SearchSpace& box, const sim::DelaySpace& space,
                                   Rng& rng) {
  std::vector<double> delays = space.nominal_vector();
  for (const netlist::GateId g : box.movable) {
    const std::size_t i = static_cast<std::size_t>(g);
    delays[i] = box.lo[i] >= box.hi[i] ? box.lo[i] : rng.next_double(box.lo[i], box.hi[i]);
  }
  return delays;
}

struct Evaluation {
  double score = kNoMargin;  // min slack; -inf when the run violated
  ProbedRun run;
};

Evaluation evaluate(const sg::StateGraph& spec, const netlist::Netlist& circuit,
                    std::vector<double> delays, std::uint64_t env_seed,
                    const ScenarioOptions& options) {
  FaultScenario scenario;
  scenario.seed = env_seed;
  scenario.delays = std::move(delays);
  Evaluation eval;
  eval.run = run_probed(spec, circuit, scenario, options);
  eval.score = eval.run.report.violations.empty() ? eval.run.min_slack : -kNoMargin;
  return eval;
}

}  // namespace

AdversarialResult adversarial_delay_search(const sg::StateGraph& spec,
                                           const netlist::Netlist& circuit,
                                           const AdversarialOptions& options) {
  const sim::DelaySpace space(circuit, gatelib::GateLibrary::standard());
  const SearchSpace box = make_space(circuit, space, options);

  AdversarialResult result;
  double best_score = kNoMargin;
  for (int r = 0; r < options.restarts && !result.violation_found; ++r) {
    // One environment stream per restart keeps the objective deterministic
    // in the delay vector, so accepted steps are genuine descents.
    const std::uint64_t env_seed = run_seed(options.seed, r);
    Rng rng(env_seed ^ 0xadce5a17ULL);

    std::vector<double> current = sample_uniform(box, space, rng);
    Evaluation eval = evaluate(spec, circuit, current, env_seed, options.run);
    ++result.evaluations;
    double current_score = eval.score;
    auto take_best = [&](const std::vector<double>& delays, const Evaluation& e) {
      if (e.score < best_score || result.delays.empty()) {
        best_score = e.score;
        result.best_slack = e.run.min_slack;
        result.delays = delays;
        result.env_seed = env_seed;
        result.report = e.run.report;
        result.violation_found = !e.run.report.violations.empty();
      }
    };
    take_best(current, eval);

    for (int it = 0; it < options.iterations && !result.violation_found; ++it) {
      if (box.movable.empty()) break;
      std::vector<double> candidate = current;
      const netlist::GateId g =
          box.movable[rng.next_below(box.movable.size())];
      const std::size_t i = static_cast<std::size_t>(g);
      if (rng.next_bool(0.6)) {
        // Corner snap: extreme delays expose the cliffs far more often
        // than interior points do.
        candidate[i] = rng.next_bool() ? box.hi[i] : box.lo[i];
      } else if (box.lo[i] < box.hi[i]) {
        candidate[i] = rng.next_double(box.lo[i], box.hi[i]);
      }
      Evaluation step = evaluate(spec, circuit, candidate, env_seed, options.run);
      ++result.evaluations;
      if (step.score <= current_score) {  // accept sideways moves too
        current = std::move(candidate);
        current_score = step.score;
        take_best(current, step);
      }
    }
  }
  return result;
}

MonteCarloResult stressed_monte_carlo(const sg::StateGraph& spec,
                                      const netlist::Netlist& circuit, int runs,
                                      const AdversarialOptions& options) {
  const sim::DelaySpace space(circuit, gatelib::GateLibrary::standard());
  const SearchSpace box = make_space(circuit, space, options);

  MonteCarloResult result;
  result.runs = runs;
  for (int r = 0; r < runs; ++r) {
    const std::uint64_t seed = run_seed(options.seed, r);
    Rng rng(seed);
    const Evaluation eval =
        evaluate(spec, circuit, sample_uniform(box, space, rng), seed, options.run);
    if (!eval.run.report.violations.empty()) ++result.violating_runs;
    result.min_slack = std::min(result.min_slack, eval.run.min_slack);
  }
  return result;
}

}  // namespace nshot::faults
