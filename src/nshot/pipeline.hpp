// nshot::Pipeline — the one-call facade over the full N-SHOT flow:
//
//   STG (.g text)  --reachability-->  SG  --synthesize-->  netlist
//        --check_conformance-->  closed-loop verification
//        --run_stress-->        fault battery + margins (optional)
//
// plus an owned obs::Session so every run is traced and reportable
// without the caller touching the observability layer.  The shared
// nshot::RunConfig (seed / jobs / grain / reference_kernels) is applied
// once here and propagated to every stage's options, replacing the
// per-stage copies callers previously had to keep in sync.
//
// The facade adds no policy of its own: each stage is the same public
// function the examples called directly, in the same order, with the
// same defaults, so porting a caller to Pipeline changes no results.
#pragma once

#include <exception>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "faults/stress.hpp"
#include "nshot/synthesis.hpp"
#include "obs/obs.hpp"
#include "sg/state_graph.hpp"
#include "sim/conformance.hpp"
#include "util/error.hpp"
#include "util/run_config.hpp"

namespace nshot {

struct PipelineOptions {
  /// Shared run knobs, applied to synthesis/conformance/stress before a
  /// run (overriding whatever those sub-structs carry).
  RunConfig run;
  core::SynthesisOptions synthesis;
  sim::ConformanceOptions conformance;
  faults::StressOptions stress;

  /// Closed-loop random-delay conformance check after synthesis.
  bool verify_conformance = true;
  /// Fault battery + margin sweep (slow; off by default).
  bool stress_test = false;
  /// Own an obs::Session for the Pipeline's lifetime.  When false (or when
  /// a session already exists elsewhere) the pipeline runs uninstrumented
  /// and trace_json()/report() return empty results.
  bool collect_observability = true;
  /// Report label; the first run's benchmark name when empty.
  std::string label;
};

/// Everything one run produced.  Stage results keep their native types so
/// existing consumers (describe(), stress_report_json(), ...) work as-is.
struct PipelineRun {
  std::string benchmark;
  sg::StateGraph graph;  // the verified-against state graph
  core::SynthesisResult synthesis;
  sim::ConformanceReport conformance;  // default unless conformance_ran
  bool conformance_ran = false;
  faults::StressReport stress;  // default unless stress_ran
  bool stress_ran = false;
  /// Graceful-degradation record: stages that raised kKernelMismatch
  /// (verify_kernels divergence) and were re-run on the reference kernels.
  /// Empty on a clean run.  Each entry is "<stage>: <mismatch detail>".
  std::vector<std::string> kernel_fallbacks;

  /// Synthesized, conformant (when checked) and fault-clean (when stressed).
  bool ok() const {
    return (!conformance_ran || conformance.clean()) && (!stress_ran || stress.baseline_clean);
  }
};

/// The checked counterpart of PipelineRun: either a completed run, or a
/// classified failure with enough context to diagnose it without a
/// debugger — which stage failed, the rendered context chain, and the
/// stages that DID complete (the partial diagnostics a batch report
/// keeps).  run_checked never throws for circuit- or budget-shaped
/// failures; escaping exceptions indicate a harness bug.
struct RunOutcome {
  std::optional<PipelineRun> run;  // engaged iff the pipeline completed
  ErrorCode code = ErrorCode::kInternal;  // meaningful when !ok()
  std::string stage;    // failing stage: load|parse|reachability|synthesize|conformance|stress
  std::string message;  // rendered what() including the context chain
  std::vector<std::string> stages_completed;
  /// The captured exception behind a failed outcome (engaged iff !ok()),
  /// so the legacy throwing wrappers can rethrow the ORIGINAL exception
  /// object — type, context chain and all.  Never serialized.
  std::exception_ptr exception;

  bool ok() const { return run.has_value(); }
};

/// One unit of pipeline work, self-describing enough to travel over a
/// wire or a manifest line: a circuit spec plus per-request overrides
/// layered over the pipeline's base configuration.  This is the single
/// submission surface — the legacy run/run_g/run_checked/run_checked_g
/// quartet is now a set of thin wrappers over Pipeline::submit(Request).
struct Request {
  /// Client-assigned identifier, echoed in the Response (may be empty).
  std::string id;

  /// Requested stage set, doubling as the admission class in the batch
  /// server: "synthesis" (stop after synthesize), "conformance"
  /// (synthesize + closed-loop verification), "stress" (conformance +
  /// fault battery/margins).  Empty inherits the pipeline's base
  /// verify_conformance / stress_test toggles.  Anything else is
  /// rejected as kInputInvalid.
  std::string kind;

  /// Circuit spec — exactly one of the three forms below must be set:
  /// `spec` uses the batch-manifest spellings (bench:NAME | file:PATH |
  /// gen:SEED), `g_text` is inline `.g` STG text, `graph` is a pre-built
  /// state graph (non-owning views via an aliasing shared_ptr are fine).
  std::string spec;
  std::string g_text;
  std::shared_ptr<const sg::StateGraph> graph;

  /// Per-request overrides over the base RunConfig / stage knobs — the
  /// same key set batch manifests accept: seed, jobs, grain, runs,
  /// deadline_ms, stage_deadline_ms, verify_kernels, reference_kernels,
  /// stress, exact.  Applied after `kind`, so `stress=1` can re-enable
  /// the battery on a "conformance" request.  Unknown keys are rejected
  /// as kInputInvalid.
  std::map<std::string, std::string> overrides;

  /// The accepted override keys (shared with BatchRunner::parse_manifest).
  static const std::set<std::string>& known_override_keys();
};

/// What one Request produced.  The deterministic, byte-comparable part of
/// the story lives in payload_json(); the wall-clock part (elapsed_ms,
/// attempts) is appended only by to_json(), so two runs of the same work
/// — serial batch or concurrent server, cold cache or warm — render
/// byte-identical payloads.
struct Response {
  std::string id;       // echoed Request::id
  RunOutcome outcome;
  double elapsed_ms = 0.0;  // wall clock of the submit() call
  int attempts = 1;         // execution attempts (retries are driver policy)

  /// Deterministic RunOutcome-derived payload (one JSON object, no
  /// trailing newline): identity, stages, synthesis/conformance/stress
  /// summaries or the classified error.  No timing fields.
  std::string payload_json() const;

  /// Full wire response: the payload plus elapsed_ms / attempts.
  std::string to_json() const;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options = {});
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// THE submission surface: resolve the request's spec, layer its kind
  /// and overrides over this pipeline's base options, and run the staged
  /// flow under the RunConfig deadline knobs — each stage runs under a
  /// CancelToken budgeted to min(stage_deadline_ms, remaining run
  /// deadline_ms), with a Watchdog firing the token on wall-clock overrun
  /// so even non-polling work is cancelled at its next checkpoint.  A
  /// kKernelMismatch from a verify_kernels stage is degraded
  /// (reference-kernel retry, recorded in PipelineRun::kernel_fallbacks)
  /// before it is ever reported as failure.  Never throws: every failure
  /// — including spec-resolution problems, reported as stage "load" —
  /// comes back as a classified RunOutcome.
  ///
  /// Thread-safe for concurrent calls on one Pipeline: each call works on
  /// its own copy of the options and shares only immutable state (plus
  /// the process-wide memo caches, which are internally synchronized).
  /// Concurrent callers should construct the Pipeline with a non-empty
  /// label; the first-run-names-the-session convenience is unsynchronized.
  Response submit(const Request& request);

  /// Deprecated entry points, now thin wrappers over submit().  Kept (one
  /// release, like the RunConfig field aliases before them) so existing
  /// callers compile unchanged; new code should build a Request.
  ///
  /// run/run_g rethrow the original exception on failure — e.g.
  /// core::SynthesisError when the SG is not implementable.  Note one
  /// (documented) improvement over the historical behavior: the RunConfig
  /// deadline knobs are now enforced on this path too (they default to 0
  /// = unbounded, so callers that never set them see no change).
  PipelineRun run(const sg::StateGraph& sg);
  PipelineRun run_g(const std::string& g_text);

  /// Checked variants: Response::outcome of the equivalent submit().
  RunOutcome run_checked(const sg::StateGraph& sg);
  RunOutcome run_checked_g(const std::string& g_text);

  const PipelineOptions& options() const { return options_; }

  /// The owned session; nullptr when collect_observability was false or
  /// another session was already active at construction.
  obs::Session* session() { return session_.get(); }

  /// Exporter pass-throughs; empty-session results when uninstrumented.
  obs::RunReport report() const;
  std::string report_json(const obs::ReportOptions& options = {}) const;
  std::string trace_json(const obs::TraceOptions& options = {}) const;

 private:
  RunOutcome run_with(const PipelineOptions& options, const sg::StateGraph* graph,
                      const std::string* g_text);

  PipelineOptions options_;
  std::unique_ptr<obs::Session> session_;
};

/// The per-request effective options: `base` with the request's kind and
/// overrides applied and the shared RunConfig re-fanned into every stage
/// struct.  Throws Error(kInputInvalid) on unknown kinds, unknown
/// override keys or out-of-range values.  Exposed for drivers
/// (BatchRunner, the serve admission queue) that need to inspect the
/// effective deadline before scheduling.
PipelineOptions request_options(const PipelineOptions& base, const Request& request);

}  // namespace nshot
