// Ablation: multi-output product-term sharing (Section IV-A explicitly
// allows "the sharing of product terms (AND-gates) between different
// functions" because no hazard constraint forbids it).  This bench
// synthesizes every benchmark with sharing enabled and disabled and
// reports the area difference — the benefit conventional minimization
// brings that per-transition monotonous-cover methods cannot exploit.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_suite/benchmarks.hpp"
#include "nshot/synthesis.hpp"

namespace {

using namespace nshot;

void print_ablation() {
  std::printf("Ablation: AND-plane sharing across set/reset functions\n\n");
  std::printf("%-15s | %8s %8s %9s | %8s %8s %9s | %7s\n", "circuit", "cubes", "lits", "area",
              "cubes", "lits", "area", "saving");
  std::printf("%-15s | %27s | %27s |\n", "", "shared (default)", "per-output only");
  double total_shared = 0.0, total_unshared = 0.0;
  for (const auto& info : bench_suite::all_benchmarks()) {
    if (info.paper_states > 500) continue;
    const sg::StateGraph g = info.build();
    const core::SynthesisResult shared = core::synthesize(g);
    core::SynthesisOptions options;
    options.share_products = false;
    const core::SynthesisResult unshared = core::synthesize(g, options);
    total_shared += shared.stats.area;
    total_unshared += unshared.stats.area;
    std::printf("%-15s | %8zu %8d %9.0f | %8zu %8d %9.0f | %6.1f%%\n", info.name.c_str(),
                shared.cover.size(), shared.cover.literal_count(), shared.stats.area,
                unshared.cover.size(), unshared.cover.literal_count(), unshared.stats.area,
                100.0 * (unshared.stats.area - shared.stats.area) / unshared.stats.area);
  }
  std::printf("\ntotal area: shared %.0f vs per-output %.0f (%.1f%% saved by sharing)\n",
              total_shared, total_unshared,
              100.0 * (total_unshared - total_shared) / total_unshared);
}

void bm_shared(benchmark::State& state) {
  const sg::StateGraph g = bench_suite::build_benchmark("combuf1");
  for (auto _ : state) benchmark::DoNotOptimize(core::synthesize(g).stats.area);
}
BENCHMARK(bm_shared);

void bm_unshared(benchmark::State& state) {
  const sg::StateGraph g = bench_suite::build_benchmark("combuf1");
  core::SynthesisOptions options;
  options.share_products = false;
  for (auto _ : state) benchmark::DoNotOptimize(core::synthesize(g, options).stats.area);
}
BENCHMARK(bm_unshared);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
