file(REMOVE_RECURSE
  "CMakeFiles/golden_results_test.dir/golden_results_test.cpp.o"
  "CMakeFiles/golden_results_test.dir/golden_results_test.cpp.o.d"
  "golden_results_test"
  "golden_results_test.pdb"
  "golden_results_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_results_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
