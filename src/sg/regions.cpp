#include "sg/regions.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>

#include "exec/cancel.hpp"
#include "exec/thread_pool.hpp"
#include "obs/obs.hpp"
#include "sg/bitset.hpp"
#include "util/error.hpp"

namespace nshot::sg {
namespace {

/// Union-find for the connected-component decomposition of ERs.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

/// Tarjan SCC over a subgraph in CSR form: the neighbours of local node v
/// are targets[offsets[v] .. offsets[v+1]).  CSR (two flat arrays) instead
/// of vector-of-vectors matters at scale — a 65k-state excitation region
/// would otherwise pay 65k inner-vector allocations before the first SCC
/// is found.  Returns the SCCs in reverse topological order (bottom SCCs
/// first is NOT guaranteed; we detect bottom SCCs explicitly afterwards).
class SccFinder {
 public:
  SccFinder(const std::vector<int>& offsets, const std::vector<int>& targets)
      : offsets_(offsets), targets_(targets) {
    const std::size_t n = offsets.empty() ? 0 : offsets.size() - 1;
    index_.assign(n, -1);
    low_.assign(n, 0);
    on_stack_.assign(n, false);
    component_.assign(n, -1);
    for (std::size_t v = 0; v < n; ++v)
      if (index_[v] < 0) strong_connect(v);
  }

  int num_components() const { return next_component_; }
  int component_of(std::size_t local) const { return component_[local]; }

 private:
  void strong_connect(std::size_t root) {
    // Iterative Tarjan to avoid deep recursion on long chains.
    struct Frame {
      std::size_t v;
      std::size_t edge = 0;
    };
    std::vector<Frame> call_stack{{root}};
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const std::size_t v = frame.v;
      if (frame.edge == 0) {
        index_[v] = low_[v] = counter_++;
        stack_.push_back(v);
        on_stack_[v] = true;
      }
      bool descended = false;
      const std::size_t degree = static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
      while (frame.edge < degree) {
        const std::size_t w = static_cast<std::size_t>(
            targets_[static_cast<std::size_t>(offsets_[v]) + frame.edge++]);
        if (index_[w] < 0) {
          call_stack.push_back({w});
          descended = true;
          break;
        }
        if (on_stack_[w]) low_[v] = std::min(low_[v], index_[w]);
      }
      if (descended) continue;
      if (low_[v] == index_[v]) {
        while (true) {
          const std::size_t w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = false;
          component_[w] = next_component_;
          if (w == v) break;
        }
        ++next_component_;
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const std::size_t parent = call_stack.back().v;
        low_[parent] = std::min(low_[parent], low_[v]);
      }
    }
  }

  const std::vector<int>& offsets_;
  const std::vector<int>& targets_;
  std::vector<int> index_, low_, component_;
  std::vector<bool> on_stack_;
  std::vector<std::size_t> stack_;
  int counter_ = 0;
  int next_component_ = 0;
};

/// Compute QR(*a_i): forward flood from the stable exit states of the ER.
/// `quiescent` is the precomputed word-packed plane of states where a has
/// the new value and is stable, so membership is a single bit probe; the
/// ascending bit-order extraction of `in_region` reproduces the order the
/// reference std::set implementation iterated in.
std::vector<StateId> quiescent_of(const StateGraph& sg, SignalId a,
                                  const std::vector<StateId>& er_states, bool rising,
                                  const StateSet& quiescent, StateSet& in_region,
                                  std::vector<StateId>& frontier) {
  in_region.clear();
  frontier.clear();
  for (const StateId s : er_states) {
    const auto exit = sg.successor(s, TransitionLabel{a, rising});
    if (!exit) continue;  // arcs of other signals; the *a arc defines the exit
    if (quiescent.contains(*exit) && in_region.insert_new(*exit)) frontier.push_back(*exit);
  }
  while (!frontier.empty()) {
    exec::checkpoint();
    const StateId s = frontier.back();
    frontier.pop_back();
    for (const Edge& e : sg.out_edges(s)) {
      const StateId t = e.target;
      if (quiescent.contains(t) && in_region.insert_new(t)) frontier.push_back(t);
    }
  }
  return in_region.to_vector();
}

/// Reference QR flood over std::set — kept for kernel equivalence tests.
std::vector<StateId> quiescent_of_reference(const StateGraph& sg, SignalId a,
                                            const std::vector<StateId>& er_states, bool rising) {
  const bool new_value = rising;
  std::set<StateId> region;
  std::vector<StateId> frontier;
  for (const StateId s : er_states) {
    const auto exit = sg.successor(s, TransitionLabel{a, rising});
    if (!exit) continue;
    if (sg.value(*exit, a) == new_value && !sg.excited(*exit, a) && region.insert(*exit).second)
      frontier.push_back(*exit);
  }
  while (!frontier.empty()) {
    const StateId s = frontier.back();
    frontier.pop_back();
    for (const Edge& e : sg.out_edges(s)) {
      const StateId t = e.target;
      if (sg.value(t, a) == new_value && !sg.excited(t, a) && region.insert(t).second)
        frontier.push_back(t);
    }
  }
  return std::vector<StateId>(region.begin(), region.end());
}

}  // namespace

bool ExcitationRegion::single_traversal() const {
  for (const auto& tr : trigger_regions)
    if (tr.size() != 1) return false;
  return true;
}

namespace {

/// `planes` (optional) supplies prebuilt value/excitation planes for
/// signal a — compute_all_regions builds every signal's planes in one
/// shared sweep instead of two per-signal graph passes.  Plane content is
/// identical either way, so the output is unchanged.
struct SignalPlanes {
  const StateSet* value = nullptr;
  const StateSet* excited = nullptr;
};

SignalRegions compute_regions_impl(const StateGraph& sg, SignalId a, bool reference,
                                   SignalPlanes planes = {}) {
  NSHOT_REQUIRE(a >= 0 && a < sg.num_signals(), "signal index out of range");

  SignalRegions result;
  result.signal = a;

  // Word-packed planes for the hot path: one pass over the graph, then
  // every value / excitation test below is a single bit probe.  The
  // reference path keeps the original per-state out-edge scans.
  const std::size_t n = static_cast<std::size_t>(sg.num_states());
  StateSet value(0), excited(0), quiescent_plane(0), in_region(0);
  std::vector<StateId> flood_frontier;
  if (!reference) {
    value = planes.value ? *planes.value : value_set(sg, a);
    excited = planes.excited ? *planes.excited : excited_set(sg, a);
    in_region = StateSet(n);
  }
  // Local-index scratch maps, allocated once and reset by touched entry so
  // large graphs do not pay an O(num_states) clear per region.
  std::vector<int> local(n, -1);
  std::vector<int> er_local(n, -1);

  for (const bool rising : {true, false}) {
    // States of the union of ER(+a)s (resp. ER(-a)s): a has the pre-value
    // and is excited.
    std::vector<StateId> members;
    if (reference) {
      for (StateId s = 0; s < sg.num_states(); ++s)
        if (sg.value(s, a) != rising && sg.excited(s, a)) members.push_back(s);
    } else {
      // excited & (rising ? ~value : value), extracted in ascending order —
      // identical to the per-state scan above.
      StateSet er_plane = excited;
      if (rising)
        er_plane.subtract(value);
      else
        er_plane &= value;
      members = er_plane.to_vector();
      // QR(*a) candidates for this polarity: a has the new value, stable.
      quiescent_plane = value;
      if (!rising) quiescent_plane.complement();
      quiescent_plane.subtract(excited);
    }
    if (members.empty()) continue;
    for (std::size_t i = 0; i < members.size(); ++i)
      local[static_cast<std::size_t>(members[i])] = static_cast<int>(i);

    // Maximal connected sets: union-find over arcs internal to the set
    // (direction ignored for connectivity).
    UnionFind uf(members.size());
    for (const StateId s : members) {
      for (const Edge& e : sg.out_edges(s)) {
        const int t_local = local[static_cast<std::size_t>(e.target)];
        if (t_local >= 0) uf.unite(static_cast<std::size_t>(local[static_cast<std::size_t>(s)]),
                                   static_cast<std::size_t>(t_local));
      }
    }
    // Group members into components by UF root, in ascending root order.
    // The hot path counting-sorts over the dense root domain (roots are
    // member indices, so root < members.size()); the reference path groups
    // through std::map.  The scatter walks members in ascending index
    // order, so components come out in ascending root order with members
    // ascending within each — identical groups either way.
    std::vector<std::vector<StateId>> components;
    if (reference) {
      std::map<std::size_t, std::vector<StateId>> by_root;
      for (std::size_t i = 0; i < members.size(); ++i)
        by_root[uf.find(i)].push_back(members[i]);
      for (auto& [root, er_states] : by_root) components.push_back(std::move(er_states));
    } else {
      std::vector<std::size_t> root_of(members.size());
      std::vector<std::size_t> offset(members.size() + 1, 0);
      for (std::size_t i = 0; i < members.size(); ++i) {
        root_of[i] = uf.find(i);
        ++offset[root_of[i] + 1];
      }
      for (std::size_t r = 0; r < members.size(); ++r) offset[r + 1] += offset[r];
      std::vector<std::size_t> ordered(members.size());
      std::vector<std::size_t> cursor(offset.begin(), offset.end() - 1);
      for (std::size_t i = 0; i < members.size(); ++i) ordered[cursor[root_of[i]]++] = i;
      for (std::size_t begin = 0; begin < ordered.size();) {
        const std::size_t root = root_of[ordered[begin]];
        std::size_t end = begin;
        while (end < ordered.size() && root_of[ordered[end]] == root) ++end;
        std::vector<StateId> er_states;
        er_states.reserve(end - begin);
        for (std::size_t k = begin; k < end; ++k) er_states.push_back(members[ordered[k]]);
        components.push_back(std::move(er_states));
        begin = end;
      }
    }

    for (const StateId s : members) local[static_cast<std::size_t>(s)] = -1;

    for (auto& er_states : components) {
      ExcitationRegion er;
      er.signal = a;
      er.rising = rising;
      std::sort(er_states.begin(), er_states.end());
      er.states = er_states;
      er.quiescent = reference ? quiescent_of_reference(sg, a, er.states, rising)
                               : quiescent_of(sg, a, er.states, rising, quiescent_plane,
                                              in_region, flood_frontier);

      // Trigger regions: bottom SCCs of the subgraph of the ER induced by
      // the arcs that do not fire *a.  The subgraph is built in CSR form
      // (edge order per node unchanged) and only bottom SCCs are ever
      // materialized: a chain-shaped ER shatters into one SCC per state,
      // almost all non-bottom, and allocating a vector for each discarded
      // component dominated this pass at the 500k-state tiers.
      for (std::size_t i = 0; i < er.states.size(); ++i)
        er_local[static_cast<std::size_t>(er.states[i])] = static_cast<int>(i);
      std::vector<int> offsets(er.states.size() + 1, 0);
      std::vector<int> targets;
      for (std::size_t i = 0; i < er.states.size(); ++i) {
        for (const Edge& e : sg.out_edges(er.states[i])) {
          if (e.label.signal == a) continue;  // firing *a leaves the region
          const int t_local = er_local[static_cast<std::size_t>(e.target)];
          if (t_local >= 0) targets.push_back(t_local);
        }
        offsets[i + 1] = static_cast<int>(targets.size());
      }
      SccFinder scc(offsets, targets);
      // A bottom SCC has no arc into a different SCC.
      std::vector<bool> is_bottom(static_cast<std::size_t>(scc.num_components()), true);
      for (std::size_t i = 0; i < er.states.size(); ++i)
        for (int k = offsets[i]; k < offsets[i + 1]; ++k)
          if (scc.component_of(i) != scc.component_of(static_cast<std::size_t>(targets[k])))
            is_bottom[static_cast<std::size_t>(scc.component_of(i))] = false;
      // Bottom components keep their ascending component-id order, exactly
      // the order the dense triggers table produced.
      std::vector<int> slot(static_cast<std::size_t>(scc.num_components()), -1);
      int num_bottom = 0;
      for (std::size_t c = 0; c < is_bottom.size(); ++c)
        if (is_bottom[c]) slot[c] = num_bottom++;
      std::vector<std::vector<StateId>> triggers(static_cast<std::size_t>(num_bottom));
      for (std::size_t i = 0; i < er.states.size(); ++i) {
        const int s = slot[static_cast<std::size_t>(scc.component_of(i))];
        if (s >= 0) triggers[static_cast<std::size_t>(s)].push_back(er.states[i]);
      }
      for (std::vector<StateId>& tr : triggers) er.trigger_regions.push_back(std::move(tr));

      for (const StateId s : er.states) er_local[static_cast<std::size_t>(s)] = -1;
      result.regions.push_back(std::move(er));
    }
  }
  obs::count(obs::Counter::kRegionsExtracted, static_cast<long>(result.regions.size()));
  return result;
}

}  // namespace

SignalRegions compute_regions(const StateGraph& sg, SignalId a) {
  return compute_regions_impl(sg, a, /*reference=*/false);
}

SignalRegions compute_regions_reference(const StateGraph& sg, SignalId a) {
  return compute_regions_impl(sg, a, /*reference=*/true);
}

std::vector<SignalRegions> compute_all_regions(const StateGraph& sg, int jobs) {
  const obs::Span span("regions");
  // One shared plane sweep for every signal (word-range-chunked when
  // jobs > 1) replaces the two per-signal graph passes compute_regions
  // would make; plane content is identical, so the regions are too.
  const std::vector<StateSet> values = all_value_sets(sg, jobs);
  const std::vector<StateSet> excited = all_excited_sets(sg, jobs);
  const std::vector<SignalId> signals = sg.noninput_signals();
  auto regions_of = [&](int i) {
    const SignalId a = signals[static_cast<std::size_t>(i)];
    return compute_regions_impl(sg, a, /*reference=*/false,
                                {&values[static_cast<std::size_t>(a)],
                                 &excited[static_cast<std::size_t>(a)]});
  };
  if (jobs <= 1) {
    std::vector<SignalRegions> all;
    all.reserve(signals.size());
    for (std::size_t i = 0; i < signals.size(); ++i)
      all.push_back(regions_of(static_cast<int>(i)));
    return all;
  }
  // Thread axis: one independent work item per signal, results merged by
  // signal index — byte-identical to the serial loop at any worker count.
  return exec::parallel_map<SignalRegions>(static_cast<int>(signals.size()), regions_of, jobs);
}

bool is_single_traversal(const StateGraph& sg) {
  for (const SignalId a : sg.noninput_signals()) {
    const SignalRegions regions = compute_regions(sg, a);
    for (const ExcitationRegion& er : regions.regions)
      if (!er.single_traversal()) return false;
  }
  return true;
}

bool verify_output_trapping(const StateGraph& sg, const ExcitationRegion& er) {
  StateSet member(static_cast<std::size_t>(sg.num_states()));
  for (const StateId s : er.states) member.insert(s);
  for (const StateId s : er.states) {
    for (const Edge& e : sg.out_edges(s)) {
      if (e.label.signal == er.signal) continue;  // firing *a: allowed exit
      if (!member.contains(e.target)) return false;
    }
  }
  return true;
}

bool verify_trigger_reachability(const StateGraph& sg, const ExcitationRegion& er) {
  const std::size_t n = static_cast<std::size_t>(sg.num_states());
  StateSet trigger(n);
  for (const auto& tr : er.trigger_regions)
    for (const StateId s : tr) trigger.insert(s);
  StateSet member(n);
  for (const StateId s : er.states) member.insert(s);

  StateSet seen(n);
  for (const StateId start : er.states) {
    // BFS inside the ER over non-*a arcs.
    seen.clear();
    seen.insert(start);
    std::vector<StateId> frontier{start};
    bool found = trigger.contains(start);
    while (!frontier.empty() && !found) {
      const StateId s = frontier.back();
      frontier.pop_back();
      for (const Edge& e : sg.out_edges(s)) {
        if (e.label.signal == er.signal || !member.contains(e.target)) continue;
        if (seen.insert_new(e.target)) {
          if (trigger.contains(e.target)) {
            found = true;
            break;
          }
          frontier.push_back(e.target);
        }
      }
    }
    if (!found) return false;
  }
  return true;
}

std::string SignalRegions::to_string(const StateGraph& sg) const {
  std::string text = "regions of signal " + sg.signal(signal).name + ":\n";
  int up_index = 0, down_index = 0;
  for (const ExcitationRegion& er : regions) {
    const std::string label = sg.signal(signal).name + (er.rising ? "+" : "-") + "_" +
                              std::to_string(er.rising ? up_index++ : down_index++);
    text += "  ER(" + label + ") = {";
    for (std::size_t i = 0; i < er.states.size(); ++i)
      text += (i ? ", " : "") + sg.state_name(er.states[i]);
    text += "}\n  QR(" + label + ") = {";
    for (std::size_t i = 0; i < er.quiescent.size(); ++i)
      text += (i ? ", " : "") + sg.state_name(er.quiescent[i]);
    text += "}\n";
    for (std::size_t t = 0; t < er.trigger_regions.size(); ++t) {
      text += "  TR(" + label + ")[" + std::to_string(t) + "] = {";
      for (std::size_t i = 0; i < er.trigger_regions[t].size(); ++i)
        text += (i ? ", " : "") + sg.state_name(er.trigger_regions[t][i]);
      text += "}\n";
    }
  }
  return text;
}

}  // namespace nshot::sg
