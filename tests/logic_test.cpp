// Unit and property tests for the two-level logic substrate: cubes,
// covers, the heuristic ESPRESSO loop, the exact minimizer, PLA I/O and
// the verification oracle.
#include <gtest/gtest.h>

#include "logic/cover.hpp"
#include "logic/cube.hpp"
#include "logic/espresso.hpp"
#include "logic/exact.hpp"
#include "logic/pla.hpp"
#include "logic/spec.hpp"
#include "logic/verify.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nshot::logic {
namespace {

// ---------------------------------------------------------------- cubes --

TEST(CubeTest, MintermCoversExactlyItself) {
  const Cube cube = Cube::minterm(0b101, 3);
  for (std::uint64_t m = 0; m < 8; ++m) EXPECT_EQ(cube.covers_minterm(m), m == 0b101);
  EXPECT_EQ(cube.literal_count(), 3);
  EXPECT_EQ(cube.minterm_count(), 1u);
}

TEST(CubeTest, FullCubeCoversEverything) {
  const Cube cube = Cube::full(4);
  for (std::uint64_t m = 0; m < 16; ++m) EXPECT_TRUE(cube.covers_minterm(m));
  EXPECT_EQ(cube.literal_count(), 0);
  EXPECT_EQ(cube.minterm_count(), 16u);
}

TEST(CubeTest, RaiseVarWidensCoverage) {
  Cube cube = Cube::minterm(0b00, 2);
  cube.raise_var(1);
  EXPECT_TRUE(cube.covers_minterm(0b00));
  EXPECT_TRUE(cube.covers_minterm(0b10));
  EXPECT_FALSE(cube.covers_minterm(0b01));
  EXPECT_EQ(cube.literal_count(), 1);
}

TEST(CubeTest, RestrictVarNarrows) {
  Cube cube = Cube::full(3);
  cube.restrict_var(0, true);
  EXPECT_TRUE(cube.covers_minterm(0b001));
  EXPECT_FALSE(cube.covers_minterm(0b000));
}

TEST(CubeTest, ContainmentAndSupercube) {
  const Cube small = Cube::minterm(0b11, 2, 0b1);
  Cube big = Cube::minterm(0b11, 2, 0b1);
  big.raise_var(0);
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  const Cube sup = small.supercube(Cube::minterm(0b00, 2, 0b10));
  EXPECT_TRUE(sup.covers_minterm(0b00));
  EXPECT_TRUE(sup.covers_minterm(0b11));
  EXPECT_EQ(sup.outputs(), 0b11u);
}

TEST(CubeTest, OutputContainmentMatters) {
  const Cube narrow = Cube::minterm(0b1, 1, 0b01);
  const Cube wide_outputs = Cube::minterm(0b1, 1, 0b11);
  EXPECT_TRUE(wide_outputs.contains(narrow));
  EXPECT_FALSE(narrow.contains(wide_outputs));
}

TEST(CubeTest, IntersectionEmptyWhenLiteralsConflict) {
  Cube a = Cube::full(2);
  a.restrict_var(0, true);
  Cube b = Cube::full(2);
  b.restrict_var(0, false);
  EXPECT_FALSE(a.input_intersects(b));
  EXPECT_FALSE(a.input_intersection(b).has_value());
  b.raise_var(0);
  EXPECT_TRUE(a.input_intersects(b));
}

TEST(CubeTest, RejectsTooManyVariables) {
  EXPECT_THROW(Cube::full(65), Error);
  EXPECT_THROW(Cube::minterm(0b100, 2), Error);  // code beyond inputs
}

// --------------------------------------------------------------- covers --

TEST(CoverTest, CoversAndCoveringCubes) {
  Cover cover(2, 1);
  cover.add(Cube::minterm(0b00, 2, 1));
  cover.add(Cube::minterm(0b11, 2, 1));
  EXPECT_TRUE(cover.covers(0b00, 0));
  EXPECT_FALSE(cover.covers(0b01, 0));
  EXPECT_EQ(cover.covering_cubes(0b11, 0).size(), 1u);
  EXPECT_EQ(cover.literal_count(), 4);
}

TEST(CoverTest, RemoveContainedDropsSubsumedCubes) {
  Cover cover(2, 1);
  Cube big = Cube::minterm(0b00, 2, 1);
  big.raise_var(0);
  cover.add(Cube::minterm(0b00, 2, 1));
  cover.add(big);
  cover.add(big);  // duplicate
  cover.remove_contained();
  EXPECT_EQ(cover.size(), 1u);
  EXPECT_TRUE(cover.covers(0b00, 0));
  EXPECT_TRUE(cover.covers(0b01, 0));
}

// ----------------------------------------------------------------- spec --

TEST(SpecTest, ValidateRejectsOnOffOverlap) {
  TwoLevelSpec spec(2, 1);
  spec.add_on(0, 0b01);
  spec.add_off(0, 0b01);
  spec.normalize();
  EXPECT_THROW(spec.validate(), Error);
}

TEST(SpecTest, CubeValidityAgainstOffSet) {
  TwoLevelSpec spec(2, 2);
  spec.add_off(0, 0b01);
  spec.normalize();
  Cube cube = Cube::full(2, 0b01);
  EXPECT_FALSE(spec.cube_is_valid(cube));   // hits the off-set of output 0
  cube.set_outputs(0b10);
  EXPECT_TRUE(spec.cube_is_valid(cube));    // output 1 has an empty off-set
}

// ------------------------------------------------------------- espresso --

TEST(EspressoTest, MinimizesXorWithoutDontCares) {
  TwoLevelSpec spec(2, 1);
  spec.add_on(0, 0b01);
  spec.add_on(0, 0b10);
  spec.add_off(0, 0b00);
  spec.add_off(0, 0b11);
  const Cover cover = espresso(spec);
  EXPECT_TRUE(verify_cover(spec, cover).ok);
  EXPECT_EQ(cover.size(), 2u);  // XOR needs two products
}

TEST(EspressoTest, SingleCubeFunctionCollapses) {
  // f = x1 (on wherever x1=1, off wherever x1=0) over 3 variables.
  TwoLevelSpec spec(3, 1);
  for (std::uint64_t m = 0; m < 8; ++m)
    ((m >> 1) & 1) ? spec.add_on(0, m) : spec.add_off(0, m);
  const Cover cover = espresso(spec);
  EXPECT_TRUE(verify_cover(spec, cover).ok);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].literal_count(), 1);
}

TEST(EspressoTest, UsesDontCaresFreely) {
  // On-set {11}, off-set {00}; 01 and 10 are don't cares, so one 1-literal
  // cube (or even a single literal) suffices.
  TwoLevelSpec spec(2, 1);
  spec.add_on(0, 0b11);
  spec.add_off(0, 0b00);
  const Cover cover = espresso(spec);
  EXPECT_TRUE(verify_cover(spec, cover).ok);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_LE(cover[0].literal_count(), 1);
}

TEST(EspressoTest, SharesProductsAcrossOutputs) {
  // Two outputs with identical on/off sets must share one AND gate.
  TwoLevelSpec spec(2, 2);
  for (int o = 0; o < 2; ++o) {
    spec.add_on(o, 0b11);
    spec.add_off(o, 0b00);
    spec.add_off(o, 0b01);
    spec.add_off(o, 0b10);
  }
  const Cover cover = espresso(spec);
  EXPECT_TRUE(verify_cover(spec, cover).ok);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].outputs(), 0b11u);
}

TEST(EspressoTest, EmptyOnSetGivesEmptyCover) {
  TwoLevelSpec spec(2, 1);
  spec.add_off(0, 0b00);
  EXPECT_TRUE(espresso(spec).empty());
}

TEST(EspressoTest, IrredundantAfterMinimization) {
  TwoLevelSpec spec(4, 1);
  // f = x0 + x1 x2 with scattered off minterms.
  for (std::uint64_t m = 0; m < 16; ++m) {
    const bool on = (m & 1) || (((m >> 1) & 1) && ((m >> 2) & 1));
    on ? spec.add_on(0, m) : spec.add_off(0, m);
  }
  const Cover cover = espresso(spec);
  EXPECT_TRUE(verify_cover(spec, cover).ok);
  EXPECT_TRUE(verify_irredundant(spec, cover).ok) << cover.to_string();
  EXPECT_EQ(cover.size(), 2u);
}

/// Property test: random incompletely-specified functions; the cover must
/// always satisfy F ⊆ cover, cover ∩ R = ∅ and be irredundant.
class EspressoPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EspressoPropertyTest, RandomFunctionsAreCoveredCorrectly) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int num_inputs = 3 + static_cast<int>(rng.next_below(5));    // 3..7
  const int num_outputs = 1 + static_cast<int>(rng.next_below(3));   // 1..3
  TwoLevelSpec spec(num_inputs, num_outputs);
  const std::uint64_t space = 1ULL << num_inputs;
  for (int o = 0; o < num_outputs; ++o) {
    for (std::uint64_t m = 0; m < space; ++m) {
      const double roll = rng.next_double(0.0, 1.0);
      if (roll < 0.35)
        spec.add_on(o, m);
      else if (roll < 0.75)
        spec.add_off(o, m);
      // else: don't care
    }
  }
  spec.normalize();
  const Cover cover = espresso(spec);
  const VerifyResult correct = verify_cover(spec, cover);
  EXPECT_TRUE(correct.ok) << correct.message;
  const VerifyResult irredundant = verify_irredundant(spec, cover);
  EXPECT_TRUE(irredundant.ok) << irredundant.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EspressoPropertyTest, ::testing::Range(1, 33));

// ---------------------------------------------------------------- exact --

TEST(ExactTest, PrimesOfXor) {
  TwoLevelSpec spec(2, 1);
  spec.add_on(0, 0b01);
  spec.add_on(0, 0b10);
  spec.add_off(0, 0b00);
  spec.add_off(0, 0b11);
  spec.normalize();
  const auto primes = generate_primes(spec, 0);
  ASSERT_TRUE(primes.has_value());
  EXPECT_EQ(primes->size(), 2u);  // x0 x1' and x0' x1
}

TEST(ExactTest, ExactNeverWorseThanHeuristic) {
  Rng rng(7);
  for (int trial = 0; trial < 12; ++trial) {
    TwoLevelSpec spec(4, 1);
    for (std::uint64_t m = 0; m < 16; ++m) {
      const double roll = rng.next_double(0.0, 1.0);
      if (roll < 0.4)
        spec.add_on(0, m);
      else if (roll < 0.8)
        spec.add_off(0, m);
    }
    spec.normalize();
    if (spec.on(0).empty()) continue;
    const Cover heuristic = espresso(spec);
    const Cover exact = exact_minimize(spec);
    EXPECT_TRUE(verify_cover(spec, exact).ok);
    EXPECT_LE(exact.size(), heuristic.size());
  }
}

TEST(ExactTest, ExactIsOptimalOnKnownFunction) {
  // f = majority(x0, x1, x2): minimum SOP has exactly 3 products.
  TwoLevelSpec spec(3, 1);
  for (std::uint64_t m = 0; m < 8; ++m) {
    const int ones = ((m >> 0) & 1) + ((m >> 1) & 1) + ((m >> 2) & 1);
    ones >= 2 ? spec.add_on(0, m) : spec.add_off(0, m);
  }
  const Cover cover = exact_minimize(spec);
  EXPECT_TRUE(verify_cover(spec, cover).ok);
  EXPECT_EQ(cover.size(), 3u);
}

// ------------------------------------------------------------------ pla --

TEST(PlaTest, ParseAndMinimize) {
  const std::string text =
      ".i 3\n.o 1\n"
      "000 0\n001 1\n011 1\n010 0\n1-- -\n"
      ".e\n";
  const PlaFile pla = parse_pla(text);
  EXPECT_EQ(pla.spec.num_inputs(), 3);
  EXPECT_EQ(pla.spec.on(0).size(), 2u);
  const Cover cover = espresso(pla.spec);
  EXPECT_TRUE(verify_cover(pla.spec, cover).ok);
  EXPECT_EQ(cover.size(), 1u);  // x2 (don't cares absorb the upper half)
}

TEST(PlaTest, RoundTripThroughWriter) {
  TwoLevelSpec spec(3, 2);
  spec.add_on(0, 0b011);
  spec.add_on(1, 0b100);
  spec.add_off(0, 0b000);
  spec.add_off(1, 0b000);
  const Cover cover = espresso(spec);
  const std::string text = write_pla(cover);
  EXPECT_NE(text.find(".i 3"), std::string::npos);
  EXPECT_NE(text.find(".o 2"), std::string::npos);
}

TEST(PlaTest, RejectsMalformedInput) {
  EXPECT_THROW(parse_pla(".o 1\n1 1\n.e\n"), Error);           // missing .i
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n111 1\n.e\n"), Error);   // width mismatch
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n.unknown\n"), Error);    // bad directive
}

// --------------------------------------------------------------- verify --

TEST(VerifyTest, DetectsMissingOnMinterm) {
  TwoLevelSpec spec(2, 1);
  spec.add_on(0, 0b11);
  spec.normalize();
  const Cover empty_cover(2, 1);
  EXPECT_FALSE(verify_cover(spec, empty_cover).ok);
}

TEST(VerifyTest, DetectsOffSetViolation) {
  TwoLevelSpec spec(2, 1);
  spec.add_on(0, 0b11);
  spec.add_off(0, 0b00);
  spec.normalize();
  Cover cover(2, 1);
  cover.add(Cube::full(2, 1));  // covers the off minterm too
  EXPECT_FALSE(verify_cover(spec, cover).ok);
}

TEST(VerifyTest, DetectsRedundantCube) {
  TwoLevelSpec spec(2, 1);
  spec.add_on(0, 0b11);
  spec.normalize();
  Cover cover(2, 1);
  cover.add(Cube::minterm(0b11, 2, 1));
  Cube wide = Cube::minterm(0b11, 2, 1);
  wide.raise_var(0);
  cover.add(wide);
  EXPECT_FALSE(verify_irredundant(spec, cover).ok);
}

}  // namespace
}  // namespace nshot::logic
