// Unix-domain-socket transport: the interactive serve mode.  NDJSON both
// ways — each connection writes one request object per line and receives
// one response object per line.  Responses are written in COMPLETION
// order, not submission order: pipelining clients must match responses to
// requests by "id".
//
// SocketListener owns an accept thread plus one reader thread per live
// connection; completion callbacks (worker threads) serialize writes
// through a per-connection mutex, and a shared_ptr keeps the connection
// state alive until its last in-flight response has been written (or
// dropped, when the peer hung up first).
#pragma once

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"

namespace nshot::serve {

class SocketListener {
 public:
  /// Binds and starts accepting immediately.  Throws Error(kInternal)
  /// when the path cannot be bound (a stale socket file is replaced).
  SocketListener(std::string path, Server& server);
  ~SocketListener();  // stop()

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// Stop accepting, close every connection, join the threads and remove
  /// the socket file.  Idempotent.  In-flight requests keep running in
  /// the Server; their responses are dropped (connection gone).
  void stop();

  const std::string& path() const { return path_; }

 private:
  struct Connection;
  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> connection);

  std::string path_;
  Server& server_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> readers_;
  bool stopped_ = false;
};

/// Blocking NDJSON client for --connect, load_replay and the tests.
class SocketClient {
 public:
  explicit SocketClient(const std::string& path);  // throws on connect failure
  ~SocketClient();

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  /// Write one request line.
  void send(const WireRequest& wire);
  void send_line(const std::string& line);

  /// Next response line (without the newline); empty on EOF.  Responses
  /// arrive in completion order — match by "id" when pipelining.
  std::string recv_line();

  /// send() + recv_line() — only valid when nothing else is pipelined.
  std::string roundtrip(const WireRequest& wire);

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace nshot::serve
