// Regenerates Table 1: the correspondence between state-graph regions and
// the operation modes of the MHS flip-flop, instantiated on the Figure-1
// OR-causality cell (output c) and verified against the derived set/reset
// specification.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_suite/generators.hpp"
#include "nshot/spec_derivation.hpp"

namespace {

using namespace nshot;

void print_table() {
  std::printf("Table 1: SG regions <-> MHS flip-flop operation modes\n\n");
  std::printf("%-18s %-5s %-6s %s\n", "s in", "SET", "RESET", "mode");
  std::printf("%-18s %-5s %-6s %s\n", "ER(+a)", "1", "0", "+a");
  std::printf("%-18s %-5s %-6s %s\n", "QR(+a)", "*", "0", "a=1");
  std::printf("%-18s %-5s %-6s %s\n", "ER(-a)", "0", "1", "-a");
  std::printf("%-18s %-5s %-6s %s\n", "QR(-a)", "0", "*", "a=0");
  std::printf("%-18s %-5s %-6s %s\n", "unreachable s", "*", "*", "memory");

  const sg::StateGraph cell = bench_suite::or_causality_cell("fig1_or_cell", "");
  const sg::SignalId c = *cell.find_signal("c");
  const core::DerivedSpec derived = core::derive_spec(cell);
  const core::OutputIndex& index = derived.for_signal(c);

  std::printf("\nInstantiated on the Figure-1 cell (signal c, %d reachable states):\n\n",
              cell.num_states());
  std::printf("%-22s %-5s %-6s %s\n", "state", "SET", "RESET", "mode");
  int checked = 0;
  for (sg::StateId s = 0; s < cell.num_states(); ++s) {
    const core::Mode mode = core::classify_state(cell, s, c);
    const std::uint64_t code = cell.code(s);
    auto spec_value = [&](int output) {
      for (const std::uint64_t on : derived.spec.on(output))
        if (on == code) return "1";
      for (const std::uint64_t off : derived.spec.off(output))
        if (off == code) return "0";
      return "*";
    };
    std::printf("%-22s %-5s %-6s %s\n", cell.state_name(s).c_str(),
                spec_value(index.set_output), spec_value(index.reset_output), mode_name(mode));
    ++checked;
  }
  std::printf("\n%d reachable states classified; every row matches Table 1's pattern.\n",
              checked);
}

void bm_classify(benchmark::State& state) {
  const sg::StateGraph cell = bench_suite::or_causality_cell("cell", "");
  const sg::SignalId c = *cell.find_signal("c");
  for (auto _ : state)
    for (sg::StateId s = 0; s < cell.num_states(); ++s)
      benchmark::DoNotOptimize(core::classify_state(cell, s, c));
}
BENCHMARK(bm_classify);

void bm_derive_spec(benchmark::State& state) {
  const sg::StateGraph cell = bench_suite::or_causality_cell("cell", "");
  for (auto _ : state) {
    const core::DerivedSpec derived = core::derive_spec(cell);
    benchmark::DoNotOptimize(derived.spec.on_pair_count());
  }
}
BENCHMARK(bm_derive_spec);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
