// Fair-share admission for the batch server: the pure scheduling policy,
// separated from sockets and threads so serve_test can drive it
// deterministically.
//
// Model: every request belongs to a client (the fairness key) and a class
// (its request kind — synthesis | conformance | stress | batch).  The
// queue enforces
//
//  * a global backlog bound (admission beyond it is rejected
//    resource_exhausted — backpressure instead of unbounded memory),
//  * a per-client in-flight cap: take() never lets one client occupy more
//    than `per_client_inflight` workers, no matter how deep its backlog,
//  * round-robin service across clients with FIFO order within each
//    client's class queues (a client's synthesis trickle is not stuck
//    behind its own stress flood),
//  * deadline-aware rejection: when a request carries a deadline and the
//    projected queue wait (backlog ahead / service rate, using an EWMA of
//    observed service times) already exceeds it, the request is rejected
//    resource_exhausted at admission instead of timing out a worker later.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace nshot::serve {

struct AdmissionOptions {
  /// Requests executing concurrently (0 = half the shared pool's workers,
  /// at least 2 — request bodies run their own parallel_for on the same
  /// pool, so saturating it with request tasks only adds queueing).
  int max_inflight = 0;
  /// Per-client in-flight cap (fair share); at least 1.
  int per_client_inflight = 2;
  /// Global backlog bound; offers beyond it are rejected.
  int max_queue = 256;
  /// EWMA smoothing for observed service times (0..1, weight of the
  /// newest observation).
  double service_ewma_alpha = 0.2;
  /// Initial service estimate before any completion was observed.
  double initial_service_ms = 50.0;
};

/// One queued request, by id: the queue schedules ids, the server owns
/// the payloads.
struct Ticket {
  std::uint64_t seq = 0;     // admission order (FIFO key)
  std::string id;            // request id (opaque here)
  std::string client;        // fairness key
  std::string klass;         // request kind; "batch" when empty
  double deadline_ms = 0.0;  // effective request deadline (0 = none)
};

class FairShareQueue {
 public:
  explicit FairShareQueue(AdmissionOptions options);

  /// Admit `ticket` or reject it with a reason ("backlog full ...",
  /// "deadline ... projected wait ...").  Admitted tickets are queued
  /// FIFO within (client, class).
  bool offer(Ticket ticket, std::string* reason);

  /// Next ticket to run, honoring the per-client in-flight cap and
  /// round-robin across clients; nullopt when nothing is runnable (empty,
  /// or every queued client is at its cap, or max_inflight reached).
  /// The returned ticket counts as in-flight until complete() is called.
  std::optional<Ticket> take();

  /// Record a completion: frees the client's in-flight slot and folds the
  /// observed service time into the EWMA.
  void complete(const std::string& client, double service_ms);

  /// Drain support: pop every still-queued ticket (they were admitted but
  /// never started — the server rejects their futures and, in file-queue
  /// mode, restores their request files for the next invocation).
  std::vector<Ticket> evict_queued();

  int queued() const { return queued_; }
  int inflight() const { return inflight_; }
  double service_estimate_ms() const { return service_ms_; }
  int effective_max_inflight() const { return max_inflight_; }

 private:
  struct ClientState {
    // One FIFO per class, served round-robin within the client so a
    // trickle class is never starved by the same client's flood class.
    std::map<std::string, std::deque<Ticket>> by_class;
    std::vector<std::string> class_order;  // round-robin cursor basis
    std::size_t next_class = 0;
    int inflight = 0;
    int queued = 0;
  };

  std::optional<Ticket> pop_from(ClientState& client);

  AdmissionOptions options_;
  int max_inflight_;
  std::map<std::string, ClientState> clients_;
  std::vector<std::string> client_order_;  // round-robin cursor basis
  std::size_t next_client_ = 0;
  int queued_ = 0;
  int inflight_ = 0;
  double service_ms_;
};

}  // namespace nshot::serve
