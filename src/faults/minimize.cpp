#include "faults/minimize.hpp"

#include <utility>

#include "sim/delay_space.hpp"
#include "sim/vcd.hpp"

namespace nshot::faults {

namespace {

bool fails(const sg::StateGraph& spec, const netlist::Netlist& circuit,
           const FaultScenario& scenario, const MinimizeOptions& options, long& evaluations) {
  ++evaluations;
  return !run_scenario(spec, circuit, scenario, options.run).clean();
}

}  // namespace

MinimizedWitness minimize_counterexample(const sg::StateGraph& spec,
                                         const netlist::Netlist& circuit,
                                         const FaultScenario& scenario,
                                         const MinimizeOptions& options) {
  MinimizedWitness witness;

  // Pin the delay assignment the scenario denotes and fold delay faults
  // into it: from here on the vector is the single representation of the
  // delay perturbation, and the reset pass can shrink it gate by gate.
  FaultScenario current = scenario;
  current.delays = materialize_delays(circuit, scenario);
  current.faults.clear();
  for (const Fault& fault : scenario.faults)
    if (fault.kind == FaultKind::kStuckAt || fault.kind == FaultKind::kGlitch)
      current.faults.push_back(fault);

  witness.reproduced = fails(spec, circuit, current, options, witness.evaluations);
  if (witness.reproduced) {
    // Greedy 1-minimal fault removal: drop any fault whose absence still
    // fails, repeating until a full sweep removes nothing.
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < current.faults.size();) {
        FaultScenario candidate = current;
        candidate.faults.erase(candidate.faults.begin() + static_cast<std::ptrdiff_t>(i));
        if (fails(spec, circuit, candidate, options, witness.evaluations)) {
          current = std::move(candidate);
          ++witness.faults_removed;
          changed = true;
        } else {
          ++i;
        }
      }
    }

    // Per-gate delay reset toward nominal.
    const sim::DelaySpace space(circuit, gatelib::GateLibrary::standard());
    const std::vector<double> nominal = space.nominal_vector();
    for (int pass = 0; pass < options.delay_passes; ++pass) {
      bool reset_any = false;
      for (std::size_t g = 0; g < nominal.size(); ++g) {
        if (current.delays[g] == nominal[g]) continue;
        FaultScenario candidate = current;
        candidate.delays[g] = nominal[g];
        if (fails(spec, circuit, candidate, options, witness.evaluations)) {
          current = std::move(candidate);
          ++witness.delays_reset;
          reset_any = true;
        }
      }
      if (!reset_any) break;
    }
  }

  const std::vector<double> nominal =
      sim::DelaySpace(circuit, gatelib::GateLibrary::standard()).nominal_vector();
  for (std::size_t g = 0; g < current.delays.size(); ++g)
    if (current.delays[g] != nominal[g]) ++witness.off_nominal_gates;

  // Final replay with the waveform attached.
  sim::VcdRecorder recorder(circuit);
  witness.report = run_scenario(spec, circuit, current, options.run, &recorder);
  witness.vcd = recorder.write();
  witness.scenario = std::move(current);
  return witness;
}

}  // namespace nshot::faults
