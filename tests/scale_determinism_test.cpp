// Thread-determinism tests for the jobs knobs added by the thread×word
// fusion work: every kernel that accepts a worker count must be
// byte-identical at jobs=1 (serial) and jobs=8 (threaded) — state graphs
// from the sharded reachability BFS, region structures, CSC/USC verdicts,
// bit planes, detonant scans and cover verification.  The suite runs
// under ThreadSanitizer in CI, so it doubles as the race detector for the
// sharded frontier merge.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "bench_suite/generators.hpp"
#include "logic/verify.hpp"
#include "nshot/synthesis.hpp"
#include "sg/bitset.hpp"
#include "sg/properties.hpp"
#include "sg/regions.hpp"
#include "stg/g_format.hpp"
#include "stg/reachability.hpp"
#include "util/error.hpp"

namespace nshot {
namespace {

constexpr int kJobs = 8;

/// Full structural fingerprint of a state graph: states with codes and
/// names, every edge, the initial state, signal table.
std::string sg_fingerprint(const sg::StateGraph& g) {
  std::string out = "init=" + std::to_string(g.initial()) + ";";
  for (int i = 0; i < g.num_signals(); ++i)
    out += g.signal(i).name + (g.is_input(i) ? "?" : "!") + ",";
  for (sg::StateId s = 0; s < g.num_states(); ++s) {
    out += "\n" + std::to_string(s) + ":" + g.state_name(s) + "=" + std::to_string(g.code(s));
    for (const sg::Edge& e : g.out_edges(s))
      out += " --" + g.label_name(e.label) + "--> " + std::to_string(e.target);
  }
  return out;
}

stg::Stg random_net(int seed) {
  bench_suite::RandomStgOptions gen;
  gen.seed = static_cast<std::uint64_t>(seed);
  return stg::parse_g(bench_suite::random_semimodular_g(gen));
}

class ScaleDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(ScaleDeterminismTest, ShardedReachabilityMatchesSerial) {
  const stg::Stg net = random_net(GetParam());
  stg::ReachabilityOptions serial;
  stg::ReachabilityOptions sharded;
  sharded.jobs = kJobs;
  const sg::StateGraph reference = stg::build_state_graph(net, serial);
  const sg::StateGraph threaded = stg::build_state_graph(net, sharded);
  EXPECT_EQ(sg_fingerprint(reference), sg_fingerprint(threaded));
}

TEST_P(ScaleDeterminismTest, ShardedReachabilityThrowsSerialDiagnostics) {
  // A state cap below the reachable count must produce the same error
  // code and message from the sharded replay as from the serial loop —
  // the replay rethrows at the exact serial throw position.
  const stg::Stg net = random_net(GetParam());
  stg::ReachabilityOptions serial;
  serial.max_states = 3;
  stg::ReachabilityOptions sharded = serial;
  sharded.jobs = kJobs;

  std::string serial_error, sharded_error;
  try {
    stg::build_state_graph(net, serial);
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
    serial_error = e.message();
  }
  try {
    stg::build_state_graph(net, sharded);
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
    sharded_error = e.message();
  }
  EXPECT_EQ(serial_error, sharded_error);
  // Every generated net has more than 3 states, so both must throw.
  EXPECT_FALSE(serial_error.empty());
}

TEST_P(ScaleDeterminismTest, PlaneBuildersMatchSerial) {
  const sg::StateGraph g = stg::build_state_graph(random_net(GetParam()));
  const std::vector<sg::StateSet> values1 = sg::all_value_sets(g, 1);
  const std::vector<sg::StateSet> valuesN = sg::all_value_sets(g, kJobs);
  const std::vector<sg::StateSet> excited1 = sg::all_excited_sets(g, 1);
  const std::vector<sg::StateSet> excitedN = sg::all_excited_sets(g, kJobs);
  ASSERT_EQ(values1.size(), valuesN.size());
  ASSERT_EQ(excited1.size(), excitedN.size());
  for (int x = 0; x < g.num_signals(); ++x) {
    const std::size_t xi = static_cast<std::size_t>(x);
    EXPECT_EQ(values1[xi].to_vector(), valuesN[xi].to_vector()) << "value plane " << x;
    EXPECT_EQ(excited1[xi].to_vector(), excitedN[xi].to_vector()) << "excited plane " << x;
    EXPECT_EQ(sg::value_set(g, x, 1).to_vector(), sg::value_set(g, x, kJobs).to_vector());
    EXPECT_EQ(sg::excited_set(g, x, 1).to_vector(), sg::excited_set(g, x, kJobs).to_vector());
  }
}

TEST_P(ScaleDeterminismTest, RegionsMatchSerial) {
  const sg::StateGraph g = stg::build_state_graph(random_net(GetParam()));
  const std::vector<sg::SignalRegions> serial = sg::compute_all_regions(g, 1);
  const std::vector<sg::SignalRegions> threaded = sg::compute_all_regions(g, kJobs);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i].to_string(g), threaded[i].to_string(g)) << "signal index " << i;
}

TEST_P(ScaleDeterminismTest, CodingPropertiesMatchSerial) {
  const sg::StateGraph g = stg::build_state_graph(random_net(GetParam()));
  EXPECT_EQ(sg::check_csc(g, 1).summary(), sg::check_csc(g, kJobs).summary());
  EXPECT_EQ(sg::check_usc(g, 1).summary(), sg::check_usc(g, kJobs).summary());
  EXPECT_EQ(sg::count_csc_conflicts(g, 1), sg::count_csc_conflicts(g, kJobs));
  for (const sg::SignalId a : g.noninput_signals())
    EXPECT_EQ(sg::detonant_states(g, a, 1), sg::detonant_states(g, a, kJobs)) << "signal " << a;
  // The batched scan must agree with the per-signal entry point at any
  // worker count (it shares one plane sweep; entry i is signal_i's scan).
  const std::vector<std::vector<sg::StateId>> batched = sg::all_detonant_states(g, kJobs);
  ASSERT_EQ(batched.size(), g.noninput_signals().size());
  for (std::size_t k = 0; k < batched.size(); ++k)
    EXPECT_EQ(sg::detonant_states(g, g.noninput_signals()[k], 1), batched[k])
        << "signal index " << k;
}

TEST_P(ScaleDeterminismTest, VerifyCoverMatchesSerial) {
  const sg::StateGraph g = stg::build_state_graph(random_net(GetParam()));
  if (g.noninput_signals().empty()) GTEST_SKIP() << "all-input controller";
  std::optional<core::SynthesisResult> synthesized;
  try {
    synthesized = core::synthesize(g);
  } catch (const Error&) {
    GTEST_SKIP() << "unimplementable draw";
  }
  const core::SynthesisResult& result = *synthesized;
  const logic::TwoLevelSpec& spec = result.derived.spec;

  auto compare = [&spec](const logic::Cover& cover, const std::string& what) {
    const logic::VerifyResult serial = logic::verify_cover(spec, cover, 1);
    const logic::VerifyResult threaded = logic::verify_cover(spec, cover, kJobs);
    EXPECT_EQ(serial.ok, threaded.ok) << what;
    EXPECT_EQ(serial.message, threaded.message) << what;
  };

  compare(result.cover, "intact cover");
  // Broken covers exercise the first-failure-in-output-order merge.
  for (std::size_t drop = 0; drop < result.cover.size(); ++drop) {
    logic::Cover broken = result.cover;
    broken.erase(drop);
    compare(broken, "cover without cube " + std::to_string(drop));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScaleDeterminismTest, ::testing::Range(1, 33));

}  // namespace
}  // namespace nshot
