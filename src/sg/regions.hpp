// Excitation, quiescent and trigger regions (Definitions 5-7, Properties
// 1-2 of the paper).
//
// For a non-input signal a:
//  * an excitation region ER(*a_i) is a maximal connected set of states in
//    which a has the same value and is excited;
//  * the quiescent region QR(*a_i) is the maximal connected set of states
//    forward-reachable from ER(*a_i) in which a keeps its new value and is
//    stable;
//  * a trigger region TR(*a) is a minimal connected subset of ER(*a) that,
//    once entered, can only be left by firing *a.  In graph terms these are
//    exactly the bottom (terminal) strongly connected components of the
//    subgraph of ER(*a) induced by the arcs that do not fire *a.
#pragma once

#include <string>
#include <vector>

#include "sg/state_graph.hpp"

namespace nshot::sg {

/// One excitation region ER(*a_i) with its quiescent region and trigger
/// regions.
struct ExcitationRegion {
  SignalId signal = -1;
  bool rising = true;  // true: ER(+a) (a == 0 excited), false: ER(-a)
  std::vector<StateId> states;                      // the ER itself
  std::vector<StateId> quiescent;                   // QR(*a_i)
  std::vector<std::vector<StateId>> trigger_regions;  // bottom SCCs of the ER

  /// Single traversal (Definition 9) restricted to this region: every
  /// trigger region contains exactly one state.
  bool single_traversal() const;
};

/// All regions of one non-input signal.
struct SignalRegions {
  SignalId signal = -1;
  std::vector<ExcitationRegion> regions;  // up and down regions, all indices

  std::string to_string(const StateGraph& sg) const;
};

/// Compute the regions of non-input signal `a`.
SignalRegions compute_regions(const StateGraph& sg, SignalId a);

/// Same computation over the original ordered std::set / std::map
/// structures — for kernel equivalence tests and benchmarking only.
/// Identical output to compute_regions.
SignalRegions compute_regions_reference(const StateGraph& sg, SignalId a);

/// Regions of every non-input signal, in signal order.
///
/// `jobs` is the thread axis over the word-parallel per-signal kernels:
/// the value/excitation bit planes of every signal are built once in
/// word-range-chunked sweeps, then the per-signal region analyses (each a
/// word-parallel flood over its own planes) run as independent items of an
/// exec::parallel_map merged by signal index — so the result is
/// byte-identical to the serial loop at any worker count.  jobs <= 1 keeps
/// the serial loop (still sharing the single plane sweep).
std::vector<SignalRegions> compute_all_regions(const StateGraph& sg, int jobs = 1);

/// Definition 9: the SG is single traversal iff every trigger region of
/// every non-input signal contains exactly one state.
bool is_single_traversal(const StateGraph& sg);

/// Property 1 checker: from inside an ER(*a), the only arcs leaving the ER
/// fire *a.  Holds for semi-modular SGs with input choices; verified
/// explicitly by the test-suite.
bool verify_output_trapping(const StateGraph& sg, const ExcitationRegion& er);

/// Property 2 checker: from every state of the ER some trigger region is
/// reachable without firing *a.
bool verify_trigger_reachability(const StateGraph& sg, const ExcitationRegion& er);

}  // namespace nshot::sg
