# Empty compiler generated dependencies file for nshot_util.
# This may be replaced when dependencies are built.
