# Empty compiler generated dependencies file for nshot_test.
# This may be replaced when dependencies are built.
