// Small string utilities used by the text-format parsers (.g, PLA).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nshot {

/// Split `text` on whitespace (spaces and tabs); empty tokens are dropped.
std::vector<std::string> split_ws(std::string_view text);

/// Strip leading/trailing whitespace and a trailing '#'-comment if present.
std::string strip_comment_and_trim(std::string_view line);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Parse a decimal integer in [lo, hi]; throws nshot::Error on malformed
/// input, trailing garbage, or out-of-range values (unlike std::atoi,
/// which silently yields 0).  `what` names the value in error messages.
long parse_long(std::string_view text, long lo, long hi, std::string_view what);
int parse_int(std::string_view text, int lo, int hi, std::string_view what);

/// Parse a finite decimal floating-point value in [lo, hi]; throws
/// nshot::Error on malformed or out-of-range input.
double parse_double(std::string_view text, double lo, double hi, std::string_view what);

/// Longest line the text parsers accept.  Far beyond any legitimate .g /
/// .sg / PLA line; a longer one is a corrupt or hostile input, rejected
/// up front instead of ballooning token vectors downstream.
constexpr std::size_t kMaxParserLine = 65536;

/// Validate raw text before line-oriented parsing: rejects NUL bytes and
/// malformed UTF-8 (truncated/overlong sequences, bare continuation
/// bytes) with Error(kInputInvalid) naming the line and column, and lines
/// longer than kMaxParserLine.  `what` names the format ("`.g` text", ...)
/// in error messages.
void check_parser_text(std::string_view text, std::string_view what);

}  // namespace nshot
