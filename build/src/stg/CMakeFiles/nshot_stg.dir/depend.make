# Empty dependencies file for nshot_stg.
# This may be replaced when dependencies are built.
