// Whole-netlist rewriting helpers shared by the ablation benches and the
// fault-injection harness (promoted from bench/ablation_util.hpp so that
// every consumer rewrites netlists — and therefore samples the rewritten
// delay spaces — identically).
#pragma once

#include <functional>
#include <optional>

#include "netlist/netlist.hpp"

namespace nshot::netlist {

/// Copy `source` into a new netlist with identical nets and primary
/// inputs/outputs; every gate is passed through `transform`, which either
/// returns the (possibly modified) gate to insert, or std::nullopt to take
/// over insertion itself via the provided netlist reference (for 1-to-many
/// rewrites).
inline Netlist transform_netlist(
    const Netlist& source,
    const std::function<std::optional<Gate>(const Gate&, Netlist&)>& transform) {
  Netlist result(source.name());
  for (NetId n = 0; n < source.num_nets(); ++n) result.add_net(source.net_name(n));
  for (const NetId n : source.primary_inputs()) result.add_primary_input(n);
  for (const NetId n : source.primary_outputs()) result.add_primary_output(n);
  for (const Gate& gate : source.gates()) {
    std::optional<Gate> replacement = transform(gate, result);
    if (replacement) result.add_gate(std::move(*replacement));
  }
  return result;
}

/// Find or create a constant-1 primary input rail (the environment holds
/// constant rails at their fixed value; see conformance initial values).
inline NetId const_one(Netlist& nl) {
  if (const auto existing = nl.find_net("const1")) return *existing;
  const NetId net = nl.add_net("const1");
  nl.add_primary_input(net);
  return net;
}

/// Find or create a constant-0 primary input rail.
inline NetId const_zero(Netlist& nl) {
  if (const auto existing = nl.find_net("const0")) return *existing;
  const NetId net = nl.add_net("const0");
  nl.add_primary_input(net);
  return net;
}

}  // namespace nshot::netlist
