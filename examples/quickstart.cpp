// Quickstart: the complete N-SHOT flow on the paper's Figure 1 example —
// an OR-causality cell (output c fires when the FIRST of two concurrent
// inputs arrives), the canonical non-distributive behaviour that most
// prior gate-level methods cannot implement.
//
//   1. build the state graph through the public API,
//   2. check the Theorem 2 preconditions,
//   3. inspect regions (ER/QR/trigger, Definitions 5-7),
//   4. synthesize the N-SHOT circuit (Figure 3),
//   5. validate it in the closed-loop simulator under random gate delays.
#include <cstdio>

#include "bench_suite/generators.hpp"
#include "nshot/synthesis.hpp"
#include "sg/properties.hpp"
#include "sg/regions.hpp"
#include "sim/conformance.hpp"

int main() {
  using namespace nshot;

  // 1. The Figure-1 OR cell: inputs a, b rise concurrently; output c fires
  // on the first arrival; input d acknowledges and the cycle reverses.
  const sg::StateGraph cell = bench_suite::or_causality_cell("fig1_or_cell", "");
  std::printf("state graph '%s': %d states, %d signals\n", cell.name().c_str(),
              cell.num_states(), cell.num_signals());

  // 2. Theorem 2 preconditions: consistency, semi-modularity, CSC.
  const sg::PropertyReport report = sg::check_implementability(cell);
  std::printf("implementability: %s\n", report.summary().c_str());
  std::printf("distributive: %s  (detonant states make this a case the\n"
              "  single-cube / monotonous-cover methods reject)\n",
              sg::is_distributive(cell) ? "yes" : "no");

  // 3. Regions of the output signal (Figure 1's ER/QR annotation).
  const sg::SignalId c = *cell.find_signal("c");
  std::printf("\n%s", sg::compute_regions(cell, c).to_string(cell).c_str());

  // 4. Synthesis: conventional two-level minimization, trigger check,
  //    Eq. 1, architecture mapping.
  const core::SynthesisResult result = core::synthesize(cell);
  std::printf("\n%s", core::describe(cell, result).c_str());
  std::printf("\nminimized joint set/reset cover (rows: input literals | outputs):\n%s",
              result.cover.to_string().c_str());
  std::printf("\nsynthesized N-SHOT netlist (Figure 3 architecture):\n%s",
              result.circuit.to_string().c_str());

  // 5. Closed-loop validation: many random delay assignments; internal
  //    SOP nets may glitch, observable signals must not.
  sim::ConformanceOptions options;
  options.runs = 20;
  options.max_transitions = 150;
  const sim::ConformanceReport conf = sim::check_conformance(cell, result.circuit, options);
  std::printf("\nconformance: %s\n", conf.summary().c_str());
  std::printf("=> circuit is externally hazard-free%s\n",
              conf.internal_toggles > conf.external_transitions
                  ? " (while the SOP core glitched internally)"
                  : "");
  return conf.clean() ? 0 : 1;
}
