// Incompletely-specified multi-output logic specification (F, D, R).
//
// Following the paper's synthesis procedure (Section IV-A), the on-set F and
// off-set R are given explicitly as minterm lists (these are the reachable
// states of the state graph classified per Table 1); every minterm not
// listed in either set is a don't care (the union of the quiescent regions
// and all unreachable states).  Because the minterm space can be 2^n for
// n up to 64, the don't-care set is always implicit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logic/cube.hpp"

namespace nshot::logic {

/// Multi-output (F, D, R) specification with explicit on/off minterm lists.
class TwoLevelSpec {
 public:
  TwoLevelSpec(int num_inputs, int num_outputs);

  int num_inputs() const { return num_inputs_; }
  int num_outputs() const { return num_outputs_; }

  /// Add `code` to the on-set of output `o`.  A minterm must not be in both
  /// the on-set and the off-set of the same output (checked by validate()).
  void add_on(int o, std::uint64_t code);
  void add_off(int o, std::uint64_t code);

  const std::vector<std::uint64_t>& on(int o) const { return on_[o]; }
  const std::vector<std::uint64_t>& off(int o) const { return off_[o]; }

  /// Total number of (minterm, output) on-pairs.
  std::size_t on_pair_count() const;

  /// Throws nshot::Error if some output has a minterm in both F and R.
  void validate() const;

  /// Sorts and deduplicates the minterm lists (call once after filling).
  void normalize();

  /// True if the input part of `cube` hits no off-minterm of any output the
  /// cube feeds — i.e. the cube is an implicant of F ∪ D for those outputs.
  bool cube_is_valid(const Cube& cube) const;

  /// True if raising `cube` to feed output `o` would keep it valid.
  bool cube_valid_for_output(const Cube& cube, int o) const;

 private:
  int num_inputs_;
  int num_outputs_;
  std::vector<std::vector<std::uint64_t>> on_;
  std::vector<std::vector<std::uint64_t>> off_;
};

}  // namespace nshot::logic
