// Reader/writer for the astg ".g" text format used by SIS, petrify and the
// classic asynchronous benchmark suites.
//
// Supported sections: .model/.name, .inputs, .outputs, .internal, .dummy,
// .graph, .marking { ... }, .init (our extension for explicit initial
// signal values), .end.  Dummy transitions are internal sequencing events
// that reachability eliminates by eager saturation (they must be
// confusion-free; see reachability.hpp).
#pragma once

#include <string>

#include "stg/stg.hpp"

namespace nshot::stg {

/// Parse .g text into an STG; throws nshot::Error with a line-accurate
/// message on malformed input.
Stg parse_g(const std::string& text);

/// Render an STG back to .g text (roundtrips through parse_g).
std::string write_g(const Stg& stg);

}  // namespace nshot::stg
