# Empty compiler generated dependencies file for nshot_baselines.
# This may be replaced when dependencies are built.
