// Robustness margins and fault tolerance of the synthesized benchmarks:
// how much slack does each circuit keep against the two cliffs that carry
// the hazard-freedom argument?
//
//  * ω margin (Theorem 1): the closest any effective-excitation pulse of
//    an MHS flip-flop came to the filtering threshold — from either side —
//    over a sweep of randomized-delay closed-loop runs.
//  * Eq. 1 margin (Section IV-C): the acknowledgement-scheme slack
//    t_del + t_res1f + t_mhs − t_set0w evaluated with concrete per-gate
//    delays along actual netlist paths.
//  * Fault battery: stuck-at faults on every MHS input rail, glitch pulses
//    around ω on the SOP nets, slow-outlier SOP drivers — with the share
//    the closed-loop conformance check detects.
//
// The second table demonstrates the point of the adversarial harness: on a
// deliberately under-compensated netlist (set SOP deepened so Eq. 1
// requires t_del > 0, none installed) uniform Monte Carlo over stressed
// delay bounds misses the trespass that hill-climbing the delay vector
// finds quickly.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "exec/thread_pool.hpp"
#include "faults/stress.hpp"
#include "nshot/synthesis.hpp"

namespace {

using namespace nshot;

void print_margin_sweep() {
  std::printf("Robustness margins and fault battery (per benchmark)\n\n");
  std::printf("%-15s %8s %8s %8s %9s %9s %9s\n", "circuit", "fire", "absorb", "eq1",
              "faults", "detected", "survived");
  // One stress campaign per benchmark, run in parallel and printed in
  // suite order — each campaign is internally deterministic (fixed seed),
  // so the table is identical at every jobs value.
  std::vector<bench_suite::BenchmarkInfo> selected;
  for (const auto& info : bench_suite::all_benchmarks())
    if (info.paper_states <= 2500) selected.push_back(info);
  const std::vector<std::string> rows =
      exec::parallel_map<std::string>(static_cast<int>(selected.size()), [&](int i) {
        const auto& info = selected[static_cast<std::size_t>(i)];
        const sg::StateGraph g = info.build();
        const core::SynthesisResult result = core::synthesize(g);
        faults::StressOptions options;
        options.seed = 2026;
        options.margin_runs = 3;
        options.run.max_transitions = 80;
        options.adversarial.restarts = 0;  // margin + battery only
        const faults::StressReport report =
            faults::run_stress(g, result.circuit, info.name, options);

        double min_fire = faults::kNoMargin, min_absorb = faults::kNoMargin;
        int survived = 0, failed = 0;
        for (const faults::SignalMargins& s : report.signals) {
          min_fire = std::min(min_fire, s.omega.min_fire_slack);
          min_absorb = std::min(min_absorb, s.omega.min_absorb_slack);
          survived += s.faults_survived;
          failed += s.faults_failed;
        }
        char line[160];
        std::snprintf(line, sizeof line, "%-15s %8.2f %8.2f %8.2f %9zu %9d %9d\n",
                      info.name.c_str(), min_fire, min_absorb, report.min_eq1_slack,
                      report.outcomes.size(), failed, survived);
        return std::string(line);
      });
  for (const std::string& row : rows) std::fputs(row.c_str(), stdout);
  std::printf("\n(fire/absorb: min distance of any excitation pulse to the threshold\n");
  std::printf(" omega from above/below; eq1: min acknowledgement slack; detected:\n");
  std::printf(" injected faults the closed-loop conformance check catches.)\n");
}

void print_adversarial_demo() {
  std::printf("\nAdversarial delay search vs uniform Monte Carlo (under-compensated %s)\n\n",
              "converta");
  const sg::StateGraph g = bench_suite::build_benchmark("converta");
  const core::SynthesisResult result = core::synthesize(g);
  const std::string target = g.signal(g.noninput_signals().front()).name;
  const netlist::Netlist uncomp = faults::strip_delay_compensation(
      faults::deepen_set_path(result.circuit, target, /*levels=*/1));

  for (const faults::Eq1Requirement& req :
       faults::eq1_requirements(uncomp, gatelib::GateLibrary::standard()))
    if (req.signal == target)
      std::printf("Eq. 1 on %s now requires t_del_set >= %.2f; installed: %.2f\n",
                  target.c_str(), req.required_set, req.installed_set);

  // Search the plain library interval: the Eq. 1 shortfall means a thin
  // corner of the ordinary delay box is hazardous.
  faults::AdversarialOptions options;
  options.run.max_transitions = 120;
  const faults::MonteCarloResult mc = faults::stressed_monte_carlo(g, uncomp, 50, options);
  std::printf("uniform Monte Carlo:  %d/%d runs violate (min slack %.3f)\n",
              mc.violating_runs, mc.runs, mc.min_slack);
  const faults::AdversarialResult adv = faults::adversarial_delay_search(g, uncomp, options);
  std::printf("adversarial search:   %s after %ld evaluations (best slack %.3f)\n",
              adv.violation_found ? "VIOLATION" : "no violation", adv.evaluations,
              adv.best_slack);
}

void bm_probed_run(benchmark::State& state) {
  const sg::StateGraph g = bench_suite::build_benchmark("pmcm1");
  const core::SynthesisResult result = core::synthesize(g);
  faults::ScenarioOptions options;
  options.max_transitions = 100;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    faults::FaultScenario scenario;
    scenario.seed = seed++;
    const faults::ProbedRun run = faults::run_probed(g, result.circuit, scenario, options);
    benchmark::DoNotOptimize(run.min_slack);
  }
}
BENCHMARK(bm_probed_run);

void bm_fault_scenario(benchmark::State& state) {
  const sg::StateGraph g = bench_suite::build_benchmark("pmcm1");
  const core::SynthesisResult result = core::synthesize(g);
  faults::ScenarioOptions options;
  options.max_transitions = 100;
  const netlist::Netlist& circuit = result.circuit;
  // Glitch one set SOP net just under the threshold each iteration.
  netlist::NetId sop = -1;
  for (netlist::GateId gate = 0; gate < circuit.num_gates(); ++gate)
    if (circuit.gate(gate).type == gatelib::GateType::kMhsFlipFlop) {
      sop = circuit.gate(gate).inputs[0];
      break;
    }
  std::uint64_t seed = 1;
  for (auto _ : state) {
    faults::FaultScenario scenario;
    scenario.seed = seed++;
    scenario.faults.push_back(faults::Fault{.kind = faults::FaultKind::kGlitch,
                                            .net = sop,
                                            .value = true,
                                            .time = 5.0,
                                            .width = 0.25});
    const sim::ConformanceReport report = faults::run_scenario(g, circuit, scenario, options);
    benchmark::DoNotOptimize(report.absorbed_pulses);
  }
}
BENCHMARK(bm_fault_scenario);

}  // namespace

int main(int argc, char** argv) {
  nshot::exec::set_default_jobs(nshot::exec::hardware_jobs());
  print_margin_sweep();
  print_adversarial_demo();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
