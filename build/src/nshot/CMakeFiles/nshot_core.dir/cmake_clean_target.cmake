file(REMOVE_RECURSE
  "libnshot_core.a"
)
