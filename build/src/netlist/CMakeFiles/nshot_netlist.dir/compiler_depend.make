# Empty compiler generated dependencies file for nshot_netlist.
# This may be replaced when dependencies are built.
