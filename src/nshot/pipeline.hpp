// nshot::Pipeline — the one-call facade over the full N-SHOT flow:
//
//   STG (.g text)  --reachability-->  SG  --synthesize-->  netlist
//        --check_conformance-->  closed-loop verification
//        --run_stress-->        fault battery + margins (optional)
//
// plus an owned obs::Session so every run is traced and reportable
// without the caller touching the observability layer.  The shared
// nshot::RunConfig (seed / jobs / grain / reference_kernels) is applied
// once here and propagated to every stage's options, replacing the
// per-stage copies callers previously had to keep in sync.
//
// The facade adds no policy of its own: each stage is the same public
// function the examples called directly, in the same order, with the
// same defaults, so porting a caller to Pipeline changes no results.
#pragma once

#include <memory>
#include <string>

#include "faults/stress.hpp"
#include "nshot/synthesis.hpp"
#include "obs/obs.hpp"
#include "sg/state_graph.hpp"
#include "sim/conformance.hpp"
#include "util/run_config.hpp"

namespace nshot {

struct PipelineOptions {
  /// Shared run knobs, applied to synthesis/conformance/stress before a
  /// run (overriding whatever those sub-structs carry).
  RunConfig run;
  core::SynthesisOptions synthesis;
  sim::ConformanceOptions conformance;
  faults::StressOptions stress;

  /// Closed-loop random-delay conformance check after synthesis.
  bool verify_conformance = true;
  /// Fault battery + margin sweep (slow; off by default).
  bool stress_test = false;
  /// Own an obs::Session for the Pipeline's lifetime.  When false (or when
  /// a session already exists elsewhere) the pipeline runs uninstrumented
  /// and trace_json()/report() return empty results.
  bool collect_observability = true;
  /// Report label; the first run's benchmark name when empty.
  std::string label;
};

/// Everything one run produced.  Stage results keep their native types so
/// existing consumers (describe(), stress_report_json(), ...) work as-is.
struct PipelineRun {
  std::string benchmark;
  sg::StateGraph graph;  // the verified-against state graph
  core::SynthesisResult synthesis;
  sim::ConformanceReport conformance;  // default unless conformance_ran
  bool conformance_ran = false;
  faults::StressReport stress;  // default unless stress_ran
  bool stress_ran = false;

  /// Synthesized, conformant (when checked) and fault-clean (when stressed).
  bool ok() const {
    return (!conformance_ran || conformance.clean()) && (!stress_ran || stress.baseline_clean);
  }
};

class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options = {});
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Synthesize and verify an already-built state graph.
  /// Throws core::SynthesisError when the SG is not implementable.
  PipelineRun run(const sg::StateGraph& sg);

  /// Parse `.g` STG text, build the reachability state graph, then run().
  PipelineRun run_g(const std::string& g_text);

  const PipelineOptions& options() const { return options_; }

  /// The owned session; nullptr when collect_observability was false or
  /// another session was already active at construction.
  obs::Session* session() { return session_.get(); }

  /// Exporter pass-throughs; empty-session results when uninstrumented.
  obs::RunReport report() const;
  std::string report_json(const obs::ReportOptions& options = {}) const;
  std::string trace_json(const obs::TraceOptions& options = {}) const;

 private:
  PipelineOptions options_;
  std::unique_ptr<obs::Session> session_;
};

}  // namespace nshot
