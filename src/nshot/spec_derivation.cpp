#include "nshot/spec_derivation.hpp"

#include "obs/obs.hpp"
#include "sg/bitset.hpp"
#include "util/error.hpp"

namespace nshot::core {

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kSet: return "+a (set)";
    case Mode::kQuiescentHigh: return "a=1 (quiescent)";
    case Mode::kReset: return "-a (reset)";
    case Mode::kQuiescentLow: return "a=0 (quiescent)";
  }
  return "?";
}

Mode classify_state(const sg::StateGraph& sg, sg::StateId s, sg::SignalId a) {
  NSHOT_REQUIRE(!sg.is_input(a), "classification is defined for non-input signals");
  const bool value = sg.value(s, a);
  const bool excited = sg.excited(s, a);
  if (excited) return value ? Mode::kReset : Mode::kSet;
  return value ? Mode::kQuiescentHigh : Mode::kQuiescentLow;
}

const OutputIndex& DerivedSpec::for_signal(sg::SignalId a) const {
  for (const OutputIndex& index : outputs)
    if (index.signal == a) return index;
  NSHOT_REQUIRE(false, "signal has no derived outputs (is it an input?)");
  // Unreachable; silences the compiler.
  return outputs.front();
}

DerivedSpec derive_spec(const sg::StateGraph& sg) {
  const obs::Span span("spec_derivation");
  const std::vector<sg::SignalId> noninputs = sg.noninput_signals();
  NSHOT_REQUIRE(!noninputs.empty(), "state graph has no non-input signals to synthesize");

  DerivedSpec derived{logic::TwoLevelSpec(sg.num_signals(),
                                          static_cast<int>(noninputs.size()) * 2),
                      {}};
  for (std::size_t k = 0; k < noninputs.size(); ++k)
    derived.outputs.push_back(OutputIndex{noninputs[k], static_cast<int>(2 * k),
                                          static_cast<int>(2 * k + 1)});

  // One edge sweep builds every signal's excitation plane; the per-state
  // classification below then probes bits instead of rescanning out-edges
  // per (state, signal) pair.  Identical classification, identical order.
  const std::vector<sg::StateSet> excited = sg::all_excited_sets(sg);
  for (sg::StateId s = 0; s < sg.num_states(); ++s) {
    const std::uint64_t code = sg.code(s);
    for (const OutputIndex& index : derived.outputs) {
      const bool value = sg.value(s, index.signal);
      const Mode mode =
          excited[static_cast<std::size_t>(index.signal)].contains(s)
              ? (value ? Mode::kReset : Mode::kSet)
              : (value ? Mode::kQuiescentHigh : Mode::kQuiescentLow);
      switch (mode) {
        case Mode::kSet:  // SET = 1, RESET = 0
          derived.spec.add_on(index.set_output, code);
          derived.spec.add_off(index.reset_output, code);
          break;
        case Mode::kQuiescentHigh:  // SET = don't care, RESET = 0
          derived.spec.add_off(index.reset_output, code);
          break;
        case Mode::kReset:  // SET = 0, RESET = 1
          derived.spec.add_off(index.set_output, code);
          derived.spec.add_on(index.reset_output, code);
          break;
        case Mode::kQuiescentLow:  // SET = 0, RESET = don't care
          derived.spec.add_off(index.set_output, code);
          break;
      }
    }
  }
  derived.spec.normalize();
  derived.spec.validate();  // fails only if CSC is violated
  return derived;
}

}  // namespace nshot::core
