#include <algorithm>
#include <set>

#include "baselines/baselines.hpp"
#include "baselines/baselines_common.hpp"
#include "nshot/spec_derivation.hpp"
#include "sg/properties.hpp"
#include "sg/regions.hpp"
#include "util/error.hpp"

namespace nshot::baselines {

using gatelib::GateType;
using netlist::Gate;
using netlist::NetId;

std::string failure_text(Failure failure) {
  switch (failure) {
    case Failure::kNonDistributive: return "(1) non-distributive SG";
    case Failure::kNeedsStateSignals: return "(2) must add state signals";
    case Failure::kNotImplementable: return "not implementable (CSC/semi-modularity)";
  }
  return "?";
}

namespace {

/// A monotonous cover cube for one excitation region: covers the whole ER,
/// is on only inside ER u QR of that region (plus unreachable codes), and
/// falls monotonically along the QR.  Returns std::nullopt when no such
/// cube exists (state-signal insertion would be required).
std::optional<logic::Cube> monotonous_cube(const sg::StateGraph& sg,
                                           const sg::ExcitationRegion& er) {
  // Region membership per state.
  std::vector<bool> inside(static_cast<std::size_t>(sg.num_states()), false);
  for (const sg::StateId s : er.states) inside[static_cast<std::size_t>(s)] = true;
  for (const sg::StateId s : er.quiescent) inside[static_cast<std::size_t>(s)] = true;

  auto acceptable = [&](const logic::Cube& cube) {
    // On only inside the region (reachable states outside must not be
    // covered; unreachable codes are free).
    for (sg::StateId s = 0; s < sg.num_states(); ++s)
      if (!inside[static_cast<std::size_t>(s)] && cube.covers_minterm(sg.code(s))) return false;
    // Monotonic fall: no QR arc may re-enter the cube.
    for (const sg::StateId s : er.quiescent) {
      if (cube.covers_minterm(sg.code(s))) continue;
      for (const sg::Edge& e : sg.out_edges(s))
        if (inside[static_cast<std::size_t>(e.target)] &&
            !sg.excited(e.target, er.signal) &&  // target in QR
            cube.covers_minterm(sg.code(e.target)))
          return false;
    }
    return true;
  };

  // The supercube of the ER is the minimal cube covering it; any valid
  // monotonous cube contains it, so if it is not acceptable none exists.
  logic::Cube cube = logic::Cube::minterm(sg.code(er.states.front()), sg.num_signals(), 0);
  for (const sg::StateId s : er.states)
    cube = cube.supercube(logic::Cube::minterm(sg.code(s), sg.num_signals(), 0));
  if (!acceptable(cube)) return std::nullopt;

  // Literal reduction: raise variables while the cube stays acceptable.
  for (int v = 0; v < sg.num_signals(); ++v) {
    if (cube.var_is_free(v)) continue;
    logic::Cube candidate = cube;
    candidate.raise_var(v);
    if (acceptable(candidate)) cube = candidate;
  }
  return cube;
}

}  // namespace

BaselineOutcome synthesize_syn_like(const sg::StateGraph& sg) {
  if (!sg::check_implementability(sg).ok())
    return BaselineOutcome{std::nullopt, Failure::kNotImplementable};
  if (!sg::is_distributive(sg)) return BaselineOutcome{std::nullopt, Failure::kNonDistributive};

  netlist::Netlist nl(sg.name() + "_syn");
  const std::vector<NetId> rails = detail::make_signal_rails(sg, nl);

  struct SignalPlan {
    sg::SignalId signal;
    std::vector<logic::Cube> set_cubes, reset_cubes;
  };
  std::vector<SignalPlan> plans;
  for (const sg::SignalId a : sg.noninput_signals()) {
    SignalPlan plan{a, {}, {}};
    const sg::SignalRegions regions = sg::compute_regions(sg, a);
    for (const sg::ExcitationRegion& er : regions.regions) {
      const auto cube = monotonous_cube(sg, er);
      if (!cube) return BaselineOutcome{std::nullopt, Failure::kNeedsStateSignals};
      (er.rising ? plan.set_cubes : plan.reset_cubes).push_back(*cube);
    }
    plans.push_back(std::move(plan));
  }

  std::optional<NetId> const_zero;
  auto get_const_zero = [&]() {
    if (!const_zero) {
      const_zero = nl.add_net("const0");
      nl.add_primary_input(*const_zero);
    }
    return *const_zero;
  };

  for (const SignalPlan& plan : plans) {
    const std::string base = sg.signal(plan.signal).name;
    auto or_plane = [&](const std::vector<logic::Cube>& cubes,
                        const std::string& suffix) -> NetId {
      if (cubes.empty()) return get_const_zero();  // signal never moves this way
      std::vector<NetId> nets;
      for (std::size_t i = 0; i < cubes.size(); ++i)
        nets.push_back(detail::build_cube_gate(nl, cubes[i], rails,
                                               base + "_" + suffix + std::to_string(i)));
      if (nets.size() == 1) return nets[0];
      return nl.build_tree(GateType::kOr, nets, {}, base + "_or_" + suffix, /*force_gate=*/true);
    };
    const NetId set_net = or_plane(plan.set_cubes, "set");
    const NetId reset_net = or_plane(plan.reset_cubes, "reset");
    // Standard C-implementation: the C-element rises when set = 1 and
    // reset = 0, falls when set = 0 and reset = 1, holds otherwise.
    nl.add_gate(Gate{.type = GateType::kCElement,
                     .name = base + "_c",
                     .inputs = {set_net, reset_net},
                     .inverted = {false, true},
                     .outputs = {rails[static_cast<std::size_t>(plan.signal)]}});
  }

  nl.check_well_formed();
  BaselineResult result{std::move(nl), {}, 0};
  result.stats = result.circuit.stats(gatelib::GateLibrary::standard());
  return BaselineOutcome{std::move(result), std::nullopt};
}

}  // namespace nshot::baselines
