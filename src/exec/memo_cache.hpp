// Cross-thread memoization cache for deterministic subproblems.
//
// The synthesis flow repeatedly solves identical (F, D, R) minimization
// instances: ablation benches synthesize the same benchmark under several
// knob settings, google-benchmark loops re-synthesize per iteration, and a
// parallel Table-2 sweep hits shared sub-specs.  Every such subproblem is
// a pure function of its serialized key, so a process-wide cache is
// semantics-free: a hit returns exactly the value a fresh computation
// would have produced.
//
// Sharded design: the key hash picks one of kShards independently locked
// maps, so parallel sweeps do not serialize on a single mutex.  Values are
// held behind shared_ptr<const V>; get_or_compute returns a copy of the
// cached value so callers may mutate their result freely.  If two threads
// race on the same missing key both compute it (outside any lock — the
// compute can itself be parallel) and the first insertion wins; the loser
// adopts the winner's value, which is identical by determinism.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/obs.hpp"

namespace nshot::exec {

template <typename Value>
class MemoCache {
 public:
  /// `max_entries` bounds total residency; once full, new values are still
  /// returned to the caller but no longer inserted (sweeps over a fixed
  /// benchmark suite never get near the bound in practice).
  explicit MemoCache(std::size_t max_entries = 4096) : max_entries_(max_entries) {}

  struct Stats {
    long hits = 0;
    long misses = 0;
    std::size_t entries = 0;
  };

  template <typename Compute>
  Value get_or_compute(const std::string& key, Compute&& compute) {
    Shard& shard = shard_of(key);
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      const auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        obs::count(obs::Counter::kMemoHits);
        return *it->second;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::Counter::kMemoMisses);
    auto value = std::make_shared<const Value>(compute());
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      const auto it = shard.map.find(key);
      if (it != shard.map.end()) return *it->second;  // racing thread won
      if (entries_.load(std::memory_order_relaxed) < max_entries_) {
        shard.map.emplace(key, value);
        entries_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return *value;
  }

  Stats stats() const {
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.entries = entries_.load(std::memory_order_relaxed);
    return s;
  }

  void clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.map.clear();
    }
    entries_.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::string, std::shared_ptr<const Value>> map;
  };

  Shard& shard_of(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % kShards];
  }

  Shard shards_[kShards];
  std::size_t max_entries_;
  std::atomic<std::size_t> entries_{0};
  mutable std::atomic<long> hits_{0};
  mutable std::atomic<long> misses_{0};
};

}  // namespace nshot::exec
