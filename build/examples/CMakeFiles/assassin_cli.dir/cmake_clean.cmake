file(REMOVE_RECURSE
  "CMakeFiles/assassin_cli.dir/assassin_cli.cpp.o"
  "CMakeFiles/assassin_cli.dir/assassin_cli.cpp.o.d"
  "assassin_cli"
  "assassin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assassin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
