.model empty
.inputs a
.outputs c
.marking { }
.end
