file(REMOVE_RECURSE
  "CMakeFiles/bench_minimizer.dir/bench_minimizer.cpp.o"
  "CMakeFiles/bench_minimizer.dir/bench_minimizer.cpp.o.d"
  "bench_minimizer"
  "bench_minimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
