# Empty compiler generated dependencies file for bench_eq1_delay_requirement.
# This may be replaced when dependencies are built.
