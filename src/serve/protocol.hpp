// Wire protocol of the batch server: newline-delimited JSON, one request
// object per line in, one response object per line out.
//
// Request (schemas/request.schema.json):
//   {"id":"r1","client":"ci","kind":"conformance","spec":"bench:chu133",
//    "overrides":{"seed":7,"deadline_ms":2000}}
// Exactly one of "spec" (bench:NAME | file:PATH | gen:SEED) or "g_text"
// (inline .g STG text) carries the circuit.  "client" is the fair-share
// key (defaults to "anon"); override values may be JSON strings, numbers
// or booleans — they are canonicalized to the same strings a batch
// manifest would carry.
//
// Response (schemas/response.schema.json): Response::to_json() — the
// deterministic RunOutcome payload plus elapsed_ms/attempts timing.
#pragma once

#include <string>

#include "nshot/pipeline.hpp"

namespace nshot::serve {

/// A Request plus its transport-level envelope fields.
struct WireRequest {
  std::string client = "anon";  // fair-share key
  Request request;
};

/// Parse one NDJSON request line.  Throws Error(kInputInvalid) with a
/// byte-offset diagnostic on malformed JSON, unknown keys, or a missing /
/// ambiguous spec (spec vs g_text; deeper validation happens in submit).
WireRequest parse_request(const std::string& line);

/// Encode a request as one NDJSON line (no trailing newline) — the exact
/// inverse of parse_request; load_replay and --connect use it.
std::string request_json(const WireRequest& wire);

/// A terminal Response for a request the server never ran: admission
/// rejections (resource_exhausted) and drain evictions.  `stage` is
/// "admission".
Response rejection(const std::string& id, ErrorCode code, const std::string& message);

}  // namespace nshot::serve
