#include "faults/minimize.hpp"

#include <utility>

#include "sim/delay_space.hpp"
#include "sim/vcd.hpp"

namespace nshot::faults {

namespace {

/// Delta debugging is a long serial chain of scenario replays against one
/// circuit — compile once, reset one Simulator per replay.
struct Replayer {
  const sg::StateGraph& spec;
  const sim::SpecBinding binding;
  const sim::CompiledNetlist compiled;
  sim::Simulator sim;

  Replayer(const sg::StateGraph& spec_in, const netlist::Netlist& circuit)
      : spec(spec_in),
        binding(spec_in, circuit),
        compiled(circuit, gatelib::GateLibrary::standard()),
        sim(compiled, sim::SimulatorOptions{}) {}

  bool fails(const FaultScenario& scenario, const MinimizeOptions& options, long& evaluations) {
    ++evaluations;
    return !run_scenario(spec, binding, compiled, scenario, options.run, nullptr, &sim).clean();
  }
};

}  // namespace

MinimizedWitness minimize_counterexample(const sg::StateGraph& spec,
                                         const netlist::Netlist& circuit,
                                         const FaultScenario& scenario,
                                         const MinimizeOptions& options) {
  MinimizedWitness witness;
  Replayer replay(spec, circuit);

  // Pin the delay assignment the scenario denotes and fold delay faults
  // into it: from here on the vector is the single representation of the
  // delay perturbation, and the reset pass can shrink it gate by gate.
  FaultScenario current = scenario;
  current.delays = materialize_delays(replay.compiled, scenario);
  current.faults.clear();
  for (const Fault& fault : scenario.faults)
    if (fault.kind == FaultKind::kStuckAt || fault.kind == FaultKind::kGlitch)
      current.faults.push_back(fault);

  witness.reproduced = replay.fails(current, options, witness.evaluations);
  if (witness.reproduced) {
    // Greedy 1-minimal fault removal: drop any fault whose absence still
    // fails, repeating until a full sweep removes nothing.
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < current.faults.size();) {
        FaultScenario candidate = current;
        candidate.faults.erase(candidate.faults.begin() + static_cast<std::ptrdiff_t>(i));
        if (replay.fails(candidate, options, witness.evaluations)) {
          current = std::move(candidate);
          ++witness.faults_removed;
          changed = true;
        } else {
          ++i;
        }
      }
    }

    // Per-gate delay reset toward nominal.
    const std::vector<double> nominal = replay.compiled.delay_space().nominal_vector();
    for (int pass = 0; pass < options.delay_passes; ++pass) {
      bool reset_any = false;
      for (std::size_t g = 0; g < nominal.size(); ++g) {
        if (current.delays[g] == nominal[g]) continue;
        FaultScenario candidate = current;
        candidate.delays[g] = nominal[g];
        if (replay.fails(candidate, options, witness.evaluations)) {
          current = std::move(candidate);
          ++witness.delays_reset;
          reset_any = true;
        }
      }
      if (!reset_any) break;
    }
  }

  const std::vector<double> nominal = replay.compiled.delay_space().nominal_vector();
  for (std::size_t g = 0; g < current.delays.size(); ++g)
    if (current.delays[g] != nominal[g]) ++witness.off_nominal_gates;

  // Final replay with the waveform attached.
  sim::VcdRecorder recorder(circuit);
  witness.report =
      run_scenario(spec, replay.binding, replay.compiled, current, options.run, &recorder,
                   &replay.sim);
  witness.vcd = recorder.write();
  witness.scenario = std::move(current);
  return witness;
}

}  // namespace nshot::faults
