// Randomized equivalence fuzzing for the heuristic minimizer.
//
// The EXPAND/IRREDUNDANT/REDUCE loop has no correctness oracle of its own
// beyond the handful of fixed functions in espresso_test.cpp.  Here random
// (F, D, R) specifications drive three checks per draw:
//   1. cover validity — verify_cover (and its reference twin) accept the
//      heuristic cover: F is covered, R is untouched;
//   2. functional equivalence against the exact minimizer — both covers
//      evaluate identically on every minterm of the input space for every
//      output (they may differ inside D, but espresso's and exact's covers
//      must both contain F and avoid R, and this check pins exactly that
//      down point by point);
//   3. irredundancy — no cube of the final cover can be dropped.
#include <gtest/gtest.h>

#include <vector>

#include "logic/cover.hpp"
#include "logic/espresso.hpp"
#include "logic/exact.hpp"
#include "logic/spec.hpp"
#include "logic/verify.hpp"
#include "util/rng.hpp"

namespace nshot::logic {
namespace {

struct Drawn {
  TwoLevelSpec spec;
  std::vector<std::vector<int>> kind;  // [output][minterm]: 1 = on, 0 = off, -1 = dc
};

Drawn random_spec(Rng& rng) {
  const int num_inputs = 3 + static_cast<int>(rng.next_below(5));   // 3..7
  const int num_outputs = 1 + static_cast<int>(rng.next_below(3));  // 1..3
  const double p_on = rng.next_double(0.1, 0.5);
  const double p_off = rng.next_double(0.1, 1.0 - p_on);
  Drawn drawn{TwoLevelSpec(num_inputs, num_outputs), {}};
  const std::uint64_t space = 1ULL << num_inputs;
  for (int o = 0; o < num_outputs; ++o) {
    std::vector<int> kind(static_cast<std::size_t>(space), -1);
    for (std::uint64_t m = 0; m < space; ++m) {
      const double roll = rng.next_double(0.0, 1.0);
      if (roll < p_on) {
        drawn.spec.add_on(o, m);
        kind[static_cast<std::size_t>(m)] = 1;
      } else if (roll < p_on + p_off) {
        drawn.spec.add_off(o, m);
        kind[static_cast<std::size_t>(m)] = 0;
      }
    }
    drawn.kind.push_back(std::move(kind));
  }
  drawn.spec.normalize();
  drawn.spec.validate();
  return drawn;
}

class EspressoFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(EspressoFuzzTest, HeuristicCoverIsValidAndMatchesExactOnCarePoints) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x2545F4914F6CDD1DULL + 1);
  const Drawn drawn = random_spec(rng);
  const TwoLevelSpec& spec = drawn.spec;

  const Cover heuristic = espresso(spec);
  const Cover exact = exact_minimize(spec);

  // 1. Cover validity, through both the bit-sliced verifier and its
  //    minterm-at-a-time reference (doubles as a bitslice fuzz case).
  for (const Cover* cover : {&heuristic, &exact}) {
    const VerifyResult fast = verify_cover(spec, *cover);
    const VerifyResult reference = verify_cover_reference(spec, *cover);
    EXPECT_TRUE(fast.ok) << fast.message;
    EXPECT_EQ(reference.ok, fast.ok);
    EXPECT_EQ(reference.message, fast.message);
  }

  // 2. Functional equivalence on every care point of the input space (on
  //    and off minterms; don't-cares may legitimately differ).
  const std::uint64_t space = 1ULL << spec.num_inputs();
  for (int o = 0; o < spec.num_outputs(); ++o) {
    for (std::uint64_t m = 0; m < space; ++m) {
      const int kind = drawn.kind[static_cast<std::size_t>(o)][static_cast<std::size_t>(m)];
      if (kind < 0) continue;
      const bool expected = kind == 1;
      EXPECT_EQ(expected, heuristic.covers(m, o))
          << "heuristic output " << o << " minterm " << m;
      EXPECT_EQ(expected, exact.covers(m, o)) << "exact output " << o << " minterm " << m;
    }
  }

  // 3. The heuristic cover is irredundant, and per output it never beats
  //    the exact single-output minimum.  (Total cube counts are NOT
  //    comparable: espresso shares products across outputs, exact_minimize
  //    solves each output separately.)
  EXPECT_TRUE(verify_irredundant(spec, heuristic).ok);
  for (int o = 0; o < spec.num_outputs(); ++o) {
    const auto exact_output = exact_minimize_output(spec, o);
    if (exact_output) {
      EXPECT_LE(exact_output->size(),
                static_cast<std::size_t>(heuristic.cube_count_for_output(o)))
          << "output " << o;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EspressoFuzzTest, ::testing::Range(1, 33));

}  // namespace
}  // namespace nshot::logic
