#include "nshot/journal.hpp"

#include <fstream>

#include "util/json.hpp"

namespace nshot {

std::string journal_line(const BatchRunResult& result) {
  JsonWriter json;
  json.begin_object();
  json.key("id").value(result.id);
  json.key("status").value(result.ok ? "ok" : "failed");
  if (!result.ok) {
    json.key("code").value(error_code_name(result.code));
    json.key("stage").value(result.stage);
    json.key("message").value(result.message);
  }
  json.key("attempts").value(result.attempts);
  json.key("elapsed_ms").value(result.elapsed_ms);
  if (result.kernel_fallbacks > 0) json.key("kernel_fallbacks").value(result.kernel_fallbacks);
  json.end_object();
  return json.str();
}

std::string journal_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + needle.size();
  const std::size_t end = line.find('"', begin);
  if (end == std::string::npos) return "";
  return line.substr(begin, end - begin);
}

std::map<std::string, std::string> read_journal(const std::string& path) {
  std::map<std::string, std::string> journaled;
  if (path.empty()) return journaled;
  std::ifstream journal(path);
  std::string line;
  while (journal && std::getline(journal, line)) {
    if (line.empty() || line.back() != '}') continue;  // truncated tail
    const std::string id = journal_field(line, "id");
    if (!id.empty() && !journal_field(line, "status").empty()) journaled[id] = line;
  }
  return journaled;
}

BatchRunResult journal_result(const std::string& id, const std::string& line) {
  BatchRunResult result;
  result.id = id;
  result.resumed = true;
  result.ok = journal_field(line, "status") == "ok";
  if (!result.ok) {
    result.code = error_code_from_name(journal_field(line, "code"));
    result.stage = journal_field(line, "stage");
    result.message = journal_field(line, "message");
  }
  return result;
}

BatchRunResult batch_result(const Response& response) {
  BatchRunResult result;
  result.id = response.id;
  result.ok = response.outcome.ok();
  result.attempts = response.attempts;
  result.elapsed_ms = response.elapsed_ms;
  if (result.ok) {
    result.kernel_fallbacks = static_cast<int>(response.outcome.run->kernel_fallbacks.size());
  } else {
    result.code = response.outcome.code;
    result.stage = response.outcome.stage;
    result.message = response.outcome.message;
  }
  return result;
}

}  // namespace nshot
