file(REMOVE_RECURSE
  "CMakeFiles/nshot_netlist.dir/netlist.cpp.o"
  "CMakeFiles/nshot_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/nshot_netlist.dir/verilog.cpp.o"
  "CMakeFiles/nshot_netlist.dir/verilog.cpp.o.d"
  "libnshot_netlist.a"
  "libnshot_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nshot_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
