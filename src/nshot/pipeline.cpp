#include "nshot/pipeline.hpp"

#include <algorithm>
#include <optional>

#include "exec/cancel.hpp"
#include "stg/g_format.hpp"
#include "stg/reachability.hpp"
#include "util/error.hpp"

namespace nshot {

namespace {

/// Conformance with graceful kernel degradation: a kKernelMismatch raised
/// by the verify_kernels cross-check is recorded and the sweep re-run once
/// on the reference kernels — a miscompiled kernel should cost speed, not
/// the run.  Any other error propagates.
sim::ConformanceReport conformance_with_fallback(const sg::StateGraph& sg,
                                                 const netlist::Netlist& circuit,
                                                 const sim::ConformanceOptions& options,
                                                 std::vector<std::string>& fallbacks) {
  try {
    return sim::check_conformance(sg, circuit, options);
  } catch (const Error& e) {
    if (e.code() != ErrorCode::kKernelMismatch) throw;
    obs::count(obs::Counter::kKernelFallbacks);
    fallbacks.push_back(std::string("conformance: ") + e.what());
    sim::ConformanceOptions degraded = options;
    degraded.reference_kernels = true;
    degraded.verify_kernels = false;
    return sim::check_conformance(sg, circuit, degraded);
  }
}

/// Wall-clock budget of the next stage: min(per-stage budget, remaining
/// run budget); 0 = unbounded.
double stage_budget_ms(const RunConfig& run, const exec::CancelToken& run_token) {
  double budget = run.stage_deadline_ms > 0 ? run.stage_deadline_ms : 0.0;
  if (run.deadline_ms > 0) {
    const double left = run_token.remaining_ms();
    budget = budget > 0 ? std::min(budget, left) : left;
  }
  return budget;
}

/// Execute one pipeline stage under its deadline budget.  The stage gets
/// its own CancelToken (installed thread-current, so it propagates into
/// every parallel_for the stage runs) and a Watchdog that fires the token
/// on wall-clock overrun; a fired token surfaces as Error(kDeadlineExceeded)
/// from the next checkpoint.  Errors gain a "stage <name>" context frame.
template <typename Fn>
void run_stage(const char* name, const RunConfig& run, const exec::CancelToken& run_token,
               Fn&& fn) {
  if (run.deadline_ms > 0 && run_token.remaining_ms() <= 0)
    throw Error(ErrorCode::kDeadlineExceeded,
                std::string("run budget exhausted before stage ") + name);
  const double budget = stage_budget_ms(run, run_token);
  if (budget <= 0) {
    with_error_context(std::string("stage ") + name, fn);
    return;
  }
  const exec::CancelToken token = exec::CancelToken::with_deadline(budget);
  const exec::CancelScope scope(token);
  const exec::Watchdog watchdog(
      token, budget, std::string("stage '") + name + "' exceeded its deadline budget");
  with_error_context(std::string("stage ") + name, fn);
}

}  // namespace

Pipeline::Pipeline(PipelineOptions options) : options_(std::move(options)) {
  // Apply the shared RunConfig once, up front: every stage below sees the
  // same seed / jobs / grain / reference_kernels regardless of what the
  // caller left in the per-stage sub-structs.
  options_.synthesis.apply_run_config(options_.run);
  options_.conformance.apply_run_config(options_.run);
  options_.stress.apply_run_config(options_.run);
  options_.stress.adversarial.apply_run_config(options_.run);
  if (options_.collect_observability && !obs::session_active())
    session_ = std::make_unique<obs::Session>("nshot", options_.label);
}

Pipeline::~Pipeline() = default;

namespace {

/// A Request viewing `sg` without copying it (the aliasing-constructor
/// trick: an empty owner, so the shared_ptr never deletes).  The view is
/// only valid for the duration of the submit() call, which is exactly the
/// lifetime the legacy by-reference entry points promised.
Request graph_request(const sg::StateGraph& sg) {
  Request request;
  request.graph = std::shared_ptr<const sg::StateGraph>(std::shared_ptr<void>(), &sg);
  return request;
}

}  // namespace

PipelineRun Pipeline::run(const sg::StateGraph& sg) {
  Response response = submit(graph_request(sg));
  if (!response.outcome.ok()) std::rethrow_exception(response.outcome.exception);
  return std::move(*response.outcome.run);
}

PipelineRun Pipeline::run_g(const std::string& g_text) {
  Request request;
  request.g_text = g_text;
  Response response = submit(request);
  if (!response.outcome.ok()) std::rethrow_exception(response.outcome.exception);
  return std::move(*response.outcome.run);
}

RunOutcome Pipeline::run_checked(const sg::StateGraph& sg) {
  return submit(graph_request(sg)).outcome;
}

RunOutcome Pipeline::run_checked_g(const std::string& g_text) {
  Request request;
  request.g_text = g_text;
  return submit(request).outcome;
}

RunOutcome Pipeline::run_with(const PipelineOptions& options, const sg::StateGraph* graph_in,
                              const std::string* g_text) {
  RunOutcome out;
  const exec::CancelToken run_token =
      exec::CancelToken::with_deadline(options.run.deadline_ms);
  const char* stage = g_text ? "parse" : "synthesize";
  try {
    std::optional<sg::StateGraph> graph;
    if (g_text) {
      stg::Stg parsed;
      run_stage("parse", options.run, run_token, [&] { parsed = stg::parse_g(*g_text); });
      out.stages_completed.emplace_back("parse");
      stage = "reachability";
      run_stage("reachability", options.run, run_token,
                [&] { graph.emplace(stg::build_state_graph(parsed)); });
      out.stages_completed.emplace_back("reachability");
      stage = "synthesize";
    } else {
      graph.emplace(*graph_in);
    }
    if (session_ && session_->label().empty()) session_->set_label(graph->name());

    std::optional<core::SynthesisResult> synthesis;
    run_stage("synthesize", options.run, run_token,
              [&] { synthesis.emplace(core::synthesize(*graph, options.synthesis)); });
    out.stages_completed.emplace_back("synthesize");

    PipelineRun result{graph->name(), std::move(*graph), std::move(*synthesis),
                       {}, false, {}, false, {}};
    if (options.verify_conformance) {
      stage = "conformance";
      run_stage("conformance", options.run, run_token, [&] {
        result.conformance =
            conformance_with_fallback(result.graph, result.synthesis.circuit,
                                      options.conformance, result.kernel_fallbacks);
      });
      result.conformance_ran = true;
      out.stages_completed.emplace_back("conformance");
    }
    if (options.stress_test) {
      stage = "stress";
      run_stage("stress", options.run, run_token, [&] {
        result.stress = faults::run_stress(result.graph, result.synthesis.circuit,
                                           result.benchmark, options.stress);
      });
      result.stress_ran = true;
      out.stages_completed.emplace_back("stress");
    }
    out.run.emplace(std::move(result));
  } catch (const Error& e) {
    out.code = e.code();
    out.stage = stage;
    out.message = e.what();
    out.exception = std::current_exception();
  } catch (const std::exception& e) {
    out.code = classify_exception(e);
    out.stage = stage;
    out.message = e.what();
    out.exception = std::current_exception();
  }
  return out;
}

obs::RunReport Pipeline::report() const {
  return session_ ? session_->report() : obs::RunReport{};
}

std::string Pipeline::report_json(const obs::ReportOptions& options) const {
  return session_ ? session_->report_json(options) : obs::report_json(obs::RunReport{}, options);
}

std::string Pipeline::trace_json(const obs::TraceOptions& options) const {
  return session_ ? session_->trace_json(options) : std::string("{\"traceEvents\":[]}\n");
}

}  // namespace nshot
