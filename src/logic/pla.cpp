#include "logic/pla.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace nshot::logic {
namespace {

constexpr std::uint64_t kMaxRowMinterms = 1ULL << 20;

/// Enumerate the minterms of an input pattern over {0,1,-}.
void for_each_minterm(const std::string& pattern, auto&& fn) {
  std::vector<int> free_vars;
  std::uint64_t base = 0;
  for (std::size_t v = 0; v < pattern.size(); ++v) {
    switch (pattern[v]) {
      case '1': base |= (1ULL << v); break;
      case '0': break;
      case '-': free_vars.push_back(static_cast<int>(v)); break;
      default: NSHOT_REQUIRE(false, std::string("bad PLA input character '") + pattern[v] + "'");
    }
  }
  NSHOT_REQUIRE_CODE(free_vars.size() < 63 && (1ULL << free_vars.size()) <= kMaxRowMinterms,
                     ErrorCode::kResourceExhausted, "PLA row expands to too many minterms");
  const std::uint64_t count = 1ULL << free_vars.size();
  for (std::uint64_t k = 0; k < count; ++k) {
    std::uint64_t code = base;
    for (std::size_t b = 0; b < free_vars.size(); ++b)
      if ((k >> b) & 1ULL) code |= (1ULL << free_vars[b]);
    fn(code);
  }
}

}  // namespace

PlaFile parse_pla(const std::string& text) {
  check_parser_text(text, "PLA text");
  std::istringstream stream(text);
  std::string line;
  int num_inputs = -1, num_outputs = -1, line_no = 0;
  std::vector<std::string> input_names, output_names;
  struct Row {
    std::string in, out;
    int line;
  };
  std::vector<Row> rows;

  while (std::getline(stream, line)) {
    ++line_no;
    const std::string clean = strip_comment_and_trim(line);
    if (clean.empty()) continue;
    const std::string where = "line " + std::to_string(line_no);
    const std::vector<std::string> tokens = split_ws(clean);
    if (tokens[0] == ".i") {
      NSHOT_REQUIRE(tokens.size() == 2, where + ": .i expects one argument");
      num_inputs = parse_int(tokens[1], 0, 63, where + ": .i");
    } else if (tokens[0] == ".o") {
      NSHOT_REQUIRE(tokens.size() == 2, where + ": .o expects one argument");
      num_outputs = parse_int(tokens[1], 1, 4096, where + ": .o");
    } else if (tokens[0] == ".ilb") {
      input_names.assign(tokens.begin() + 1, tokens.end());
    } else if (tokens[0] == ".ob") {
      output_names.assign(tokens.begin() + 1, tokens.end());
    } else if (tokens[0] == ".p" || tokens[0] == ".type") {
      continue;  // informational
    } else if (tokens[0] == ".e" || tokens[0] == ".end") {
      break;
    } else if (tokens[0][0] == '.') {
      NSHOT_REQUIRE(false, where + ": unsupported PLA directive " + tokens[0]);
    } else {
      NSHOT_REQUIRE(tokens.size() == 2, where + ": PLA row must be <inputs> <outputs>");
      rows.push_back(Row{tokens[0], tokens[1], line_no});
    }
  }
  NSHOT_REQUIRE(num_inputs >= 0 && num_outputs >= 1, "PLA file missing .i/.o");

  TwoLevelSpec spec(num_inputs, num_outputs);
  for (const Row& row : rows) {
    const std::string where = "line " + std::to_string(row.line);
    NSHOT_REQUIRE(static_cast<int>(row.in.size()) == num_inputs,
                  where + ": PLA row input width mismatch");
    NSHOT_REQUIRE(static_cast<int>(row.out.size()) == num_outputs,
                  where + ": PLA row output width mismatch");
    for_each_minterm(row.in, [&](std::uint64_t code) {
      for (int o = 0; o < num_outputs; ++o) {
        switch (row.out[static_cast<std::size_t>(o)]) {
          case '1': spec.add_on(o, code); break;
          case '0': spec.add_off(o, code); break;
          case '-': case '~': break;  // don't care
          default:
            NSHOT_REQUIRE(false, where + ": bad PLA output character");
        }
      }
    });
  }
  spec.normalize();
  spec.validate();
  return PlaFile{std::move(spec), std::move(input_names), std::move(output_names)};
}

std::string write_pla(const Cover& cover) {
  std::ostringstream out;
  out << ".i " << cover.num_inputs() << "\n.o " << cover.num_outputs() << "\n.p " << cover.size()
      << "\n";
  for (const Cube& cube : cover) {
    for (int v = 0; v < cover.num_inputs(); ++v) {
      const bool lo = (cube.lo() >> v) & 1ULL;
      const bool hi = (cube.hi() >> v) & 1ULL;
      out << (lo && hi ? '-' : hi ? '1' : '0');
    }
    out << ' ';
    for (int o = 0; o < cover.num_outputs(); ++o) out << (cube.has_output(o) ? '1' : '-');
    out << "\n";
  }
  out << ".e\n";
  return out.str();
}

}  // namespace nshot::logic
