file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_hazard_filtering.dir/bench_fig6_hazard_filtering.cpp.o"
  "CMakeFiles/bench_fig6_hazard_filtering.dir/bench_fig6_hazard_filtering.cpp.o.d"
  "bench_fig6_hazard_filtering"
  "bench_fig6_hazard_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_hazard_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
