# Empty compiler generated dependencies file for bench_formal_si.
# This may be replaced when dependencies are built.
