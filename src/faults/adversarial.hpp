// Adversarial delay-stress search (the instrument the uniform Monte Carlo
// sweep is not): instead of sampling the delay hypercube uniformly — which
// almost never lands near the ω / Eq. 1 cliffs — hill-climb a per-gate
// delay vector to MINIMIZE the observed robustness margin, escalating to a
// conformance violation once a margin goes negative.
//
// The search space is the library [min, max] interval per simple gate,
// optionally stretched by `stress_factor` (the delay-outlier fault model)
// and optionally extended to shaving delay lines toward 0 (the Eq. 1
// under-compensation fault model).  Within a restart the environment
// stream is fixed, so the objective is deterministic and hill steps are
// meaningful.
#pragma once

#include <vector>

#include "faults/margins.hpp"
#include "netlist/netlist.hpp"
#include "sg/state_graph.hpp"
#include "sim/conformance.hpp"
#include "util/run_config.hpp"

namespace nshot::faults {

/// seed / jobs / grain / reference_kernels are the inherited
/// nshot::RunConfig knobs.  Restarts run on independent (seed, restart)
/// streams and merge in restart order — including the serial early-exit
/// rule (restarts after the first violating one are discarded) — so the
/// result is identical for every jobs value.  Monte Carlo baseline runs
/// parallelize the same way.
struct AdversarialOptions : RunConfig {
  int restarts = 2;
  int iterations = 250;        // accepted-or-rejected proposals per restart
  double stress_factor = 1.0;  // ≥ 1; stretches the library interval
  bool shave_delay_lines = false;
  ScenarioOptions run;
};

struct AdversarialResult {
  bool violation_found = false;
  double best_slack = kNoMargin;  // smallest margin reached
  std::vector<double> delays;     // the delay vector achieving it
  std::uint64_t env_seed = 0;     // environment stream that exposed it
  sim::ConformanceReport report;  // the best vector's run
  long evaluations = 0;
};

/// Hill-climb the delay space of `circuit` against `spec`.  Stops early
/// (within the current restart) once a conformance violation is found.
AdversarialResult adversarial_delay_search(const sg::StateGraph& spec,
                                           const netlist::Netlist& circuit,
                                           const AdversarialOptions& options);

/// Uniform Monte Carlo over the SAME stressed search space — the baseline
/// the adversarial search is measured against.  Each run samples every
/// searchable gate uniformly from its stressed interval.
struct MonteCarloResult {
  int runs = 0;
  int violating_runs = 0;
  double min_slack = kNoMargin;  // smallest margin any run observed
};

MonteCarloResult stressed_monte_carlo(const sg::StateGraph& spec,
                                      const netlist::Netlist& circuit, int runs,
                                      const AdversarialOptions& options);

}  // namespace nshot::faults
