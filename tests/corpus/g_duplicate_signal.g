.model dup
.inputs a b a
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
