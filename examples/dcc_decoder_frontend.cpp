// DCC-decoder front-end scenario (Section V): the sing2dual converters of
// the paper's asynchronous DCC decoder are switchable single-rail to
// dual-rail interface circuits with OR-causality — non-distributive, so
// only the N-SHOT flow implements them.  This example plays the tape-out
// story end to end:
//
//   1. assemble the front-end (input converter + output converter as one
//      specification),
//   2. synthesize the N-SHOT circuit,
//   3. validate it (randomized-delay closed loop),
//   4. write the hand-off artifacts: structural Verilog, a Graphviz DOT of
//      the specification, a VCD trace of one run, and the minimized PLA.
//
//   dcc_decoder_frontend [output-directory]   (default: ./dcc_out)
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench_suite/benchmarks.hpp"
#include "gatelib/gate_library.hpp"
#include "logic/pla.hpp"
#include "netlist/verilog.hpp"
#include "nshot/synthesis.hpp"
#include "sg/dot.hpp"
#include "sg/properties.hpp"
#include "sim/conformance.hpp"

int main(int argc, char** argv) {
  using namespace nshot;
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : "dcc_out";

  // 1. The front-end: the two switchable converters of the decoder.
  const sg::StateGraph inp = bench_suite::build_benchmark("sing2dual-inp");
  const sg::StateGraph outp = bench_suite::build_benchmark("sing2dual-out");

  std::printf("DCC decoder front-end: %d + %d states, both non-distributive (%s)\n",
              inp.num_states(), outp.num_states(),
              sg::is_distributive(inp) || sg::is_distributive(outp) ? "??" : "OR-causality");

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(), ec.message().c_str());
    return 1;
  }
  auto save = [&](const std::string& name, const std::string& text) {
    std::ofstream stream(out_dir / name);
    stream << text;
    std::printf("  wrote %s (%zu bytes)\n", (out_dir / name).c_str(), text.size());
  };

  bool all_clean = true;
  for (const sg::StateGraph* spec : {&inp, &outp}) {
    std::printf("\n== %s ==\n", spec->name().c_str());

    // 2. Synthesize.
    const core::SynthesisResult result = core::synthesize(*spec);
    std::printf("%s", core::describe(*spec, result).c_str());

    // 3. Validate.
    sim::ConformanceOptions options;
    options.runs = 12;
    options.max_transitions = 150;
    const sim::ConformanceReport report = sim::check_conformance(*spec, result.circuit, options);
    std::printf("validation: %s\n", report.summary().c_str());
    all_clean = all_clean && report.clean();

    // 4. Hand-off artifacts.
    const std::string base = spec->name();
    save(base + ".v", netlist::write_verilog(result.circuit, gatelib::GateLibrary::standard()));
    sg::DotOptions dot_options;
    dot_options.highlight_signal = spec->noninput_signals().front();
    save(base + ".dot", sg::to_dot(*spec, dot_options));
    save(base + ".pla", logic::write_pla(result.cover));
    const sim::TracedRun traced = sim::record_vcd_trace(*spec, result.circuit, 7, 60);
    save(base + ".vcd", traced.vcd);
    all_clean = all_clean && traced.report.clean();
  }

  std::printf("\nfront-end %s\n", all_clean ? "validated: externally hazard-free" : "FAILED");
  return all_clean ? 0 : 1;
}
