# Empty compiler generated dependencies file for bench_fig6_hazard_filtering.
# This may be replaced when dependencies are built.
