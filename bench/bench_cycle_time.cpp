// Dynamic performance comparison: Table 2's delay column is a static
// critical-path estimate; this bench measures the *simulated* average
// time per observable transition over long closed-loop runs with a fast
// environment — the asynchronous analogue of measured cycle time.  The
// paper argues the N-SHOT response (SOP + flip-flop) is competitive with
// the C-element architecture and that SIS's inserted delay lines slow
// the circuit down; the dynamic measurement shows the same ordering.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "baselines/baselines.hpp"
#include "bench_suite/benchmarks.hpp"
#include "nshot/synthesis.hpp"
#include "sim/conformance.hpp"

namespace {

using namespace nshot;

double measure(const sg::StateGraph& g, const netlist::Netlist& circuit) {
  sim::ConformanceOptions options;
  options.runs = 6;
  options.max_transitions = 400;
  options.input_delay_min = 0.05;  // environment reacts (almost) immediately:
  options.input_delay_max = 0.4;   // the circuit's own latency dominates
  const sim::ConformanceReport report = sim::check_conformance(g, circuit, options);
  return report.clean() ? report.time_per_transition() : -1.0;
}

void print_comparison() {
  std::printf("Dynamic cycle time (simulated time per observable transition,\n");
  std::printf("fast environment; static report delays in parentheses)\n\n");
  std::printf("%-15s | %-17s | %-17s | %-17s\n", "circuit", "n-shot", "syn-like", "sis-like");
  for (const char* name : {"chu133", "chu150", "chu172", "ebergen", "full", "hazard", "qr42",
                           "vbe5b", "sbuf-send-ctl", "hybridf", "pr-rcv-ifc", "pmcm1",
                           "combuf2"}) {
    const sg::StateGraph g = bench_suite::build_benchmark(name);
    const core::SynthesisResult nshot = core::synthesize(g);
    const double t_nshot = measure(g, nshot.circuit);

    const auto syn = baselines::synthesize_syn_like(g);
    const auto sis = baselines::synthesize_sis_like(g);
    char syn_buf[32] = "(1)", sis_buf[32] = "(1)";
    if (syn.ok())
      std::snprintf(syn_buf, sizeof syn_buf, "%5.2f (%4.1f)",
                    measure(g, syn.result->circuit), syn.result->stats.delay);
    if (sis.ok())
      std::snprintf(sis_buf, sizeof sis_buf, "%5.2f (%4.1f)",
                    measure(g, sis.result->circuit), sis.result->stats.delay);
    std::printf("%-15s | %8.2f (%4.1f)  | %-17s | %-17s\n", name, t_nshot, nshot.stats.delay,
                syn_buf, sis_buf);
  }
  std::printf(
      "\nOrdering as the paper argues: the MHS response keeps N-SHOT close to\n"
      "the C-element architecture, while the SIS-like hazard pads add their\n"
      "delay to every traversal.  (A negative entry would mean a conformance\n"
      "failure during measurement; none is expected.)\n");
}

void bm_measure(benchmark::State& state) {
  const sg::StateGraph g = bench_suite::build_benchmark("full");
  const core::SynthesisResult nshot = core::synthesize(g);
  for (auto _ : state) benchmark::DoNotOptimize(measure(g, nshot.circuit));
}
BENCHMARK(bm_measure);

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
