// Tests for the state-graph model and its property checkers (Section III).
#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "bench_suite/generators.hpp"
#include "sg/properties.hpp"
#include "sg/state_graph.hpp"
#include "util/error.hpp"

namespace nshot::sg {
namespace {

/// xyz-style three-signal sequential cycle: x+ y+ z+ x- y- z-.
StateGraph make_cycle() {
  StateGraph g("cycle");
  const SignalId x = g.add_signal("x", SignalKind::kInput);
  const SignalId y = g.add_signal("y", SignalKind::kNonInput);
  const SignalId z = g.add_signal("z", SignalKind::kNonInput);
  const StateId s0 = g.add_state(0b000);
  const StateId s1 = g.add_state(0b001);
  const StateId s2 = g.add_state(0b011);
  const StateId s3 = g.add_state(0b111);
  const StateId s4 = g.add_state(0b110);
  const StateId s5 = g.add_state(0b100);
  g.add_edge(s0, {x, true}, s1);
  g.add_edge(s1, {y, true}, s2);
  g.add_edge(s2, {z, true}, s3);
  g.add_edge(s3, {x, false}, s4);
  g.add_edge(s4, {y, false}, s5);
  g.add_edge(s5, {z, false}, s0);
  g.set_initial(s0);
  return g;
}

TEST(StateGraphTest, BasicAccessors) {
  const StateGraph g = make_cycle();
  EXPECT_EQ(g.num_signals(), 3);
  EXPECT_EQ(g.num_states(), 6);
  EXPECT_EQ(g.input_signals().size(), 1u);
  EXPECT_EQ(g.noninput_signals().size(), 2u);
  EXPECT_EQ(g.find_signal("y"), std::optional<SignalId>(1));
  EXPECT_FALSE(g.find_signal("nope").has_value());
  EXPECT_TRUE(g.value(2, 0));
  EXPECT_TRUE(g.excited(0, 0));
  EXPECT_FALSE(g.excited(0, 1));
  EXPECT_EQ(g.label_name({1, true}), "y+");
  EXPECT_EQ(g.enabled_labels(0).size(), 1u);
}

TEST(StateGraphTest, SuccessorAndEnabled) {
  const StateGraph g = make_cycle();
  EXPECT_EQ(g.successor(0, {0, true}), std::optional<StateId>(1));
  EXPECT_FALSE(g.successor(0, {0, false}).has_value());
  EXPECT_TRUE(g.enabled(0, {0, true}));
}

TEST(StateGraphTest, RejectsDuplicateSignalsAndEdges) {
  StateGraph g;
  g.add_signal("a", SignalKind::kInput);
  EXPECT_THROW(g.add_signal("a", SignalKind::kNonInput), Error);
  const StateId s0 = g.add_state(0);
  const StateId s1 = g.add_state(1);
  g.add_edge(s0, {0, true}, s1);
  EXPECT_THROW(g.add_edge(s0, {0, true}, s1), Error);
  EXPECT_THROW(g.add_signal("b", SignalKind::kInput), Error);  // after states
}

TEST(PropertiesTest, ConsistencyHoldsOnCycle) {
  EXPECT_TRUE(check_consistency(make_cycle()).ok());
}

TEST(PropertiesTest, ConsistencyDetectsWrongPolarity) {
  StateGraph g;
  const SignalId x = g.add_signal("x", SignalKind::kInput);
  const StateId s0 = g.add_state(0b1);  // x already 1
  const StateId s1 = g.add_state(0b0);
  g.add_edge(s0, {x, true}, s1);  // +x fired while x = 1
  g.set_initial(s0);
  EXPECT_FALSE(check_consistency(g).ok());
}

TEST(PropertiesTest, ConsistencyDetectsWrongTargetCode) {
  StateGraph g;
  const SignalId x = g.add_signal("x", SignalKind::kInput);
  g.add_signal("y", SignalKind::kNonInput);
  const StateId s0 = g.add_state(0b00);
  const StateId s1 = g.add_state(0b11);  // y changed too
  g.add_edge(s0, {x, true}, s1);
  g.set_initial(s0);
  EXPECT_FALSE(check_consistency(g).ok());
}

TEST(PropertiesTest, ReachabilityDetectsOrphanState) {
  StateGraph g = make_cycle();
  g.add_state(0b010);  // never connected
  EXPECT_FALSE(check_reachability(g).ok());
}

TEST(PropertiesTest, SemiModularityViolationDetected) {
  // Non-input y+ enabled in s0 is disabled by input x+.
  StateGraph g;
  const SignalId x = g.add_signal("x", SignalKind::kInput);
  const SignalId y = g.add_signal("y", SignalKind::kNonInput);
  const StateId s0 = g.add_state(0b00);
  const StateId s1 = g.add_state(0b01);  // after x+
  const StateId s2 = g.add_state(0b10);  // after y+
  g.add_edge(s0, {x, true}, s1);
  g.add_edge(s0, {y, true}, s2);
  // No continuation from s1 (y+ disabled) => violation.
  g.set_initial(s0);
  EXPECT_FALSE(check_semi_modular(g).ok());
}

TEST(PropertiesTest, InputChoiceIsAllowed) {
  // Two inputs disabling each other: legal in SGs with input choices.
  StateGraph g;
  const SignalId x = g.add_signal("x", SignalKind::kInput);
  const SignalId y = g.add_signal("y", SignalKind::kInput);
  const StateId s0 = g.add_state(0b00);
  const StateId s1 = g.add_state(0b01);
  const StateId s2 = g.add_state(0b10);
  g.add_edge(s0, {x, true}, s1);
  g.add_edge(s0, {y, true}, s2);
  g.add_edge(s1, {x, false}, s0);
  g.add_edge(s2, {y, false}, s0);
  g.set_initial(s0);
  EXPECT_TRUE(check_semi_modular(g).ok());
}

TEST(PropertiesTest, CscConflictDetected) {
  // Two states with equal codes but different non-input excitation.
  StateGraph g;
  const SignalId x = g.add_signal("x", SignalKind::kInput);
  const SignalId y = g.add_signal("y", SignalKind::kNonInput);
  const StateId a = g.add_state(0b00);
  const StateId b = g.add_state(0b01);
  const StateId c = g.add_state(0b00);  // same code as a
  const StateId d = g.add_state(0b10);
  g.add_edge(a, {x, true}, b);
  g.add_edge(b, {x, false}, c);
  g.add_edge(c, {y, true}, d);  // y excited in c but not in a
  g.add_edge(d, {y, false}, a);
  g.set_initial(a);
  EXPECT_FALSE(check_csc(g).ok());
  EXPECT_FALSE(check_usc(g).ok());
}

TEST(PropertiesTest, CscHoldsWithoutUscOnReadWriteCore) {
  // The read-write core shares one binary code between two states (USC
  // fails) whose excited non-input sets agree (CSC holds).
  const sg::StateGraph g = bench_suite::build_read_write_core();
  EXPECT_TRUE(check_csc(g).ok());
  EXPECT_FALSE(check_usc(g).ok());
}

TEST(PropertiesTest, DetonantStatesOfOrCell) {
  const StateGraph cell = bench_suite::or_causality_cell("cell", "");
  const SignalId c = *cell.find_signal("c");
  const std::vector<StateId> detonant = detonant_states(cell, c);
  EXPECT_EQ(detonant.size(), 2u);  // 0*0*00 and the all-high state
  EXPECT_FALSE(is_distributive(cell, c));
  EXPECT_FALSE(is_distributive(cell));
}

TEST(PropertiesTest, CycleIsDistributive) {
  EXPECT_TRUE(is_distributive(make_cycle()));
}

TEST(PropertiesTest, ImplementabilityAggregatesChecks) {
  EXPECT_TRUE(check_implementability(make_cycle()).ok());
  StateGraph g = make_cycle();
  g.add_state(0b010);
  EXPECT_FALSE(check_implementability(g).ok());
}

TEST(PropertiesTest, SummaryListsViolations) {
  StateGraph g = make_cycle();
  g.add_state(0b010);
  const PropertyReport report = check_reachability(g);
  EXPECT_NE(report.summary().find("unreachable"), std::string::npos);
}

}  // namespace
}  // namespace nshot::sg
