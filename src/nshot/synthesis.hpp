// Top-level N-SHOT synthesis flow (Section IV-E):
//   1. check implementability: consistency, reachability, semi-modularity
//      with input choices, CSC (Theorem 2 preconditions);
//   2. derive the joint set/reset (F, D, R) specification (Table 1);
//   3. minimize with a conventional two-level minimizer (heuristic
//      multi-output ESPRESSO loop, or exact per-output minimization);
//   4. verify the cover against the spec (independent oracle);
//   5. enforce the trigger requirement (Theorem 1), repairing with trigger
//      cubes where needed;
//   6. evaluate the delay requirement (Eq. 1) per signal;
//   7. map onto the N-SHOT architecture (Figure 3) and analyze flip-flop
//      initialization (Section IV-F).
#pragma once

#include <string>
#include <vector>

#include "logic/cover.hpp"
#include "logic/espresso.hpp"
#include "netlist/netlist.hpp"
#include "nshot/architecture.hpp"
#include "nshot/delay_requirement.hpp"
#include "nshot/spec_derivation.hpp"
#include "nshot/trigger.hpp"
#include "sg/regions.hpp"
#include "util/error.hpp"
#include "util/run_config.hpp"

namespace nshot::core {

/// Raised when the SG fails the preconditions of Theorem 2 (consistency,
/// semi-modularity, CSC, or an unrepairable trigger-requirement violation).
class SynthesisError : public Error {
 public:
  explicit SynthesisError(const std::string& what)
      : Error(ErrorCode::kUnimplementable, what) {}
};

/// The inherited nshot::RunConfig `jobs` drives per-signal work —
/// per-output exact minimization and the Eq. 1 / initialization analyses,
/// which are independent across signals once the joint (F, D, R) spec is
/// derived.  Results merge in signal order, so the synthesized netlist is
/// identical for every jobs value.
struct SynthesisOptions : RunConfig {
  /// Use exact (Quine-McCluskey + branch-and-bound) minimization per
  /// output instead of the heuristic multi-output loop.
  bool exact = false;
  /// Allow AND-gate sharing across outputs (heuristic mode only).
  bool share_products = true;
  /// Insert delay compensation lines when Eq. 1 requires them.
  bool insert_delay_lines = true;
  /// Reuse minimization results across synthesize() calls through a
  /// process-wide cross-thread cache keyed on the serialized (F, D, R)
  /// spec and minimizer knobs.  Identical subproblems (ablation benches,
  /// repeated benchmark sweeps) are then solved once.  The cached cover is
  /// the deterministic minimizer output, so this never changes results.
  bool memoize_minimization = true;
  logic::EspressoOptions espresso;
};

/// Per-signal implementation summary.
struct SignalImplementation {
  sg::SignalId signal = -1;
  int set_cubes = 0;
  int reset_cubes = 0;
  DelayRequirement delay;
  InitInfo init;
};

struct SynthesisResult {
  netlist::Netlist circuit;
  logic::Cover cover;            // joint minimized set/reset cover
  DerivedSpec derived;           // the (F, D, R) spec and output mapping
  std::vector<SignalImplementation> signals;
  TriggerReport trigger;
  netlist::NetlistStats stats;   // area/delay in the report model
  bool single_traversal = true;  // Definition 9 (Corollary 1 applies)
  bool delay_compensation_used = false;
};

/// Snapshot of the process-wide (F, D, R) minimization memo — the cache
/// every Pipeline in the process shares, so a serve worker can report
/// warm-vs-cold hit rates without owning the cache.
struct MinimizationCacheStats {
  long hits = 0;
  long misses = 0;
  std::size_t entries = 0;
};
MinimizationCacheStats minimization_cache_stats();

/// Run the full flow.  Throws SynthesisError when the SG is outside the
/// implementable class characterized by Theorem 2.
SynthesisResult synthesize(const sg::StateGraph& sg, const SynthesisOptions& options = {});

/// Human-readable synthesis report (regions, covers, Eq. 1 values, stats).
std::string describe(const sg::StateGraph& sg, const SynthesisResult& result);

}  // namespace nshot::core
