
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/golden_results_test.cpp" "tests/CMakeFiles/golden_results_test.dir/golden_results_test.cpp.o" "gcc" "tests/CMakeFiles/golden_results_test.dir/golden_results_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nshot/CMakeFiles/nshot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_suite/CMakeFiles/nshot_bench_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/nshot_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/nshot_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/gatelib/CMakeFiles/nshot_gatelib.dir/DependInfo.cmake"
  "/root/repo/build/src/stg/CMakeFiles/nshot_stg.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/nshot_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nshot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
