// Tests for the STG model, the .g parser/writer and token-flow
// reachability.
#include <gtest/gtest.h>

#include "sg/properties.hpp"
#include "stg/g_format.hpp"
#include "stg/reachability.hpp"
#include "stg/stg.hpp"
#include "util/error.hpp"

namespace nshot::stg {
namespace {

const char* kXyzG = R"(
.model xyz
.inputs x
.outputs y z
.graph
x+ y+
y+ z+
z+ x-
x- y-
y- z-
z- x+
.marking { <z-,x+> }
.end
)";

TEST(GFormatTest, ParsesSimpleCycle) {
  const Stg stg = parse_g(kXyzG);
  EXPECT_EQ(stg.name(), "xyz");
  EXPECT_EQ(stg.num_signals(), 3);
  EXPECT_EQ(stg.num_transitions(), 6);
  EXPECT_EQ(stg.signal(0).kind, SignalKind::kInput);
  EXPECT_EQ(stg.signal(1).kind, SignalKind::kOutput);
  // Exactly one marked implicit place.
  int marked = 0;
  for (const bool token : stg.initial_marking()) marked += token;
  EXPECT_EQ(marked, 1);
}

TEST(GFormatTest, ParsesInstancesAndExplicitPlaces) {
  const Stg stg = parse_g(
      ".model t\n.inputs a\n.outputs b\n.graph\n"
      "a+ p1\np1 b+\nb+ a-\na- b-/1\nb-/1 a+/2\na+/2 b+/2\nb+/2 a-/2\na-/2 p2\np2 a+\n"
      ".marking { p2 }\n.end\n");
  EXPECT_TRUE(stg.find_place("p1").has_value());
  EXPECT_TRUE(stg.find_transition(*stg.find_signal("a"), true, 2).has_value());
}

TEST(GFormatTest, RejectsUndeclaredSignalsAndPlaces) {
  EXPECT_THROW(parse_g(".model t\n.inputs a\n.graph\na+ b+\n.marking { <a+,b+> }\n.end\n"),
               Error);
  EXPECT_THROW(parse_g(".model t\n.inputs a\n.graph\na+ a-\n.marking { nosuch }\n.end\n"),
               Error);
}

TEST(GFormatTest, DummyTransitionsAreEliminatedBySaturation) {
  // x+ -> eps -> y+ -> x- -> y-: the dummy disappears from the SG, whose
  // language is the plain 4-state handshake.
  const char* text =
      ".model dummy_demo\n.inputs x\n.outputs y\n.dummy eps\n.graph\n"
      "x+ eps\neps y+\ny+ x-\nx- y-\ny- x+\n.marking { <y-,x+> }\n.end\n";
  const Stg net = parse_g(text);
  EXPECT_TRUE(net.has_dummies());
  const sg::StateGraph g = build_state_graph(net);
  EXPECT_EQ(g.num_states(), 4);
  EXPECT_TRUE(sg::check_implementability(g).ok());
  // Roundtrip keeps the .dummy declaration.
  const Stg reparsed = parse_g(write_g(net));
  EXPECT_TRUE(reparsed.has_dummies());
  EXPECT_EQ(build_state_graph(reparsed).num_states(), 4);
}

TEST(GFormatTest, ForkJoinThroughDummiesIsConfluent) {
  // A dummy fork releasing two concurrent outputs and a dummy join.
  const char* text =
      ".model dummy_fork\n.inputs r\n.outputs u v a\n.dummy fork join\n.graph\n"
      "r+ fork\nfork u+ v+\nu+ join\nv+ join\njoin a+\n"
      "a+ r-\nr- u- v-\nu- a-\nv- a-\na- r+\n.marking { <a-,r+> }\n.end\n";
  const sg::StateGraph g = build_state_graph(parse_g(text));
  EXPECT_TRUE(sg::check_implementability(g).ok());
  EXPECT_FALSE(g.find_signal("fork").has_value());  // dummies are not signals
}

TEST(GFormatTest, CyclicDummiesAreRejected) {
  // A marked 2-dummy ring never reaches a dummy-quiescent marking.
  const char* text =
      ".model bad\n.inputs x\n.dummy d1 d2\n.graph\n"
      "d1 d2\nd2 d1\nx+ x-\nx- x+\n.marking { <x-,x+> <d2,d1> }\n.end\n";
  EXPECT_THROW(build_state_graph(parse_g(text)), Error);
}

TEST(GFormatTest, WriterRoundTrips) {
  const Stg original = parse_g(kXyzG);
  const Stg reparsed = parse_g(write_g(original));
  EXPECT_EQ(reparsed.num_signals(), original.num_signals());
  EXPECT_EQ(reparsed.num_transitions(), original.num_transitions());
  const sg::StateGraph a = build_state_graph(original);
  const sg::StateGraph b = build_state_graph(reparsed);
  EXPECT_EQ(a.num_states(), b.num_states());
}

TEST(ReachabilityTest, CycleProducesSixStates) {
  const sg::StateGraph g = build_state_graph(parse_g(kXyzG));
  EXPECT_EQ(g.num_states(), 6);
  EXPECT_TRUE(sg::check_consistency(g).ok());
  EXPECT_TRUE(sg::check_reachability(g).ok());
  EXPECT_TRUE(sg::check_semi_modular(g).ok());
  EXPECT_TRUE(sg::check_csc(g).ok());
  // Initial values inferred: everything starts at 0 (first firings are +).
  EXPECT_EQ(g.code(g.initial()), 0u);
}

TEST(ReachabilityTest, InitialValueInferenceForFallingFirst) {
  // y starts high: its first transition is y-.
  const sg::StateGraph g = build_state_graph(parse_g(
      ".model t\n.inputs x\n.outputs y\n.graph\n"
      "x+ y-\ny- x-\nx- y+\ny+ x+\n.marking { <y+,x+> }\n.end\n"));
  const auto y = g.find_signal("y");
  ASSERT_TRUE(y.has_value());
  EXPECT_TRUE(g.value(g.initial(), *y));
  EXPECT_FALSE(g.value(g.initial(), *g.find_signal("x")));
}

TEST(ReachabilityTest, DeclaredInitRequiredForConstantSignal) {
  const char* text =
      ".model t\n.inputs x c\n.outputs y\n.graph\n"
      "x+ y+\ny+ x-\nx- y-\ny- x+\n.marking { <y-,x+> }\n%INIT%.end\n";
  std::string without(text);
  without.replace(without.find("%INIT%"), 6, "");
  EXPECT_THROW(build_state_graph(parse_g(without)), Error);  // c never fires
  std::string with(text);
  with.replace(with.find("%INIT%"), 6, ".init c=1\n");
  const sg::StateGraph g = build_state_graph(parse_g(with));
  EXPECT_TRUE(g.value(g.initial(), *g.find_signal("c")));
}

TEST(ReachabilityTest, DetectsNonOneSafeNet) {
  // Two producers into one place without consumption in between.
  Stg stg("unsafe");
  const int a = stg.add_signal("a", SignalKind::kInput);
  const int b = stg.add_signal("b", SignalKind::kInput);
  const TransitionId ap = stg.add_transition(a, true);
  const TransitionId am = stg.add_transition(a, false);
  const TransitionId bp = stg.add_transition(b, true);
  const PlaceId p0 = stg.add_place("p0");
  const PlaceId p1 = stg.add_place("p1");
  const PlaceId shared = stg.add_place("shared");
  stg.mark_place(p0);
  stg.mark_place(p1);
  stg.add_arc_place_to_transition(p0, ap);
  stg.add_arc_transition_to_place(ap, shared);
  stg.add_arc_place_to_transition(p1, bp);
  stg.add_arc_transition_to_place(bp, shared);
  stg.add_arc_place_to_transition(shared, am);
  EXPECT_THROW(build_state_graph(stg), Error);
}

TEST(ReachabilityTest, DetectsInconsistentStg) {
  // x fires + twice along one path (no - in between).
  Stg stg("inconsistent");
  const int x = stg.add_signal("x", SignalKind::kInput);
  const TransitionId x1 = stg.add_transition(x, true, 1);
  const TransitionId x2 = stg.add_transition(x, true, 2);
  const PlaceId p0 = stg.add_place("p0");
  const PlaceId p1 = stg.add_place("p1");
  const PlaceId p2 = stg.add_place("p2");
  stg.mark_place(p0);
  stg.add_arc_place_to_transition(p0, x1);
  stg.add_arc_transition_to_place(x1, p1);
  stg.add_arc_place_to_transition(p1, x2);
  stg.add_arc_transition_to_place(x2, p2);
  EXPECT_THROW(build_state_graph(stg), Error);
}

TEST(ReachabilityTest, StateCapIsEnforced) {
  const Stg stg = parse_g(kXyzG);
  ReachabilityOptions options;
  options.max_states = 3;
  EXPECT_THROW(build_state_graph(stg, options), Error);
}

TEST(ReachabilityTest, DeadTransitionsAreDiagnosed) {
  // b+/2 can never fire: its preset place is never marked.
  Stg stg("dead");
  const int a = stg.add_signal("a", SignalKind::kInput);
  const int b = stg.add_signal("b", SignalKind::kOutput);
  const TransitionId ap = stg.add_transition(a, true);
  const TransitionId am = stg.add_transition(a, false);
  const TransitionId bp = stg.add_transition(b, true, 2);
  stg.connect(ap, am);
  const PlaceId loop = stg.connect(am, ap);
  stg.mark_place(loop);
  const PlaceId orphan = stg.add_place("orphan");
  stg.add_arc_place_to_transition(orphan, bp);
  const auto dead = dead_transitions(stg);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], bp);
  // A live net reports nothing.
  EXPECT_TRUE(dead_transitions(parse_g(kXyzG)).empty());
}

TEST(StgModelTest, ConnectCreatesImplicitPlace) {
  Stg stg("t");
  const int a = stg.add_signal("a", SignalKind::kInput);
  const TransitionId ap = stg.add_transition(a, true);
  const TransitionId am = stg.add_transition(a, false);
  stg.connect(ap, am);
  EXPECT_TRUE(stg.find_place("<a+,a->").has_value());
  EXPECT_EQ(stg.preset(am).size(), 1u);
  EXPECT_EQ(stg.postset(ap).size(), 1u);
}

TEST(StgModelTest, TransitionNamesIncludeInstances) {
  Stg stg("t");
  const int a = stg.add_signal("a", SignalKind::kInput);
  const TransitionId t1 = stg.add_transition(a, true, 1);
  const TransitionId t2 = stg.add_transition(a, true, 2);
  EXPECT_EQ(stg.transition_name(t1), "a+");
  EXPECT_EQ(stg.transition_name(t2), "a+/2");
  EXPECT_THROW(stg.add_transition(a, true, 2), Error);
}

}  // namespace
}  // namespace nshot::stg
