#!/usr/bin/env python3
"""Performance-regression gate over BENCH_kernels.json / BENCH_scale.json /
BENCH_queue_scaling.json.

Compares a freshly measured bench JSON against the committed one using
the IN-RUN speedup ratios (reference/compiled, compiled/batched,
reference/word-parallel), never absolute milliseconds: both sides of each
ratio were measured in the same process on the same machine, so the
ratios transfer across hosts while wall-clock numbers do not.

Checks, in order:
  1. the fresh run asserts byte_identical (all engines produced the same
     reports — the correctness gate the speedups are conditional on);
  2. every top-level speedup ratio present in both files must satisfy
         fresh >= committed * (1 - tolerance);
  3. every per-case ratio (cases matched by "name" — a smoke run measures
     a subset of the committed tiers, unmatched cases are skipped) must
     satisfy the same floor.

Smoke runs (reps=1, shrunken workloads) are noisy, so CI passes a wide
--tolerance; nightly full runs can tighten it.  Dependency-free on
purpose: CI images carry a bare python3.

Usage: bench_gate.py COMMITTED.json FRESH.json [--tolerance 0.25]
Exits 0 when the gate passes, 1 with one line per violation.
"""

import argparse
import json
import sys

RATIO_KEYS = (
    "conformance_speedup",
    "stress_speedup",
    "total_speedup",
    "conformance_batch_speedup",
    "stress_batch_speedup",
    "total_batch_speedup",
    "largest_tier_combined_speedup",
    # BENCH_serve.json: mean server-side latency of the cold (empty memo)
    # pass over the warm (repeated specs) passes — the shared-cache payoff.
    "warm_over_cold",
)

# Ratios gated per case row (matched by "name" across the two files).
# combined_speedup gates BENCH_scale tiers; calendar_over_heap and
# adaptive_over_heap gate BENCH_queue_scaling tiers (heap_ms/engine_ms —
# in-run ratios like everything else here).
CASE_RATIO_KEYS = ("combined_speedup", "calendar_over_heap", "adaptive_over_heap")


def case_rows(doc):
    """Per-case rows of a bench JSON: BENCH_kernels/BENCH_scale keep them
    under "cases", BENCH_queue_scaling under "tiers"."""
    rows = []
    for key in ("cases", "tiers"):
        rows.extend(c for c in doc.get(key, []) if isinstance(c, dict) and "name" in c)
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("committed", help="checked-in BENCH_kernels.json")
    parser.add_argument("fresh", help="freshly measured BENCH_kernels.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative ratio regression (0.25 = fresh may be 25%% below committed)",
    )
    args = parser.parse_args()

    with open(args.committed) as f:
        committed = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    failures = []
    if fresh.get("byte_identical") is not True:
        failures.append("fresh run does not assert byte_identical — engines diverged")

    for key in RATIO_KEYS:
        if key not in committed or key not in fresh:
            continue  # ratio introduced/retired across versions: nothing to compare
        want = committed[key] * (1.0 - args.tolerance)
        got = fresh[key]
        status = "ok" if got >= want else "REGRESSED"
        print(
            f"{key:32s} committed {committed[key]:6.3f}  fresh {got:6.3f}  "
            f"floor {want:6.3f}  {status}"
        )
        if got < want:
            failures.append(
                f"{key}: fresh {got:.3f} below floor {want:.3f} "
                f"(committed {committed[key]:.3f}, tolerance {args.tolerance:.0%})"
            )

    committed_cases = {case["name"]: case for case in case_rows(committed)}
    for case in case_rows(fresh):
        if case.get("name") not in committed_cases:
            continue  # smoke runs measure a subset of the committed tiers
        name = case["name"]
        base = committed_cases[name]
        for key in CASE_RATIO_KEYS:
            if key not in base or key not in case:
                continue
            want = base[key] * (1.0 - args.tolerance)
            got = case[key]
            status = "ok" if got >= want else "REGRESSED"
            label = f"{name}.{key}"
            print(
                f"{label:32s} committed {base[key]:6.3f}  fresh {got:6.3f}  "
                f"floor {want:6.3f}  {status}"
            )
            if got < want:
                failures.append(
                    f"{label}: fresh {got:.3f} below floor {want:.3f} "
                    f"(committed {base[key]:.3f}, tolerance {args.tolerance:.0%})"
                )

    if failures:
        for line in failures:
            print(f"bench_gate: {line}", file=sys.stderr)
        return 1
    print("bench_gate: pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
