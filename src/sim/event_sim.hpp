// Event-driven gate-level simulator under the paper's pure delay model
// (Section IV-A): a pulse of any length on a gate input propagates to the
// gate output.  Gates have arbitrary — but per-run constant — delays
// sampled from the library's [min, max] interval, so running many seeds
// explores the delay space the hazard-freeness claim quantifies over.
//
// Primitives:
//  * AND/OR (with input inversion bubbles), INV, BUF: transport delay.
//  * kDelayLine: transport delay with an explicit per-instance delay.
//  * kInertialDelay: inertial delay — absorbs pulses shorter than its
//    delay (used by the MHS filter stage model and the SIS-like baseline's
//    hazard-masking pads).
//  * RS latch (set dominant), C-element: transport delay storage.
//  * MHS flip-flop: behavioural model of Figures 4 and 5 — a cell with
//    inputs {set, reset, enable_set, enable_reset} whose effective
//    excitations are set&enable_set / reset&enable_reset (the
//    acknowledgement AND gates are part of the custom cell).  An effective
//    excitation pulse shorter than the threshold ω is absorbed; a pulse of
//    width >= ω fires the output translated forward by τ.  Set pulses are
//    ignored while the output is already 1, reset pulses while it is 0.
//
// Trials run against a CompiledNetlist (sim/compiled_netlist.hpp): the
// seed-independent setup — CSR fanout, packed input codes, driver and
// fused-reader tables, delay bounds — is built once and shared, and
// `reset()` returns a simulator to its freshly-constructed state without
// reallocating, so sweeps pay only the per-seed work (delay sampling + the
// run itself) per trial.  The per-event walk reads HotGate records (the
// trial's sampled delay moved into the gate record) and, inside
// run_burst, walks fanout-of-1 combinational chains through a one-event
// hold register instead of the queue — both proven byte-identical to the
// reference driver by tests/sim_batch_equivalence_test.cpp.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/compiled_netlist.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace nshot::sim {

/// Per-simulator hot gate record: the fields evaluate_gate touches per
/// event, with the trial's sampled delay moved INTO the record — one cache
/// line holds the whole commit→schedule step instead of an indirection
/// into a separate delay table.  Static fields are copied from the
/// CompiledNetlist at construction; reset() refreshes only the delay.
struct HotGate {
  double delay = 0.0;
  std::uint32_t first_input = 0;
  netlist::NetId out0 = -1;
  gatelib::GateType type = gatelib::GateType::kBuf;
  std::uint8_t num_inputs = 0;
};

struct SimulatorOptions {
  std::uint64_t seed = 1;
  /// Sample per-gate delays uniformly from the library interval; when
  /// false every gate uses the midpoint (deterministic baseline).
  bool randomize_delays = true;
  /// Complete per-gate delay assignment; overrides sampling when non-empty
  /// (must then hold one delay per gate).  Used by the adversarial delay
  /// search, which optimizes the vector directly.
  std::vector<double> explicit_delays;
  /// Targeted per-gate delay patches applied after sampling/explicit
  /// assignment — the delay-outlier and delay-line-shaving fault models.
  std::vector<std::pair<netlist::GateId, double>> delay_overrides;
  /// Abort the run once this many events have been processed (0 = no
  /// budget).  Injected faults can turn a quiescent circuit into an
  /// oscillator; the budget converts unbounded queue growth into a
  /// structured "budget exhausted" outcome.
  std::uint64_t max_events = 0;
};

/// Called on every committed net value change.
using NetObserver = std::function<void(netlist::NetId, bool value, double time)>;

class Simulator {
 public:
  /// Run against a pre-compiled netlist (the caller keeps it alive for the
  /// simulator's lifetime).  This is the hot-path constructor: the sweeps
  /// compile once per campaign and reset() the simulator per trial.
  /// `queue` picks the event-queue engine; it is part of the simulator's
  /// identity, not per-trial state, and survives reset() — per-trial
  /// configs rebuilt without the flag cannot silently flip the mode.
  Simulator(const CompiledNetlist& compiled, const SimulatorOptions& options,
            QueueKind queue = QueueKind::kBinaryHeap);

  /// Convenience constructor compiling the netlist privately — identical
  /// behaviour, pays the compile on every construction.  Also the
  /// reference path bench_kernels measures the compiled layer against.
  Simulator(const netlist::Netlist& netlist, const gatelib::GateLibrary& lib,
            const SimulatorOptions& options);

  /// Return to the freshly-constructed state under new options: re-seed
  /// the RNG, resample/replace the delay vector, drop all pending events
  /// and observers.  All arena storage (event heap, per-net and per-gate
  /// arrays) keeps its capacity.  initialize() must be called again.
  void reset(const SimulatorOptions& options);

  /// Set the initial value of specific nets (primary inputs and storage
  /// outputs), then propagate through the combinational gates and arm any
  /// initially-excited storage elements.  Must be called exactly once
  /// before stepping.
  void initialize(const std::vector<std::pair<netlist::NetId, bool>>& fixed_values);

  /// initialize() with the combinational settle already done: `settled`
  /// holds one byte per net, exactly what initialize() would have computed
  /// from the fixed values (the batched engine settles 64 trials at once
  /// in sim::BatchPlanes and hands each lane's plane slice here).  Runs
  /// the same storage-arming pass as initialize(), so the event sequence —
  /// seq numbers included — is identical.
  void initialize_from_settled(const std::vector<std::uint8_t>& settled);

  /// Schedule an external change of a primary input.
  void set_input(netlist::NetId net, bool value, double at_time);

  /// Fault-injection instruments.  `force_net` pins a net to `value` at the
  /// current time, overriding its driver (stuck-at faults; a glitch is a
  /// force/release pair).  `release_net` un-pins the net and restores the
  /// driver's present output (the driven net must be combinational —
  /// AND/OR/INV/BUF — or driverless).  Both commit immediately and
  /// propagate through the fanout like any net change.
  void force_net(netlist::NetId net, bool value);
  void release_net(netlist::NetId net);
  bool is_forced(netlist::NetId net) const {
    return forced_[static_cast<std::size_t>(net)] != 0;
  }

  /// Advance the simulation clock to `t` without processing events; `t`
  /// must not lie in the past or beyond the next pending event.  Lets a
  /// harness timestamp a runtime injection correctly when the circuit is
  /// quiescent at the injection instant.
  void advance_time(double t);

  void set_observer(NetObserver observer) { observer_ = std::move(observer); }

  /// One committed net change, in commit order.
  struct Commit {
    netlist::NetId net;
    bool value;
  };

  /// Route committed changes into `log` instead of dispatching observer_.
  /// The driver drains the log after every step/force/release — commit
  /// times are recoverable as now() because at most one commit happens per
  /// step (evaluate_gate only schedules) and forces drain immediately.
  /// This replaces a std::function call per commit with a push_back; the
  /// batched trial driver lives on it.  Cleared by reset().
  void set_commit_log(std::vector<Commit>* log) { commit_log_ = log; }

  /// Process the next event; returns false when the queue is empty.
  bool step();

  /// Why run_burst stopped.
  enum class BurstStop : std::uint8_t {
    kObservable,  // an observable net committed (see BurstResult net/value)
    kQuiesced,    // event queue drained
    kBudget,      // event budget tripped (budget_exhausted() is now true)
    kTimeLimit,   // now() reached the time limit after an event
    kBound,       // the next event lies strictly past `bound`
  };
  struct BurstResult {
    BurstStop stop;
    netlist::NetId net = -1;
    bool value = false;
  };

  /// The fused hot loop of the batched trial driver: process events
  /// back-to-back — pop, commit, fanout evaluation inline — until an
  /// observable net commits (net_signal[net] >= 0), the queue drains, the
  /// event budget trips, now() reaches `time_limit`, or the next pending
  /// event lies past `bound`.  Exactly equivalent to calling step() per
  /// event with a commit log drained between steps (the check order after
  /// each event is the drain loop's: time limit, queue, bound), minus the
  /// per-event log traffic and accessor round-trips.  `pre_check`, when
  /// non-null, is invoked for every commit in commit order (the VCD/probe
  /// observers); the caller runs the spec walk on the returned observable
  /// commit.  With `single` set, exactly one event is processed and the
  /// post-event checks are skipped — the caller's loop re-derives them —
  /// which is the "commit the just-scheduled input" step.
  BurstResult run_burst(const int* net_signal, double time_limit, double bound,
                        const NetObserver* pre_check, bool single = false);

  /// Run until the queue drains or `time_limit` is passed.
  void run_until(double time_limit);

  double now() const { return now_; }
  bool has_pending_events() const { return !events_.empty(); }
  double next_event_time() const;
  /// Number of events currently queued (the fused chain register never
  /// survives a run_burst return, so this is the whole pending set).
  std::size_t pending_events() const { return events_.size(); }

  bool value(netlist::NetId net) const {
    return values_[static_cast<std::size_t>(net)] != 0;
  }
  /// Number of committed value changes of a net since initialization.
  long toggle_count(netlist::NetId net) const {
    return toggles_[static_cast<std::size_t>(net)];
  }
  /// Sum of toggle counts over all nets except the listed ones.
  long total_toggles_excluding(const std::vector<netlist::NetId>& excluded) const;

  /// Number of sub-threshold excitation pulses absorbed by the MHS
  /// flip-flops (the hazard filter of Figure 5 doing its job).
  long mhs_absorbed_pulses() const { return mhs_absorbed_; }

  /// The per-gate delay assignment of this run (sampled, explicit, or
  /// overridden) — the witness the fault harness minimizes.
  const std::vector<double>& gate_delays() const { return gate_delay_; }

  std::uint64_t events_processed() const { return events_processed_; }
  /// True once the event budget (SimulatorOptions::max_events) was hit;
  /// step() then refuses to process further events.
  bool budget_exhausted() const { return budget_exhausted_; }

  const netlist::Netlist& circuit() const { return compiled_->netlist(); }
  const CompiledNetlist& compiled() const { return *compiled_; }
  QueueKind queue_kind() const { return events_.kind(); }

 private:
  struct MhsState {
    double set_rise = -1.0;    // time the (gated) set input last rose; -1 = low
    double reset_rise = -1.0;
    bool armed_set = false;    // a probe for the current set excitation is queued
    bool armed_reset = false;
  };

  struct InertialState {
    std::uint32_t generation = 0;  // invalidates the pending event (wraps with Event's)
    bool has_pending = false;
    bool pending_value = false;
  };

  void arm_initial_storage();
  void build_hot_gates();
  void schedule_net(netlist::NetId net, bool value, double time, std::uint32_t generation = 0);
  void commit_net(netlist::NetId net, bool value, bool forced_commit = false);
  void evaluate_gate(netlist::GateId g);
  /// One implementation evaluates both gate records: the cold CompiledGate
  /// (initialize, release_net) and the per-trial HotGate (event walk).
  template <typename GateRec>
  bool eval_combinational(const GateRec& gate) const;
  void handle_mhs_input(netlist::GateId g);
  void handle_mhs_probe(netlist::GateId g, bool probing_set);

  const CompiledNetlist* compiled_;
  std::unique_ptr<const CompiledNetlist> owned_;  // compat-constructor storage
  Rng rng_;
  double omega_;                           // lib().mhs_threshold()
  double tau_;                             // lib().mhs_response()
  std::vector<double> gate_delay_;         // sampled per gate
  std::vector<HotGate> hot_;               // delay-in-record gate descriptors
  std::vector<std::uint8_t> values_;       // committed net values
  std::vector<std::uint8_t> projected_;    // value after all pending events
  std::vector<std::uint8_t> forced_;       // nets pinned by force_net
  std::vector<long> toggles_;
  std::vector<MhsState> mhs_;              // per gate (only MHS entries used)
  std::vector<InertialState> inertial_;    // per gate (only inertial entries used)
  EventQueue events_;
  // Fused-chain hold register: run_burst keeps the single event a
  // fanout-of-1 combinational link scheduled out of the queue and consumes
  // it inline when it is the global (time, seq) minimum.  hold_open_ is
  // set around the link's evaluate_gate call so schedule_net diverts the
  // push here; every run_burst exit path flushes the register back into
  // the queue, so it never outlives a burst.
  Event hold_{};
  bool hold_valid_ = false;
  bool hold_open_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t max_events_ = 0;
  std::uint64_t events_processed_ = 0;
  bool budget_exhausted_ = false;
  long mhs_absorbed_ = 0;
  double now_ = 0.0;
  bool initialized_ = false;
  NetObserver observer_;
  std::vector<Commit>* commit_log_ = nullptr;
};

}  // namespace nshot::sim
