// Small string utilities used by the text-format parsers (.g, PLA).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nshot {

/// Split `text` on whitespace (spaces and tabs); empty tokens are dropped.
std::vector<std::string> split_ws(std::string_view text);

/// Strip leading/trailing whitespace and a trailing '#'-comment if present.
std::string strip_comment_and_trim(std::string_view line);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace nshot
