#include "stg/stg.hpp"

#include "util/error.hpp"

namespace nshot::stg {

int Stg::add_signal(const std::string& name, SignalKind kind) {
  NSHOT_REQUIRE(signals_.size() < 64, "STG supports at most 64 signals");
  NSHOT_REQUIRE(!find_signal(name).has_value(), "duplicate signal " + name);
  signals_.push_back(StgSignal{name, kind});
  initial_values_.push_back(std::nullopt);
  return static_cast<int>(signals_.size() - 1);
}

TransitionId Stg::add_transition(int signal, bool rising, int instance) {
  NSHOT_REQUIRE(signal >= 0 && signal < num_signals(), "transition signal out of range");
  NSHOT_REQUIRE(instance >= 1, "transition instance must be >= 1");
  NSHOT_REQUIRE(!find_transition(signal, rising, instance).has_value(),
                "duplicate transition " + signals_[static_cast<std::size_t>(signal)].name +
                    (rising ? "+" : "-") + "/" + std::to_string(instance));
  transitions_.push_back(StgTransition{signal, rising, instance});
  dummy_names_.emplace_back();
  pre_.emplace_back();
  post_.emplace_back();
  return static_cast<TransitionId>(transitions_.size() - 1);
}

TransitionId Stg::add_dummy_transition(const std::string& name) {
  NSHOT_REQUIRE(!find_dummy_transition(name).has_value(), "duplicate dummy transition " + name);
  transitions_.push_back(StgTransition{-1, true, 1});
  dummy_names_.push_back(name);
  pre_.emplace_back();
  post_.emplace_back();
  return static_cast<TransitionId>(transitions_.size() - 1);
}

std::optional<TransitionId> Stg::find_dummy_transition(const std::string& name) const {
  for (std::size_t i = 0; i < transitions_.size(); ++i)
    if (transitions_[i].is_dummy() && dummy_names_[i] == name)
      return static_cast<TransitionId>(i);
  return std::nullopt;
}

bool Stg::has_dummies() const {
  for (const StgTransition& t : transitions_)
    if (t.is_dummy()) return true;
  return false;
}

PlaceId Stg::add_place(const std::string& name) {
  NSHOT_REQUIRE(!find_place(name).has_value(), "duplicate place " + name);
  place_names_.push_back(name);
  marking_.push_back(false);
  return static_cast<PlaceId>(place_names_.size() - 1);
}

void Stg::add_arc_place_to_transition(PlaceId p, TransitionId t) {
  NSHOT_REQUIRE(p >= 0 && p < num_places(), "place out of range");
  NSHOT_REQUIRE(t >= 0 && t < num_transitions(), "transition out of range");
  pre_[static_cast<std::size_t>(t)].push_back(p);
}

void Stg::add_arc_transition_to_place(TransitionId t, PlaceId p) {
  NSHOT_REQUIRE(p >= 0 && p < num_places(), "place out of range");
  NSHOT_REQUIRE(t >= 0 && t < num_transitions(), "transition out of range");
  post_[static_cast<std::size_t>(t)].push_back(p);
}

PlaceId Stg::connect(TransitionId from, TransitionId to) {
  const std::string name = "<" + transition_name(from) + "," + transition_name(to) + ">";
  const PlaceId p = find_place(name) ? *find_place(name) : add_place(name);
  add_arc_transition_to_place(from, p);
  add_arc_place_to_transition(p, to);
  return p;
}

void Stg::mark_place(PlaceId p, bool token) {
  NSHOT_REQUIRE(p >= 0 && p < num_places(), "place out of range");
  marking_[static_cast<std::size_t>(p)] = token;
}

void Stg::set_initial_value(int signal, bool value) {
  NSHOT_REQUIRE(signal >= 0 && signal < num_signals(), "signal out of range");
  initial_values_[static_cast<std::size_t>(signal)] = value;
}

std::optional<int> Stg::find_signal(const std::string& name) const {
  for (std::size_t i = 0; i < signals_.size(); ++i)
    if (signals_[i].name == name) return static_cast<int>(i);
  return std::nullopt;
}

std::optional<TransitionId> Stg::find_transition(int signal, bool rising, int instance) const {
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    const StgTransition& t = transitions_[i];
    if (t.signal == signal && t.rising == rising && t.instance == instance)
      return static_cast<TransitionId>(i);
  }
  return std::nullopt;
}

std::string Stg::transition_name(TransitionId t) const {
  const StgTransition& tr = transitions_[static_cast<std::size_t>(t)];
  if (tr.is_dummy()) return dummy_names_[static_cast<std::size_t>(t)];
  std::string name = signals_[static_cast<std::size_t>(tr.signal)].name + (tr.rising ? "+" : "-");
  if (tr.instance != 1) name += "/" + std::to_string(tr.instance);
  return name;
}

std::optional<PlaceId> Stg::find_place(const std::string& name) const {
  for (std::size_t i = 0; i < place_names_.size(); ++i)
    if (place_names_[i] == name) return static_cast<PlaceId>(i);
  return std::nullopt;
}

}  // namespace nshot::stg
