#include "stg/sg_format.hpp"

#include <deque>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace nshot::stg {
namespace {

struct RawEdge {
  int from;
  int signal;
  bool rising;
  int to;
};

}  // namespace

sg::StateGraph parse_sg(const std::string& text) {
  check_parser_text(text, ".sg text");
  std::istringstream stream(text);
  std::string raw;
  int line_no = 0;
  std::string model_name;
  std::vector<std::pair<std::string, sg::SignalKind>> signals;
  std::map<std::string, int> state_ids;
  std::vector<RawEdge> edges;
  std::optional<int> initial;
  std::map<std::string, std::optional<bool>> declared_init;
  bool in_graph = false;

  auto signal_index = [&signals](const std::string& name) -> std::optional<int> {
    for (std::size_t i = 0; i < signals.size(); ++i)
      if (signals[i].first == name) return static_cast<int>(i);
    return std::nullopt;
  };
  auto state_index = [&state_ids](const std::string& name) {
    const auto [it, inserted] = state_ids.emplace(name, static_cast<int>(state_ids.size()));
    (void)inserted;
    return it->second;
  };

  while (std::getline(stream, raw)) {
    ++line_no;
    const std::string line = strip_comment_and_trim(raw);
    if (line.empty()) continue;
    const std::vector<std::string> tokens = split_ws(line);
    const std::string& head = tokens[0];

    if (head == ".model" || head == ".name") {
      if (tokens.size() >= 2) model_name = tokens[1];
    } else if (head == ".inputs" || head == ".outputs" || head == ".internal") {
      const sg::SignalKind kind =
          head == ".inputs" ? sg::SignalKind::kInput : sg::SignalKind::kNonInput;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        NSHOT_REQUIRE(!signal_index(tokens[i]).has_value(),
                      "line " + std::to_string(line_no) + ": duplicate signal " + tokens[i]);
        signals.emplace_back(tokens[i], kind);
        declared_init.emplace(tokens[i], std::nullopt);
      }
    } else if (head == ".state") {
      NSHOT_REQUIRE(tokens.size() >= 2 && tokens[1] == "graph",
                    "line " + std::to_string(line_no) + ": expected '.state graph'");
      in_graph = true;
    } else if (head == ".marking") {
      std::string joined;
      for (std::size_t i = 1; i < tokens.size(); ++i) joined += tokens[i] + " ";
      const std::size_t open = joined.find('{');
      const std::size_t close = joined.find('}');
      NSHOT_REQUIRE(open != std::string::npos && close != std::string::npos && close > open,
                    "line " + std::to_string(line_no) + ": .marking must be { state }");
      const std::vector<std::string> inside =
          split_ws(joined.substr(open + 1, close - open - 1));
      NSHOT_REQUIRE(inside.size() == 1,
                    "line " + std::to_string(line_no) + ": .marking of an SG names one state");
      NSHOT_REQUIRE(state_ids.contains(inside[0]),
                    "line " + std::to_string(line_no) + ": unknown initial state " + inside[0]);
      initial = state_ids.at(inside[0]);
    } else if (head == ".init") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::size_t eq = tokens[i].find('=');
        NSHOT_REQUIRE(eq != std::string::npos && eq + 1 < tokens[i].size(),
                      "line " + std::to_string(line_no) + ": .init expects name=0|1");
        const std::string name = tokens[i].substr(0, eq);
        NSHOT_REQUIRE(declared_init.contains(name),
                      "line " + std::to_string(line_no) + ": unknown signal " + name);
        declared_init[name] = tokens[i].substr(eq + 1) == "1";
      }
    } else if (head == ".end") {
      break;
    } else if (head[0] == '.') {
      NSHOT_REQUIRE(false, "line " + std::to_string(line_no) + ": unsupported directive " + head);
    } else {
      NSHOT_REQUIRE(in_graph,
                    "line " + std::to_string(line_no) + ": arc outside '.state graph'");
      NSHOT_REQUIRE(tokens.size() == 3,
                    "line " + std::to_string(line_no) + ": expected 'FROM label TO'");
      const std::string& label = tokens[1];
      NSHOT_REQUIRE(label.size() >= 2 && (label.back() == '+' || label.back() == '-'),
                    "line " + std::to_string(line_no) + ": bad transition label " + label);
      const std::string signal_name = label.substr(0, label.size() - 1);
      const auto signal = signal_index(signal_name);
      NSHOT_REQUIRE(signal.has_value(), "line " + std::to_string(line_no) +
                                            ": undeclared signal " + signal_name);
      edges.push_back(
          RawEdge{state_index(tokens[0]), *signal, label.back() == '+', state_index(tokens[2])});
    }
  }

  NSHOT_REQUIRE(!state_ids.empty(), ".sg file declares no states");
  NSHOT_REQUIRE(initial.has_value(), ".sg file has no .marking { initial-state }");

  // Adjacency for the code-reconstruction BFS.
  const int num_states = static_cast<int>(state_ids.size());
  std::vector<std::vector<RawEdge>> out(static_cast<std::size_t>(num_states));
  for (const RawEdge& e : edges) out[static_cast<std::size_t>(e.from)].push_back(e);

  // Initial signal values: declared, or the polarity of the first firing
  // discovered by BFS (consistent SGs fire +x first iff x starts at 0).
  std::vector<std::optional<bool>> init_values(signals.size());
  for (std::size_t i = 0; i < signals.size(); ++i)
    init_values[i] = declared_init.at(signals[i].first);
  {
    std::vector<bool> seen(static_cast<std::size_t>(num_states), false);
    std::deque<int> queue{*initial};
    seen[static_cast<std::size_t>(*initial)] = true;
    while (!queue.empty()) {
      const int s = queue.front();
      queue.pop_front();
      for (const RawEdge& e : out[static_cast<std::size_t>(s)]) {
        auto& value = init_values[static_cast<std::size_t>(e.signal)];
        if (!value) value = !e.rising;
        if (!seen[static_cast<std::size_t>(e.to)]) {
          seen[static_cast<std::size_t>(e.to)] = true;
          queue.push_back(e.to);
        }
      }
    }
    for (int s = 0; s < num_states; ++s)
      NSHOT_REQUIRE(seen[static_cast<std::size_t>(s)],
                    ".sg file has states unreachable from the initial state");
  }
  std::uint64_t initial_code = 0;
  for (std::size_t i = 0; i < signals.size(); ++i) {
    NSHOT_REQUIRE(init_values[i].has_value(), "signal " + signals[i].first +
                                                  " never fires; declare it with .init");
    if (*init_values[i]) initial_code |= (1ULL << i);
  }

  // Propagate codes; detect inconsistent assignments.
  std::vector<std::optional<std::uint64_t>> codes(static_cast<std::size_t>(num_states));
  codes[static_cast<std::size_t>(*initial)] = initial_code;
  std::deque<int> queue{*initial};
  while (!queue.empty()) {
    const int s = queue.front();
    queue.pop_front();
    const std::uint64_t code = *codes[static_cast<std::size_t>(s)];
    for (const RawEdge& e : out[static_cast<std::size_t>(s)]) {
      const std::uint64_t bit = 1ULL << e.signal;
      NSHOT_REQUIRE(((code & bit) != 0) != e.rising,
                    "inconsistent .sg: " + signals[static_cast<std::size_t>(e.signal)].first +
                        (e.rising ? "+" : "-") + " fires from a state where the signal is already " +
                        (e.rising ? "1" : "0"));
      const std::uint64_t next = e.rising ? (code | bit) : (code & ~bit);
      auto& slot = codes[static_cast<std::size_t>(e.to)];
      if (!slot) {
        slot = next;
        queue.push_back(e.to);
      } else {
        NSHOT_REQUIRE(*slot == next,
                      "inconsistent .sg: one state is reached with two different codes");
      }
    }
  }

  sg::StateGraph graph(model_name.empty() ? "unnamed" : model_name);
  for (const auto& [name, kind] : signals) graph.add_signal(name, kind);
  for (int s = 0; s < num_states; ++s) graph.add_state(*codes[static_cast<std::size_t>(s)]);
  for (const RawEdge& e : edges)
    graph.add_edge(e.from, sg::TransitionLabel{e.signal, e.rising}, e.to);
  graph.set_initial(*initial);
  return graph;
}

std::string write_sg(const sg::StateGraph& graph) {
  std::ostringstream out;
  out << ".model " << (graph.name().empty() ? "unnamed" : graph.name()) << "\n";
  // Emit signals in index order (runs of one kind per directive line) so
  // the parser reconstructs the same signal numbering and binary codes.
  int x = 0;
  while (x < graph.num_signals()) {
    const bool input = graph.is_input(x);
    out << (input ? ".inputs" : ".outputs");
    while (x < graph.num_signals() && graph.is_input(x) == input)
      out << " " << graph.signal(x++).name;
    out << "\n";
  }
  out << ".state graph\n";
  for (sg::StateId s = 0; s < graph.num_states(); ++s)
    for (const sg::Edge& e : graph.out_edges(s))
      out << "s" << s << " " << graph.label_name(e.label) << " s" << e.target << "\n";
  out << ".marking { s" << graph.initial() << " }\n";
  // Record every signal's initial value so constant signals roundtrip.
  out << ".init";
  for (int x = 0; x < graph.num_signals(); ++x)
    out << " " << graph.signal(x).name << "=" << (graph.value(graph.initial(), x) ? "1" : "0");
  out << "\n.end\n";
  return out.str();
}

}  // namespace nshot::stg
