// Shared helper for the ablation benches: rebuild a synthesized netlist
// with a per-gate transformation (used to strip the acknowledgement scheme
// or swap the MHS flip-flop for a plain C-element).
#pragma once

#include <functional>
#include <optional>

#include "netlist/netlist.hpp"

namespace nshot::bench_ablation {

/// Copy `source` into a new netlist with identical nets and primary
/// inputs/outputs; every gate is passed through `transform`, which either
/// returns the (possibly modified) gate to insert, or std::nullopt to take
/// over insertion itself via the provided netlist reference (for 1-to-many
/// rewrites).
inline netlist::Netlist transform_netlist(
    const netlist::Netlist& source,
    const std::function<std::optional<netlist::Gate>(const netlist::Gate&, netlist::Netlist&)>&
        transform) {
  netlist::Netlist result(source.name());
  for (netlist::NetId n = 0; n < source.num_nets(); ++n) result.add_net(source.net_name(n));
  for (const netlist::NetId n : source.primary_inputs()) result.add_primary_input(n);
  for (const netlist::NetId n : source.primary_outputs()) result.add_primary_output(n);
  for (const netlist::Gate& gate : source.gates()) {
    std::optional<netlist::Gate> replacement = transform(gate, result);
    if (replacement) result.add_gate(std::move(*replacement));
  }
  return result;
}

/// Find or create a constant-1 primary input rail.
inline netlist::NetId const_one(netlist::Netlist& nl) {
  if (const auto existing = nl.find_net("const1")) return *existing;
  const netlist::NetId net = nl.add_net("const1");
  nl.add_primary_input(net);
  return net;
}

}  // namespace nshot::bench_ablation
