file(REMOVE_RECURSE
  "libnshot_logic.a"
)
