// Gate library: the cell set assumed by the paper's architecture and the
// area/delay model used for all Table-2 style reporting.
//
// Basic gates are AND/OR with optional input inversion bubbles (the paper
// assumes AND gates with input inversions are available as basic gates, so
// the SOP logic never produces 0-1-0 static hazards), inverters/buffers,
// and the storage elements: C-element, RS latch, the MHS flip-flop and a
// delay line.
//
// Delay model (documented in DESIGN.md): every simple gate level costs 1.2
// time units in reports; storage elements (MHS flip-flop, C-element) cost
// two levels (2.4).  This reproduces the level-quantized delays visible in
// the paper's Table 2 (3.6 / 4.8 / 6.0 ...).  For simulation, each gate
// additionally carries a [min_delay, max_delay] interval from which the
// event-driven simulator samples arbitrary delays (pure delay model).
#pragma once

#include <string>

namespace nshot::gatelib {

enum class GateType {
  kAnd,         // AND with optional per-input inversions
  kOr,          // OR with optional per-input inversions
  kInv,         // inverter
  kBuf,         // buffer / wire
  kCElement,    // Muller C-element (storage)
  kRsLatch,     // set/reset latch (storage; set dominant)
  kMhsFlipFlop, // the paper's Master/Hazard-filter/Slave flip-flop (storage)
  kDelayLine,   // transport delay element (delay set per instance)
  kInertialDelay, // inertial delay element: absorbs pulses shorter than its delay
};

/// True for elements whose output is a state-holding node (level analysis
/// treats their outputs as path sources).
bool is_storage(GateType type);

const char* gate_type_name(GateType type);

/// Simulation timing interval for a gate.
struct GateTiming {
  double min_delay = 0.0;
  double max_delay = 0.0;
};

/// The standard library used throughout the reproduction.
class GateLibrary {
 public:
  static const GateLibrary& standard();

  /// Layout area of a gate with `fanin` inputs (library units).
  double area(GateType type, int fanin) const;

  /// Simulation delay interval.
  GateTiming timing(GateType type, int fanin) const;

  /// Report-model delay of one instance (level-quantized; see header).
  double report_delay(GateType type) const;

  /// Maximum fanin of a single AND/OR gate; wider functions are decomposed
  /// into trees by the netlist builders.
  int max_fanin() const { return 4; }

  /// MHS flip-flop threshold ω: input pulses shorter than this are absorbed
  /// by the master/filter stages (Figure 4).
  double mhs_threshold() const { return 0.3; }

  /// MHS flip-flop response τ: a super-threshold excitation appears at the
  /// output translated forward by this delay (Figure 4).
  double mhs_response() const { return 2.4; }

  /// One report level (time units).
  double level_delay() const { return 1.2; }
};

}  // namespace nshot::gatelib
