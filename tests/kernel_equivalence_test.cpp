// Kernel equivalence tests: every compiled / hashed / sorted-vector hot
// path introduced by the kernel layer must be byte-identical to the
// original reference implementation it replaced.  The reference paths are
// compiled in behind options flags (ConformanceOptions::reference_kernels,
// StressOptions::reference_kernels, ExactOptions inherited reference_kernels,
// ReachabilityOptions::reference_maps, compute_regions_reference), so the
// comparison runs over randomly generated controllers in one binary.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bench_suite/generators.hpp"
#include "csc/csc_solver.hpp"
#include "faults/stress.hpp"
#include "logic/exact.hpp"
#include "logic/verify.hpp"
#include "nshot/synthesis.hpp"
#include "nshot/trigger.hpp"
#include "sg/properties.hpp"
#include "sg/regions.hpp"
#include "sim/conformance.hpp"
#include "stg/g_format.hpp"
#include "stg/reachability.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nshot {
namespace {

/// Random staged-cycle controller (same generator family as
/// parallel_determinism_test.cpp).
std::string random_staged_cycle(Rng& rng, int index) {
  const int num_signals = 3 + static_cast<int>(rng.next_below(6));
  std::vector<std::string> names, inputs, outputs;
  for (int i = 0; i < num_signals; ++i) {
    const std::string name = "x" + std::to_string(i);
    names.push_back(name);
    (rng.next_bool(0.5) ? inputs : outputs).push_back(name);
  }
  if (inputs.empty()) {
    inputs.push_back(outputs.back());
    outputs.pop_back();
  }
  if (outputs.empty()) {
    outputs.push_back(inputs.back());
    inputs.pop_back();
  }
  std::vector<std::vector<std::string>> rising;
  std::vector<std::string> pool = names;
  while (!pool.empty()) {
    const std::size_t take = 1 + rng.next_below(std::min<std::size_t>(pool.size(), 3));
    std::vector<std::string> stage;
    for (std::size_t i = 0; i < take; ++i) {
      stage.push_back(pool.back() + "+");
      pool.pop_back();
    }
    rising.push_back(std::move(stage));
  }
  std::vector<std::vector<std::string>> stages = rising;
  for (const auto& stage : rising) {
    std::vector<std::string> falling;
    for (const std::string& t : stage) falling.push_back(t.substr(0, t.size() - 1) + "-");
    stages.push_back(std::move(falling));
  }
  return bench_suite::staged_cycle_g("keq" + std::to_string(index), inputs, outputs, stages);
}

std::string random_g_text(int seed) {
  Rng rng(static_cast<std::uint64_t>(seed) * 0x9E3779B9ULL + 17);
  return random_staged_cycle(rng, seed);
}

struct Generated {
  sg::StateGraph graph;
  core::SynthesisResult result;
};

std::optional<Generated> generate(int seed) {
  sg::StateGraph graph = bench_suite::build_g(random_g_text(seed));
  if (graph.noninput_signals().empty()) return std::nullopt;
  try {
    core::SynthesisResult result = core::synthesize(graph);
    return Generated{std::move(graph), std::move(result)};
  } catch (const Error&) {
    return std::nullopt;  // draw is not implementable (e.g. CSC conflict)
  }
}

std::string conformance_fingerprint(const sim::ConformanceReport& r) {
  std::string out = std::to_string(r.runs) + "/" + std::to_string(r.external_transitions) + "/" +
                    std::to_string(r.internal_toggles) + "/" + std::to_string(r.absorbed_pulses) +
                    "/" + std::to_string(r.simulated_time) + "/" + std::to_string(r.deadlocks) +
                    "/" + std::to_string(r.budget_exhausted);
  for (const sim::ConformanceViolation& v : r.violations)
    out += "|" + std::to_string(v.seed) + "@" + std::to_string(v.time) + ":" + v.description;
  return out;
}

/// Full structural fingerprint of a state graph: states with codes and
/// names, every edge, the initial state, signal table.
std::string sg_fingerprint(const sg::StateGraph& g) {
  std::string out = "init=" + std::to_string(g.initial()) + ";";
  for (int i = 0; i < g.num_signals(); ++i)
    out += g.signal(i).name + (g.is_input(i) ? "?" : "!") + ",";
  for (sg::StateId s = 0; s < g.num_states(); ++s) {
    out += "\n" + std::to_string(s) + ":" + g.state_name(s) + "=" + std::to_string(g.code(s));
    for (const sg::Edge& e : g.out_edges(s))
      out += " --" + g.label_name(e.label) + "--> " + std::to_string(e.target);
  }
  return out;
}

class KernelEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(KernelEquivalenceTest, ConformanceCompiledMatchesReference) {
  const auto gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "all-input controller";

  sim::ConformanceOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam()) * 13 + 7;
  options.runs = 10;
  options.max_transitions = 60;

  options.reference_kernels = true;
  const sim::ConformanceReport reference =
      sim::check_conformance(gen->graph, gen->result.circuit, options);
  options.reference_kernels = false;
  const sim::ConformanceReport compiled =
      sim::check_conformance(gen->graph, gen->result.circuit, options);

  EXPECT_EQ(conformance_fingerprint(reference), conformance_fingerprint(compiled));
}

TEST_P(KernelEquivalenceTest, SimulatorReuseMatchesFreshConstruction) {
  // One resettable Simulator reused across runs must reproduce what a
  // fresh Simulator produces for each run — reset() has to be equivalent
  // to reconstruction.
  const auto gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "all-input controller";

  const sim::CompiledNetlist compiled(gen->result.circuit, gatelib::GateLibrary::standard());
  const sim::SpecBinding binding(gen->graph, gen->result.circuit);
  sim::Simulator reuse(compiled, sim::SimulatorOptions{});

  for (int r = 0; r < 4; ++r) {
    sim::ClosedLoopConfig config;
    config.sim.seed = run_seed(static_cast<std::uint64_t>(GetParam()) * 13 + 7, r);
    config.sim.randomize_delays = true;
    config.max_transitions = 60;
    const sim::ConformanceReport fresh =
        sim::run_closed_loop(gen->graph, gen->result.circuit, config);
    const sim::ConformanceReport reused =
        sim::run_closed_loop(gen->graph, binding, compiled, config, nullptr, &reuse);
    EXPECT_EQ(conformance_fingerprint(fresh), conformance_fingerprint(reused)) << "run " << r;
  }
}

TEST_P(KernelEquivalenceTest, StressJsonCompiledMatchesReference) {
  const auto gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "all-input controller";

  faults::StressOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam()) * 5 + 3;
  options.margin_runs = 3;
  options.run.max_transitions = 60;
  options.adversarial.restarts = 2;
  options.adversarial.iterations = 15;
  options.adversarial.run.max_transitions = 60;

  options.reference_kernels = true;
  const std::string reference = faults::stress_report_json(
      faults::run_stress(gen->graph, gen->result.circuit, "keq", options));
  options.reference_kernels = false;
  const std::string compiled = faults::stress_report_json(
      faults::run_stress(gen->graph, gen->result.circuit, "keq", options));

  EXPECT_EQ(reference, compiled);
}

TEST_P(KernelEquivalenceTest, ExactMinimizeMatchesReferenceSets) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 29 + 11);
  const int num_inputs = 3 + static_cast<int>(rng.next_below(5));
  const int num_outputs = 1 + static_cast<int>(rng.next_below(3));
  logic::TwoLevelSpec spec(num_inputs, num_outputs);
  const std::uint64_t space = 1ULL << num_inputs;
  for (int o = 0; o < num_outputs; ++o) {
    for (std::uint64_t m = 0; m < space; ++m) {
      const double roll = rng.next_double(0.0, 1.0);
      if (roll < 0.35)
        spec.add_on(o, m);
      else if (roll < 0.75)
        spec.add_off(o, m);
    }
  }
  spec.normalize();

  logic::ExactOptions options;
  options.reference_kernels = true;
  const logic::Cover reference = logic::exact_minimize(spec, options);
  const auto reference_primes = logic::generate_primes(spec, 0, options);
  options.reference_kernels = false;
  const logic::Cover hashed = logic::exact_minimize(spec, options);
  const auto hashed_primes = logic::generate_primes(spec, 0, options);

  EXPECT_EQ(reference.to_string(), hashed.to_string());
  ASSERT_EQ(reference_primes.has_value(), hashed_primes.has_value());
  if (reference_primes) {
    ASSERT_EQ(reference_primes->size(), hashed_primes->size());
    for (std::size_t i = 0; i < reference_primes->size(); ++i)
      EXPECT_EQ((*reference_primes)[i].to_string(), (*hashed_primes)[i].to_string()) << i;
  }
}

TEST_P(KernelEquivalenceTest, ReachabilityMatchesReferenceMaps) {
  const stg::Stg net = stg::parse_g(random_g_text(GetParam()));

  stg::ReachabilityOptions options;
  options.reference_maps = true;
  const sg::StateGraph reference = stg::build_state_graph(net, options);
  const std::vector<bool> reference_values = stg::infer_initial_values(net, options);
  const std::vector<stg::TransitionId> reference_dead = stg::dead_transitions(net, options);
  options.reference_maps = false;
  const sg::StateGraph hashed = stg::build_state_graph(net, options);
  const std::vector<bool> hashed_values = stg::infer_initial_values(net, options);
  const std::vector<stg::TransitionId> hashed_dead = stg::dead_transitions(net, options);

  EXPECT_EQ(sg_fingerprint(reference), sg_fingerprint(hashed));
  EXPECT_EQ(reference_values, hashed_values);
  EXPECT_EQ(reference_dead, hashed_dead);
}

TEST(KernelEquivalenceFixedTest, ReachabilityWithDummiesMatchesReferenceMaps) {
  // Dummy saturation walks its own marking map; exercise it explicitly.
  const stg::Stg net = stg::parse_g(
      ".model dum\n.inputs a\n.outputs b\n.dummy d\n.graph\n"
      "a+ d\nd b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n");
  stg::ReachabilityOptions options;
  options.reference_maps = true;
  const sg::StateGraph reference = stg::build_state_graph(net, options);
  options.reference_maps = false;
  const sg::StateGraph hashed = stg::build_state_graph(net, options);
  EXPECT_EQ(sg_fingerprint(reference), sg_fingerprint(hashed));
}

TEST_P(KernelEquivalenceTest, RegionsMatchReference) {
  const auto gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "all-input controller";

  for (const sg::SignalId a : gen->graph.noninput_signals()) {
    const sg::SignalRegions fast = sg::compute_regions(gen->graph, a);
    const sg::SignalRegions reference = sg::compute_regions_reference(gen->graph, a);
    EXPECT_EQ(reference.to_string(gen->graph), fast.to_string(gen->graph)) << "signal " << a;
    for (const sg::ExcitationRegion& er : fast.regions) {
      EXPECT_TRUE(sg::verify_output_trapping(gen->graph, er));
      EXPECT_TRUE(sg::verify_trigger_reachability(gen->graph, er));
    }
  }
}

TEST_P(KernelEquivalenceTest, CodingChecksMatchOrderedReference) {
  // check_csc / check_usc / detonant_states run over sorted vectors,
  // hashed maps and excitation bit planes; compare against the compiled-in
  // ordered-container reference implementations of the originals.
  const auto gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "all-input controller";
  const sg::StateGraph& g = gen->graph;

  EXPECT_EQ(sg::check_usc_reference(g).violations, sg::check_usc(g).violations);
  EXPECT_EQ(sg::check_csc_reference(g).violations, sg::check_csc(g).violations);
  EXPECT_EQ(sg::count_csc_conflicts_reference(g), sg::count_csc_conflicts(g));
  EXPECT_EQ(sg::count_csc_conflicts(g), sg::check_csc(g).violations.size());
  for (const sg::SignalId a : g.noninput_signals())
    EXPECT_EQ(sg::detonant_states_reference(g, a), sg::detonant_states(g, a)) << "signal " << a;
}

TEST_P(KernelEquivalenceTest, TriggerEnforcementMatchesReferenceMembership) {
  // Trigger-cube membership was rewritten from a cube x codes minterm scan
  // to one supercube-containment test per cube; the repair decisions and
  // the resulting cover must be identical.  Thin the cover cube by cube so
  // the not-covered repair path runs too.
  const auto gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "all-input controller";
  const std::vector<sg::SignalRegions> regions = sg::compute_all_regions(gen->graph);

  auto report_fingerprint = [&](const core::TriggerReport& r) {
    std::string out = std::to_string(r.cubes_added);
    for (const core::TriggerIssue& issue : r.issues) out += "|" + issue.describe(gen->graph);
    return out;
  };

  const std::size_t cover_size = gen->result.cover.size();
  for (std::size_t drop = 0; drop <= cover_size; ++drop) {
    logic::Cover thinned = gen->result.cover;
    if (drop < cover_size) thinned.erase(drop);

    logic::Cover reference_cover = thinned;
    logic::Cover fast_cover = thinned;
    core::TriggerOptions options;
    options.reference_kernels = true;
    const core::TriggerReport reference = core::enforce_trigger_requirement(
        gen->graph, regions, gen->result.derived, reference_cover, options);
    options.reference_kernels = false;
    const core::TriggerReport fast = core::enforce_trigger_requirement(
        gen->graph, regions, gen->result.derived, fast_cover, options);

    EXPECT_EQ(report_fingerprint(reference), report_fingerprint(fast)) << "drop " << drop;
    EXPECT_EQ(reference_cover.to_string(), fast_cover.to_string()) << "drop " << drop;
  }
}

TEST_P(KernelEquivalenceTest, VerifyCoverMatchesReference) {
  // verify_cover was rewritten bit-sliced over code planes; both the ok
  // verdict and the first-violation diagnostic must match the
  // minterm-at-a-time reference, including on deliberately broken covers.
  const auto gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "all-input controller";
  const logic::TwoLevelSpec& spec = gen->result.derived.spec;

  auto compare = [&spec](const logic::Cover& cover, const std::string& what) {
    const logic::VerifyResult reference = logic::verify_cover_reference(spec, cover);
    const logic::VerifyResult fast = logic::verify_cover(spec, cover);
    EXPECT_EQ(reference.ok, fast.ok) << what;
    EXPECT_EQ(reference.message, fast.message) << what;
  };

  compare(gen->result.cover, "intact cover");
  for (std::size_t drop = 0; drop < gen->result.cover.size(); ++drop) {
    logic::Cover broken = gen->result.cover;
    broken.erase(drop);
    compare(broken, "cover without cube " + std::to_string(drop));
  }
  // A universal cube on every output trips the off-set check.
  logic::Cover greedy = gen->result.cover;
  greedy.add(logic::Cube::full(spec.num_inputs(),
                               (spec.num_outputs() >= 64)
                                   ? ~0ULL
                                   : ((1ULL << spec.num_outputs()) - 1)));
  compare(greedy, "cover with a universal cube");
}

TEST_P(KernelEquivalenceTest, CscSolverMatchesReferenceKernels) {
  // The solver's conflict counting (and the reachability it drives) runs
  // count-only and mask-compiled; the chosen insertions and the final
  // graph must be identical to the reference-kernel run.
  const stg::Stg net = stg::parse_g(random_g_text(GetParam()));

  csc::CscSolveOptions options;
  options.max_signals = 2;
  options.reference_kernels = true;
  std::optional<csc::CscSolveResult> reference;
  try {
    reference = csc::solve_csc(net, options);
  } catch (const Error&) {
    GTEST_SKIP() << "draw is not a consistent semi-modular specification";
  }
  options.reference_kernels = false;
  const std::optional<csc::CscSolveResult> fast = csc::solve_csc(net, options);

  ASSERT_EQ(reference.has_value(), fast.has_value());
  if (reference) {
    EXPECT_EQ(reference->signals_added, fast->signals_added);
    EXPECT_EQ(reference->insertions, fast->insertions);
    EXPECT_EQ(sg_fingerprint(reference->graph), sg_fingerprint(fast->graph));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelEquivalenceTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace nshot
