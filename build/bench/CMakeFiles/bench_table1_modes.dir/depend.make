# Empty dependencies file for bench_table1_modes.
# This may be replaced when dependencies are built.
