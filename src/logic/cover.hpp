// A cover: list of cubes implementing a multi-output two-level function.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logic/cube.hpp"

namespace nshot::logic {

/// An ordered list of product terms over a common input/output space.
class Cover {
 public:
  Cover(int num_inputs, int num_outputs);

  int num_inputs() const { return num_inputs_; }
  int num_outputs() const { return num_outputs_; }

  void add(const Cube& cube);
  void clear() { cubes_.clear(); }

  std::size_t size() const { return cubes_.size(); }
  bool empty() const { return cubes_.empty(); }
  const Cube& operator[](std::size_t i) const { return cubes_[i]; }
  Cube& operator[](std::size_t i) { return cubes_[i]; }
  auto begin() const { return cubes_.begin(); }
  auto end() const { return cubes_.end(); }

  void erase(std::size_t i) { cubes_.erase(cubes_.begin() + static_cast<std::ptrdiff_t>(i)); }

  /// True if some cube feeding output `o` covers minterm `code`.
  bool covers(std::uint64_t code, int o) const;

  /// Indices of cubes feeding output `o` that cover minterm `code`.
  std::vector<std::size_t> covering_cubes(std::uint64_t code, int o) const;

  /// Total number of input literals over all cubes.
  int literal_count() const;

  /// Number of distinct product terms used by output `o`.
  int cube_count_for_output(int o) const;

  /// Drop cubes whose output part is empty and cubes contained in another
  /// cube of the cover; sorts cubes into a canonical order.
  void remove_contained();

  std::string to_string() const;

 private:
  int num_inputs_;
  int num_outputs_;
  std::vector<Cube> cubes_;
};

}  // namespace nshot::logic
