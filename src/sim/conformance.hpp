// Closed-loop conformance and external hazard-freeness checking.
//
// The environment automaton walks the state graph: it drives the circuit's
// input nets with transitions the SG currently enables (after arbitrary
// reaction delays — the paper's environment assumption), and observes every
// change of a non-input net.  A non-input change that the specification
// does not enable in the current state — including any glitch pulse — is a
// conformance violation; absence of progress while non-input transitions
// are enabled is a deadlock (e.g. an unsatisfied trigger requirement
// starving the MHS flip-flop).
//
// Internal SOP nets are expected to glitch (that is the whole point of the
// architecture); their toggle activity is reported as `internal_toggles`
// so benches can show hazardous-inside / clean-outside behaviour.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sg/state_graph.hpp"
#include "sim/event_sim.hpp"

namespace nshot::sim {

struct ConformanceOptions {
  std::uint64_t seed = 1;
  int runs = 20;                 // independent delay samples
  int max_transitions = 200;     // observable transitions per run
  double input_delay_min = 0.1;  // environment reaction interval
  double input_delay_max = 12.0;
  double time_limit = 1e6;
  /// Fundamental-mode style environment: wait for the circuit to become
  /// quiescent before committing the next input (the paper's methods do
  /// NOT need this — the default environment "can react immediately" —
  /// but it is useful for comparing against fundamental-mode assumptions
  /// [20, 8]).
  bool fundamental_mode = false;
};

struct ConformanceViolation {
  std::uint64_t seed = 0;
  double time = 0.0;
  std::string description;
};

struct ConformanceReport {
  int runs = 0;
  long external_transitions = 0;  // spec-conformant observable transitions
  long internal_toggles = 0;      // toggles on non-observable nets
  long absorbed_pulses = 0;       // sub-threshold pulses the MHS filtered
  double simulated_time = 0.0;    // total simulated time over all runs
  int deadlocks = 0;
  std::vector<ConformanceViolation> violations;

  /// Average simulated time per observable transition (dynamic cycle-time
  /// proxy); 0 when nothing fired.
  double time_per_transition() const {
    return external_transitions > 0 ? simulated_time / external_transitions : 0.0;
  }

  bool clean() const { return violations.empty() && deadlocks == 0; }
  std::string summary() const;
};

/// Run `options.runs` randomized-delay closed-loop simulations of `circuit`
/// against `spec`.  The circuit's primary input nets must be named after
/// the SG input signals and the observable non-input nets after the SG
/// non-input signals (all synthesizers in this repository follow that
/// convention).
ConformanceReport check_conformance(const sg::StateGraph& spec,
                                    const netlist::Netlist& circuit,
                                    const ConformanceOptions& options = {});

/// Net initial values for simulating `circuit` from the SG initial state:
/// signal rails (q and qb), const0/const1, and feedback-cut state nets.
std::vector<std::pair<netlist::NetId, bool>> initial_net_values(
    const sg::StateGraph& spec, const netlist::Netlist& circuit);

/// Run one closed-loop simulation and return its full waveform as VCD
/// text (see sim/vcd.hpp) together with the conformance outcome.
struct TracedRun {
  std::string vcd;
  ConformanceReport report;
};
TracedRun record_vcd_trace(const sg::StateGraph& spec, const netlist::Netlist& circuit,
                           std::uint64_t seed = 1, int max_transitions = 100);

}  // namespace nshot::sim
