// Word-parallel state-set engine.
//
// Region, coding and trigger analyses are predicates over sets of SG
// states.  A StateSet packs 64 states per machine word so that set
// algebra (intersection, union, difference, complement), cardinality and
// membership run as tight word loops instead of node-at-a-time container
// operations; iteration always visits members in ascending StateId order,
// which is exactly the order the original ordered-container (std::set /
// std::map) implementations produced — so analyses rewritten on top of
// StateSet stay byte-identical to their `*_reference` oracles.
//
// The free functions at the bottom build the bit planes the analyses
// start from: per-signal value planes (bit s of plane x = value of signal
// x in state s) and per-signal excitation planes (bit s set iff some
// transition of x is enabled in s).  Building a plane is one pass over
// the graph; afterwards every value / excitation test in a flood or scan
// is a single bit probe instead of an out-edge scan.
//
// Every builder takes a `jobs` knob (default 1 = serial, the seed-era
// behaviour).  The parallel path chunks the STATE range into 64-aligned
// word ranges dispatched through exec::parallel_for_chunks: state s only
// ever touches bit (s & 63) of word (s >> 6) of its planes, so 64-aligned
// chunks write disjoint words and the result is byte-identical at any
// worker count — the same by-index discipline the sweep engine uses, with
// the word as the merge unit.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "sg/state_graph.hpp"

namespace nshot::sg {

class StateSet {
 public:
  StateSet() = default;
  explicit StateSet(std::size_t universe)
      : universe_(universe), words_((universe + 63) / 64, 0) {}

  std::size_t universe() const { return universe_; }
  std::size_t num_words() const { return words_.size(); }

  void insert(StateId s) { words_[word_index(s)] |= bit(s); }
  void erase(StateId s) { words_[word_index(s)] &= ~bit(s); }
  bool contains(StateId s) const { return (words_[word_index(s)] >> (s & 63)) & 1ULL; }

  /// Insert; true if the state was not yet a member (std::set::insert).
  bool insert_new(StateId s) {
    const std::uint64_t b = bit(s);
    std::uint64_t& w = words_[word_index(s)];
    if (w & b) return false;
    w |= b;
    return true;
  }

  void clear();

  StateSet& operator&=(const StateSet& other);
  StateSet& operator|=(const StateSet& other);
  /// this \ other (word-parallel and-not).
  StateSet& subtract(const StateSet& other);
  /// Complement within the universe (the tail beyond `universe` stays 0).
  void complement();

  std::size_t count() const;
  bool empty() const;
  bool intersects(const StateSet& other) const;
  /// Superset test: every member of `other` is a member of this set.
  bool contains_all(const StateSet& other) const;

  friend bool operator==(const StateSet& a, const StateSet& b) {
    return a.universe_ == b.universe_ && a.words_ == b.words_;
  }

  /// Visit members in ascending StateId order.
  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits) {
        visit(static_cast<StateId>(w * 64 + static_cast<std::size_t>(std::countr_zero(bits))));
        bits &= bits - 1;
      }
    }
  }

  /// Members in ascending order — the iteration order of the std::set the
  /// reference implementations use.
  std::vector<StateId> to_vector() const;

 private:
  static std::size_t word_index(StateId s) { return static_cast<std::size_t>(s) >> 6; }
  static std::uint64_t bit(StateId s) { return 1ULL << (s & 63); }

  std::size_t universe_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Bit plane of signal x's value: state s is a member iff bit x of s's
/// code is 1.
StateSet value_set(const StateGraph& sg, SignalId x, int jobs = 1);

/// Bit plane of signal x's excitation: state s is a member iff some
/// transition of x is enabled in s.
StateSet excited_set(const StateGraph& sg, SignalId x, int jobs = 1);

/// Value planes of every signal in a single state sweep (plane x ==
/// value_set(sg, x)).
std::vector<StateSet> all_value_sets(const StateGraph& sg, int jobs = 1);

/// Excitation planes of every signal in a single edge sweep.
std::vector<StateSet> all_excited_sets(const StateGraph& sg, int jobs = 1);

}  // namespace nshot::sg
