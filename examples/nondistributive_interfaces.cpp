// Non-distributive industrial interface circuits (Section V, second part
// of Table 2): the pmcm / combuf / sing2dual reconstructions.
//
// This example shows the practical gap the paper closes: for every one of
// these specifications the monotonous-cover (SYN-like) and bounded-delay
// (SIS-like) methods report "(1) non-distributive SG" and produce nothing,
// while the N-SHOT flow synthesizes a circuit that passes closed-loop
// hazard-free validation.
#include <cstdio>

#include "baselines/baselines.hpp"
#include "bench_suite/benchmarks.hpp"
#include "nshot/synthesis.hpp"
#include "sg/properties.hpp"
#include "sim/conformance.hpp"

int main() {
  using namespace nshot;
  const char* names[] = {"pmcm1", "pmcm2", "combuf1", "combuf2", "sing2dual-inp",
                         "sing2dual-out"};

  std::printf("%-15s %7s %10s | %-22s %-22s | %12s %7s\n", "circuit", "states", "detonant",
              "sis-like", "syn-like", "n-shot area", "conf");
  bool all_clean = true;
  for (const char* name : names) {
    const sg::StateGraph g = bench_suite::build_benchmark(name);

    // Count detonant states over all non-input signals (Definition 3).
    int detonant = 0;
    for (const sg::SignalId a : g.noninput_signals())
      detonant += static_cast<int>(sg::detonant_states(g, a).size());

    const auto sis = baselines::synthesize_sis_like(g);
    const auto syn = baselines::synthesize_syn_like(g);
    const core::SynthesisResult nshot = core::synthesize(g);

    sim::ConformanceOptions options;
    options.runs = 10;
    options.max_transitions = 120;
    const sim::ConformanceReport report = sim::check_conformance(g, nshot.circuit, options);
    all_clean = all_clean && report.clean();

    std::printf("%-15s %7d %10d | %-22s %-22s | %12.0f %7s\n", name, g.num_states(), detonant,
                sis.ok() ? "ok" : baselines::failure_text(*sis.failure).c_str(),
                syn.ok() ? "ok" : baselines::failure_text(*syn.failure).c_str(), nshot.stats.area,
                report.clean() ? "clean" : "FAIL");
  }
  std::printf("\nall N-SHOT circuits externally hazard-free: %s\n", all_clean ? "yes" : "NO");
  return all_clean ? 0 : 1;
}
