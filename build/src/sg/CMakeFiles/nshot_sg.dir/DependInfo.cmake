
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sg/dot.cpp" "src/sg/CMakeFiles/nshot_sg.dir/dot.cpp.o" "gcc" "src/sg/CMakeFiles/nshot_sg.dir/dot.cpp.o.d"
  "/root/repo/src/sg/properties.cpp" "src/sg/CMakeFiles/nshot_sg.dir/properties.cpp.o" "gcc" "src/sg/CMakeFiles/nshot_sg.dir/properties.cpp.o.d"
  "/root/repo/src/sg/regions.cpp" "src/sg/CMakeFiles/nshot_sg.dir/regions.cpp.o" "gcc" "src/sg/CMakeFiles/nshot_sg.dir/regions.cpp.o.d"
  "/root/repo/src/sg/state_graph.cpp" "src/sg/CMakeFiles/nshot_sg.dir/state_graph.cpp.o" "gcc" "src/sg/CMakeFiles/nshot_sg.dir/state_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nshot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
