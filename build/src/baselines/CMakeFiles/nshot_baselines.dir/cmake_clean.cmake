file(REMOVE_RECURSE
  "CMakeFiles/nshot_baselines.dir/baselines_common.cpp.o"
  "CMakeFiles/nshot_baselines.dir/baselines_common.cpp.o.d"
  "CMakeFiles/nshot_baselines.dir/complex_gate.cpp.o"
  "CMakeFiles/nshot_baselines.dir/complex_gate.cpp.o.d"
  "CMakeFiles/nshot_baselines.dir/sis_like.cpp.o"
  "CMakeFiles/nshot_baselines.dir/sis_like.cpp.o.d"
  "CMakeFiles/nshot_baselines.dir/syn_like.cpp.o"
  "CMakeFiles/nshot_baselines.dir/syn_like.cpp.o.d"
  "libnshot_baselines.a"
  "libnshot_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nshot_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
