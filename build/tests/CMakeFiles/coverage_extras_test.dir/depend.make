# Empty dependencies file for coverage_extras_test.
# This may be replaced when dependencies are built.
