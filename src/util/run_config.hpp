// Shared run configuration: the seed / worker / batching / reference-path
// knobs that every sweep-shaped Options struct in this codebase used to
// duplicate (SynthesisOptions, TriggerOptions, ConformanceOptions,
// StressOptions, AdversarialOptions, ExactOptions).  Those structs now
// inherit RunConfig, so the old field spellings (`options.jobs`,
// `options.seed`, ...) keep compiling unchanged while generic drivers
// (nshot::Pipeline, the CLI) can set the common knobs once and slice them
// into every stage.
#pragma once

#include <cstdint>

namespace nshot {

struct RunConfig {
  /// Base RNG seed of the sweep.  Every trial r derives its own stream
  /// from run_seed(seed, r) (util/rng.hpp), so a sweep is a bag of
  /// index-reproducible work items.
  std::uint64_t seed = 1;

  /// Worker threads (0 = exec::default_jobs()).  Results are always
  /// merged by item index, so every jobs value produces byte-identical
  /// output.
  int jobs = 0;

  /// Work items batched per scheduled task so per-thread scratch (e.g. a
  /// resettable Simulator) is reused across a chunk; <= 0 picks a batch
  /// size automatically.  Chunk boundaries are never part of the
  /// determinism contract.
  int grain = 0;

  /// Route hot paths through their uncompiled/ordered reference
  /// implementations — for kernel-equivalence tests and benchmarking
  /// only.  This is the single spelling: the narrower per-struct aliases
  /// (TriggerOptions::reference_membership, ExactOptions::reference_sets)
  /// shipped one release of deprecation warnings and were removed.
  bool reference_kernels = false;

  /// Freeze the per-trial compiled driver of PR 3 (binary-heap event
  /// queue, per-trial combinational settle, std::function observer
  /// dispatch) instead of the batched calendar-queue engine.  A mid-level
  /// oracle between reference_kernels (per-trial compile) and the default
  /// batched path; bench_kernels uses it as the pre-batch leg its
  /// speedups are measured against.  Ignored when reference_kernels is
  /// set.
  bool reference_driver = false;

  /// Cross-check the optimized kernels against their reference oracles
  /// where a runtime comparison exists (currently the conformance sweep):
  /// both paths run and any divergence raises Error(kKernelMismatch),
  /// which Pipeline::run_checked degrades into a reference-kernel retry.
  /// Roughly doubles the cost of the checked stages; off by default.
  bool verify_kernels = false;

  /// Whole-run wall-clock budget in milliseconds (0 = unbounded).  The
  /// driver (Pipeline::run_checked, BatchRunner) installs a CancelToken +
  /// Watchdog; overruns surface as clean Error(kDeadlineExceeded) results,
  /// never as aborts.
  double deadline_ms = 0;

  /// Per-stage budget in milliseconds (0 = unbounded); each stage gets
  /// min(stage_deadline_ms, remaining run budget).
  double stage_deadline_ms = 0;

  /// Copy the shared knobs from another config (used by drivers that fan
  /// one RunConfig out into per-stage Options structs).
  void apply_run_config(const RunConfig& shared) { *this = shared; }
};

}  // namespace nshot
