// Compiled form of a netlist for the simulation hot path: everything a
// Simulator trial needs that depends only on the netlist (not on the seed)
// is flattened once here and shared — read-only — by every trial.
//
//  * fanout in CSR form (one offsets array + one flat gate array) instead
//    of a vector-of-vectors rebuilt per Simulator;
//  * packed gate descriptors with a flat input array and per-input
//    inversion bytes, so eval_combinational walks contiguous memory
//    instead of chasing std::vector<NetId>/std::vector<bool> per gate;
//  * a per-net driver table (Netlist::driver is a linear scan over gates);
//  * the DelaySpace, so per-trial delay sampling does not re-derive the
//    per-gate bounds.
//
// A CompiledNetlist is immutable after construction and safe to share
// across threads; the sweeps in sim/conformance.cpp and src/faults compile
// one per campaign and run thousands of trials against it.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/delay_space.hpp"

namespace nshot::sim {

/// Flattened gate descriptor.  Inputs live in the shared flat arrays
/// [first_input, first_input + num_inputs); out1 is -1 except for the MHS
/// flip-flop (q, qb).
struct CompiledGate {
  gatelib::GateType type = gatelib::GateType::kBuf;
  bool feedback_cut = false;
  std::uint32_t first_input = 0;
  std::uint32_t num_inputs = 0;
  netlist::NetId out0 = -1;
  netlist::NetId out1 = -1;
};

class CompiledNetlist {
 public:
  CompiledNetlist(const netlist::Netlist& netlist, const gatelib::GateLibrary& lib);

  const netlist::Netlist& netlist() const { return *netlist_; }
  const gatelib::GateLibrary& lib() const { return *lib_; }
  const DelaySpace& delay_space() const { return space_; }

  int num_nets() const { return static_cast<int>(fanout_offset_.size()) - 1; }
  int num_gates() const { return static_cast<int>(gates_.size()); }

  const CompiledGate& gate(netlist::GateId g) const {
    return gates_[static_cast<std::size_t>(g)];
  }

  /// Gates reading `net`, in gate-id order (identical to the fanout lists
  /// the Simulator used to build per construction).
  std::span<const netlist::GateId> fanout(netlist::NetId net) const {
    const std::size_t begin = fanout_offset_[static_cast<std::size_t>(net)];
    const std::size_t end = fanout_offset_[static_cast<std::size_t>(net) + 1];
    return {fanout_gate_.data() + begin, end - begin};
  }

  /// Input net i of gate `g` (0-based within the gate).
  netlist::NetId input(const CompiledGate& g, std::size_t i) const {
    return input_net_[g.first_input + i];
  }
  bool input_inverted(const CompiledGate& g, std::size_t i) const {
    return input_inverted_[g.first_input + i] != 0;
  }

  /// Gate driving `net`, or -1 (precomputed; Netlist::driver scans).
  netlist::GateId driver(netlist::NetId net) const {
    return driver_[static_cast<std::size_t>(net)];
  }

 private:
  const netlist::Netlist* netlist_;
  const gatelib::GateLibrary* lib_;
  DelaySpace space_;
  std::vector<std::uint32_t> fanout_offset_;  // num_nets + 1 entries
  std::vector<netlist::GateId> fanout_gate_;
  std::vector<CompiledGate> gates_;
  std::vector<netlist::NetId> input_net_;       // flat gate-input array
  std::vector<std::uint8_t> input_inverted_;    // parallel to input_net_
  std::vector<netlist::GateId> driver_;         // per net, -1 = undriven
};

}  // namespace nshot::sim
