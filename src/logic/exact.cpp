#include "logic/exact.hpp"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "exec/cancel.hpp"
#include "exec/thread_pool.hpp"
#include "logic/espresso.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace nshot::logic {
namespace {

struct CubeKey {
  std::uint64_t lo, hi;
  friend auto operator<=>(const CubeKey&, const CubeKey&) = default;
};

/// splitmix64-style mix over the packed (lo, hi) words.
struct CubeKeyHash {
  std::size_t operator()(const CubeKey& key) const {
    std::uint64_t x = key.lo + 0x9e3779b97f4a7c15ULL * (key.hi + 1);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

/// Recursively enumerate all maximal valid expansions of `cube`.
/// Returns false if the prime cap was exceeded.  Generic over the key-set
/// type: the hot path uses hashed sets, the reference path ordered sets;
/// only membership and size are consulted, so the enumeration is
/// container-independent.
///
/// kPrecheckVisited skips the off-set validity scan for candidates that
/// were already expanded: `visited` only ever holds cubes that passed the
/// scan (the seed is REQUIREd valid, and only valid candidates recurse),
/// so membership implies validity and the revisit would return without
/// touching `primes`.  The enumeration result is identical either way;
/// the reference instantiation keeps the plain algorithm.
template <typename KeySet, bool kPrecheckVisited>
bool expand_all(const Cube& cube, const TwoLevelSpec& spec, int o, KeySet& visited,
                KeySet& primes, std::size_t max_primes) {
  const CubeKey key{cube.lo(), cube.hi()};
  if (!visited.insert(key).second) return true;
  bool maximal = true;
  for (int v = 0; v < spec.num_inputs(); ++v) {
    if (cube.var_is_free(v)) continue;
    Cube candidate = cube;
    candidate.raise_var(v);
    if constexpr (kPrecheckVisited) {
      if (visited.contains(CubeKey{candidate.lo(), candidate.hi()})) {
        maximal = false;  // visited implies valid, hence a strict expansion
        continue;
      }
    }
    if (!spec.cube_valid_for_output(candidate, o)) continue;
    maximal = false;
    if (!expand_all<KeySet, kPrecheckVisited>(candidate, spec, o, visited, primes, max_primes))
      return false;
  }
  if (maximal) {
    primes.insert(key);
    if (primes.size() > max_primes) return false;
  }
  return true;
}

/// Branch-and-bound minimum unate covering.
class CoveringSolver {
 public:
  CoveringSolver(std::size_t num_rows, std::vector<std::vector<int>> row_cols,
                 std::vector<std::vector<int>> col_rows, std::size_t max_nodes)
      : num_rows_(num_rows),
        row_cols_(std::move(row_cols)),
        col_rows_(std::move(col_rows)),
        max_nodes_(max_nodes) {}

  /// Returns selected column indices, or nullopt if the node cap was hit.
  std::optional<std::vector<int>> solve() {
    // Greedy solution provides the initial upper bound.
    best_ = greedy();
    std::vector<bool> row_covered(num_rows_, false);
    std::vector<int> chosen;
    aborted_ = false;
    branch(row_covered, chosen, 0);
    if (aborted_) return std::nullopt;
    return best_;
  }

 private:
  std::vector<int> greedy() const {
    std::vector<bool> covered(num_rows_, false);
    std::size_t remaining = num_rows_;
    std::vector<int> chosen;
    while (remaining > 0) {
      int best_col = -1;
      std::size_t best_gain = 0;
      for (std::size_t c = 0; c < col_rows_.size(); ++c) {
        std::size_t gain = 0;
        for (const int r : col_rows_[c])
          if (!covered[static_cast<std::size_t>(r)]) ++gain;
        if (gain > best_gain) {
          best_gain = gain;
          best_col = static_cast<int>(c);
        }
      }
      NSHOT_ASSERT(best_col >= 0, "uncoverable row in covering problem");
      chosen.push_back(best_col);
      for (const int r : col_rows_[static_cast<std::size_t>(best_col)]) {
        if (!covered[static_cast<std::size_t>(r)]) {
          covered[static_cast<std::size_t>(r)] = true;
          --remaining;
        }
      }
    }
    return chosen;
  }

  /// Independent-set style lower bound: greedily pick pairwise
  /// column-disjoint uncovered rows; each needs a distinct column.
  std::size_t lower_bound(const std::vector<bool>& row_covered) const {
    std::size_t bound = 0;
    std::vector<bool> col_used(col_rows_.size(), false);
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (row_covered[r]) continue;
      bool independent = true;
      for (const int c : row_cols_[r])
        if (col_used[static_cast<std::size_t>(c)]) {
          independent = false;
          break;
        }
      if (independent) {
        ++bound;
        for (const int c : row_cols_[r]) col_used[static_cast<std::size_t>(c)] = true;
      }
    }
    return bound;
  }

  void branch(std::vector<bool>& row_covered, std::vector<int>& chosen, std::size_t covered_count) {
    if (aborted_) return;
    if (++nodes_ > max_nodes_) {
      aborted_ = true;
      return;
    }
    if (chosen.size() + lower_bound(row_covered) >= best_.size()) return;
    if (covered_count == num_rows_) {
      best_ = chosen;  // strictly better by the bound check above
      return;
    }
    // Branch on the uncovered row with the fewest candidate columns.
    std::size_t pick = num_rows_;
    for (std::size_t r = 0; r < num_rows_; ++r) {
      if (row_covered[r]) continue;
      if (pick == num_rows_ || row_cols_[r].size() < row_cols_[pick].size()) pick = r;
    }
    NSHOT_ASSERT(pick < num_rows_, "no uncovered row to branch on");
    for (const int c : row_cols_[pick]) {
      std::vector<int> newly;
      for (const int r : col_rows_[static_cast<std::size_t>(c)]) {
        if (!row_covered[static_cast<std::size_t>(r)]) {
          row_covered[static_cast<std::size_t>(r)] = true;
          newly.push_back(r);
        }
      }
      chosen.push_back(c);
      branch(row_covered, chosen, covered_count + newly.size());
      chosen.pop_back();
      for (const int r : newly) row_covered[static_cast<std::size_t>(r)] = false;
      if (aborted_) return;
    }
  }

  std::size_t num_rows_;
  std::vector<std::vector<int>> row_cols_;
  std::vector<std::vector<int>> col_rows_;
  std::size_t max_nodes_;
  std::vector<int> best_;
  std::size_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

namespace {

/// Run the prime enumeration with a concrete key-set type; returns the
/// deduplicated prime keys, or std::nullopt if the cap was exceeded.
template <typename KeySet, bool kPrecheckVisited>
std::optional<std::vector<CubeKey>> enumerate_prime_keys(const TwoLevelSpec& spec, int o,
                                                         std::size_t max_primes) {
  KeySet visited;
  KeySet prime_keys;
  for (const std::uint64_t code : spec.on(o)) {
    exec::checkpoint();
    const Cube seed = Cube::minterm(code, spec.num_inputs(), 1ULL << o);
    NSHOT_REQUIRE(spec.cube_valid_for_output(seed, o),
                  "on-minterm also appears in the off-set");
    if (!expand_all<KeySet, kPrecheckVisited>(seed, spec, o, visited, prime_keys, max_primes))
      return std::nullopt;
  }
  return std::vector<CubeKey>(prime_keys.begin(), prime_keys.end());
}

}  // namespace

std::optional<std::vector<Cube>> generate_primes(const TwoLevelSpec& spec, int o,
                                                 const ExactOptions& options) {
  // Hashed sets on the bit-packed keys are the hot path; an explicit sort
  // afterwards reproduces the (lo, hi) iteration order the ordered
  // reference sets give for free, so both paths emit identical primes.
  std::optional<std::vector<CubeKey>> keys =
      options.reference_kernels
          ? enumerate_prime_keys<std::set<CubeKey>, false>(spec, o, options.max_primes)
          : enumerate_prime_keys<std::unordered_set<CubeKey, CubeKeyHash>, true>(
                spec, o, options.max_primes);
  if (!keys) return std::nullopt;
  if (!options.reference_kernels) std::sort(keys->begin(), keys->end());

  std::vector<Cube> primes;
  primes.reserve(keys->size());
  for (const CubeKey& key : *keys) {
    Cube cube = Cube::full(spec.num_inputs(), 1ULL << o);
    for (int v = 0; v < spec.num_inputs(); ++v) {
      const std::uint64_t bit = 1ULL << v;
      const bool lo = key.lo & bit, hi = key.hi & bit;
      if (lo && hi) continue;
      cube.restrict_var(v, hi);
    }
    primes.push_back(cube);
  }
  obs::count(obs::Counter::kPrimesGenerated, static_cast<long>(primes.size()));
  return primes;
}

std::optional<Cover> exact_minimize_output(const TwoLevelSpec& spec, int o,
                                           const ExactOptions& options) {
  const auto primes = generate_primes(spec, o, options);
  if (!primes) return std::nullopt;

  const auto& on = spec.on(o);
  std::vector<std::vector<int>> row_cols(on.size());
  std::vector<std::vector<int>> col_rows(primes->size());
  for (std::size_t r = 0; r < on.size(); ++r) {
    for (std::size_t c = 0; c < primes->size(); ++c) {
      if ((*primes)[c].covers_minterm(on[r])) {
        row_cols[r].push_back(static_cast<int>(c));
        col_rows[c].push_back(static_cast<int>(r));
      }
    }
    NSHOT_ASSERT(!row_cols[r].empty(), "on-minterm not covered by any prime");
  }

  CoveringSolver solver(on.size(), std::move(row_cols), std::move(col_rows), options.max_nodes);
  const auto selected = solver.solve();
  if (!selected) return std::nullopt;

  Cover cover(spec.num_inputs(), spec.num_outputs());
  for (const int c : *selected) cover.add((*primes)[static_cast<std::size_t>(c)]);
  cover.remove_contained();
  return cover;
}

Cover exact_minimize(const TwoLevelSpec& spec, const ExactOptions& options) {
  const obs::Span span("exact");
  TwoLevelSpec normalized = spec;
  normalized.normalize();
  normalized.validate();

  // Each output is an independent prime-generation + covering problem;
  // solve them in parallel and concatenate the per-output covers in
  // output order (exactly what the serial loop produced).
  const std::vector<std::vector<Cube>> per_output = exec::parallel_map<std::vector<Cube>>(
      normalized.num_outputs(),
      [&](int o) {
        std::vector<Cube> cubes;
        if (normalized.on(o).empty()) return cubes;
        const auto exact = exact_minimize_output(normalized, o, options);
        if (exact) {
          for (const Cube& c : *exact) cubes.push_back(c);
          return cubes;
        }
        // Fallback: heuristic minimization of this output alone.
        TwoLevelSpec single(normalized.num_inputs(), 1);
        for (const std::uint64_t code : normalized.on(o)) single.add_on(0, code);
        for (const std::uint64_t code : normalized.off(o)) single.add_off(0, code);
        const Cover heuristic = espresso(single);
        for (Cube c : heuristic) {
          c.set_outputs(1ULL << o);
          cubes.push_back(c);
        }
        return cubes;
      },
      options.jobs);

  Cover result(normalized.num_inputs(), normalized.num_outputs());
  for (const std::vector<Cube>& cubes : per_output)
    for (const Cube& c : cubes) result.add(c);
  return result;
}

}  // namespace nshot::logic
