file(REMOVE_RECURSE
  "libnshot_csc.a"
)
