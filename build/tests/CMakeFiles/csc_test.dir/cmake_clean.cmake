file(REMOVE_RECURSE
  "CMakeFiles/csc_test.dir/csc_test.cpp.o"
  "CMakeFiles/csc_test.dir/csc_test.cpp.o.d"
  "csc_test"
  "csc_test.pdb"
  "csc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
