# Empty dependencies file for assassin_cli.
# This may be replaced when dependencies are built.
