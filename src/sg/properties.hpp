// Structural and semantic properties of state graphs (Section III-B).
//
// Every checker returns a PropertyReport listing the violations it found
// (empty = property holds), so callers can both gate synthesis and produce
// useful diagnostics.
#pragma once

#include <string>
#include <vector>

#include "sg/state_graph.hpp"

namespace nshot::sg {

struct PropertyReport {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  explicit operator bool() const { return ok(); }
  std::string summary() const;
};

/// Consistent state assignment: for every arc s --*x--> s', the codes of s
/// and s' differ exactly in bit x, with the polarity given by the label.
PropertyReport check_consistency(const StateGraph& sg);

/// Every state is reachable from the initial state.
PropertyReport check_reachability(const StateGraph& sg);

/// Definition 2: semi-modularity with input choices — an enabled non-input
/// transition can never be disabled: if t1 in T_O and t2 are both enabled in
/// s, both interleavings are defined and commute to the same state.
PropertyReport check_semi_modular(const StateGraph& sg);

/// Definition 1: Complete State Coding — states with equal binary codes
/// have identical sets of excited non-input signals.
///
/// `jobs` (here and on the three checkers below, default 1 = serial) is
/// the thread axis over the word/state-range scans: the (code, state) pair
/// fill, the excited-mask probes of duplicate-code groups and the
/// per-state detonant scan chunk the STATE range across workers and merge
/// by index, so every jobs value produces byte-identical reports.  The
/// group sort itself stays serial.
PropertyReport check_csc(const StateGraph& sg, int jobs = 1);

/// Unique State Coding: all state codes are distinct (stronger than CSC;
/// reported for information only).
PropertyReport check_usc(const StateGraph& sg, int jobs = 1);

/// Number of CSC conflict pairs (== check_csc(sg).violations.size())
/// without materializing the diagnostic strings — the CSC solver calls
/// this in its candidate-evaluation inner loop.
std::size_t count_csc_conflicts(const StateGraph& sg, int jobs = 1);

/// Definition 3: states detonant with respect to non-input signal `a`
/// (a stable in w, excited in two or more distinct direct successors).
std::vector<StateId> detonant_states(const StateGraph& sg, SignalId a, int jobs = 1);

/// Batched Definition-3 scan over every non-input signal, indexed as
/// sg.noninput_signals(): entry i equals detonant_states(sg, signal_i,
/// jobs) exactly, but all excitation planes come from one shared graph
/// sweep instead of one whole-graph edge pass per signal.
std::vector<std::vector<StateId>> all_detonant_states(const StateGraph& sg, int jobs = 1);

/// Original ordered-container implementations, kept compiled in as
/// byte-equality oracles for the word-parallel/sorted fast paths
/// (see tests/kernel_equivalence_test.cpp and bench/bench_scale.cpp).
PropertyReport check_csc_reference(const StateGraph& sg);
PropertyReport check_usc_reference(const StateGraph& sg);
std::size_t count_csc_conflicts_reference(const StateGraph& sg);
std::vector<StateId> detonant_states_reference(const StateGraph& sg, SignalId a);

/// Definition 4: the SG is distributive w.r.t. `a` iff no detonant states.
bool is_distributive(const StateGraph& sg, SignalId a);

/// Distributive with respect to every non-input signal.
bool is_distributive(const StateGraph& sg);

/// Convenience: run consistency + reachability + semi-modularity + CSC.
PropertyReport check_implementability(const StateGraph& sg);

}  // namespace nshot::sg
