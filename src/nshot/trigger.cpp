#include "nshot/trigger.hpp"

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace nshot::core {

std::string TriggerIssue::describe(const sg::StateGraph& sg) const {
  std::string text = "trigger region of " + sg.signal(signal).name + (rising ? "+" : "-") + " {";
  for (std::size_t i = 0; i < trigger_region.size(); ++i)
    text += (i ? ", " : "") + sg.state_name(trigger_region[i]);
  text += repaired ? "} repaired with its supercube" : "} admits no trigger cube";
  return text;
}

bool has_trigger_cube(const logic::Cover& cover, int output,
                      const std::vector<std::uint64_t>& codes) {
  for (const logic::Cube& cube : cover) {
    if (!cube.has_output(output)) continue;
    bool all = true;
    for (const std::uint64_t code : codes) {
      if (!cube.covers_minterm(code)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

TriggerReport enforce_trigger_requirement(const sg::StateGraph& sg,
                                          const std::vector<sg::SignalRegions>& regions,
                                          const DerivedSpec& derived, logic::Cover& cover,
                                          const TriggerOptions& options) {
  const obs::Span span("trigger");
  TriggerReport report;
  for (const sg::SignalRegions& signal_regions : regions) {
    const OutputIndex& index = derived.for_signal(signal_regions.signal);
    for (const sg::ExcitationRegion& er : signal_regions.regions) {
      const int output = er.rising ? index.set_output : index.reset_output;
      for (const std::vector<sg::StateId>& tr : er.trigger_regions) {
        std::vector<std::uint64_t> codes;
        codes.reserve(tr.size());
        for (const sg::StateId s : tr) codes.push_back(sg.code(s));

        // Minimal candidate: the supercube of the trigger region's codes.
        // Per variable it admits exactly the values occurring in `codes`,
        // so a cube covers every code iff it contains this supercube —
        // which turns membership into one word-level containment test per
        // cube instead of a cube x codes minterm scan.
        logic::Cube supercube = logic::Cube::minterm(codes.front(), sg.num_signals(), 0);
        for (std::size_t i = 1; i < codes.size(); ++i)
          supercube =
              supercube.supercube(logic::Cube::minterm(codes[i], sg.num_signals(), 0));
        supercube.set_outputs(1ULL << output);

        bool covered;
        if (options.reference_kernels) {
          covered = has_trigger_cube(cover, output, codes);
        } else {
          covered = false;
          for (const logic::Cube& cube : cover)
            if (cube.contains(supercube)) {
              covered = true;
              break;
            }
        }
        if (covered) continue;

        TriggerIssue issue{signal_regions.signal, er.rising, tr, false};
        if (derived.spec.cube_valid_for_output(supercube, output)) {
          cover.add(supercube);
          ++report.cubes_added;
          issue.repaired = true;
        }
        report.issues.push_back(std::move(issue));
      }
    }
  }
  obs::count(obs::Counter::kTriggerCubesAdded, report.cubes_added);
  if (report.cubes_added > 0) cover.remove_contained();
  return report;
}

}  // namespace nshot::core
