// Last-mile coverage: rendering paths, degenerate inputs, and cross-module
// combinations not exercised elsewhere.
#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "bench_suite/generators.hpp"
#include "csc/csc_solver.hpp"
#include "gatelib/gate_library.hpp"
#include "logic/espresso.hpp"
#include "netlist/verilog.hpp"
#include "nshot/synthesis.hpp"
#include "sg/properties.hpp"
#include "stg/g_format.hpp"
#include "stg/reachability.hpp"
#include "util/error.hpp"

namespace nshot {
namespace {

TEST(RenderingTest, CubeAndCoverToString) {
  logic::Cube cube = logic::Cube::minterm(0b101, 3, 0b11);
  cube.raise_var(1);
  const std::string text = cube.to_string();
  EXPECT_NE(text.find("1-1"), std::string::npos);
  EXPECT_NE(text.find("11"), std::string::npos);
  logic::Cover cover(3, 2);
  cover.add(cube);
  EXPECT_NE(cover.to_string().find(text), std::string::npos);
}

TEST(RenderingTest, StateNameShowsExcitationMarks) {
  const sg::StateGraph cell = bench_suite::or_causality_cell("cell", "");
  // Initial state: a and b excited (inputs), c and d stable.
  const std::string name = cell.state_name(cell.initial());
  EXPECT_NE(name.find("0*0*00"), std::string::npos);
}

TEST(RenderingTest, RegionsToStringNamesEveryRegion) {
  const sg::StateGraph g = bench_suite::build_read_write_core();
  const sg::SignalId c = *g.find_signal("c");
  const std::string text = sg::compute_regions(g, c).to_string(g);
  EXPECT_NE(text.find("ER(c+_0)"), std::string::npos);
  EXPECT_NE(text.find("ER(c+_1)"), std::string::npos);  // second instance
  EXPECT_NE(text.find("TR("), std::string::npos);
}

TEST(VerilogTest, DelayLinesAppearWhenForced) {
  const sg::StateGraph cell = bench_suite::or_causality_cell("cell", "");
  const core::DerivedSpec derived = core::derive_spec(cell);
  const logic::Cover cover = logic::espresso(derived.spec);
  core::DelayRequirement forced;
  forced.t_del = 1.2;
  const netlist::Netlist circuit = core::build_nshot_netlist(cell, derived, cover, {forced});
  const std::string verilog =
      netlist::write_verilog(circuit, gatelib::GateLibrary::standard());
  EXPECT_NE(verilog.find("delay_line #(12)"), std::string::npos);  // 1.2 -> 12 tenths
}

TEST(CscSolverTest, ChoiceNetsAreSupported) {
  // A CSC-violating choice net: both branches return to the same all-zero
  // context but one drives the output b through a reused code window.
  const std::string g_text = bench_suite::choice_cycle_g(
      "choice_csc", {"r", "s"}, {"b"},
      {{"r+", "b+", "r-", "b-"}, {"s+", "b+/2", "s-", "b-/2"}});
  const stg::Stg net = stg::parse_g(g_text);
  const sg::StateGraph g = stg::build_state_graph(net);
  // This particular net satisfies CSC already (branch codes differ by
  // r/s); the solver must simply pass it through untouched.
  const auto solved = csc::solve_csc(net);
  ASSERT_TRUE(solved.has_value());
  EXPECT_EQ(solved->signals_added, 0);
}

TEST(GeneratorTest, ParallelChainsGeneratorShapes) {
  const std::string text = bench_suite::parallel_chains_g(
      "pc", "m", true, {{"a", "b"}, {"c"}}, {"a", "c"}, {"b"});
  const sg::StateGraph g = bench_suite::build_g(text);
  EXPECT_TRUE(sg::check_implementability(g).ok());
  // Rising: chain positions (3 x 2) per phase plus the master states.
  EXPECT_EQ(g.num_states(), 12);
  EXPECT_THROW(bench_suite::parallel_chains_g("bad", "m", true, {}, {}, {}), Error);
}

TEST(SynthesisTest, InternalSignalsAreSynthesizedLikeOutputs) {
  // .internal signals are non-input: they get their own MHS flip-flop and
  // are monitored as observable state signals.
  const char* text =
      ".model internal_demo\n.inputs r\n.outputs a\n.internal x\n.graph\n"
      "r+ x+\nx+ a+\na+ r-\nr- x-\nx- a-\na- r+\n.marking { <a-,r+> }\n.end\n";
  const sg::StateGraph g = stg::build_state_graph(stg::parse_g(text));
  EXPECT_EQ(g.noninput_signals().size(), 2u);
  const core::SynthesisResult result = core::synthesize(g);
  EXPECT_TRUE(result.circuit.find_net("x").has_value());
  EXPECT_TRUE(result.circuit.find_net("x_b").has_value());
}

TEST(SynthesisTest, ThrowsOnGraphWithoutNonInputs) {
  sg::StateGraph g("inputs_only");
  const sg::SignalId x = g.add_signal("x", sg::SignalKind::kInput);
  const sg::StateId s0 = g.add_state(0);
  const sg::StateId s1 = g.add_state(1);
  g.add_edge(s0, {x, true}, s1);
  g.add_edge(s1, {x, false}, s0);
  g.set_initial(s0);
  EXPECT_THROW(core::synthesize(g), Error);
}

TEST(PropertyTest, DetonantRequiresNonInput) {
  const sg::StateGraph cell = bench_suite::or_causality_cell("cell", "");
  EXPECT_THROW(sg::detonant_states(cell, *cell.find_signal("a")), Error);
}

TEST(BenchmarkTest, PaperColumnsArePopulated) {
  for (const auto& info : bench_suite::all_benchmarks()) {
    EXPECT_FALSE(info.paper_sis.empty()) << info.name;
    EXPECT_FALSE(info.paper_syn.empty()) << info.name;
    EXPECT_FALSE(info.paper_assassin.empty()) << info.name;
    EXPECT_GT(info.paper_states, 0) << info.name;
  }
}

}  // namespace
}  // namespace nshot
