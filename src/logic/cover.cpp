#include "logic/cover.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nshot::logic {

Cover::Cover(int num_inputs, int num_outputs)
    : num_inputs_(num_inputs), num_outputs_(num_outputs) {}

void Cover::add(const Cube& cube) {
  NSHOT_REQUIRE(cube.num_inputs() == num_inputs_, "cube width does not match cover");
  cubes_.push_back(cube);
}

bool Cover::covers(std::uint64_t code, int o) const {
  for (const Cube& c : cubes_)
    if (c.has_output(o) && c.covers_minterm(code)) return true;
  return false;
}

std::vector<std::size_t> Cover::covering_cubes(std::uint64_t code, int o) const {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < cubes_.size(); ++i)
    if (cubes_[i].has_output(o) && cubes_[i].covers_minterm(code)) indices.push_back(i);
  return indices;
}

int Cover::literal_count() const {
  int total = 0;
  for (const Cube& c : cubes_) total += c.literal_count();
  return total;
}

int Cover::cube_count_for_output(int o) const {
  int count = 0;
  for (const Cube& c : cubes_)
    if (c.has_output(o)) ++count;
  return count;
}

void Cover::remove_contained() {
  std::sort(cubes_.begin(), cubes_.end());
  cubes_.erase(std::unique(cubes_.begin(), cubes_.end()), cubes_.end());
  std::vector<Cube> kept;
  kept.reserve(cubes_.size());
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    if (cubes_[i].outputs() == 0) continue;
    bool contained = false;
    for (std::size_t j = 0; j < cubes_.size() && !contained; ++j)
      contained = (i != j) && cubes_[j].contains(cubes_[i]);
    if (!contained) kept.push_back(cubes_[i]);
  }
  cubes_ = std::move(kept);
}

std::string Cover::to_string() const {
  std::string text;
  for (const Cube& c : cubes_) {
    text += c.to_string();
    text.push_back('\n');
  }
  return text;
}

}  // namespace nshot::logic
