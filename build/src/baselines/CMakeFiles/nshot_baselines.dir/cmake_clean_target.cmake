file(REMOVE_RECURSE
  "libnshot_baselines.a"
)
