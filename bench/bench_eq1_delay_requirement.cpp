// Regenerates the Eq. 1 analysis (Section IV-C): the local delay
// compensation requirement
//
//   t_del >= MAX{ t_set0w - t_res1f - t_mhs-,  t_res0w - t_set1f - t_mhs+ }
//
// evaluated for every non-input signal of every benchmark.  The paper
// reports that delay compensation was NEVER required for the circuits of
// Table 2; the harness prints the worst t_del per circuit so that claim
// can be checked against this library's timing model.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "bench_suite/benchmarks.hpp"
#include "nshot/synthesis.hpp"

namespace {

using namespace nshot;

void print_analysis() {
  const gatelib::GateLibrary& lib = gatelib::GateLibrary::standard();
  const gatelib::GateTiming gate = lib.timing(gatelib::GateType::kAnd, 2);
  std::printf("Eq. 1 delay requirement per benchmark (gate delay in [%.1f, %.1f], tau = %.1f)\n\n",
              gate.min_delay, gate.max_delay, lib.mhs_response());
  std::printf("%-15s %10s %10s %12s %12s\n", "circuit", "max set-lv", "max rst-lv",
              "worst t_del", "compensate?");
  int needing = 0, total = 0;
  for (const auto& info : bench_suite::all_benchmarks()) {
    const sg::StateGraph g = info.build();
    const core::SynthesisResult result = core::synthesize(g);
    int max_set = 0, max_reset = 0;
    double worst = -1e9;
    bool any = false;
    for (const auto& impl : result.signals) {
      max_set = std::max(max_set, impl.delay.set_levels);
      max_reset = std::max(max_reset, impl.delay.reset_levels);
      worst = std::max(worst, impl.delay.t_del);
      any = any || impl.delay.compensation_needed();
    }
    std::printf("%-15s %10d %10d %12.2f %12s\n", info.name.c_str(), max_set, max_reset, worst,
                any ? "YES" : "no");
    needing += any ? 1 : 0;
    ++total;
  }
  std::printf(
      "\n%d of %d circuits need compensation.  The paper reports compensation\n"
      "was never required for its suite; with this library's balanced set and\n"
      "reset SOP depths the MAX of Eq. 1 stays non-positive in the same way.\n",
      needing, total);
}

void bm_delay_requirement(benchmark::State& state) {
  const gatelib::GateLibrary& lib = gatelib::GateLibrary::standard();
  for (auto _ : state)
    for (int set = 1; set <= 4; ++set)
      for (int reset = 1; reset <= 4; ++reset)
        benchmark::DoNotOptimize(core::compute_delay_requirement(set, reset, lib).t_del);
}
BENCHMARK(bm_delay_requirement);

}  // namespace

int main(int argc, char** argv) {
  print_analysis();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
