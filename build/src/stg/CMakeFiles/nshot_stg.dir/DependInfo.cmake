
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stg/g_format.cpp" "src/stg/CMakeFiles/nshot_stg.dir/g_format.cpp.o" "gcc" "src/stg/CMakeFiles/nshot_stg.dir/g_format.cpp.o.d"
  "/root/repo/src/stg/reachability.cpp" "src/stg/CMakeFiles/nshot_stg.dir/reachability.cpp.o" "gcc" "src/stg/CMakeFiles/nshot_stg.dir/reachability.cpp.o.d"
  "/root/repo/src/stg/sg_format.cpp" "src/stg/CMakeFiles/nshot_stg.dir/sg_format.cpp.o" "gcc" "src/stg/CMakeFiles/nshot_stg.dir/sg_format.cpp.o.d"
  "/root/repo/src/stg/stg.cpp" "src/stg/CMakeFiles/nshot_stg.dir/stg.cpp.o" "gcc" "src/stg/CMakeFiles/nshot_stg.dir/stg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nshot_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/nshot_sg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
