// ESPRESSO-style heuristic two-level minimization.
//
// The paper's central practical point (Section IV-A, step 5) is that the
// set/reset SOP networks of the N-SHOT architecture can be produced by *any*
// conventional multi-output two-level minimizer, with the don't-care set
// used freely and product terms shared between functions.  This module
// provides that minimizer: the classic EXPAND / IRREDUNDANT / REDUCE loop
// over the positional-cube representation, generalized to multiple outputs
// (the output part of a cube participates in expansion and reduction, which
// yields AND-gate sharing across set/reset functions of different signals).
//
// The on-set and off-set are explicit minterm lists (reachable states of
// the state graph); everything else is an implicit don't care, so validity
// of a cube is checked by scanning the off-list of each output it feeds.
#pragma once

#include "logic/cover.hpp"
#include "logic/spec.hpp"

namespace nshot::logic {

/// Tuning knobs for the heuristic minimizer.
struct EspressoOptions {
  /// Maximum number of EXPAND/IRREDUNDANT/REDUCE iterations.
  int max_iterations = 4;
  /// Allow raising output parts (product-term sharing across outputs).
  bool share_outputs = true;
};

/// Result cost, ordered lexicographically (cubes, then literals).
struct CoverCost {
  std::size_t cubes = 0;
  int literals = 0;

  friend bool operator<(const CoverCost& a, const CoverCost& b) {
    if (a.cubes != b.cubes) return a.cubes < b.cubes;
    return a.literals < b.literals;
  }
  friend bool operator==(const CoverCost& a, const CoverCost& b) = default;
};

CoverCost cost_of(const Cover& cover);

/// Minimize `spec` heuristically.  The returned cover satisfies
/// F ⊆ cover and cover ∩ R = ∅ for every output (see verify.hpp).
Cover espresso(const TwoLevelSpec& spec, const EspressoOptions& options = {});

/// EXPAND step: enlarge each cube to a prime-like maximal valid cube,
/// dropping cubes that become contained in an expanded one.
void espresso_expand(Cover& cover, const TwoLevelSpec& spec, bool share_outputs);

/// IRREDUNDANT step: remove cubes not needed to cover the on-set.
void espresso_irredundant(Cover& cover, const TwoLevelSpec& spec);

/// REDUCE step: shrink each cube to the supercube of the on-minterms only
/// it covers, enabling the next EXPAND to escape local minima.
void espresso_reduce(Cover& cover, const TwoLevelSpec& spec);

}  // namespace nshot::logic
