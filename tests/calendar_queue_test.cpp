// Property tests of the calendar queue (sim/event_queue.hpp) against the
// binary heap it replaced.  The simulator's determinism contract only
// needs the queue to pop in (time, seq) order — any conforming queue
// produces byte-identical simulations — so the battery drives both
// structures through the same operation sequences and demands identical
// pop streams, while also pinning the calendar-specific machinery:
// same-tick FIFO stability, day/year geometry resizing under load, the
// behind-cursor push the simulator's now()-epsilon scheduling permits,
// and clear()'s arena-reuse + geometry-reset semantics (per-trial resize
// trajectories must not depend on what earlier trials scheduled).
//
// The CI matrix runs this binary under ASan and TSan.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "gatelib/gate_library.hpp"
#include "netlist/netlist.hpp"
#include "sim/compiled_netlist.hpp"
#include "sim/event_queue.hpp"
#include "sim/event_sim.hpp"
#include "util/rng.hpp"

namespace nshot::sim {
namespace {

Event make_event(double time, std::uint64_t seq) {
  Event e;
  e.time = time;
  e.seq = seq;
  e.kind = (seq % 3 == 0) ? EventKind::kMhsProbe : EventKind::kNetChange;
  e.target = static_cast<int>(seq % 17);
  e.value = (seq % 2) != 0;
  e.generation = seq * 7;
  return e;
}

void expect_same_event(const Event& a, const Event& b) {
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.target, b.target);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.generation, b.generation);
}

/// Drive both queues through the same pushes, then drain both and compare
/// the full pop streams.
void expect_same_drain(const std::vector<Event>& events) {
  BinaryHeapQueue heap;
  CalendarQueue calendar;
  for (const Event& e : events) {
    heap.push(e);
    calendar.push(e);
  }
  EXPECT_EQ(heap.size(), calendar.size());
  std::uint64_t last_seq = 0;
  double last_time = 0.0;
  bool first = true;
  while (!heap.empty()) {
    ASSERT_FALSE(calendar.empty());
    const Event want = heap.top();
    const Event got = calendar.top();
    expect_same_event(got, want);
    // The stream itself must be sorted by (time, seq).
    if (!first) EXPECT_TRUE(got.time > last_time || (got.time == last_time && got.seq > last_seq));
    first = false;
    last_time = got.time;
    last_seq = got.seq;
    heap.pop();
    calendar.pop();
  }
  EXPECT_TRUE(calendar.empty());
  EXPECT_EQ(calendar.size(), 0u);
}

TEST(CalendarQueueTest, DrainMatchesBinaryHeapOnUniformTimes) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    std::vector<Event> events;
    const int n = 50 + static_cast<int>(rng.next_below(2000));
    for (int i = 0; i < n; ++i)
      events.push_back(make_event(rng.next_double(0.0, 1000.0), static_cast<std::uint64_t>(i)));
    expect_same_drain(events);
  }
}

TEST(CalendarQueueTest, DrainMatchesBinaryHeapOnClusteredTimes) {
  // Simulator-shaped schedules: bursts of near-simultaneous events
  // separated by long idle gaps, which stress the width estimate (tiny
  // intra-burst gaps) and the year-wrap scan (inter-burst jumps).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    std::vector<Event> events;
    std::uint64_t seq = 0;
    double base = 0.0;
    const int bursts = 5 + static_cast<int>(rng.next_below(40));
    for (int b = 0; b < bursts; ++b) {
      base += rng.next_double(0.1, 5000.0);
      const int burst = 1 + static_cast<int>(rng.next_below(40));
      for (int i = 0; i < burst; ++i)
        events.push_back(make_event(base + rng.next_double(0.0, 0.01), seq++));
    }
    expect_same_drain(events);
  }
}

TEST(CalendarQueueTest, DrainMatchesBinaryHeapAcrossTimeScales) {
  // Mixed magnitudes (1e-6 .. 1e6) force events far outside the current
  // year, exercising find_min's fallback cursor jump.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    std::vector<Event> events;
    for (std::uint64_t i = 0; i < 600; ++i) {
      const double scale = std::pow(10.0, static_cast<double>(rng.next_below(13)) - 6.0);
      events.push_back(make_event(rng.next_double(0.0, 1.0) * scale, i));
    }
    expect_same_drain(events);
  }
}

TEST(CalendarQueueTest, InterleavedPushPopMatchesBinaryHeap) {
  // The simulator's actual access pattern: pops advance a clock and new
  // events land at clock + delay, occasionally at clock - 1e-9 (the
  // set_input epsilon), which pushes BEHIND the calendar cursor.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    BinaryHeapQueue heap;
    CalendarQueue calendar;
    std::uint64_t seq = 0;
    double now = 0.0;
    for (int op = 0; op < 5000; ++op) {
      const bool push = heap.empty() || rng.next_bool(0.55);
      if (push) {
        const double t = rng.next_bool(0.05) ? now - 1e-9 : now + rng.next_double(0.0, 20.0);
        const Event e = make_event(t, seq++);
        heap.push(e);
        calendar.push(e);
      } else {
        const Event want = heap.top();
        ASSERT_FALSE(calendar.empty());
        expect_same_event(calendar.top(), want);
        now = want.time;
        heap.pop();
        calendar.pop();
      }
      ASSERT_EQ(heap.size(), calendar.size());
    }
    while (!heap.empty()) {
      expect_same_event(calendar.top(), heap.top());
      heap.pop();
      calendar.pop();
    }
    EXPECT_TRUE(calendar.empty());
  }
}

TEST(CalendarQueueTest, SameTickEventsPopInFifoOrder) {
  // Every event on one tick: pop order must be exactly seq order (the
  // swap-remove storage must never leak into the observable order).
  CalendarQueue calendar;
  constexpr std::uint64_t kEvents = 500;
  for (std::uint64_t i = 0; i < kEvents; ++i) calendar.push(make_event(42.0, i));
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    ASSERT_FALSE(calendar.empty());
    expect_same_event(calendar.top(), make_event(42.0, i));
    calendar.pop();
  }
  EXPECT_TRUE(calendar.empty());
}

TEST(CalendarQueueTest, SameTickFifoSurvivesInterleavedTicks) {
  Rng rng(7);
  std::vector<Event> events;
  std::uint64_t seq = 0;
  for (int tick = 0; tick < 60; ++tick) {
    const double t = static_cast<double>(rng.next_below(10));  // heavy collisions
    for (std::uint64_t i = 0; i < 1 + rng.next_below(8); ++i)
      events.push_back(make_event(t, seq++));
  }
  expect_same_drain(events);
}

TEST(CalendarQueueTest, ResizesUnderLoadAndStaysOrdered) {
  Rng rng(11);
  CalendarQueue calendar;
  BinaryHeapQueue heap;
  // Fill far past the grow threshold (2 events per bucket from 16
  // buckets), then drain past the shrink threshold, checking order
  // throughout.
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const Event e = make_event(rng.next_double(0.0, 100.0), i);
    calendar.push(e);
    heap.push(e);
  }
  EXPECT_GT(calendar.resizes(), 0u);
  EXPECT_GT(calendar.num_buckets(), std::size_t{16});
  const std::size_t grown = calendar.num_buckets();
  while (!heap.empty()) {
    expect_same_event(calendar.top(), heap.top());
    calendar.pop();
    heap.pop();
  }
  EXPECT_LT(calendar.num_buckets(), grown);  // shrank on the way down
}

TEST(CalendarQueueTest, ClearResetsGeometryForArenaReuse) {
  CalendarQueue calendar;
  const std::size_t virgin_buckets = calendar.num_buckets();
  const double virgin_width = calendar.day_width();

  Rng rng(13);
  for (std::uint64_t i = 0; i < 5000; ++i)
    calendar.push(make_event(rng.next_double(0.0, 1e-3), i));  // tiny widths
  EXPECT_GT(calendar.resizes(), 0u);

  calendar.clear();
  EXPECT_TRUE(calendar.empty());
  EXPECT_EQ(calendar.size(), 0u);
  // Geometry must be back at the defaults: a reused queue's resize
  // trajectory depends only on what THIS trial schedules.
  EXPECT_EQ(calendar.num_buckets(), virgin_buckets);
  EXPECT_EQ(calendar.day_width(), virgin_width);

  // Reuse at a completely different time scale still matches the heap.
  BinaryHeapQueue heap;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    const Event e = make_event(rng.next_double(0.0, 1e6), i);
    calendar.push(e);
    heap.push(e);
  }
  while (!heap.empty()) {
    expect_same_event(calendar.top(), heap.top());
    calendar.pop();
    heap.pop();
  }
  EXPECT_TRUE(calendar.empty());
}

TEST(CalendarQueueTest, ThousandPendingBattleWithYearWrapAndResize) {
  // Sustained 1k+ pending populations — the bench_queue_scaling regime —
  // with ramp/drain cycles that cross the resize thresholds repeatedly
  // and occasional far-future pushes that land outside the current year.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    BinaryHeapQueue heap;
    CalendarQueue calendar;
    std::uint64_t seq = 0;
    double now = 0.0;
    for (int cycle = 0; cycle < 3; ++cycle) {
      while (heap.size() < 1500) {
        // Mostly near-term events with tiny gaps; 2% land a year-scale
        // jump out, so find_min's fallback path runs mid-battle.
        const double t = rng.next_bool(0.02) ? now + rng.next_double(1e5, 1e6)
                                             : now + rng.next_double(0.0, 2.0);
        const Event e = make_event(t, seq++);
        heap.push(e);
        calendar.push(e);
      }
      EXPECT_GT(calendar.num_buckets(), std::size_t{16}) << "seed " << seed;
      while (heap.size() > 100) {
        ASSERT_FALSE(calendar.empty());
        const Event want = heap.top();
        expect_same_event(calendar.top(), want);
        now = want.time;
        heap.pop();
        calendar.pop();
        // Keep churn alive during the drain, like a settling circuit.
        if (rng.next_bool(0.3)) {
          const Event e = make_event(now + rng.next_double(0.0, 5.0), seq++);
          heap.push(e);
          calendar.push(e);
        }
        ASSERT_EQ(heap.size(), calendar.size());
      }
    }
    while (!heap.empty()) {
      expect_same_event(calendar.top(), heap.top());
      heap.pop();
      calendar.pop();
    }
    EXPECT_TRUE(calendar.empty());
  }
}

TEST(AdaptiveQueueTest, MigratesAtThresholdsAndPreservesPopOrder) {
  // The adaptive engine starts on the heap, migrates to the calendar when
  // the population crosses the up-threshold, and back when it drains past
  // the down-threshold.  Every migration moves the full pending set, so
  // the pop stream must stay the (time, seq) total order throughout.
  Rng rng(23);
  EventQueue adaptive(QueueKind::kAdaptive);
  BinaryHeapQueue ref;
  EXPECT_EQ(adaptive.kind(), QueueKind::kAdaptive);
  std::uint64_t seq = 0;
  double now = 0.0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    while (adaptive.size() < 600) {  // well past kAdaptiveUp = 256
      const Event e = make_event(now + rng.next_double(0.0, 10.0), seq++);
      adaptive.push(e);
      ref.push(e);
    }
    while (adaptive.size() > 8) {  // well past kAdaptiveDown = 32
      ASSERT_FALSE(ref.empty());
      const Event want = ref.top();
      expect_same_event(adaptive.top(), want);
      now = want.time;
      adaptive.pop();
      ref.pop();
    }
  }
  // Four ramp/drain cycles cross each threshold once per cycle.
  EXPECT_GE(adaptive.migrations(), std::uint64_t{8});
  while (!ref.empty()) {
    expect_same_event(adaptive.top(), ref.top());
    adaptive.pop();
    ref.pop();
  }
  EXPECT_TRUE(adaptive.empty());
}

TEST(AdaptiveQueueTest, ClearResetsMigrationStateForTrialReuse) {
  Rng rng(29);
  EventQueue adaptive(QueueKind::kAdaptive);
  for (std::uint64_t i = 0; i < 500; ++i)
    adaptive.push(make_event(rng.next_double(0.0, 10.0), i));
  EXPECT_GE(adaptive.migrations(), std::uint64_t{1});
  adaptive.clear();
  EXPECT_TRUE(adaptive.empty());
  // A reused queue's engine trajectory depends only on this trial.
  EXPECT_EQ(adaptive.migrations(), std::uint64_t{0});
  adaptive.push(make_event(1.0, 0));
  EXPECT_EQ(adaptive.migrations(), std::uint64_t{0});  // small again: back on the heap
}

/// Two unequal combinational chains from one input, converging on an AND
/// and an OR: the inner chain links are fanout-of-1 (fused by the
/// compiled walk), and the midpoint delay model makes chain commits
/// collide on the same tick, so any FIFO violation in the fused hold
/// register reorders the commit stream.
netlist::Netlist converging_chains() {
  netlist::Netlist nl("fifo-fusion");
  const netlist::NetId a = nl.add_net("a");
  nl.add_primary_input(a);
  auto chain = [&nl](netlist::NetId from, gatelib::GateType type, int length,
                     const std::string& prefix) {
    netlist::NetId prev = from;
    for (int i = 0; i < length; ++i) {
      const netlist::NetId out = nl.add_net(prefix + std::to_string(i));
      netlist::Gate g;
      g.type = type;
      g.name = prefix + "g" + std::to_string(i);
      g.inputs = {prev};
      g.outputs = {out};
      nl.add_gate(std::move(g));
      prev = out;
    }
    return prev;
  };
  const netlist::NetId left = chain(a, gatelib::GateType::kBuf, 3, "p");
  const netlist::NetId right = chain(a, gatelib::GateType::kInv, 5, "q");
  const netlist::NetId and_out = nl.add_net("and_out");
  const netlist::NetId or_out = nl.add_net("or_out");
  netlist::Gate and_gate;
  and_gate.type = gatelib::GateType::kAnd;
  and_gate.name = "and0";
  and_gate.inputs = {left, right};
  and_gate.outputs = {and_out};
  nl.add_gate(std::move(and_gate));
  netlist::Gate or_gate;
  or_gate.type = gatelib::GateType::kOr;
  or_gate.name = "or0";
  or_gate.inputs = {left, right};
  or_gate.outputs = {or_out};
  nl.add_gate(std::move(or_gate));
  nl.add_primary_output(and_out);
  nl.add_primary_output(or_out);
  nl.check_well_formed();
  return nl;
}

TEST(FusedChainFifoTest, SameTickCommitsMatchTheStepDriver) {
  const netlist::Netlist nl = converging_chains();
  const CompiledNetlist compiled(nl, gatelib::GateLibrary::standard());
  ASSERT_GT(compiled.num_fused_nets(), std::size_t{0});

  SimulatorOptions options;
  options.randomize_delays = false;  // midpoint delays: maximal tick collisions

  const netlist::NetId a = *nl.find_net("a");
  auto drive = [&](Simulator& simulator) {
    simulator.initialize({{a, false}});
    simulator.set_input(a, true, 1.0);
    simulator.set_input(a, false, 50.0);
    simulator.set_input(a, true, 50.0 + 1e-12);  // near-tie across external edges
  };

  // Reference: the unfused step() driver (step never engages the hold
  // register), commit log in commit order.
  Simulator reference(compiled, options);
  std::vector<Simulator::Commit> reference_log;
  reference.set_commit_log(&reference_log);
  drive(reference);
  while (reference.step()) {
  }

  // Fused: the run_burst walk on the same schedule, commits captured via
  // the pre_check observer (run_burst's equivalent of the commit log).
  Simulator fused(compiled, options);
  std::vector<Simulator::Commit> fused_log;
  const NetObserver capture = [&fused_log](netlist::NetId net, bool value, double) {
    fused_log.push_back({net, value});
  };
  drive(fused);
  const std::vector<int> no_observables(static_cast<std::size_t>(nl.num_nets()), -1);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  while (fused.run_burst(no_observables.data(), kInf, kInf, &capture).stop ==
         Simulator::BurstStop::kObservable) {
  }

  ASSERT_EQ(fused_log.size(), reference_log.size());
  for (std::size_t i = 0; i < reference_log.size(); ++i) {
    EXPECT_EQ(fused_log[i].net, reference_log[i].net) << "commit " << i;
    EXPECT_EQ(fused_log[i].value, reference_log[i].value) << "commit " << i;
  }
  EXPECT_EQ(fused.events_processed(), reference.events_processed());
  EXPECT_EQ(fused.now(), reference.now());
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    EXPECT_EQ(fused.value(n), reference.value(n)) << "net " << nl.net_name(n);
    EXPECT_EQ(fused.toggle_count(n), reference.toggle_count(n)) << "net " << nl.net_name(n);
  }
}

TEST(CalendarQueueTest, EventQueueDispatchesByKind) {
  EventQueue heap_backed;  // default
  EventQueue calendar_backed(QueueKind::kCalendar);
  EXPECT_EQ(heap_backed.kind(), QueueKind::kBinaryHeap);
  EXPECT_EQ(calendar_backed.kind(), QueueKind::kCalendar);

  Rng rng(17);
  for (std::uint64_t i = 0; i < 500; ++i) {
    const Event e = make_event(rng.next_double(0.0, 50.0), i);
    heap_backed.push(e);
    calendar_backed.push(e);
  }
  while (!heap_backed.empty()) {
    ASSERT_FALSE(calendar_backed.empty());
    expect_same_event(calendar_backed.top(), heap_backed.top());
    heap_backed.pop();
    calendar_backed.pop();
  }
  EXPECT_TRUE(calendar_backed.empty());

  heap_backed.clear();
  calendar_backed.clear();
  EXPECT_TRUE(heap_backed.empty());
  EXPECT_TRUE(calendar_backed.empty());
}

}  // namespace
}  // namespace nshot::sim
