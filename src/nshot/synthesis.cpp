#include "nshot/synthesis.hpp"

#include <sstream>

#include "exec/memo_cache.hpp"
#include "exec/thread_pool.hpp"
#include "gatelib/gate_library.hpp"
#include "logic/exact.hpp"
#include "logic/verify.hpp"
#include "obs/obs.hpp"
#include "sg/properties.hpp"

namespace nshot::core {

namespace {

/// Canonical cache key of a minimization subproblem: the full (F, D, R)
/// spec (derive_spec normalizes the minterm lists, so equal subproblems
/// serialize equally) plus every knob that changes the minimizer's output.
std::string minimization_key(const logic::TwoLevelSpec& spec, const SynthesisOptions& options) {
  std::ostringstream key;
  key << (options.exact ? "exact" : "heur") << '/' << options.share_products << '/'
      << options.espresso.max_iterations << '/' << options.espresso.share_outputs << ';'
      << spec.num_inputs() << 'x' << spec.num_outputs();
  for (int o = 0; o < spec.num_outputs(); ++o) {
    key << "|F";
    for (const std::uint64_t code : spec.on(o)) key << ' ' << code;
    key << "|R";
    for (const std::uint64_t code : spec.off(o)) key << ' ' << code;
  }
  return key.str();
}

logic::Cover minimize_spec(const logic::TwoLevelSpec& spec, const SynthesisOptions& options) {
  logic::EspressoOptions espresso_options = options.espresso;
  espresso_options.share_outputs = options.share_products;
  logic::ExactOptions exact_options;
  exact_options.jobs = options.jobs;
  return options.exact ? logic::exact_minimize(spec, exact_options)
                       : logic::espresso(spec, espresso_options);
}

/// The process-wide (F, D, R) minimization memo.  Function-scoped static
/// so construction is lazy and thread-safe; shared by every Pipeline in
/// the process, which is what makes repeated serve requests for the same
/// controller warm.
exec::MemoCache<logic::Cover>& minimization_cache() {
  static exec::MemoCache<logic::Cover> cache;
  return cache;
}

logic::Cover minimize_cached(const logic::TwoLevelSpec& spec, const SynthesisOptions& options) {
  if (!options.memoize_minimization) return minimize_spec(spec, options);
  return minimization_cache().get_or_compute(minimization_key(spec, options),
                                             [&] { return minimize_spec(spec, options); });
}

}  // namespace

MinimizationCacheStats minimization_cache_stats() {
  const auto stats = minimization_cache().stats();
  return {stats.hits, stats.misses, stats.entries};
}

SynthesisResult synthesize(const sg::StateGraph& sg, const SynthesisOptions& options) {
  const obs::Span synth_span("synthesize");

  // 1. Theorem 2 preconditions.
  const sg::PropertyReport implementability = sg::check_implementability(sg);
  if (!implementability.ok())
    throw SynthesisError("state graph " + sg.name() + " is not implementable: " +
                         implementability.summary());

  // 2. Joint set/reset specification.
  DerivedSpec derived = derive_spec(sg);

  // 3. Conventional two-level minimization — no hazard constraints at all.
  // Memoized across synthesize() calls: the subproblem is a pure function
  // of the (F, D, R) spec and the minimizer knobs.
  logic::Cover cover = [&] {
    const obs::Span span("minimize");
    return minimize_cached(derived.spec, options);
  }();

  // 4. Independent oracle.
  const logic::VerifyResult verified = [&] {
    const obs::Span span("verify_cover");
    return logic::verify_cover(derived.spec, cover);
  }();
  NSHOT_ASSERT(verified.ok, "minimizer produced an incorrect cover: " + verified.message);

  // 5. Trigger requirement (Theorem 1).
  const std::vector<sg::SignalRegions> regions = sg::compute_all_regions(sg);
  TriggerReport trigger = enforce_trigger_requirement(sg, regions, derived, cover);
  if (!trigger.satisfied()) {
    std::string message = "trigger requirement violated for " + sg.name() + ":";
    for (const TriggerIssue& issue : trigger.issues)
      if (!issue.repaired) message += "\n  " + issue.describe(sg);
    throw SynthesisError(message);
  }

  // 6. Delay requirement (Eq. 1) per signal.  Signals are independent
  // after the (F, D, R) derivation: each analysis reads only the shared
  // immutable cover and SG, so they run in parallel and land in signal
  // order.
  const gatelib::GateLibrary& lib = gatelib::GateLibrary::standard();
  std::vector<SignalImplementation> signals = [&] {
    const obs::Span analysis_span("signal_analysis");
    return exec::parallel_map<SignalImplementation>(
        static_cast<int>(derived.outputs.size()),
        [&](int i) {
          const obs::Span span("signal", i);
          const OutputIndex& index = derived.outputs[static_cast<std::size_t>(i)];
          SignalImplementation impl;
          impl.signal = index.signal;
          impl.set_cubes = cover.cube_count_for_output(index.set_output);
          impl.reset_cubes = cover.cube_count_for_output(index.reset_output);
          impl.delay = compute_delay_requirement(sop_levels(cover, index.set_output, lib),
                                                 sop_levels(cover, index.reset_output, lib), lib);
          impl.init = analyze_initialization(sg, index.signal, cover, index);
          return impl;
        },
        options.jobs);
  }();
  std::vector<DelayRequirement> delays;
  for (const SignalImplementation& impl : signals) delays.push_back(impl.delay);

  // 7. Architecture mapping.
  ArchitectureOptions arch;
  arch.insert_delay_lines = options.insert_delay_lines;
  netlist::Netlist circuit = [&] {
    const obs::Span span("architecture");
    return build_nshot_netlist(sg, derived, cover, delays, arch);
  }();

  SynthesisResult result{std::move(circuit), std::move(cover), std::move(derived),
                         std::move(signals), std::move(trigger),
                         {},    // stats, filled below
                         true,  // single_traversal, refined below
                         false};
  result.stats = result.circuit.stats(lib);
  // Section IV-F: flip-flops whose initial value is not produced by an
  // excited SOP need an explicit reset product term inside the master RS
  // latch; charge one small AND term each (the netlist itself models
  // initialization behaviourally, so this is an area-only adjustment).
  for (const SignalImplementation& impl : result.signals)
    if (impl.init.explicit_reset) result.stats.area += lib.area(gatelib::GateType::kAnd, 1);
  for (const sg::SignalRegions& signal_regions : regions)
    for (const sg::ExcitationRegion& er : signal_regions.regions)
      if (!er.single_traversal()) result.single_traversal = false;
  for (const SignalImplementation& impl : result.signals)
    if (options.insert_delay_lines && impl.delay.compensation_needed())
      result.delay_compensation_used = true;
  return result;
}

std::string describe(const sg::StateGraph& sg, const SynthesisResult& result) {
  std::ostringstream out;
  out << "N-SHOT synthesis of " << sg.name() << "\n";
  out << "  states: " << sg.num_states() << ", signals: " << sg.num_signals() << " ("
      << sg.noninput_signals().size() << " non-input)\n";
  out << "  single traversal: " << (result.single_traversal ? "yes" : "no")
      << ", trigger cubes added: " << result.trigger.cubes_added << "\n";
  out << "  joint cover: " << result.cover.size() << " product terms, "
      << result.cover.literal_count() << " literals\n";
  for (const SignalImplementation& impl : result.signals) {
    const std::string& name = sg.signal(impl.signal).name;
    out << "  signal " << name << ": set " << impl.set_cubes << " cube(s), reset "
        << impl.reset_cubes << " cube(s), t_del = " << impl.delay.t_del
        << (impl.delay.compensation_needed() ? " (delay line inserted)" : " (no compensation)")
        << ", init " << (impl.init.value ? "1" : "0")
        << (impl.init.explicit_reset ? " (explicit reset term)" : " (automatic)") << "\n";
  }
  out << "  area: " << result.stats.area << ", delay: " << result.stats.delay
      << ", gates: " << result.stats.gate_count << "\n";
  return out.str();
}

}  // namespace nshot::core
