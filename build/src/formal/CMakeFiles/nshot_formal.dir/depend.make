# Empty dependencies file for nshot_formal.
# This may be replaced when dependencies are built.
