// Reader/writer for the SIS ".sg" state-graph text format — the format the
// paper's tsbmsi benchmarks were "given in" (Table 2 note (4): SIS's STG
// frontend cannot read it, while ASSASSIN consumes it directly).
//
// Layout:
//   .model NAME
//   .inputs  a b ...
//   .outputs c d ...          (.internal also accepted)
//   .state graph
//   s0 a+ s1
//   s1 c+ s2
//   ...
//   .marking { s0 }           (the initial state)
//   .end
//
// State names are arbitrary identifiers.  Binary codes are reconstructed
// from the transition labels exactly like the STG reachability pass: the
// initial value of every signal is declared via ".init name=0|1" or
// inferred from the polarity of its first transition along some path from
// the initial state; the resulting assignment is checked for consistency.
#pragma once

#include <string>

#include "sg/state_graph.hpp"

namespace nshot::stg {

/// Parse .sg text into a state graph; throws nshot::Error with a
/// line-accurate message on malformed or inconsistent input.
sg::StateGraph parse_sg(const std::string& text);

/// Render a state graph to .sg text (roundtrips through parse_sg).
std::string write_sg(const sg::StateGraph& graph);

}  // namespace nshot::stg
