// Tests for the auxiliary interchange formats: the SIS .sg state-graph
// format (Table 2 note (4)), the Verilog netlist writer, and DOT export.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/baselines.hpp"
#include "bench_suite/benchmarks.hpp"
#include "bench_suite/generators.hpp"
#include "gatelib/gate_library.hpp"
#include "netlist/verilog.hpp"
#include "nshot/synthesis.hpp"
#include "sg/dot.hpp"
#include "sg/properties.hpp"
#include "stg/sg_format.hpp"
#include "util/error.hpp"

namespace nshot {
namespace {

// ------------------------------------------------------------ .sg format --

TEST(SgFormatTest, ParsesHandWrittenGraph) {
  const char* text =
      ".model tiny\n"
      ".inputs x\n"
      ".outputs y\n"
      ".state graph\n"
      "s0 x+ s1\n"
      "s1 y+ s2\n"
      "s2 x- s3\n"
      "s3 y- s0\n"
      ".marking { s0 }\n"
      ".end\n";
  const sg::StateGraph g = stg::parse_sg(text);
  EXPECT_EQ(g.num_states(), 4);
  EXPECT_EQ(g.num_signals(), 2);
  EXPECT_TRUE(sg::check_implementability(g).ok());
  EXPECT_EQ(g.code(g.initial()), 0u);  // both signals inferred to start at 0
}

TEST(SgFormatTest, RoundTripsEveryMediumBenchmark) {
  for (const char* name : {"chu172", "full", "pmcm2", "read-write"}) {
    const sg::StateGraph original = bench_suite::build_benchmark(name);
    const sg::StateGraph reparsed = stg::parse_sg(stg::write_sg(original));
    ASSERT_EQ(reparsed.num_states(), original.num_states()) << name;
    ASSERT_EQ(reparsed.num_signals(), original.num_signals()) << name;
    // State ids may permute (the parser numbers states by first mention),
    // but the multiset of binary codes must be identical.
    std::vector<std::uint64_t> codes_a, codes_b;
    for (sg::StateId s = 0; s < original.num_states(); ++s) {
      codes_a.push_back(original.code(s));
      codes_b.push_back(reparsed.code(s));
    }
    std::sort(codes_a.begin(), codes_a.end());
    std::sort(codes_b.begin(), codes_b.end());
    EXPECT_EQ(codes_a, codes_b) << name;
    EXPECT_EQ(reparsed.code(reparsed.initial()), original.code(original.initial())) << name;
    // And the synthesized circuits agree.
    const core::SynthesisResult a = core::synthesize(original);
    const core::SynthesisResult b = core::synthesize(reparsed);
    EXPECT_EQ(a.stats.area, b.stats.area) << name;
  }
}

TEST(SgFormatTest, RejectsMalformedInput) {
  EXPECT_THROW(stg::parse_sg(".model t\n.state graph\n.end\n"), Error);  // no states
  EXPECT_THROW(stg::parse_sg(".model t\n.inputs x\n.state graph\ns0 x+ s1\n.end\n"),
               Error);  // no marking
  EXPECT_THROW(stg::parse_sg(".model t\n.inputs x\n.state graph\ns0 y+ s1\n"
                             ".marking { s0 }\n.end\n"),
               Error);  // undeclared signal
  EXPECT_THROW(stg::parse_sg(".model t\n.inputs x\n.state graph\n"
                             "s0 x+ s1\ns1 x+ s2\n.marking { s0 }\n.end\n"),
               Error);  // inconsistent (+ twice)
}

TEST(SgFormatTest, DetectsCodeConflictsViaTwoPaths) {
  // Diamond where the two paths disagree on the code of the join state.
  const char* text =
      ".model bad\n.inputs x y\n.state graph\n"
      "s0 x+ s1\ns0 y+ s2\ns1 y+ s3\ns2 x- s3\n"
      ".marking { s0 }\n.end\n";
  EXPECT_THROW(stg::parse_sg(text), Error);
}

TEST(SgFormatTest, ConstantSignalNeedsDeclaredInit) {
  const char* base =
      ".model t\n.inputs x c\n.outputs y\n.state graph\n"
      "s0 x+ s1\ns1 y+ s2\ns2 x- s3\ns3 y- s0\n.marking { s0 }\n%%.end\n";
  std::string without(base);
  without.replace(without.find("%%"), 2, "");
  EXPECT_THROW(stg::parse_sg(without), Error);
  std::string with(base);
  with.replace(with.find("%%"), 2, ".init c=1\n");
  const sg::StateGraph g = stg::parse_sg(with);
  EXPECT_TRUE(g.value(g.initial(), *g.find_signal("c")));
}

// -------------------------------------------------------------- verilog --

TEST(VerilogTest, EmitsSelfContainedModule) {
  const sg::StateGraph g = bench_suite::build_benchmark("chu172");
  const core::SynthesisResult result = core::synthesize(g);
  const std::string verilog =
      netlist::write_verilog(result.circuit, gatelib::GateLibrary::standard());
  EXPECT_NE(verilog.find("module chu172"), std::string::npos);
  EXPECT_NE(verilog.find("module mhs_ff"), std::string::npos);
  EXPECT_NE(verilog.find("endmodule"), std::string::npos);
  EXPECT_NE(verilog.find("input a"), std::string::npos);
  EXPECT_NE(verilog.find("output c"), std::string::npos);
  // One mhs_ff instance per non-input signal (indented; the un-indented
  // match is the primitive's module declaration).
  std::size_t count = 0, pos = 0;
  while ((pos = verilog.find("  mhs_ff #(", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, g.noninput_signals().size());
}

TEST(VerilogTest, SanitizesAwkwardNames) {
  const sg::StateGraph g = bench_suite::build_benchmark("sbuf-send-ctl");
  const core::SynthesisResult result = core::synthesize(g);
  const std::string verilog =
      netlist::write_verilog(result.circuit, gatelib::GateLibrary::standard());
  EXPECT_NE(verilog.find("module sbuf_send_ctl"), std::string::npos);
  EXPECT_EQ(verilog.find("module sbuf-send"), std::string::npos);  // no raw dashes in ids
}

TEST(VerilogTest, BaselineCellsAreCovered) {
  const sg::StateGraph g = bench_suite::build_benchmark("full");
  const auto syn = baselines::synthesize_syn_like(g);
  ASSERT_TRUE(syn.ok());
  const std::string verilog =
      netlist::write_verilog(syn.result->circuit, gatelib::GateLibrary::standard());
  EXPECT_NE(verilog.find("c_element"), std::string::npos);
}

// ------------------------------------------------------------------ dot --

TEST(DotTest, EmitsRegionsAndDetonantMarks) {
  const sg::StateGraph cell = bench_suite::or_causality_cell("cell", "");
  sg::DotOptions options;
  options.highlight_signal = cell.find_signal("c");
  const std::string dot = sg::to_dot(cell, options);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("lightgreen"), std::string::npos);   // ER(+c)
  EXPECT_NE(dot.find("lightcoral"), std::string::npos);   // ER(-c)
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);  // detonant states
  EXPECT_NE(dot.find("a+"), std::string::npos);
}

TEST(DotTest, PlainExportNeedsNoHighlight) {
  const sg::StateGraph g = bench_suite::build_benchmark("chu172");
  const std::string dot = sg::to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_EQ(dot.find("lightgreen"), std::string::npos);
}

}  // namespace
}  // namespace nshot
