// Tests for CSC enforcement by state-signal insertion (the preprocessing
// transformation the paper's flow relies on, refs [6, 18]).
#include <gtest/gtest.h>

#include "bench_suite/generators.hpp"
#include "csc/csc_solver.hpp"
#include "nshot/synthesis.hpp"
#include "sg/properties.hpp"
#include "sim/conformance.hpp"
#include "stg/g_format.hpp"
#include "stg/reachability.hpp"

namespace nshot::csc {
namespace {

/// Two-phase cycle [a+ b+][a- b-]: the partial states (a=1, b=0) of the
/// rising and falling phases share one code with different non-input
/// excitation — the canonical CSC violation.
stg::Stg csc_violating_stg() {
  return stg::parse_g(bench_suite::staged_cycle_g(
      "csc_demo", {"a"}, {"b"}, {{"a+", "b+"}, {"a-", "b-"}}));
}

TEST(CscSolverTest, DetectsTheViolation) {
  const sg::StateGraph g = stg::build_state_graph(csc_violating_stg());
  EXPECT_GT(csc_conflict_count(g), 0);
  EXPECT_TRUE(sg::check_semi_modular(g).ok());  // everything else holds
  EXPECT_TRUE(sg::check_consistency(g).ok());
}

TEST(CscSolverTest, InsertToggleIsStructurallySound) {
  const stg::Stg source = csc_violating_stg();
  const auto a_plus = source.find_transition(*source.find_signal("a"), true, 1);
  const auto a_minus = source.find_transition(*source.find_signal("a"), false, 1);
  ASSERT_TRUE(a_plus && a_minus);
  const stg::Stg spliced = insert_toggle(source, *a_plus, *a_minus, "z");
  EXPECT_EQ(spliced.num_signals(), source.num_signals() + 1);
  EXPECT_EQ(spliced.num_transitions(), source.num_transitions() + 2);
  // The spliced net still produces a consistent semi-modular SG.
  const sg::StateGraph g = stg::build_state_graph(spliced);
  EXPECT_TRUE(sg::check_consistency(g).ok());
  EXPECT_TRUE(sg::check_semi_modular(g).ok());
  EXPECT_TRUE(g.find_signal("z").has_value());
}

TEST(CscSolverTest, SolvesTheTwoPhaseCycle) {
  const auto result = solve_csc(csc_violating_stg());
  ASSERT_TRUE(result.has_value());
  EXPECT_GE(result->signals_added, 1);
  EXPECT_EQ(csc_conflict_count(result->graph), 0);
  EXPECT_TRUE(sg::check_implementability(result->graph).ok());
  EXPECT_EQ(result->insertions.size(), static_cast<std::size_t>(result->signals_added));
}

TEST(CscSolverTest, SolvedGraphSynthesizesAndConforms) {
  const auto result = solve_csc(csc_violating_stg());
  ASSERT_TRUE(result.has_value());
  const core::SynthesisResult circuit = core::synthesize(result->graph);
  sim::ConformanceOptions options;
  options.runs = 8;
  options.max_transitions = 80;
  const sim::ConformanceReport report =
      sim::check_conformance(result->graph, circuit.circuit, options);
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(CscSolverTest, CleanInputNeedsNoSignals) {
  const stg::Stg clean = stg::parse_g(bench_suite::staged_cycle_g(
      "clean", {"a"}, {"b"}, {{"a+"}, {"b+"}, {"a-"}, {"b-"}}));
  const auto result = solve_csc(clean);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->signals_added, 0);
}

TEST(CscSolverTest, BudgetOfZeroFailsOnViolatingInput) {
  CscSolveOptions options;
  options.max_signals = 0;
  EXPECT_FALSE(solve_csc(csc_violating_stg(), options).has_value());
}

TEST(CscSolverTest, SolvesAWiderBarrierCycle) {
  // Three concurrent handshakes between two phases: more conflicts, still
  // solvable with a small budget.
  const stg::Stg wide = stg::parse_g(bench_suite::staged_cycle_g(
      "wide", {"a", "b"}, {"c"}, {{"a+", "b+", "c+"}, {"a-", "b-", "c-"}}));
  const auto result = solve_csc(wide);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(csc_conflict_count(result->graph), 0);
  EXPECT_GE(result->signals_added, 1);
}

}  // namespace
}  // namespace nshot::csc
