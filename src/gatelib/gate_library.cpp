#include "gatelib/gate_library.hpp"

#include "util/error.hpp"

namespace nshot::gatelib {

bool is_storage(GateType type) {
  switch (type) {
    case GateType::kCElement:
    case GateType::kRsLatch:
    case GateType::kMhsFlipFlop:
      return true;
    default:
      return false;
  }
}

const char* gate_type_name(GateType type) {
  switch (type) {
    case GateType::kAnd: return "AND";
    case GateType::kOr: return "OR";
    case GateType::kInv: return "INV";
    case GateType::kBuf: return "BUF";
    case GateType::kCElement: return "C";
    case GateType::kRsLatch: return "RS";
    case GateType::kMhsFlipFlop: return "MHS";
    case GateType::kDelayLine: return "DELAY";
    case GateType::kInertialDelay: return "IDELAY";
  }
  return "?";
}

const GateLibrary& GateLibrary::standard() {
  static const GateLibrary library;
  return library;
}

double GateLibrary::area(GateType type, int fanin) const {
  switch (type) {
    case GateType::kAnd:
    case GateType::kOr:
      NSHOT_REQUIRE(fanin >= 1 && fanin <= max_fanin(),
                    "AND/OR fanin must be decomposed to at most 4");
      return 8.0 * (fanin + 1);
    case GateType::kInv:
    case GateType::kBuf:
      return 16.0;
    case GateType::kCElement:
      return 48.0;
    case GateType::kRsLatch:
      return 32.0;
    case GateType::kMhsFlipFlop:
      // The flip-flop proper is comparable in size to a C-element (Section
      // IV-B, footnote 4); the cell here also integrates the two
      // acknowledgement AND gates of Figure 5.
      return 88.0;
    case GateType::kDelayLine:
    case GateType::kInertialDelay:
      return 24.0;
  }
  return 0.0;
}

GateTiming GateLibrary::timing(GateType type, int) const {
  switch (type) {
    case GateType::kAnd:
    case GateType::kOr:
    case GateType::kInv:
    case GateType::kBuf:
      return {0.4, 1.2};
    case GateType::kRsLatch:
      return {0.4, 1.2};
    case GateType::kCElement:
      return {0.8, 2.4};
    case GateType::kMhsFlipFlop:
      return {mhs_response(), mhs_response()};
    case GateType::kDelayLine:
    case GateType::kInertialDelay:
      return {0.0, 0.0};  // instance delay is explicit
  }
  return {0.0, 0.0};
}

double GateLibrary::report_delay(GateType type) const {
  switch (type) {
    case GateType::kAnd:
    case GateType::kOr:
    case GateType::kInv:
    case GateType::kBuf:
    case GateType::kRsLatch:
      return level_delay();
    case GateType::kCElement:
    case GateType::kMhsFlipFlop:
      return 2.0 * level_delay();
    case GateType::kDelayLine:
    case GateType::kInertialDelay:
      return 0.0;  // instance delay is explicit
  }
  return 0.0;
}

}  // namespace nshot::gatelib
