#include "sg/state_graph.hpp"

#include "util/error.hpp"

namespace nshot::sg {

SignalId StateGraph::add_signal(const std::string& name, SignalKind kind) {
  NSHOT_REQUIRE(signals_.size() < 64, "state graph supports at most 64 signals");
  NSHOT_REQUIRE(!find_signal(name).has_value(), "duplicate signal name " + name);
  NSHOT_REQUIRE(codes_.empty(), "signals must be declared before states");
  signals_.push_back(Signal{name, kind});
  return static_cast<SignalId>(signals_.size() - 1);
}

StateId StateGraph::add_state(std::uint64_t code) {
  const std::uint64_t mask =
      signals_.size() == 64 ? ~0ULL : ((1ULL << signals_.size()) - 1ULL);
  NSHOT_REQUIRE((code & ~mask) == 0, "state code uses undeclared signal bits");
  codes_.push_back(code);
  edges_.emplace_back();
  return static_cast<StateId>(codes_.size() - 1);
}

void StateGraph::add_edge(StateId from, TransitionLabel label, StateId to) {
  NSHOT_REQUIRE(from >= 0 && from < num_states(), "edge source out of range");
  NSHOT_REQUIRE(to >= 0 && to < num_states(), "edge target out of range");
  NSHOT_REQUIRE(label.signal >= 0 && label.signal < num_signals(), "edge label signal invalid");
  NSHOT_REQUIRE(!successor(from, label).has_value(),
                "duplicate transition " + label_name(label) + " from state " +
                    std::to_string(from));
  edges_[static_cast<std::size_t>(from)].push_back(Edge{label, to});
}

void StateGraph::set_initial(StateId s) {
  NSHOT_REQUIRE(s >= 0 && s < num_states(), "initial state out of range");
  initial_ = s;
}

std::vector<SignalId> StateGraph::input_signals() const {
  std::vector<SignalId> ids;
  for (int x = 0; x < num_signals(); ++x)
    if (is_input(x)) ids.push_back(x);
  return ids;
}

std::vector<SignalId> StateGraph::noninput_signals() const {
  std::vector<SignalId> ids;
  for (int x = 0; x < num_signals(); ++x)
    if (!is_input(x)) ids.push_back(x);
  return ids;
}

std::optional<SignalId> StateGraph::find_signal(const std::string& name) const {
  for (std::size_t i = 0; i < signals_.size(); ++i)
    if (signals_[i].name == name) return static_cast<SignalId>(i);
  return std::nullopt;
}

bool StateGraph::excited(StateId s, SignalId x) const {
  for (const Edge& e : out_edges(s))
    if (e.label.signal == x) return true;
  return false;
}

std::optional<StateId> StateGraph::successor(StateId s, TransitionLabel t) const {
  for (const Edge& e : out_edges(s))
    if (e.label == t) return e.target;
  return std::nullopt;
}

std::vector<TransitionLabel> StateGraph::enabled_labels(StateId s) const {
  std::vector<TransitionLabel> labels;
  for (const Edge& e : out_edges(s)) labels.push_back(e.label);
  return labels;
}

std::string StateGraph::label_name(TransitionLabel t) const {
  return signal(t.signal).name + (t.rising ? "+" : "-");
}

std::string StateGraph::state_name(StateId s) const {
  std::string text = "s" + std::to_string(s) + "<";
  for (int x = 0; x < num_signals(); ++x) {
    text.push_back(value(s, x) ? '1' : '0');
    if (excited(s, x)) text.push_back('*');
  }
  text.push_back('>');
  return text;
}

}  // namespace nshot::sg
