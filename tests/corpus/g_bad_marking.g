.model badmark
.inputs a
.outputs c
.graph
a+ c+
c+ a-
a- c-
c- a+
.marking { nowhere }
.end
