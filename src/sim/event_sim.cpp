#include "sim/event_sim.hpp"

#include <algorithm>

#include "sim/delay_space.hpp"
#include "util/error.hpp"

namespace nshot::sim {

using gatelib::GateType;
using netlist::Gate;
using netlist::GateId;
using netlist::NetId;

namespace {
constexpr double kTimeEps = 1e-9;
}

Simulator::Simulator(const netlist::Netlist& netlist, const gatelib::GateLibrary& lib,
                     const SimulatorOptions& options)
    : netlist_(netlist), lib_(lib), rng_(options.seed), max_events_(options.max_events) {
  const std::size_t num_nets = static_cast<std::size_t>(netlist.num_nets());
  values_.assign(num_nets, false);
  projected_.assign(num_nets, false);
  forced_.assign(num_nets, false);
  toggles_.assign(num_nets, 0);
  fanout_.assign(num_nets, {});
  mhs_.assign(static_cast<std::size_t>(netlist.num_gates()), {});
  inertial_.assign(static_cast<std::size_t>(netlist.num_gates()), {});

  for (GateId g = 0; g < netlist.num_gates(); ++g)
    for (const NetId in : netlist.gate(g).inputs) fanout_[static_cast<std::size_t>(in)].push_back(g);

  const DelaySpace space(netlist, lib);
  if (!options.explicit_delays.empty()) {
    NSHOT_REQUIRE(options.explicit_delays.size() == static_cast<std::size_t>(netlist.num_gates()),
                  "explicit_delays must hold one delay per gate");
    gate_delay_ = options.explicit_delays;
  } else if (options.randomize_delays) {
    gate_delay_ = space.sample(rng_);
  } else {
    gate_delay_ = space.nominal_vector();
  }
  for (const auto& [g, delay] : options.delay_overrides) {
    NSHOT_REQUIRE(g >= 0 && g < netlist.num_gates(), "delay override on unknown gate");
    NSHOT_REQUIRE(delay >= 0.0, "delay override must be non-negative");
    gate_delay_[static_cast<std::size_t>(g)] = delay;
  }
}

bool Simulator::eval_combinational(const Gate& gate) const {
  auto in = [&](std::size_t i) {
    const bool v = values_[static_cast<std::size_t>(gate.inputs[i])];
    return gate.input_inverted(i) ? !v : v;
  };
  switch (gate.type) {
    case GateType::kAnd: {
      for (std::size_t i = 0; i < gate.inputs.size(); ++i)
        if (!in(i)) return false;
      return true;
    }
    case GateType::kOr: {
      for (std::size_t i = 0; i < gate.inputs.size(); ++i)
        if (in(i)) return true;
      return false;
    }
    case GateType::kInv:
      return !in(0);
    case GateType::kBuf:
    case GateType::kDelayLine:
    case GateType::kInertialDelay:
      return in(0);
    case GateType::kRsLatch: {
      const bool s = in(0), r = in(1);
      if (s) return true;  // set dominant
      if (r) return false;
      return values_[static_cast<std::size_t>(gate.outputs[0])];
    }
    case GateType::kCElement: {
      bool all_one = true, all_zero = true;
      for (std::size_t i = 0; i < gate.inputs.size(); ++i) {
        if (in(i)) all_zero = false;
        else all_one = false;
      }
      if (all_one) return true;
      if (all_zero) return false;
      return values_[static_cast<std::size_t>(gate.outputs[0])];
    }
    case GateType::kMhsFlipFlop:
      NSHOT_ASSERT(false, "MHS flip-flop is not a combinational gate");
  }
  return false;
}

void Simulator::initialize(const std::vector<std::pair<NetId, bool>>& fixed_values) {
  NSHOT_REQUIRE(!initialized_, "initialize must be called exactly once");
  initialized_ = true;

  std::vector<bool> is_source(static_cast<std::size_t>(netlist_.num_nets()), false);
  for (const auto& [net, value] : fixed_values) {
    values_[static_cast<std::size_t>(net)] = value;
    is_source[static_cast<std::size_t>(net)] = true;
  }

  // Combinational settle: evaluate non-storage gates in dependency order.
  std::vector<GateId> pending;
  for (GateId g = 0; g < netlist_.num_gates(); ++g) {
    const Gate& gate = netlist_.gate(g);
    if (gatelib::is_storage(gate.type) || gate.feedback_cut) {
      for (const NetId out : gate.outputs)
        NSHOT_REQUIRE(is_source[static_cast<std::size_t>(out)],
                      "initialize: storage output " + netlist_.net_name(out) +
                          " needs an initial value");
    } else {
      pending.push_back(g);
    }
  }
  std::vector<bool> net_known = is_source;
  for (const NetId pi : netlist_.primary_inputs()) net_known[static_cast<std::size_t>(pi)] = true;
  bool progress = true;
  while (progress && !pending.empty()) {
    progress = false;
    std::vector<GateId> still;
    for (const GateId g : pending) {
      const Gate& gate = netlist_.gate(g);
      const bool ready = std::all_of(gate.inputs.begin(), gate.inputs.end(), [&](NetId in) {
        return net_known[static_cast<std::size_t>(in)];
      });
      if (!ready) {
        still.push_back(g);
        continue;
      }
      values_[static_cast<std::size_t>(gate.outputs[0])] = eval_combinational(gate);
      net_known[static_cast<std::size_t>(gate.outputs[0])] = true;
      progress = true;
    }
    pending = std::move(still);
  }
  NSHOT_ASSERT(pending.empty(), "initialize: combinational cycle or undriven input");
  projected_ = values_;

  // Arm storage elements that are excited in the initial state.
  for (GateId g = 0; g < netlist_.num_gates(); ++g) {
    const Gate& gate = netlist_.gate(g);
    if (gate.type == GateType::kMhsFlipFlop) {
      handle_mhs_input(g);
    } else if (gatelib::is_storage(gate.type) || gate.feedback_cut) {
      const bool target = gate.feedback_cut ? values_[static_cast<std::size_t>(gate.inputs[0])]
                                            : eval_combinational(gate);
      if (target != projected_[static_cast<std::size_t>(gate.outputs[0])])
        schedule_net(gate.outputs[0], target, gate_delay_[static_cast<std::size_t>(g)]);
    }
  }
}

void Simulator::set_input(NetId net, bool value, double at_time) {
  NSHOT_REQUIRE(at_time + kTimeEps >= now_, "cannot schedule input change in the past");
  schedule_net(net, value, at_time);
}

void Simulator::schedule_net(NetId net, bool value, double time, std::uint64_t generation) {
  // Driver activity on a pinned net is swallowed by the fault, not merely
  // dropped at commit time: scheduling it would corrupt the projected view
  // (release_net re-derives the driver value from scratch).
  if (forced_[static_cast<std::size_t>(net)]) return;
  if (generation == 0 && projected_[static_cast<std::size_t>(net)] == value) return;
  projected_[static_cast<std::size_t>(net)] = value;
  events_.push(Event{time, next_seq_++, EventKind::kNetChange, net, value, generation});
}

void Simulator::commit_net(NetId net, bool value, bool forced_commit) {
  if (forced_[static_cast<std::size_t>(net)] && !forced_commit) return;
  if (values_[static_cast<std::size_t>(net)] == value) return;
  values_[static_cast<std::size_t>(net)] = value;
  ++toggles_[static_cast<std::size_t>(net)];
  if (observer_) observer_(net, value, now_);
  for (const GateId g : fanout_[static_cast<std::size_t>(net)]) evaluate_gate(g);
}

void Simulator::force_net(NetId net, bool value) {
  NSHOT_REQUIRE(initialized_, "initialize the simulator before forcing nets");
  forced_[static_cast<std::size_t>(net)] = true;
  // Pin both the committed and projected views: pending driver events for
  // this net still pop but commit_net drops them while the force holds.
  projected_[static_cast<std::size_t>(net)] = value;
  commit_net(net, value, /*forced_commit=*/true);
}

void Simulator::release_net(NetId net) {
  NSHOT_REQUIRE(initialized_, "initialize the simulator before releasing nets");
  NSHOT_REQUIRE(forced_[static_cast<std::size_t>(net)], "release_net on a net that is not forced");
  forced_[static_cast<std::size_t>(net)] = false;
  // Restore the driver's present output immediately (zero-delay snap-back —
  // the fault, not the gate, owned the transition).  Storage drivers cannot
  // be re-evaluated combinationally, so forcing is restricted to simple
  // gates and driverless nets.
  const auto driver = netlist_.driver(net);
  bool restored = values_[static_cast<std::size_t>(net)];
  if (driver.has_value()) {
    const Gate& gate = netlist_.gate(*driver);
    NSHOT_REQUIRE(gate.type == GateType::kAnd || gate.type == GateType::kOr ||
                      gate.type == GateType::kInv || gate.type == GateType::kBuf,
                  "release_net: net " + netlist_.net_name(net) +
                      " is driven by a non-combinational gate");
    restored = eval_combinational(gate);
  }
  projected_[static_cast<std::size_t>(net)] = restored;
  commit_net(net, restored, /*forced_commit=*/true);
}

void Simulator::advance_time(double t) {
  NSHOT_REQUIRE(initialized_, "initialize the simulator before advancing time");
  NSHOT_REQUIRE(t + kTimeEps >= now_, "cannot advance the clock into the past");
  NSHOT_REQUIRE(events_.empty() || t <= events_.top().time + kTimeEps,
                "cannot advance the clock past a pending event");
  now_ = std::max(now_, t);
}

void Simulator::evaluate_gate(GateId g) {
  const Gate& gate = netlist_.gate(g);
  switch (gate.type) {
    case GateType::kMhsFlipFlop:
      handle_mhs_input(g);
      return;
    case GateType::kInertialDelay: {
      InertialState& st = inertial_[static_cast<std::size_t>(g)];
      const NetId out = gate.outputs[0];
      const bool v = values_[static_cast<std::size_t>(gate.inputs[0])];
      if (st.has_pending) {  // cancel the scheduled (conflicting) change
        ++st.generation;
        st.has_pending = false;
        projected_[static_cast<std::size_t>(out)] = values_[static_cast<std::size_t>(out)];
      }
      if (values_[static_cast<std::size_t>(out)] != v) {
        st.has_pending = true;
        st.pending_value = v;
        projected_[static_cast<std::size_t>(out)] = v;
        events_.push(Event{now_ + gate_delay_[static_cast<std::size_t>(g)], next_seq_++,
                           EventKind::kNetChange, out, v, st.generation + 1});
      }
      return;
    }
    default: {
      const bool v = eval_combinational(gate);
      schedule_net(gate.outputs[0], v, now_ + gate_delay_[static_cast<std::size_t>(g)]);
      return;
    }
  }
}

void Simulator::handle_mhs_input(GateId g) {
  const Gate& gate = netlist_.gate(g);
  MhsState& st = mhs_[static_cast<std::size_t>(g)];
  NSHOT_ASSERT(gate.inputs.size() == 4,
               "MHS cell expects inputs {set, reset, enable_set, enable_reset}");
  // The acknowledgement AND gates are part of the cell (Figure 5): the
  // effective excitations gate the SOP outputs with the enable rails.
  const bool set = values_[static_cast<std::size_t>(gate.inputs[0])] &&
                   values_[static_cast<std::size_t>(gate.inputs[2])];
  const bool reset = values_[static_cast<std::size_t>(gate.inputs[1])] &&
                     values_[static_cast<std::size_t>(gate.inputs[3])];
  const bool q_projected = projected_[static_cast<std::size_t>(gate.outputs[0])];

  const double omega = lib_.mhs_threshold();
  if (set && st.set_rise < 0.0) {
    st.set_rise = now_;
    if (!q_projected)
      events_.push(Event{now_ + omega, next_seq_++, EventKind::kMhsProbe, g,
                         /*value=set side*/ true, 0});
  } else if (!set && st.set_rise >= 0.0) {
    // Falling edge: a pulse of width >= ω fires even if the probe has not
    // been processed yet (exact-width boundary); shorter pulses are
    // absorbed.
    if (now_ + kTimeEps >= st.set_rise + omega && !q_projected) {
      const double fire = st.set_rise + lib_.mhs_response();
      schedule_net(gate.outputs[0], true, fire);
      schedule_net(gate.outputs[1], false, fire);
    } else if (!q_projected) {
      ++mhs_absorbed_;  // sub-threshold pulse filtered by the master stage
    }
    st.set_rise = -1.0;
  }

  if (reset && st.reset_rise < 0.0) {
    st.reset_rise = now_;
    if (q_projected)
      events_.push(Event{now_ + omega, next_seq_++, EventKind::kMhsProbe, g,
                         /*value=reset side*/ false, 0});
  } else if (!reset && st.reset_rise >= 0.0) {
    if (now_ + kTimeEps >= st.reset_rise + omega && q_projected) {
      const double fire = st.reset_rise + lib_.mhs_response();
      schedule_net(gate.outputs[0], false, fire);
      schedule_net(gate.outputs[1], true, fire);
    } else if (q_projected) {
      ++mhs_absorbed_;
    }
    st.reset_rise = -1.0;
  }
}

void Simulator::handle_mhs_probe(GateId g, bool probing_set) {
  const Gate& gate = netlist_.gate(g);
  MhsState& st = mhs_[static_cast<std::size_t>(g)];
  const NetId q = gate.outputs[0];
  const NetId qb = gate.outputs[1];
  // Re-read on pop: the excitation must have been continuously high for ω
  // (any intermediate fall resets *_rise, so the window check suffices).
  if (probing_set) {
    const bool set = values_[static_cast<std::size_t>(gate.inputs[0])] &&
                     values_[static_cast<std::size_t>(gate.inputs[2])];
    if (set && st.set_rise >= 0.0 && now_ + kTimeEps >= st.set_rise + lib_.mhs_threshold() &&
        !projected_[static_cast<std::size_t>(q)]) {
      const double fire = st.set_rise + lib_.mhs_response();
      schedule_net(q, true, fire);
      schedule_net(qb, false, fire);
    }
  } else {
    const bool reset = values_[static_cast<std::size_t>(gate.inputs[1])] &&
                       values_[static_cast<std::size_t>(gate.inputs[3])];
    if (reset && st.reset_rise >= 0.0 && now_ + kTimeEps >= st.reset_rise + lib_.mhs_threshold() &&
        projected_[static_cast<std::size_t>(q)]) {
      const double fire = st.reset_rise + lib_.mhs_response();
      schedule_net(q, false, fire);
      schedule_net(qb, true, fire);
    }
  }
}

bool Simulator::step() {
  NSHOT_REQUIRE(initialized_, "initialize the simulator before stepping");
  if (events_.empty()) return false;
  if (max_events_ != 0 && events_processed_ >= max_events_) {
    budget_exhausted_ = true;
    return false;
  }
  ++events_processed_;
  const Event event = events_.top();
  events_.pop();
  now_ = event.time;

  if (event.kind == EventKind::kMhsProbe) {
    handle_mhs_probe(event.target, event.value);
    return true;
  }

  // Cancelled inertial events carry a stale generation.
  if (event.generation != 0) {
    const auto driver = netlist_.driver(event.target);
    NSHOT_ASSERT(driver.has_value(), "generation event on undriven net");
    const InertialState& st = inertial_[static_cast<std::size_t>(*driver)];
    if (!st.has_pending || event.generation != st.generation + 1) return true;  // stale
    inertial_[static_cast<std::size_t>(*driver)].has_pending = false;
  }
  commit_net(event.target, event.value);
  return true;
}

void Simulator::run_until(double time_limit) {
  while (!events_.empty() && events_.top().time <= time_limit)
    if (!step()) break;  // budget exhausted
}

double Simulator::next_event_time() const {
  NSHOT_REQUIRE(!events_.empty(), "no pending events");
  return events_.top().time;
}

long Simulator::total_toggles_excluding(const std::vector<NetId>& excluded) const {
  long total = 0;
  for (std::size_t n = 0; n < toggles_.size(); ++n) total += toggles_[n];
  for (const NetId n : excluded) total -= toggles_[static_cast<std::size_t>(n)];
  return total;
}

}  // namespace nshot::sim
