#include "logic/cube.hpp"

#include <bit>

#include "util/error.hpp"

namespace nshot::logic {

std::uint64_t Cube::input_mask(int num_inputs) {
  NSHOT_REQUIRE(num_inputs >= 0 && num_inputs <= 64, "cube supports at most 64 input variables");
  return num_inputs == 64 ? ~0ULL : ((1ULL << num_inputs) - 1ULL);
}

Cube Cube::full(int num_inputs, std::uint64_t outputs) {
  const std::uint64_t mask = input_mask(num_inputs);
  return Cube(mask, mask, outputs, num_inputs);
}

Cube Cube::minterm(std::uint64_t code, int num_inputs, std::uint64_t outputs) {
  const std::uint64_t mask = input_mask(num_inputs);
  NSHOT_REQUIRE((code & ~mask) == 0, "minterm code has bits beyond the declared inputs");
  return Cube(~code & mask, code & mask, outputs, num_inputs);
}

bool Cube::covers_minterm(std::uint64_t code) const {
  const std::uint64_t mask = input_mask(num_inputs_);
  return (((code & hi_) | (~code & lo_)) & mask) == mask;
}

bool Cube::contains(const Cube& other) const {
  return (other.lo_ & ~lo_) == 0 && (other.hi_ & ~hi_) == 0 && (other.out_ & ~out_) == 0;
}

bool Cube::input_intersects(const Cube& other) const {
  // Empty intersection iff some variable admits no common value.
  const std::uint64_t common = (lo_ & other.lo_) | (hi_ & other.hi_);
  return (common & input_mask(num_inputs_)) == input_mask(num_inputs_);
}

Cube Cube::supercube(const Cube& other) const {
  return Cube(lo_ | other.lo_, hi_ | other.hi_, out_ | other.out_, num_inputs_);
}

std::optional<Cube> Cube::input_intersection(const Cube& other) const {
  if (!input_intersects(other)) return std::nullopt;
  return Cube(lo_ & other.lo_, hi_ & other.hi_, out_ | other.out_, num_inputs_);
}

bool Cube::var_is_free(int v) const {
  const std::uint64_t bit = 1ULL << v;
  return (lo_ & bit) && (hi_ & bit);
}

void Cube::raise_var(int v) {
  const std::uint64_t bit = 1ULL << v;
  lo_ |= bit;
  hi_ |= bit;
}

void Cube::restrict_var(int v, bool value) {
  const std::uint64_t bit = 1ULL << v;
  if (value) {
    lo_ &= ~bit;
    hi_ |= bit;
  } else {
    lo_ |= bit;
    hi_ &= ~bit;
  }
}

int Cube::literal_count() const {
  const std::uint64_t free_vars = lo_ & hi_;
  return num_inputs_ - std::popcount(free_vars & input_mask(num_inputs_));
}

std::uint64_t Cube::minterm_count() const {
  const int free_vars = std::popcount(lo_ & hi_ & input_mask(num_inputs_));
  if (free_vars >= 63) return 1ULL << 63;
  return 1ULL << free_vars;
}

bool operator<(const Cube& a, const Cube& b) {
  if (a.lo_ != b.lo_) return a.lo_ < b.lo_;
  if (a.hi_ != b.hi_) return a.hi_ < b.hi_;
  return a.out_ < b.out_;
}

std::string Cube::to_string() const {
  std::string text;
  text.reserve(static_cast<std::size_t>(num_inputs_) + 8);
  for (int v = 0; v < num_inputs_; ++v) {
    const bool lo = (lo_ >> v) & 1ULL;
    const bool hi = (hi_ >> v) & 1ULL;
    if (lo && hi)
      text.push_back('-');
    else if (hi)
      text.push_back('1');
    else if (lo)
      text.push_back('0');
    else
      text.push_back('!');  // empty literal: never produced by the public API
  }
  text += " | ";
  for (int o = 63; o >= 0; --o)
    if ((out_ >> o) & 1ULL) {
      for (int p = o; p >= 0; --p) text.push_back(((out_ >> p) & 1ULL) ? '1' : '0');
      return text;
    }
  text.push_back('0');
  return text;
}

}  // namespace nshot::logic
