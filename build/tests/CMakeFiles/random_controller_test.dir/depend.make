# Empty dependencies file for random_controller_test.
# This may be replaced when dependencies are built.
