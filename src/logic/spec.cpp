#include "logic/spec.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nshot::logic {

TwoLevelSpec::TwoLevelSpec(int num_inputs, int num_outputs)
    : num_inputs_(num_inputs), num_outputs_(num_outputs) {
  NSHOT_REQUIRE(num_inputs >= 0 && num_inputs <= 64, "spec supports at most 64 inputs");
  NSHOT_REQUIRE(num_outputs >= 1 && num_outputs <= 64, "spec supports 1..64 outputs");
  on_.resize(static_cast<std::size_t>(num_outputs));
  off_.resize(static_cast<std::size_t>(num_outputs));
}

void TwoLevelSpec::add_on(int o, std::uint64_t code) {
  NSHOT_REQUIRE(o >= 0 && o < num_outputs_, "output index out of range");
  on_[o].push_back(code);
}

void TwoLevelSpec::add_off(int o, std::uint64_t code) {
  NSHOT_REQUIRE(o >= 0 && o < num_outputs_, "output index out of range");
  off_[o].push_back(code);
}

std::size_t TwoLevelSpec::on_pair_count() const {
  std::size_t count = 0;
  for (const auto& list : on_) count += list.size();
  return count;
}

void TwoLevelSpec::normalize() {
  for (auto* lists : {&on_, &off_}) {
    for (auto& list : *lists) {
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
    }
  }
}

void TwoLevelSpec::validate() const {
  for (int o = 0; o < num_outputs_; ++o) {
    for (const std::uint64_t code : on_[o]) {
      if (std::binary_search(off_[o].begin(), off_[o].end(), code))
        NSHOT_REQUIRE(false, "minterm " + std::to_string(code) + " is in both F and R of output " +
                                 std::to_string(o));
    }
  }
}

bool TwoLevelSpec::cube_valid_for_output(const Cube& cube, int o) const {
  for (const std::uint64_t code : off_[o])
    if (cube.covers_minterm(code)) return false;
  return true;
}

bool TwoLevelSpec::cube_is_valid(const Cube& cube) const {
  for (int o = 0; o < num_outputs_; ++o)
    if (cube.has_output(o) && !cube_valid_for_output(cube, o)) return false;
  return true;
}

}  // namespace nshot::logic
