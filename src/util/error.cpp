#include "util/error.hpp"

namespace nshot {

void raise_error(const char* file, int line, const std::string& message) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": " + message);
}

}  // namespace nshot
