// The unified Request/Response surface: spec resolution, kind + override
// layering, the deterministic payload contract, and the legacy
// run/run_g/run_checked/run_checked_g wrappers staying faithful to
// submit() (same results, original exception types on the throwing
// paths).
#include <gtest/gtest.h>

#include <string>

#include "bench_suite/benchmarks.hpp"
#include "nshot/pipeline.hpp"
#include "util/error.hpp"

namespace nshot {
namespace {

const char* kXyzG = R"(
.model xyz
.inputs x
.outputs y z
.graph
x+ y+
y+ z+
z+ x-
x- y-
y- z-
z- x+
.marking { <z-,x+> }
.end
)";

PipelineOptions quiet_options() {
  PipelineOptions options;
  options.collect_observability = false;
  options.conformance.runs = 4;
  return options;
}

// The CSC-violating two-signal graph from nshot_test: two states share
// the code 0b00, so synthesis must reject it with SynthesisError.
sg::StateGraph csc_violation_graph() {
  sg::StateGraph g("bad");
  const sg::SignalId x = g.add_signal("x", sg::SignalKind::kInput);
  const sg::SignalId y = g.add_signal("y", sg::SignalKind::kNonInput);
  const sg::StateId a = g.add_state(0b00);
  const sg::StateId b = g.add_state(0b01);
  const sg::StateId c = g.add_state(0b00);
  const sg::StateId d = g.add_state(0b10);
  g.add_edge(a, {x, true}, b);
  g.add_edge(b, {x, false}, c);
  g.add_edge(c, {y, true}, d);
  g.add_edge(d, {y, false}, a);
  g.set_initial(a);
  return g;
}

// ---------------------------------------------------------------------------
// Spec resolution
// ---------------------------------------------------------------------------

TEST(SubmitTest, ResolvesBenchSpec) {
  Pipeline pipeline(quiet_options());
  Request request;
  request.id = "r1";
  request.spec = "bench:chu133";
  const Response response = pipeline.submit(request);
  ASSERT_TRUE(response.outcome.ok()) << response.outcome.message;
  EXPECT_EQ(response.id, "r1");
  EXPECT_EQ(response.outcome.run->benchmark, "chu133");
  EXPECT_TRUE(response.outcome.run->conformance_ran);
}

TEST(SubmitTest, ResolvesGenSpecAndInlineGText) {
  Pipeline pipeline(quiet_options());
  Request gen;
  gen.spec = "gen:7";
  const Response from_gen = pipeline.submit(gen);
  // Generated circuits may fail classified, but never with an escaping
  // exception or an internal code.
  if (!from_gen.outcome.ok()) {
    EXPECT_NE(from_gen.outcome.code, ErrorCode::kInternal);
  }

  Request inline_g;
  inline_g.g_text = kXyzG;
  const Response from_text = pipeline.submit(inline_g);
  ASSERT_TRUE(from_text.outcome.ok()) << from_text.outcome.message;
  const std::vector<std::string> expected = {"parse", "reachability", "synthesize", "conformance"};
  EXPECT_EQ(from_text.outcome.stages_completed, expected);
}

TEST(SubmitTest, UnknownBenchmarkIsClassifiedAsLoad) {
  Pipeline pipeline(quiet_options());
  Request request;
  request.id = "nope";
  request.spec = "bench:does_not_exist";
  const Response response = pipeline.submit(request);
  ASSERT_FALSE(response.outcome.ok());
  EXPECT_EQ(response.outcome.stage, "load");
  // The request id is part of the context chain.
  EXPECT_NE(response.outcome.message.find("request nope"), std::string::npos)
      << response.outcome.message;
}

TEST(SubmitTest, RejectsAmbiguousOrMissingSpec) {
  Pipeline pipeline(quiet_options());
  const Response none = pipeline.submit(Request{});
  ASSERT_FALSE(none.outcome.ok());
  EXPECT_EQ(none.outcome.code, ErrorCode::kInputInvalid);
  EXPECT_EQ(none.outcome.stage, "load");

  Request both;
  both.spec = "bench:chu133";
  both.g_text = kXyzG;
  const Response two = pipeline.submit(both);
  ASSERT_FALSE(two.outcome.ok());
  EXPECT_EQ(two.outcome.code, ErrorCode::kInputInvalid);

  Request malformed;
  malformed.spec = "http:not-a-spec";
  const Response bad = pipeline.submit(malformed);
  ASSERT_FALSE(bad.outcome.ok());
  EXPECT_EQ(bad.outcome.code, ErrorCode::kInputInvalid);
}

// ---------------------------------------------------------------------------
// Kind + overrides
// ---------------------------------------------------------------------------

TEST(SubmitTest, KindSelectsTheStageSet) {
  Pipeline pipeline(quiet_options());
  Request request;
  request.g_text = kXyzG;

  request.kind = "synthesis";
  const Response synth = pipeline.submit(request);
  ASSERT_TRUE(synth.outcome.ok()) << synth.outcome.message;
  EXPECT_FALSE(synth.outcome.run->conformance_ran);
  EXPECT_FALSE(synth.outcome.run->stress_ran);

  request.kind = "conformance";
  const Response conf = pipeline.submit(request);
  ASSERT_TRUE(conf.outcome.ok()) << conf.outcome.message;
  EXPECT_TRUE(conf.outcome.run->conformance_ran);
  EXPECT_FALSE(conf.outcome.run->stress_ran);

  request.kind = "unheard-of";
  const Response bad = pipeline.submit(request);
  ASSERT_FALSE(bad.outcome.ok());
  EXPECT_EQ(bad.outcome.code, ErrorCode::kInputInvalid);
  EXPECT_EQ(bad.outcome.stage, "load");
}

TEST(SubmitTest, OverridesLayerOverBaseOptions) {
  Pipeline pipeline(quiet_options());
  Request request;
  request.g_text = kXyzG;
  request.overrides["runs"] = "2";
  request.overrides["seed"] = "99";
  const Response response = pipeline.submit(request);
  ASSERT_TRUE(response.outcome.ok()) << response.outcome.message;
  EXPECT_EQ(response.outcome.run->conformance.runs, 2);
  // The pipeline's own options are untouched — submit layers per call.
  EXPECT_EQ(pipeline.options().conformance.runs, 4);
  EXPECT_EQ(pipeline.options().run.seed, 1u);

  Request bad = request;
  bad.overrides["warp_factor"] = "9";
  const Response rejected = pipeline.submit(bad);
  ASSERT_FALSE(rejected.outcome.ok());
  EXPECT_EQ(rejected.outcome.code, ErrorCode::kInputInvalid);
  EXPECT_NE(rejected.outcome.message.find("warp_factor"), std::string::npos);
}

TEST(SubmitTest, DeadlineOverrideIsEnforced) {
  Pipeline pipeline(quiet_options());
  Request request;
  request.g_text = kXyzG;
  request.overrides["deadline_ms"] = "0.000001";
  const Response response = pipeline.submit(request);
  ASSERT_FALSE(response.outcome.ok());
  EXPECT_EQ(response.outcome.code, ErrorCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// Payload determinism
// ---------------------------------------------------------------------------

TEST(SubmitTest, PayloadJsonIsByteIdenticalAcrossRepeats) {
  Pipeline pipeline(quiet_options());
  Request request;
  request.id = "det";
  request.spec = "bench:chu133";
  const Response first = pipeline.submit(request);
  const Response second = pipeline.submit(request);
  ASSERT_TRUE(first.outcome.ok()) << first.outcome.message;
  EXPECT_EQ(first.payload_json(), second.payload_json());
  // And the payload is free of wall-clock fields by construction.
  EXPECT_EQ(first.payload_json().find("elapsed"), std::string::npos);
  EXPECT_NE(first.to_json().find("\"elapsed_ms\":"), std::string::npos);
}

TEST(SubmitTest, FailurePayloadCarriesTheTaxonomy) {
  Pipeline pipeline(quiet_options());
  Request request;
  request.id = "broken";
  request.g_text = ".model broken\n.inputs a a\n.end\n";
  const Response response = pipeline.submit(request);
  ASSERT_FALSE(response.outcome.ok());
  const std::string payload = response.payload_json();
  EXPECT_NE(payload.find("\"ok\":false"), std::string::npos) << payload;
  EXPECT_NE(payload.find("\"code\":\"input_invalid\""), std::string::npos) << payload;
  EXPECT_NE(payload.find("\"stage\":\"parse\""), std::string::npos) << payload;
}

// ---------------------------------------------------------------------------
// Legacy wrapper fidelity
// ---------------------------------------------------------------------------

TEST(LegacyWrapperTest, RunCheckedMatchesSubmitOutcome) {
  Pipeline pipeline(quiet_options());
  const RunOutcome wrapped = pipeline.run_checked_g(kXyzG);
  Request request;
  request.g_text = kXyzG;
  const RunOutcome direct = pipeline.submit(request).outcome;
  ASSERT_TRUE(wrapped.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(wrapped.stages_completed, direct.stages_completed);
  EXPECT_EQ(wrapped.run->conformance.external_transitions,
            direct.run->conformance.external_transitions);
  EXPECT_EQ(wrapped.run->conformance.internal_toggles, direct.run->conformance.internal_toggles);
}

TEST(LegacyWrapperTest, RunRethrowsTheOriginalExceptionType) {
  Pipeline pipeline(quiet_options());
  const sg::StateGraph bad = csc_violation_graph();
  // The wrapper routes through submit() internally but still surfaces the
  // ORIGINAL exception object, not a re-wrapped generic Error.
  EXPECT_THROW(pipeline.run(bad), core::SynthesisError);
  EXPECT_THROW(pipeline.run_g(".model broken\n.inputs a a\n.end\n"), Error);
}

TEST(LegacyWrapperTest, RunStillReturnsACompleteRun) {
  Pipeline pipeline(quiet_options());
  const PipelineRun run = pipeline.run(bench_suite::build_benchmark("chu133"));
  EXPECT_EQ(run.benchmark, "chu133");
  EXPECT_TRUE(run.conformance_ran);
  EXPECT_TRUE(run.ok());
}

}  // namespace
}  // namespace nshot
