# Empty compiler generated dependencies file for bench_area_breakdown.
# This may be replaced when dependencies are built.
