file(REMOVE_RECURSE
  "CMakeFiles/nshot_sg.dir/dot.cpp.o"
  "CMakeFiles/nshot_sg.dir/dot.cpp.o.d"
  "CMakeFiles/nshot_sg.dir/properties.cpp.o"
  "CMakeFiles/nshot_sg.dir/properties.cpp.o.d"
  "CMakeFiles/nshot_sg.dir/regions.cpp.o"
  "CMakeFiles/nshot_sg.dir/regions.cpp.o.d"
  "CMakeFiles/nshot_sg.dir/state_graph.cpp.o"
  "CMakeFiles/nshot_sg.dir/state_graph.cpp.o.d"
  "libnshot_sg.a"
  "libnshot_sg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nshot_sg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
