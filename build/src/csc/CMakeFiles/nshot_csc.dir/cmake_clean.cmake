file(REMOVE_RECURSE
  "CMakeFiles/nshot_csc.dir/csc_solver.cpp.o"
  "CMakeFiles/nshot_csc.dir/csc_solver.cpp.o.d"
  "libnshot_csc.a"
  "libnshot_csc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nshot_csc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
