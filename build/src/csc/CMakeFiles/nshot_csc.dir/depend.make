# Empty dependencies file for nshot_csc.
# This may be replaced when dependencies are built.
