// Tests for the reimplemented comparator methods (Table 2 columns) and
// their documented failure modes (footnotes (1) and (2)).
#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "bench_suite/benchmarks.hpp"
#include "nshot/synthesis.hpp"

namespace nshot::baselines {
namespace {

TEST(SynLikeTest, SucceedsOnDistributiveBenchmarks) {
  for (const char* name : {"chu133", "chu172", "full", "ebergen", "converta"}) {
    const auto outcome = synthesize_syn_like(bench_suite::build_benchmark(name));
    ASSERT_TRUE(outcome.ok()) << name;
    EXPECT_GT(outcome.result->stats.area, 0.0);
    // One C-element per non-input signal.
    int c_elements = 0;
    for (const auto& gate : outcome.result->circuit.gates())
      if (gate.type == gatelib::GateType::kCElement) ++c_elements;
    const sg::StateGraph g = bench_suite::build_benchmark(name);
    EXPECT_EQ(c_elements, static_cast<int>(g.noninput_signals().size())) << name;
  }
}

TEST(SynLikeTest, RejectsNonDistributiveWithNote1) {
  for (const char* name : {"pmcm1", "pmcm2", "combuf1", "sing2dual-out"}) {
    const auto outcome = synthesize_syn_like(bench_suite::build_benchmark(name));
    ASSERT_FALSE(outcome.ok()) << name;
    EXPECT_EQ(*outcome.failure, Failure::kNonDistributive) << name;
  }
}

TEST(SynLikeTest, ReadWriteNeedsStateSignalsNote2) {
  // The two excitation regions of c overlap in code space: no per-region
  // monotonous cube exists (Table 2 note (2) for SYN version 2.3).
  const auto outcome = synthesize_syn_like(bench_suite::build_benchmark("read-write"));
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(*outcome.failure, Failure::kNeedsStateSignals);
  // N-SHOT handles the same graph (Theorem 2 needs only CSC + trigger).
  EXPECT_NO_THROW(core::synthesize(bench_suite::build_benchmark("read-write")));
}

TEST(SisLikeTest, SucceedsOnDistributiveAndCountsPads) {
  const auto outcome = synthesize_sis_like(bench_suite::build_benchmark("chu133"));
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome.result->hazard_fixes, 0);  // feedback literals need pads
  int pads = 0;
  for (const auto& gate : outcome.result->circuit.gates())
    if (gate.type == gatelib::GateType::kInertialDelay) ++pads;
  EXPECT_EQ(pads, outcome.result->hazard_fixes);
}

TEST(SisLikeTest, PadsLengthenTheCriticalPath) {
  // vbe10b's next-state logic is feedback-free (outputs follow the master
  // input), so SIS-like needs no pads and is FASTER than N-SHOT — the
  // chu172 phenomenon of Table 2.  chu133 needs pads and is slower.
  const auto fast = synthesize_sis_like(bench_suite::build_benchmark("vbe10b"));
  ASSERT_TRUE(fast.ok());
  const auto padded = synthesize_sis_like(bench_suite::build_benchmark("chu133"));
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(fast.result->hazard_fixes, 0);
  EXPECT_LT(fast.result->stats.delay, padded.result->stats.delay);

  const core::SynthesisResult nshot_fast =
      core::synthesize(bench_suite::build_benchmark("vbe10b"));
  EXPECT_LT(fast.result->stats.delay, nshot_fast.stats.delay);
  const core::SynthesisResult nshot_padded =
      core::synthesize(bench_suite::build_benchmark("chu133"));
  EXPECT_GT(padded.result->stats.delay, nshot_padded.stats.delay);
}

TEST(SisLikeTest, RejectsNonDistributive) {
  const auto outcome = synthesize_sis_like(bench_suite::build_benchmark("pmcm2"));
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(*outcome.failure, Failure::kNonDistributive);
}

TEST(ComplexGateTest, HandlesEverythingImplementable) {
  // The complex-gate reference has no distributivity restriction.
  for (const char* name : {"chu172", "pmcm2", "read-write"}) {
    const auto outcome = synthesize_complex_gate(bench_suite::build_benchmark(name));
    ASSERT_TRUE(outcome.ok()) << name;
    EXPECT_GT(outcome.result->stats.area, 0.0);
  }
}

TEST(BaselineTest, FailureTextsMatchTableFootnotes) {
  EXPECT_NE(failure_text(Failure::kNonDistributive).find("(1)"), std::string::npos);
  EXPECT_NE(failure_text(Failure::kNeedsStateSignals).find("(2)"), std::string::npos);
}

TEST(BaselineTest, AreaComparisonShape) {
  // The qualitative Table 2 shape on a mid-size distributive circuit:
  // every method produces a valid netlist and the N-SHOT delay is
  // level-quantized like the others.
  const sg::StateGraph g = bench_suite::build_benchmark("hybridf");
  const auto sis = synthesize_sis_like(g);
  const auto syn = synthesize_syn_like(g);
  const core::SynthesisResult nshot = core::synthesize(g);
  ASSERT_TRUE(sis.ok());
  ASSERT_TRUE(syn.ok());
  EXPECT_GT(sis.result->stats.delay, nshot.stats.delay);   // pads cost time
  EXPECT_GT(nshot.stats.area, 0.0);
  EXPECT_GT(syn.result->stats.area, 0.0);
}

}  // namespace
}  // namespace nshot::baselines
