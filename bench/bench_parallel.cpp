// Parallel execution engine: speedup and determinism measurement.
//
// For each benchmark circuit, runs the Monte Carlo conformance sweep and
// the full stress campaign (margins + fault battery + adversarial search)
// twice — once with --jobs 1 and once with the parallel worker count — and
//   * asserts the two reports are byte-identical (the engine merges trial
//     results by index, so any divergence is a scheduling bug);
//   * records wall-clock times and the speedup in BENCH_parallel.json.
//
// The speedup number is only meaningful on a multi-core host; the JSON
// records `hardware_jobs` so CI (which regenerates this file on an 8-core
// runner) and a laptop run can be told apart.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "exec/thread_pool.hpp"
#include "faults/stress.hpp"
#include "nshot/synthesis.hpp"
#include "sim/conformance.hpp"
#include "util/error.hpp"

namespace {

using namespace nshot;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Min-of-N wall clock with sample standard deviation (same methodology
/// as bench_kernels: the minimum filters scheduler noise, the sd reports
/// how noisy the window was).  The serial and parallel legs interleave
/// their samples so a load spike lands on both.
struct MinTimer {
  double best = 0.0;
  double sum = 0.0, sumsq = 0.0;
  int n = 0;
  template <typename Body>
  void sample(Body&& body) {
    const auto t0 = Clock::now();
    body();
    const double ms = ms_since(t0);
    if (n++ == 0 || ms < best) best = ms;
    sum += ms;
    sumsq += ms * ms;
  }
  double mean() const { return n > 0 ? sum / n : 0.0; }
  double sd() const {
    if (n < 2) return 0.0;
    const double m = mean();
    return std::sqrt(std::max(0.0, (sumsq - static_cast<double>(n) * m * m) /
                                       static_cast<double>(n - 1)));
  }
};

std::string conformance_fingerprint(const sim::ConformanceReport& r) {
  std::ostringstream out;
  out << r.runs << '/' << r.external_transitions << '/' << r.internal_toggles << '/'
      << r.absorbed_pulses << '/' << r.simulated_time << '/' << r.deadlocks << '/'
      << r.budget_exhausted << '/' << r.violations.size();
  for (const sim::ConformanceViolation& v : r.violations)
    out << '|' << v.seed << '@' << v.time << ':' << v.description;
  return out.str();
}

struct CaseTiming {
  std::string name;
  int states = 0, signals = 0;
  double conf_serial_ms = 0, conf_parallel_ms = 0;
  double conf_serial_sd = 0, conf_parallel_sd = 0;
  double stress_serial_ms = 0, stress_parallel_ms = 0;
  double stress_serial_sd = 0, stress_parallel_sd = 0;
  bool identical = false;
};

CaseTiming measure(const std::string& name, int parallel_jobs, bool smoke) {
  const sg::StateGraph g = bench_suite::build_benchmark(name);
  const core::SynthesisResult result = core::synthesize(g);

  sim::ConformanceOptions conf;
  conf.seed = 7;
  conf.runs = smoke ? 8 : 96;
  conf.max_transitions = 150;

  faults::StressOptions stress;
  stress.seed = 2026;
  stress.margin_runs = smoke ? 2 : 8;
  stress.run.max_transitions = 100;
  stress.adversarial.restarts = smoke ? 1 : 4;
  stress.adversarial.iterations = smoke ? 5 : 40;
  stress.adversarial.run.max_transitions = 100;

  CaseTiming timing;
  timing.name = name;
  timing.states = g.num_states();
  timing.signals = g.num_signals();

  const int reps = smoke ? 1 : 7;
  sim::ConformanceReport conf_serial, conf_parallel;
  faults::StressReport stress_serial, stress_parallel;
  MinTimer conf_s_t, conf_p_t, stress_s_t, stress_p_t;
  for (int i = 0; i < reps; ++i) {
    conf.jobs = 1;
    conf_s_t.sample([&] { conf_serial = sim::check_conformance(g, result.circuit, conf); });
    conf.jobs = parallel_jobs;
    conf_p_t.sample([&] { conf_parallel = sim::check_conformance(g, result.circuit, conf); });
    stress.jobs = 1;
    stress.adversarial.jobs = 1;
    stress_s_t.sample(
        [&] { stress_serial = faults::run_stress(g, result.circuit, name, stress); });
    stress.jobs = parallel_jobs;
    stress.adversarial.jobs = parallel_jobs;
    stress_p_t.sample(
        [&] { stress_parallel = faults::run_stress(g, result.circuit, name, stress); });
  }
  timing.conf_serial_ms = conf_s_t.best;
  timing.conf_parallel_ms = conf_p_t.best;
  timing.conf_serial_sd = conf_s_t.sd();
  timing.conf_parallel_sd = conf_p_t.sd();
  timing.stress_serial_ms = stress_s_t.best;
  timing.stress_parallel_ms = stress_p_t.best;
  timing.stress_serial_sd = stress_s_t.sd();
  timing.stress_parallel_sd = stress_p_t.sd();

  timing.identical =
      conformance_fingerprint(conf_serial) == conformance_fingerprint(conf_parallel) &&
      faults::stress_report_json(stress_serial) == faults::stress_report_json(stress_parallel);
  return timing;
}

}  // namespace

int main(int argc, char** argv) {
  const int hardware = exec::hardware_jobs();
  const int parallel_jobs = 8;  // fixed so the determinism claim is portable
  bool smoke = false;
  const char* out_path = "BENCH_parallel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke")
      smoke = true;
    else
      out_path = argv[i];
  }

  std::printf("Parallel engine bench: jobs=1 vs jobs=%d (hardware threads: %d)%s\n\n",
              parallel_jobs, hardware, smoke ? " (smoke)" : "");
  std::printf("%-12s %12s %12s %8s %12s %12s %8s %6s\n", "circuit", "conf j1", "conf jN", "x",
              "stress j1", "stress jN", "x", "same");

  std::vector<CaseTiming> timings;
  for (const char* name : {"chu133", "converta", "vbe5b", "read-write"}) {
    const CaseTiming t = measure(name, parallel_jobs, smoke);
    NSHOT_REQUIRE(t.identical, "parallel report diverged from serial on " + t.name);
    std::printf("%-12s %10.1fms %10.1fms %7.2fx %10.1fms %10.1fms %7.2fx %6s\n", t.name.c_str(),
                t.conf_serial_ms, t.conf_parallel_ms, t.conf_serial_ms / t.conf_parallel_ms,
                t.stress_serial_ms, t.stress_parallel_ms, t.stress_serial_ms / t.stress_parallel_ms,
                t.identical ? "yes" : "NO");
    timings.push_back(t);
  }

  double serial_total = 0, parallel_total = 0;
  for (const CaseTiming& t : timings) {
    serial_total += t.conf_serial_ms + t.stress_serial_ms;
    parallel_total += t.conf_parallel_ms + t.stress_parallel_ms;
  }
  const double speedup = parallel_total > 0 ? serial_total / parallel_total : 0;
  std::printf("\ntotal: %.1fms serial, %.1fms parallel (%.2fx on %d hardware threads)\n",
              serial_total, parallel_total, speedup, hardware);

  std::ostringstream json;
  json << "{\n  \"hardware_jobs\": " << hardware << ",\n  \"parallel_jobs\": " << parallel_jobs
       << ",\n  \"smoke\": " << (smoke ? "true" : "false")
       << ",\n  \"byte_identical\": true,\n  \"total_speedup\": " << speedup
       << ",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const CaseTiming& t = timings[i];
    json << "    {\"name\": \"" << t.name << "\", \"states\": " << t.states
         << ", \"signals\": " << t.signals << ", \"hardware_concurrency\": " << hardware
         << ", \"conformance_serial_ms\": " << t.conf_serial_ms
         << ", \"conformance_serial_sd\": " << t.conf_serial_sd
         << ", \"conformance_parallel_ms\": " << t.conf_parallel_ms
         << ", \"conformance_parallel_sd\": " << t.conf_parallel_sd
         << ", \"stress_serial_ms\": " << t.stress_serial_ms
         << ", \"stress_serial_sd\": " << t.stress_serial_sd
         << ", \"stress_parallel_ms\": " << t.stress_parallel_ms
         << ", \"stress_parallel_sd\": " << t.stress_parallel_sd << "}"
         << (i + 1 < timings.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::ofstream(out_path) << json.str();
  std::printf("wrote %s\n", out_path);
  return 0;
}
