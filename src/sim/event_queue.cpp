#include "sim/event_queue.hpp"

#include <bit>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace nshot::sim {

// Scan forward from cursor_day_, visiting only OCCUPIED buckets (the
// occupancy bitmap, walked in ring order, enumerates the same days the
// classic day-by-day year scan would — minus the empty ones).  Buckets
// are sorted descending, so bucket.back() IS the bucket minimum; if its
// day is the bucket's day for this year, no unvisited bucket can hold an
// earlier day (days between the cursor and this one map to already-
// visited ring positions) and back() is the global minimum.  Within one
// year every bucket is visited at most once, so the same pass doubles as
// a global scan: if no bucket minimum lands on its in-year day, the
// overall minimum (tracked as `fallback` over the bucket minima) is
// beyond a year out — jump the cursor straight to its day.  Either way
// the element selected is the global (time, seq) minimum, which is what
// the pop-order contract needs.
void CalendarQueue::find_min() const {
  NSHOT_REQUIRE(size_ > 0, "CalendarQueue::find_min on empty queue");
  const std::size_t nb = buckets_.size();
  const std::size_t start = index_of(cursor_day_);
  const Event* fallback = nullptr;
  std::size_t fallback_bucket = 0;

  // Check one occupied bucket sitting `offset` days past the cursor; true
  // when its minimum lies on that exact day, which makes it the global
  // minimum.
  auto scan_bucket = [&](std::size_t b, std::size_t offset) -> bool {
    const Event& e = buckets_[b].back();
    if (day_of(e.time) == cursor_day_ + static_cast<std::int64_t>(offset)) {
      cursor_day_ += static_cast<std::int64_t>(offset);
      cache_min(b, e);
      return true;
    }
    if (fallback == nullptr || *fallback > e) {
      fallback = &e;
      fallback_bucket = b;
    }
    return false;
  };

  const std::size_t wstart = start >> 6;
  const std::size_t bstart = start & 63;
  // Buckets at index >= start (offset = b - start), in ascending order.
  for (std::uint64_t words = summary_ >> wstart; words != 0; words &= words - 1) {
    const std::size_t w = wstart + static_cast<std::size_t>(std::countr_zero(words));
    std::uint64_t bits = occupancy_[w];
    if (w == wstart) bits &= ~std::uint64_t{0} << bstart;
    for (; bits != 0; bits &= bits - 1) {
      const std::size_t b = (w << 6) + static_cast<std::size_t>(std::countr_zero(bits));
      if (scan_bucket(b, b - start)) return;
    }
  }
  // Wrapped buckets at index < start (offset = nb - start + b).
  const std::uint64_t low_words =
      wstart + 1 < 64 ? (std::uint64_t{1} << (wstart + 1)) - 1 : ~std::uint64_t{0};
  for (std::uint64_t words = summary_ & low_words; words != 0; words &= words - 1) {
    const std::size_t w = static_cast<std::size_t>(std::countr_zero(words));
    std::uint64_t bits = occupancy_[w];
    if (w == wstart) bits &= bstart != 0 ? (std::uint64_t{1} << bstart) - 1 : 0;
    for (; bits != 0; bits &= bits - 1) {
      const std::size_t b = (w << 6) + static_cast<std::size_t>(std::countr_zero(bits));
      if (scan_bucket(b, nb - start + b)) return;
    }
  }
  // All events live more than a year past the cursor.
  NSHOT_ASSERT(fallback != nullptr, "CalendarQueue::find_min lost events");
  cursor_day_ = day_of(fallback->time);
  cache_min(fallback_bucket, *fallback);
}

// Re-derive the day width from the inter-event gaps of up to 32 events
// staged in scratch_ (Brown's rule: width tracks the average gap so
// roughly one event lands per day).  scratch_ is sorted descending by the
// time resize() runs this, so the tail holds the events nearest the
// cursor — the ones about to be popped, whose spacing is the density the
// day width must match.  Sampling from the front instead would let a few
// far-future stragglers (a preloaded input schedule, say) inflate the
// width until the entire near-term wave lands in one bucket and every
// push pays a linear sorted insert.  Falls back to the current width
// when there are too few distinct times to measure.
double CalendarQueue::sampled_width() const {
  constexpr std::size_t kSamples = 32;
  double times[kSamples];
  const std::size_t n = std::min(kSamples, scratch_.size());
  for (std::size_t i = 0; i < n; ++i) times[i] = scratch_[scratch_.size() - n + i].time;
  if (n < 2) return width_;
  std::sort(times, times + n);
  double gap_sum = 0.0;
  std::size_t gaps = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const double gap = times[i] - times[i - 1];
    if (gap > 0.0) {
      gap_sum += gap;
      ++gaps;
    }
  }
  if (gaps == 0) return width_;
  return std::max(kMinWidth, 2.0 * gap_sum / static_cast<double>(gaps));
}

void CalendarQueue::resize(std::size_t new_buckets) {
  obs::count(obs::Counter::kCalendarResizes);
  obs::gauge(obs::Gauge::kCalendarFill,
             static_cast<double>(size_) / static_cast<double>(buckets_.size()));
  scratch_.clear();
  for (std::vector<Event>& bucket : buckets_) {
    scratch_.insert(scratch_.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  NSHOT_ASSERT(scratch_.size() == size_, "CalendarQueue::resize lost events");
  while (buckets_.size() < new_buckets && !spare_.empty()) {
    buckets_.push_back(std::move(spare_.back()));
    spare_.pop_back();
  }
  while (buckets_.size() > new_buckets) {
    spare_.push_back(std::move(buckets_.back()));
    buckets_.pop_back();
  }
  buckets_.resize(new_buckets);
  occupancy_.assign((new_buckets + 63) / 64, 0);
  summary_ = 0;
  // Distribute in descending (time, seq) order so every bucket comes out
  // sorted by construction (appends preserve the global order); the sort
  // runs before the width sample so sampled_width() sees the near-term
  // tail.
  std::sort(scratch_.begin(), scratch_.end(), [](const Event& a, const Event& b) { return a > b; });
  width_ = sampled_width();
  inv_width_ = 1.0 / width_;
  for (const Event& e : scratch_) {
    const std::size_t b = index_of(day_of(e.time));
    if (buckets_[b].empty()) mark_occupied(b);
    buckets_[b].push_back(e);
  }
  cursor_day_ = size_ > 0 ? day_of(scratch_.back().time) : 0;
  min_valid_ = false;
  ++resizes_;
}

void EventQueue::clear() {
  heap_.clear();
  calendar_.clear();
  // Adaptive state is per-trial: a fresh trial starts back on the heap
  // with a zeroed migration count, so its engine trajectory depends only
  // on the trial itself (the determinism contract clear() already keeps
  // for the calendar geometry).
  adaptive_on_calendar_ = false;
  migrations_ = 0;
}

}  // namespace nshot::sim
