// Trigger requirement (Requirement 1, Theorem 1) checking and repair.
//
// The MHS flip-flop only fires on a pulse wider than its threshold ω.  If a
// trigger region (Definition 7) is split across several SOP cubes, the
// excitation may be a train of arbitrarily short pulses and the flip-flop
// may never fire (Theorem 1, "only if" direction).  A cover satisfies the
// trigger requirement iff every trigger region of every non-input signal is
// entirely covered by a single cube ("trigger cube", Definition 8).
//
// Single-traversal SGs (Definition 9, Corollary 1) satisfy the requirement
// for free: a one-state trigger region is always inside some cube of any
// correct cover.  For non-single-traversal SGs the repair adds, for each
// violated trigger region, the supercube of its state codes — which is the
// unique minimal candidate trigger cube; if that supercube intersects the
// off-set, no trigger cube exists and the SG provably violates the trigger
// requirement (synthesis fails with a diagnostic).
#pragma once

#include <string>
#include <vector>

#include "logic/cover.hpp"
#include "logic/spec.hpp"
#include "nshot/spec_derivation.hpp"
#include "sg/regions.hpp"
#include "sg/state_graph.hpp"
#include "util/run_config.hpp"

namespace nshot::core {

struct TriggerIssue {
  sg::SignalId signal = -1;
  bool rising = true;
  std::vector<sg::StateId> trigger_region;
  bool repaired = false;  // supercube added; false => unrepairable
  std::string describe(const sg::StateGraph& sg) const;
};

struct TriggerReport {
  std::vector<TriggerIssue> issues;  // only regions that needed action
  int cubes_added = 0;

  /// True when every trigger region now has a trigger cube.
  bool satisfied() const {
    for (const TriggerIssue& issue : issues)
      if (!issue.repaired) return false;
    return true;
  }
};

/// True if some single cube of `cover` feeding output `output` covers every
/// code in `codes`.  Code-at-a-time scan — the reference membership kernel.
bool has_trigger_cube(const logic::Cover& cover, int output,
                      const std::vector<std::uint64_t>& codes);

/// The inherited RunConfig::reference_kernels switches the membership
/// check to the code-at-a-time has_trigger_cube scan instead of the
/// supercube-containment fast path — the byte-equality oracle for
/// tests/benches.  (The pre-RunConfig `reference_membership` alias shipped
/// one release of deprecation warnings and is gone.)
struct TriggerOptions : RunConfig {};

/// Check all trigger regions of all non-input signals against `cover` and
/// repair violations by adding supercubes where possible.  `regions` must
/// be compute_all_regions(sg).
TriggerReport enforce_trigger_requirement(const sg::StateGraph& sg,
                                          const std::vector<sg::SignalRegions>& regions,
                                          const DerivedSpec& derived, logic::Cover& cover,
                                          const TriggerOptions& options = {});

}  // namespace nshot::core
