file(REMOVE_RECURSE
  "libnshot_util.a"
)
