// Structural Verilog writer for synthesized netlists.
//
// The paper's industrial designs were validated by gate-level VERILOG
// simulation (Section V).  This writer emits a self-contained file: one
// structural module for the design plus behavioural primitive modules for
// the library cells (AND/OR with inversion bubbles are expanded inline;
// the MHS flip-flop, C-element, RS latch and delay elements get dedicated
// modules with parametrized delays matching the gate library's report
// model), so the output can be fed to any Verilog simulator.
#pragma once

#include <string>

#include "gatelib/gate_library.hpp"
#include "netlist/netlist.hpp"

namespace nshot::netlist {

/// Render `nl` as a self-contained Verilog file.
std::string write_verilog(const Netlist& nl, const gatelib::GateLibrary& lib);

}  // namespace nshot::netlist
