# Empty compiler generated dependencies file for bench_cycle_time.
# This may be replaced when dependencies are built.
