#include "util/strings.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

#include "util/error.hpp"

namespace nshot {

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) tokens.emplace_back(text.substr(start, i - start));
  }
  return tokens;
}

std::string strip_comment_and_trim(std::string_view line) {
  const std::size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  std::size_t begin = 0;
  while (begin < line.size() && std::isspace(static_cast<unsigned char>(line[begin]))) ++begin;
  std::size_t end = line.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(line[end - 1]))) --end;
  return std::string(line.substr(begin, end - begin));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

long parse_long(std::string_view text, long lo, long hi, std::string_view what) {
  const std::string copy(text);  // strtol needs a NUL terminator
  NSHOT_REQUIRE(!copy.empty(), std::string(what) + ": empty value");
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(copy.c_str(), &end, 10);
  NSHOT_REQUIRE(end == copy.c_str() + copy.size() && errno == 0,
                std::string(what) + ": '" + copy + "' is not a valid integer");
  NSHOT_REQUIRE(value >= lo && value <= hi,
                std::string(what) + ": " + copy + " is outside [" + std::to_string(lo) + ", " +
                    std::to_string(hi) + "]");
  return value;
}

int parse_int(std::string_view text, int lo, int hi, std::string_view what) {
  return static_cast<int>(parse_long(text, lo, hi, what));
}

double parse_double(std::string_view text, double lo, double hi, std::string_view what) {
  const std::string copy(text);
  NSHOT_REQUIRE(!copy.empty(), std::string(what) + ": empty value");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  NSHOT_REQUIRE(end == copy.c_str() + copy.size() && errno == 0 && std::isfinite(value),
                std::string(what) + ": '" + copy + "' is not a valid number");
  NSHOT_REQUIRE(value >= lo && value <= hi,
                std::string(what) + ": " + copy + " is outside the accepted range");
  return value;
}

void check_parser_text(std::string_view text, std::string_view what) {
  int line = 1;
  std::size_t column = 1;  // 1-based, counted in bytes
  std::size_t line_start = 0;
  auto where = [&] {
    return std::string(what) + ": line " + std::to_string(line) + ", column " +
           std::to_string(column);
  };
  for (std::size_t i = 0; i < text.size();) {
    column = i - line_start + 1;
    const unsigned char byte = static_cast<unsigned char>(text[i]);
    if (byte == '\n') {
      ++line;
      line_start = i + 1;
      ++i;
      continue;
    }
    NSHOT_REQUIRE(byte != 0, where() + ": NUL byte in text input");
    // UTF-8 well-formedness: ASCII passes; a lead byte must be followed by
    // the right number of continuation bytes; bare continuation bytes and
    // lead bytes beyond U+10FFFF's 4-byte form are malformed.
    std::size_t follow = 0;
    if (byte < 0x80) {
      follow = 0;
    } else if ((byte & 0xE0) == 0xC0) {
      follow = 1;
    } else if ((byte & 0xF0) == 0xE0) {
      follow = 2;
    } else if ((byte & 0xF8) == 0xF0) {
      follow = 3;
    } else {
      NSHOT_REQUIRE(false, where() + ": invalid UTF-8 byte");
    }
    NSHOT_REQUIRE(i + follow < text.size(), where() + ": truncated UTF-8 sequence");
    for (std::size_t k = 1; k <= follow; ++k)
      NSHOT_REQUIRE((static_cast<unsigned char>(text[i + k]) & 0xC0) == 0x80,
                    where() + ": truncated UTF-8 sequence");
    i += follow + 1;
    NSHOT_REQUIRE(i - line_start <= kMaxParserLine,
                  std::string(what) + ": line " + std::to_string(line) + " exceeds " +
                      std::to_string(kMaxParserLine) + " characters");
  }
}

}  // namespace nshot
