// Tests for the event-driven simulator: pure-delay propagation, inertial
// absorption, storage primitives, and the MHS flip-flop contract of
// Figure 4 (pulses < ω absorbed, pulses >= ω fire the output at rise + τ).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gatelib/gate_library.hpp"
#include "netlist/netlist.hpp"
#include "sim/event_sim.hpp"
#include "sim/mhs_structural.hpp"
#include "sim/vcd.hpp"
#include "util/error.hpp"

namespace nshot::sim {
namespace {

using gatelib::GateLibrary;
using gatelib::GateType;
using netlist::Gate;
using netlist::NetId;
using netlist::Netlist;

struct Change {
  double time;
  bool value;
};

/// Collect the committed changes of one net.
class Recorder {
 public:
  Recorder(Simulator& sim, NetId net) {
    sim.set_observer([this, net](NetId n, bool v, double t) {
      if (n == net) changes_.push_back({t, v});
    });
  }
  const std::vector<Change>& changes() const { return changes_; }

 private:
  std::vector<Change> changes_;
};

SimulatorOptions fixed_delays(std::uint64_t seed = 1) {
  SimulatorOptions options;
  options.seed = seed;
  options.randomize_delays = false;  // midpoint delays: deterministic timing
  return options;
}

// ----------------------------------------------------------- transport --

TEST(EventSimTest, AndGateWithInversionBubble) {
  Netlist nl("t");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId out = nl.add_net("out");
  nl.add_primary_input(a);
  nl.add_primary_input(b);
  nl.add_gate(Gate{.type = GateType::kAnd,
                   .name = "g",
                   .inputs = {a, b},
                   .inverted = {false, true},
                   .outputs = {out}});
  Simulator sim(nl, GateLibrary::standard(), fixed_delays());
  sim.initialize({{a, true}, {b, false}});
  EXPECT_TRUE(sim.value(out));  // a & !b settles true at t=0
  sim.set_input(b, true, 1.0);
  sim.run_until(100.0);
  EXPECT_FALSE(sim.value(out));
}

TEST(EventSimTest, PureDelayPreservesPulseTrains) {
  // A chain of buffers must transport a train of three short pulses
  // unchanged (the pure delay model of Section IV-A).
  Netlist nl("t");
  const NetId in = nl.add_net("in");
  nl.add_primary_input(in);
  NetId prev = in;
  for (int i = 0; i < 3; ++i) {
    const NetId next = nl.add_net("n" + std::to_string(i));
    nl.add_gate(Gate{.type = GateType::kBuf,
                     .name = "b" + std::to_string(i),
                     .inputs = {prev},
                     .outputs = {next}});
    prev = next;
  }
  Simulator sim(nl, GateLibrary::standard(), fixed_delays());
  Recorder rec(sim, prev);
  sim.initialize({{in, false}});
  double t = 1.0;
  for (int pulse = 0; pulse < 3; ++pulse) {
    sim.set_input(in, true, t);
    sim.set_input(in, false, t + 0.05);  // much shorter than the gate delay
    t += 1.0;
  }
  sim.run_until(100.0);
  ASSERT_EQ(rec.changes().size(), 6u);  // 3 rises + 3 falls survive
}

TEST(EventSimTest, DelayLineShiftsInTime) {
  Netlist nl("t");
  const NetId in = nl.add_net("in");
  const NetId out = nl.add_net("out");
  nl.add_primary_input(in);
  nl.add_gate(Gate{.type = GateType::kDelayLine,
                   .name = "dl",
                   .inputs = {in},
                   .outputs = {out},
                   .explicit_delay = 5.0});
  Simulator sim(nl, GateLibrary::standard(), fixed_delays());
  Recorder rec(sim, out);
  sim.initialize({{in, false}});
  sim.set_input(in, true, 1.0);
  sim.set_input(in, false, 1.5);  // 0.5-wide pulse passes a transport delay
  sim.run_until(100.0);
  ASSERT_EQ(rec.changes().size(), 2u);
  EXPECT_NEAR(rec.changes()[0].time, 6.0, 1e-9);
  EXPECT_NEAR(rec.changes()[1].time, 6.5, 1e-9);
}

// ------------------------------------------------------------ inertial --

TEST(EventSimTest, InertialDelayAbsorbsShortPulse) {
  Netlist nl("t");
  const NetId in = nl.add_net("in");
  const NetId out = nl.add_net("out");
  nl.add_primary_input(in);
  nl.add_gate(Gate{.type = GateType::kInertialDelay,
                   .name = "id",
                   .inputs = {in},
                   .outputs = {out},
                   .explicit_delay = 1.0});
  Simulator sim(nl, GateLibrary::standard(), fixed_delays());
  Recorder rec(sim, out);
  sim.initialize({{in, false}});
  sim.set_input(in, true, 1.0);
  sim.set_input(in, false, 1.4);  // 0.4 < 1.0: absorbed
  sim.set_input(in, true, 5.0);
  sim.set_input(in, false, 7.0);  // 2.0 > 1.0: passes
  sim.run_until(100.0);
  ASSERT_EQ(rec.changes().size(), 2u);
  EXPECT_NEAR(rec.changes()[0].time, 6.0, 1e-9);
  EXPECT_NEAR(rec.changes()[1].time, 8.0, 1e-9);
}

// ------------------------------------------------------------- storage --

TEST(EventSimTest, RsLatchSetsResetsAndHolds) {
  Netlist nl("t");
  const NetId s = nl.add_net("s");
  const NetId r = nl.add_net("r");
  const NetId q = nl.add_net("q");
  nl.add_primary_input(s);
  nl.add_primary_input(r);
  nl.add_gate(Gate{.type = GateType::kRsLatch, .name = "l", .inputs = {s, r}, .outputs = {q}});
  Simulator sim(nl, GateLibrary::standard(), fixed_delays());
  sim.initialize({{s, false}, {r, false}, {q, false}});
  sim.set_input(s, true, 1.0);
  sim.set_input(s, false, 2.0);
  sim.run_until(3.0);
  EXPECT_TRUE(sim.value(q));  // latched through s=r=0
  sim.set_input(r, true, 4.0);
  sim.set_input(r, false, 5.0);
  sim.run_until(6.0);
  EXPECT_FALSE(sim.value(q));
}

TEST(EventSimTest, CElementWaitsForBothInputs) {
  Netlist nl("t");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId q = nl.add_net("q");
  nl.add_primary_input(a);
  nl.add_primary_input(b);
  nl.add_gate(Gate{.type = GateType::kCElement, .name = "c", .inputs = {a, b}, .outputs = {q}});
  Simulator sim(nl, GateLibrary::standard(), fixed_delays());
  sim.initialize({{a, false}, {b, false}, {q, false}});
  sim.set_input(a, true, 1.0);
  sim.run_until(3.0);
  EXPECT_FALSE(sim.value(q));  // holds until both are 1
  sim.set_input(b, true, 4.0);
  sim.run_until(8.0);
  EXPECT_TRUE(sim.value(q));
  sim.set_input(a, false, 9.0);
  sim.run_until(12.0);
  EXPECT_TRUE(sim.value(q));  // holds until both are 0
  sim.set_input(b, false, 13.0);
  sim.run_until(16.0);
  EXPECT_FALSE(sim.value(q));
}

// --------------------------------------------------- MHS flip-flop cell --

/// Four-input MHS cell with both enables tied high through const rails.
struct MhsFixture {
  Netlist nl{"mhs"};
  NetId set, reset, en_set, en_reset, q, qb;

  MhsFixture() {
    set = nl.add_net("set");
    reset = nl.add_net("reset");
    en_set = nl.add_net("en_set");
    en_reset = nl.add_net("en_reset");
    q = nl.add_net("q");
    qb = nl.add_net("qb");
    for (const NetId n : {set, reset, en_set, en_reset}) nl.add_primary_input(n);
    nl.add_gate(Gate{.type = GateType::kMhsFlipFlop,
                     .name = "ff",
                     .inputs = {set, reset, en_set, en_reset},
                     .outputs = {q, qb}});
  }
};

/// Figure 4 contract, swept over pulse widths: a set pulse of width w fires
/// the output at rise + τ iff w >= ω.
class MhsPulseWidthTest : public ::testing::TestWithParam<double> {};

TEST_P(MhsPulseWidthTest, PulseFiresIffAtLeastOmega) {
  const GateLibrary& lib = GateLibrary::standard();
  const double width = GetParam();
  MhsFixture f;
  Simulator sim(f.nl, lib, fixed_delays());
  Recorder rec(sim, f.q);
  sim.initialize({{f.set, false}, {f.reset, false}, {f.en_set, true}, {f.en_reset, true},
                  {f.q, false}, {f.qb, true}});
  sim.set_input(f.set, true, 10.0);
  sim.set_input(f.set, false, 10.0 + width);
  sim.run_until(1000.0);
  if (width >= lib.mhs_threshold()) {
    ASSERT_EQ(rec.changes().size(), 1u) << "width " << width;
    EXPECT_TRUE(rec.changes()[0].value);
    // Output translated forward in time by τ from the pulse start.
    EXPECT_NEAR(rec.changes()[0].time, 10.0 + lib.mhs_response(), 1e-9);
  } else {
    EXPECT_TRUE(rec.changes().empty()) << "width " << width;
  }
}

INSTANTIATE_TEST_SUITE_P(WidthSweep, MhsPulseWidthTest,
                         ::testing::Values(0.05, 0.1, 0.2, 0.29, 0.3, 0.31, 0.5, 1.0, 2.0, 5.0));

TEST(MhsTest, PulseTrainConvertsToSingleTransition) {
  // Property 3: a stream of pulses produces exactly one output transition.
  const GateLibrary& lib = GateLibrary::standard();
  MhsFixture f;
  Simulator sim(f.nl, lib, fixed_delays());
  Recorder rec(sim, f.q);
  sim.initialize({{f.set, false}, {f.reset, false}, {f.en_set, true}, {f.en_reset, true},
                  {f.q, false}, {f.qb, true}});
  double t = 10.0;
  for (int i = 0; i < 6; ++i) {  // mixed sub- and super-threshold pulses
    const double width = (i % 2 == 0) ? 0.1 : 0.8;
    sim.set_input(f.set, true, t);
    sim.set_input(f.set, false, t + width);
    t += 2.0;
  }
  sim.run_until(1000.0);
  ASSERT_EQ(rec.changes().size(), 1u);
  EXPECT_TRUE(rec.changes()[0].value);
}

TEST(MhsTest, EnableGatesBlockExcitation) {
  const GateLibrary& lib = GateLibrary::standard();
  MhsFixture f;
  Simulator sim(f.nl, lib, fixed_delays());
  Recorder rec(sim, f.q);
  sim.initialize({{f.set, false}, {f.reset, false}, {f.en_set, false}, {f.en_reset, true},
                  {f.q, false}, {f.qb, true}});
  sim.set_input(f.set, true, 10.0);  // wide pulse, but enable_set = 0
  sim.set_input(f.set, false, 20.0);
  sim.run_until(100.0);
  EXPECT_TRUE(rec.changes().empty());
  // Raising the enable while set is high must fire (effective excitation).
  sim.set_input(f.set, true, 110.0);
  sim.set_input(f.en_set, true, 120.0);
  sim.run_until(200.0);
  ASSERT_EQ(rec.changes().size(), 1u);
  EXPECT_NEAR(rec.changes()[0].time, 120.0 + lib.mhs_response(), 1e-9);
}

TEST(MhsTest, ResetSideIsSymmetric) {
  const GateLibrary& lib = GateLibrary::standard();
  MhsFixture f;
  Simulator sim(f.nl, lib, fixed_delays());
  Recorder rec(sim, f.q);
  sim.initialize({{f.set, false}, {f.reset, false}, {f.en_set, true}, {f.en_reset, true},
                  {f.q, true}, {f.qb, false}});
  sim.set_input(f.reset, true, 10.0);
  sim.set_input(f.reset, false, 10.1);  // absorbed
  sim.set_input(f.reset, true, 20.0);   // fires
  sim.run_until(100.0);
  ASSERT_EQ(rec.changes().size(), 1u);
  EXPECT_FALSE(rec.changes()[0].value);
  EXPECT_NEAR(rec.changes()[0].time, 20.0 + lib.mhs_response(), 1e-9);
  EXPECT_TRUE(sim.value(f.qb));  // dual rail follows
}

// ---------------------------------------------------------------- VCD --

TEST(VcdTest, TraceContainsHeaderInitialValuesAndChanges) {
  Netlist nl("t");
  const NetId in = nl.add_net("in");
  const NetId out = nl.add_net("out");
  nl.add_primary_input(in);
  nl.add_gate(Gate{.type = GateType::kBuf, .name = "b", .inputs = {in}, .outputs = {out}});
  Simulator sim(nl, GateLibrary::standard(), fixed_delays());
  VcdRecorder recorder(nl, "1ns");
  sim.set_observer(recorder.observer());
  sim.initialize({{in, false}});
  recorder.capture_initial(sim);
  sim.set_input(in, true, 2.0);
  sim.run_until(100.0);
  const std::string vcd = recorder.write();
  EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1"), std::string::npos);
  EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
  EXPECT_NE(vcd.find("#20"), std::string::npos);  // input change at t=2.0 -> tick 20
}

TEST(VcdTest, WriteBeforeCaptureIsAnError) {
  Netlist nl("t");
  nl.add_primary_input(nl.add_net("x"));
  VcdRecorder recorder(nl);
  EXPECT_THROW(recorder.write(), Error);
}

// ------------------------------------------------------ structural MHS --

TEST(StructuralMhsTest, FiltersHazardousExcitationLikeBehaviouralModel) {
  // Drive the three-stage model (Figure 5) with a hazardous set stream and
  // a clean reset phase: the q output must make exactly one rise and one
  // fall (Figure 6's outcome), with the filter stage absorbing the
  // sub-threshold master activity.
  const GateLibrary& lib = GateLibrary::standard();
  StructuralMhs model = build_structural_mhs(lib.mhs_threshold());
  Simulator sim(model.circuit, lib, fixed_delays());
  std::vector<Change> q_changes;
  sim.set_observer([&](NetId n, bool v, double t) {
    if (n == model.nets.q) q_changes.push_back({t, v});
  });
  sim.initialize({{model.nets.set_in, false},
                  {model.nets.reset_in, false},
                  {model.nets.master_set, false},
                  {model.nets.master_reset, false},
                  {model.nets.q, false},
                  {model.nets.qb, true}});
  // Hazardous set stream: short spikes then a real excitation.
  sim.set_input(model.nets.set_in, true, 10.0);
  sim.set_input(model.nets.set_in, false, 10.05);
  sim.set_input(model.nets.set_in, true, 11.0);
  sim.set_input(model.nets.set_in, false, 11.08);
  sim.set_input(model.nets.set_in, true, 12.0);
  sim.set_input(model.nets.set_in, false, 14.0);
  // Clean reset phase afterwards.
  sim.set_input(model.nets.reset_in, true, 30.0);
  sim.set_input(model.nets.reset_in, false, 32.0);
  sim.run_until(1000.0);
  ASSERT_EQ(q_changes.size(), 2u);
  EXPECT_TRUE(q_changes[0].value);
  EXPECT_FALSE(q_changes[1].value);
}

TEST(StructuralMhsTest, SlaveCleansFilterDownTransitions) {
  // With overlapping hazardous excitation on BOTH rails, the slave stage
  // still produces monotonic behaviour on q/qb per phase.
  const GateLibrary& lib = GateLibrary::standard();
  StructuralMhs model = build_structural_mhs(lib.mhs_threshold());
  Simulator sim(model.circuit, lib, fixed_delays());
  long q_toggles = 0;
  sim.set_observer([&](NetId n, bool, double) {
    if (n == model.nets.q) ++q_toggles;
  });
  sim.initialize({{model.nets.set_in, false},
                  {model.nets.reset_in, false},
                  {model.nets.master_set, false},
                  {model.nets.master_reset, false},
                  {model.nets.q, false},
                  {model.nets.qb, true}});
  sim.set_input(model.nets.set_in, true, 10.0);
  sim.set_input(model.nets.set_in, false, 12.0);
  sim.run_until(20.0);
  EXPECT_EQ(q_toggles, 1);  // one clean rise despite master-stage activity
}

}  // namespace
}  // namespace nshot::sim
