#include "nshot/batch.hpp"

#include <chrono>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "nshot/journal.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace nshot {

namespace {

bool transient(ErrorCode code) {
  return code == ErrorCode::kResourceExhausted || code == ErrorCode::kDeadlineExceeded;
}

}  // namespace

BatchRunner::BatchRunner(BatchOptions options) : options_(std::move(options)) {}

std::vector<BatchEntry> BatchRunner::parse_manifest(const std::string& text) {
  std::vector<BatchEntry> entries;
  std::set<std::string> seen;
  std::istringstream stream(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    const std::string line = strip_comment_and_trim(raw);
    if (line.empty()) continue;
    const std::string where = "manifest line " + std::to_string(line_no);
    const std::vector<std::string> tokens = split_ws(line);
    NSHOT_REQUIRE(tokens.size() >= 2, where + ": expected '<id> <spec> [key=value ...]'");
    BatchEntry entry;
    entry.id = tokens[0];
    entry.spec = tokens[1];
    entry.line = line_no;
    NSHOT_REQUIRE(seen.insert(entry.id).second, where + ": duplicate run id '" + entry.id + "'");
    NSHOT_REQUIRE(starts_with(entry.spec, "bench:") || starts_with(entry.spec, "file:") ||
                      starts_with(entry.spec, "gen:"),
                  where + ": spec '" + entry.spec + "' must be bench:NAME, file:PATH or gen:SEED");
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      const std::size_t eq = tokens[i].find('=');
      NSHOT_REQUIRE(eq != std::string::npos && eq > 0,
                    where + ": expected key=value, got '" + tokens[i] + "'");
      const std::string key = tokens[i].substr(0, eq);
      NSHOT_REQUIRE(Request::known_override_keys().count(key) != 0,
                    where + ": unknown key '" + key + "'");
      entry.params[key] = tokens[i].substr(eq + 1);
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string BatchRunner::soak_manifest(int count, std::uint64_t base_seed,
                                       const std::string& extra_params) {
  std::ostringstream out;
  out << "# soak manifest: " << count << " generated circuits, base seed " << base_seed << "\n";
  for (int i = 0; i < count; ++i) {
    out << "gen-" << i << " gen:" << run_seed(base_seed, i);
    if (!extra_params.empty()) out << " " << extra_params;
    out << "\n";
  }
  return out.str();
}

Request BatchRunner::entry_request(const BatchEntry& entry) {
  Request request;
  request.id = entry.id;
  request.spec = entry.spec;
  request.overrides = entry.params;
  return request;
}

BatchSummary BatchRunner::run(const std::vector<BatchEntry>& entries) {
  BatchSummary summary;
  summary.total = static_cast<int>(entries.size());

  // Resume: a journal line is terminal only when complete (closing brace
  // survived the crash) and carries a status for a known id.
  const std::map<std::string, std::string> journaled = read_journal(options_.journal_path);

  std::ofstream journal_out;
  if (!options_.journal_path.empty()) {
    journal_out.open(options_.journal_path, std::ios::app);
    NSHOT_REQUIRE(static_cast<bool>(journal_out),
                  "cannot open batch journal " + options_.journal_path);
  }

  // One Pipeline for the whole batch: submit() layers each entry's
  // overrides per call, so per-run Pipelines would only add session and
  // fan-out overhead.  Batch runs never own an obs session.
  PipelineOptions base = options_.pipeline;
  base.collect_observability = false;
  Pipeline pipeline(base);

  for (const BatchEntry& entry : entries) {
    if (const auto it = journaled.find(entry.id); it != journaled.end()) {
      BatchRunResult result = journal_result(entry.id, it->second);
      ++summary.resumed;
      (result.ok ? summary.succeeded : summary.failed) += 1;
      if (!result.ok) ++summary.failures_by_code[error_code_name(result.code)];
      summary.runs.push_back(std::move(result));
      continue;
    }

    if (options_.stop_after > 0 && summary.executed >= options_.stop_after) {
      summary.stopped_early = true;
      break;
    }

    const Request request = entry_request(entry);
    const auto t0 = std::chrono::steady_clock::now();
    Response response;
    int attempts = 0;
    for (int attempt = 1;; ++attempt) {
      response = pipeline.submit(request);
      attempts = attempt;
      if (response.outcome.ok() || !transient(response.outcome.code) ||
          attempt > options_.max_retries)
        break;
      ++summary.retries;
      if (options_.backoff_ms > 0)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(options_.backoff_ms * attempt));
    }
    BatchRunResult result = batch_result(response);
    result.attempts = attempts;
    result.elapsed_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    if (options_.record_payloads) result.payload = response.payload_json();
    ++summary.executed;
    (result.ok ? summary.succeeded : summary.failed) += 1;
    if (!result.ok) ++summary.failures_by_code[error_code_name(result.code)];
    if (journal_out) journal_out << journal_line(result) << "\n" << std::flush;
    summary.runs.push_back(std::move(result));
  }
  return summary;
}

std::string BatchSummary::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("total").value(total);
  json.key("executed").value(executed);
  json.key("succeeded").value(succeeded);
  json.key("failed").value(failed);
  json.key("resumed").value(resumed);
  json.key("retries").value(retries);
  json.key("stopped_early").value(stopped_early);
  json.key("failures_by_code").begin_object();
  for (const auto& [code, count] : failures_by_code) json.key(code).value(count);
  json.end_object();
  json.key("runs").begin_array();
  for (const BatchRunResult& run : runs) {
    json.begin_object();
    json.key("id").value(run.id);
    json.key("ok").value(run.ok);
    json.key("resumed").value(run.resumed);
    json.key("attempts").value(run.attempts);
    json.key("elapsed_ms").value(run.elapsed_ms);
    json.key("kernel_fallbacks").value(run.kernel_fallbacks);
    if (!run.ok) {
      json.key("code").value(error_code_name(run.code));
      json.key("stage").value(run.stage);
      json.key("message").value(run.message);
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str() + "\n";
}

}  // namespace nshot
