// State graph model (Section III-A of the paper).
//
// A state graph (SG) is a finite automaton G = <X, S, T, delta, s0> where X
// is partitioned into input and non-input signals, each state carries a
// binary code over X, and each arc is labelled with a single signal
// transition (+x or -x).  State identity is explicit (two states may share
// one binary code — that is exactly what the CSC property is about), codes
// are labels.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace nshot::sg {

using SignalId = int;
using StateId = int;

enum class SignalKind { kInput, kNonInput };

struct Signal {
  std::string name;
  SignalKind kind;
};

/// A signal transition label: +x (rising) or -x (falling).
struct TransitionLabel {
  SignalId signal = -1;
  bool rising = true;

  friend bool operator==(const TransitionLabel&, const TransitionLabel&) = default;
};

struct Edge {
  TransitionLabel label;
  StateId target = -1;
};

/// The state graph.  Build with add_signal/add_state/add_edge/set_initial;
/// structural invariants (consistent codes, determinism, ...) are checked
/// separately by the functions in properties.hpp.
class StateGraph {
 public:
  StateGraph() = default;
  explicit StateGraph(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- construction -------------------------------------------------------
  SignalId add_signal(const std::string& name, SignalKind kind);
  StateId add_state(std::uint64_t code);
  void add_edge(StateId from, TransitionLabel label, StateId to);
  void set_initial(StateId s);

  // --- signals ------------------------------------------------------------
  int num_signals() const { return static_cast<int>(signals_.size()); }
  const Signal& signal(SignalId x) const { return signals_[static_cast<std::size_t>(x)]; }
  bool is_input(SignalId x) const { return signal(x).kind == SignalKind::kInput; }
  std::vector<SignalId> input_signals() const;
  std::vector<SignalId> noninput_signals() const;
  /// Index of the signal called `name`; std::nullopt if absent.
  std::optional<SignalId> find_signal(const std::string& name) const;

  // --- states and arcs ----------------------------------------------------
  int num_states() const { return static_cast<int>(codes_.size()); }
  std::uint64_t code(StateId s) const { return codes_[static_cast<std::size_t>(s)]; }
  std::span<const Edge> out_edges(StateId s) const {
    return std::span<const Edge>(edges_[static_cast<std::size_t>(s)]);
  }
  StateId initial() const { return initial_; }

  /// Value of signal x in state s (bit x of the code).
  bool value(StateId s, SignalId x) const { return (code(s) >> x) & 1ULL; }

  /// True if some transition of signal x is enabled in s.
  bool excited(StateId s, SignalId x) const;

  /// The state delta(s, t), if defined.
  std::optional<StateId> successor(StateId s, TransitionLabel t) const;

  bool enabled(StateId s, TransitionLabel t) const { return successor(s, t).has_value(); }

  /// All transition labels enabled in s.
  std::vector<TransitionLabel> enabled_labels(StateId s) const;

  // --- rendering ----------------------------------------------------------
  /// "a+" / "a-" for a label.
  std::string label_name(TransitionLabel t) const;
  /// Binary code of s as a string, LSB = signal 0, e.g. "a=1 b=0 c*=0".
  std::string state_name(StateId s) const;

 private:
  std::string name_;
  std::vector<Signal> signals_;
  std::vector<std::uint64_t> codes_;
  std::vector<std::vector<Edge>> edges_;
  StateId initial_ = -1;
};

}  // namespace nshot::sg
