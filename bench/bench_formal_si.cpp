// Delay-class classification by exhaustive verification — reproducing the
// paper's Section IV-A taxonomy with a machine check instead of prose:
//
//   * SYN-like (monotonous covers + C-elements): SPEED-INDEPENDENT on the
//     simple circuits — the exhaustive unbounded-delay check passes; on
//     the acknowledgement-heavy circuits the covers alone are not enough
//     (the paper's SYN adds extra hardware there, at the area cost that
//     Table 2 shows).
//   * N-SHOT: NOT speed-independent ("our designs in general are neither
//     speed-independent or delay-insensitive") — the verifier exhibits the
//     stale-SOP trespass that the acknowledgement scheme + Eq. 1 exclude
//     under bounded delays; the timed conformance sweep shows the same
//     circuits are clean in the bounded-delay model.
//   * complex-gate: hazardous once the "atomic" SOP is decomposed into
//     real gates — why [2, 17] must assume complex gates.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "baselines/baselines.hpp"
#include "bench_suite/benchmarks.hpp"
#include "formal/si_verifier.hpp"
#include "nshot/synthesis.hpp"
#include "sim/conformance.hpp"

namespace {

using namespace nshot;

const char* verdict(const formal::SiVerifyResult& result) {
  if (result.exhausted) return "inconclusive";
  return result.ok ? "SI: pass" : "SI: FAIL";
}

void print_classification() {
  std::printf("Delay-class classification (exhaustive unbounded-delay check vs timed check)\n\n");
  std::printf("%-15s | %-10s %-12s | %-10s | %-10s\n", "circuit", "nshot(SI)", "nshot(timed)",
              "syn(SI)", "cg(SI)");
  for (const auto& info : bench_suite::all_benchmarks()) {
    const sg::StateGraph g = info.build();
    if (g.num_states() > 80) continue;
    const core::SynthesisResult nshot = core::synthesize(g);
    if (nshot.circuit.num_nets() > 64) continue;

    const formal::SiVerifyResult nshot_si =
        formal::verify_external_hazard_freeness(g, nshot.circuit);
    sim::ConformanceOptions copt;
    copt.runs = 6;
    copt.max_transitions = 100;
    const sim::ConformanceReport timed = sim::check_conformance(g, nshot.circuit, copt);

    const auto syn = baselines::synthesize_syn_like(g);
    std::string syn_text = "n/a (1)";
    if (syn.ok())
      syn_text = verdict(formal::verify_external_hazard_freeness(g, syn.result->circuit));
    const auto cg = baselines::synthesize_complex_gate(g);
    std::string cg_text = "n/a";
    if (cg.ok() && cg.result->circuit.num_nets() <= 64)
      cg_text = verdict(formal::verify_external_hazard_freeness(g, cg.result->circuit));

    std::printf("%-15s | %-10s %-12s | %-10s | %-10s\n", info.name.c_str(), verdict(nshot_si),
                timed.clean() ? "clean" : "FAIL", syn_text.c_str(), cg_text.c_str());
  }
  std::printf(
      "\nReading: N-SHOT trades speed-independence for conventional logic\n"
      "minimization — hazard-free under the delay bounds Eq. 1 quantifies\n"
      "(timed column), not under unbounded delays (SI column).  The\n"
      "monotonous-cover method is SI where its covers need no extra\n"
      "acknowledgement hardware; bare complex-gate decompositions are not.\n");
}

void bm_si_verify(benchmark::State& state) {
  const sg::StateGraph g = bench_suite::build_benchmark("full");
  const auto syn = baselines::synthesize_syn_like(g);
  for (auto _ : state) {
    const auto result = formal::verify_external_hazard_freeness(g, syn.result->circuit);
    benchmark::DoNotOptimize(result.states_explored);
  }
}
BENCHMARK(bm_si_verify);

}  // namespace

int main(int argc, char** argv) {
  print_classification();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
