// Regenerates Table 2 of the paper: area/delay of the three synthesis
// methods over the 25-circuit benchmark suite, printed side by side with
// the numbers the paper reports.
//
// Columns: SIS = the bounded-delay method of Lavagno [5] (our sis_like
// reimplementation), SYN = Beerel's tool [1] (our syn_like monotonous-cover
// reimplementation), ASSASSIN = the paper's N-SHOT flow.  Footnotes as in
// the paper: (1) non-distributive SG, (2) must add state signals,
// (3) SYN 2.3 limitation, (4) input given in SG format (SIS cannot read
// it).  Absolute numbers use this repository's gate library (DESIGN.md);
// the comparison SHAPE — who wins, where, and why — is the reproduction
// target.
//
// After the table, google-benchmark times the synthesis flow itself on
// representative circuits.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/baselines.hpp"
#include "bench_suite/benchmarks.hpp"
#include "exec/thread_pool.hpp"
#include "nshot/synthesis.hpp"

namespace {

using namespace nshot;

std::string fmt_stats(double area, double delay) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.0f/%.1f", area, delay);
  return buf;
}

void print_table() {
  std::printf("Table 2: experimental results (paper value -> measured value)\n");
  std::printf("%-15s %6s %6s | %-20s | %-20s | %-20s\n", "circuit", "states", "states",
              "SIS  paper -> ours", "SYN  paper -> ours", "ASSASSIN paper -> ours");
  std::printf("%-15s %6s %6s |\n", "", "paper", "ours");

  // Rows are independent synthesis problems: build them in parallel and
  // print in suite order, so the table is identical at every jobs value.
  const auto& suite = bench_suite::all_benchmarks();
  const std::vector<std::string> rows =
      exec::parallel_map<std::string>(static_cast<int>(suite.size()), [&](int i) {
        const auto& info = suite[static_cast<std::size_t>(i)];
        const sg::StateGraph g = info.build();

        // SIS column: circuits given in SG format carry footnote (4).
        std::string sis_ours;
        if (info.sg_format) {
          sis_ours = "(4)";
        } else {
          const auto sis = baselines::synthesize_sis_like(g);
          sis_ours = sis.ok() ? fmt_stats(sis.result->stats.area, sis.result->stats.delay)
                              : baselines::failure_text(*sis.failure).substr(0, 3);
        }

        const auto syn = baselines::synthesize_syn_like(g);
        const std::string syn_ours =
            syn.ok() ? fmt_stats(syn.result->stats.area, syn.result->stats.delay)
                     : baselines::failure_text(*syn.failure).substr(0, 3);

        const core::SynthesisResult nshot = core::synthesize(g);
        const std::string nshot_ours = fmt_stats(nshot.stats.area, nshot.stats.delay);

        char line[160];
        std::snprintf(line, sizeof line, "%-15s %6d %6d | %9s -> %-8s | %9s -> %-8s | %9s -> %-8s\n",
                      info.name.c_str(), info.paper_states, g.num_states(), info.paper_sis.c_str(),
                      sis_ours.c_str(), info.paper_syn.c_str(), syn_ours.c_str(),
                      info.paper_assassin.c_str(), nshot_ours.c_str());
        return std::string(line);
      });
  for (const std::string& row : rows) std::fputs(row.c_str(), stdout);

  std::printf(
      "\nShape checks reproduced from the paper's discussion of Table 2:\n"
      "  * only ASSASSIN (N-SHOT) handles the non-distributive circuits;\n"
      "  * SYN needs state signals on read-write (note (2));\n"
      "  * SIS pays delay for inserted hazard-masking pads on most circuits\n"
      "    (and is occasionally faster where no pad is needed — the paper's\n"
      "    chu172 phenomenon);\n"
      "  * SYN and ASSASSIN share the level-quantized 3.6/4.8 delays.\n");
}

void bm_synthesize(benchmark::State& state, const std::string& name) {
  const sg::StateGraph g = bench_suite::build_benchmark(name);
  for (auto _ : state) {
    const core::SynthesisResult result = core::synthesize(g);
    benchmark::DoNotOptimize(result.stats.area);
  }
}

void bm_build_sg(benchmark::State& state, const std::string& name) {
  for (auto _ : state) {
    const sg::StateGraph g = bench_suite::build_benchmark(name);
    benchmark::DoNotOptimize(g.num_states());
  }
}

}  // namespace

int main(int argc, char** argv) {
  nshot::exec::set_default_jobs(nshot::exec::hardware_jobs());
  print_table();
  for (const char* name : {"chu133", "hybridf", "vbe10b", "read-write"}) {
    benchmark::RegisterBenchmark(("synthesize/" + std::string(name)).c_str(),
                                 [name](benchmark::State& s) { bm_synthesize(s, name); });
    benchmark::RegisterBenchmark(("reachability/" + std::string(name)).c_str(),
                                 [name](benchmark::State& s) { bm_build_sg(s, name); });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
