#include <algorithm>

#include "baselines/baselines.hpp"
#include "baselines/baselines_common.hpp"
#include "logic/espresso.hpp"
#include "nshot/hazard_analysis.hpp"
#include "logic/verify.hpp"
#include "sg/properties.hpp"
#include "util/error.hpp"

namespace nshot::baselines {

using gatelib::GateType;
using netlist::Gate;
using netlist::NetId;

namespace {

/// Static-1 hazard count of output `o` (see nshot/hazard_analysis.hpp):
/// these are the hazards [5] masks with inserted delays.
int count_static1_hazards(const sg::StateGraph& sg, const logic::TwoLevelSpec& spec,
                          const logic::Cover& cover, int o) {
  return static_cast<int>(core::static_one_hazards(sg, spec, cover, o).size());
}

}  // namespace

BaselineOutcome synthesize_sis_like(const sg::StateGraph& sg) {
  if (!sg::check_implementability(sg).ok())
    return BaselineOutcome{std::nullopt, Failure::kNotImplementable};
  if (!sg::is_distributive(sg)) return BaselineOutcome{std::nullopt, Failure::kNonDistributive};

  // Conventional two-level minimization of the next-state functions.
  const logic::TwoLevelSpec spec = detail::next_state_spec(sg);
  const logic::Cover cover = logic::espresso(spec);
  NSHOT_ASSERT(logic::verify_cover(spec, cover).ok, "sis_like cover incorrect");

  netlist::Netlist nl(sg.name() + "_sis");
  const std::vector<NetId> rails = detail::make_signal_rails(sg, nl);

  // Shared AND plane over single-rail literals.
  std::vector<NetId> cube_nets(cover.size(), -1);
  for (std::size_t c = 0; c < cover.size(); ++c)
    cube_nets[c] = detail::build_cube_gate(nl, cover[c], rails, "and" + std::to_string(c));

  const std::vector<sg::SignalId> noninputs = sg.noninput_signals();
  int total_fixes = 0;
  for (std::size_t k = 0; k < noninputs.size(); ++k) {
    const std::string base = sg.signal(noninputs[k]).name;
    std::vector<NetId> ors;
    for (std::size_t c = 0; c < cover.size(); ++c)
      if (cover[c].has_output(static_cast<int>(k))) ors.push_back(cube_nets[c]);
    NSHOT_REQUIRE(!ors.empty(), "sis_like: constant next-state function for " + base);
    const NetId sop = ors.size() == 1
                          ? ors[0]
                          : nl.build_tree(GateType::kOr, ors, {}, base + "_or",
                                          /*force_gate=*/true);

    // Hazard masking: an output needs an inertial pad when its cover has a
    // static-1 violation, or when it reads fed-back non-input literals (the
    // classic essential-hazard situation of Huffman-style feedback, which
    // the bounded-delay method of [5] masks with inserted delays).
    // Otherwise the feedback is a plain wire.  Either element also closes
    // the combinational feedback loop, so it is the analysis cut point.
    bool feedback_literal = false;
    for (const logic::Cube& cube : cover) {
      if (!cube.has_output(static_cast<int>(k))) continue;
      for (const sg::SignalId x : noninputs)
        if (!cube.var_is_free(x)) feedback_literal = true;
    }
    const int hazards =
        count_static1_hazards(sg, spec, cover, static_cast<int>(k)) + (feedback_literal ? 1 : 0);
    const gatelib::GateLibrary& lib = gatelib::GateLibrary::standard();
    if (hazards > 0) {
      ++total_fixes;
      nl.add_gate(Gate{.type = GateType::kInertialDelay,
                       .name = base + "_pad",
                       .inputs = {sop},
                       .outputs = {rails[static_cast<std::size_t>(noninputs[k])]},
                       .explicit_delay = 2.0 * lib.level_delay(),
                       .feedback_cut = true});
    } else {
      nl.add_gate(Gate{.type = GateType::kDelayLine,
                       .name = base + "_fb",
                       .inputs = {sop},
                       .outputs = {rails[static_cast<std::size_t>(noninputs[k])]},
                       .explicit_delay = 0.0,
                       .feedback_cut = true});
    }
  }

  nl.check_well_formed();
  BaselineResult result{std::move(nl), {}, total_fixes};
  result.stats = result.circuit.stats(gatelib::GateLibrary::standard());
  return BaselineOutcome{std::move(result), std::nullopt};
}

}  // namespace nshot::baselines
