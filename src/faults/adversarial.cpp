#include "faults/adversarial.hpp"

#include <algorithm>
#include <optional>

#include "exec/cancel.hpp"
#include "exec/thread_pool.hpp"
#include "obs/obs.hpp"
#include "sim/delay_space.hpp"
#include "sim/trial_batch.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nshot::faults {

namespace {

/// The concrete search box: per-gate [lo, hi] bounds plus the list of
/// gates the search may move.  Simple gates get the library interval
/// stretched by the stress factor; delay lines join the box only when
/// shaving is enabled (bounds [0, installed delay] — under-compensation
/// only, a longer line never hurts Eq. 1).
struct SearchSpace {
  std::vector<double> lo, hi;
  std::vector<netlist::GateId> movable;
};

SearchSpace make_space(const netlist::Netlist& circuit, const sim::DelaySpace& space,
                       const AdversarialOptions& options) {
  NSHOT_REQUIRE(options.stress_factor >= 1.0, "stress factor must be >= 1");
  SearchSpace box;
  const std::size_t n = static_cast<std::size_t>(circuit.num_gates());
  box.lo.resize(n);
  box.hi.resize(n);
  for (netlist::GateId g = 0; g < circuit.num_gates(); ++g) {
    const std::size_t i = static_cast<std::size_t>(g);
    box.lo[i] = space.stressed_lo(g, options.stress_factor);
    box.hi[i] = space.stressed_hi(g, options.stress_factor);
    if (!space.fixed(g)) {
      box.movable.push_back(g);
    } else if (options.shave_delay_lines &&
               circuit.gate(g).type == gatelib::GateType::kDelayLine) {
      box.lo[i] = 0.0;
      box.movable.push_back(g);
    }
  }
  return box;
}

std::vector<double> sample_uniform(const SearchSpace& box, const sim::DelaySpace& space,
                                   Rng& rng) {
  std::vector<double> delays = space.nominal_vector();
  for (const netlist::GateId g : box.movable) {
    const std::size_t i = static_cast<std::size_t>(g);
    delays[i] = box.lo[i] >= box.hi[i] ? box.lo[i] : rng.next_double(box.lo[i], box.hi[i]);
  }
  return delays;
}

struct Evaluation {
  double score = kNoMargin;  // min slack; -inf when the run violated
  ProbedRun run;
};

Evaluation evaluate(const sg::StateGraph& spec, const netlist::Netlist& circuit,
                    std::vector<double> delays, std::uint64_t env_seed,
                    const ScenarioOptions& options) {
  FaultScenario scenario;
  scenario.seed = env_seed;
  scenario.delays = std::move(delays);
  Evaluation eval;
  eval.run = run_probed(spec, circuit, scenario, options);
  eval.score = eval.run.report.violations.empty() ? eval.run.min_slack : -kNoMargin;
  return eval;
}

Evaluation evaluate(const sg::StateGraph& spec, const sim::SpecBinding& binding,
                    const sim::CompiledNetlist& compiled, std::vector<double> delays,
                    std::uint64_t env_seed, const ScenarioOptions& options,
                    sim::Simulator* reuse) {
  FaultScenario scenario;
  scenario.seed = env_seed;
  scenario.delays = std::move(delays);
  Evaluation eval;
  eval.run = run_probed(spec, binding, compiled, scenario, options, reuse);
  eval.score = eval.run.report.violations.empty() ? eval.run.min_slack : -kNoMargin;
  return eval;
}

Evaluation evaluate(const sg::StateGraph& spec, const sim::SpecBinding& binding,
                    std::vector<double> delays, std::uint64_t env_seed,
                    const ScenarioOptions& options, sim::TrialRunner& runner,
                    MarginProbe* probe) {
  FaultScenario scenario;
  scenario.seed = env_seed;
  scenario.delays = std::move(delays);
  Evaluation eval;
  eval.run = run_probed(spec, binding, scenario, options, runner, probe);
  eval.score = eval.run.report.violations.empty() ? eval.run.min_slack : -kNoMargin;
  return eval;
}

}  // namespace

namespace {

/// The best point one hill-climb restart found, plus its cost.  Restarts
/// are fully independent — each derives its environment stream and climb
/// RNG from (seed, restart) alone — so they can run on any thread.
struct RestartOutcome {
  double best_score = kNoMargin;
  double best_slack = kNoMargin;
  std::vector<double> delays;
  std::uint64_t env_seed = 0;
  sim::ConformanceReport report;
  bool violation_found = false;
  long evaluations = 0;
};

RestartOutcome climb_restart(const sg::StateGraph& spec, const netlist::Netlist& circuit,
                             const SearchSpace& box, const sim::DelaySpace& space,
                             const AdversarialOptions& options, int restart,
                             const sim::SpecBinding& binding,
                             const sim::CompiledNetlist& compiled) {
  // One environment stream per restart keeps the objective deterministic
  // in the delay vector, so accepted steps are genuine descents.
  const std::uint64_t env_seed = run_seed(options.seed, restart);
  Rng rng(env_seed ^ 0xadce5a17ULL);

  // The whole climb is a serial evaluate loop — the prime engine-reuse
  // site.  Engine three-way: uncompiled reference kernels, the frozen
  // pre-batch compiled driver, or (default) the calendar-queue
  // TrialRunner with a restart-reused MarginProbe.
  std::optional<sim::Simulator> reuse;
  std::optional<sim::TrialRunner> runner;
  std::optional<MarginProbe> probe;
  if (!options.reference_kernels) {
    if (options.reference_driver) {
      reuse.emplace(compiled, sim::SimulatorOptions{});
    } else {
      runner.emplace(compiled);
      probe.emplace(compiled.netlist(), compiled.lib());
    }
  }
  auto eval_point = [&](const std::vector<double>& delays) {
    return options.reference_kernels
               ? evaluate(spec, circuit, delays, env_seed, options.run)
           : options.reference_driver
               ? evaluate(spec, binding, compiled, delays, env_seed, options.run, &*reuse)
               : evaluate(spec, binding, delays, env_seed, options.run, *runner, &*probe);
  };

  RestartOutcome out;
  out.env_seed = env_seed;

  std::vector<double> current = sample_uniform(box, space, rng);
  Evaluation eval = eval_point(current);
  ++out.evaluations;
  double current_score = eval.score;
  auto take_best = [&](const std::vector<double>& delays, const Evaluation& e) {
    if (e.score < out.best_score || out.delays.empty()) {
      out.best_score = e.score;
      out.best_slack = e.run.min_slack;
      out.delays = delays;
      out.report = e.run.report;
      out.violation_found = !e.run.report.violations.empty();
    }
  };
  take_best(current, eval);

  for (int it = 0; it < options.iterations && !out.violation_found; ++it) {
    exec::checkpoint();
    if (box.movable.empty()) break;
    std::vector<double> candidate = current;
    const netlist::GateId g = box.movable[rng.next_below(box.movable.size())];
    const std::size_t i = static_cast<std::size_t>(g);
    if (rng.next_bool(0.6)) {
      // Corner snap: extreme delays expose the cliffs far more often
      // than interior points do.
      candidate[i] = rng.next_bool() ? box.hi[i] : box.lo[i];
    } else if (box.lo[i] < box.hi[i]) {
      candidate[i] = rng.next_double(box.lo[i], box.hi[i]);
    }
    Evaluation step = eval_point(candidate);
    ++out.evaluations;
    if (step.score <= current_score) {  // accept sideways moves too
      current = std::move(candidate);
      current_score = step.score;
      take_best(current, step);
    }
  }
  return out;
}

}  // namespace

AdversarialResult adversarial_delay_search(const sg::StateGraph& spec,
                                           const netlist::Netlist& circuit,
                                           const AdversarialOptions& options) {
  const obs::Span span("adversarial");
  const sim::CompiledNetlist compiled(circuit, gatelib::GateLibrary::standard());
  const sim::SpecBinding binding(spec, circuit);
  const sim::DelaySpace& space = compiled.delay_space();
  const SearchSpace box = make_space(circuit, space, options);

  std::vector<RestartOutcome> restarts = exec::parallel_map<RestartOutcome>(
      options.restarts,
      [&](int r) { return climb_restart(spec, circuit, box, space, options, r, binding, compiled); },
      options.jobs);

  // Merge in restart order, reproducing the serial sweep exactly: a strict
  // improvement replaces the incumbent (first restart wins ties) and
  // restarts after the first violating one are discarded — the serial loop
  // would never have run them, so neither their best point nor their
  // evaluation count may leak into the result.
  AdversarialResult result;
  double best_score = kNoMargin;
  for (RestartOutcome& out : restarts) {
    result.evaluations += out.evaluations;
    if (out.best_score < best_score || result.delays.empty()) {
      best_score = out.best_score;
      result.best_slack = out.best_slack;
      result.delays = std::move(out.delays);
      result.env_seed = out.env_seed;
      result.report = std::move(out.report);
      result.violation_found = out.violation_found;
    }
    if (result.violation_found) break;
  }
  // All restarts' evaluations, not just the merged ones: the counter
  // reflects work actually done, so it is nondeterministic across jobs
  // (parallel restarts past a violation still ran).
  for (const RestartOutcome& out : restarts)
    obs::count(obs::Counter::kAdversarialEvaluations, out.evaluations);
  return result;
}

MonteCarloResult stressed_monte_carlo(const sg::StateGraph& spec,
                                      const netlist::Netlist& circuit, int runs,
                                      const AdversarialOptions& options) {
  const sim::CompiledNetlist compiled(circuit, gatelib::GateLibrary::standard());
  const sim::SpecBinding binding(spec, circuit);
  const sim::DelaySpace& space = compiled.delay_space();
  const SearchSpace box = make_space(circuit, space, options);

  struct Trial {
    bool violated = false;
    double min_slack = kNoMargin;
  };
  std::vector<Trial> trials(static_cast<std::size_t>(std::max(runs, 0)));
  exec::parallel_for_chunks(
      runs, options.grain > 0 ? options.grain : exec::batch_grain(runs, options.jobs),
      [&](int begin, int end) {
        std::optional<sim::Simulator> reuse;
        std::optional<sim::TrialRunner> runner;
        std::optional<MarginProbe> probe;
        if (!options.reference_kernels) {
          if (options.reference_driver) {
            reuse.emplace(compiled, sim::SimulatorOptions{});
          } else {
            runner.emplace(compiled);
            probe.emplace(compiled.netlist(), compiled.lib());
          }
        }
        for (int r = begin; r < end; ++r) {
          const std::uint64_t seed = run_seed(options.seed, r);
          Rng rng(seed);
          const Evaluation eval =
              options.reference_kernels
                  ? evaluate(spec, circuit, sample_uniform(box, space, rng), seed, options.run)
              : options.reference_driver
                  ? evaluate(spec, binding, compiled, sample_uniform(box, space, rng), seed,
                             options.run, &*reuse)
                  : evaluate(spec, binding, sample_uniform(box, space, rng), seed, options.run,
                             *runner, &*probe);
          trials[static_cast<std::size_t>(r)] =
              Trial{!eval.run.report.violations.empty(), eval.run.min_slack};
        }
      },
      options.jobs);

  MonteCarloResult result;
  result.runs = runs;
  for (const Trial& trial : trials) {
    if (trial.violated) ++result.violating_runs;
    result.min_slack = std::min(result.min_slack, trial.min_slack);
  }
  return result;
}

}  // namespace nshot::faults
