// Kernel equivalence tests: every compiled / hashed / sorted-vector hot
// path introduced by the kernel layer must be byte-identical to the
// original reference implementation it replaced.  The reference paths are
// compiled in behind options flags (ConformanceOptions::reference_kernels,
// StressOptions::reference_kernels, ExactOptions::reference_sets,
// ReachabilityOptions::reference_maps, compute_regions_reference), so the
// comparison runs over randomly generated controllers in one binary.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bench_suite/generators.hpp"
#include "faults/stress.hpp"
#include "logic/exact.hpp"
#include "nshot/synthesis.hpp"
#include "sg/properties.hpp"
#include "sg/regions.hpp"
#include "sim/conformance.hpp"
#include "stg/g_format.hpp"
#include "stg/reachability.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nshot {
namespace {

/// Random staged-cycle controller (same generator family as
/// parallel_determinism_test.cpp).
std::string random_staged_cycle(Rng& rng, int index) {
  const int num_signals = 3 + static_cast<int>(rng.next_below(6));
  std::vector<std::string> names, inputs, outputs;
  for (int i = 0; i < num_signals; ++i) {
    const std::string name = "x" + std::to_string(i);
    names.push_back(name);
    (rng.next_bool(0.5) ? inputs : outputs).push_back(name);
  }
  if (inputs.empty()) {
    inputs.push_back(outputs.back());
    outputs.pop_back();
  }
  if (outputs.empty()) {
    outputs.push_back(inputs.back());
    inputs.pop_back();
  }
  std::vector<std::vector<std::string>> rising;
  std::vector<std::string> pool = names;
  while (!pool.empty()) {
    const std::size_t take = 1 + rng.next_below(std::min<std::size_t>(pool.size(), 3));
    std::vector<std::string> stage;
    for (std::size_t i = 0; i < take; ++i) {
      stage.push_back(pool.back() + "+");
      pool.pop_back();
    }
    rising.push_back(std::move(stage));
  }
  std::vector<std::vector<std::string>> stages = rising;
  for (const auto& stage : rising) {
    std::vector<std::string> falling;
    for (const std::string& t : stage) falling.push_back(t.substr(0, t.size() - 1) + "-");
    stages.push_back(std::move(falling));
  }
  return bench_suite::staged_cycle_g("keq" + std::to_string(index), inputs, outputs, stages);
}

std::string random_g_text(int seed) {
  Rng rng(static_cast<std::uint64_t>(seed) * 0x9E3779B9ULL + 17);
  return random_staged_cycle(rng, seed);
}

struct Generated {
  sg::StateGraph graph;
  core::SynthesisResult result;
};

std::optional<Generated> generate(int seed) {
  sg::StateGraph graph = bench_suite::build_g(random_g_text(seed));
  if (graph.noninput_signals().empty()) return std::nullopt;
  try {
    core::SynthesisResult result = core::synthesize(graph);
    return Generated{std::move(graph), std::move(result)};
  } catch (const Error&) {
    return std::nullopt;  // draw is not implementable (e.g. CSC conflict)
  }
}

std::string conformance_fingerprint(const sim::ConformanceReport& r) {
  std::string out = std::to_string(r.runs) + "/" + std::to_string(r.external_transitions) + "/" +
                    std::to_string(r.internal_toggles) + "/" + std::to_string(r.absorbed_pulses) +
                    "/" + std::to_string(r.simulated_time) + "/" + std::to_string(r.deadlocks) +
                    "/" + std::to_string(r.budget_exhausted);
  for (const sim::ConformanceViolation& v : r.violations)
    out += "|" + std::to_string(v.seed) + "@" + std::to_string(v.time) + ":" + v.description;
  return out;
}

/// Full structural fingerprint of a state graph: states with codes and
/// names, every edge, the initial state, signal table.
std::string sg_fingerprint(const sg::StateGraph& g) {
  std::string out = "init=" + std::to_string(g.initial()) + ";";
  for (int i = 0; i < g.num_signals(); ++i)
    out += g.signal(i).name + (g.is_input(i) ? "?" : "!") + ",";
  for (sg::StateId s = 0; s < g.num_states(); ++s) {
    out += "\n" + std::to_string(s) + ":" + g.state_name(s) + "=" + std::to_string(g.code(s));
    for (const sg::Edge& e : g.out_edges(s))
      out += " --" + g.label_name(e.label) + "--> " + std::to_string(e.target);
  }
  return out;
}

class KernelEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(KernelEquivalenceTest, ConformanceCompiledMatchesReference) {
  const auto gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "all-input controller";

  sim::ConformanceOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam()) * 13 + 7;
  options.runs = 10;
  options.max_transitions = 60;

  options.reference_kernels = true;
  const sim::ConformanceReport reference =
      sim::check_conformance(gen->graph, gen->result.circuit, options);
  options.reference_kernels = false;
  const sim::ConformanceReport compiled =
      sim::check_conformance(gen->graph, gen->result.circuit, options);

  EXPECT_EQ(conformance_fingerprint(reference), conformance_fingerprint(compiled));
}

TEST_P(KernelEquivalenceTest, SimulatorReuseMatchesFreshConstruction) {
  // One resettable Simulator reused across runs must reproduce what a
  // fresh Simulator produces for each run — reset() has to be equivalent
  // to reconstruction.
  const auto gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "all-input controller";

  const sim::CompiledNetlist compiled(gen->result.circuit, gatelib::GateLibrary::standard());
  const sim::SpecBinding binding(gen->graph, gen->result.circuit);
  sim::Simulator reuse(compiled, sim::SimulatorOptions{});

  for (int r = 0; r < 4; ++r) {
    sim::ClosedLoopConfig config;
    config.sim.seed = run_seed(static_cast<std::uint64_t>(GetParam()) * 13 + 7, r);
    config.sim.randomize_delays = true;
    config.max_transitions = 60;
    const sim::ConformanceReport fresh =
        sim::run_closed_loop(gen->graph, gen->result.circuit, config);
    const sim::ConformanceReport reused =
        sim::run_closed_loop(gen->graph, binding, compiled, config, nullptr, &reuse);
    EXPECT_EQ(conformance_fingerprint(fresh), conformance_fingerprint(reused)) << "run " << r;
  }
}

TEST_P(KernelEquivalenceTest, StressJsonCompiledMatchesReference) {
  const auto gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "all-input controller";

  faults::StressOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam()) * 5 + 3;
  options.margin_runs = 3;
  options.run.max_transitions = 60;
  options.adversarial.restarts = 2;
  options.adversarial.iterations = 15;
  options.adversarial.run.max_transitions = 60;

  options.reference_kernels = true;
  const std::string reference = faults::stress_report_json(
      faults::run_stress(gen->graph, gen->result.circuit, "keq", options));
  options.reference_kernels = false;
  const std::string compiled = faults::stress_report_json(
      faults::run_stress(gen->graph, gen->result.circuit, "keq", options));

  EXPECT_EQ(reference, compiled);
}

TEST_P(KernelEquivalenceTest, ExactMinimizeMatchesReferenceSets) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 29 + 11);
  const int num_inputs = 3 + static_cast<int>(rng.next_below(5));
  const int num_outputs = 1 + static_cast<int>(rng.next_below(3));
  logic::TwoLevelSpec spec(num_inputs, num_outputs);
  const std::uint64_t space = 1ULL << num_inputs;
  for (int o = 0; o < num_outputs; ++o) {
    for (std::uint64_t m = 0; m < space; ++m) {
      const double roll = rng.next_double(0.0, 1.0);
      if (roll < 0.35)
        spec.add_on(o, m);
      else if (roll < 0.75)
        spec.add_off(o, m);
    }
  }
  spec.normalize();

  logic::ExactOptions options;
  options.reference_sets = true;
  const logic::Cover reference = logic::exact_minimize(spec, options);
  const auto reference_primes = logic::generate_primes(spec, 0, options);
  options.reference_sets = false;
  const logic::Cover hashed = logic::exact_minimize(spec, options);
  const auto hashed_primes = logic::generate_primes(spec, 0, options);

  EXPECT_EQ(reference.to_string(), hashed.to_string());
  ASSERT_EQ(reference_primes.has_value(), hashed_primes.has_value());
  if (reference_primes) {
    ASSERT_EQ(reference_primes->size(), hashed_primes->size());
    for (std::size_t i = 0; i < reference_primes->size(); ++i)
      EXPECT_EQ((*reference_primes)[i].to_string(), (*hashed_primes)[i].to_string()) << i;
  }
}

TEST_P(KernelEquivalenceTest, ReachabilityMatchesReferenceMaps) {
  const stg::Stg net = stg::parse_g(random_g_text(GetParam()));

  stg::ReachabilityOptions options;
  options.reference_maps = true;
  const sg::StateGraph reference = stg::build_state_graph(net, options);
  const std::vector<bool> reference_values = stg::infer_initial_values(net, options);
  const std::vector<stg::TransitionId> reference_dead = stg::dead_transitions(net, options);
  options.reference_maps = false;
  const sg::StateGraph hashed = stg::build_state_graph(net, options);
  const std::vector<bool> hashed_values = stg::infer_initial_values(net, options);
  const std::vector<stg::TransitionId> hashed_dead = stg::dead_transitions(net, options);

  EXPECT_EQ(sg_fingerprint(reference), sg_fingerprint(hashed));
  EXPECT_EQ(reference_values, hashed_values);
  EXPECT_EQ(reference_dead, hashed_dead);
}

TEST(KernelEquivalenceFixedTest, ReachabilityWithDummiesMatchesReferenceMaps) {
  // Dummy saturation walks its own marking map; exercise it explicitly.
  const stg::Stg net = stg::parse_g(
      ".model dum\n.inputs a\n.outputs b\n.dummy d\n.graph\n"
      "a+ d\nd b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n");
  stg::ReachabilityOptions options;
  options.reference_maps = true;
  const sg::StateGraph reference = stg::build_state_graph(net, options);
  options.reference_maps = false;
  const sg::StateGraph hashed = stg::build_state_graph(net, options);
  EXPECT_EQ(sg_fingerprint(reference), sg_fingerprint(hashed));
}

TEST_P(KernelEquivalenceTest, RegionsMatchReference) {
  const auto gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "all-input controller";

  for (const sg::SignalId a : gen->graph.noninput_signals()) {
    const sg::SignalRegions fast = sg::compute_regions(gen->graph, a);
    const sg::SignalRegions reference = sg::compute_regions_reference(gen->graph, a);
    EXPECT_EQ(reference.to_string(gen->graph), fast.to_string(gen->graph)) << "signal " << a;
    for (const sg::ExcitationRegion& er : fast.regions) {
      EXPECT_TRUE(sg::verify_output_trapping(gen->graph, er));
      EXPECT_TRUE(sg::verify_trigger_reachability(gen->graph, er));
    }
  }
}

TEST_P(KernelEquivalenceTest, CodingChecksMatchOrderedReference) {
  // check_csc / check_usc / detonant_states were rewritten over sorted
  // vectors and hashed maps; compare against local ordered-container
  // reimplementations of the original algorithms.
  const auto gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "all-input controller";
  const sg::StateGraph& g = gen->graph;

  // USC reference: ordered map keyed by code, violations in state order.
  {
    std::vector<std::string> expected;
    std::map<std::uint64_t, sg::StateId> seen;
    for (sg::StateId s = 0; s < g.num_states(); ++s) {
      const auto [it, inserted] = seen.emplace(g.code(s), s);
      if (!inserted)
        expected.push_back("states " + g.state_name(it->second) + " and " + g.state_name(s) +
                           " share one binary code");
    }
    EXPECT_EQ(expected, sg::check_usc(g).violations);
  }

  // Detonant reference: distinct exciting successors via std::set.
  for (const sg::SignalId a : g.noninput_signals()) {
    std::vector<sg::StateId> expected;
    for (sg::StateId w = 0; w < g.num_states(); ++w) {
      if (g.excited(w, a)) continue;
      std::set<sg::StateId> exciting;
      for (const sg::Edge& e : g.out_edges(w))
        if (g.excited(e.target, a)) exciting.insert(e.target);
      if (exciting.size() >= 2) expected.push_back(w);
    }
    EXPECT_EQ(expected, sg::detonant_states(g, a)) << "signal " << a;
  }

  // CSC reference: ordered grouping by code.
  {
    auto excited_mask = [&](sg::StateId s) {
      std::uint64_t mask = 0;
      for (const sg::Edge& e : g.out_edges(s))
        if (!g.is_input(e.label.signal)) mask |= (1ULL << e.label.signal);
      return mask;
    };
    std::vector<std::string> expected;
    std::map<std::uint64_t, std::vector<sg::StateId>> by_code;
    for (sg::StateId s = 0; s < g.num_states(); ++s) by_code[g.code(s)].push_back(s);
    for (const auto& [code, states] : by_code) {
      if (states.size() < 2) continue;
      const std::uint64_t reference = excited_mask(states[0]);
      for (std::size_t i = 1; i < states.size(); ++i)
        if (excited_mask(states[i]) != reference)
          expected.push_back("CSC conflict between " + g.state_name(states[0]) + " and " +
                             g.state_name(states[i]) +
                             " (equal codes, different excited non-input signals)");
    }
    EXPECT_EQ(expected, sg::check_csc(g).violations);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelEquivalenceTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace nshot
