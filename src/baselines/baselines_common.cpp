#include "util/error.hpp"
#include "baselines/baselines_common.hpp"

#include "nshot/spec_derivation.hpp"

namespace nshot::baselines::detail {

logic::TwoLevelSpec next_state_spec(const sg::StateGraph& sg) {
  const std::vector<sg::SignalId> noninputs = sg.noninput_signals();
  logic::TwoLevelSpec spec(sg.num_signals(), static_cast<int>(noninputs.size()));
  for (sg::StateId s = 0; s < sg.num_states(); ++s) {
    for (std::size_t k = 0; k < noninputs.size(); ++k) {
      switch (core::classify_state(sg, s, noninputs[k])) {
        case core::Mode::kSet:
        case core::Mode::kQuiescentHigh:
          spec.add_on(static_cast<int>(k), sg.code(s));
          break;
        case core::Mode::kReset:
        case core::Mode::kQuiescentLow:
          spec.add_off(static_cast<int>(k), sg.code(s));
          break;
      }
    }
  }
  spec.normalize();
  spec.validate();
  return spec;
}

std::vector<netlist::NetId> make_signal_rails(const sg::StateGraph& sg, netlist::Netlist& nl) {
  std::vector<netlist::NetId> rails;
  rails.reserve(static_cast<std::size_t>(sg.num_signals()));
  for (int x = 0; x < sg.num_signals(); ++x) {
    const netlist::NetId net = nl.add_net(sg.signal(x).name);
    rails.push_back(net);
    if (sg.is_input(x))
      nl.add_primary_input(net);
    else
      nl.add_primary_output(net);
  }
  return rails;
}

netlist::NetId build_cube_gate(netlist::Netlist& nl, const logic::Cube& cube,
                               const std::vector<netlist::NetId>& rails,
                               const std::string& name) {
  std::vector<netlist::NetId> ins;
  std::vector<bool> inv;
  for (int x = 0; x < cube.num_inputs(); ++x) {
    if (cube.var_is_free(x)) continue;
    ins.push_back(rails[static_cast<std::size_t>(x)]);
    inv.push_back(!((cube.hi() >> x) & 1ULL));
  }
  NSHOT_REQUIRE(!ins.empty(), "baseline cube gate needs at least one literal");
  return nl.build_tree(gatelib::GateType::kAnd, ins, inv, name, /*force_gate=*/true);
}

}  // namespace nshot::baselines::detail
