// Minimal JSON document parser — the read-side counterpart of JsonWriter.
//
// The serve wire protocol (schemas/request.schema.json) and the batch
// journal are newline-delimited JSON; until now the repository only ever
// WROTE JSON (JsonWriter) and read its own output back with string scans
// (BatchRunner::journal_field).  A server that accepts requests from
// arbitrary clients needs a real parser: this one is dependency-free,
// recursive-descent over RFC 8259, with a depth cap and a size cap so a
// hostile request line cannot recurse or allocate without bound.
//
// Values are held in an immutable tree of JsonValue nodes.  Accessors are
// checked: as_string() on a number throws Error(kInputInvalid) naming the
// member path, so protocol code gets classified diagnostics for free.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace nshot {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Checked accessors; throw Error(kInputInvalid) on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  /// as_number() narrowed to an integral value (3.0 ok, 3.5 throws).
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  /// Members in source order (duplicate keys rejected at parse time).
  const std::vector<std::pair<std::string, JsonValue>>& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;
  /// Object member that must exist; throws naming `key` when absent.
  const JsonValue& at(const std::string& key) const;

  /// Convenience over find(): the member's value, or `fallback` when the
  /// member is absent or null.  Kind mismatches still throw.
  std::string string_or(const std::string& key, const std::string& fallback) const;
  double number_or(const std::string& key, double fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;

  static JsonValue make_bool(bool value);
  static JsonValue make_number(double value);
  static JsonValue make_string(std::string value);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // Shared so JsonValue stays cheaply copyable (the protocol layer passes
  // parsed requests by value); the tree is immutable after parsing.
  std::shared_ptr<const std::vector<JsonValue>> array_;
  std::shared_ptr<const std::vector<std::pair<std::string, JsonValue>>> object_;
};

/// Parse one complete JSON document.  Throws Error(kInputInvalid) with a
/// byte offset on malformed input, trailing garbage, nesting deeper than
/// 64 levels, or duplicate object keys.  `what` names the document in
/// error messages ("request line", "response", ...).
JsonValue parse_json(const std::string& text, const std::string& what = "JSON text");

}  // namespace nshot
