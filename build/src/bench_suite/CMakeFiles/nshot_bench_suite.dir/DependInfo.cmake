
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_suite/benchmarks.cpp" "src/bench_suite/CMakeFiles/nshot_bench_suite.dir/benchmarks.cpp.o" "gcc" "src/bench_suite/CMakeFiles/nshot_bench_suite.dir/benchmarks.cpp.o.d"
  "/root/repo/src/bench_suite/generators.cpp" "src/bench_suite/CMakeFiles/nshot_bench_suite.dir/generators.cpp.o" "gcc" "src/bench_suite/CMakeFiles/nshot_bench_suite.dir/generators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nshot_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/nshot_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/stg/CMakeFiles/nshot_stg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
