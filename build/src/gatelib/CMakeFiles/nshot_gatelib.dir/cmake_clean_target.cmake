file(REMOVE_RECURSE
  "libnshot_gatelib.a"
)
