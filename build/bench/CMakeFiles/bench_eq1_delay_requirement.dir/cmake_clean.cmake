file(REMOVE_RECURSE
  "CMakeFiles/bench_eq1_delay_requirement.dir/bench_eq1_delay_requirement.cpp.o"
  "CMakeFiles/bench_eq1_delay_requirement.dir/bench_eq1_delay_requirement.cpp.o.d"
  "bench_eq1_delay_requirement"
  "bench_eq1_delay_requirement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq1_delay_requirement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
