// Property tests of the calendar queue (sim/event_queue.hpp) against the
// binary heap it replaced.  The simulator's determinism contract only
// needs the queue to pop in (time, seq) order — any conforming queue
// produces byte-identical simulations — so the battery drives both
// structures through the same operation sequences and demands identical
// pop streams, while also pinning the calendar-specific machinery:
// same-tick FIFO stability, day/year geometry resizing under load, the
// behind-cursor push the simulator's now()-epsilon scheduling permits,
// and clear()'s arena-reuse + geometry-reset semantics (per-trial resize
// trajectories must not depend on what earlier trials scheduled).
//
// The CI matrix runs this binary under ASan and TSan.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace nshot::sim {
namespace {

Event make_event(double time, std::uint64_t seq) {
  Event e;
  e.time = time;
  e.seq = seq;
  e.kind = (seq % 3 == 0) ? EventKind::kMhsProbe : EventKind::kNetChange;
  e.target = static_cast<int>(seq % 17);
  e.value = (seq % 2) != 0;
  e.generation = seq * 7;
  return e;
}

void expect_same_event(const Event& a, const Event& b) {
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.target, b.target);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.generation, b.generation);
}

/// Drive both queues through the same pushes, then drain both and compare
/// the full pop streams.
void expect_same_drain(const std::vector<Event>& events) {
  BinaryHeapQueue heap;
  CalendarQueue calendar;
  for (const Event& e : events) {
    heap.push(e);
    calendar.push(e);
  }
  EXPECT_EQ(heap.size(), calendar.size());
  std::uint64_t last_seq = 0;
  double last_time = 0.0;
  bool first = true;
  while (!heap.empty()) {
    ASSERT_FALSE(calendar.empty());
    const Event want = heap.top();
    const Event got = calendar.top();
    expect_same_event(got, want);
    // The stream itself must be sorted by (time, seq).
    if (!first) EXPECT_TRUE(got.time > last_time || (got.time == last_time && got.seq > last_seq));
    first = false;
    last_time = got.time;
    last_seq = got.seq;
    heap.pop();
    calendar.pop();
  }
  EXPECT_TRUE(calendar.empty());
  EXPECT_EQ(calendar.size(), 0u);
}

TEST(CalendarQueueTest, DrainMatchesBinaryHeapOnUniformTimes) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    std::vector<Event> events;
    const int n = 50 + static_cast<int>(rng.next_below(2000));
    for (int i = 0; i < n; ++i)
      events.push_back(make_event(rng.next_double(0.0, 1000.0), static_cast<std::uint64_t>(i)));
    expect_same_drain(events);
  }
}

TEST(CalendarQueueTest, DrainMatchesBinaryHeapOnClusteredTimes) {
  // Simulator-shaped schedules: bursts of near-simultaneous events
  // separated by long idle gaps, which stress the width estimate (tiny
  // intra-burst gaps) and the year-wrap scan (inter-burst jumps).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    std::vector<Event> events;
    std::uint64_t seq = 0;
    double base = 0.0;
    const int bursts = 5 + static_cast<int>(rng.next_below(40));
    for (int b = 0; b < bursts; ++b) {
      base += rng.next_double(0.1, 5000.0);
      const int burst = 1 + static_cast<int>(rng.next_below(40));
      for (int i = 0; i < burst; ++i)
        events.push_back(make_event(base + rng.next_double(0.0, 0.01), seq++));
    }
    expect_same_drain(events);
  }
}

TEST(CalendarQueueTest, DrainMatchesBinaryHeapAcrossTimeScales) {
  // Mixed magnitudes (1e-6 .. 1e6) force events far outside the current
  // year, exercising find_min's fallback cursor jump.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    std::vector<Event> events;
    for (std::uint64_t i = 0; i < 600; ++i) {
      const double scale = std::pow(10.0, static_cast<double>(rng.next_below(13)) - 6.0);
      events.push_back(make_event(rng.next_double(0.0, 1.0) * scale, i));
    }
    expect_same_drain(events);
  }
}

TEST(CalendarQueueTest, InterleavedPushPopMatchesBinaryHeap) {
  // The simulator's actual access pattern: pops advance a clock and new
  // events land at clock + delay, occasionally at clock - 1e-9 (the
  // set_input epsilon), which pushes BEHIND the calendar cursor.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    BinaryHeapQueue heap;
    CalendarQueue calendar;
    std::uint64_t seq = 0;
    double now = 0.0;
    for (int op = 0; op < 5000; ++op) {
      const bool push = heap.empty() || rng.next_bool(0.55);
      if (push) {
        const double t = rng.next_bool(0.05) ? now - 1e-9 : now + rng.next_double(0.0, 20.0);
        const Event e = make_event(t, seq++);
        heap.push(e);
        calendar.push(e);
      } else {
        const Event want = heap.top();
        ASSERT_FALSE(calendar.empty());
        expect_same_event(calendar.top(), want);
        now = want.time;
        heap.pop();
        calendar.pop();
      }
      ASSERT_EQ(heap.size(), calendar.size());
    }
    while (!heap.empty()) {
      expect_same_event(calendar.top(), heap.top());
      heap.pop();
      calendar.pop();
    }
    EXPECT_TRUE(calendar.empty());
  }
}

TEST(CalendarQueueTest, SameTickEventsPopInFifoOrder) {
  // Every event on one tick: pop order must be exactly seq order (the
  // swap-remove storage must never leak into the observable order).
  CalendarQueue calendar;
  constexpr std::uint64_t kEvents = 500;
  for (std::uint64_t i = 0; i < kEvents; ++i) calendar.push(make_event(42.0, i));
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    ASSERT_FALSE(calendar.empty());
    expect_same_event(calendar.top(), make_event(42.0, i));
    calendar.pop();
  }
  EXPECT_TRUE(calendar.empty());
}

TEST(CalendarQueueTest, SameTickFifoSurvivesInterleavedTicks) {
  Rng rng(7);
  std::vector<Event> events;
  std::uint64_t seq = 0;
  for (int tick = 0; tick < 60; ++tick) {
    const double t = static_cast<double>(rng.next_below(10));  // heavy collisions
    for (std::uint64_t i = 0; i < 1 + rng.next_below(8); ++i)
      events.push_back(make_event(t, seq++));
  }
  expect_same_drain(events);
}

TEST(CalendarQueueTest, ResizesUnderLoadAndStaysOrdered) {
  Rng rng(11);
  CalendarQueue calendar;
  BinaryHeapQueue heap;
  // Fill far past the grow threshold (2 events per bucket from 16
  // buckets), then drain past the shrink threshold, checking order
  // throughout.
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const Event e = make_event(rng.next_double(0.0, 100.0), i);
    calendar.push(e);
    heap.push(e);
  }
  EXPECT_GT(calendar.resizes(), 0u);
  EXPECT_GT(calendar.num_buckets(), std::size_t{16});
  const std::size_t grown = calendar.num_buckets();
  while (!heap.empty()) {
    expect_same_event(calendar.top(), heap.top());
    calendar.pop();
    heap.pop();
  }
  EXPECT_LT(calendar.num_buckets(), grown);  // shrank on the way down
}

TEST(CalendarQueueTest, ClearResetsGeometryForArenaReuse) {
  CalendarQueue calendar;
  const std::size_t virgin_buckets = calendar.num_buckets();
  const double virgin_width = calendar.day_width();

  Rng rng(13);
  for (std::uint64_t i = 0; i < 5000; ++i)
    calendar.push(make_event(rng.next_double(0.0, 1e-3), i));  // tiny widths
  EXPECT_GT(calendar.resizes(), 0u);

  calendar.clear();
  EXPECT_TRUE(calendar.empty());
  EXPECT_EQ(calendar.size(), 0u);
  // Geometry must be back at the defaults: a reused queue's resize
  // trajectory depends only on what THIS trial schedules.
  EXPECT_EQ(calendar.num_buckets(), virgin_buckets);
  EXPECT_EQ(calendar.day_width(), virgin_width);

  // Reuse at a completely different time scale still matches the heap.
  BinaryHeapQueue heap;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    const Event e = make_event(rng.next_double(0.0, 1e6), i);
    calendar.push(e);
    heap.push(e);
  }
  while (!heap.empty()) {
    expect_same_event(calendar.top(), heap.top());
    calendar.pop();
    heap.pop();
  }
  EXPECT_TRUE(calendar.empty());
}

TEST(CalendarQueueTest, EventQueueDispatchesByKind) {
  EventQueue heap_backed;  // default
  EventQueue calendar_backed(QueueKind::kCalendar);
  EXPECT_EQ(heap_backed.kind(), QueueKind::kBinaryHeap);
  EXPECT_EQ(calendar_backed.kind(), QueueKind::kCalendar);

  Rng rng(17);
  for (std::uint64_t i = 0; i < 500; ++i) {
    const Event e = make_event(rng.next_double(0.0, 50.0), i);
    heap_backed.push(e);
    calendar_backed.push(e);
  }
  while (!heap_backed.empty()) {
    ASSERT_FALSE(calendar_backed.empty());
    expect_same_event(calendar_backed.top(), heap_backed.top());
    heap_backed.pop();
    calendar_backed.pop();
  }
  EXPECT_TRUE(calendar_backed.empty());

  heap_backed.clear();
  calendar_backed.clear();
  EXPECT_TRUE(heap_backed.empty());
  EXPECT_TRUE(calendar_backed.empty());
}

}  // namespace
}  // namespace nshot::sim
