#include "logic/bitslice.hpp"

#include <algorithm>
#include <bit>

namespace nshot::logic {

CodeBitPlanes::CodeBitPlanes(const std::vector<std::uint64_t>& codes, int num_inputs)
    : num_codes_(codes.size()),
      words_((codes.size() + 63) / 64),
      num_inputs_(num_inputs),
      codes_(codes),
      planes_(static_cast<std::size_t>(num_inputs) * words_, 0),
      full_(words_, 0) {
  for (std::size_t i = 0; i < num_codes_; ++i) {
    const std::uint64_t bit = 1ULL << (i & 63);
    const std::size_t word = i >> 6;
    full_[word] |= bit;
    std::uint64_t code = codes_[i];
    while (code) {
      const int v = std::countr_zero(code);
      code &= code - 1;
      if (v < num_inputs_) planes_[static_cast<std::size_t>(v) * words_ + word] |= bit;
    }
  }
}

void CodeBitPlanes::covered_by(const Cube& cube, std::uint64_t* out) const {
  std::copy(full_.begin(), full_.end(), out);
  const std::uint64_t lo = cube.lo();
  const std::uint64_t hi = cube.hi();
  std::uint64_t bound = Cube::input_mask(num_inputs_) & ~(lo & hi);
  while (bound) {
    const int v = std::countr_zero(bound);
    bound &= bound - 1;
    const bool admits0 = (lo >> v) & 1ULL;
    const bool admits1 = (hi >> v) & 1ULL;
    if (!admits0 && !admits1) {  // empty literal: the cube covers nothing
      std::fill(out, out + words_, 0);
      return;
    }
    const std::uint64_t* plane = planes_.data() + static_cast<std::size_t>(v) * words_;
    if (admits1)
      for (std::size_t w = 0; w < words_; ++w) out[w] &= plane[w];
    else
      for (std::size_t w = 0; w < words_; ++w) out[w] &= ~plane[w];
  }
}

bool CodeBitPlanes::covers_all(const Cube& cube) const {
  std::vector<std::uint64_t> covered(words_);
  covered_by(cube, covered.data());
  for (std::size_t w = 0; w < words_; ++w)
    if (covered[w] != full_[w]) return false;
  return true;
}

bool CodeBitPlanes::covers_any(const Cube& cube) const {
  std::vector<std::uint64_t> covered(words_);
  covered_by(cube, covered.data());
  for (std::size_t w = 0; w < words_; ++w)
    if (covered[w]) return true;
  return false;
}

}  // namespace nshot::logic
