// Counterexample minimization: shrink a failing FaultScenario toward the
// nominal circuit until every remaining perturbation is load-bearing.
// Delta-debugging style — greedy 1-minimal fault removal to a fixpoint,
// then per-gate delay reset toward the nominal vector — is sound here
// because a scenario with pinned delays and a fixed seed replays
// deterministically.  The result is the witness a human debugs: the one
// fault (or the few off-nominal gate delays) that actually breaks the
// circuit, with the waveform to look at.
#pragma once

#include <string>

#include "faults/fault_model.hpp"
#include "netlist/netlist.hpp"
#include "sg/state_graph.hpp"
#include "sim/conformance.hpp"

namespace nshot::faults {

struct MinimizeOptions {
  ScenarioOptions run;
  /// Sweeps of the per-gate "reset to nominal" pass (later resets can be
  /// enabled by earlier ones, so one pass is not always enough).
  int delay_passes = 2;
};

struct MinimizedWitness {
  /// False when the input scenario did not actually fail — nothing to
  /// minimize, the remaining fields describe the passing run.
  bool reproduced = false;
  FaultScenario scenario;  // minimized; delays always pinned (non-empty)
  int faults_removed = 0;
  int delays_reset = 0;       // gate delays returned to nominal
  int off_nominal_gates = 0;  // gate delays the failure still needs
  long evaluations = 0;       // scenario replays spent minimizing
  sim::ConformanceReport report;  // the minimized scenario's run
  std::string vcd;                // waveform of the minimized run
};

MinimizedWitness minimize_counterexample(const sg::StateGraph& spec,
                                         const netlist::Netlist& circuit,
                                         const FaultScenario& scenario,
                                         const MinimizeOptions& options = {});

}  // namespace nshot::faults
