file(REMOVE_RECURSE
  "CMakeFiles/nshot_core.dir/architecture.cpp.o"
  "CMakeFiles/nshot_core.dir/architecture.cpp.o.d"
  "CMakeFiles/nshot_core.dir/delay_requirement.cpp.o"
  "CMakeFiles/nshot_core.dir/delay_requirement.cpp.o.d"
  "CMakeFiles/nshot_core.dir/hazard_analysis.cpp.o"
  "CMakeFiles/nshot_core.dir/hazard_analysis.cpp.o.d"
  "CMakeFiles/nshot_core.dir/spec_derivation.cpp.o"
  "CMakeFiles/nshot_core.dir/spec_derivation.cpp.o.d"
  "CMakeFiles/nshot_core.dir/synthesis.cpp.o"
  "CMakeFiles/nshot_core.dir/synthesis.cpp.o.d"
  "CMakeFiles/nshot_core.dir/trigger.cpp.o"
  "CMakeFiles/nshot_core.dir/trigger.cpp.o.d"
  "libnshot_core.a"
  "libnshot_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nshot_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
