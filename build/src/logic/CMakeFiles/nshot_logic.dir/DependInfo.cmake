
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/cover.cpp" "src/logic/CMakeFiles/nshot_logic.dir/cover.cpp.o" "gcc" "src/logic/CMakeFiles/nshot_logic.dir/cover.cpp.o.d"
  "/root/repo/src/logic/cube.cpp" "src/logic/CMakeFiles/nshot_logic.dir/cube.cpp.o" "gcc" "src/logic/CMakeFiles/nshot_logic.dir/cube.cpp.o.d"
  "/root/repo/src/logic/espresso.cpp" "src/logic/CMakeFiles/nshot_logic.dir/espresso.cpp.o" "gcc" "src/logic/CMakeFiles/nshot_logic.dir/espresso.cpp.o.d"
  "/root/repo/src/logic/exact.cpp" "src/logic/CMakeFiles/nshot_logic.dir/exact.cpp.o" "gcc" "src/logic/CMakeFiles/nshot_logic.dir/exact.cpp.o.d"
  "/root/repo/src/logic/pla.cpp" "src/logic/CMakeFiles/nshot_logic.dir/pla.cpp.o" "gcc" "src/logic/CMakeFiles/nshot_logic.dir/pla.cpp.o.d"
  "/root/repo/src/logic/spec.cpp" "src/logic/CMakeFiles/nshot_logic.dir/spec.cpp.o" "gcc" "src/logic/CMakeFiles/nshot_logic.dir/spec.cpp.o.d"
  "/root/repo/src/logic/verify.cpp" "src/logic/CMakeFiles/nshot_logic.dir/verify.cpp.o" "gcc" "src/logic/CMakeFiles/nshot_logic.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nshot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
