#include "sg/dot.hpp"

#include <set>
#include <sstream>

#include "sg/properties.hpp"
#include "sg/regions.hpp"

namespace nshot::sg {

std::string to_dot(const StateGraph& graph, const DotOptions& options) {
  std::ostringstream out;
  out << "digraph \"" << graph.name() << "\" {\n";
  out << "  rankdir=TB;\n  node [shape=ellipse, fontname=\"monospace\"];\n";

  // Region colouring per Figure 1: up-excitation regions in one colour,
  // down-excitation in another, quiescent regions in light shades.
  std::vector<std::string> fill(static_cast<std::size_t>(graph.num_states()));
  if (options.highlight_signal && !graph.is_input(*options.highlight_signal)) {
    const SignalRegions regions = compute_regions(graph, *options.highlight_signal);
    for (const ExcitationRegion& er : regions.regions) {
      for (const StateId s : er.states)
        fill[static_cast<std::size_t>(s)] = er.rising ? "lightgreen" : "lightcoral";
      for (const StateId s : er.quiescent)
        fill[static_cast<std::size_t>(s)] = er.rising ? "honeydew" : "mistyrose";
    }
  }

  std::set<StateId> detonant;
  if (options.mark_detonant) {
    for (const SignalId a : graph.noninput_signals())
      for (const StateId s : detonant_states(graph, a)) detonant.insert(s);
  }

  for (StateId s = 0; s < graph.num_states(); ++s) {
    out << "  s" << s << " [label=\"" << graph.state_name(s) << "\"";
    if (!fill[static_cast<std::size_t>(s)].empty())
      out << ", style=filled, fillcolor=" << fill[static_cast<std::size_t>(s)];
    if (detonant.contains(s)) out << ", peripheries=2";
    if (s == graph.initial()) out << ", penwidth=2.5";
    out << "];\n";
  }
  for (StateId s = 0; s < graph.num_states(); ++s)
    for (const Edge& e : graph.out_edges(s))
      out << "  s" << s << " -> s" << e.target << " [label=\"" << graph.label_name(e.label)
          << "\"];\n";
  out << "}\n";
  return out.str();
}

}  // namespace nshot::sg
