# Empty dependencies file for nshot_gatelib.
# This may be replaced when dependencies are built.
