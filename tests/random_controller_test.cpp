// Randomized end-to-end property test: generate controller STGs with
// random structure (stage counts, widths, chain shapes, signal kinds),
// keep the ones that satisfy the paper's preconditions, and require the
// full flow — reachability, regions, minimization, trigger enforcement,
// architecture mapping, closed-loop simulation — to produce externally
// hazard-free circuits on all of them.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_suite/generators.hpp"
#include "nshot/synthesis.hpp"
#include "sg/properties.hpp"
#include "sim/conformance.hpp"
#include "util/rng.hpp"

namespace nshot {
namespace {

/// Random staged cycle: 2-5 single-polarity stage pairs over 3-8 signals.
std::string random_staged_cycle(Rng& rng, int index) {
  const int num_signals = 3 + static_cast<int>(rng.next_below(6));
  std::vector<std::string> names, inputs, outputs;
  for (int i = 0; i < num_signals; ++i) {
    const std::string name = "x" + std::to_string(i);
    names.push_back(name);
    (rng.next_bool(0.5) ? inputs : outputs).push_back(name);
  }
  if (inputs.empty()) {
    inputs.push_back(outputs.back());
    outputs.pop_back();
  }
  if (outputs.empty()) {
    outputs.push_back(inputs.back());
    inputs.pop_back();
  }

  // Partition the signals into rising stages; the falling stages reuse the
  // same partition (guaranteeing phase-distinguishable codes).
  std::vector<std::vector<std::string>> rising;
  std::vector<std::string> pool = names;
  while (!pool.empty()) {
    const std::size_t take = 1 + rng.next_below(std::min<std::size_t>(pool.size(), 3));
    std::vector<std::string> stage;
    for (std::size_t i = 0; i < take; ++i) {
      stage.push_back(pool.back() + "+");
      pool.pop_back();
    }
    rising.push_back(std::move(stage));
  }
  std::vector<std::vector<std::string>> stages = rising;
  for (const auto& stage : rising) {
    std::vector<std::string> falling;
    for (const std::string& t : stage) falling.push_back(t.substr(0, t.size() - 1) + "-");
    stages.push_back(std::move(falling));
  }
  return bench_suite::staged_cycle_g("rand" + std::to_string(index), inputs, outputs, stages);
}

/// Random parallel-chains controller: 2-4 chains of length 1-3.
std::string random_chains(Rng& rng, int index) {
  const int width = 2 + static_cast<int>(rng.next_below(3));
  std::vector<std::vector<std::string>> chains;
  std::vector<std::string> inputs, outputs;
  for (int c = 0; c < width; ++c) {
    const int length = 1 + static_cast<int>(rng.next_below(3));
    std::vector<std::string> chain;
    for (int k = 0; k < length; ++k) {
      const std::string name = "c" + std::to_string(c) + "_" + std::to_string(k);
      chain.push_back(name);
      (k == 0 && rng.next_bool(0.7) ? inputs : outputs).push_back(name);
    }
    chains.push_back(std::move(chain));
  }
  return bench_suite::parallel_chains_g("randc" + std::to_string(index), "m",
                                        /*master_is_input=*/true, chains, inputs, outputs);
}

class RandomControllerTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomControllerTest, GeneratedControllersAreHazardFree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 0xC0FFEEULL + 17);
  const std::string g_text = rng.next_bool(0.5) ? random_staged_cycle(rng, GetParam())
                                                : random_chains(rng, GetParam());
  const sg::StateGraph graph = bench_suite::build_g(g_text);

  // The generators are correct by construction; assert rather than skip.
  ASSERT_TRUE(sg::check_implementability(graph).ok())
      << g_text << sg::check_implementability(graph).summary();
  if (graph.noninput_signals().empty()) GTEST_SKIP() << "all-input controller";

  const core::SynthesisResult result = core::synthesize(graph);
  sim::ConformanceOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam());
  options.runs = 4;
  options.max_transitions = 100;
  const sim::ConformanceReport report = sim::check_conformance(graph, result.circuit, options);
  EXPECT_TRUE(report.clean()) << g_text << report.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomControllerTest, ::testing::Range(1, 41));

}  // namespace
}  // namespace nshot
