// Reimplementations of the comparator synthesis methods of Table 2.
//
// The authors compared ASSASSIN (this paper's N-SHOT flow) against two
// closed-source tools.  We rebuild both from their published algorithms —
// see DESIGN.md substitution 3 — preserving their documented restrictions
// and failure modes:
//
//  * syn_like  — Beerel/Meng-style standard C-implementation [1], with the
//    monotonous-cover acknowledgement constraints formalized in [4]: each
//    excitation region must be covered by ONE AND gate that is on only
//    inside that region and its quiescent region, so the C-element inputs
//    are glitch-free by construction.  Restricted to distributive SGs
//    (Table 2 note (1)); fails when no such cube exists, which is exactly
//    when state-signal insertion would be required (notes (2)/(3)).
//
//  * sis_like  — Lavagno-style bounded-delay synthesis [5]: a conventional
//    SOP next-state implementation with combinational feedback; hazards on
//    specified static-1 transitions are detected and masked by inserting
//    inertial delay pads, costing area and critical-path delay.
//    Restricted to distributive SGs (note (1)).
//
//  * complex_gate — the single-complex-gate reference of [2, 7, 17]: each
//    non-input signal is one atomic gate implementing its next-state
//    function.  Reported for area/delay reference only (the atomicity
//    assumption has no gate-level realization to simulate).
#pragma once

#include <optional>
#include <string>

#include "logic/cover.hpp"
#include "netlist/netlist.hpp"
#include "sg/state_graph.hpp"

namespace nshot::baselines {

/// Why a baseline could not implement a state graph (Table 2 footnotes).
enum class Failure {
  kNonDistributive,    // note (1)
  kNeedsStateSignals,  // note (2)/(3): no monotonous cover exists
  kNotImplementable,   // SG fails CSC / consistency / semi-modularity
};

std::string failure_text(Failure failure);

struct BaselineResult {
  netlist::Netlist circuit;
  netlist::NetlistStats stats;
  int hazard_fixes = 0;  // sis_like: number of delay pads inserted
};

/// Outcome: a result or a classified failure.
struct BaselineOutcome {
  std::optional<BaselineResult> result;
  std::optional<Failure> failure;

  bool ok() const { return result.has_value(); }
};

BaselineOutcome synthesize_syn_like(const sg::StateGraph& sg);
BaselineOutcome synthesize_sis_like(const sg::StateGraph& sg);
BaselineOutcome synthesize_complex_gate(const sg::StateGraph& sg);

}  // namespace nshot::baselines
