// Robustness stress orchestrator: one call that (1) measures per-signal
// ω and Eq. 1 margins over a handful of probed runs, (2) sweeps a
// deterministic fault battery over every MHS flip-flop — stuck-at faults
// on all four input rails, glitch pulses around the ω threshold on the
// SOP nets, an optional delay outlier on the SOP driver — recording which
// faults the closed-loop check detects, and (3) optionally runs the
// adversarial delay search with a Monte Carlo baseline.  The report
// serializes to JSON for dashboards and CI.
#pragma once

#include <string>
#include <vector>

#include "faults/adversarial.hpp"
#include "faults/margins.hpp"
#include "faults/minimize.hpp"
#include "netlist/netlist.hpp"
#include "sg/state_graph.hpp"
#include "util/run_config.hpp"

namespace nshot::faults {

/// seed / jobs / grain / reference_kernels are the inherited
/// nshot::RunConfig knobs; runs and battery entries merge in their
/// deterministic enumeration order, so the report (and its JSON) is
/// byte-identical for every jobs value.  The nested adversarial search
/// parallelizes through its own `adversarial.jobs`.
struct StressOptions : RunConfig {
  /// Probed runs feeding the margin report (distinct delay samples).
  int margin_runs = 5;
  /// Glitch widths to inject, as multiples of the threshold ω.
  std::vector<double> glitch_widths = {0.5, 0.83, 1.17, 1.5};
  /// Injection time of each glitch pulse (mid-handshake for the default
  /// environment pacing).
  double glitch_time = 5.0;
  /// Also stress each cell's SOP driver with a slow outlier delay
  /// (library max × outlier_factor).
  bool delay_outliers = true;
  double outlier_factor = 3.0;
  /// Run the adversarial delay search after the fault sweep (restarts = 0
  /// in `adversarial` skips it).
  AdversarialOptions adversarial;
  ScenarioOptions run;
};

/// One fault battery entry and what the closed-loop check saw.
struct FaultOutcome {
  Fault fault;
  std::string signal;       // MHS cell the fault targets
  std::string description;  // human-readable fault description
  bool survived = false;    // run stayed conformant and live
  std::string violation;    // first violation when not survived
};

/// Margin summary of one non-input signal (one MHS flip-flop).
struct SignalMargins {
  std::string signal;
  OmegaStats omega;               // merged over the margin runs
  double min_eq1_slack = kNoMargin;
  int faults_survived = 0;
  int faults_failed = 0;
};

struct StressReport {
  std::string benchmark;
  int margin_runs = 0;
  std::vector<SignalMargins> signals;
  std::vector<FaultOutcome> outcomes;
  double min_omega_slack = kNoMargin;
  double min_eq1_slack = kNoMargin;
  bool baseline_clean = true;  // margin runs themselves stayed conformant
  AdversarialResult adversarial;  // default-constructed when skipped
  bool adversarial_ran = false;
};

StressReport run_stress(const sg::StateGraph& spec, const netlist::Netlist& circuit,
                        const std::string& benchmark, const StressOptions& options = {});

/// JSON renderings for CLI / CI consumption.
std::string stress_report_json(const StressReport& report);
std::string witness_json(const MinimizedWitness& witness, const netlist::Netlist& circuit);

}  // namespace nshot::faults
