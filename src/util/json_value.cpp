#include "util/json_value.hpp"

#include <cmath>
#include <cstdlib>
#include <set>

#include "util/error.hpp"

namespace nshot {

namespace {

const std::vector<JsonValue>& empty_array() {
  static const std::vector<JsonValue> empty;
  return empty;
}

const std::vector<std::pair<std::string, JsonValue>>& empty_object() {
  static const std::vector<std::pair<std::string, JsonValue>> empty;
  return empty;
}

const char* kind_name(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void kind_error(JsonValue::Kind want, JsonValue::Kind got) {
  throw Error(ErrorCode::kInputInvalid, std::string("JSON value is ") + kind_name(got) +
                                            ", expected " + kind_name(want));
}

/// Recursive-descent parser over one UTF-8 document.  Positions in error
/// messages are byte offsets — good enough to locate a bad request line.
class Parser {
 public:
  Parser(const std::string& text, const std::string& what) : text_(text), what_(what) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after the document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& message) const {
    throw Error(ErrorCode::kInputInvalid,
                what_ + ": " + message + " at byte " + std::to_string(pos_));
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char next() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting deeper than 64 levels");
    skip_ws();
    JsonValue value;
    switch (peek()) {
      case '{': value = parse_object(); break;
      case '[': value = parse_array(); break;
      case '"': value = JsonValue::make_string(parse_string()); break;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        value = JsonValue::make_bool(true);
        break;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        value = JsonValue::make_bool(false);
        break;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        break;
      default: value = parse_number(); break;
    }
    --depth_;
    return value;
  }

  JsonValue parse_object() {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    std::set<std::string> seen;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected a member key string");
      std::string key = parse_string();
      if (!seen.insert(key).second) fail("duplicate object key \"" + key + "\"");
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
    return JsonValue::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char escape = next();
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default:
          --pos_;
          fail("bad escape sequence");
      }
    }
  }

  /// \uXXXX (with surrogate pairs) re-encoded as UTF-8.
  std::string parse_unicode_escape() {
    std::uint32_t code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {  // high surrogate: need the pair
      if (next() != '\\' || next() != 'u') {
        --pos_;
        fail("unpaired UTF-16 surrogate");
      }
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired UTF-16 surrogate");
    }
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  std::uint32_t parse_hex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else {
        --pos_;
        fail("bad \\u escape digit");
      }
    }
    return value;
  }

  JsonValue parse_number() {
    const std::size_t begin = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("expected a value");
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad number: digit after '.'");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad number: exponent digits");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string token = text_.substr(begin, pos_ - begin);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) fail("bad number");
    return JsonValue::make_number(value);
  }

  const std::string& text_;
  const std::string& what_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error(Kind::kBool, kind_);
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) kind_error(Kind::kNumber, kind_);
  return number_;
}

std::int64_t JsonValue::as_int() const {
  const double value = as_number();
  const double truncated = std::trunc(value);
  NSHOT_REQUIRE_CODE(truncated == value && std::abs(value) <= 9.007199254740992e15,
                     ErrorCode::kInputInvalid,
                     "JSON number " + std::to_string(value) + " is not an exact integer");
  return static_cast<std::int64_t>(truncated);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error(Kind::kString, kind_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) kind_error(Kind::kArray, kind_);
  return array_ ? *array_ : empty_array();
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) kind_error(Kind::kObject, kind_);
  return object_ ? *object_ : empty_object();
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject || !object_) return nullptr;
  for (const auto& [name, value] : *object_)
    if (name == key) return &value;
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* value = find(key);
  NSHOT_REQUIRE_CODE(value != nullptr, ErrorCode::kInputInvalid,
                     "missing JSON object member \"" + key + "\"");
  return *value;
}

std::string JsonValue::string_or(const std::string& key, const std::string& fallback) const {
  const JsonValue* value = find(key);
  return value && !value->is_null() ? value->as_string() : fallback;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* value = find(key);
  return value && !value->is_null() ? value->as_number() : fallback;
}

bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  const JsonValue* value = find(key);
  return value && !value->is_null() ? value->as_bool() : fallback;
}

JsonValue JsonValue::make_bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::make_number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::make_string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::make_shared<const std::vector<JsonValue>>(std::move(items));
  return v;
}

JsonValue JsonValue::make_object(std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ =
      std::make_shared<const std::vector<std::pair<std::string, JsonValue>>>(std::move(members));
  return v;
}

JsonValue parse_json(const std::string& text, const std::string& what) {
  return Parser(text, what).parse_document();
}

}  // namespace nshot
