#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace nshot {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ << ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ << '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  NSHOT_REQUIRE(!needs_comma_.empty(), "JsonWriter: end_object without open scope");
  needs_comma_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ << '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  NSHOT_REQUIRE(!needs_comma_.empty(), "JsonWriter: end_array without open scope");
  needs_comma_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  comma();
  out_ << '"' << json_escape(name) << "\":";
  if (!needs_comma_.empty()) needs_comma_.back() = false;  // value follows, no comma
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& text) {
  comma();
  out_ << '"' << json_escape(text) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) { return value(std::string(text)); }

JsonWriter& JsonWriter::value(double number) {
  if (!std::isfinite(number)) return null();
  comma();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", number);
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(long number) {
  comma();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  comma();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  comma();
  out_ << (flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ << "null";
  return *this;
}

std::string JsonWriter::str() const {
  NSHOT_REQUIRE(needs_comma_.empty(), "JsonWriter: str() with unclosed scopes");
  return out_.str();
}

}  // namespace nshot
