file(REMOVE_RECURSE
  "CMakeFiles/nshot_stg.dir/g_format.cpp.o"
  "CMakeFiles/nshot_stg.dir/g_format.cpp.o.d"
  "CMakeFiles/nshot_stg.dir/reachability.cpp.o"
  "CMakeFiles/nshot_stg.dir/reachability.cpp.o.d"
  "CMakeFiles/nshot_stg.dir/sg_format.cpp.o"
  "CMakeFiles/nshot_stg.dir/sg_format.cpp.o.d"
  "CMakeFiles/nshot_stg.dir/stg.cpp.o"
  "CMakeFiles/nshot_stg.dir/stg.cpp.o.d"
  "libnshot_stg.a"
  "libnshot_stg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nshot_stg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
