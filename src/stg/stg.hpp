// Signal Transition Graph (STG): a 1-safe Petri net whose transitions are
// labelled with signal transitions (+x / -x).  STGs are the most common
// high-level entry point for the paper's flow: their reachability graph,
// annotated with consistent binary codes, is the state graph (Section III).
//
// The model supports explicit places, implicit places (arcs between two
// transitions), multiple transition instances of one signal (a+/2), and
// dummy (unlabelled) transitions, which are eliminated during
// reachability by eager saturation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace nshot::stg {

using TransitionId = int;
using PlaceId = int;

enum class SignalKind { kInput, kOutput, kInternal };

struct StgSignal {
  std::string name;
  SignalKind kind;
};

/// An STG transition: the `instance` distinguishes multiple occurrences of
/// the same signal transition (written a+/2 in the .g format).  Dummy
/// (unlabelled, signal < 0) transitions are internal sequencing events
/// with no signal semantics; reachability eliminates them by eager
/// saturation (see reachability.hpp).
struct StgTransition {
  int signal = -1;  // < 0: dummy transition
  bool rising = true;
  int instance = 1;

  bool is_dummy() const { return signal < 0; }
};

/// 1-safe labelled Petri net.
class Stg {
 public:
  Stg() = default;
  explicit Stg(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- construction -------------------------------------------------------
  int add_signal(const std::string& name, SignalKind kind);
  TransitionId add_transition(int signal, bool rising, int instance = 1);
  /// Add a dummy (unlabelled) transition with the given display name.
  TransitionId add_dummy_transition(const std::string& name);
  PlaceId add_place(const std::string& name);
  void add_arc_place_to_transition(PlaceId p, TransitionId t);
  void add_arc_transition_to_place(TransitionId t, PlaceId p);
  /// Convenience: implicit place between two transitions.
  PlaceId connect(TransitionId from, TransitionId to);
  void mark_place(PlaceId p, bool token = true);
  /// Explicit initial value for a signal (required only for signals that
  /// never fire; otherwise inferred from the first firing polarity).
  void set_initial_value(int signal, bool value);

  // --- access -------------------------------------------------------------
  int num_signals() const { return static_cast<int>(signals_.size()); }
  const StgSignal& signal(int i) const { return signals_[static_cast<std::size_t>(i)]; }
  std::optional<int> find_signal(const std::string& name) const;

  int num_transitions() const { return static_cast<int>(transitions_.size()); }
  const StgTransition& transition(TransitionId t) const {
    return transitions_[static_cast<std::size_t>(t)];
  }
  /// Find the transition for signal/polarity/instance, if declared.
  std::optional<TransitionId> find_transition(int signal, bool rising, int instance) const;
  /// Find a dummy transition by its display name.
  std::optional<TransitionId> find_dummy_transition(const std::string& name) const;
  std::string transition_name(TransitionId t) const;
  bool has_dummies() const;

  int num_places() const { return static_cast<int>(place_names_.size()); }
  const std::string& place_name(PlaceId p) const {
    return place_names_[static_cast<std::size_t>(p)];
  }
  std::optional<PlaceId> find_place(const std::string& name) const;

  const std::vector<PlaceId>& preset(TransitionId t) const {
    return pre_[static_cast<std::size_t>(t)];
  }
  const std::vector<PlaceId>& postset(TransitionId t) const {
    return post_[static_cast<std::size_t>(t)];
  }
  const std::vector<bool>& initial_marking() const { return marking_; }
  const std::vector<std::optional<bool>>& declared_initial_values() const {
    return initial_values_;
  }

 private:
  std::string name_;
  std::vector<StgSignal> signals_;
  std::vector<StgTransition> transitions_;
  std::vector<std::string> dummy_names_;  // parallel: empty for labelled transitions
  std::vector<std::string> place_names_;
  std::vector<std::vector<PlaceId>> pre_;   // per transition
  std::vector<std::vector<PlaceId>> post_;  // per transition
  std::vector<bool> marking_;
  std::vector<std::optional<bool>> initial_values_;
};

}  // namespace nshot::stg
