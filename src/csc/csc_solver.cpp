#include "csc/csc_solver.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "sg/properties.hpp"
#include "stg/reachability.hpp"
#include "util/error.hpp"

namespace nshot::csc {
namespace {

/// Insert toggle `name` behind two groups of transitions: z+ joins after
/// every transition of `plus_group` (its preset is one fresh place per
/// member), z- after every transition of `minus_group`.  The members'
/// original postset places are rerouted to be fed by the toggle, so the
/// toggle is a serializing join — in a barrier-structured net this is
/// exactly "z+ fires at the end of the stage".
stg::Stg insert_toggle_groups(const stg::Stg& source,
                              const std::vector<stg::TransitionId>& plus_group,
                              const std::vector<stg::TransitionId>& minus_group,
                              const std::string& name) {
  stg::Stg result(source.name());
  for (int i = 0; i < source.num_signals(); ++i)
    result.add_signal(source.signal(i).name, source.signal(i).kind);
  const int z = result.add_signal(name, stg::SignalKind::kInternal);

  for (stg::TransitionId t = 0; t < source.num_transitions(); ++t) {
    const stg::StgTransition& tr = source.transition(t);
    result.add_transition(tr.signal, tr.rising, tr.instance);
  }
  const stg::TransitionId z_plus = result.add_transition(z, true);
  const stg::TransitionId z_minus = result.add_transition(z, false);

  for (stg::PlaceId p = 0; p < source.num_places(); ++p) {
    result.add_place(source.place_name(p));
    result.mark_place(p, source.initial_marking()[static_cast<std::size_t>(p)]);
  }

  const std::set<stg::TransitionId> plus(plus_group.begin(), plus_group.end());
  const std::set<stg::TransitionId> minus(minus_group.begin(), minus_group.end());
  for (stg::TransitionId t = 0; t < source.num_transitions(); ++t) {
    for (const stg::PlaceId p : source.preset(t)) result.add_arc_place_to_transition(p, t);
    const stg::TransitionId via = plus.contains(t)    ? z_plus
                                  : minus.contains(t) ? z_minus
                                                      : -1;
    if (via < 0) {
      for (const stg::PlaceId p : source.postset(t)) result.add_arc_transition_to_place(t, p);
    } else {
      const stg::PlaceId splice = result.add_place("<" + source.transition_name(t) + "," +
                                                   result.transition_name(via) + ">");
      result.add_arc_transition_to_place(t, splice);
      result.add_arc_place_to_transition(splice, via);
      for (const stg::PlaceId p : source.postset(t)) result.add_arc_transition_to_place(via, p);
    }
  }

  for (int i = 0; i < source.num_signals(); ++i)
    if (const auto v = source.declared_initial_values()[static_cast<std::size_t>(i)])
      result.set_initial_value(i, *v);
  return result;
}

/// Candidate splice groups: every singleton transition, plus the clusters
/// of transitions sharing one consumer set (the "stages" of a barrier
/// cycle — in [a+ b+][a- b-] the group {a+, b+} feeds {a-, b-}).
std::vector<std::vector<stg::TransitionId>> candidate_groups(const stg::Stg& source) {
  // place -> consumer transitions
  std::vector<std::vector<stg::TransitionId>> consumers(
      static_cast<std::size_t>(source.num_places()));
  for (stg::TransitionId t = 0; t < source.num_transitions(); ++t)
    for (const stg::PlaceId p : source.preset(t))
      consumers[static_cast<std::size_t>(p)].push_back(t);

  std::vector<std::vector<stg::TransitionId>> groups;
  std::map<std::vector<stg::TransitionId>, std::vector<stg::TransitionId>> by_consumer_set;
  for (stg::TransitionId t = 0; t < source.num_transitions(); ++t) {
    groups.push_back({t});
    std::set<stg::TransitionId> key_set;
    for (const stg::PlaceId p : source.postset(t))
      key_set.insert(consumers[static_cast<std::size_t>(p)].begin(),
                     consumers[static_cast<std::size_t>(p)].end());
    by_consumer_set[std::vector<stg::TransitionId>(key_set.begin(), key_set.end())].push_back(t);
  }
  for (auto& [key, members] : by_consumer_set)
    if (members.size() >= 2) groups.push_back(std::move(members));
  return groups;
}

}  // namespace

stg::Stg insert_toggle(const stg::Stg& source, stg::TransitionId after_plus,
                       stg::TransitionId after_minus, const std::string& name) {
  NSHOT_REQUIRE(after_plus != after_minus,
                "toggle must be spliced behind two distinct transitions");
  return insert_toggle_groups(source, {after_plus}, {after_minus}, name);
}

int csc_conflict_count(const sg::StateGraph& graph) {
  // Count-only fast path: same conflict enumeration as sg::check_csc but
  // without materializing the diagnostic strings the solver would discard.
  return static_cast<int>(sg::count_csc_conflicts(graph));
}

std::optional<CscSolveResult> solve_csc(const stg::Stg& source, const CscSolveOptions& options) {
  stg::ReachabilityOptions reach;
  reach.max_states = options.max_states;
  reach.reference_maps = options.reference_kernels;
  const auto count_conflicts = [&options](const sg::StateGraph& g) {
    return options.reference_kernels ? static_cast<int>(sg::count_csc_conflicts_reference(g))
                                     : csc_conflict_count(g);
  };

  stg::Stg current = source;
  sg::StateGraph graph = stg::build_state_graph(current, reach);
  NSHOT_REQUIRE(sg::check_consistency(graph).ok() && sg::check_semi_modular(graph).ok(),
                "CSC solving expects a consistent semi-modular specification");
  int conflicts = count_conflicts(graph);

  CscSolveResult result{current, graph, 0, {}};
  while (conflicts > 0) {
    if (result.signals_added >= options.max_signals) return std::nullopt;

    const std::vector<std::vector<stg::TransitionId>> groups = candidate_groups(current);
    auto group_name = [&current](const std::vector<stg::TransitionId>& group) {
      std::string text;
      for (std::size_t i = 0; i < group.size(); ++i)
        text += (i ? "," : "") + current.transition_name(group[i]);
      return text;
    };

    // Greedy search: the splice pair that reduces conflicts the most while
    // preserving every other implementability property.
    int best_conflicts = conflicts;
    std::optional<stg::Stg> best_stg;
    std::optional<sg::StateGraph> best_graph;
    std::string best_description;

    for (std::size_t gp = 0; gp < groups.size() && best_conflicts > 0; ++gp) {
      for (std::size_t gm = 0; gm < groups.size(); ++gm) {
        if (gp == gm) continue;
        // Overlapping groups cannot alternate.
        bool overlap = false;
        for (const stg::TransitionId t : groups[gp])
          for (const stg::TransitionId u : groups[gm]) overlap = overlap || t == u;
        if (overlap) continue;

        const std::string name = "csc" + std::to_string(result.signals_added);
        stg::Stg candidate_stg = insert_toggle_groups(current, groups[gp], groups[gm], name);
        try {
          sg::StateGraph candidate = stg::build_state_graph(candidate_stg, reach);
          if (!sg::check_consistency(candidate).ok()) continue;
          if (!sg::check_semi_modular(candidate).ok()) continue;
          const int candidate_conflicts = count_conflicts(candidate);
          if (candidate_conflicts < best_conflicts) {
            best_conflicts = candidate_conflicts;
            best_stg = std::move(candidate_stg);
            best_graph = std::move(candidate);
            best_description = name + ": + after {" + group_name(groups[gp]) + "}, - after {" +
                               group_name(groups[gm]) + "}";
          }
        } catch (const Error&) {
          continue;  // splice broke alternation / safety: not a candidate
        }
        if (best_conflicts == 0) break;
      }
    }

    if (!best_stg) return std::nullopt;  // no insertion helps
    result.insertions.push_back(best_description);
    current = std::move(*best_stg);
    graph = std::move(*best_graph);
    conflicts = best_conflicts;
    ++result.signals_added;
  }

  result.transformed = std::move(current);
  result.graph = std::move(graph);
  return result;
}

}  // namespace nshot::csc
