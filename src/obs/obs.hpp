// Observability layer: RAII trace spans, monotonic counters, gauge
// statistics and two exporters (Chrome trace_event JSON and a flat
// RunReport JSON) for the whole synthesis/verification pipeline.
//
// Design constraints, in priority order:
//
//  1. Disabled means free.  Every instrumentation call starts with one
//     relaxed load of a process-wide flag; no session active -> the call
//     returns immediately.  Defining NSHOT_OBS_DISABLE at build time
//     compiles the instrumentation out entirely (the flag becomes a
//     constant false and every call inlines to nothing).
//  2. Deterministic merge.  Spans and counters land in per-thread buffers;
//     Session::trace_json(deterministic) merges them into ONE canonical
//     tree ordered by (name, work-item index) — never by wall-clock or
//     scheduling order — so the exported trace is byte-identical across
//     worker counts, matching the parallel engine's by-index contract.
//     Scheduling-detail spans (Span::task) and counters whose value
//     depends on scheduling (memo hits/misses, discarded adversarial
//     restarts) are excluded from the deterministic export.
//  3. Thread-aware nesting.  A span opened inside an exec::ThreadPool
//     task attaches to the span that was active when the task was
//     SUBMITTED (the pool captures the context in submit()), so a
//     parallel_for's per-item spans nest under the caller's pass span
//     exactly as they would in a serial run.
//
// Lifecycle contract: at most one Session is active at a time; it must be
// created and destroyed on a thread that is not inside a parallel region,
// and all parallel work recorded into it must be joined before the session
// is read or destroyed (every sweep in this codebase joins before
// returning, so ordinary call sites satisfy this for free).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace nshot::obs {

// ---------------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------------

/// Monotonic work counters, incremented from the instrumented passes.
/// Counters marked deterministic in counter_info() depend only on the
/// work performed, never on how it was scheduled.
enum class Counter : int {
  kStatesVisited = 0,        // stg::reachability marking-graph states
  kRegionsExtracted,         // sg ER/QR regions computed
  kCubesExpanded,            // espresso expand results over all iterations
  kPrimesGenerated,          // exact-minimizer prime implicants
  kTriggerCubesAdded,        // Theorem 1 repair cubes
  kTrialsRun,                // closed-loop simulation trials
  kKernelMismatches,         // verify_kernels divergences detected
  kKernelFallbacks,          // stages degraded to reference kernels
  kFaultsInjected,           // fault-battery entries evaluated
  kBatchTrials,              // trials routed through the batched trial engine
  kAdversarialEvaluations,   // hill-climb objective evaluations (nondet:
                             // parallel restarts run past the serial early exit)
  kMemoHits,                 // MemoCache hits (nondet: races both-compute)
  kMemoMisses,               // MemoCache misses
  kBatchPeels,               // batch lanes peeled off to scalar execution
                             // (nondet: lane grouping follows chunk bounds)
  kBatchLockstepShared,      // batch lanes that shared a leader's execution
  kCalendarResizes,          // calendar-queue re-bucketing passes (nondet:
                             // fires inside adversarial evaluations too)
  kServeAdmitted,            // serve requests admitted to the fair-share
                             // queue (nondet: traffic-dependent)
  kServeRejected,            // serve admission rejections (backlog full,
                             // deadline hopeless, draining)
  kServeCompleted,           // serve requests that reached a terminal
                             // Response (ok or classified failure)
  kCount
};

/// Low-frequency scalar samples merged as (count, min, max, sum).
enum class Gauge : int {
  kOmegaSlack = 0,   // per-signal min ω slack from the margin sweep
  kEq1Slack,         // per-signal min Eq. 1 slack
  kCalendarFill,     // events per bucket at each calendar resize (nondet:
                     // sampled inside adversarial evaluations too)
  kCount
};

struct CounterInfo {
  const char* name;    // snake_case JSON key
  bool deterministic;  // stable across worker counts
};

/// Gauges carry the same determinism contract as counters: a gauge whose
/// samples depend on scheduling is dropped from deterministic exports.
struct GaugeInfo {
  const char* name;
  bool deterministic;
};

const CounterInfo& counter_info(Counter c);
const GaugeInfo& gauge_info(Gauge g);
const char* gauge_name(Gauge g);

// ---------------------------------------------------------------------------
// The enabled flag and the cheap call surface
// ---------------------------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_enabled;
void count_slow(Counter c, long delta);
void gauge_slow(Gauge g, double value);

/// Reports exec::default_jobs() without obs depending on exec: the thread
/// pool registers its accessor here at static-init time, and RunReport
/// falls back to 0 ("library default") when no provider is linked in.
extern int (*g_default_jobs_provider)();

/// Span id of the innermost active span on this thread (0 = session root).
/// Captured by exec::ThreadPool::submit and re-established on the worker
/// through ContextScope, which is how worker spans attach to their parent
/// task.
std::int64_t current_context();

class ContextScope {
 public:
  explicit ContextScope(std::int64_t context);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  bool pushed_ = false;
};
}  // namespace detail

#ifdef NSHOT_OBS_DISABLE
inline constexpr bool enabled() { return false; }
#else
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }
#endif

/// Add `delta` to counter `c`.  One relaxed load + branch when disabled.
inline void count(Counter c, long delta = 1) {
  if (enabled()) detail::count_slow(c, delta);
}

/// Record one gauge sample.
inline void gauge(Gauge g, double value) {
  if (enabled()) detail::gauge_slow(g, value);
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII trace span.  `name` must be a string literal (or otherwise outlive
/// the session) — spans store the pointer, not a copy.  `index` labels
/// work items fanned out by the parallel engine; sibling spans that can
/// run concurrently MUST carry distinct (name, index) pairs, which is what
/// makes the deterministic merge a total order.
class Span {
 public:
#ifdef NSHOT_OBS_DISABLE
  explicit Span(const char*, long = -1) {}
  static Span task(const char*, long = -1) { return Span(""); }
  ~Span() = default;
#else
  explicit Span(const char* name, long index = -1);
  ~Span();

  /// A scheduling-detail span (e.g. one worker chunk of a sweep): kept in
  /// the wall-clock trace so Perfetto shows the actual parallelism, but
  /// dropped from the deterministic export because chunk boundaries depend
  /// on the worker count.
  static Span task(const char* name, long index = -1);
#endif

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept;

 private:
#ifndef NSHOT_OBS_DISABLE
  Span(const char* name, long index, bool is_task);
#endif
  bool active_ = false;
  std::int64_t id_ = 0;
  double start_us_ = 0.0;
};

// ---------------------------------------------------------------------------
// Session, exporters and the flat run report
// ---------------------------------------------------------------------------

struct TraceOptions {
  /// Canonical export: logical preorder timestamps, canonical tids, task
  /// spans and nondeterministic counters dropped, gauges dropped.  The
  /// output is byte-identical across worker counts.
  bool deterministic = false;
};

struct ReportOptions {
  /// Omit every machine/wall-clock field (times, RSS, hardware) — used for
  /// golden-file tests; the structural content is deterministic.
  bool deterministic = false;
};

/// One aggregated top-level pass of the run (a depth-1 span name).
struct PassTime {
  std::string name;
  double wall_ms = 0.0;  // inclusive wall time summed over spans
  long spans = 0;        // number of spans aggregated
};

struct GaugeStats {
  long count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;

  double mean() const { return count > 0 ? sum / count : 0.0; }
};

/// Flat summary of one session: per-pass wall time, work counters, gauge
/// statistics and peak RSS.
struct RunReport {
  std::string tool;
  std::string label;
  double total_ms = 0.0;    // session lifetime up to the report call
  long peak_rss_kb = 0;     // ru_maxrss (whole process high-water mark)
  int hardware_jobs = 0;
  int default_jobs = 0;
  std::vector<PassTime> passes;  // chronological first-appearance order
  long counters[static_cast<int>(Counter::kCount)] = {};
  GaugeStats gauges[static_cast<int>(Gauge::kCount)];

  /// Sum of the per-pass wall times (compare against total_ms to see how
  /// much of the run the instrumentation attributes).
  double attributed_ms() const;
};

/// Canonical view of one merged span — the unit the deterministic trace is
/// built from, exposed for tests.
struct CanonicalSpan {
  std::string path;  // "/"-joined names from the root, e.g. "synthesize/minimize"
  long index = -1;
  int depth = 1;
};

/// Collects spans/counters/gauges process-wide while alive.  Construction
/// enables the instrumentation (unless NSHOT_OBS_DISABLE is defined, in
/// which case the session stays empty); destruction disables it again.
class Session {
 public:
  explicit Session(std::string tool = "nshot", std::string label = "");
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::string& tool() const { return tool_; }
  const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  /// Current value of one counter (all thread buffers summed).
  long counter_total(Counter c) const;
  GaugeStats gauge_stats(Gauge g) const;

  /// The merged span tree flattened in canonical (deterministic) order.
  std::vector<CanonicalSpan> canonical_spans(bool include_tasks = false) const;

  /// Chrome trace_event JSON (load in chrome://tracing or Perfetto).
  std::string trace_json(const TraceOptions& options = {}) const;

  RunReport report() const;
  std::string report_json(const ReportOptions& options = {}) const;

 private:
  std::string tool_;
  std::string label_;
  bool active_ = false;
};

/// Render an existing report (used by benches embedding per-pass
/// breakdowns into their own BENCH_*.json documents).
std::string report_json(const RunReport& report, const ReportOptions& options = {});

/// `"passes": [...]` JSON fragment of a report — the bench hook for
/// embedding a per-pass breakdown inside another JSON document.
std::string passes_json_fragment(const RunReport& report);

/// Process peak RSS in KB (ru_maxrss), 0 when unavailable.
long peak_rss_kb();

/// True while some Session object is alive.  Constructing a second Session
/// is a hard error, so owners that collect opportunistically (Pipeline)
/// check this first.  Always false under NSHOT_OBS_DISABLE.
bool session_active();

}  // namespace nshot::obs
