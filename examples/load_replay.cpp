// load_replay — the serve-mode load generator and parity harness.
//
// Replays the whole built-in benchmark corpus against a live Server over
// its Unix-socket transport with N concurrent clients (default 4), twice:
// a COLD pass (empty process-wide minimization memo) and WARM passes
// (every spec repeated, so the (F,D,R)-keyed cache answers the
// minimizations).  For every response it checks the deterministic payload
// byte-for-byte against a serial BatchRunner reference over the same
// manifest — the proof that concurrent execution changes timing only.
//
// Output: BENCH_serve.json (bench_gate-compatible) with a client-observed
// latency histogram (p50/p90/p99), per-pass throughput, memo-cache deltas
// and the in-run warm_over_cold ratio the gate tracks.
//
//   load_replay [--clients N] [--repeats R] [--out FILE] [--socket PATH]
//               [--smoke]
//
// Exits non-zero on any payload mismatch or internal-class failure.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "nshot/batch.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"
#include "util/json.hpp"
#include "util/json_value.hpp"
#include "util/strings.hpp"

namespace {

using namespace nshot;
using serve::WireRequest;

struct Cli {
  int clients = 4;
  int repeats = 3;  // 1 cold pass + (repeats-1) warm passes
  bool smoke = false;
  std::string out = "BENCH_serve.json";
  std::string socket_path = "/tmp/nshot_load_replay.sock";
};

struct Sample {
  std::string id;
  std::string payload;    // timing-stripped response (== payload_json bytes)
  double roundtrip_ms = 0.0;  // client-observed send -> response
  double server_ms = 0.0;     // the response's own elapsed_ms
  std::string code;           // error code name ("" when ok)
};

/// Cut the trailing "elapsed_ms"/"attempts" members off a wire response:
/// what remains is exactly Response::payload_json().
std::string strip_timing(const std::string& line) {
  const std::size_t pos = line.rfind(",\"elapsed_ms\":");
  return pos == std::string::npos ? line : line.substr(0, pos) + "}";
}

std::vector<Sample> run_pass(const std::string& socket_path,
                             const std::vector<WireRequest>& requests, int clients) {
  std::vector<Sample> samples(requests.size());
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::SocketClient client(socket_path);
      for (std::size_t i = c; i < requests.size(); i += clients) {
        const auto t0 = std::chrono::steady_clock::now();
        const std::string line = client.roundtrip(requests[i]);
        const auto t1 = std::chrono::steady_clock::now();
        Sample& sample = samples[i];
        sample.id = requests[i].request.id;
        sample.roundtrip_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
        sample.payload = strip_timing(line);
        const JsonValue doc = parse_json(line, "response line");
        sample.server_ms = doc.number_or("elapsed_ms", 0.0);
        if (const JsonValue* error = doc.find("error"))
          sample.code = error->string_or("code", "internal");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  return samples;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t at = static_cast<std::size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(at, sorted.size() - 1)];
}

struct PassStats {
  int requests = 0;
  double wall_ms = 0.0;
  double server_ms_mean = 0.0;
  double p50_ms = 0.0, p90_ms = 0.0, p99_ms = 0.0, max_ms = 0.0;
  double throughput_rps = 0.0;
  long memo_hits = 0, memo_misses = 0;  // delta over the pass
};

PassStats pass_stats(const std::vector<Sample>& samples, double wall_ms,
                     const serve::ServeStats& before, const serve::ServeStats& after) {
  PassStats stats;
  stats.requests = static_cast<int>(samples.size());
  stats.wall_ms = wall_ms;
  std::vector<double> latencies;
  double server_total = 0.0;
  for (const Sample& sample : samples) {
    latencies.push_back(sample.roundtrip_ms);
    server_total += sample.server_ms;
  }
  std::sort(latencies.begin(), latencies.end());
  stats.server_ms_mean = samples.empty() ? 0.0 : server_total / samples.size();
  stats.p50_ms = percentile(latencies, 0.50);
  stats.p90_ms = percentile(latencies, 0.90);
  stats.p99_ms = percentile(latencies, 0.99);
  stats.max_ms = latencies.empty() ? 0.0 : latencies.back();
  stats.throughput_rps = wall_ms > 0 ? samples.size() / (wall_ms / 1000.0) : 0.0;
  stats.memo_hits = after.memo_hits - before.memo_hits;
  stats.memo_misses = after.memo_misses - before.memo_misses;
  return stats;
}

void write_pass(JsonWriter& json, const char* name, const PassStats& stats) {
  json.key(name).begin_object();
  json.key("requests").value(stats.requests);
  json.key("wall_ms").value(stats.wall_ms);
  json.key("server_ms_mean").value(stats.server_ms_mean);
  json.key("p50_ms").value(stats.p50_ms);
  json.key("p90_ms").value(stats.p90_ms);
  json.key("p99_ms").value(stats.p99_ms);
  json.key("max_ms").value(stats.max_ms);
  json.key("throughput_rps").value(stats.throughput_rps);
  json.key("memo_hits").value(stats.memo_hits);
  json.key("memo_misses").value(stats.memo_misses);
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw Error(arg + " requires a value");
      return argv[++i];
    };
    try {
      if (arg == "--clients")
        cli.clients = parse_int(next(), 1, 256, "--clients");
      else if (arg == "--repeats")
        cli.repeats = parse_int(next(), 2, 100, "--repeats");
      else if (arg == "--out")
        cli.out = next();
      else if (arg == "--socket")
        cli.socket_path = next();
      else if (arg == "--smoke")
        cli.smoke = true;
      else
        throw Error("unknown option " + arg);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  try {
    // The corpus: every built-in Table 2 benchmark, synthesis-only (the
    // minimization stage is what the shared memo accelerates; the result
    // payloads stay fully deterministic).
    std::string manifest;
    std::vector<WireRequest> requests;
    int client_index = 0;
    for (const auto& info : bench_suite::all_benchmarks()) {
      manifest += info.name + " bench:" + info.name + "\n";
      WireRequest wire;
      wire.client = "client-" + std::to_string(client_index++ % cli.clients);
      wire.request.id = info.name;
      wire.request.kind = "synthesis";
      wire.request.spec = "bench:" + info.name;
      requests.push_back(wire);
    }

    // Live server on a Unix socket.  The concurrent passes run FIRST so
    // the cold pass really starts on an empty process-wide minimization
    // memo; the serial reference (same process, payloads are timing-free)
    // runs afterwards.
    serve::ServeOptions sopt;
    sopt.pipeline.verify_conformance = false;
    sopt.pipeline.stress_test = false;
    serve::Server server(sopt);
    serve::SocketListener listener(cli.socket_path, server);

    const serve::ServeStats s0 = server.stats();
    auto t0 = std::chrono::steady_clock::now();
    const std::vector<Sample> cold_samples = run_pass(cli.socket_path, requests, cli.clients);
    auto t1 = std::chrono::steady_clock::now();
    const serve::ServeStats s1 = server.stats();
    const PassStats cold = pass_stats(
        cold_samples, std::chrono::duration<double, std::milli>(t1 - t0).count(), s0, s1);

    std::vector<Sample> warm_samples;
    t0 = std::chrono::steady_clock::now();
    for (int r = 1; r < cli.repeats; ++r) {
      const std::vector<Sample> pass = run_pass(cli.socket_path, requests, cli.clients);
      warm_samples.insert(warm_samples.end(), pass.begin(), pass.end());
    }
    t1 = std::chrono::steady_clock::now();
    const serve::ServeStats s2 = server.stats();
    const PassStats warm = pass_stats(
        warm_samples, std::chrono::duration<double, std::milli>(t1 - t0).count(), s1, s2);

    listener.stop();
    server.drain();

    // Serial reference: the exact same runs through BatchRunner, payloads
    // recorded.  kind "synthesis" == conformance/stress off.
    BatchOptions bopt;
    bopt.record_payloads = true;
    bopt.pipeline.verify_conformance = false;
    bopt.pipeline.stress_test = false;
    BatchRunner runner(bopt);
    const BatchSummary serial = runner.run(BatchRunner::parse_manifest(manifest));
    std::map<std::string, std::string> reference;
    for (const BatchRunResult& run : serial.runs) reference[run.id] = run.payload;
    if (serial.failed > 0) {
      std::fprintf(stderr, "error: serial reference pass had %d failure(s)\n", serial.failed);
      return 1;
    }

    // Parity + health over every concurrent sample.
    int mismatches = 0, internal_failures = 0;
    auto check = [&](const std::vector<Sample>& samples) {
      for (const Sample& sample : samples) {
        if (sample.code == "internal") ++internal_failures;
        const auto it = reference.find(sample.id);
        if (it == reference.end() || it->second != sample.payload) {
          if (++mismatches <= 3)
            std::fprintf(stderr, "payload mismatch for %s:\n  serial: %s\n  serve:  %s\n",
                         sample.id.c_str(),
                         it == reference.end() ? "<missing>" : it->second.c_str(),
                         sample.payload.c_str());
        }
      }
    };
    check(cold_samples);
    check(warm_samples);
    const bool byte_identical = mismatches == 0;
    const double warm_over_cold =
        warm.server_ms_mean > 0 ? cold.server_ms_mean / warm.server_ms_mean : 0.0;

    JsonWriter json;
    json.begin_object();
    json.key("smoke").value(cli.smoke);
    json.key("byte_identical").value(byte_identical);
    json.key("clients").value(cli.clients);
    json.key("repeats").value(cli.repeats);
    json.key("corpus").value(static_cast<int>(requests.size()));
    json.key("requests").value(static_cast<int>(cold_samples.size() + warm_samples.size()));
    json.key("internal_failures").value(internal_failures);
    write_pass(json, "cold", cold);
    write_pass(json, "warm", warm);
    json.key("warm_over_cold").value(warm_over_cold);
    json.end_object();
    const std::string doc = json.str();

    std::ofstream out(cli.out);
    if (!out) throw Error("cannot write " + cli.out);
    out << doc << "\n";

    std::printf("%s\n", doc.c_str());
    std::fprintf(stderr,
                 "load_replay: %zu requests over %d clients — cold mean %.3f ms, warm mean "
                 "%.3f ms (x%.2f), %d mismatch(es), %d internal -> %s\n",
                 cold_samples.size() + warm_samples.size(), cli.clients, cold.server_ms_mean,
                 warm.server_ms_mean, warm_over_cold, mismatches, internal_failures,
                 cli.out.c_str());
    return byte_identical && internal_failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
