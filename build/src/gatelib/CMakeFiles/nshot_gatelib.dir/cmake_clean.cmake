file(REMOVE_RECURSE
  "CMakeFiles/nshot_gatelib.dir/gate_library.cpp.o"
  "CMakeFiles/nshot_gatelib.dir/gate_library.cpp.o.d"
  "libnshot_gatelib.a"
  "libnshot_gatelib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nshot_gatelib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
