// Deterministic pseudo-random number generator used by the simulator and
// the property tests.  A small, explicit PRNG (splitmix64/xorshift) keeps
// randomized tests reproducible across standard-library implementations.
#pragma once

#include <cstdint>

namespace nshot {

/// Canonical seed derivations shared by the conformance checker, the
/// benches and the fault-injection harness, so that every harness that
/// sweeps seeds samples the same family of delay assignments for the same
/// base seed (run r of base seed s is reproducible from (s, r) alone).
constexpr std::uint64_t kRunSeedStride = 0x9e37ULL;
constexpr std::uint64_t kEnvStreamSalt = 0x5eedfeedULL;

/// Seed of the r-th independent run of a sweep starting at `base`.
constexpr std::uint64_t run_seed(std::uint64_t base, int run) {
  return base + static_cast<std::uint64_t>(run) * kRunSeedStride;
}

/// Decorrelated stream for the environment automaton of a closed-loop run
/// (the circuit's delay sampler uses the plain seed).
constexpr std::uint64_t env_stream(std::uint64_t seed) { return seed ^ kEnvStreamSalt; }

/// Deterministic 64-bit PRNG (xorshift* seeded through splitmix64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound); bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// Bernoulli draw with probability `p` of returning true.
  bool next_bool(double p = 0.5);

 private:
  std::uint64_t state_;
};

}  // namespace nshot
