#include "nshot/architecture.hpp"

#include <map>

#include "util/error.hpp"

namespace nshot::core {

using gatelib::GateType;
using netlist::Gate;
using netlist::NetId;
using netlist::Netlist;

InitInfo analyze_initialization(const sg::StateGraph& sg, sg::SignalId a,
                                const logic::Cover& cover, const OutputIndex& index) {
  const sg::StateId s0 = sg.initial();
  NSHOT_REQUIRE(s0 >= 0, "state graph has no initial state");
  InitInfo info;
  info.value = sg.value(s0, a);
  const std::uint64_t code = sg.code(s0);
  switch (classify_state(sg, s0, a)) {
    case Mode::kSet:
    case Mode::kReset:
      // The excited SOP drives the flip-flop to the correct value.
      info.explicit_reset = false;
      break;
    case Mode::kQuiescentHigh:
      // Needs a reset-to-1 term unless the set SOP happens to be 1 in s0
      // (the don't-care assignment may or may not cover it).
      info.explicit_reset = !cover.covers(code, index.set_output);
      break;
    case Mode::kQuiescentLow:
      info.explicit_reset = !cover.covers(code, index.reset_output);
      break;
  }
  return info;
}

netlist::Netlist build_nshot_netlist(const sg::StateGraph& sg, const DerivedSpec& derived,
                                     const logic::Cover& cover,
                                     const std::vector<DelayRequirement>& delays,
                                     const ArchitectureOptions& options) {
  NSHOT_REQUIRE(delays.size() == derived.outputs.size(),
                "one DelayRequirement per non-input signal expected");
  Netlist nl(sg.name());

  // Signal rails: q net per signal; qb net for non-input signals.
  std::vector<NetId> rail_q(static_cast<std::size_t>(sg.num_signals()), -1);
  std::vector<NetId> rail_qb(static_cast<std::size_t>(sg.num_signals()), -1);
  for (int x = 0; x < sg.num_signals(); ++x) {
    rail_q[static_cast<std::size_t>(x)] = nl.add_net(sg.signal(x).name);
    if (sg.is_input(x)) {
      nl.add_primary_input(rail_q[static_cast<std::size_t>(x)]);
    } else {
      rail_qb[static_cast<std::size_t>(x)] = nl.add_net(sg.signal(x).name + "_b");
      nl.add_primary_output(rail_q[static_cast<std::size_t>(x)]);
    }
  }

  // Constant rails for degenerate covers: const1 for literal-free cubes,
  // const0 for empty set/reset functions (a function with no cubes must
  // never excite the flip-flop).  Both are modelled as primary inputs the
  // environment holds at a fixed value.
  std::optional<NetId> const_one, const_zero;
  auto get_const_one = [&]() {
    if (!const_one) {
      const_one = nl.add_net("const1");
      nl.add_primary_input(*const_one);
    }
    return *const_one;
  };
  auto get_const_zero = [&]() {
    if (!const_zero) {
      const_zero = nl.add_net("const0");
      nl.add_primary_input(*const_zero);
    }
    return *const_zero;
  };

  // Shared AND plane: one gate per cube (cubes with several outputs are
  // instantiated once and fan out to every OR tree).
  std::vector<NetId> cube_nets(cover.size(), -1);
  for (std::size_t c = 0; c < cover.size(); ++c) {
    const logic::Cube& cube = cover[c];
    std::vector<NetId> ins;
    std::vector<bool> inv;
    for (int x = 0; x < sg.num_signals(); ++x) {
      if (cube.var_is_free(x)) continue;
      const bool positive = (cube.hi() >> x) & 1ULL;
      if (positive) {
        ins.push_back(rail_q[static_cast<std::size_t>(x)]);
        inv.push_back(false);
      } else if (!sg.is_input(x)) {
        ins.push_back(rail_qb[static_cast<std::size_t>(x)]);  // dual rail: free complement
        inv.push_back(false);
      } else {
        ins.push_back(rail_q[static_cast<std::size_t>(x)]);
        inv.push_back(true);  // inversion bubble on the AND input
      }
    }
    if (ins.empty()) {
      cube_nets[c] = get_const_one();
      continue;
    }
    cube_nets[c] =
        nl.build_tree(GateType::kAnd, ins, inv, "and" + std::to_string(c), /*force_gate=*/true);
  }

  // Per-signal OR trees, acknowledgement gates and MHS flip-flop.
  for (std::size_t k = 0; k < derived.outputs.size(); ++k) {
    const OutputIndex& index = derived.outputs[k];
    const std::string base = sg.signal(index.signal).name;
    const NetId q = rail_q[static_cast<std::size_t>(index.signal)];
    const NetId qb = rail_qb[static_cast<std::size_t>(index.signal)];

    auto or_plane = [&](int output, const std::string& suffix) -> NetId {
      std::vector<NetId> cubes;
      for (std::size_t c = 0; c < cover.size(); ++c)
        if (cover[c].has_output(output)) cubes.push_back(cube_nets[c]);
      if (cubes.empty()) return get_const_zero();  // empty function: never fires
      if (cubes.size() == 1) return cubes[0];
      return nl.build_tree(GateType::kOr, cubes, {}, base + "_or_" + suffix,
                           /*force_gate=*/true);
    };
    const NetId set_sop = or_plane(index.set_output, "set");
    const NetId reset_sop = or_plane(index.reset_output, "reset");

    // Enable rails: enable_set follows qb (a must be 0 again before new set
    // pulses may pass), enable_reset follows q; a delay line is inserted
    // when Eq. 1 requires compensation.
    const DelayRequirement& req = delays[k];
    NetId enable_set = qb;
    NetId enable_reset = q;
    if (options.insert_delay_lines && req.compensation_needed()) {
      enable_set = nl.add_net(base + "_ens");
      nl.add_gate(Gate{.type = GateType::kDelayLine,
                       .name = base + "_dl_set",
                       .inputs = {qb},
                       .outputs = {enable_set},
                       .explicit_delay = req.t_del});
      enable_reset = nl.add_net(base + "_enr");
      nl.add_gate(Gate{.type = GateType::kDelayLine,
                       .name = base + "_dl_reset",
                       .inputs = {q},
                       .outputs = {enable_reset},
                       .explicit_delay = req.t_del});
    }

    // The MHS cell integrates the two acknowledgement AND gates (Figure 5
    // shows the custom cell with the acknowledgement scheme): the effective
    // excitations are set & enable_set and reset & enable_reset.
    nl.add_gate(Gate{.type = GateType::kMhsFlipFlop,
                     .name = base + "_mhs",
                     .inputs = {set_sop, reset_sop, enable_set, enable_reset},
                     .outputs = {q, qb}});
  }

  nl.check_well_formed();
  return nl;
}

}  // namespace nshot::core
