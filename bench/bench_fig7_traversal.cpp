// Regenerates Figure 7: single-traversal vs non-single-traversal state
// graphs (Definition 9) and the trigger-requirement machinery of
// Theorem 1.  For every benchmark the harness reports the largest trigger
// region, whether Corollary 1 applies (single traversal => any minimized
// cover works), and how many explicit trigger cubes the synthesis had to
// add to satisfy the requirement.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "bench_suite/benchmarks.hpp"
#include "nshot/synthesis.hpp"
#include "sg/regions.hpp"

namespace {

using namespace nshot;

void print_figure() {
  std::printf("Figure 7: single-traversal analysis and trigger cubes (Theorem 1)\n\n");
  std::printf("%-15s %7s %10s %12s %14s\n", "benchmark", "states", "1-travrsl", "max |TR|",
              "trigger cubes");
  for (const auto& info : bench_suite::all_benchmarks()) {
    if (info.paper_states > 500) continue;  // keep the sweep quick
    const sg::StateGraph g = info.build();
    std::size_t max_tr = 0;
    for (const auto& regions : sg::compute_all_regions(g))
      for (const auto& er : regions.regions)
        for (const auto& tr : er.trigger_regions) max_tr = std::max(max_tr, tr.size());
    const core::SynthesisResult result = core::synthesize(g);
    std::printf("%-15s %7d %10s %12zu %14d\n", info.name.c_str(), g.num_states(),
                result.single_traversal ? "yes" : "no", max_tr, result.trigger.cubes_added);
  }
  std::printf(
      "\nAs in the paper: single-traversal SGs (|TR| = 1 everywhere) admit an\n"
      "optimal implementation from ANY two-level minimizer (Corollary 1).\n"
      "Non-single-traversal SGs (here: the products with a free-running\n"
      "peer, Figure 7(b)'s situation) still satisfy the trigger requirement\n"
      "once each trigger region is covered by one cube; the synthesis\n"
      "reports how many supercubes it had to add.\n");
}

void bm_regions(benchmark::State& state) {
  const sg::StateGraph g = bench_suite::build_benchmark("sing2dual-out");
  for (auto _ : state) {
    const auto regions = sg::compute_all_regions(g);
    benchmark::DoNotOptimize(regions.size());
  }
}
BENCHMARK(bm_regions);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
