// Bit-sliced cube/cover evaluation over packed minterm codes.
//
// A CodeBitPlanes transposes a list of minterm codes into per-variable bit
// planes: bit i of plane v = value of input variable v in code i.  A cube's
// coverage over ALL codes is then evaluated word-parallel — AND together
// plane v (for a positive literal) or ~plane v (for a negative literal)
// over the cube's bound variables — instead of testing the cube against
// one code at a time.  Cost per cube: O(bound_literals x words) word ops
// for any number of codes, versus O(codes) full-cube probes.
//
// Code index order is preserved (bit i <-> codes[i]), so "first violating
// minterm" diagnostics extracted from the lowest set bit match the
// code-at-a-time reference scans exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "logic/cube.hpp"

namespace nshot::logic {

class CodeBitPlanes {
 public:
  CodeBitPlanes(const std::vector<std::uint64_t>& codes, int num_inputs);

  std::size_t num_codes() const { return num_codes_; }
  std::size_t num_words() const { return words_; }
  std::uint64_t code(std::size_t i) const { return codes_[i]; }

  /// Word w of the all-codes set (tail bits beyond num_codes are 0).
  std::uint64_t full_word(std::size_t w) const { return full_[w]; }

  /// Write the coverage set of `cube`'s input part into `out` (num_words()
  /// words): bit i set iff cube covers codes[i].  A cube with an empty
  /// literal (admits neither value) covers nothing.
  void covered_by(const Cube& cube, std::uint64_t* out) const;

  /// True if `cube`'s input part covers every code.
  bool covers_all(const Cube& cube) const;

  /// True if `cube`'s input part covers at least one code.
  bool covers_any(const Cube& cube) const;

 private:
  std::size_t num_codes_ = 0;
  std::size_t words_ = 0;
  int num_inputs_ = 0;
  std::vector<std::uint64_t> codes_;   // original order, for diagnostics
  std::vector<std::uint64_t> planes_;  // num_inputs x words, flattened
  std::vector<std::uint64_t> full_;    // all-codes mask (tail-masked)
};

}  // namespace nshot::logic
