// Differential fuzz battery for the batched trial engine
// (sim/trial_batch.hpp): over 64 seeded random semi-modular circuits, the
// calendar-queue TrialRunner and the word-packed TrialBatch must produce
// byte-identical results to the reference per-trial simulator — same
// verdicts, same report fingerprints (every counter and every
// simulated-time double), same violation strings, and the same VCD
// witness bytes per trial.  This is the test the engine's whole contract
// hangs on; the CI matrix runs it under ASan and TSan.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "bench_suite/generators.hpp"
#include "netlist/transform.hpp"
#include "nshot/synthesis.hpp"
#include "sim/conformance.hpp"
#include "sim/trial_batch.hpp"
#include "sim/vcd.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nshot {
namespace {

struct Generated {
  sg::StateGraph graph;
  core::SynthesisResult result;
};

/// One seeded random semi-modular controller, synthesized; nullopt when
/// the draw is not implementable (a classified skip, not a failure).
std::optional<Generated> generate(int seed) {
  bench_suite::RandomStgOptions options;
  options.seed = static_cast<std::uint64_t>(seed);
  sg::StateGraph graph = bench_suite::build_g(bench_suite::random_semimodular_g(options));
  if (graph.noninput_signals().empty()) return std::nullopt;
  try {
    core::SynthesisResult result = core::synthesize(graph);
    return Generated{std::move(graph), std::move(result)};
  } catch (const Error&) {
    return std::nullopt;
  }
}

/// Per-trial closed-loop config, shaped like check_conformance's sweep.
sim::ClosedLoopConfig trial_config(std::uint64_t base_seed, int r) {
  sim::ClosedLoopConfig config;
  config.sim.seed = run_seed(base_seed, r);
  config.sim.randomize_delays = true;
  config.sim.max_events = 200000;
  config.max_transitions = 60;
  // Vary the environment shape across trials: decoupled env stream,
  // fundamental mode, tighter reaction windows.
  if (r % 3 == 1) config.env_seed = run_seed(base_seed ^ 0x5eedULL, r);
  if (r % 3 == 2) config.fundamental_mode = true;
  if (r % 2 == 1) {
    config.input_delay_min = 0.5;
    config.input_delay_max = 4.0;
  }
  return config;
}

/// Field-by-field fingerprint comparison; doubles compare EXACTLY — the
/// contract is byte identity, not tolerance.
void expect_same_report(const sim::ConformanceReport& got, const sim::ConformanceReport& want,
                        const std::string& label) {
  EXPECT_EQ(got.runs, want.runs) << label;
  EXPECT_EQ(got.external_transitions, want.external_transitions) << label;
  EXPECT_EQ(got.internal_toggles, want.internal_toggles) << label;
  EXPECT_EQ(got.absorbed_pulses, want.absorbed_pulses) << label;
  EXPECT_EQ(got.simulated_time, want.simulated_time) << label;
  EXPECT_EQ(got.deadlocks, want.deadlocks) << label;
  EXPECT_EQ(got.budget_exhausted, want.budget_exhausted) << label;
  ASSERT_EQ(got.violations.size(), want.violations.size()) << label;
  for (std::size_t i = 0; i < want.violations.size(); ++i) {
    EXPECT_EQ(got.violations[i].seed, want.violations[i].seed) << label;
    EXPECT_EQ(got.violations[i].time, want.violations[i].time) << label;
    EXPECT_EQ(got.violations[i].kind, want.violations[i].kind) << label;
    EXPECT_EQ(got.violations[i].description, want.violations[i].description) << label;
  }
}

class SimBatchEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(SimBatchEquivalenceTest, TrialRunnerMatchesReferencePerTrial) {
  const std::optional<Generated> gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "draw is not implementable";
  const netlist::Netlist& circuit = gen->result.circuit;
  const sim::CompiledNetlist compiled(circuit, gatelib::GateLibrary::standard());
  const sim::SpecBinding binding(gen->graph, circuit);
  sim::TrialRunner runner(compiled);

  const std::uint64_t base_seed = 0xbeefULL + static_cast<std::uint64_t>(GetParam());
  for (int r = 0; r < 6; ++r) {
    const sim::ClosedLoopConfig config = trial_config(base_seed, r);
    const std::string label =
        "circuit " + std::to_string(GetParam()) + " trial " + std::to_string(r);

    // Deepest oracle: the uncompiled per-trial reference simulator.
    sim::VcdRecorder want_vcd(circuit);
    const sim::ConformanceReport want = sim::run_closed_loop(gen->graph, circuit, config, &want_vcd);

    sim::VcdRecorder got_vcd(circuit);
    const sim::ConformanceReport got = runner.run(gen->graph, binding, config, &got_vcd);

    expect_same_report(got, want, label);
    EXPECT_EQ(got_vcd.write(), want_vcd.write()) << "VCD witness diverged: " << label;
  }
}

TEST_P(SimBatchEquivalenceTest, TrialBatchMatchesReferenceAcrossLanes) {
  const std::optional<Generated> gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "draw is not implementable";
  const netlist::Netlist& circuit = gen->result.circuit;
  const sim::CompiledNetlist compiled(circuit, gatelib::GateLibrary::standard());
  const sim::SpecBinding binding(gen->graph, circuit);

  // A full 64-lane batch with deliberate duplicates so the lockstep-share
  // path (identical configs riding one scalar run) is exercised alongside
  // the peel path.
  const std::uint64_t base_seed = 0xfeedULL + static_cast<std::uint64_t>(GetParam());
  std::vector<sim::ClosedLoopConfig> configs;
  for (int lane = 0; lane < sim::TrialBatch::kLanes; ++lane)
    configs.push_back(trial_config(base_seed, lane % 24));  // lanes 24.. duplicate 0..

  sim::TrialBatch batch(compiled);
  std::vector<sim::ConformanceReport> got(configs.size());
  batch.run(gen->graph, binding, configs.data(), static_cast<int>(configs.size()), got.data());

  for (std::size_t lane = 0; lane < configs.size(); ++lane) {
    const sim::ConformanceReport want =
        sim::run_closed_loop(gen->graph, binding, compiled, configs[lane]);
    expect_same_report(got[lane], want,
                       "circuit " + std::to_string(GetParam()) + " lane " + std::to_string(lane));
  }
}

TEST_P(SimBatchEquivalenceTest, FaultedConfigsMatchReference) {
  const std::optional<Generated> gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "draw is not implementable";
  const netlist::Netlist& circuit = gen->result.circuit;
  const sim::CompiledNetlist compiled(circuit, gatelib::GateLibrary::standard());
  const sim::SpecBinding binding(gen->graph, circuit);
  sim::TrialRunner runner(compiled);

  // Stuck-at + glitch configs go through the single-step injection path
  // instead of the burst loop; both engines must still agree byte for
  // byte (violations included — faulted runs are EXPECTED to misbehave).
  // release_net only snaps back simple-gate outputs, so pick nets with a
  // combinational driver (the same restriction faults::to_config obeys).
  std::vector<netlist::NetId> driven;
  for (netlist::NetId n = 0; n < circuit.num_nets() && driven.size() < 2; ++n) {
    const netlist::GateId g = compiled.driver(n);
    if (g < 0) continue;
    const gatelib::GateType type = circuit.gate(g).type;
    if (type == gatelib::GateType::kAnd || type == gatelib::GateType::kOr ||
        type == gatelib::GateType::kInv || type == gatelib::GateType::kBuf)
      driven.push_back(n);
  }
  if (driven.size() < 2) GTEST_SKIP() << "not enough driven nets";

  const std::uint64_t base_seed = 0xfaceULL + static_cast<std::uint64_t>(GetParam());
  for (int r = 0; r < 3; ++r) {
    sim::ClosedLoopConfig config = trial_config(base_seed, r);
    config.forces.emplace_back(driven[0], (r % 2) != 0);
    sim::TimedInjection hit;
    hit.time = 5.0;
    hit.net = driven[1];
    hit.value = true;
    sim::TimedInjection drop = hit;
    drop.time = 5.0 + 0.05 * (r + 1);
    drop.release = true;
    config.injections = {hit, drop};

    const std::string label =
        "circuit " + std::to_string(GetParam()) + " faulted trial " + std::to_string(r);
    sim::VcdRecorder want_vcd(circuit);
    const sim::ConformanceReport want =
        sim::run_closed_loop(gen->graph, circuit, config, &want_vcd);
    sim::VcdRecorder got_vcd(circuit);
    const sim::ConformanceReport got = runner.run(gen->graph, binding, config, &got_vcd);
    expect_same_report(got, want, label);
    EXPECT_EQ(got_vcd.write(), want_vcd.write()) << "VCD witness diverged: " << label;
  }
}

/// Re-route every combinational gate output through a `length`-stage
/// BUF or INV ladder (alternating per gate; INV ladders keep even parity
/// so values are preserved).  Every ladder net has exactly one reader, so
/// the compiled netlist fuses the whole ladder into one chain — this is
/// the circuit family that maximally exercises run_burst's hold register.
/// The original output net keeps its name, so bindings and observables
/// are untouched.
netlist::Netlist with_ladders(const netlist::Netlist& source, int length) {
  int counter = 0;
  return netlist::transform_netlist(
      source, [&](const netlist::Gate& gate, netlist::Netlist& out) -> std::optional<netlist::Gate> {
        const bool simple = gate.type == gatelib::GateType::kAnd ||
                            gate.type == gatelib::GateType::kOr ||
                            gate.type == gatelib::GateType::kInv ||
                            gate.type == gatelib::GateType::kBuf;
        if (!simple || gate.feedback_cut || gate.outputs.size() != 1) return gate;
        const std::string prefix = "lad" + std::to_string(counter) + "_";
        const bool invert = (counter++ % 2) != 0;  // INV ladders need even length
        const int stages = invert ? (length + 1) / 2 * 2 : length;
        netlist::Gate head = gate;
        netlist::NetId prev = out.add_net(prefix + "0");
        head.outputs = {prev};
        out.add_gate(std::move(head));
        for (int i = 0; i < stages; ++i) {
          const bool last = i + 1 == stages;
          const netlist::NetId next =
              last ? gate.outputs[0] : out.add_net(prefix + std::to_string(i + 1));
          netlist::Gate link;
          link.type = invert ? gatelib::GateType::kInv : gatelib::GateType::kBuf;
          link.name = prefix + "g" + std::to_string(i);
          link.inputs = {prev};
          link.outputs = {next};
          out.add_gate(std::move(link));
          prev = next;
        }
        return std::nullopt;
      });
}

TEST_P(SimBatchEquivalenceTest, ChainHeavyCircuitsMatchReference) {
  const std::optional<Generated> gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "draw is not implementable";
  // Long ladders on every combinational output: the fused-chain walk now
  // carries most of the event traffic instead of the queue.
  const netlist::Netlist circuit = with_ladders(gen->result.circuit, 6);
  circuit.check_well_formed();
  const sim::CompiledNetlist compiled(circuit, gatelib::GateLibrary::standard());
  ASSERT_GE(compiled.longest_fused_chain(), std::size_t{6});
  const sim::SpecBinding binding(gen->graph, circuit);
  sim::TrialRunner runner(compiled);

  const std::uint64_t base_seed = 0xcadeULL + static_cast<std::uint64_t>(GetParam());
  for (int r = 0; r < 4; ++r) {
    const sim::ClosedLoopConfig config = trial_config(base_seed, r);
    const std::string label =
        "laddered circuit " + std::to_string(GetParam()) + " trial " + std::to_string(r);
    sim::VcdRecorder want_vcd(circuit);
    const sim::ConformanceReport want = sim::run_closed_loop(gen->graph, circuit, config, &want_vcd);
    sim::VcdRecorder got_vcd(circuit);
    const sim::ConformanceReport got = runner.run(gen->graph, binding, config, &got_vcd);
    expect_same_report(got, want, label);
    EXPECT_EQ(got_vcd.write(), want_vcd.write()) << "VCD witness diverged: " << label;
  }
}

TEST_P(SimBatchEquivalenceTest, FaultedChainHeavyCircuitsMatchReference) {
  const std::optional<Generated> gen = generate(GetParam());
  if (!gen) GTEST_SKIP() << "draw is not implementable";
  const netlist::Netlist circuit = with_ladders(gen->result.circuit, 6);
  const sim::CompiledNetlist compiled(circuit, gatelib::GateLibrary::standard());
  const sim::SpecBinding binding(gen->graph, circuit);
  sim::TrialRunner runner(compiled);

  // Force/inject ON the ladder nets themselves: a forced mid-chain net
  // pins a fused link, so the inline walk must agree with the reference
  // about commits that never happen and about the release snap-back.
  std::vector<netlist::NetId> ladder_nets;
  for (netlist::NetId n = 0; n < circuit.num_nets() && ladder_nets.size() < 2; ++n)
    if (circuit.net_name(n).compare(0, 3, "lad") == 0 && compiled.driver(n) >= 0)
      ladder_nets.push_back(n);
  if (ladder_nets.size() < 2) GTEST_SKIP() << "no ladder nets";

  const std::uint64_t base_seed = 0xdeafULL + static_cast<std::uint64_t>(GetParam());
  for (int r = 0; r < 3; ++r) {
    sim::ClosedLoopConfig config = trial_config(base_seed, r);
    config.forces.emplace_back(ladder_nets[0], (r % 2) != 0);
    sim::TimedInjection hit;
    hit.time = 4.0 + 0.5 * r;
    hit.net = ladder_nets[1];
    hit.value = (r % 2) == 0;
    sim::TimedInjection drop = hit;
    drop.time = hit.time + 0.25;
    drop.release = true;
    config.injections = {hit, drop};

    const std::string label =
        "laddered circuit " + std::to_string(GetParam()) + " faulted trial " + std::to_string(r);
    sim::VcdRecorder want_vcd(circuit);
    const sim::ConformanceReport want = sim::run_closed_loop(gen->graph, circuit, config, &want_vcd);
    sim::VcdRecorder got_vcd(circuit);
    const sim::ConformanceReport got = runner.run(gen->graph, binding, config, &got_vcd);
    expect_same_report(got, want, label);
    EXPECT_EQ(got_vcd.write(), want_vcd.write()) << "VCD witness diverged: " << label;
  }
}

// 64 seeded circuits: the battery the acceptance criteria name.
INSTANTIATE_TEST_SUITE_P(Seeds, SimBatchEquivalenceTest, ::testing::Range(1, 65));

}  // namespace
}  // namespace nshot
