#include "faults/stress.hpp"

#include <algorithm>
#include <optional>

#include "exec/thread_pool.hpp"
#include "obs/obs.hpp"
#include "sim/delay_space.hpp"
#include "sim/trial_batch.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace nshot::faults {

using gatelib::GateType;
using netlist::Gate;
using netlist::GateId;
using netlist::NetId;

namespace {

void write_violations(JsonWriter& json, const sim::ConformanceReport& report) {
  json.begin_array();
  for (const sim::ConformanceViolation& v : report.violations) {
    json.begin_object();
    json.key("kind").value(sim::violation_kind_name(v.kind));
    json.key("time").value(v.time);
    json.key("description").value(v.description);
    json.end_object();
  }
  json.end_array();
}

}  // namespace

StressReport run_stress(const sg::StateGraph& spec, const netlist::Netlist& circuit,
                        const std::string& benchmark, const StressOptions& options) {
  const obs::Span stress_span("stress");
  const gatelib::GateLibrary& lib = gatelib::GateLibrary::standard();
  const double omega = lib.mhs_threshold();
  // Compile once for the whole campaign: every phase below runs against
  // the same CSR fanout / driver table / delay bounds and the same
  // name-resolved spec binding.
  const sim::CompiledNetlist compiled(circuit, lib);
  const sim::SpecBinding binding(spec, circuit);
  StressReport report;
  report.benchmark = benchmark;
  report.margin_runs = options.margin_runs;

  // Enumerate the MHS cells once; run_probed reports omega stats in the
  // same netlist order.
  const MarginProbe cells(circuit, lib);
  std::vector<int> signal_of_cell;  // cell index -> report.signals index
  for (int k = 0; k < cells.num_cells(); ++k) {
    SignalMargins margins;
    margins.signal = cells.cell_signal(k);
    signal_of_cell.push_back(static_cast<int>(report.signals.size()));
    report.signals.push_back(std::move(margins));
  }

  // Phase 1: margin measurement over independent delay samples of the
  // UNFAULTED circuit.  Each probed run depends only on run_seed(seed, r);
  // runs execute in parallel and merge in run order.
  {
    const obs::Span margins_span("margins");
    std::vector<ProbedRun> probed(static_cast<std::size_t>(std::max(options.margin_runs, 0)));
    exec::parallel_for_chunks(
        options.margin_runs,
        options.grain > 0 ? options.grain : exec::batch_grain(options.margin_runs, options.jobs),
        [&](int begin, int end) {
          // Engine three-way: uncompiled reference kernels, the frozen
          // pre-batch compiled driver, or (default) the calendar-queue
          // TrialRunner with a chunk-reused MarginProbe.
          std::optional<sim::Simulator> reuse;
          std::optional<sim::TrialRunner> runner;
          std::optional<MarginProbe> probe;
          if (!options.reference_kernels) {
            if (options.reference_driver) {
              reuse.emplace(compiled, sim::SimulatorOptions{});
            } else {
              runner.emplace(compiled);
              probe.emplace(circuit, lib);
            }
          }
          for (int r = begin; r < end; ++r) {
            FaultScenario scenario;
            scenario.seed = run_seed(options.seed, r);
            probed[static_cast<std::size_t>(r)] =
                options.reference_kernels
                    ? run_probed(spec, circuit, scenario, options.run)
                : options.reference_driver
                    ? run_probed(spec, binding, compiled, scenario, options.run, &*reuse)
                    : run_probed(spec, binding, scenario, options.run, *runner, &*probe);
          }
        },
        options.jobs);
    for (const ProbedRun& run : probed) {
      if (!run.report.clean()) report.baseline_clean = false;
      for (int k = 0; k < cells.num_cells(); ++k)
        report.signals[static_cast<std::size_t>(signal_of_cell[static_cast<std::size_t>(k)])]
            .omega.merge(run.omega[static_cast<std::size_t>(k)]);
      for (std::size_t k = 0; k < run.eq1.size(); ++k) {
        SignalMargins& margins =
            report.signals[static_cast<std::size_t>(signal_of_cell[static_cast<std::size_t>(k)])];
        margins.min_eq1_slack = std::min(margins.min_eq1_slack, run.eq1[k].slack());
      }
    }
    for (const SignalMargins& margins : report.signals) {
      report.min_omega_slack = std::min(report.min_omega_slack, margins.omega.min_slack());
      report.min_eq1_slack = std::min(report.min_eq1_slack, margins.min_eq1_slack);
      // kNoMargin is +inf, so a comparison doubles as the "was observed"
      // test; unobserved margins would poison the gauge min/mean.
      if (margins.omega.min_slack() < kNoMargin)
        obs::gauge(obs::Gauge::kOmegaSlack, margins.omega.min_slack());
      if (margins.min_eq1_slack < kNoMargin)
        obs::gauge(obs::Gauge::kEq1Slack, margins.min_eq1_slack);
    }
  }

  // Phase 2: deterministic fault battery per cell.  The battery is first
  // enumerated into an ordered job list, then the (independent) scenarios
  // run in parallel; outcomes merge back in enumeration order.
  const sim::DelaySpace& space = compiled.delay_space();
  struct BatteryEntry {
    int cell = 0;
    Fault fault;
  };
  std::vector<BatteryEntry> battery;
  for (int k = 0; k < cells.num_cells(); ++k) {
    const Gate& mhs = circuit.gate(cells.cell_gate(k));
    // Stuck-at faults on all four input rails (set, reset, enable_set,
    // enable_reset).
    for (int pin = 0; pin < 4; ++pin) {
      for (const bool value : {false, true}) {
        Fault fault;
        fault.kind = FaultKind::kStuckAt;
        fault.net = mhs.inputs[static_cast<std::size_t>(pin)];
        fault.value = value;
        battery.push_back({k, fault});
      }
    }
    // Glitch pulses around the ω threshold on the SOP nets.
    for (int pin = 0; pin < 2; ++pin) {
      for (const double rel : options.glitch_widths) {
        Fault fault;
        fault.kind = FaultKind::kGlitch;
        fault.net = mhs.inputs[static_cast<std::size_t>(pin)];
        fault.value = true;
        fault.time = options.glitch_time;
        fault.width = rel * omega;
        battery.push_back({k, fault});
      }
    }
    // Slow-outlier delay on each SOP driver gate.
    if (options.delay_outliers) {
      for (int pin = 0; pin < 2; ++pin) {
        const GateId driver = compiled.driver(mhs.inputs[static_cast<std::size_t>(pin)]);
        if (driver < 0 || space.fixed(driver)) continue;
        Fault fault;
        fault.kind = FaultKind::kDelayOutlier;
        fault.gate = driver;
        fault.delay = space.hi(driver) * options.outlier_factor;
        battery.push_back({k, fault});
      }
    }
  }

  {
    const obs::Span battery_span("battery");
    obs::count(obs::Counter::kFaultsInjected, static_cast<long>(battery.size()));
    std::vector<FaultOutcome> outcomes(battery.size());
    exec::parallel_for_chunks(
        static_cast<int>(battery.size()),
        options.grain > 0
            ? options.grain
            : exec::batch_grain(static_cast<int>(battery.size()), options.jobs),
        [&](int begin, int end) {
          std::optional<sim::Simulator> reuse;
          std::optional<sim::TrialRunner> runner;
          if (!options.reference_kernels) {
            if (options.reference_driver)
              reuse.emplace(compiled, sim::SimulatorOptions{});
            else
              runner.emplace(compiled);
          }
          for (int j = begin; j < end; ++j) {
            const BatteryEntry& entry = battery[static_cast<std::size_t>(j)];
            FaultOutcome outcome;
            outcome.fault = entry.fault;
            outcome.signal = cells.cell_signal(entry.cell);
            outcome.description = describe_fault(entry.fault, circuit);
            FaultScenario scenario;
            scenario.seed = options.seed;
            scenario.faults.push_back(entry.fault);
            const sim::ConformanceReport run =
                options.reference_kernels
                    ? run_scenario(spec, circuit, scenario, options.run)
                : options.reference_driver
                    ? run_scenario(spec, binding, compiled, scenario, options.run, nullptr,
                                   &*reuse)
                    : run_scenario(spec, binding, scenario, options.run, *runner);
            outcome.survived = run.clean();
            if (!run.violations.empty())
              outcome.violation =
                  std::string(sim::violation_kind_name(run.violations.front().kind)) + ": " +
                  run.violations.front().description;
            outcomes[static_cast<std::size_t>(j)] = std::move(outcome);
          }
        },
        options.jobs);
    for (std::size_t j = 0; j < outcomes.size(); ++j) {
      SignalMargins& margins = report.signals[static_cast<std::size_t>(
          signal_of_cell[static_cast<std::size_t>(battery[j].cell)])];
      (outcomes[j].survived ? margins.faults_survived : margins.faults_failed) += 1;
      report.outcomes.push_back(std::move(outcomes[j]));
    }
  }

  // Phase 3: adversarial delay-stress search.
  if (options.adversarial.restarts > 0) {
    AdversarialOptions adversarial = options.adversarial;
    adversarial.reference_kernels |= options.reference_kernels;
    adversarial.reference_driver |= options.reference_driver;
    report.adversarial = adversarial_delay_search(spec, circuit, adversarial);
    report.adversarial_ran = true;
  }
  return report;
}

std::string stress_report_json(const StressReport& report) {
  JsonWriter json;
  json.begin_object();
  json.key("benchmark").value(report.benchmark);
  json.key("margin_runs").value(report.margin_runs);
  json.key("baseline_clean").value(report.baseline_clean);
  json.key("min_omega_slack").value(report.min_omega_slack);
  json.key("min_eq1_slack").value(report.min_eq1_slack);

  json.key("signals").begin_array();
  for (const SignalMargins& margins : report.signals) {
    json.begin_object();
    json.key("signal").value(margins.signal);
    json.key("omega").begin_object();
    json.key("fired").value(margins.omega.fired);
    json.key("absorbed").value(margins.omega.absorbed);
    json.key("min_fire_slack").value(margins.omega.min_fire_slack);
    json.key("min_absorb_slack").value(margins.omega.min_absorb_slack);
    json.end_object();
    json.key("min_eq1_slack").value(margins.min_eq1_slack);
    json.key("faults_survived").value(margins.faults_survived);
    json.key("faults_failed").value(margins.faults_failed);
    json.end_object();
  }
  json.end_array();

  json.key("faults").begin_array();
  for (const FaultOutcome& outcome : report.outcomes) {
    json.begin_object();
    json.key("kind").value(fault_kind_name(outcome.fault.kind));
    json.key("signal").value(outcome.signal);
    json.key("description").value(outcome.description);
    json.key("survived").value(outcome.survived);
    if (outcome.survived)
      json.key("violation").null();
    else
      json.key("violation").value(outcome.violation);
    json.end_object();
  }
  json.end_array();

  if (report.adversarial_ran) {
    const AdversarialResult& adv = report.adversarial;
    json.key("adversarial").begin_object();
    json.key("violation_found").value(adv.violation_found);
    json.key("best_slack").value(adv.best_slack);
    json.key("env_seed").value(adv.env_seed);
    json.key("evaluations").value(adv.evaluations);
    json.key("violations");
    write_violations(json, adv.report);
    json.end_object();
  } else {
    json.key("adversarial").null();
  }
  json.end_object();
  return json.str();
}

std::string witness_json(const MinimizedWitness& witness, const netlist::Netlist& circuit) {
  JsonWriter json;
  json.begin_object();
  json.key("reproduced").value(witness.reproduced);
  json.key("seed").value(witness.scenario.seed);
  json.key("faults_removed").value(witness.faults_removed);
  json.key("delays_reset").value(witness.delays_reset);
  json.key("off_nominal_gates").value(witness.off_nominal_gates);
  json.key("evaluations").value(witness.evaluations);

  json.key("faults").begin_array();
  for (const Fault& fault : witness.scenario.faults) {
    json.begin_object();
    json.key("kind").value(fault_kind_name(fault.kind));
    json.key("description").value(describe_fault(fault, circuit));
    json.end_object();
  }
  json.end_array();

  // The delay perturbations the failure still needs, by gate name.
  const std::vector<double> nominal =
      sim::DelaySpace(circuit, gatelib::GateLibrary::standard()).nominal_vector();
  json.key("off_nominal_delays").begin_array();
  for (std::size_t g = 0; g < witness.scenario.delays.size(); ++g) {
    if (witness.scenario.delays[g] == nominal[g]) continue;
    json.begin_object();
    json.key("gate").value(circuit.gate(static_cast<GateId>(g)).name);
    json.key("delay").value(witness.scenario.delays[g]);
    json.key("nominal").value(nominal[g]);
    json.end_object();
  }
  json.end_array();

  json.key("violations");
  write_violations(json, witness.report);
  json.end_object();
  return json.str();
}

}  // namespace nshot::faults
