file(REMOVE_RECURSE
  "CMakeFiles/bench_cycle_time.dir/bench_cycle_time.cpp.o"
  "CMakeFiles/bench_cycle_time.dir/bench_cycle_time.cpp.o.d"
  "bench_cycle_time"
  "bench_cycle_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cycle_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
