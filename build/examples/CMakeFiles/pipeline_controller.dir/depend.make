# Empty dependencies file for pipeline_controller.
# This may be replaced when dependencies are built.
