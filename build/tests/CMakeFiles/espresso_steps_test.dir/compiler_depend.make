# Empty compiler generated dependencies file for espresso_steps_test.
# This may be replaced when dependencies are built.
