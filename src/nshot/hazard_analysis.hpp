// Static hazard analysis of two-level covers against state-graph
// transitions — the machinery that quantifies the paper's starting point:
// covers produced by a conventional minimizer are hazardous, and prior
// methods either constrain the cover (monotonous covers), mask the
// hazards with delays (bounded-delay), or — the paper's move — tolerate
// them in the storage element.
#pragma once

#include <vector>

#include "logic/cover.hpp"
#include "logic/spec.hpp"
#include "sg/regions.hpp"
#include "sg/state_graph.hpp"

namespace nshot::core {

/// A single-input-change static-1 hazard site: a specified arc s -> t with
/// f(s) = f(t) = 1 that no single cube covers end-to-end, so the OR output
/// may glitch low while the covering cube hands over.
struct StaticOneHazard {
  int output = -1;
  sg::StateId from = -1;
  sg::StateId to = -1;
  sg::TransitionLabel via;
};

/// All static-1 hazard sites of `output` in `cover`, using `spec` for the
/// on-set membership and `graph` for the specified transitions.
std::vector<StaticOneHazard> static_one_hazards(const sg::StateGraph& graph,
                                                const logic::TwoLevelSpec& spec,
                                                const logic::Cover& cover, int output);

/// Number of specified arcs inside ER(*a_i) u QR(*a_i) on which the SOP
/// value of `output` changes.  A monotonous cover changes at most once
/// per arc-chain (rise in the ER, one fall in the QR); a conventional
/// don't-care-optimized cover may toggle many times — these are the pulse
/// streams of Figure 3 that the MHS flip-flop absorbs.
int sop_activity_edges(const sg::StateGraph& graph, const logic::Cover& cover, int output,
                       const sg::ExcitationRegion& er);

}  // namespace nshot::core
