// Complete State Coding enforcement by internal state-signal insertion.
//
// The N-SHOT flow requires CSC — the minimal property needed to derive
// unambiguously consistent logic (Sections I, V).  The paper's benchmarks
// were "already transformed to satisfy the CSC property" by the state-graph
// transformation framework of the same group [6, 18]; this module provides
// that preprocessing step for STG inputs: when two reachable states share a
// binary code but disagree on their excited non-input signals, an internal
// toggle signal is spliced into the net to tell the phases apart.
//
// The insertion primitive serializes a fresh internal signal z behind two
// chosen transitions: z+ fires immediately after t_plus, z- immediately
// after t_minus.  In a live 1-safe net where t_plus and t_minus alternate,
// the result is again live, 1-safe and consistent, and z+ (a non-input
// transition with a private preset place) can never be disabled, so
// semi-modularity is preserved.  The solver searches transition pairs,
// keeps any insertion that strictly reduces the number of CSC conflicts
// while preserving all other implementability properties, and repeats
// until the graph is CSC-clean or the signal budget is exhausted.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sg/state_graph.hpp"
#include "stg/stg.hpp"

namespace nshot::csc {

struct CscSolveOptions {
  int max_signals = 4;            // insertion budget
  std::size_t max_states = 1u << 18;
  // Route the candidate-evaluation conflict counting through the ordered
  // reference implementation (sg::csc_conflict_count_reference) instead of
  // the count-only fast path — byte-equality oracle for tests/benches.
  bool reference_kernels = false;
};

struct CscSolveResult {
  stg::Stg transformed;              // the STG with inserted signals
  sg::StateGraph graph;              // its CSC-clean state graph
  int signals_added = 0;
  std::vector<std::string> insertions;  // e.g. "csc0: + after a+, - after b-"
};

/// Splice internal toggle `name` into the net: z+ immediately after
/// `after_plus`, z- immediately after `after_minus` (both transition ids
/// of `source`).  Purely structural; the caller re-checks semantics.
stg::Stg insert_toggle(const stg::Stg& source, stg::TransitionId after_plus,
                       stg::TransitionId after_minus, const std::string& name);

/// Count the CSC conflicts of a state graph (0 = CSC holds).
int csc_conflict_count(const sg::StateGraph& graph);

/// Resolve CSC violations of `source` by repeated toggle insertion.
/// Returns std::nullopt if no sequence of at most max_signals insertions
/// found by the greedy search removes every conflict.
std::optional<CscSolveResult> solve_csc(const stg::Stg& source,
                                        const CscSolveOptions& options = {});

}  // namespace nshot::csc
