.model pp
.inputs a
.outputs c
.graph
p0 p1
a+ c+
c+ a-
a- c-
c- a+
.marking { p0 }
.end
