// Tests for the shared utilities (error reporting, string helpers, PRNG)
// and the netlist / gate-library substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "gatelib/gate_library.hpp"
#include "netlist/netlist.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/json_value.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace nshot {
namespace {

using gatelib::GateLibrary;
using gatelib::GateType;
using netlist::Gate;
using netlist::NetId;
using netlist::Netlist;

// ----------------------------------------------------------------- util --

TEST(ErrorTest, RequireThrowsWithLocation) {
  try {
    NSHOT_REQUIRE(false, "boom");
    FAIL() << "expected an exception";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("util_test.cpp"), std::string::npos);
  }
}

TEST(StringsTest, SplitAndTrim) {
  EXPECT_EQ(split_ws("  a\tb   c "), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
  EXPECT_EQ(strip_comment_and_trim("  foo bar # comment "), "foo bar");
  EXPECT_EQ(strip_comment_and_trim("# all comment"), "");
  EXPECT_TRUE(starts_with(".inputs a b", ".inputs"));
  EXPECT_FALSE(starts_with(".in", ".inputs"));
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(13), 13u);
    const double d = r.next_double(2.0, 5.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 5.0);
  }
}

TEST(RngTest, RoughlyUniformBits) {
  Rng r(99);
  int ones = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) ones += r.next_bool() ? 1 : 0;
  EXPECT_NEAR(ones, trials / 2, 300);  // ~6 sigma
}

// ----------------------------------------------------------- json parse --

TEST(JsonParseTest, ParsesScalarsArraysAndObjects) {
  const JsonValue doc = parse_json(
      R"({"id":"r1","ok":true,"n":3,"x":-2.5e1,"none":null,"list":[1,"two",false]})");
  EXPECT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("id").as_string(), "r1");
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("n").as_int(), 3);
  EXPECT_DOUBLE_EQ(doc.at("x").as_number(), -25.0);
  EXPECT_TRUE(doc.at("none").is_null());
  const auto& list = doc.at("list").as_array();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].as_int(), 1);
  EXPECT_EQ(list[1].as_string(), "two");
  EXPECT_FALSE(list[2].as_bool());
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_EQ(doc.string_or("id", "x"), "r1");
  EXPECT_EQ(doc.string_or("missing", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(doc.number_or("none", 7.0), 7.0);
}

TEST(JsonParseTest, DecodesEscapesAndSurrogatePairs) {
  const JsonValue doc = parse_json(R"({"s":"a\"b\\c\ndAé😀"})");
  EXPECT_EQ(doc.at("s").as_string(), std::string("a\"b\\c\ndA\xc3\xa9\xf0\x9f\x98\x80"));
}

TEST(JsonParseTest, RoundTripsJsonWriterOutput) {
  JsonWriter writer;
  writer.begin_object();
  writer.key("name").value("tab\there \"quoted\"");
  writer.key("count").value(42);
  writer.key("ratio").value(1.5);
  writer.key("flags").begin_array().value(true).value(false).end_array();
  writer.end_object();
  const JsonValue doc = parse_json(writer.str());
  EXPECT_EQ(doc.at("name").as_string(), "tab\there \"quoted\"");
  EXPECT_EQ(doc.at("count").as_int(), 42);
  EXPECT_DOUBLE_EQ(doc.at("ratio").as_number(), 1.5);
  EXPECT_EQ(doc.at("flags").as_array().size(), 2u);
}

TEST(JsonParseTest, RejectsMalformedDocumentsAsInputInvalid) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\":1,}", "tru", "01x", "\"unterminated",
        "{\"a\":1}garbage", "{\"dup\":1,\"dup\":2}", "\"bad \\q escape\"",
        "{\"a\":\"\\ud800 unpaired\"}", "1e99999"}) {
    try {
      parse_json(bad, "test doc");
      FAIL() << "expected rejection of: " << bad;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kInputInvalid) << bad;
      EXPECT_NE(std::string(e.what()).find("test doc"), std::string::npos) << bad;
    }
  }
}

TEST(JsonParseTest, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW(parse_json(deep), Error);
}

TEST(JsonParseTest, CheckedAccessorsNameTheKindMismatch) {
  const JsonValue doc = parse_json(R"({"n":1})");
  try {
    doc.at("n").as_string();
    FAIL() << "expected a kind mismatch";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInputInvalid);
    EXPECT_NE(std::string(e.what()).find("expected string"), std::string::npos);
  }
  EXPECT_THROW(doc.at("missing"), Error);
  EXPECT_THROW(parse_json(R"({"x":1.5})").at("x").as_int(), Error);
}

// -------------------------------------------------------------- gatelib --

TEST(GateLibraryTest, AreaGrowsWithFanin) {
  const GateLibrary& lib = GateLibrary::standard();
  EXPECT_LT(lib.area(GateType::kAnd, 2), lib.area(GateType::kAnd, 4));
  EXPECT_GT(lib.area(GateType::kMhsFlipFlop, 4), lib.area(GateType::kCElement, 2));
  EXPECT_THROW(lib.area(GateType::kAnd, 9), Error);  // beyond max fanin
}

TEST(GateLibraryTest, TimingIsOrderedAndThresholdBelowResponse) {
  const GateLibrary& lib = GateLibrary::standard();
  const auto timing = lib.timing(GateType::kAnd, 2);
  EXPECT_LT(timing.min_delay, timing.max_delay);
  EXPECT_LT(lib.mhs_threshold(), lib.mhs_response());  // omega < tau (Fig. 4)
  EXPECT_DOUBLE_EQ(lib.report_delay(GateType::kMhsFlipFlop), 2 * lib.level_delay());
}

// -------------------------------------------------------------- netlist --

TEST(NetlistTest, BuildTreeDecomposesWideFunctions) {
  Netlist nl("t");
  std::vector<NetId> ins;
  for (int i = 0; i < 9; ++i) {
    ins.push_back(nl.add_net("i" + std::to_string(i)));
    nl.add_primary_input(ins.back());
  }
  nl.build_tree(GateType::kAnd, ins, {}, "wide", /*force_gate=*/true);
  int gates = 0;
  for (const Gate& g : nl.gates()) {
    EXPECT_LE(g.inputs.size(), 4u);
    ++gates;
  }
  EXPECT_EQ(gates, 4);  // 4+4+1 leaves -> 3 first-level + 1 merge
}

TEST(NetlistTest, BuildTreeSingleInputIsWire) {
  Netlist nl("t");
  const NetId in = nl.add_net("in");
  nl.add_primary_input(in);
  EXPECT_EQ(nl.build_tree(GateType::kAnd, {in}, {}, "w"), in);
  EXPECT_EQ(nl.num_gates(), 0);
  // Forced or inverted single inputs do create a gate.
  EXPECT_NE(nl.build_tree(GateType::kAnd, {in}, {true}, "inv"), in);
  EXPECT_EQ(nl.gate(0).type, GateType::kInv);
}

TEST(NetlistTest, WellFormednessChecks) {
  Netlist nl("t");
  const NetId a = nl.add_net("a");
  const NetId out = nl.add_net("out");
  nl.add_gate(Gate{.type = GateType::kBuf, .name = "b", .inputs = {a}, .outputs = {out}});
  EXPECT_THROW(nl.check_well_formed(), Error);  // a undriven
  nl.add_primary_input(a);
  nl.check_well_formed();
  // Second driver on `out` is caught.
  nl.add_gate(Gate{.type = GateType::kBuf, .name = "b2", .inputs = {a}, .outputs = {out}});
  EXPECT_THROW(nl.check_well_formed(), Error);
  EXPECT_THROW(nl.add_net("a"), Error);  // duplicate name
}

TEST(NetlistTest, StatsCountLevelsThroughTrees) {
  // in -> AND -> OR -> MHS: delay = 1.2 + 1.2 + 2.4.
  Netlist nl("t");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  nl.add_primary_input(a);
  nl.add_primary_input(b);
  const NetId and_out = nl.add_net("and_out");
  nl.add_gate(Gate{.type = GateType::kAnd, .name = "g1", .inputs = {a, b}, .outputs = {and_out}});
  const NetId or_out = nl.add_net("or_out");
  nl.add_gate(Gate{.type = GateType::kOr, .name = "g2", .inputs = {and_out, b},
                   .outputs = {or_out}});
  const NetId q = nl.add_net("q");
  const NetId qb = nl.add_net("qb");
  nl.add_gate(Gate{.type = GateType::kMhsFlipFlop,
                   .name = "ff",
                   .inputs = {or_out, or_out, q, qb},
                   .outputs = {q, qb}});
  nl.add_primary_output(q);
  const netlist::NetlistStats stats = nl.stats(GateLibrary::standard());
  EXPECT_DOUBLE_EQ(stats.delay, 4.8);
  EXPECT_EQ(stats.gate_count, 3);
  EXPECT_EQ(stats.literal_count, 4);
}

TEST(NetlistTest, CombinationalCycleWithoutCutIsRejected) {
  Netlist nl("t");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  nl.add_gate(Gate{.type = GateType::kBuf, .name = "f", .inputs = {a}, .outputs = {b}});
  nl.add_gate(Gate{.type = GateType::kBuf, .name = "g", .inputs = {b}, .outputs = {a}});
  EXPECT_THROW(nl.stats(GateLibrary::standard()), Error);
  // Marking one element as a feedback cut makes the analysis well defined.
  Netlist cut("t2");
  const NetId c = cut.add_net("c");
  const NetId d = cut.add_net("d");
  cut.add_gate(Gate{.type = GateType::kBuf, .name = "f", .inputs = {c}, .outputs = {d}});
  cut.add_gate(Gate{.type = GateType::kDelayLine,
                    .name = "g",
                    .inputs = {d},
                    .outputs = {c},
                    .feedback_cut = true});
  EXPECT_NO_THROW(cut.stats(GateLibrary::standard()));
}

}  // namespace
}  // namespace nshot
