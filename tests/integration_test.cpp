// End-to-end integration: .g text -> STG -> state graph -> property checks
// -> N-SHOT synthesis -> netlist -> closed-loop simulation, plus the
// cross-cutting behaviours that only show up when the modules compose.
#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "bench_suite/generators.hpp"
#include "logic/pla.hpp"
#include "nshot/synthesis.hpp"
#include "sg/properties.hpp"
#include "sim/conformance.hpp"
#include "stg/g_format.hpp"
#include "stg/reachability.hpp"

namespace nshot {
namespace {

TEST(IntegrationTest, GTextToVerifiedCircuit) {
  const char* g_text =
      ".model demo\n"
      ".inputs req\n"
      ".outputs ack done\n"
      ".graph\n"
      "req+ ack+\n"
      "ack+ done+\n"
      "done+ req-\n"
      "req- ack-\n"
      "ack- done-\n"
      "done- req+\n"
      ".marking { <done-,req+> }\n"
      ".end\n";
  const stg::Stg net = stg::parse_g(g_text);
  const sg::StateGraph graph = stg::build_state_graph(net);
  ASSERT_TRUE(sg::check_implementability(graph).ok());

  const core::SynthesisResult result = core::synthesize(graph);
  EXPECT_EQ(result.signals.size(), 2u);

  sim::ConformanceOptions options;
  options.runs = 6;
  options.max_transitions = 80;
  const sim::ConformanceReport report = sim::check_conformance(graph, result.circuit, options);
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(IntegrationTest, CoverExportsAsPla) {
  const sg::StateGraph g = bench_suite::build_benchmark("full");
  const core::SynthesisResult result = core::synthesize(g);
  const std::string pla_text = logic::write_pla(result.cover);
  EXPECT_NE(pla_text.find(".i 4"), std::string::npos);  // 4 signals
  EXPECT_NE(pla_text.find(".o 4"), std::string::npos);  // set/reset of c, d
}

TEST(IntegrationTest, NetlistDumpIsStructured) {
  const sg::StateGraph g = bench_suite::build_benchmark("chu172");
  const core::SynthesisResult result = core::synthesize(g);
  const std::string dump = result.circuit.to_string();
  EXPECT_NE(dump.find("MHS"), std::string::npos);
  EXPECT_NE(dump.find("c_mhs"), std::string::npos);
  EXPECT_NE(dump.find("inputs: a b"), std::string::npos);
}

TEST(IntegrationTest, RoundTripBenchmarkThroughGFormat) {
  // Write a generated benchmark STG to .g, re-parse it, rebuild the SG:
  // the state space and the synthesized circuit statistics must agree.
  const std::string g_text = bench_suite::staged_cycle_g(
      "rt", {"a", "b"}, {"c", "d"}, {{"a+", "b+"}, {"c+", "d+"}, {"a-", "b-"}, {"c-", "d-"}});
  const stg::Stg first = stg::parse_g(g_text);
  const stg::Stg second = stg::parse_g(stg::write_g(first));
  const sg::StateGraph graph_a = stg::build_state_graph(first);
  const sg::StateGraph graph_b = stg::build_state_graph(second);
  ASSERT_EQ(graph_a.num_states(), graph_b.num_states());
  const core::SynthesisResult ra = core::synthesize(graph_a);
  const core::SynthesisResult rb = core::synthesize(graph_b);
  EXPECT_EQ(ra.stats.area, rb.stats.area);
  EXPECT_EQ(ra.stats.delay, rb.stats.delay);
}

TEST(IntegrationTest, LargeBenchmarkSynthesizesAndValidates) {
  // master-read (~2k states): the full pipeline at scale.
  const sg::StateGraph g = bench_suite::build_benchmark("master-read");
  const core::SynthesisResult result = core::synthesize(g);
  EXPECT_GT(result.stats.area, 0.0);
  sim::ConformanceOptions options;
  options.runs = 2;
  options.max_transitions = 150;
  const sim::ConformanceReport report = sim::check_conformance(g, result.circuit, options);
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  // The whole flow is deterministic: same input, same circuit.
  const sg::StateGraph g1 = bench_suite::build_benchmark("hazard");
  const sg::StateGraph g2 = bench_suite::build_benchmark("hazard");
  const core::SynthesisResult r1 = core::synthesize(g1);
  const core::SynthesisResult r2 = core::synthesize(g2);
  EXPECT_EQ(r1.circuit.to_string(), r2.circuit.to_string());
  EXPECT_EQ(r1.cover.to_string(), r2.cover.to_string());
}

TEST(IntegrationTest, DisablingDelayLinesIsVisibleInNetlist) {
  // Force a skewed Eq. 1 by synthesizing with delay lines disabled and
  // checking the option is honored (no kDelayLine gates at all).
  const sg::StateGraph g = bench_suite::build_benchmark("combuf1");
  core::SynthesisOptions options;
  options.insert_delay_lines = false;
  const core::SynthesisResult result = core::synthesize(g, options);
  for (const auto& gate : result.circuit.gates())
    EXPECT_NE(gate.type, gatelib::GateType::kDelayLine);
  EXPECT_FALSE(result.delay_compensation_used);
}

}  // namespace
}  // namespace nshot
