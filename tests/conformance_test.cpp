// The paper's headline claim, checked empirically: circuits produced by
// the N-SHOT flow are hazard-free at every observable non-input signal and
// conform to the state-graph specification, for arbitrary gate delays —
// even though the SOP core glitches internally.  Each benchmark runs under
// many independently sampled delay assignments (the pure delay model).
#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "bench_suite/benchmarks.hpp"
#include "bench_suite/generators.hpp"
#include "nshot/synthesis.hpp"
#include "sim/conformance.hpp"

namespace nshot {
namespace {

sim::ConformanceOptions standard_options(std::uint64_t seed = 42) {
  sim::ConformanceOptions options;
  options.seed = seed;
  options.runs = 8;
  options.max_transitions = 120;
  return options;
}

/// N-SHOT circuits: clean on every benchmark (distributive or not).
class NshotConformanceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(NshotConformanceTest, ExternallyHazardFreeUnderRandomDelays) {
  const sg::StateGraph g = bench_suite::build_benchmark(GetParam());
  const core::SynthesisResult result = core::synthesize(g);
  const sim::ConformanceReport report =
      sim::check_conformance(g, result.circuit, standard_options());
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_GT(report.external_transitions, 0);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, NshotConformanceTest,
                         ::testing::Values("chu133", "chu150", "chu172", "converta", "ebergen",
                                           "full", "hazard", "hybridf", "pe-send-ifc", "qr42",
                                           "vbe10b", "vbe5b", "wrdatab", "sbuf-send-ctl",
                                           "pr-rcv-ifc", "read-write", "pmcm1", "pmcm2",
                                           "combuf1", "combuf2", "sing2dual-inp",
                                           "sing2dual-out"));

/// Exact-minimization mode is equally hazard-free (Corollary 1: any
/// minimizer works, including ESPRESSO-exact).
class ExactConformanceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ExactConformanceTest, ExactCoversAreAlsoClean) {
  const sg::StateGraph g = bench_suite::build_benchmark(GetParam());
  core::SynthesisOptions options;
  options.exact = true;
  const core::SynthesisResult result = core::synthesize(g, options);
  const sim::ConformanceReport report =
      sim::check_conformance(g, result.circuit, standard_options(7));
  EXPECT_TRUE(report.clean()) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(SmallBenchmarks, ExactConformanceTest,
                         ::testing::Values("chu172", "full", "hazard", "pmcm2", "converta"));

TEST(ConformanceDetailTest, InternalNetsGlitchWhileOutputsStayClean) {
  // The architecture's whole point: the SOP core may be hazardous (extra
  // internal toggles) while observable signals see exactly the specified
  // transitions.  The OR cell's set function is a c̄(a + b)-style SOP whose
  // OR output rises twice when a and b arrive staggered.
  const sg::StateGraph cell = bench_suite::build_benchmark("pmcm1");
  const core::SynthesisResult result = core::synthesize(cell);
  sim::ConformanceOptions options = standard_options(3);
  options.runs = 12;
  const sim::ConformanceReport report = sim::check_conformance(cell, result.circuit, options);
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_GT(report.internal_toggles, 0);
}

TEST(ConformanceDetailTest, SynLikeMonotonousCoversAreAlsoClean) {
  // The C-element baseline is glitch-free by construction of its
  // monotonous covers; verify on a distributive benchmark.
  const sg::StateGraph g = bench_suite::build_benchmark("full");
  const auto outcome = baselines::synthesize_syn_like(g);
  ASSERT_TRUE(outcome.ok());
  const sim::ConformanceReport report =
      sim::check_conformance(g, outcome.result->circuit, standard_options(11));
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(ConformanceDetailTest, ViolationMachineryDetectsWrongCircuit) {
  // Sanity check that the monitor actually fails circuits that misbehave:
  // synthesize one benchmark and simulate it against a DIFFERENT spec.
  const sg::StateGraph right = bench_suite::build_benchmark("chu172");
  const core::SynthesisResult result = core::synthesize(right);
  // Same signal names, different protocol: c+/d+ before a+/b+.
  const sg::StateGraph wrong = bench_suite::build_g(bench_suite::staged_cycle_g(
      "wrong", {"a", "b"}, {"c", "d"},
      {{"c+", "d+"}, {"a+", "b+"}, {"c-", "d-"}, {"a-", "b-"}}));
  sim::ConformanceOptions options = standard_options(5);
  options.runs = 4;
  const sim::ConformanceReport report = sim::check_conformance(wrong, result.circuit, options);
  EXPECT_FALSE(report.clean());
}

TEST(ConformanceDetailTest, DeadlockIsReportedWhenCircuitStalls) {
  // A circuit whose output never fires (set input tied low through an
  // always-0 SOP) must be reported as a deadlock, not silently pass.
  const sg::StateGraph g = bench_suite::build_g(bench_suite::staged_cycle_g(
      "stall", {"x"}, {"y"}, {{"x+"}, {"y+"}, {"x-"}, {"y-"}}));
  // Hand-build a netlist where y's MHS never gets excited.
  netlist::Netlist nl("stall");
  const netlist::NetId x = nl.add_net("x");
  const netlist::NetId y = nl.add_net("y");
  const netlist::NetId yb = nl.add_net("y_b");
  const netlist::NetId c0 = nl.add_net("const0");
  const netlist::NetId c1 = nl.add_net("const1");
  nl.add_primary_input(x);
  nl.add_primary_input(c0);
  nl.add_primary_input(c1);
  nl.add_primary_output(y);
  nl.add_gate(netlist::Gate{.type = gatelib::GateType::kMhsFlipFlop,
                            .name = "y_mhs",
                            .inputs = {c0, c0, c1, c1},
                            .outputs = {y, yb}});
  sim::ConformanceOptions options = standard_options(9);
  options.runs = 1;
  const sim::ConformanceReport report = sim::check_conformance(g, nl, options);
  EXPECT_GT(report.deadlocks, 0);
}

TEST(ConformanceDetailTest, FundamentalModeEnvironmentIsAlsoClean) {
  // A circuit correct for an immediate environment is trivially correct
  // for a fundamental-mode one (a strict subset of behaviours).
  const sg::StateGraph g = bench_suite::build_benchmark("pmcm2");
  const core::SynthesisResult result = core::synthesize(g);
  sim::ConformanceOptions options = standard_options(21);
  options.fundamental_mode = true;
  const sim::ConformanceReport report = sim::check_conformance(g, result.circuit, options);
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_GT(report.external_transitions, 0);
}

TEST(ConformanceDetailTest, VcdTraceOfAClosedLoopRun) {
  const sg::StateGraph g = bench_suite::build_benchmark("chu172");
  const core::SynthesisResult result = core::synthesize(g);
  const sim::TracedRun traced = sim::record_vcd_trace(g, result.circuit, 5, 40);
  EXPECT_TRUE(traced.report.clean()) << traced.report.summary();
  EXPECT_EQ(traced.report.external_transitions, 40);
  EXPECT_NE(traced.vcd.find("$enddefinitions"), std::string::npos);
  // Every signal rail appears as a VCD variable.
  for (int x = 0; x < g.num_signals(); ++x)
    EXPECT_NE(traced.vcd.find(" " + g.signal(x).name + " $end"), std::string::npos);
  EXPECT_GT(traced.report.simulated_time, 0.0);
  EXPECT_GT(traced.report.time_per_transition(), 0.0);
}

/// Seed sweep on one non-trivial benchmark: many delay samples, long runs.
class SeedSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweepTest, ReadWriteStaysCleanAcrossSeeds) {
  static const sg::StateGraph g = bench_suite::build_benchmark("read-write");
  static const core::SynthesisResult result = core::synthesize(g);
  sim::ConformanceOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam()) * 7919;
  options.runs = 2;
  options.max_transitions = 200;
  const sim::ConformanceReport report = sim::check_conformance(g, result.circuit, options);
  EXPECT_TRUE(report.clean()) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace nshot
