#include "util/error.hpp"

#include <new>

namespace nshot {

namespace {

constexpr const char* kCodeNames[static_cast<int>(ErrorCode::kCount)] = {
    "input_invalid",     "unimplementable", "resource_exhausted",
    "deadline_exceeded", "kernel_mismatch", "internal",
};

}  // namespace

const char* error_code_name(ErrorCode code) {
  const int i = static_cast<int>(code);
  if (i < 0 || i >= static_cast<int>(ErrorCode::kCount)) return "internal";
  return kCodeNames[i];
}

ErrorCode error_code_from_name(const std::string& name) {
  for (int i = 0; i < static_cast<int>(ErrorCode::kCount); ++i)
    if (name == kCodeNames[i]) return static_cast<ErrorCode>(i);
  return ErrorCode::kInternal;
}

const char* Error::what() const noexcept {
  if (context_.empty()) return message_.c_str();
  if (rendered_.empty()) {
    try {
      // Outermost frame first: "batch run #3: synthesize soak-3: <message>".
      for (auto it = context_.rbegin(); it != context_.rend(); ++it)
        rendered_ += *it + ": ";
      rendered_ += message_;
    } catch (...) {
      return message_.c_str();  // allocation failure: degrade, never throw
    }
  }
  return rendered_.c_str();
}

void raise_error(const char* file, int line, const std::string& message) {
  raise_error(file, line, ErrorCode::kInputInvalid, message);
}

void raise_error(const char* file, int line, ErrorCode code, const std::string& message) {
  throw Error(code, std::string(file) + ":" + std::to_string(line) + ": " + message);
}

ErrorCode classify_exception(const std::exception& e) {
  if (const auto* err = dynamic_cast<const Error*>(&e)) return err->code();
  if (dynamic_cast<const std::bad_alloc*>(&e) != nullptr) return ErrorCode::kResourceExhausted;
  return ErrorCode::kInternal;
}

}  // namespace nshot
