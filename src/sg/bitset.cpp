#include "sg/bitset.hpp"

#include <algorithm>

namespace nshot::sg {

void StateSet::clear() { std::fill(words_.begin(), words_.end(), 0); }

StateSet& StateSet::operator&=(const StateSet& other) {
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  return *this;
}

StateSet& StateSet::operator|=(const StateSet& other) {
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  return *this;
}

StateSet& StateSet::subtract(const StateSet& other) {
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= ~other.words_[w];
  return *this;
}

void StateSet::complement() {
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] = ~words_[w];
  const std::size_t tail = universe_ & 63;
  if (!words_.empty() && tail != 0) words_.back() &= (1ULL << tail) - 1ULL;
}

std::size_t StateSet::count() const {
  std::size_t total = 0;
  for (const std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool StateSet::empty() const {
  for (const std::uint64_t w : words_)
    if (w) return false;
  return true;
}

bool StateSet::intersects(const StateSet& other) const {
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (words_[w] & other.words_[w]) return true;
  return false;
}

bool StateSet::contains_all(const StateSet& other) const {
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (other.words_[w] & ~words_[w]) return false;
  return true;
}

std::vector<StateId> StateSet::to_vector() const {
  std::vector<StateId> members;
  members.reserve(count());
  for_each([&members](StateId s) { members.push_back(s); });
  return members;
}

StateSet value_set(const StateGraph& sg, SignalId x) {
  StateSet plane(static_cast<std::size_t>(sg.num_states()));
  for (StateId s = 0; s < sg.num_states(); ++s)
    if (sg.value(s, x)) plane.insert(s);
  return plane;
}

StateSet excited_set(const StateGraph& sg, SignalId x) {
  StateSet plane(static_cast<std::size_t>(sg.num_states()));
  for (StateId s = 0; s < sg.num_states(); ++s)
    for (const Edge& e : sg.out_edges(s))
      if (e.label.signal == x) {
        plane.insert(s);
        break;
      }
  return plane;
}

std::vector<StateSet> all_excited_sets(const StateGraph& sg) {
  std::vector<StateSet> planes(static_cast<std::size_t>(sg.num_signals()),
                               StateSet(static_cast<std::size_t>(sg.num_states())));
  for (StateId s = 0; s < sg.num_states(); ++s)
    for (const Edge& e : sg.out_edges(s)) planes[static_cast<std::size_t>(e.label.signal)].insert(s);
  return planes;
}

}  // namespace nshot::sg
