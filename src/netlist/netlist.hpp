// Gate-level netlist: the output of all synthesizers and the input of the
// event-driven simulator and the area/delay reporters.
//
// Nets are named single-driver wires.  Gates reference nets by id; AND/OR
// gates carry per-input inversion bubbles.  The MHS flip-flop is a cell
// with two inputs (set, reset) and two outputs (q, qb — it is dual-rail
// encoded).  Delay lines carry an explicit delay.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gatelib/gate_library.hpp"

namespace nshot::netlist {

using NetId = int;
using GateId = int;

struct Gate {
  gatelib::GateType type = gatelib::GateType::kBuf;
  std::string name;
  std::vector<NetId> inputs;
  std::vector<bool> inverted;  // parallel to inputs; empty = no inversions
  std::vector<NetId> outputs;  // 1 for simple gates, {q, qb} for the MHS
  double explicit_delay = 0.0; // used by kDelayLine only
  /// Treat the outputs as level/path sources even for combinational types
  /// (used for the fed-back state wires of the SIS-like baseline).
  bool feedback_cut = false;

  bool input_inverted(std::size_t i) const { return !inverted.empty() && inverted[i]; }
};

/// Area/delay summary in the report model of the gate library.
struct NetlistStats {
  double area = 0.0;
  double delay = 0.0;  // worst signal response (level-quantized)
  int gate_count = 0;
  int literal_count = 0;  // total AND/OR input pins
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // --- construction -------------------------------------------------------
  NetId add_net(const std::string& name);
  GateId add_gate(Gate gate);
  void add_primary_input(NetId net);
  void add_primary_output(NetId net);

  /// Build an AND/OR tree for `inputs` honoring the library's max fanin;
  /// returns the output net.  Single-input trees degenerate to a direct
  /// connection (no gate inserted) unless `force_gate` is set.
  NetId build_tree(gatelib::GateType type, const std::vector<NetId>& inputs,
                   const std::vector<bool>& inverted, const std::string& name_prefix,
                   bool force_gate = false);

  // --- access -------------------------------------------------------------
  int num_nets() const { return static_cast<int>(net_names_.size()); }
  int num_gates() const { return static_cast<int>(gates_.size()); }
  const std::string& net_name(NetId n) const { return net_names_[static_cast<std::size_t>(n)]; }
  const Gate& gate(GateId g) const { return gates_[static_cast<std::size_t>(g)]; }
  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<NetId>& primary_inputs() const { return primary_inputs_; }
  const std::vector<NetId>& primary_outputs() const { return primary_outputs_; }
  std::optional<NetId> find_net(const std::string& name) const;
  /// The gate driving `net`, if any.
  std::optional<GateId> driver(NetId net) const;

  /// Throws if a net has multiple drivers or a gate reads an undriven,
  /// non-primary-input net.
  void check_well_formed() const;

  /// Area, level-quantized critical delay, and gate statistics.
  NetlistStats stats(const gatelib::GateLibrary& lib) const;

  /// Human-readable structural dump.
  std::string to_string() const;

 private:
  std::string name_;
  std::vector<std::string> net_names_;
  std::vector<Gate> gates_;
  std::vector<NetId> primary_inputs_;
  std::vector<NetId> primary_outputs_;
};

}  // namespace nshot::netlist
