file(REMOVE_RECURSE
  "CMakeFiles/random_controller_test.dir/random_controller_test.cpp.o"
  "CMakeFiles/random_controller_test.dir/random_controller_test.cpp.o.d"
  "random_controller_test"
  "random_controller_test.pdb"
  "random_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
