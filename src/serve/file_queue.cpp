#include "serve/file_queue.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "nshot/journal.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace nshot::serve {

namespace fs = std::filesystem;

namespace {

const std::string kRequestSuffix = ".req.json";
const std::string kClaimSuffix = ".req.json.claimed";

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string read_file(const fs::path& path) {
  std::ifstream stream(path);
  std::stringstream buffer;
  buffer << stream.rdbuf();
  return buffer.str();
}

/// First line of the file (a request is one NDJSON object; tolerate a
/// trailing newline or accidental extra blank lines).
std::string first_line(const std::string& text) {
  const std::size_t eol = text.find('\n');
  return eol == std::string::npos ? text : text.substr(0, eol);
}

void write_atomic(const fs::path& path, const std::string& body) {
  const fs::path tmp = fs::path(path.string() + ".tmp");
  {
    std::ofstream out(tmp);
    out << body << "\n";
  }
  fs::rename(tmp, path);
}

/// Response document for a request answered from the journal: carries the
/// terminal verdict plus "resumed":true, with no timing (nothing ran).
std::string resumed_response_json(const BatchRunResult& record) {
  JsonWriter json;
  json.begin_object();
  json.key("id").value(record.id);
  json.key("ok").value(record.ok);
  json.key("resumed").value(true);
  if (!record.ok) {
    json.key("error").begin_object();
    json.key("code").value(error_code_name(record.code));
    json.key("stage").value(record.stage);
    json.key("message").value(record.message);
    json.end_object();
  }
  json.key("elapsed_ms").value(0.0);
  json.key("attempts").value(0);
  json.end_object();
  return json.str();
}

bool drain_eviction(const Response& response) {
  return response.outcome.stage == "admission" &&
         starts_with(response.outcome.message, "draining");
}

}  // namespace

FileQueueWorker::FileQueueWorker(FileQueueOptions options, Server& server)
    : options_(std::move(options)), server_(server) {
  NSHOT_REQUIRE(fs::is_directory(options_.dir),
                "file-queue directory " + options_.dir + " does not exist");
  // A claim left behind by a killed worker is a request that never got a
  // response: give it back to the queue (the journal still short-circuits
  // anything that did finish).
  for (const auto& entry : fs::directory_iterator(options_.dir)) {
    const std::string name = entry.path().string();
    if (!ends_with(name, kClaimSuffix)) continue;
    fs::rename(entry.path(), name.substr(0, name.size() - 8));  // strip ".claimed"
  }
}

void FileQueueWorker::dispatch(const std::string& request_path) {
  const fs::path claim(request_path + ".claimed");
  {
    std::error_code ec;
    fs::rename(request_path, claim, ec);
    if (ec) return;  // raced with another worker (or the file vanished)
  }
  const std::string stem =
      request_path.substr(0, request_path.size() - kRequestSuffix.size());
  const fs::path response_path(stem + ".resp.json");

  WireRequest wire;
  try {
    wire = parse_request(first_line(read_file(claim)));
  } catch (const std::exception& e) {
    const std::string id = fs::path(stem).filename().string();
    write_atomic(response_path, rejection(id, ErrorCode::kInputInvalid, e.what()).to_json());
    fs::remove(claim);
    return;
  }

  const std::string journaled = server_.journaled(wire.request.id);
  if (!journaled.empty()) {
    server_.count_resumed();
    write_atomic(response_path, resumed_response_json(journal_result(wire.request.id, journaled)));
    fs::remove(claim);
    return;
  }

  server_.enqueue(wire, [claim, request_path, response_path](const Response& response) {
    // Completion callback — runs on a worker (or the admission) thread.
    // Must not throw; filesystem failures here would otherwise tear down
    // the pool.
    std::error_code ec;
    if (drain_eviction(response)) {
      // Never ran: put the request back for the next incarnation.
      fs::rename(claim, request_path, ec);
      return;
    }
    try {
      write_atomic(response_path, response.to_json());
    } catch (const std::exception&) {
      return;  // leave the claim as the breadcrumb
    }
    fs::remove(claim, ec);
  });
}

int FileQueueWorker::scan_once() {
  std::vector<std::string> pending;
  for (const auto& entry : fs::directory_iterator(options_.dir)) {
    const std::string name = entry.path().string();
    if (ends_with(name, kRequestSuffix)) pending.push_back(name);
  }
  std::sort(pending.begin(), pending.end());
  for (const std::string& path : pending) dispatch(path);
  return static_cast<int>(pending.size());
}

void FileQueueWorker::run(const std::atomic<bool>& stop) {
  int idle = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    if (scan_once() > 0) {
      idle = 0;
      continue;
    }
    ++idle;
    if (options_.idle_exit_scans > 0 && idle >= options_.idle_exit_scans &&
        server_.stats().inflight == 0 && server_.stats().queued == 0)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(options_.poll_ms));
  }
  server_.drain();
}

}  // namespace nshot::serve
