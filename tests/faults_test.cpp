// The fault-injection and adversarial delay-stress subsystem, checked on
// the paper's own benchmarks: injected faults must surface as structured
// conformance violations (Theorem 1's ω filtering decides which glitches
// are absorbed), margins must be measurable, and a failing scenario must
// minimize to its load-bearing core.
#include <gtest/gtest.h>

#include "bench_suite/benchmarks.hpp"
#include "faults/adversarial.hpp"
#include "faults/fault_model.hpp"
#include "faults/margins.hpp"
#include "faults/minimize.hpp"
#include "faults/stress.hpp"
#include "nshot/synthesis.hpp"
#include "sim/conformance.hpp"

namespace nshot {
namespace {

using faults::Fault;
using faults::FaultKind;
using faults::FaultScenario;
using faults::ScenarioOptions;

struct Synthesized {
  sg::StateGraph graph;
  netlist::Netlist circuit;
};

Synthesized synthesize(const std::string& name) {
  sg::StateGraph g = bench_suite::build_benchmark(name);
  core::SynthesisResult result = core::synthesize(g);
  return {std::move(g), std::move(result.circuit)};
}

/// First MHS flip-flop of the circuit (set, reset, enable_set,
/// enable_reset input nets; q output).
const netlist::Gate& first_mhs(const netlist::Netlist& circuit) {
  for (netlist::GateId g = 0; g < circuit.num_gates(); ++g)
    if (circuit.gate(g).type == gatelib::GateType::kMhsFlipFlop) return circuit.gate(g);
  throw Error("no MHS flip-flop in circuit");
}

/// Options that keep the environment quiet until well after the injection
/// window, so a glitch at small t meets a deterministic circuit state.  In
/// chu133 the outputs autonomously rise at t = 2.4 (they are excited in the
/// initial state) and the circuit is quiescent again by t = 3, so t = 5 is a
/// settled instant with q high; the tiny transition budget ends the run
/// before the delayed environment can blur the margin statistics.
ScenarioOptions quiet_env() {
  ScenarioOptions options;
  options.input_delay_min = 20.0;
  options.input_delay_max = 30.0;
  options.max_transitions = 3;
  return options;
}

bool has_kind(const sim::ConformanceReport& report, sim::ViolationKind kind) {
  for (const auto& v : report.violations)
    if (v.kind == kind) return true;
  return false;
}

TEST(FaultModelTest, StuckAtOnAcknowledgementRailDeadlocks) {
  // Pinning enable_set (the qb acknowledgement rail) low starves the MHS
  // flip-flop's effective set excitation: the circuit goes quiescent while
  // the spec still enables the output's rise — a detected deadlock.
  const Synthesized s = synthesize("chu133");
  FaultScenario scenario;
  scenario.faults.push_back(
      Fault{.kind = FaultKind::kStuckAt, .net = first_mhs(s.circuit).inputs[2], .value = false});
  const sim::ConformanceReport report =
      faults::run_scenario(s.graph, s.circuit, scenario, ScenarioOptions{});
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_kind(report, sim::ViolationKind::kDeadlock)) << report.summary();
}

TEST(FaultModelTest, StuckAtOnPrimaryInputDeadlocks) {
  // A primary input pinned at its initial value can never hand the
  // environment's transition to the circuit; the closed loop must report
  // the stall instead of spinning or passing.
  const Synthesized s = synthesize("chu133");
  const auto net = s.circuit.find_net("a");
  ASSERT_TRUE(net.has_value());
  FaultScenario scenario;
  scenario.faults.push_back(Fault{.kind = FaultKind::kStuckAt, .net = *net, .value = false});
  const sim::ConformanceReport report =
      faults::run_scenario(s.graph, s.circuit, scenario, ScenarioOptions{});
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_kind(report, sim::ViolationKind::kDeadlock)) << report.summary();
}

TEST(FaultModelTest, SubThresholdGlitchIsAbsorbedSuperThresholdFires) {
  // Theorem 1 at the boundary: once q is high a pulse of width ω − ε on
  // the reset SOP net is filtered by the MHS master stage (run stays
  // clean, absorption is counted); ω + ε fires the flip-flop in a state
  // where the spec does not enable c− — an external hazard.  (The set SOP
  // is unusable here: it is already high in the initial state.)
  const Synthesized s = synthesize("chu133");
  const double omega = gatelib::GateLibrary::standard().mhs_threshold();
  const netlist::NetId sop = first_mhs(s.circuit).inputs[1];

  FaultScenario absorbed;
  absorbed.faults.push_back(Fault{
      .kind = FaultKind::kGlitch, .net = sop, .value = true, .time = 5.0, .width = omega - 0.05});
  const sim::ConformanceReport clean_run =
      faults::run_scenario(s.graph, s.circuit, absorbed, quiet_env());
  EXPECT_TRUE(clean_run.clean()) << clean_run.summary();
  EXPECT_GT(clean_run.absorbed_pulses, 0);

  FaultScenario fired;
  fired.faults.push_back(Fault{
      .kind = FaultKind::kGlitch, .net = sop, .value = true, .time = 5.0, .width = omega + 0.05});
  const sim::ConformanceReport hazard_run =
      faults::run_scenario(s.graph, s.circuit, fired, quiet_env());
  EXPECT_FALSE(hazard_run.clean());
  EXPECT_TRUE(has_kind(hazard_run, sim::ViolationKind::kHazard)) << hazard_run.summary();
}

TEST(FaultModelTest, EventBudgetSurfacesAsStructuredViolation) {
  // A pathologically small budget converts the run into a kEventBudget
  // violation instead of an unbounded simulation.
  const Synthesized s = synthesize("chu133");
  ScenarioOptions options;
  options.max_events = 40;
  const sim::ConformanceReport report =
      faults::run_scenario(s.graph, s.circuit, FaultScenario{}, options);
  EXPECT_TRUE(has_kind(report, sim::ViolationKind::kEventBudget)) << report.summary();
  EXPECT_GT(report.budget_exhausted, 0);
}

TEST(MarginTest, CleanRunsHavePositiveMargins) {
  const Synthesized s = synthesize("chu172");
  const faults::ProbedRun run =
      faults::run_probed(s.graph, s.circuit, FaultScenario{}, ScenarioOptions{});
  EXPECT_TRUE(run.report.clean()) << run.report.summary();
  ASSERT_FALSE(run.omega.empty());
  ASSERT_FALSE(run.eq1.empty());
  long fired = 0;
  for (const faults::OmegaStats& stats : run.omega) fired += stats.fired;
  EXPECT_GT(fired, 0);  // every observable transition is a fired excitation
  for (const faults::Eq1Margin& m : run.eq1) EXPECT_GT(m.slack(), 0.0) << m.signal;
  EXPECT_GT(run.min_slack, 0.0);
}

TEST(MarginTest, ProbeSeesAbsorbedPulseWithItsSlack) {
  // Inject ω − ε: the probe must classify exactly that pulse as absorbed
  // with absorption slack ε.
  const Synthesized s = synthesize("chu133");
  const double omega = gatelib::GateLibrary::standard().mhs_threshold();
  FaultScenario scenario;
  scenario.faults.push_back(Fault{.kind = FaultKind::kGlitch,
                                  .net = first_mhs(s.circuit).inputs[1],
                                  .value = true,
                                  .time = 5.0,
                                  .width = omega - 0.05});
  const faults::ProbedRun run = faults::run_probed(s.graph, s.circuit, scenario, quiet_env());
  long absorbed = 0;
  double min_absorb = faults::kNoMargin;
  for (const faults::OmegaStats& stats : run.omega) {
    absorbed += stats.absorbed;
    min_absorb = std::min(min_absorb, stats.min_absorb_slack);
  }
  EXPECT_GT(absorbed, 0);
  EXPECT_NEAR(min_absorb, 0.05, 1e-9);
}

TEST(MarginTest, DeepenedSetPathIsUnderCompensated) {
  // The synthesized benchmark satisfies Eq. 1 outright (no delay line
  // needed); adding set-SOP depth without compensation must flip the
  // corner-case requirement check.
  const Synthesized s = synthesize("converta");
  const gatelib::GateLibrary& lib = gatelib::GateLibrary::standard();
  for (const faults::Eq1Requirement& req : faults::eq1_requirements(s.circuit, lib))
    EXPECT_FALSE(req.under_compensated()) << req.signal;

  const std::string target = s.graph.signal(s.graph.noninput_signals().front()).name;
  const netlist::Netlist deepened = faults::deepen_set_path(s.circuit, target, 1);
  bool flagged = false;
  for (const faults::Eq1Requirement& req : faults::eq1_requirements(deepened, lib))
    if (req.signal == target) flagged = req.under_compensated();
  EXPECT_TRUE(flagged);
}

TEST(AdversarialTest, FindsTrespassUniformMonteCarloMisses) {
  // The acceptance demo in miniature: deepen converta's first output by
  // one buffer level (Eq. 1 then requires t_del > 0; none installed).
  // Uniform Monte Carlo over the library delay box stays clean while the
  // slack-guided search walks into the hazardous corner.
  const Synthesized s = synthesize("converta");
  const std::string target = s.graph.signal(s.graph.noninput_signals().front()).name;
  const netlist::Netlist uncomp =
      faults::strip_delay_compensation(faults::deepen_set_path(s.circuit, target, 1));

  faults::AdversarialOptions options;  // stress factor 1: plain library box
  const faults::MonteCarloResult mc =
      faults::stressed_monte_carlo(s.graph, uncomp, 20, options);
  EXPECT_EQ(mc.violating_runs, 0);

  const faults::AdversarialResult adv =
      faults::adversarial_delay_search(s.graph, uncomp, options);
  EXPECT_TRUE(adv.violation_found);
  EXPECT_LT(adv.best_slack, 0.0);
  ASSERT_FALSE(adv.report.violations.empty());
  EXPECT_EQ(adv.report.violations.front().kind, sim::ViolationKind::kHazard);
}

TEST(MinimizeTest, ShrinksMultiFaultFailureToSingleFaultWitness) {
  // Two injected faults, only one load-bearing: a benign sub-threshold
  // glitch plus the acknowledgement stuck-at that actually kills the run.
  // Delta debugging must drop the glitch and keep the stuck-at.
  const Synthesized s = synthesize("chu133");
  const netlist::Gate& mhs = first_mhs(s.circuit);
  FaultScenario scenario;
  scenario.faults.push_back(Fault{
      .kind = FaultKind::kGlitch, .net = mhs.inputs[0], .value = true, .time = 1.0, .width = 0.2});
  scenario.faults.push_back(
      Fault{.kind = FaultKind::kStuckAt, .net = mhs.inputs[2], .value = false});

  const faults::MinimizedWitness witness =
      faults::minimize_counterexample(s.graph, s.circuit, scenario);
  EXPECT_TRUE(witness.reproduced);
  EXPECT_EQ(witness.faults_removed, 1);
  ASSERT_EQ(witness.scenario.faults.size(), 1u);
  EXPECT_EQ(witness.scenario.faults[0].kind, FaultKind::kStuckAt);
  EXPECT_FALSE(witness.report.clean());
  EXPECT_NE(witness.vcd.find("$enddefinitions"), std::string::npos);

  const std::string json = faults::witness_json(witness, s.circuit);
  EXPECT_NE(json.find("\"stuck-at\""), std::string::npos);
  EXPECT_NE(json.find("\"reproduced\":true"), std::string::npos);
}

TEST(MinimizeTest, PassingScenarioIsReportedNotMinimized) {
  const Synthesized s = synthesize("chu172");
  const faults::MinimizedWitness witness =
      faults::minimize_counterexample(s.graph, s.circuit, FaultScenario{});
  EXPECT_FALSE(witness.reproduced);
  EXPECT_TRUE(witness.report.clean());
  EXPECT_EQ(witness.faults_removed, 0);
}

TEST(StressTest, ReportCoversEverySignalAndSerializes) {
  const Synthesized s = synthesize("chu172");
  faults::StressOptions options;
  options.margin_runs = 2;
  options.run.max_transitions = 60;
  options.adversarial.restarts = 0;  // battery + margins only
  const faults::StressReport report =
      faults::run_stress(s.graph, s.circuit, "chu172", options);

  EXPECT_TRUE(report.baseline_clean);
  EXPECT_EQ(report.signals.size(), s.graph.noninput_signals().size());
  EXPECT_FALSE(report.outcomes.empty());
  EXPECT_GT(report.min_eq1_slack, 0.0);
  int detected = 0;
  for (const faults::FaultOutcome& outcome : report.outcomes)
    if (!outcome.survived) ++detected;
  EXPECT_GT(detected, 0);  // stuck-at enables etc. must be caught

  const std::string json = faults::stress_report_json(report);
  EXPECT_NE(json.find("\"benchmark\":\"chu172\""), std::string::npos);
  EXPECT_NE(json.find("\"signals\":["), std::string::npos);
  EXPECT_NE(json.find("\"min_eq1_slack\""), std::string::npos);
  EXPECT_EQ(json.find("\"adversarial\":{"), std::string::npos);  // skipped -> null
}

}  // namespace
}  // namespace nshot
