#include "stg/reachability.hpp"

#include <deque>
#include <map>
#include <unordered_map>

#include "exec/cancel.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace nshot::stg {
namespace {

using Marking = std::vector<std::uint64_t>;  // bit-packed place marking

/// FNV/splitmix-style mix over the packed marking words.
struct MarkingHash {
  std::size_t operator()(const Marking& m) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const std::uint64_t word : m) {
      h = (h ^ word) * 0x100000001b3ULL;
      h ^= h >> 29;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Ordered reference map and hashed hot-path map over markings.  Every
/// traversal below is queue-driven (maps are only consulted for
/// membership and id lookup), so the two instantiations are
/// output-identical; `ReachabilityOptions::reference_maps` picks one.
template <typename Value>
using OrderedMarkingMap = std::map<Marking, Value>;
template <typename Value>
using HashedMarkingMap = std::unordered_map<Marking, Value, MarkingHash>;

Marking pack(const std::vector<bool>& marking) {
  Marking packed((marking.size() + 63) / 64, 0);
  for (std::size_t i = 0; i < marking.size(); ++i)
    if (marking[i]) packed[i / 64] |= (1ULL << (i % 64));
  return packed;
}

bool has_token(const Marking& m, PlaceId p) {
  return (m[static_cast<std::size_t>(p) / 64] >> (static_cast<std::size_t>(p) % 64)) & 1ULL;
}

void set_token(Marking& m, PlaceId p, bool value) {
  const std::uint64_t bit = 1ULL << (static_cast<std::size_t>(p) % 64);
  if (value)
    m[static_cast<std::size_t>(p) / 64] |= bit;
  else
    m[static_cast<std::size_t>(p) / 64] &= ~bit;
}

bool transition_enabled(const Stg& stg, const Marking& m, TransitionId t) {
  for (const PlaceId p : stg.preset(t))
    if (!has_token(m, p)) return false;
  return !stg.preset(t).empty();
}

/// Fire `t`; throws if the result is not 1-safe.
Marking fire(const Stg& stg, const Marking& m, TransitionId t) {
  Marking next = m;
  for (const PlaceId p : stg.preset(t)) set_token(next, p, false);
  for (const PlaceId p : stg.postset(t)) {
    NSHOT_REQUIRE(!has_token(next, p), "STG " + stg.name() + " is not 1-safe: firing " +
                                           stg.transition_name(t) + " double-marks place " +
                                           stg.place_name(p));
    set_token(next, p, true);
  }
  return next;
}

/// Unambiguous name for the place-loop firing, callable from the policy
/// classes' own `fire` members without self-lookup.
inline Marking fire_via_loop(const Stg& stg, const Marking& m, TransitionId t) {
  return fire(stg, m, t);
}

/// Place-at-a-time firing — the original implementation, kept as the
/// reference kernel (ReachabilityOptions::reference_maps).
struct LoopFiring {
  explicit LoopFiring(const Stg&) {}
  bool enabled(const Stg& stg, const Marking& m, TransitionId t) const {
    return transition_enabled(stg, m, t);
  }
  Marking fire(const Stg& stg, const Marking& m, TransitionId t) const {
    return fire_via_loop(stg, m, t);
  }
};

/// Mask-compiled firing: per transition, the preset and postset packed as
/// word masks over the marking words, compiled once per traversal.
/// Enabledness is `(m & preset) == preset`; firing is clear-preset /
/// check-postset-overlap / set-postset, one word op per marking word.  On a
/// 1-safety violation (postset overlap after clearing the preset) the
/// kernel re-fires through the place loop so the diagnostic names the same
/// transition and place as the reference.
class MaskFiring {
 public:
  explicit MaskFiring(const Stg& stg) {
    const std::size_t words = (static_cast<std::size_t>(stg.num_places()) + 63) / 64;
    const std::size_t nt = static_cast<std::size_t>(stg.num_transitions());
    preset_.assign(nt, Marking(words, 0));
    postset_.assign(nt, Marking(words, 0));
    has_preset_.assign(nt, false);
    degenerate_.assign(nt, false);
    for (TransitionId t = 0; t < stg.num_transitions(); ++t) {
      const std::size_t ti = static_cast<std::size_t>(t);
      for (const PlaceId p : stg.preset(t)) set_token(preset_[ti], p, true);
      for (const PlaceId p : stg.postset(t)) {
        // A duplicate postset arc double-marks its place on every firing;
        // masks cannot express the duplicate, so route such transitions
        // through the place loop for the identical diagnostic.
        if (has_token(postset_[ti], p)) degenerate_[ti] = true;
        set_token(postset_[ti], p, true);
      }
      has_preset_[ti] = !stg.preset(t).empty();
    }
  }

  bool enabled(const Stg&, const Marking& m, TransitionId t) const {
    const std::size_t ti = static_cast<std::size_t>(t);
    if (!has_preset_[ti]) return false;
    const Marking& pre = preset_[ti];
    for (std::size_t w = 0; w < pre.size(); ++w)
      if ((m[w] & pre[w]) != pre[w]) return false;
    return true;
  }

  Marking fire(const Stg& stg, const Marking& m, TransitionId t) const {
    const std::size_t ti = static_cast<std::size_t>(t);
    if (degenerate_[ti]) return fire_via_loop(stg, m, t);
    const Marking& pre = preset_[ti];
    const Marking& post = postset_[ti];
    Marking next = m;
    for (std::size_t w = 0; w < next.size(); ++w) {
      next[w] &= ~pre[w];
      if (next[w] & post[w]) return fire_via_loop(stg, m, t);  // 1-safety diagnostic
      next[w] |= post[w];
    }
    return next;
  }

 private:
  std::vector<Marking> preset_, postset_;
  std::vector<bool> has_preset_, degenerate_;
};

/// Eagerly fire every enabled dummy transition until quiescence.  The
/// closure over all firing orders must converge on a single
/// dummy-quiescent marking (confusion-free dummies); anything else is
/// rejected, as is a cycle of dummies.
template <template <typename> class MapT, typename Firing>
Marking saturate_dummies(const Stg& stg, const Firing& firing, Marking m) {
  if (!stg.has_dummies()) return m;
  MapT<bool> seen;
  std::deque<Marking> queue;
  std::vector<Marking> quiescent;
  seen.emplace(m, true);
  queue.push_back(std::move(m));
  while (!queue.empty()) {
    const Marking current = queue.front();
    queue.pop_front();
    bool any = false;
    for (TransitionId t = 0; t < stg.num_transitions(); ++t) {
      if (!stg.transition(t).is_dummy() || !firing.enabled(stg, current, t)) continue;
      any = true;
      Marking next = firing.fire(stg, current, t);
      if (seen.emplace(next, true).second) queue.push_back(std::move(next));
    }
    if (!any) quiescent.push_back(current);
    NSHOT_REQUIRE_CODE(seen.size() < 10000, ErrorCode::kResourceExhausted,
                       "STG " + stg.name() + " has a diverging dummy-transition closure");
  }
  NSHOT_REQUIRE(quiescent.size() == 1,
                "STG " + stg.name() + " has non-confluent (or cyclic) dummy transitions");
  return quiescent.front();
}

template <template <typename> class MapT, typename Firing>
std::vector<bool> infer_initial_values_impl(const Stg& stg, const ReachabilityOptions& options) {
  const Firing firing(stg);
  const int n = stg.num_signals();
  std::vector<std::optional<bool>> values = stg.declared_initial_values();
  int unresolved = 0;
  for (const auto& v : values)
    if (!v) ++unresolved;

  if (unresolved > 0) {
    // BFS over markings; the first edge labelled with signal x (popping
    // markings in BFS order) is a first firing of x on some path, so its
    // polarity determines the initial value.
    MapT<bool> seen;
    std::deque<Marking> queue;
    const Marking initial = pack(stg.initial_marking());
    seen.emplace(initial, true);
    queue.push_back(initial);
    while (!queue.empty() && unresolved > 0) {
      exec::checkpoint();
      NSHOT_REQUIRE_CODE(seen.size() <= options.max_states, ErrorCode::kResourceExhausted,
                         "STG " + stg.name() + " exceeds the reachability state cap");
      const Marking m = queue.front();
      queue.pop_front();
      for (TransitionId t = 0; t < stg.num_transitions(); ++t) {
        if (!firing.enabled(stg, m, t)) continue;
        const StgTransition& tr = stg.transition(t);
        if (!tr.is_dummy()) {
          auto& value = values[static_cast<std::size_t>(tr.signal)];
          if (!value) {
            value = !tr.rising;  // fires +x first => x starts at 0
            --unresolved;
          }
        }
        Marking next = firing.fire(stg, m, t);
        const auto [it, inserted] = seen.emplace(std::move(next), true);
        if (inserted) queue.push_back(it->first);
      }
    }
  }

  std::vector<bool> result(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    NSHOT_REQUIRE(values[static_cast<std::size_t>(i)].has_value(),
                  "signal " + stg.signal(i).name +
                      " never fires; declare its initial value with .init");
    result[static_cast<std::size_t>(i)] = *values[static_cast<std::size_t>(i)];
  }
  return result;
}

template <template <typename> class MapT, typename Firing>
std::vector<TransitionId> dead_transitions_impl(const Stg& stg,
                                                const ReachabilityOptions& options) {
  const Firing firing(stg);
  std::vector<bool> fired(static_cast<std::size_t>(stg.num_transitions()), false);
  MapT<bool> seen;
  std::deque<Marking> queue;
  const Marking initial = pack(stg.initial_marking());
  seen.emplace(initial, true);
  queue.push_back(initial);
  while (!queue.empty()) {
    exec::checkpoint();
    NSHOT_REQUIRE_CODE(seen.size() <= options.max_states, ErrorCode::kResourceExhausted,
                       "STG " + stg.name() + " exceeds the reachability state cap");
    const Marking m = queue.front();
    queue.pop_front();
    for (TransitionId t = 0; t < stg.num_transitions(); ++t) {
      if (!firing.enabled(stg, m, t)) continue;
      fired[static_cast<std::size_t>(t)] = true;
      Marking next = firing.fire(stg, m, t);
      const auto [it, inserted] = seen.emplace(std::move(next), true);
      if (inserted) queue.push_back(it->first);
    }
  }
  std::vector<TransitionId> dead;
  for (TransitionId t = 0; t < stg.num_transitions(); ++t)
    if (!fired[static_cast<std::size_t>(t)]) dead.push_back(t);
  return dead;
}

template <template <typename> class MapT, typename Firing>
sg::StateGraph build_state_graph_impl(const Stg& stg, const ReachabilityOptions& options) {
  const obs::Span reach_span("reachability");
  const Firing firing(stg);
  const std::vector<bool> initial_values = infer_initial_values_impl<MapT, Firing>(stg, options);

  sg::StateGraph graph(stg.name());
  for (int i = 0; i < stg.num_signals(); ++i) {
    const SignalKind kind = stg.signal(i).kind;
    graph.add_signal(stg.signal(i).name, kind == SignalKind::kInput
                                             ? sg::SignalKind::kInput
                                             : sg::SignalKind::kNonInput);
  }

  std::uint64_t initial_code = 0;
  for (std::size_t i = 0; i < initial_values.size(); ++i)
    if (initial_values[i]) initial_code |= (1ULL << i);

  MapT<sg::StateId> ids;
  std::deque<Marking> queue;
  const Marking initial = saturate_dummies<MapT>(stg, firing, pack(stg.initial_marking()));
  ids.emplace(initial, graph.add_state(initial_code));
  graph.set_initial(0);
  queue.push_back(initial);

  while (!queue.empty()) {
    exec::checkpoint();
    const Marking m = queue.front();
    queue.pop_front();
    const sg::StateId from = ids.at(m);
    const std::uint64_t code = graph.code(from);

    for (TransitionId t = 0; t < stg.num_transitions(); ++t) {
      if (!firing.enabled(stg, m, t)) continue;
      const StgTransition& tr = stg.transition(t);
      if (tr.is_dummy()) continue;  // eliminated by eager saturation below
      const std::uint64_t bit = 1ULL << tr.signal;
      NSHOT_REQUIRE(((code & bit) != 0) != tr.rising,
                    "STG " + stg.name() + " is inconsistent: " + stg.transition_name(t) +
                        " fires when " + stg.signal(tr.signal).name + " is already " +
                        (tr.rising ? "1" : "0"));
      const std::uint64_t next_code = tr.rising ? (code | bit) : (code & ~bit);

      Marking next = saturate_dummies<MapT>(stg, firing, firing.fire(stg, m, t));
      const auto [it, inserted] = ids.emplace(std::move(next), -1);
      if (inserted) {
        NSHOT_REQUIRE_CODE(ids.size() <= options.max_states, ErrorCode::kResourceExhausted,
                           "STG " + stg.name() + " exceeds the reachability state cap");
        it->second = graph.add_state(next_code);
        queue.push_back(it->first);
      } else {
        NSHOT_REQUIRE(graph.code(it->second) == next_code,
                      "STG " + stg.name() +
                          " is inconsistent: one marking is reached with two different codes");
      }

      const sg::TransitionLabel label{tr.signal, tr.rising};
      const auto existing = graph.successor(from, label);
      if (existing) {
        NSHOT_REQUIRE(*existing == it->second,
                      "STG " + stg.name() + " maps label " + stg.transition_name(t) +
                          " to two successors of one state (not SG-deterministic)");
      } else {
        graph.add_edge(from, label, it->second);
      }
    }
  }
  obs::count(obs::Counter::kStatesVisited, graph.num_states());
  return graph;
}

}  // namespace

std::vector<bool> infer_initial_values(const Stg& stg, const ReachabilityOptions& options) {
  return options.reference_maps
             ? infer_initial_values_impl<OrderedMarkingMap, LoopFiring>(stg, options)
             : infer_initial_values_impl<HashedMarkingMap, MaskFiring>(stg, options);
}

std::vector<TransitionId> dead_transitions(const Stg& stg, const ReachabilityOptions& options) {
  return options.reference_maps
             ? dead_transitions_impl<OrderedMarkingMap, LoopFiring>(stg, options)
             : dead_transitions_impl<HashedMarkingMap, MaskFiring>(stg, options);
}

sg::StateGraph build_state_graph(const Stg& stg, const ReachabilityOptions& options) {
  return options.reference_maps
             ? build_state_graph_impl<OrderedMarkingMap, LoopFiring>(stg, options)
             : build_state_graph_impl<HashedMarkingMap, MaskFiring>(stg, options);
}

}  // namespace nshot::stg
