// assassin_cli — an end-to-end command-line driver mirroring the ASSASSIN
// compiler flow the paper automates [21]:
//
//   assassin_cli <file.g|file.sg>  synthesize an STG (.g) or state graph (.sg)
//   assassin_cli --benchmark NAME  synthesize a built-in Table 2 benchmark
//   assassin_cli --list            list the built-in benchmarks
//
// Every option lives in kFlags below — one table row carries the name, the
// value placeholder, the help line and the handler, and --help is generated
// from the same table, so the parser and its documentation cannot drift.
#include <atomic>
#include <chrono>
#include <climits>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "baselines/baselines.hpp"
#include "bench_suite/benchmarks.hpp"
#include "csc/csc_solver.hpp"
#include "exec/thread_pool.hpp"
#include "faults/stress.hpp"
#include "logic/pla.hpp"
#include "netlist/verilog.hpp"
#include "nshot/batch.hpp"
#include "nshot/synthesis.hpp"
#include "serve/file_queue.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"
#include "obs/obs.hpp"
#include "sg/dot.hpp"
#include "sg/properties.hpp"
#include "sg/regions.hpp"
#include "sim/conformance.hpp"
#include "stg/g_format.hpp"
#include "stg/reachability.hpp"
#include "stg/sg_format.hpp"
#include "util/strings.hpp"

namespace {

using namespace nshot;

struct Cli {
  std::string input_file, benchmark, dot_signal, vcd_file;
  bool list = false, exact = false, no_share = false, solve_csc = false;
  bool print_netlist = false, print_pla = false, print_regions = false, run_baselines = false;
  bool print_verilog = false, print_dot = false;
  bool stress = false, stress_uncomp = false;
  int check_runs = 8, stress_runs = 5, stress_deepen = 2, jobs = 0;
  double stress_factor = 0.0;  // 0 = per-mode default (3.0 battery, 1.0 demo)
  std::string stress_out, stress_vcd = "stress_witness.vcd";
  std::string trace_file, report_file;
  bool trace_deterministic = false;
  // Batch / soak execution (nshot::BatchRunner).
  std::string batch_file, batch_journal, batch_summary, soak_params;
  int soak = 0, batch_retries = 1, batch_stop_after = 0;
  std::uint64_t soak_seed = 1;
  double deadline_ms = 0, stage_deadline_ms = 0;
  bool verify_kernels = false, inject_kernel_fault = false;
  // Serve mode (src/serve): socket or file-queue transport over a Server.
  std::string serve_socket, serve_dir, serve_journal, connect_path;
  int serve_max_inflight = 0, serve_queue = 256, serve_per_client = 2, serve_idle_exit = 0;
};

/// One command-line option: `metavar == nullptr` means a boolean flag, any
/// other value means the flag consumes the next argv entry (shown as the
/// placeholder in --help).  Handlers are capture-free lambdas so the table
/// is a plain static array.
struct FlagSpec {
  const char* name;
  const char* metavar;
  const char* help;
  void (*handler)(Cli&, const char*);
};

constexpr FlagSpec kFlags[] = {
    {"--list", nullptr, "list the built-in Table 2 benchmarks",
     [](Cli& c, const char*) { c.list = true; }},
    {"--benchmark", "NAME", "synthesize a built-in benchmark",
     [](Cli& c, const char* v) { c.benchmark = v; }},
    {"--exact", nullptr, "exact (Quine-McCluskey) minimization per output",
     [](Cli& c, const char*) { c.exact = true; }},
    {"--no-share", nullptr, "disable AND-gate sharing across outputs",
     [](Cli& c, const char*) { c.no_share = true; }},
    {"--solve-csc", nullptr,
     "resolve CSC violations by state-signal insertion (STG inputs only)",
     [](Cli& c, const char*) { c.solve_csc = true; }},
    {"--netlist", nullptr, "print the synthesized netlist",
     [](Cli& c, const char*) { c.print_netlist = true; }},
    {"--verilog", nullptr, "print the circuit as self-contained Verilog",
     [](Cli& c, const char*) { c.print_verilog = true; }},
    {"--dot", "SIGNAL", "print the SG as Graphviz DOT with SIGNAL's regions",
     [](Cli& c, const char* v) {
       c.print_dot = true;
       c.dot_signal = v;
     }},
    {"--pla", nullptr, "print the minimized cover in PLA format",
     [](Cli& c, const char*) { c.print_pla = true; }},
    {"--regions", nullptr, "print the region analysis per non-input signal",
     [](Cli& c, const char*) { c.print_regions = true; }},
    {"--check", "N", "closed-loop conformance simulations (default 8)",
     [](Cli& c, const char* v) { c.check_runs = parse_int(v, 0, 1'000'000, "--check"); }},
    {"--jobs", "N",
     "worker threads for every sweep; outputs are byte-identical to --jobs 1 "
     "(default: NSHOT_JOBS or 1)",
     [](Cli& c, const char* v) { c.jobs = parse_int(v, 1, 4096, "--jobs"); }},
    {"--vcd", "FILE", "write one closed-loop simulation trace as VCD",
     [](Cli& c, const char* v) { c.vcd_file = v; }},
    {"--baselines", nullptr, "also run the SIS-like / SYN-like / complex-gate flows",
     [](Cli& c, const char*) { c.run_baselines = true; }},
    {"--stress", nullptr, "fault battery + robustness-margin report (JSON)",
     [](Cli& c, const char*) { c.stress = true; }},
    {"--stress-runs", "N", "margin-measurement runs (default 5)",
     [](Cli& c, const char* v) { c.stress_runs = parse_int(v, 1, 1'000'000, "--stress-runs"); }},
    {"--stress-factor", "F",
     "delay-outlier stretch beyond the library interval (default: 3.0 for "
     "--stress, 1.0 for --stress-uncomp)",
     [](Cli& c, const char* v) { c.stress_factor = parse_double(v, 1.0, 100.0, "--stress-factor"); }},
    {"--stress-out", "FILE", "write the stress JSON report to FILE instead of stdout",
     [](Cli& c, const char* v) { c.stress_out = v; }},
    {"--stress-uncomp", nullptr,
     "under-compensation demo: Monte Carlo misses the Eq. 1 trespass the "
     "adversarial search finds; witness JSON and VCD are written to disk",
     [](Cli& c, const char*) { c.stress_uncomp = true; }},
    {"--stress-vcd", "FILE", "witness waveform path (default stress_witness.vcd)",
     [](Cli& c, const char* v) { c.stress_vcd = v; }},
    {"--stress-deepen", "N",
     "max buffer levels tried when picking the under-compensated signal (default 2)",
     [](Cli& c, const char* v) { c.stress_deepen = parse_int(v, 1, 64, "--stress-deepen"); }},
    {"--batch", "FILE", "run a batch manifest (<id> bench:N|file:P|gen:S [key=value ...])",
     [](Cli& c, const char* v) { c.batch_file = v; }},
    {"--soak", "N", "soak: run N seeded random semi-modular STGs as a batch",
     [](Cli& c, const char* v) { c.soak = parse_int(v, 1, 1'000'000, "--soak"); }},
    {"--soak-seed", "S", "base seed of the soak campaign (default 1)",
     [](Cli& c, const char* v) {
       c.soak_seed = static_cast<std::uint64_t>(parse_long(v, 0, LONG_MAX, "--soak-seed"));
     }},
    {"--soak-params", "KV", "extra key=value params appended to every soak run (space-separated)",
     [](Cli& c, const char* v) { c.soak_params = v; }},
    {"--batch-journal", "FILE",
     "crash-safe JSONL journal; an interrupted batch resumes by skipping journaled runs",
     [](Cli& c, const char* v) { c.batch_journal = v; }},
    {"--batch-summary", "FILE", "write the batch summary JSON to FILE instead of stdout",
     [](Cli& c, const char* v) { c.batch_summary = v; }},
    {"--batch-retries", "N", "retries for transient failures per run (default 1)",
     [](Cli& c, const char* v) { c.batch_retries = parse_int(v, 0, 100, "--batch-retries"); }},
    {"--batch-stop-after", "N", "stop after N executed runs (crash simulation for resume tests)",
     [](Cli& c, const char* v) {
       c.batch_stop_after = parse_int(v, 1, 1'000'000, "--batch-stop-after");
     }},
    {"--deadline-ms", "MS", "whole-run wall-clock budget; overruns become clean deadline errors",
     [](Cli& c, const char* v) { c.deadline_ms = parse_double(v, 0, 1e9, "--deadline-ms"); }},
    {"--stage-deadline-ms", "MS", "per-stage wall-clock budget",
     [](Cli& c, const char* v) {
       c.stage_deadline_ms = parse_double(v, 0, 1e9, "--stage-deadline-ms");
     }},
    {"--verify-kernels", nullptr,
     "cross-check optimized kernels against the reference oracles; divergence degrades "
     "to a reference-kernel retry",
     [](Cli& c, const char*) { c.verify_kernels = true; }},
    {"--inject-kernel-fault", nullptr,
     "TESTING: perturb compiled-kernel results so --verify-kernels trips and the "
     "fallback path is exercised",
     [](Cli& c, const char*) { c.inject_kernel_fault = true; }},
    {"--serve", "SOCKET", "serve NDJSON synthesis requests on a Unix socket until SIGTERM",
     [](Cli& c, const char* v) { c.serve_socket = v; }},
    {"--serve-dir", "DIR",
     "serve a file queue (CI mode): DIR/*.req.json in, DIR/*.resp.json out",
     [](Cli& c, const char* v) { c.serve_dir = v; }},
    {"--serve-journal", "FILE",
     "serve journal (BatchRunner-compatible JSONL); journaled ids are answered as resumed",
     [](Cli& c, const char* v) { c.serve_journal = v; }},
    {"--serve-max-inflight", "N", "concurrent requests overall (default: half the pool)",
     [](Cli& c, const char* v) {
       c.serve_max_inflight = parse_int(v, 1, 4096, "--serve-max-inflight");
     }},
    {"--serve-per-client", "N", "concurrent requests per client (default 2)",
     [](Cli& c, const char* v) { c.serve_per_client = parse_int(v, 1, 4096, "--serve-per-client"); }},
    {"--serve-queue", "N", "admission backlog cap (default 256)",
     [](Cli& c, const char* v) { c.serve_queue = parse_int(v, 1, 1'000'000, "--serve-queue"); }},
    {"--serve-idle-exit", "N",
     "file-queue mode: drain and exit after N consecutive empty scans (default: run forever)",
     [](Cli& c, const char* v) { c.serve_idle_exit = parse_int(v, 1, 1'000'000, "--serve-idle-exit"); }},
    {"--connect", "SOCKET",
     "client mode: pipe NDJSON request lines from stdin to a --serve socket, print responses",
     [](Cli& c, const char* v) { c.connect_path = v; }},
    {"--trace", "FILE", "write a Chrome trace_event JSON of the run to FILE",
     [](Cli& c, const char* v) { c.trace_file = v; }},
    {"--report", "FILE", "write a flat run report JSON (passes, counters, RSS) to FILE",
     [](Cli& c, const char* v) { c.report_file = v; }},
    {"--trace-deterministic", nullptr,
     "canonical trace/report: logical timestamps, scheduling-dependent spans "
     "and counters dropped; byte-identical across --jobs values",
     [](Cli& c, const char*) { c.trace_deterministic = true; }},
};

void print_help() {
  std::printf("usage: assassin_cli (<file.g|file.sg> | --benchmark NAME | --list) [options]\n\n");
  std::printf("options:\n");
  for (const FlagSpec& flag : kFlags) {
    std::string left = flag.name;
    if (flag.metavar) left += std::string(" ") + flag.metavar;
    std::printf("  %-22s %s\n", left.c_str(), flag.help);
  }
}

const FlagSpec* find_flag(const char* name) {
  for (const FlagSpec& flag : kFlags)
    if (std::strcmp(flag.name, name) == 0) return &flag;
  return nullptr;
}

/// Returns 0 (parsed), 1 (help printed) or 2 (bad usage).
int parse_args(int argc, char** argv, Cli& cli) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_help();
      return 1;
    }
    if (const FlagSpec* flag = find_flag(arg)) {
      const char* value = nullptr;
      if (flag->metavar) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "error: %s requires a value (%s)\n", flag->name, flag->metavar);
          return 2;
        }
        value = argv[++i];
      }
      flag->handler(cli, value);
      continue;
    }
    if (arg[0] != '\0' && arg[0] != '-') {
      cli.input_file = arg;
      continue;
    }
    std::fprintf(stderr, "error: unknown option '%s' (see --help)\n", arg);
    return 2;
  }
  return 0;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw nshot::Error("cannot write " + path);
  out << content;
}

std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) { g_stop.store(true); }

/// `--serve SOCKET` / `--serve-dir DIR`: run the batch server until
/// SIGTERM/SIGINT (or, in file-queue mode, until --serve-idle-exit empty
/// scans), then drain gracefully and print the ServeStats JSON.
int run_serve(const Cli& cli) {
  serve::ServeOptions sopt;
  sopt.pipeline.run.deadline_ms = cli.deadline_ms;
  sopt.pipeline.run.stage_deadline_ms = cli.stage_deadline_ms;
  sopt.pipeline.run.verify_kernels = cli.verify_kernels;
  sopt.pipeline.run.jobs = cli.jobs;
  sopt.pipeline.conformance.runs = cli.check_runs;
  sopt.pipeline.synthesis.exact = cli.exact;
  sopt.pipeline.stress_test = cli.stress;
  sopt.pipeline.stress.margin_runs = cli.stress_runs;
  sopt.admission.max_inflight = cli.serve_max_inflight;
  sopt.admission.per_client_inflight = cli.serve_per_client;
  sopt.admission.max_queue = cli.serve_queue;
  sopt.journal_path = cli.serve_journal;
  serve::Server server(sopt);

  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);

  if (!cli.serve_dir.empty()) {
    serve::FileQueueOptions fq;
    fq.dir = cli.serve_dir;
    fq.idle_exit_scans = cli.serve_idle_exit;
    serve::FileQueueWorker worker(fq, server);
    std::fprintf(stderr, "serving file queue %s\n", cli.serve_dir.c_str());
    worker.run(g_stop);  // drains on exit
  } else {
    serve::SocketListener listener(cli.serve_socket, server);
    std::fprintf(stderr, "serving on %s\n", cli.serve_socket.c_str());
    while (!g_stop.load()) std::this_thread::sleep_for(std::chrono::milliseconds(50));
    listener.stop();
    server.drain();
  }

  const serve::ServeStats stats = server.stats();
  std::fprintf(stderr,
               "serve: %ld accepted, %ld completed (%ld failed), %ld rejected, %ld resumed\n",
               stats.accepted, stats.completed, stats.failed, stats.rejected, stats.resumed);
  if (!cli.trace_file.empty()) write_file(cli.trace_file, server.trace_json());
  if (!cli.report_file.empty()) write_file(cli.report_file, server.report_json());
  std::printf("%s\n", stats.to_json().c_str());
  return 0;
}

/// `--connect SOCKET`: pipeline every stdin request line to the server,
/// then print one response line per request.  Responses arrive in
/// completion order; match them to requests by "id".
int run_connect(const Cli& cli) {
  serve::SocketClient client(cli.connect_path);
  int sent = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    client.send_line(line);
    ++sent;
  }
  for (int i = 0; i < sent; ++i) {
    const std::string response = client.recv_line();
    if (response.empty()) {
      std::fprintf(stderr, "error: server closed the connection (%d of %d responses)\n", i, sent);
      return 1;
    }
    std::printf("%s\n", response.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  try {
    const int parsed = parse_args(argc, argv, cli);
    if (parsed != 0) return parsed == 1 ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (cli.jobs > 0) exec::set_default_jobs(cli.jobs);

  if (cli.list) {
    std::printf("%-15s %8s %6s %s\n", "name", "states*", "distr", "(* state count in the paper)");
    for (const auto& info : bench_suite::all_benchmarks())
      std::printf("%-15s %8d %6s\n", info.name.c_str(), info.paper_states,
                  info.nondistributive ? "no" : "yes");
    return 0;
  }
  if (cli.inject_kernel_fault) sim::testing::set_kernel_fault_injection(true);

  if (!cli.serve_socket.empty() || !cli.serve_dir.empty()) {
    try {
      return run_serve(cli);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (!cli.connect_path.empty()) {
    try {
      return run_connect(cli);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  if (!cli.batch_file.empty() || cli.soak > 0) {
    try {
      BatchOptions bopt;
      bopt.journal_path = cli.batch_journal;
      bopt.max_retries = cli.batch_retries;
      bopt.stop_after = cli.batch_stop_after;
      bopt.pipeline.run.deadline_ms = cli.deadline_ms;
      bopt.pipeline.run.stage_deadline_ms = cli.stage_deadline_ms;
      bopt.pipeline.run.verify_kernels = cli.verify_kernels;
      bopt.pipeline.run.jobs = cli.jobs;
      bopt.pipeline.conformance.runs = cli.check_runs;
      bopt.pipeline.synthesis.exact = cli.exact;
      bopt.pipeline.stress_test = cli.stress;
      bopt.pipeline.stress.margin_runs = cli.stress_runs;

      std::string manifest_text;
      if (cli.soak > 0) {
        manifest_text = BatchRunner::soak_manifest(cli.soak, cli.soak_seed, cli.soak_params);
      } else {
        std::ifstream stream(cli.batch_file);
        if (!stream) throw Error("cannot open batch manifest " + cli.batch_file);
        std::stringstream buffer;
        buffer << stream.rdbuf();
        manifest_text = buffer.str();
      }

      BatchRunner runner(bopt);
      const BatchSummary summary = runner.run(BatchRunner::parse_manifest(manifest_text));
      const std::string json = summary.to_json();
      if (cli.batch_summary.empty()) {
        std::printf("%s", json.c_str());
      } else {
        write_file(cli.batch_summary, json);
      }
      std::fprintf(stderr,
                   "batch: %d run(s) — %d ok, %d failed, %d resumed, %d retried%s\n",
                   summary.total, summary.succeeded, summary.failed, summary.resumed,
                   summary.retries, summary.stopped_early ? " (stopped early)" : "");
      for (const auto& [code, count] : summary.failures_by_code)
        std::fprintf(stderr, "  %-20s %d\n", code.c_str(), count);
      // Classified circuit failures are a finding, not a harness error; the
      // exit code flags only internal failures (bugs) and unfinished work.
      const bool internal_failure = summary.failures_by_code.count("internal") != 0;
      return internal_failure ? 1 : 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  if (cli.input_file.empty() && cli.benchmark.empty()) {
    print_help();
    return 2;
  }

  // Observe the run only when an exporter was requested: the session wraps
  // everything from specification load to the last verification sweep, and
  // the CLI-level spans below keep the report's pass list covering the
  // whole wall clock (library spans land nested beneath them).
  std::optional<obs::Session> session;
  if (!cli.trace_file.empty() || !cli.report_file.empty())
    session.emplace("assassin_cli",
                    cli.benchmark.empty() ? cli.input_file : cli.benchmark);

  try {
    sg::StateGraph graph = [&] {
      const obs::Span span("load");
      if (!cli.benchmark.empty()) return bench_suite::build_benchmark(cli.benchmark);
      std::ifstream stream(cli.input_file);
      if (!stream) throw Error("cannot open " + cli.input_file);
      std::stringstream buffer;
      buffer << stream.rdbuf();
      const bool is_sg_format =
          cli.input_file.size() >= 3 &&
          cli.input_file.compare(cli.input_file.size() - 3, 3, ".sg") == 0;
      if (is_sg_format) return stg::parse_sg(buffer.str());
      const stg::Stg net = stg::parse_g(buffer.str());
      if (cli.solve_csc) {
        const auto solved = csc::solve_csc(net);
        if (!solved) throw Error("CSC solving failed within the signal budget");
        std::printf("CSC solved with %d inserted state signal(s):\n", solved->signals_added);
        for (const std::string& note : solved->insertions) std::printf("  %s\n", note.c_str());
        return solved->graph;
      }
      return stg::build_state_graph(net);
    }();

    {
      const obs::Span span("analyze");
      std::printf("specification: %s — %d states, %zu input / %zu non-input signals\n",
                  graph.name().c_str(), graph.num_states(), graph.input_signals().size(),
                  graph.noninput_signals().size());
      std::printf("distributive: %s, single traversal: %s\n",
                  sg::is_distributive(graph) ? "yes" : "no",
                  sg::is_single_traversal(graph) ? "yes" : "no");
      if (cli.print_regions)
        for (const auto& regions : sg::compute_all_regions(graph))
          std::printf("%s", regions.to_string(graph).c_str());
    }

    core::SynthesisOptions options;
    options.exact = cli.exact;
    options.share_products = !cli.no_share;
    const core::SynthesisResult result = core::synthesize(graph, options);

    {
      const obs::Span span("output");
      std::printf("\n%s", core::describe(graph, result).c_str());
      if (cli.print_pla) std::printf("\n%s", logic::write_pla(result.cover).c_str());
      if (cli.print_netlist) std::printf("\n%s", result.circuit.to_string().c_str());
      if (cli.print_verilog)
        std::printf("\n%s",
                    netlist::write_verilog(result.circuit, gatelib::GateLibrary::standard())
                        .c_str());
      if (cli.print_dot) {
        sg::DotOptions dot_options;
        dot_options.highlight_signal = graph.find_signal(cli.dot_signal);
        std::printf("\n%s", sg::to_dot(graph, dot_options).c_str());
      }
      if (!cli.vcd_file.empty()) {
        const sim::TracedRun traced = sim::record_vcd_trace(graph, result.circuit);
        write_file(cli.vcd_file, traced.vcd);
        std::printf("\nwrote VCD trace (%ld transitions, %.1f time units) to %s\n",
                    traced.report.external_transitions, traced.report.simulated_time,
                    cli.vcd_file.c_str());
      }
    }

    if (cli.check_runs > 0) {
      sim::ConformanceOptions copt;
      copt.runs = cli.check_runs;
      copt.verify_kernels = cli.verify_kernels;
      sim::ConformanceReport report;
      try {
        report = sim::check_conformance(graph, result.circuit, copt);
      } catch (const Error& e) {
        if (e.code() != ErrorCode::kKernelMismatch) throw;
        std::printf("\nkernel mismatch: %s\nretrying on the reference kernels\n", e.what());
        copt.reference_kernels = true;
        copt.verify_kernels = false;
        report = sim::check_conformance(graph, result.circuit, copt);
      }
      std::printf("\nconformance: %s\n", report.summary().c_str());
      if (!report.clean()) return 1;
    }

    if (cli.stress) {
      faults::StressOptions sopt;
      sopt.margin_runs = cli.stress_runs;
      sopt.adversarial.stress_factor = cli.stress_factor > 0.0 ? cli.stress_factor : 3.0;
      const faults::StressReport report =
          faults::run_stress(graph, result.circuit, graph.name(), sopt);
      const std::string json = faults::stress_report_json(report);
      if (cli.stress_out.empty()) {
        std::printf("\n%s\n", json.c_str());
      } else {
        write_file(cli.stress_out, json);
        int failed = 0;
        for (const faults::FaultOutcome& outcome : report.outcomes)
          if (!outcome.survived) ++failed;
        std::printf(
            "\nstress: %zu signals, %zu faults (%d detected), min omega slack %.3f, "
            "min Eq.1 slack %.3f, adversarial best slack %.3f -> %s\n",
            report.signals.size(), report.outcomes.size(), failed, report.min_omega_slack,
            report.min_eq1_slack, report.adversarial.best_slack, cli.stress_out.c_str());
      }
    }

    if (cli.stress_uncomp) {
      // Deliberately break Eq. 1: deepen one signal's set SOP with buffers
      // (raising t_set0w) and install no compensating delay line, then show
      // that uniform Monte Carlo over stressed delay bounds misses the
      // trespass an adversarial search finds, minimizes and dumps.
      const obs::Span span("uncompensated");
      const auto noninputs = graph.noninput_signals();
      if (noninputs.empty()) throw Error("--stress-uncomp needs a non-input signal");
      const gatelib::GateLibrary& lib = gatelib::GateLibrary::standard();

      // Pick the tightest under-compensation available: the (signal, depth)
      // pair whose deepened set SOP makes Eq. 1 require the SMALLEST
      // positive t_del.  The violating delay region is then a thin sliver
      // at the corner of the delay box — exactly the kind of trespass a
      // uniform sweep misses and a guided search walks into.
      std::string target;
      int levels = 0;
      double required = faults::kNoMargin;
      for (const auto sid : noninputs) {
        const std::string& name = graph.signal(sid).name;
        for (int l = 1; l <= cli.stress_deepen; ++l) {
          const netlist::Netlist candidate =
              faults::deepen_set_path(result.circuit, name, l);
          double shortfall = 0.0;
          for (const faults::Eq1Requirement& req : faults::eq1_requirements(candidate, lib))
            if (req.signal == name) shortfall = req.required_set - req.installed_set;
          if (shortfall <= 0.0) continue;  // still compensated; go deeper
          if (shortfall < required) {
            required = shortfall;
            target = name;
            levels = l;
          }
          break;  // deeper levels only increase the shortfall
        }
      }
      if (target.empty())
        throw Error("--stress-uncomp: no under-compensated variant within " +
                    std::to_string(cli.stress_deepen) + " extra levels");
      const netlist::Netlist uncomp = faults::strip_delay_compensation(
          faults::deepen_set_path(result.circuit, target, levels));
      std::printf(
          "\nunder-compensated %s (+%d set levels): Eq.1 requires t_del_set >= %.2f, "
          "installed 0\n",
          target.c_str(), levels, required);

      // Default to the plain library interval: the deepened circuit's Eq. 1
      // shortfall makes a thin corner of the ordinary delay box hazardous,
      // which is the sharpest form of the demo.
      faults::AdversarialOptions aopt;
      aopt.stress_factor = cli.stress_factor > 0.0 ? cli.stress_factor : 1.0;
      const faults::MonteCarloResult mc =
          faults::stressed_monte_carlo(graph, uncomp, 200, aopt);
      std::printf("uniform Monte Carlo: %d/%d runs violate (min slack %.3f)\n",
                  mc.violating_runs, mc.runs, mc.min_slack);

      const faults::AdversarialResult adv = faults::adversarial_delay_search(graph, uncomp, aopt);
      std::printf("adversarial search: %s after %ld evaluations (best slack %.3f)\n",
                  adv.violation_found ? "violation found" : "no violation", adv.evaluations,
                  adv.best_slack);
      if (adv.violation_found) {
        faults::FaultScenario scenario;
        scenario.seed = adv.env_seed;
        scenario.delays = adv.delays;
        const faults::MinimizedWitness witness =
            faults::minimize_counterexample(graph, uncomp, scenario);
        const std::string json_path =
            cli.stress_out.empty() ? "stress_witness.json" : cli.stress_out;
        write_file(json_path, faults::witness_json(witness, uncomp));
        write_file(cli.stress_vcd, witness.vcd);
        std::printf(
            "minimized witness: %d off-nominal gate delays (%d reset to nominal, "
            "%ld replays) -> %s, %s\n",
            witness.off_nominal_gates, witness.delays_reset, witness.evaluations,
            json_path.c_str(), cli.stress_vcd.c_str());
        if (!witness.report.violations.empty())
          std::printf("  %s: %s\n",
                      sim::violation_kind_name(witness.report.violations.front().kind),
                      witness.report.violations.front().description.c_str());
      }
    }

    if (cli.run_baselines) {
      const obs::Span span("baselines");
      auto show = [&](const char* name, const baselines::BaselineOutcome& outcome) {
        if (outcome.ok())
          std::printf("%-13s area %7.0f  delay %4.1f\n", name, outcome.result->stats.area,
                      outcome.result->stats.delay);
        else
          std::printf("%-13s %s\n", name, baselines::failure_text(*outcome.failure).c_str());
      };
      std::printf("\nbaseline comparison:\n");
      std::printf("%-13s area %7.0f  delay %4.1f\n", "n-shot", result.stats.area,
                  result.stats.delay);
      show("sis-like", baselines::synthesize_sis_like(graph));
      show("syn-like", baselines::synthesize_syn_like(graph));
      show("complex-gate", baselines::synthesize_complex_gate(graph));
    }

    if (session) {
      obs::TraceOptions topt;
      topt.deterministic = cli.trace_deterministic;
      obs::ReportOptions ropt;
      ropt.deterministic = cli.trace_deterministic;
      // Render everything before touching the disk so the exporters' own
      // I/O does not count against the session's attributed time.
      const std::string trace = cli.trace_file.empty() ? "" : session->trace_json(topt);
      const std::string report_doc =
          cli.report_file.empty() ? "" : session->report_json(ropt);
      const obs::RunReport report = session->report();
      if (!cli.trace_file.empty()) write_file(cli.trace_file, trace);
      if (!cli.report_file.empty()) write_file(cli.report_file, report_doc);
      std::printf("\nobservability: %zu pass(es), %.1f of %.1f ms attributed -> %s%s%s\n",
                  report.passes.size(), report.attributed_ms(), report.total_ms,
                  cli.trace_file.c_str(), !cli.trace_file.empty() && !cli.report_file.empty()
                                              ? ", " : "",
                  cli.report_file.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
