// Formal external-hazard-freeness verification by exhaustive interleaving
// exploration.
//
// The randomized event simulator samples the delay space; this module
// covers it exhaustively under the classical speed-independent gate
// abstraction used by [1, 17, 4]: every gate is an atomic evaluator with
// an arbitrary, unbounded delay — an excited gate (output != function of
// inputs) may fire at any moment, and losing its excitation cancels the
// pending change (inertial semantics).  The verifier explores every
// interleaving of
//   * gate firings (including the glitchy intermediate states of the SOP
//     core — these are the internal hazards the architecture tolerates),
//   * environment moves (an input transition the specification enables in
//     the current spec state may fire at any time),
// and checks that every change of an observable non-input net is a
// transition the specification enables in the tracked spec state.  The
// MHS flip-flop is modelled as an enable-gated C-element: the threshold
// filter is a *timed* property the untimed abstraction cannot express, so
// every pulse is assumed wide enough to fire — the pessimistic direction
// for external hazards.
//
// The search memoizes (net values, spec state) pairs; circuits explored
// here are therefore the small and mid-size benchmarks (the state count
// is capped), with the timed simulator covering the rest of the suite.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"
#include "sg/state_graph.hpp"

namespace nshot::formal {

struct SiVerifyOptions {
  std::size_t max_states = 2'000'000;  // (net values, spec state) pairs
};

struct SiVerifyResult {
  bool ok = false;
  bool exhausted = false;        // state cap hit: result is inconclusive
  std::size_t states_explored = 0;
  std::string violation;         // first offending trace step, if !ok

  explicit operator bool() const { return ok; }
};

/// Exhaustively verify `circuit` against `spec`.  Net naming conventions
/// are the repository-wide ones (signal rails named after SG signals).
SiVerifyResult verify_external_hazard_freeness(const sg::StateGraph& spec,
                                               const netlist::Netlist& circuit,
                                               const SiVerifyOptions& options = {});

}  // namespace nshot::formal
