#include "serve/protocol.hpp"

#include <cmath>
#include <cstdio>

#include "util/json.hpp"
#include "util/json_value.hpp"

namespace nshot::serve {

namespace {

/// Canonicalize a JSON override value to the string a batch manifest
/// would carry: strings pass through, integral numbers render without a
/// fractional part, booleans become 1/0.
std::string override_string(const std::string& key, const JsonValue& value) {
  if (value.is_string()) return value.as_string();
  if (value.is_bool()) return value.as_bool() ? "1" : "0";
  if (value.is_number()) {
    const double number = value.as_number();
    if (number == std::floor(number) && std::abs(number) < 1e15) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(number));
      return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", number);
    return buf;
  }
  throw Error(ErrorCode::kInputInvalid,
              "override '" + key + "' must be a string, number or boolean");
}

}  // namespace

WireRequest parse_request(const std::string& line) {
  const JsonValue doc = parse_json(line, "request line");
  NSHOT_REQUIRE(doc.is_object(), "request line must be a JSON object");

  WireRequest wire;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "id")
      wire.request.id = value.as_string();
    else if (key == "client")
      wire.client = value.as_string();
    else if (key == "kind")
      wire.request.kind = value.as_string();
    else if (key == "spec")
      wire.request.spec = value.as_string();
    else if (key == "g_text")
      wire.request.g_text = value.as_string();
    else if (key == "overrides") {
      NSHOT_REQUIRE(value.is_object(), "'overrides' must be a JSON object");
      for (const auto& [override_key, override_value] : value.as_object()) {
        NSHOT_REQUIRE(Request::known_override_keys().count(override_key) != 0,
                      "unknown override key '" + override_key + "'");
        wire.request.overrides[override_key] = override_string(override_key, override_value);
      }
    } else {
      throw Error(ErrorCode::kInputInvalid, "unknown request field '" + key + "'");
    }
  }
  NSHOT_REQUIRE(!wire.client.empty(), "'client' must not be empty");
  NSHOT_REQUIRE(wire.request.spec.empty() || wire.request.g_text.empty(),
                "request carries both 'spec' and 'g_text'");
  NSHOT_REQUIRE(!wire.request.spec.empty() || !wire.request.g_text.empty(),
                "request carries neither 'spec' nor 'g_text'");
  return wire;
}

std::string request_json(const WireRequest& wire) {
  JsonWriter json;
  json.begin_object();
  json.key("id").value(wire.request.id);
  json.key("client").value(wire.client);
  if (!wire.request.kind.empty()) json.key("kind").value(wire.request.kind);
  if (!wire.request.spec.empty()) json.key("spec").value(wire.request.spec);
  if (!wire.request.g_text.empty()) json.key("g_text").value(wire.request.g_text);
  if (!wire.request.overrides.empty()) {
    json.key("overrides").begin_object();
    for (const auto& [key, value] : wire.request.overrides) json.key(key).value(value);
    json.end_object();
  }
  json.end_object();
  return json.str();
}

Response rejection(const std::string& id, ErrorCode code, const std::string& message) {
  Response response;
  response.id = id;
  response.attempts = 0;
  response.outcome.code = code;
  response.outcome.stage = "admission";
  response.outcome.message = message;
  return response;
}

}  // namespace nshot::serve
