#include "sim/conformance.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <sstream>

#include "exec/thread_pool.hpp"
#include "sim/vcd.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nshot::sim {

using netlist::NetId;

const char* violation_kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kHazard: return "hazard";
    case ViolationKind::kEnvironment: return "environment";
    case ViolationKind::kDeadlock: return "deadlock";
    case ViolationKind::kEventBudget: return "event-budget";
  }
  return "unknown";
}

std::string ConformanceReport::summary() const {
  std::ostringstream out;
  out << runs << " run(s): " << external_transitions << " conformant external transitions, "
      << internal_toggles << " internal toggles, " << deadlocks << " deadlock(s), "
      << violations.size() << " violation(s)";
  if (budget_exhausted > 0) out << ", " << budget_exhausted << " budget-exhausted run(s)";
  for (std::size_t i = 0; i < std::min<std::size_t>(violations.size(), 5); ++i)
    out << "\n  [seed " << violations[i].seed << " t=" << violations[i].time << "] "
        << violation_kind_name(violations[i].kind) << ": " << violations[i].description;
  return out.str();
}

std::vector<std::pair<NetId, bool>> initial_net_values(const sg::StateGraph& spec,
                                                       const netlist::Netlist& circuit) {
  std::vector<std::pair<NetId, bool>> values;
  for (int x = 0; x < spec.num_signals(); ++x) {
    const bool v = spec.value(spec.initial(), x);
    if (const auto q = circuit.find_net(spec.signal(x).name)) values.emplace_back(*q, v);
    if (const auto qb = circuit.find_net(spec.signal(x).name + "_b"))
      values.emplace_back(*qb, !v);
  }
  if (const auto c0 = circuit.find_net("const0")) values.emplace_back(*c0, false);
  if (const auto c1 = circuit.find_net("const1")) values.emplace_back(*c1, true);
  return values;
}

namespace {

/// One closed-loop run; appends to the report.  When `recorder` is given,
/// every net change (and the initial values) are captured for VCD export.
void run_once(const sg::StateGraph& spec, const netlist::Netlist& circuit,
              const ClosedLoopConfig& config, ConformanceReport& report,
              VcdRecorder* recorder = nullptr) {
  const gatelib::GateLibrary& lib = gatelib::GateLibrary::standard();
  Simulator sim(circuit, lib, config.sim);
  const std::uint64_t seed = config.sim.seed;
  Rng rng(env_stream(config.env_seed != 0 ? config.env_seed : seed));

  // Signal <-> net maps (by name, the repository-wide convention).
  std::vector<NetId> signal_net(static_cast<std::size_t>(spec.num_signals()), -1);
  std::vector<int> net_signal(static_cast<std::size_t>(circuit.num_nets()), -1);
  for (int x = 0; x < spec.num_signals(); ++x) {
    const auto net = circuit.find_net(spec.signal(x).name);
    NSHOT_REQUIRE(net.has_value(), "circuit has no net for signal " + spec.signal(x).name);
    signal_net[static_cast<std::size_t>(x)] = *net;
    net_signal[static_cast<std::size_t>(*net)] = x;
  }

  sg::StateId state = spec.initial();
  long run_transitions = 0;
  bool failed = false;

  NetObserver vcd_observer = recorder ? recorder->observer() : NetObserver{};
  sim.set_observer([&, vcd_observer](NetId net, bool value, double time) {
    if (vcd_observer) vcd_observer(net, value, time);
    if (config.observer) config.observer(net, value, time);
    const int x = net_signal[static_cast<std::size_t>(net)];
    if (x < 0 || failed) return;  // internal net, or already failing
    const sg::TransitionLabel label{x, value};
    const auto next = spec.successor(state, label);
    if (next) {
      state = *next;
      ++run_transitions;
      return;
    }
    failed = true;
    report.violations.push_back(ConformanceViolation{
        seed, time, spec.is_input(x) ? ViolationKind::kEnvironment : ViolationKind::kHazard,
        "unexpected transition " + spec.label_name(label) + " in state " +
            spec.state_name(state) + (spec.is_input(x) ? " (environment bug)" : " (hazard)")});
  });

  sim.initialize(initial_net_values(spec, circuit));
  if (recorder) recorder->capture_initial(sim);
  if (config.on_initialized) config.on_initialized(sim);
  for (const auto& [net, value] : config.forces) sim.force_net(net, value);

  struct InputDecision {
    sg::TransitionLabel label;
    double time;
  };
  std::optional<InputDecision> decision;
  std::size_t next_injection = 0;
  constexpr double kNever = std::numeric_limits<double>::infinity();

  while (!failed && run_transitions < config.max_transitions &&
         sim.now() < config.time_limit && !sim.budget_exhausted()) {
    // (Re)validate or make the environment's next input decision.  A
    // stuck-at input net cannot be toggled by the environment, so labels
    // on forced nets are not offered.
    if (decision && !spec.enabled(state, decision->label)) decision.reset();
    if (!decision) {
      std::vector<sg::TransitionLabel> choices;
      for (const sg::TransitionLabel& label : spec.enabled_labels(state))
        if (spec.is_input(label.signal) &&
            !sim.is_forced(signal_net[static_cast<std::size_t>(label.signal)]))
          choices.push_back(label);
      if (!choices.empty()) {
        const sg::TransitionLabel pick = choices[rng.next_below(choices.size())];
        decision = InputDecision{
            pick, sim.now() + rng.next_double(config.input_delay_min, config.input_delay_max)};
      }
    }

    const double event_time = sim.has_pending_events() ? sim.next_event_time() : kNever;
    const double decision_time = decision ? decision->time : kNever;
    const double injection_time = next_injection < config.injections.size()
                                      ? std::max(config.injections[next_injection].time, sim.now())
                                      : kNever;

    // A due injection preempts both circuit events and the environment:
    // the fault is already present at that instant.
    if (next_injection < config.injections.size() && injection_time <= event_time &&
        injection_time <= decision_time) {
      const TimedInjection& inj = config.injections[next_injection++];
      sim.advance_time(injection_time);
      if (inj.release)
        sim.release_net(inj.net);
      else
        sim.force_net(inj.net, inj.value);
      continue;
    }

    // Fundamental mode: drain all circuit activity before the input fires.
    if (sim.has_pending_events() &&
        (!decision || config.fundamental_mode || event_time <= decision->time)) {
      sim.step();
      continue;
    }
    if (decision) {
      if (config.fundamental_mode && decision->time < sim.now())
        decision->time = sim.now();  // the circuit outlasted the planned instant
      sim.set_input(signal_net[static_cast<std::size_t>(decision->label.signal)],
                    decision->label.rising, decision->time);
      // Commit the input immediately (it is the earliest pending event) so
      // the spec state advances before the next decision is made.
      sim.step();
      decision.reset();
      continue;
    }

    // No circuit events, no injection, and no possible input: quiescent or
    // deadlocked.  Reaching here with no decision means every enabled input
    // label sits on a forced net, so an enabled input is a starved
    // environment, not a clean endpoint.
    bool output_pending = false;
    bool input_starved = false;
    for (const sg::TransitionLabel& label : spec.enabled_labels(state)) {
      if (!spec.is_input(label.signal))
        output_pending = true;
      else if (sim.is_forced(signal_net[static_cast<std::size_t>(label.signal)]))
        input_starved = true;
    }
    if (output_pending || input_starved) {
      ++report.deadlocks;
      report.violations.push_back(ConformanceViolation{
          seed, sim.now(), ViolationKind::kDeadlock,
          output_pending
              ? "circuit quiescent but spec state " + spec.state_name(state) +
                    " still enables a non-input transition"
              : "circuit quiescent and every transition spec state " + spec.state_name(state) +
                    " enables is an input pinned by a fault"});
    }
    break;
  }

  if (sim.budget_exhausted()) {
    ++report.budget_exhausted;
    report.violations.push_back(ConformanceViolation{
        seed, sim.now(), ViolationKind::kEventBudget,
        "event budget exhausted after " + std::to_string(sim.events_processed()) +
            " events (runaway oscillation under the current delays/faults?)"});
  }

  report.external_transitions += run_transitions;
  std::vector<NetId> excluded;
  for (int x = 0; x < spec.num_signals(); ++x) {
    excluded.push_back(signal_net[static_cast<std::size_t>(x)]);
    if (const auto qb = circuit.find_net(spec.signal(x).name + "_b")) excluded.push_back(*qb);
  }
  report.internal_toggles += sim.total_toggles_excluding(excluded);
  report.absorbed_pulses += sim.mhs_absorbed_pulses();
  report.simulated_time += sim.now();
}

}  // namespace

ConformanceReport run_closed_loop(const sg::StateGraph& spec, const netlist::Netlist& circuit,
                                  const ClosedLoopConfig& config, VcdRecorder* recorder) {
  ConformanceReport report;
  report.runs = 1;
  run_once(spec, circuit, config, report, recorder);
  return report;
}

/// Fold one trial's report into the sweep total.  Trials are merged in run
/// order, so a parallel sweep reproduces the serial report byte for byte.
static void merge_run(ConformanceReport& total, const ConformanceReport& run) {
  total.external_transitions += run.external_transitions;
  total.internal_toggles += run.internal_toggles;
  total.absorbed_pulses += run.absorbed_pulses;
  total.simulated_time += run.simulated_time;
  total.deadlocks += run.deadlocks;
  total.budget_exhausted += run.budget_exhausted;
  total.violations.insert(total.violations.end(), run.violations.begin(),
                          run.violations.end());
}

ConformanceReport check_conformance(const sg::StateGraph& spec, const netlist::Netlist& circuit,
                                    const ConformanceOptions& options) {
  // Every trial is a pure function of run_seed(options.seed, r), so the
  // sweep is an order-independent bag of work; only the merge is ordered.
  const std::vector<ConformanceReport> trials = exec::parallel_map<ConformanceReport>(
      options.runs,
      [&](int r) {
        ClosedLoopConfig config;
        config.sim.seed = run_seed(options.seed, r);
        config.sim.randomize_delays = true;
        config.sim.max_events = options.max_events;
        config.max_transitions = options.max_transitions;
        config.input_delay_min = options.input_delay_min;
        config.input_delay_max = options.input_delay_max;
        config.time_limit = options.time_limit;
        config.fundamental_mode = options.fundamental_mode;
        ConformanceReport trial;
        run_once(spec, circuit, config, trial);
        return trial;
      },
      options.jobs);
  ConformanceReport report;
  report.runs = options.runs;
  for (const ConformanceReport& trial : trials) merge_run(report, trial);
  return report;
}

TracedRun record_vcd_trace(const sg::StateGraph& spec, const netlist::Netlist& circuit,
                           std::uint64_t seed, int max_transitions) {
  VcdRecorder recorder(circuit);
  ClosedLoopConfig config;
  config.sim.seed = seed;
  config.sim.randomize_delays = true;
  config.max_transitions = max_transitions;
  TracedRun traced;
  traced.report.runs = 1;
  run_once(spec, circuit, config, traced.report, &recorder);
  traced.vcd = recorder.write();
  return traced;
}

}  // namespace nshot::sim
