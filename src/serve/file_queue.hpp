// File-queue transport: the CI-friendly serve mode.  Clients drop
// `<name>.req.json` files (one NDJSON request object each) into a
// directory; the worker claims each file by renaming it to
// `<name>.req.json.claimed`, runs it through the Server, and atomically
// writes `<name>.resp.json` (tmp + rename).  Requests already terminal in
// the server's journal are answered without executing (resume), and
// requests evicted by a drain (rejection message prefix "draining") get
// their `.req.json` restored so the next incarnation reruns them.
#pragma once

#include <atomic>
#include <string>

#include "serve/server.hpp"

namespace nshot::serve {

struct FileQueueOptions {
  std::string dir;       // watched directory (must exist)
  int poll_ms = 50;      // sleep between empty scans
  int idle_exit_scans = 0;  // >0: stop after N consecutive empty scans
};

class FileQueueWorker {
 public:
  FileQueueWorker(FileQueueOptions options, Server& server);

  /// One directory scan: claim and dispatch every pending `.req.json`.
  /// Returns the number of requests dispatched (or answered from the
  /// journal).  Responses are written asynchronously by the server's
  /// completion callbacks.
  int scan_once();

  /// Poll until `stop` becomes true (or `idle_exit_scans` consecutive
  /// empty scans), then drain the server.  Safe to call from main while a
  /// signal handler flips `stop`.
  void run(const std::atomic<bool>& stop);

 private:
  void dispatch(const std::string& request_path);

  FileQueueOptions options_;
  Server& server_;
};

}  // namespace nshot::serve
