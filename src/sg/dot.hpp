// Graphviz DOT export for state graphs: states annotated with their binary
// codes and excitation marks, region colouring for one chosen signal
// (ER/QR as in Figure 1), and detonant-state highlighting.
#pragma once

#include <optional>
#include <string>

#include "sg/state_graph.hpp"

namespace nshot::sg {

struct DotOptions {
  /// Colour the ER/QR regions of this non-input signal (Figure 1 style).
  std::optional<SignalId> highlight_signal;
  /// Mark detonant states with a double border.
  bool mark_detonant = true;
};

/// Render the state graph as Graphviz DOT text.
std::string to_dot(const StateGraph& graph, const DotOptions& options = {});

}  // namespace nshot::sg
