file(REMOVE_RECURSE
  "CMakeFiles/nshot_formal.dir/si_verifier.cpp.o"
  "CMakeFiles/nshot_formal.dir/si_verifier.cpp.o.d"
  "libnshot_formal.a"
  "libnshot_formal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nshot_formal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
