file(REMOVE_RECURSE
  "libnshot_bench_suite.a"
)
