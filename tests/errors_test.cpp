// Error-taxonomy tests: code/name round-trips, context-chain rendering,
// exception classification, Result<T> propagation and the REQUIRE/ASSERT
// macro contracts that the batch and pipeline robustness layers build on.
#include <gtest/gtest.h>

#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace nshot {
namespace {

// ---------------------------------------------------------------------------
// Taxonomy names
// ---------------------------------------------------------------------------

TEST(ErrorCodeTest, NameRoundTripsForEveryCode) {
  for (int c = 0; c < static_cast<int>(ErrorCode::kCount); ++c) {
    const ErrorCode code = static_cast<ErrorCode>(c);
    const std::string name = error_code_name(code);
    ASSERT_FALSE(name.empty());
    EXPECT_EQ(error_code_from_name(name), code) << name;
  }
}

TEST(ErrorCodeTest, NamesAreStableSnakeCase) {
  EXPECT_STREQ(error_code_name(ErrorCode::kInputInvalid), "input_invalid");
  EXPECT_STREQ(error_code_name(ErrorCode::kUnimplementable), "unimplementable");
  EXPECT_STREQ(error_code_name(ErrorCode::kResourceExhausted), "resource_exhausted");
  EXPECT_STREQ(error_code_name(ErrorCode::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_STREQ(error_code_name(ErrorCode::kKernelMismatch), "kernel_mismatch");
  EXPECT_STREQ(error_code_name(ErrorCode::kInternal), "internal");
}

TEST(ErrorCodeTest, UnknownNameClassifiesAsInternal) {
  EXPECT_EQ(error_code_from_name("no_such_code"), ErrorCode::kInternal);
  EXPECT_EQ(error_code_from_name(""), ErrorCode::kInternal);
}

// ---------------------------------------------------------------------------
// Error: codes, messages, context chains
// ---------------------------------------------------------------------------

TEST(ErrorTest, DefaultConstructorIsInputInvalid) {
  const Error e("bad token");
  EXPECT_EQ(e.code(), ErrorCode::kInputInvalid);
  EXPECT_EQ(e.message(), "bad token");
  EXPECT_STREQ(e.what(), "bad token");
}

TEST(ErrorTest, ContextChainRendersOutermostFirst) {
  Error e(ErrorCode::kUnimplementable, "signal x lacks a trigger");
  e.add_context("synthesize converta");
  e.add_context("batch run #12");
  EXPECT_EQ(e.message(), "signal x lacks a trigger");  // original survives
  EXPECT_STREQ(e.what(), "batch run #12: synthesize converta: signal x lacks a trigger");
  ASSERT_EQ(e.context().size(), 2u);
}

TEST(ErrorTest, WithErrorContextStampsEscapingErrors) {
  try {
    with_error_context("stage parse", [] {
      with_error_context("line 3", [] { throw Error(ErrorCode::kInputInvalid, "bad arc"); });
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInputInvalid);
    EXPECT_STREQ(e.what(), "stage parse: line 3: bad arc");
  }
}

TEST(ErrorTest, WithErrorContextPassesValuesAndForeignExceptions) {
  EXPECT_EQ(with_error_context("ctx", [] { return 42; }), 42);
  // Non-nshot exceptions pass through untouched.
  EXPECT_THROW(with_error_context("ctx", [] { throw std::logic_error("foreign"); }),
               std::logic_error);
}

TEST(ErrorTest, ClassifyException) {
  const Error deadline(ErrorCode::kDeadlineExceeded, "late");
  EXPECT_EQ(classify_exception(deadline), ErrorCode::kDeadlineExceeded);
  const std::bad_alloc oom;
  EXPECT_EQ(classify_exception(oom), ErrorCode::kResourceExhausted);
  const std::runtime_error other("boom");
  EXPECT_EQ(classify_exception(other), ErrorCode::kInternal);
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

TEST(ErrorMacroTest, RequireThrowsInputInvalid) {
  try {
    NSHOT_REQUIRE(1 == 2, "math is broken");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInputInvalid);
    // raise_error prefixes the throwing file:line for diagnostics.
    EXPECT_NE(e.message().find("math is broken"), std::string::npos) << e.message();
  }
}

TEST(ErrorMacroTest, RequireCodeCarriesTheExplicitCode) {
  try {
    NSHOT_REQUIRE_CODE(false, ErrorCode::kResourceExhausted, "cap hit");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
  }
}

TEST(ErrorMacroTest, AssertThrowsInternalWithPrefix) {
  try {
    NSHOT_ASSERT(false, "invariant broken");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInternal);
    EXPECT_NE(e.message().find("internal: invariant broken"), std::string::npos) << e.message();
  }
}

// ---------------------------------------------------------------------------
// Result<T>
// ---------------------------------------------------------------------------

TEST(ResultTest, HoldsAValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(r.take_value(), 7);
}

TEST(ResultTest, HoldsAnErrorAndGuardsValue) {
  Result<int> r(Error(ErrorCode::kDeadlineExceeded, "late"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kDeadlineExceeded);
  try {
    (void)r.value();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInternal);
  }
}

TEST(ResultTest, ErrorAccessorOnOkResultThrows) {
  Result<int> r(1);
  EXPECT_THROW((void)r.error(), Error);
}

TEST(ResultTest, MapTransformsOkAndPropagatesError) {
  Result<std::string> mapped = Result<int>(21).map([](int v) { return std::to_string(v * 2); });
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped.value(), "42");

  Result<std::string> still_error =
      Result<int>(Error(ErrorCode::kUnimplementable, "no dice")).map([](int v) {
        return std::to_string(v);
      });
  ASSERT_FALSE(still_error.ok());
  EXPECT_EQ(still_error.error().code(), ErrorCode::kUnimplementable);
  EXPECT_EQ(still_error.error().message(), "no dice");
}

TEST(ResultTest, FromCapturesThrownErrorsWithTheirCode) {
  const Result<int> ok = Result<int>::from([] { return 5; });
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);

  const Result<int> err = Result<int>::from(
      []() -> int { throw Error(ErrorCode::kKernelMismatch, "diverged"); });
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error().code(), ErrorCode::kKernelMismatch);

  // Foreign exceptions are classified, not lost.
  const Result<int> foreign =
      Result<int>::from([]() -> int { throw std::runtime_error("boom"); });
  ASSERT_FALSE(foreign.ok());
  EXPECT_EQ(foreign.error().code(), ErrorCode::kInternal);
}

TEST(ResultTest, WorksWithNonDefaultConstructibleTypes) {
  struct NoDefault {
    explicit NoDefault(int v) : value(v) {}
    int value;
  };
  Result<NoDefault> r(NoDefault(9));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().value, 9);
}

}  // namespace
}  // namespace nshot
