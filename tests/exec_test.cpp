// The execution engine itself: parallel_for index coverage, exception
// propagation, parallel_reduce determinism, and the memo cache.
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/memo_cache.hpp"
#include "exec/thread_pool.hpp"

namespace nshot::exec {
namespace {

TEST(ParallelForTest, RunsEveryIndexExactlyOnce) {
  for (const int jobs : {1, 2, 8}) {
    for (const int n : {0, 1, 7, 100, 1000}) {
      std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
      parallel_for(n, [&](int i) { hits[static_cast<std::size_t>(i)].fetch_add(1); }, jobs);
      for (int i = 0; i < n; ++i)
        EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "index " << i << " with jobs=" << jobs << " n=" << n;
    }
  }
}

TEST(ParallelForTest, NegativeOrZeroCountIsANoop) {
  int calls = 0;
  parallel_for(0, [&](int) { ++calls; }, 8);
  parallel_for(-5, [&](int) { ++calls; }, 8);
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, RethrowsTheLowestIndexException) {
  // Serial execution would hit index 3 first; the parallel engine must
  // surface the same exception no matter which worker ran it.
  for (const int jobs : {1, 4, 8}) {
    try {
      parallel_for(
          100,
          [&](int i) {
            if (i == 3 || i == 57 || i == 99)
              throw std::runtime_error("boom at " + std::to_string(i));
          },
          jobs);
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 3") << "jobs=" << jobs;
    }
  }
}

TEST(ParallelForTest, AllItemsStillRunWhenOneThrows) {
  std::atomic<int> ran{0};
  try {
    parallel_for(
        50,
        [&](int i) {
          ran.fetch_add(1);
          if (i == 10) throw std::runtime_error("boom");
        },
        4);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ParallelForTest, NestedParallelSectionsComplete) {
  // The caller always participates, so inner sections can't deadlock even
  // when the pool is saturated by the outer loop.
  std::atomic<int> total{0};
  parallel_for(
      8,
      [&](int) { parallel_for(8, [&](int) { total.fetch_add(1); }, 8); },
      8);
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelMapTest, ResultsLandInIndexOrder) {
  for (const int jobs : {1, 8}) {
    const std::vector<int> squares = parallel_map<int>(64, [](int i) { return i * i; }, jobs);
    ASSERT_EQ(squares.size(), 64u);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(squares[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(ParallelReduceTest, MatchesSerialLeftFold) {
  // Left-fold in index order: string concatenation is non-commutative, so
  // any reordering would change the result.
  const auto digits = [](int i) { return std::to_string(i) + ","; };
  std::string serial;
  for (int i = 0; i < 40; ++i) serial += digits(i);
  for (const int jobs : {1, 3, 8}) {
    const std::string folded = parallel_reduce<std::string, std::string>(
        40, std::string(), digits, [](std::string acc, const std::string& s) { return acc + s; },
        jobs);
    EXPECT_EQ(folded, serial) << "jobs=" << jobs;
  }
}

TEST(BatchGrainTest, LaneRoundingKeepsGroupsWhole) {
  // jobs=1 pins workers to 1, so the unrounded grain is exactly n and the
  // lane-rounded grain is n lifted to the next multiple of `lanes`.
  EXPECT_EQ(batch_grain(96, 1), 96);
  EXPECT_EQ(batch_grain(96, 1, 64), 128);
  EXPECT_EQ(batch_grain(64, 1, 64), 64);
  EXPECT_EQ(batch_grain(1, 8, 64), 1);   // n <= 1 short-circuits
  EXPECT_EQ(batch_grain(0, 8, 64), 1);
  // Whatever the host's worker count, a lane-rounded grain is always a
  // whole number of groups.
  for (const int n : {2, 63, 64, 65, 96, 500, 4096}) {
    for (const int jobs : {0, 1, 2, 8}) {
      EXPECT_EQ(batch_grain(n, jobs, 64) % 64, 0) << "n=" << n << " jobs=" << jobs;
      EXPECT_GE(batch_grain(n, jobs, 64), batch_grain(n, jobs)) << "n=" << n << " jobs=" << jobs;
    }
  }
}

TEST(BatchGrainTest, ChunksCarryFullLaneGroups) {
  // The sweep shape check_conformance relies on: with a lane-rounded
  // grain, every chunk parallel_for_chunks produces starts on a group
  // boundary, so only the final partial group of the whole sweep (the
  // tail of n itself) runs under-filled — a 64-lane TrialBatch inside any
  // chunk always forms full groups otherwise.
  constexpr int kLanes = 64;
  for (const int n : {96, 129, 640}) {
    for (const int jobs : {0, 2, 5}) {
      const int grain = batch_grain(n, jobs, kLanes);
      std::mutex mu;
      std::vector<std::pair<int, int>> chunks;
      parallel_for_chunks(
          n, grain,
          [&](int begin, int end) {
            const std::lock_guard<std::mutex> lock(mu);
            chunks.emplace_back(begin, end);
          },
          jobs);
      int covered = 0;
      for (const auto& [begin, end] : chunks) {
        EXPECT_EQ(begin % kLanes, 0) << "n=" << n << " jobs=" << jobs;
        if (end != n) EXPECT_EQ(end % kLanes, 0) << "n=" << n << " jobs=" << jobs;
        covered += end - begin;
      }
      EXPECT_EQ(covered, n) << "n=" << n << " jobs=" << jobs;
    }
  }
}

TEST(JobsResolutionTest, ExplicitValueWinsOverDefault) {
  const int saved = default_jobs();
  set_default_jobs(3);
  EXPECT_EQ(resolve_jobs(0), 3);
  EXPECT_EQ(resolve_jobs(5), 5);
  EXPECT_EQ(resolve_jobs(1), 1);
  set_default_jobs(saved);
}

TEST(MemoCacheTest, SecondLookupIsAHit) {
  MemoCache<int> cache;
  int computes = 0;
  const auto compute = [&] { return ++computes * 10; };
  EXPECT_EQ(cache.get_or_compute("a", compute), 10);
  EXPECT_EQ(cache.get_or_compute("a", compute), 10);
  EXPECT_EQ(cache.get_or_compute("b", compute), 20);
  EXPECT_EQ(computes, 2);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(MemoCacheTest, ClearForgetsEntries) {
  MemoCache<std::string> cache;
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return std::string("v");
  };
  cache.get_or_compute("k", compute);
  cache.clear();
  cache.get_or_compute("k", compute);
  EXPECT_EQ(computes, 2);
}

TEST(MemoCacheTest, ConcurrentLookupsAgreeOnTheValue) {
  // Many threads race on the same keys; every caller must observe the
  // deterministic computed value regardless of who inserted first.
  MemoCache<int> cache;
  constexpr int kKeys = 16;
  std::vector<int> observed(8 * kKeys, -1);
  parallel_for(
      8 * kKeys,
      [&](int i) {
        const int key = i % kKeys;
        observed[static_cast<std::size_t>(i)] =
            cache.get_or_compute("key" + std::to_string(key), [&] { return key * 7; });
      },
      8);
  for (int i = 0; i < 8 * kKeys; ++i)
    EXPECT_EQ(observed[static_cast<std::size_t>(i)], (i % kKeys) * 7);
}

TEST(MemoCacheTest, CapacityBoundSkipsInsertionButStillComputes) {
  MemoCache<int> cache(/*max_entries=*/2);
  int computes = 0;
  const auto compute = [&] { return ++computes; };
  cache.get_or_compute("a", compute);
  cache.get_or_compute("b", compute);
  cache.get_or_compute("c", compute);  // over capacity: computed, not stored
  cache.get_or_compute("c", compute);  // recomputed
  EXPECT_EQ(computes, 4);
  cache.get_or_compute("a", compute);  // still cached
  EXPECT_EQ(computes, 4);
}

TEST(ThreadPoolTest, SubmittedTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::atomic<int> done{0};
  constexpr int kTasks = 200;
  std::mutex m;
  std::condition_variable cv;
  for (int i = 0; i < kTasks; ++i)
    pool.submit([&] {
      ran.fetch_add(1);
      if (done.fetch_add(1) + 1 == kTasks) {
        std::lock_guard<std::mutex> lock(m);
        cv.notify_one();
      }
    });
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return done.load() == kTasks; });
  EXPECT_EQ(ran.load(), kTasks);
}

}  // namespace
}  // namespace nshot::exec
