
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/conformance.cpp" "src/sim/CMakeFiles/nshot_sim.dir/conformance.cpp.o" "gcc" "src/sim/CMakeFiles/nshot_sim.dir/conformance.cpp.o.d"
  "/root/repo/src/sim/event_sim.cpp" "src/sim/CMakeFiles/nshot_sim.dir/event_sim.cpp.o" "gcc" "src/sim/CMakeFiles/nshot_sim.dir/event_sim.cpp.o.d"
  "/root/repo/src/sim/mhs_structural.cpp" "src/sim/CMakeFiles/nshot_sim.dir/mhs_structural.cpp.o" "gcc" "src/sim/CMakeFiles/nshot_sim.dir/mhs_structural.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "src/sim/CMakeFiles/nshot_sim.dir/vcd.cpp.o" "gcc" "src/sim/CMakeFiles/nshot_sim.dir/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nshot_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/nshot_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/nshot_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/gatelib/CMakeFiles/nshot_gatelib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
