#include "sim/event_sim.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nshot::sim {

using gatelib::GateType;
using netlist::GateId;
using netlist::NetId;

namespace {
constexpr double kTimeEps = 1e-9;
}

Simulator::Simulator(const CompiledNetlist& compiled, const SimulatorOptions& options,
                     QueueKind queue)
    : compiled_(&compiled), rng_(options.seed), events_(queue) {
  build_hot_gates();
  reset(options);
}

Simulator::Simulator(const netlist::Netlist& netlist, const gatelib::GateLibrary& lib,
                     const SimulatorOptions& options)
    : compiled_(nullptr), owned_(std::make_unique<CompiledNetlist>(netlist, lib)),
      rng_(options.seed) {
  compiled_ = owned_.get();
  build_hot_gates();
  reset(options);
}

// Copy the static fields of every gate into the hot records; reset()
// refreshes only the per-trial delay.
void Simulator::build_hot_gates() {
  const std::size_t num_gates = static_cast<std::size_t>(compiled_->num_gates());
  hot_.resize(num_gates);
  for (std::size_t g = 0; g < num_gates; ++g) {
    const CompiledGate& gate = compiled_->gate(static_cast<GateId>(g));
    hot_[g].first_input = gate.first_input;
    hot_[g].out0 = gate.out0;
    hot_[g].type = gate.type;
    hot_[g].num_inputs = static_cast<std::uint8_t>(gate.num_inputs);
  }
}

void Simulator::reset(const SimulatorOptions& options) {
  const std::size_t num_nets = static_cast<std::size_t>(compiled_->num_nets());
  const std::size_t num_gates = static_cast<std::size_t>(compiled_->num_gates());
  rng_ = Rng(options.seed);
  omega_ = compiled_->lib().mhs_threshold();
  tau_ = compiled_->lib().mhs_response();
  max_events_ = options.max_events;
  values_.assign(num_nets, 0);
  projected_.assign(num_nets, 0);
  forced_.assign(num_nets, 0);
  toggles_.assign(num_nets, 0);
  mhs_.assign(num_gates, MhsState{});
  inertial_.assign(num_gates, InertialState{});
  events_.clear();
  hold_valid_ = false;
  hold_open_ = false;
  next_seq_ = 0;
  events_processed_ = 0;
  budget_exhausted_ = false;
  mhs_absorbed_ = 0;
  now_ = 0.0;
  initialized_ = false;
  observer_ = {};
  commit_log_ = nullptr;

  // Delay assignment: exactly the draw sequence a fresh construction makes
  // (the seed identifies the same delay vector everywhere).
  if (!options.explicit_delays.empty()) {
    NSHOT_REQUIRE(options.explicit_delays.size() == num_gates,
                  "explicit_delays must hold one delay per gate");
    gate_delay_ = options.explicit_delays;
  } else if (options.randomize_delays) {
    compiled_->delay_space().sample_into(rng_, gate_delay_);
  } else {
    gate_delay_ = compiled_->delay_space().nominal_vector();
  }
  for (const auto& [g, delay] : options.delay_overrides) {
    NSHOT_REQUIRE(g >= 0 && g < compiled_->num_gates(), "delay override on unknown gate");
    NSHOT_REQUIRE(delay >= 0.0, "delay override must be non-negative");
    gate_delay_[static_cast<std::size_t>(g)] = delay;
  }
  for (std::size_t g = 0; g < num_gates; ++g) hot_[g].delay = gate_delay_[g];
}

template <typename GateRec>
bool Simulator::eval_combinational(const GateRec& gate) const {
  // Packed input codes: net in the high bits, inversion in bit 0 — the
  // inversion is an XOR on the 0/1 value byte, no second lookup, no branch.
  const std::uint32_t* codes = compiled_->input_codes() + gate.first_input;
  auto in = [&](std::size_t i) {
    const std::uint32_t code = codes[i];
    return (values_[code >> 1] ^ (code & 1u)) != 0;
  };
  switch (gate.type) {
    case GateType::kAnd: {
      for (std::size_t i = 0; i < gate.num_inputs; ++i)
        if (!in(i)) return false;
      return true;
    }
    case GateType::kOr: {
      for (std::size_t i = 0; i < gate.num_inputs; ++i)
        if (in(i)) return true;
      return false;
    }
    case GateType::kInv:
      return !in(0);
    case GateType::kBuf:
    case GateType::kDelayLine:
    case GateType::kInertialDelay:
      return in(0);
    case GateType::kRsLatch: {
      const bool s = in(0), r = in(1);
      if (s) return true;  // set dominant
      if (r) return false;
      return values_[static_cast<std::size_t>(gate.out0)] != 0;
    }
    case GateType::kCElement: {
      bool all_one = true, all_zero = true;
      for (std::size_t i = 0; i < gate.num_inputs; ++i) {
        if (in(i)) all_zero = false;
        else all_one = false;
      }
      if (all_one) return true;
      if (all_zero) return false;
      return values_[static_cast<std::size_t>(gate.out0)] != 0;
    }
    case GateType::kMhsFlipFlop:
      NSHOT_ASSERT(false, "MHS flip-flop is not a combinational gate");
  }
  return false;
}

template bool Simulator::eval_combinational<CompiledGate>(const CompiledGate&) const;
template bool Simulator::eval_combinational<HotGate>(const HotGate&) const;

void Simulator::initialize(const std::vector<std::pair<NetId, bool>>& fixed_values) {
  NSHOT_REQUIRE(!initialized_, "initialize must be called exactly once");
  initialized_ = true;
  const netlist::Netlist& netlist = compiled_->netlist();

  std::vector<std::uint8_t> is_source(static_cast<std::size_t>(compiled_->num_nets()), 0);
  for (const auto& [net, value] : fixed_values) {
    values_[static_cast<std::size_t>(net)] = value ? 1 : 0;
    is_source[static_cast<std::size_t>(net)] = 1;
  }

  // Combinational settle: evaluate non-storage gates in dependency order.
  std::vector<GateId> pending;
  for (GateId g = 0; g < compiled_->num_gates(); ++g) {
    const CompiledGate& gate = compiled_->gate(g);
    if (gatelib::is_storage(gate.type) || gate.feedback_cut) {
      NSHOT_REQUIRE(is_source[static_cast<std::size_t>(gate.out0)],
                    "initialize: storage output " + netlist.net_name(gate.out0) +
                        " needs an initial value");
      if (gate.out1 >= 0)
        NSHOT_REQUIRE(is_source[static_cast<std::size_t>(gate.out1)],
                      "initialize: storage output " + netlist.net_name(gate.out1) +
                          " needs an initial value");
    } else {
      pending.push_back(g);
    }
  }
  std::vector<std::uint8_t> net_known = is_source;
  for (const NetId pi : netlist.primary_inputs()) net_known[static_cast<std::size_t>(pi)] = 1;
  bool progress = true;
  while (progress && !pending.empty()) {
    progress = false;
    std::vector<GateId> still;
    for (const GateId g : pending) {
      const CompiledGate& gate = compiled_->gate(g);
      bool ready = true;
      for (std::size_t i = 0; i < gate.num_inputs; ++i)
        if (!net_known[static_cast<std::size_t>(compiled_->input(gate, i))]) {
          ready = false;
          break;
        }
      if (!ready) {
        still.push_back(g);
        continue;
      }
      values_[static_cast<std::size_t>(gate.out0)] = eval_combinational(gate) ? 1 : 0;
      net_known[static_cast<std::size_t>(gate.out0)] = 1;
      progress = true;
    }
    pending = std::move(still);
  }
  NSHOT_ASSERT(pending.empty(), "initialize: combinational cycle or undriven input");
  projected_ = values_;
  arm_initial_storage();
}

void Simulator::initialize_from_settled(const std::vector<std::uint8_t>& settled) {
  NSHOT_REQUIRE(!initialized_, "initialize must be called exactly once");
  NSHOT_REQUIRE(settled.size() == static_cast<std::size_t>(compiled_->num_nets()),
                "initialize_from_settled needs one value per net");
  initialized_ = true;
  values_ = settled;
  projected_ = values_;
  arm_initial_storage();
}

// Arm storage elements that are excited in the initial state.  Gate order
// fixes the seq numbers of the initial events, so both initialize paths
// share this pass verbatim.
void Simulator::arm_initial_storage() {
  for (GateId g = 0; g < compiled_->num_gates(); ++g) {
    const CompiledGate& gate = compiled_->gate(g);
    if (gate.type == GateType::kMhsFlipFlop) {
      handle_mhs_input(g);
    } else if (gatelib::is_storage(gate.type) || gate.feedback_cut) {
      const bool target =
          gate.feedback_cut ? values_[static_cast<std::size_t>(compiled_->input(gate, 0))] != 0
                            : eval_combinational(gate);
      if (target != (projected_[static_cast<std::size_t>(gate.out0)] != 0))
        schedule_net(gate.out0, target, gate_delay_[static_cast<std::size_t>(g)]);
    }
  }
}

void Simulator::set_input(NetId net, bool value, double at_time) {
  NSHOT_REQUIRE(at_time + kTimeEps >= now_, "cannot schedule input change in the past");
  schedule_net(net, value, at_time);
}

void Simulator::schedule_net(NetId net, bool value, double time, std::uint32_t generation) {
  // Driver activity on a pinned net is swallowed by the fault, not merely
  // dropped at commit time: scheduling it would corrupt the projected view
  // (release_net re-derives the driver value from scratch).
  if (forced_[static_cast<std::size_t>(net)]) return;
  if (generation == 0 && (projected_[static_cast<std::size_t>(net)] != 0) == value) return;
  projected_[static_cast<std::size_t>(net)] = value ? 1 : 0;
  const Event event{time, next_seq_++, net, generation, EventKind::kNetChange, value};
  if (hold_open_) {
    // A fused chain link inside run_burst: park the event in the hold
    // register instead of the queue.  Seq was assigned exactly as a push
    // would have, so pop order is untouched whichever way it goes.
    hold_ = event;
    hold_valid_ = true;
    hold_open_ = false;
    return;
  }
  events_.push(event);
}

void Simulator::commit_net(NetId net, bool value, bool forced_commit) {
  if (forced_[static_cast<std::size_t>(net)] && !forced_commit) return;
  if ((values_[static_cast<std::size_t>(net)] != 0) == value) return;
  values_[static_cast<std::size_t>(net)] = value ? 1 : 0;
  ++toggles_[static_cast<std::size_t>(net)];
  if (commit_log_ != nullptr)
    commit_log_->push_back(Commit{net, value});
  else if (observer_)
    observer_(net, value, now_);
  for (const GateId g : compiled_->fanout(net)) evaluate_gate(g);
}

void Simulator::force_net(NetId net, bool value) {
  NSHOT_REQUIRE(initialized_, "initialize the simulator before forcing nets");
  forced_[static_cast<std::size_t>(net)] = 1;
  // Pin both the committed and projected views: pending driver events for
  // this net still pop but commit_net drops them while the force holds.
  projected_[static_cast<std::size_t>(net)] = value ? 1 : 0;
  commit_net(net, value, /*forced_commit=*/true);
}

void Simulator::release_net(NetId net) {
  NSHOT_REQUIRE(initialized_, "initialize the simulator before releasing nets");
  NSHOT_REQUIRE(forced_[static_cast<std::size_t>(net)] != 0,
                "release_net on a net that is not forced");
  forced_[static_cast<std::size_t>(net)] = 0;
  // Restore the driver's present output immediately (zero-delay snap-back —
  // the fault, not the gate, owned the transition).  Storage drivers cannot
  // be re-evaluated combinationally, so forcing is restricted to simple
  // gates and driverless nets.
  const GateId driver = compiled_->driver(net);
  bool restored = values_[static_cast<std::size_t>(net)] != 0;
  if (driver >= 0) {
    const CompiledGate& gate = compiled_->gate(driver);
    NSHOT_REQUIRE(gate.type == GateType::kAnd || gate.type == GateType::kOr ||
                      gate.type == GateType::kInv || gate.type == GateType::kBuf,
                  "release_net: net " + compiled_->netlist().net_name(net) +
                      " is driven by a non-combinational gate");
    restored = eval_combinational(gate);
  }
  projected_[static_cast<std::size_t>(net)] = restored ? 1 : 0;
  commit_net(net, restored, /*forced_commit=*/true);
}

void Simulator::advance_time(double t) {
  NSHOT_REQUIRE(initialized_, "initialize the simulator before advancing time");
  NSHOT_REQUIRE(t + kTimeEps >= now_, "cannot advance the clock into the past");
  NSHOT_REQUIRE(events_.empty() || t <= events_.top().time + kTimeEps,
                "cannot advance the clock past a pending event");
  now_ = std::max(now_, t);
}

void Simulator::evaluate_gate(GateId g) {
  const HotGate& gate = hot_[static_cast<std::size_t>(g)];
  switch (gate.type) {
    case GateType::kMhsFlipFlop:
      handle_mhs_input(g);
      return;
    case GateType::kInertialDelay: {
      InertialState& st = inertial_[static_cast<std::size_t>(g)];
      const NetId out = gate.out0;
      const bool v = values_[compiled_->input_codes()[gate.first_input] >> 1] != 0;
      if (st.has_pending) {  // cancel the scheduled (conflicting) change
        ++st.generation;
        st.has_pending = false;
        projected_[static_cast<std::size_t>(out)] = values_[static_cast<std::size_t>(out)];
      }
      if ((values_[static_cast<std::size_t>(out)] != 0) != v) {
        st.has_pending = true;
        st.pending_value = v;
        projected_[static_cast<std::size_t>(out)] = v ? 1 : 0;
        events_.push(Event{now_ + gate.delay, next_seq_++, out,
                           st.generation + 1, EventKind::kNetChange, v});
      }
      return;
    }
    default: {
      const bool v = eval_combinational(gate);
      schedule_net(gate.out0, v, now_ + gate.delay);
      return;
    }
  }
}

void Simulator::handle_mhs_input(GateId g) {
  const CompiledGate& gate = compiled_->gate(g);
  MhsState& st = mhs_[static_cast<std::size_t>(g)];
  NSHOT_ASSERT(gate.num_inputs == 4,
               "MHS cell expects inputs {set, reset, enable_set, enable_reset}");
  // The acknowledgement AND gates are part of the cell (Figure 5): the
  // effective excitations gate the SOP outputs with the enable rails.
  const bool set = values_[static_cast<std::size_t>(compiled_->input(gate, 0))] &&
                   values_[static_cast<std::size_t>(compiled_->input(gate, 2))];
  const bool reset = values_[static_cast<std::size_t>(compiled_->input(gate, 1))] &&
                     values_[static_cast<std::size_t>(compiled_->input(gate, 3))];
  const bool q_projected = projected_[static_cast<std::size_t>(gate.out0)] != 0;

  const double omega = omega_;
  if (set && st.set_rise < 0.0) {
    st.set_rise = now_;
    if (!q_projected)
      events_.push(Event{now_ + omega, next_seq_++, g, 0, EventKind::kMhsProbe,
                         /*value=set side*/ true});
  } else if (!set && st.set_rise >= 0.0) {
    // Falling edge: a pulse of width >= ω fires even if the probe has not
    // been processed yet (exact-width boundary); shorter pulses are
    // absorbed.
    if (now_ + kTimeEps >= st.set_rise + omega && !q_projected) {
      const double fire = st.set_rise + tau_;
      schedule_net(gate.out0, true, fire);
      schedule_net(gate.out1, false, fire);
    } else if (!q_projected) {
      ++mhs_absorbed_;  // sub-threshold pulse filtered by the master stage
    }
    st.set_rise = -1.0;
  }

  if (reset && st.reset_rise < 0.0) {
    st.reset_rise = now_;
    if (q_projected)
      events_.push(Event{now_ + omega, next_seq_++, g, 0, EventKind::kMhsProbe,
                         /*value=reset side*/ false});
  } else if (!reset && st.reset_rise >= 0.0) {
    if (now_ + kTimeEps >= st.reset_rise + omega && q_projected) {
      const double fire = st.reset_rise + tau_;
      schedule_net(gate.out0, false, fire);
      schedule_net(gate.out1, true, fire);
    } else if (q_projected) {
      ++mhs_absorbed_;
    }
    st.reset_rise = -1.0;
  }
}

void Simulator::handle_mhs_probe(GateId g, bool probing_set) {
  const CompiledGate& gate = compiled_->gate(g);
  MhsState& st = mhs_[static_cast<std::size_t>(g)];
  const NetId q = gate.out0;
  const NetId qb = gate.out1;
  // Re-read on pop: the excitation must have been continuously high for ω
  // (any intermediate fall resets *_rise, so the window check suffices).
  if (probing_set) {
    const bool set = values_[static_cast<std::size_t>(compiled_->input(gate, 0))] &&
                     values_[static_cast<std::size_t>(compiled_->input(gate, 2))];
    if (set && st.set_rise >= 0.0 && now_ + kTimeEps >= st.set_rise + omega_ &&
        !projected_[static_cast<std::size_t>(q)]) {
      const double fire = st.set_rise + tau_;
      schedule_net(q, true, fire);
      schedule_net(qb, false, fire);
    }
  } else {
    const bool reset = values_[static_cast<std::size_t>(compiled_->input(gate, 1))] &&
                       values_[static_cast<std::size_t>(compiled_->input(gate, 3))];
    if (reset && st.reset_rise >= 0.0 && now_ + kTimeEps >= st.reset_rise + omega_ &&
        projected_[static_cast<std::size_t>(q)]) {
      const double fire = st.reset_rise + tau_;
      schedule_net(q, false, fire);
      schedule_net(qb, true, fire);
    }
  }
}

bool Simulator::step() {
  NSHOT_REQUIRE(initialized_, "initialize the simulator before stepping");
  if (events_.empty()) return false;
  if (max_events_ != 0 && events_processed_ >= max_events_) {
    budget_exhausted_ = true;
    return false;
  }
  ++events_processed_;
  const Event event = events_.top();
  events_.pop();
  now_ = event.time;

  if (event.kind == EventKind::kMhsProbe) {
    handle_mhs_probe(event.target, event.value);
    return true;
  }

  // Cancelled inertial events carry a stale generation.
  if (event.generation != 0) {
    const GateId driver = compiled_->driver(event.target);
    NSHOT_ASSERT(driver >= 0, "generation event on undriven net");
    const InertialState& st = inertial_[static_cast<std::size_t>(driver)];
    if (!st.has_pending || event.generation != st.generation + 1) return true;  // stale
    inertial_[static_cast<std::size_t>(driver)].has_pending = false;
  }
  commit_net(event.target, event.value);
  return true;
}

Simulator::BurstResult Simulator::run_burst(const int* net_signal, double time_limit,
                                            double bound, const NetObserver* pre_check,
                                            bool single) {
  NSHOT_REQUIRE(initialized_, "initialize the simulator before stepping");
  // The hold register keeps fused chain links out of the queue: it is
  // consumed inline only when it is the global (time, seq) minimum — the
  // reference driver would push and immediately pop that exact event, so
  // order, seq numbering and events_processed stay byte-identical.  Every
  // exit path flushes it, so has_pending_events()/next_event_time() and
  // the step() driver see the true pending set.
  const auto flush_hold = [&] {
    if (hold_valid_) {
      events_.push(hold_);
      hold_valid_ = false;
    }
  };
  while (true) {
    if (events_.empty() && !hold_valid_) return {BurstStop::kQuiesced};
    if (max_events_ != 0 && events_processed_ >= max_events_) {
      budget_exhausted_ = true;
      flush_hold();
      return {BurstStop::kBudget};
    }
    ++events_processed_;
    Event event;
    if (hold_valid_ && (events_.empty() || !(hold_ > events_.top()))) {
      event = hold_;  // the held chain link is next anyway: skip the queue
      hold_valid_ = false;
    } else {
      flush_hold();  // an earlier queued event outranks the held link
      event = events_.top();
      events_.pop();
    }
    now_ = event.time;

    if (event.kind == EventKind::kMhsProbe) {
      handle_mhs_probe(event.target, event.value);
    } else {
      bool live = true;
      if (event.generation != 0) {  // cancelled inertial events carry a stale generation
        const GateId driver = compiled_->driver(event.target);
        NSHOT_ASSERT(driver >= 0, "generation event on undriven net");
        InertialState& st = inertial_[static_cast<std::size_t>(driver)];
        if (!st.has_pending || event.generation != st.generation + 1)
          live = false;  // stale
        else
          st.has_pending = false;
      }
      // commit_net, inlined: drop while forced or unchanged, else flip,
      // notify in commit order, evaluate the fanout.
      const std::size_t n = static_cast<std::size_t>(event.target);
      if (live && forced_[n] == 0 && (values_[n] != 0) != event.value) {
        values_[n] = event.value ? 1 : 0;
        ++toggles_[n];
        if (pre_check != nullptr) (*pre_check)(event.target, event.value, now_);
        const GateId fused = single ? -1 : compiled_->fused_reader(event.target);
        if (fused >= 0) {
          // Fanout-of-1 combinational link: divert its one scheduled
          // event into the hold register.
          hold_open_ = true;
          evaluate_gate(fused);
          hold_open_ = false;
        } else {
          for (const GateId g : compiled_->fanout(event.target)) evaluate_gate(g);
        }
        if (net_signal[n] >= 0) {
          flush_hold();
          return {BurstStop::kObservable, event.target, event.value};
        }
      }
    }
    if (single) {
      flush_hold();
      return {BurstStop::kBound};
    }
    if (now_ >= time_limit) {
      flush_hold();
      return {BurstStop::kTimeLimit};
    }
    if (events_.empty() && !hold_valid_) return {BurstStop::kQuiesced};
    const double next_time =
        hold_valid_ && (events_.empty() || !(hold_ > events_.top())) ? hold_.time
                                                                     : events_.top().time;
    if (next_time > bound) {
      flush_hold();
      return {BurstStop::kBound};
    }
  }
}

void Simulator::run_until(double time_limit) {
  while (!events_.empty() && events_.top().time <= time_limit)
    if (!step()) break;  // budget exhausted
}

double Simulator::next_event_time() const {
  NSHOT_REQUIRE(!events_.empty(), "no pending events");
  return events_.top().time;
}

long Simulator::total_toggles_excluding(const std::vector<NetId>& excluded) const {
  long total = 0;
  for (std::size_t n = 0; n < toggles_.size(); ++n) total += toggles_[n];
  for (const NetId n : excluded) total -= toggles_[static_cast<std::size_t>(n)];
  return total;
}

}  // namespace nshot::sim
