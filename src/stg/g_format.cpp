#include "stg/g_format.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace nshot::stg {
namespace {

struct ParsedTransition {
  std::string signal;
  bool rising = true;
  int instance = 1;
};

/// Parse "a+", "b-/2"; returns nullopt if the token is not transition-shaped.
std::optional<ParsedTransition> parse_transition_token(const std::string& token) {
  std::string body = token;
  int instance = 1;
  const std::size_t slash = body.find('/');
  if (slash != std::string::npos) {
    try {
      instance = std::stoi(body.substr(slash + 1));
    } catch (...) {
      return std::nullopt;
    }
    body = body.substr(0, slash);
  }
  if (body.size() < 2) return std::nullopt;
  const char sign = body.back();
  if (sign != '+' && sign != '-') return std::nullopt;
  return ParsedTransition{body.substr(0, body.size() - 1), sign == '+', instance};
}

}  // namespace

Stg parse_g(const std::string& text) {
  check_parser_text(text, ".g text");
  Stg stg;
  std::istringstream stream(text);
  std::string raw;
  int line_no = 0;
  bool in_graph = false;

  // Node = transition or place; resolve lazily so .graph can be in any order.
  struct ArcEndpoint {
    bool is_transition;
    int id;
  };
  std::vector<std::string> dummy_names;
  auto resolve = [&stg, &dummy_names](const std::string& token, int line) -> ArcEndpoint {
    // Declared dummy names win over place interpretation.
    for (const std::string& dummy : dummy_names) {
      if (token == dummy) {
        const auto existing = stg.find_dummy_transition(token);
        return {true, existing ? *existing : stg.add_dummy_transition(token)};
      }
    }
    const auto parsed = parse_transition_token(token);
    if (parsed) {
      const auto signal = stg.find_signal(parsed->signal);
      NSHOT_REQUIRE(signal.has_value(), "line " + std::to_string(line) + ": transition " + token +
                                            " uses undeclared signal " + parsed->signal);
      const auto existing = stg.find_transition(*signal, parsed->rising, parsed->instance);
      const TransitionId t =
          existing ? *existing : stg.add_transition(*signal, parsed->rising, parsed->instance);
      return {true, t};
    }
    const auto existing = stg.find_place(token);
    const PlaceId p = existing ? *existing : stg.add_place(token);
    return {false, p};
  };

  std::vector<std::pair<std::string, int>> marking_tokens;  // token, line

  while (std::getline(stream, raw)) {
    ++line_no;
    const std::string line = strip_comment_and_trim(raw);
    if (line.empty()) continue;
    const std::vector<std::string> tokens = split_ws(line);
    const std::string& head = tokens[0];

    if (head == ".model" || head == ".name") {
      if (tokens.size() >= 2) stg.set_name(tokens[1]);
    } else if (head == ".inputs" || head == ".outputs" || head == ".internal") {
      const SignalKind kind = head == ".inputs"    ? SignalKind::kInput
                              : head == ".outputs" ? SignalKind::kOutput
                                                   : SignalKind::kInternal;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        NSHOT_REQUIRE(!stg.find_signal(tokens[i]).has_value(),
                      "line " + std::to_string(line_no) + ": duplicate signal declaration " +
                          tokens[i]);
        stg.add_signal(tokens[i], kind);
      }
    } else if (head == ".dummy") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        NSHOT_REQUIRE(std::find(dummy_names.begin(), dummy_names.end(), tokens[i]) ==
                              dummy_names.end() &&
                          !stg.find_signal(tokens[i]).has_value(),
                      "line " + std::to_string(line_no) + ": duplicate declaration of " +
                          tokens[i]);
        dummy_names.push_back(tokens[i]);
      }
    } else if (head == ".graph") {
      in_graph = true;
    } else if (head == ".marking") {
      // Collect everything between { and } (may span the line only).
      std::string joined;
      for (std::size_t i = 1; i < tokens.size(); ++i) joined += tokens[i] + " ";
      const std::size_t open = joined.find('{');
      const std::size_t close = joined.find('}');
      NSHOT_REQUIRE(open != std::string::npos && close != std::string::npos && close > open,
                    "line " + std::to_string(line_no) + ": .marking must be { ... } on one line");
      std::string inside = joined.substr(open + 1, close - open - 1);
      // Angle-bracket tokens <t1,t2> denote implicit places; protect the
      // comma from the whitespace split by keeping tokens intact.
      for (const std::string& token : split_ws(inside)) marking_tokens.emplace_back(token, line_no);
    } else if (head == ".init") {
      // Extension: ".init a=0 b=1".
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::size_t eq = tokens[i].find('=');
        NSHOT_REQUIRE(eq != std::string::npos,
                      "line " + std::to_string(line_no) + ": .init expects name=0|1");
        const std::string name = tokens[i].substr(0, eq);
        const std::string value = tokens[i].substr(eq + 1);
        const auto signal = stg.find_signal(name);
        NSHOT_REQUIRE(signal.has_value(),
                      "line " + std::to_string(line_no) + ": unknown signal " + name);
        NSHOT_REQUIRE(value == "0" || value == "1",
                      "line " + std::to_string(line_no) + ": .init expects name=0|1");
        stg.set_initial_value(*signal, value == "1");
      }
    } else if (head == ".end") {
      break;
    } else if (head[0] == '.') {
      NSHOT_REQUIRE(false,
                    "line " + std::to_string(line_no) + ": unsupported directive " + head);
    } else {
      NSHOT_REQUIRE(in_graph, "line " + std::to_string(line_no) + ": arc outside .graph section");
      NSHOT_REQUIRE(tokens.size() >= 2,
                    "line " + std::to_string(line_no) + ": arc line needs source and target");
      const ArcEndpoint src = resolve(tokens[0], line_no);
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const ArcEndpoint dst = resolve(tokens[i], line_no);
        if (src.is_transition && dst.is_transition) {
          stg.connect(src.id, dst.id);
        } else if (src.is_transition && !dst.is_transition) {
          stg.add_arc_transition_to_place(src.id, dst.id);
        } else if (!src.is_transition && dst.is_transition) {
          stg.add_arc_place_to_transition(src.id, dst.id);
        } else {
          NSHOT_REQUIRE(false,
                        "line " + std::to_string(line_no) + ": place-to-place arc is illegal");
        }
      }
    }
  }

  // Resolve marking tokens: either an explicit place name or <t1,t2>.
  for (const auto& [token, line] : marking_tokens) {
    const auto place = stg.find_place(token);
    NSHOT_REQUIRE(place.has_value(),
                  "line " + std::to_string(line) + ": marked place " + token + " does not exist");
    stg.mark_place(*place, true);
  }

  NSHOT_REQUIRE(stg.num_transitions() > 0, ".g file declares no transitions");

  // Dangling transitions: an STG transition with no producing arc is
  // always enabled (fires unboundedly) and one with no consuming arc is a
  // sink; both are specification bugs that would otherwise only surface
  // as a reachability state-cap blowup.  Reject them here with the name.
  for (TransitionId t = 0; t < stg.num_transitions(); ++t) {
    NSHOT_REQUIRE(!stg.preset(t).empty(), "transition " + stg.transition_name(t) +
                                              " is dangling: no arc produces its token");
    NSHOT_REQUIRE(!stg.postset(t).empty(), "transition " + stg.transition_name(t) +
                                               " is dangling: no arc consumes its token");
  }
  return stg;
}

std::string write_g(const Stg& stg) {
  std::ostringstream out;
  out << ".model " << (stg.name().empty() ? "unnamed" : stg.name()) << "\n";
  for (const auto& [directive, kind] :
       std::initializer_list<std::pair<const char*, SignalKind>>{
           {".inputs", SignalKind::kInput},
           {".outputs", SignalKind::kOutput},
           {".internal", SignalKind::kInternal}}) {
    std::string names;
    for (int i = 0; i < stg.num_signals(); ++i)
      if (stg.signal(i).kind == kind) names += " " + stg.signal(i).name;
    if (!names.empty()) out << directive << names << "\n";
  }
  std::string dummies;
  for (TransitionId t = 0; t < stg.num_transitions(); ++t)
    if (stg.transition(t).is_dummy()) dummies += " " + stg.transition_name(t);
  if (!dummies.empty()) out << ".dummy" << dummies << "\n";
  out << ".graph\n";
  // Emit place-centric arcs: every place appears as target then source.
  for (TransitionId t = 0; t < stg.num_transitions(); ++t)
    for (const PlaceId p : stg.postset(t)) out << stg.transition_name(t) << " " << stg.place_name(p)
                                               << "\n";
  for (TransitionId t = 0; t < stg.num_transitions(); ++t)
    for (const PlaceId p : stg.preset(t)) out << stg.place_name(p) << " " << stg.transition_name(t)
                                              << "\n";
  out << ".marking {";
  for (PlaceId p = 0; p < stg.num_places(); ++p)
    if (stg.initial_marking()[static_cast<std::size_t>(p)]) out << " " << stg.place_name(p);
  out << " }\n";
  std::string inits;
  for (int i = 0; i < stg.num_signals(); ++i)
    if (const auto v = stg.declared_initial_values()[static_cast<std::size_t>(i)])
      inits += " " + stg.signal(i).name + "=" + (*v ? "1" : "0");
  if (!inits.empty()) out << ".init" << inits << "\n";
  out << ".end\n";
  return out.str();
}

}  // namespace nshot::stg
