file(REMOVE_RECURSE
  "CMakeFiles/nshot_test.dir/nshot_test.cpp.o"
  "CMakeFiles/nshot_test.dir/nshot_test.cpp.o.d"
  "nshot_test"
  "nshot_test.pdb"
  "nshot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
