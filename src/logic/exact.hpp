// Exact two-level minimization (Quine-McCluskey style) for single-output
// functions: generate all prime implicants (maximal valid cubes) and solve
// the unate covering problem by branch and bound.
//
// The paper notes (footnote 6) that ESPRESSO-EXACT can replace the heuristic
// minimizer for better results; this module reproduces that option.  It is
// intended for the moderate-size functions arising from the benchmark state
// graphs; prime generation is capped and falls back to the heuristic result
// when the cap is exceeded.
#pragma once

#include <optional>

#include "logic/cover.hpp"
#include "logic/spec.hpp"
#include "util/run_config.hpp"

namespace nshot::logic {

/// The inherited nshot::RunConfig `jobs` drives exact_minimize's
/// per-output loop.  Outputs are independent covering problems; results
/// concatenate in output order, so the cover is identical for every jobs
/// value.
struct ExactOptions : RunConfig {
  /// Abort exact minimization when more primes than this are generated.
  std::size_t max_primes = 20000;
  /// Abort the covering search after this many branch-and-bound nodes.
  std::size_t max_nodes = 200000;
  // The inherited RunConfig::reference_kernels enumerates prime keys
  // through ordered std::set instead of the hashed hot path — for kernel
  // equivalence tests and benchmarking only.  Both paths emit the primes
  // in the same sorted (lo, hi) order.  (The pre-RunConfig
  // `reference_sets` alias shipped one release of warnings and is gone.)
};

/// All prime implicants of output `o` of `spec` (maximal cubes disjoint
/// from the off-set that cover at least one on-minterm).  Returns
/// std::nullopt if the prime cap is exceeded.
std::optional<std::vector<Cube>> generate_primes(const TwoLevelSpec& spec, int o,
                                                 const ExactOptions& options = {});

/// Exact minimum-cube cover of output `o`; std::nullopt if a cap was hit.
/// The returned cover uses output mask (1 << o).
std::optional<Cover> exact_minimize_output(const TwoLevelSpec& spec, int o,
                                           const ExactOptions& options = {});

/// Per-output exact minimization of every output; any output that exceeds
/// the caps falls back to the heuristic minimizer for that output alone.
Cover exact_minimize(const TwoLevelSpec& spec, const ExactOptions& options = {});

}  // namespace nshot::logic
