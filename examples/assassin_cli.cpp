// assassin_cli — an end-to-end command-line driver mirroring the ASSASSIN
// compiler flow the paper automates [21]:
//
//   assassin_cli <file.g|file.sg>  synthesize an STG (.g) or state graph (.sg)
//   assassin_cli --benchmark NAME  synthesize a built-in Table 2 benchmark
//   assassin_cli --list            list the built-in benchmarks
//
// Options:
//   --exact          use exact (Quine-McCluskey) minimization per output
//   --no-share       disable AND-gate sharing across outputs
//   --solve-csc      resolve CSC violations by state-signal insertion
//                    (STG inputs only; mirrors the preprocessing of [6,18])
//   --netlist        print the synthesized netlist
//   --verilog        print the circuit as self-contained Verilog
//   --dot SIGNAL     print the SG as Graphviz DOT with SIGNAL's regions
//   --pla            print the minimized cover in PLA format
//   --regions        print the region analysis per non-input signal
//   --check N        run N closed-loop conformance simulations (default 8)
//   --jobs N         worker threads for every sweep (conformance, stress
//                    battery, adversarial restarts, Monte Carlo); results
//                    are collected by trial index, so all outputs are
//                    byte-identical to --jobs 1 (default: NSHOT_JOBS or 1)
//   --vcd FILE       write one closed-loop simulation trace as VCD
//   --baselines      also run the SIS-like / SYN-like / complex-gate flows
//
// Robustness / fault injection (src/faults):
//   --stress              fault battery + robustness-margin report (JSON)
//   --stress-runs N       margin-measurement runs (default 5)
//   --stress-factor F     delay-outlier stretch beyond the library interval
//                         (default: 3.0 for --stress, 1.0 for --stress-uncomp)
//   --stress-out FILE     write the JSON report to FILE instead of stdout
//   --stress-uncomp       under-compensation demo: deepen one set SOP so
//                         Eq. 1 requires t_del > 0, install none, show
//                         uniform Monte Carlo missing the trespass that the
//                         adversarial search finds; minimized witness JSON
//                         and VCD are written to disk
//   --stress-vcd FILE     witness waveform path (default stress_witness.vcd)
//   --stress-deepen N     max buffer levels tried when picking the
//                         under-compensated signal (default 2)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "baselines/baselines.hpp"
#include "bench_suite/benchmarks.hpp"
#include "csc/csc_solver.hpp"
#include "exec/thread_pool.hpp"
#include "faults/stress.hpp"
#include "logic/pla.hpp"
#include "netlist/verilog.hpp"
#include "nshot/synthesis.hpp"
#include "sg/dot.hpp"
#include "sg/properties.hpp"
#include "sg/regions.hpp"
#include "sim/conformance.hpp"
#include "stg/g_format.hpp"
#include "stg/reachability.hpp"
#include "stg/sg_format.hpp"
#include "util/strings.hpp"

namespace {

void usage() {
  std::puts(
      "usage: assassin_cli (<file.g|file.sg> | --benchmark NAME | --list)\n"
      "       [--exact] [--no-share] [--solve-csc] [--netlist] [--verilog]\n"
      "       [--dot SIGNAL] [--pla] [--regions] [--check N] [--vcd FILE]\n"
      "       [--jobs N] [--baselines] [--stress] [--stress-runs N] [--stress-factor F]\n"
      "       [--stress-out FILE] [--stress-uncomp] [--stress-vcd FILE]\n"
      "       [--stress-deepen N]");
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw nshot::Error("cannot write " + path);
  out << content;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nshot;
  std::string input_file, benchmark, dot_signal, vcd_file;
  bool list = false, exact = false, no_share = false, solve_csc = false;
  bool print_netlist = false, print_pla = false, print_regions = false, run_baselines = false;
  bool print_verilog = false, print_dot = false;
  bool stress = false, stress_uncomp = false;
  int check_runs = 8, stress_runs = 5, stress_deepen = 2;
  double stress_factor = 0.0;  // 0 = per-mode default (3.0 battery, 1.0 demo)
  std::string stress_out, stress_vcd = "stress_witness.vcd";

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--list") list = true;
      else if (arg == "--benchmark" && i + 1 < argc) benchmark = argv[++i];
      else if (arg == "--exact") exact = true;
      else if (arg == "--no-share") no_share = true;
      else if (arg == "--solve-csc") solve_csc = true;
      else if (arg == "--netlist") print_netlist = true;
      else if (arg == "--verilog") print_verilog = true;
      else if (arg == "--dot" && i + 1 < argc) { print_dot = true; dot_signal = argv[++i]; }
      else if (arg == "--pla") print_pla = true;
      else if (arg == "--regions") print_regions = true;
      else if (arg == "--baselines") run_baselines = true;
      else if (arg == "--check" && i + 1 < argc)
        check_runs = parse_int(argv[++i], 0, 1'000'000, "--check");
      else if (arg == "--jobs" && i + 1 < argc)
        exec::set_default_jobs(parse_int(argv[++i], 1, 4096, "--jobs"));
      else if (arg == "--vcd" && i + 1 < argc) vcd_file = argv[++i];
      else if (arg == "--stress") stress = true;
      else if (arg == "--stress-runs" && i + 1 < argc)
        stress_runs = parse_int(argv[++i], 1, 1'000'000, "--stress-runs");
      else if (arg == "--stress-factor" && i + 1 < argc)
        stress_factor = parse_double(argv[++i], 1.0, 100.0, "--stress-factor");
      else if (arg == "--stress-out" && i + 1 < argc) stress_out = argv[++i];
      else if (arg == "--stress-uncomp") stress_uncomp = true;
      else if (arg == "--stress-vcd" && i + 1 < argc) stress_vcd = argv[++i];
      else if (arg == "--stress-deepen" && i + 1 < argc)
        stress_deepen = parse_int(argv[++i], 1, 64, "--stress-deepen");
      else if (arg == "--help" || arg == "-h") { usage(); return 0; }
      else if (!arg.empty() && arg[0] != '-') input_file = arg;
      else { usage(); return 2; }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  if (list) {
    std::printf("%-15s %8s %6s %s\n", "name", "states*", "distr", "(* state count in the paper)");
    for (const auto& info : bench_suite::all_benchmarks())
      std::printf("%-15s %8d %6s\n", info.name.c_str(), info.paper_states,
                  info.nondistributive ? "no" : "yes");
    return 0;
  }
  if (input_file.empty() && benchmark.empty()) {
    usage();
    return 2;
  }

  try {
    sg::StateGraph graph = [&] {
      if (!benchmark.empty()) return bench_suite::build_benchmark(benchmark);
      std::ifstream stream(input_file);
      if (!stream) throw Error("cannot open " + input_file);
      std::stringstream buffer;
      buffer << stream.rdbuf();
      const bool is_sg_format = input_file.size() >= 3 &&
                                input_file.compare(input_file.size() - 3, 3, ".sg") == 0;
      if (is_sg_format) return stg::parse_sg(buffer.str());
      const stg::Stg net = stg::parse_g(buffer.str());
      if (solve_csc) {
        const auto solved = csc::solve_csc(net);
        if (!solved) throw Error("CSC solving failed within the signal budget");
        std::printf("CSC solved with %d inserted state signal(s):\n", solved->signals_added);
        for (const std::string& note : solved->insertions) std::printf("  %s\n", note.c_str());
        return solved->graph;
      }
      return stg::build_state_graph(net);
    }();

    std::printf("specification: %s — %d states, %zu input / %zu non-input signals\n",
                graph.name().c_str(), graph.num_states(), graph.input_signals().size(),
                graph.noninput_signals().size());
    std::printf("distributive: %s, single traversal: %s\n",
                sg::is_distributive(graph) ? "yes" : "no",
                sg::is_single_traversal(graph) ? "yes" : "no");

    if (print_regions)
      for (const auto& regions : sg::compute_all_regions(graph))
        std::printf("%s", regions.to_string(graph).c_str());

    core::SynthesisOptions options;
    options.exact = exact;
    options.share_products = !no_share;
    const core::SynthesisResult result = core::synthesize(graph, options);
    std::printf("\n%s", core::describe(graph, result).c_str());

    if (print_pla) std::printf("\n%s", logic::write_pla(result.cover).c_str());
    if (print_netlist) std::printf("\n%s", result.circuit.to_string().c_str());
    if (print_verilog)
      std::printf("\n%s",
                  netlist::write_verilog(result.circuit, gatelib::GateLibrary::standard())
                      .c_str());
    if (print_dot) {
      sg::DotOptions dot_options;
      dot_options.highlight_signal = graph.find_signal(dot_signal);
      std::printf("\n%s", sg::to_dot(graph, dot_options).c_str());
    }

    if (!vcd_file.empty()) {
      const sim::TracedRun traced = sim::record_vcd_trace(graph, result.circuit);
      std::ofstream out(vcd_file);
      if (!out) throw Error("cannot write " + vcd_file);
      out << traced.vcd;
      std::printf("\nwrote VCD trace (%ld transitions, %.1f time units) to %s\n",
                  traced.report.external_transitions, traced.report.simulated_time,
                  vcd_file.c_str());
    }

    if (check_runs > 0) {
      sim::ConformanceOptions copt;
      copt.runs = check_runs;
      const sim::ConformanceReport report = sim::check_conformance(graph, result.circuit, copt);
      std::printf("\nconformance: %s\n", report.summary().c_str());
      if (!report.clean()) return 1;
    }

    if (stress) {
      faults::StressOptions sopt;
      sopt.margin_runs = stress_runs;
      sopt.adversarial.stress_factor = stress_factor > 0.0 ? stress_factor : 3.0;
      const faults::StressReport report =
          faults::run_stress(graph, result.circuit, graph.name(), sopt);
      const std::string json = faults::stress_report_json(report);
      if (stress_out.empty()) {
        std::printf("\n%s\n", json.c_str());
      } else {
        write_file(stress_out, json);
        int failed = 0;
        for (const faults::FaultOutcome& outcome : report.outcomes)
          if (!outcome.survived) ++failed;
        std::printf(
            "\nstress: %zu signals, %zu faults (%d detected), min omega slack %.3f, "
            "min Eq.1 slack %.3f, adversarial best slack %.3f -> %s\n",
            report.signals.size(), report.outcomes.size(), failed, report.min_omega_slack,
            report.min_eq1_slack, report.adversarial.best_slack, stress_out.c_str());
      }
    }

    if (stress_uncomp) {
      // Deliberately break Eq. 1: deepen one signal's set SOP with buffers
      // (raising t_set0w) and install no compensating delay line, then show
      // that uniform Monte Carlo over stressed delay bounds misses the
      // trespass an adversarial search finds, minimizes and dumps.
      const auto noninputs = graph.noninput_signals();
      if (noninputs.empty()) throw Error("--stress-uncomp needs a non-input signal");
      const gatelib::GateLibrary& lib = gatelib::GateLibrary::standard();

      // Pick the tightest under-compensation available: the (signal, depth)
      // pair whose deepened set SOP makes Eq. 1 require the SMALLEST
      // positive t_del.  The violating delay region is then a thin sliver
      // at the corner of the delay box — exactly the kind of trespass a
      // uniform sweep misses and a guided search walks into.
      std::string target;
      int levels = 0;
      double required = faults::kNoMargin;
      for (const auto sid : noninputs) {
        const std::string& name = graph.signal(sid).name;
        for (int l = 1; l <= stress_deepen; ++l) {
          const netlist::Netlist candidate =
              faults::deepen_set_path(result.circuit, name, l);
          double shortfall = 0.0;
          for (const faults::Eq1Requirement& req : faults::eq1_requirements(candidate, lib))
            if (req.signal == name) shortfall = req.required_set - req.installed_set;
          if (shortfall <= 0.0) continue;  // still compensated; go deeper
          if (shortfall < required) {
            required = shortfall;
            target = name;
            levels = l;
          }
          break;  // deeper levels only increase the shortfall
        }
      }
      if (target.empty())
        throw Error("--stress-uncomp: no under-compensated variant within " +
                    std::to_string(stress_deepen) + " extra levels");
      const netlist::Netlist uncomp = faults::strip_delay_compensation(
          faults::deepen_set_path(result.circuit, target, levels));
      std::printf(
          "\nunder-compensated %s (+%d set levels): Eq.1 requires t_del_set >= %.2f, "
          "installed 0\n",
          target.c_str(), levels, required);

      // Default to the plain library interval: the deepened circuit's Eq. 1
      // shortfall makes a thin corner of the ordinary delay box hazardous,
      // which is the sharpest form of the demo.
      faults::AdversarialOptions aopt;
      aopt.stress_factor = stress_factor > 0.0 ? stress_factor : 1.0;
      const faults::MonteCarloResult mc =
          faults::stressed_monte_carlo(graph, uncomp, 200, aopt);
      std::printf("uniform Monte Carlo: %d/%d runs violate (min slack %.3f)\n",
                  mc.violating_runs, mc.runs, mc.min_slack);

      const faults::AdversarialResult adv = faults::adversarial_delay_search(graph, uncomp, aopt);
      std::printf("adversarial search: %s after %ld evaluations (best slack %.3f)\n",
                  adv.violation_found ? "violation found" : "no violation", adv.evaluations,
                  adv.best_slack);
      if (adv.violation_found) {
        faults::FaultScenario scenario;
        scenario.seed = adv.env_seed;
        scenario.delays = adv.delays;
        const faults::MinimizedWitness witness =
            faults::minimize_counterexample(graph, uncomp, scenario);
        const std::string json_path = stress_out.empty() ? "stress_witness.json" : stress_out;
        write_file(json_path, faults::witness_json(witness, uncomp));
        write_file(stress_vcd, witness.vcd);
        std::printf(
            "minimized witness: %d off-nominal gate delays (%d reset to nominal, "
            "%ld replays) -> %s, %s\n",
            witness.off_nominal_gates, witness.delays_reset, witness.evaluations,
            json_path.c_str(), stress_vcd.c_str());
        if (!witness.report.violations.empty())
          std::printf("  %s: %s\n",
                      sim::violation_kind_name(witness.report.violations.front().kind),
                      witness.report.violations.front().description.c_str());
      }
    }

    if (run_baselines) {
      auto show = [&](const char* name, const baselines::BaselineOutcome& outcome) {
        if (outcome.ok())
          std::printf("%-13s area %7.0f  delay %4.1f\n", name, outcome.result->stats.area,
                      outcome.result->stats.delay);
        else
          std::printf("%-13s %s\n", name, baselines::failure_text(*outcome.failure).c_str());
      };
      std::printf("\nbaseline comparison:\n");
      std::printf("%-13s area %7.0f  delay %4.1f\n", "n-shot", result.stats.area,
                  result.stats.delay);
      show("sis-like", baselines::synthesize_sis_like(graph));
      show("syn-like", baselines::synthesize_syn_like(graph));
      show("complex-gate", baselines::synthesize_complex_gate(graph));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
