# Empty dependencies file for bench_fig4_mhs_response.
# This may be replaced when dependencies are built.
