// espresso_cli — standalone driver for the embedded two-level minimizer
// (the paper's step 5: "use any multi-output conventional two-level
// minimizer").  Reads a PLA file (espresso input format), minimizes it
// heuristically or exactly, verifies the result against the
// specification, and writes the minimized PLA to stdout.
//
//   espresso_cli [--exact] [--stats] <file.pla>
//   echo "..." | espresso_cli -        (read from stdin)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "logic/espresso.hpp"
#include "util/error.hpp"
#include "logic/exact.hpp"
#include "logic/pla.hpp"
#include "logic/verify.hpp"

int main(int argc, char** argv) {
  using namespace nshot;
  bool exact = false, stats = false;
  std::string input_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--exact") exact = true;
    else if (arg == "--stats") stats = true;
    else if (arg == "--help" || arg == "-h") {
      std::puts("usage: espresso_cli [--exact] [--stats] (<file.pla> | -)");
      return 0;
    } else {
      input_file = arg;
    }
  }
  if (input_file.empty()) {
    std::fprintf(stderr, "usage: espresso_cli [--exact] [--stats] (<file.pla> | -)\n");
    return 2;
  }

  try {
    std::string text;
    if (input_file == "-") {
      std::stringstream buffer;
      buffer << std::cin.rdbuf();
      text = buffer.str();
    } else {
      std::ifstream stream(input_file);
      if (!stream) throw Error("cannot open " + input_file);
      std::stringstream buffer;
      buffer << stream.rdbuf();
      text = buffer.str();
    }

    const logic::PlaFile pla = logic::parse_pla(text);
    const logic::Cover cover =
        exact ? logic::exact_minimize(pla.spec) : logic::espresso(pla.spec);

    const logic::VerifyResult verified = logic::verify_cover(pla.spec, cover);
    if (!verified.ok) throw Error("internal: cover verification failed: " + verified.message);

    if (stats)
      std::fprintf(stderr, "inputs %d, outputs %d, on-pairs %zu -> %zu cubes, %d literals (%s)\n",
                   pla.spec.num_inputs(), pla.spec.num_outputs(), pla.spec.on_pair_count(),
                   cover.size(), cover.literal_count(), exact ? "exact" : "heuristic");
    std::fputs(logic::write_pla(cover).c_str(), stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
