#include "exec/cancel.hpp"

#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>

#include "util/error.hpp"

namespace nshot::exec {

struct CancelToken::State {
  std::atomic<bool> cancelled{false};
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  mutable std::mutex mutex;          // guards reason
  std::string reason;

  /// Deadline tokens read the clock lazily: flag first, clock second.
  bool fired() const {
    if (cancelled.load(std::memory_order_acquire)) return true;
    if (!has_deadline) return false;
    return std::chrono::steady_clock::now() >= deadline;
  }

  void fire(const std::string& why) {
    std::lock_guard<std::mutex> lock(mutex);
    if (!cancelled.exchange(true, std::memory_order_acq_rel) && reason.empty()) reason = why;
  }

  std::string why() const {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (!reason.empty()) return reason;
    }
    if (cancelled.load(std::memory_order_acquire)) return "cancelled";
    if (has_deadline && std::chrono::steady_clock::now() >= deadline)
      return "deadline exceeded";
    return "";
  }
};

namespace {

// The thread-current token state.  A raw shared_ptr copy per CancelScope;
// checkpoints read the pointer without refcount traffic.
thread_local std::shared_ptr<CancelToken::State> t_current;

// Deadline tokens only consult the steady clock every kDeadlineStride-th
// checkpoint on a given thread, bounding the cost of checkpointing very
// tight loops while keeping overrun detection within a few microseconds
// of work.
constexpr int kDeadlineStride = 256;
thread_local int t_stride = 0;

}  // namespace

CancelToken::CancelToken() : state_(std::make_shared<State>()) {}

CancelToken CancelToken::with_deadline(double budget_ms) {
  CancelToken token;
  if (budget_ms > 0) {
    token.state_->has_deadline = true;
    token.state_->deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(budget_ms));
  }
  return token;
}

void CancelToken::cancel(const std::string& reason) const { state_->fire(reason); }

bool CancelToken::cancelled() const { return state_->fired(); }

std::string CancelToken::reason() const { return state_->why(); }

double CancelToken::remaining_ms() const {
  if (state_->cancelled.load(std::memory_order_acquire)) return 0.0;
  if (!state_->has_deadline) return std::numeric_limits<double>::infinity();
  const auto left = state_->deadline - std::chrono::steady_clock::now();
  const double ms = std::chrono::duration<double, std::milli>(left).count();
  return ms > 0 ? ms : 0.0;
}

void CancelToken::checkpoint() const {
  if (state_->fired())
    throw Error(ErrorCode::kDeadlineExceeded,
                "work cancelled: " + state_->why());
}

CancelScope::CancelScope(const CancelToken& token) : previous_(std::move(t_current)) {
  t_current = token.state_;
}

CancelScope::~CancelScope() { t_current = std::move(previous_); }

void checkpoint() {
  const std::shared_ptr<CancelToken::State>& state = t_current;
  if (!state) return;
  if (state->cancelled.load(std::memory_order_acquire)) {
    throw Error(ErrorCode::kDeadlineExceeded, "work cancelled: " + state->why());
  }
  if (!state->has_deadline) return;
  if (++t_stride < kDeadlineStride) return;
  t_stride = 0;
  if (std::chrono::steady_clock::now() >= state->deadline)
    throw Error(ErrorCode::kDeadlineExceeded, "work cancelled: " + state->why());
}

bool cancel_requested() {
  const std::shared_ptr<CancelToken::State>& state = t_current;
  return state && state->fired();
}

CancelToken current_token() {
  CancelToken token;
  if (t_current) token.state_ = t_current;
  return token;
}

namespace detail {

std::shared_ptr<void> capture_current() { return t_current; }

PropagateScope::PropagateScope(const std::shared_ptr<void>& state) {
  if (!state) return;
  previous_ = std::move(t_current);
  t_current = std::static_pointer_cast<CancelToken::State>(state);
  installed_ = true;
}

PropagateScope::~PropagateScope() {
  if (installed_) t_current = std::static_pointer_cast<CancelToken::State>(previous_);
}

}  // namespace detail

struct Watchdog::Impl {
  CancelToken token;
  std::string reason;
  std::chrono::steady_clock::time_point deadline;
  std::mutex mutex;
  std::condition_variable cv;
  bool disarmed = false;
  std::thread thread;

  Impl(const CancelToken& t, double budget_ms, std::string why)
      : token(t),
        reason(std::move(why)),
        deadline(std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double, std::milli>(budget_ms > 0 ? budget_ms : 0))) {
    thread = std::thread([this] { run(); });
  }

  void run() {
    std::unique_lock<std::mutex> lock(mutex);
    while (!disarmed) {
      if (token.cancelled()) return;
      if (cv.wait_until(lock, deadline) == std::cv_status::timeout) {
        if (!disarmed) token.cancel(reason);
        return;
      }
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      disarmed = true;
    }
    cv.notify_all();
    thread.join();
  }
};

Watchdog::Watchdog(const CancelToken& token, double budget_ms, std::string reason)
    : impl_(std::make_unique<Impl>(token, budget_ms, std::move(reason))) {}

Watchdog::~Watchdog() = default;

}  // namespace nshot::exec
