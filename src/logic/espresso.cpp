#include "logic/espresso.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace nshot::logic {
namespace {

/// Cap on how many uncovered cubes are scanned when scoring an EXPAND
/// direction; keeps the heuristic near-linear on very large state graphs.
constexpr std::size_t kGainScanCap = 2048;

/// One (minterm, output) pair of the on-set.
struct OnPair {
  std::uint64_t code;
  int output;
};

std::vector<OnPair> collect_on_pairs(const TwoLevelSpec& spec) {
  std::vector<OnPair> pairs;
  for (int o = 0; o < spec.num_outputs(); ++o)
    for (const std::uint64_t code : spec.on(o)) pairs.push_back({code, o});
  return pairs;
}

/// Initial cover.  With sharing, one cube per distinct on-minterm feeding
/// every output for which that minterm is on; without sharing, one cube
/// per (minterm, output) pair so each function is minimized independently
/// (expansion never raises output parts in that mode).
Cover initial_cover(const TwoLevelSpec& spec, bool share_outputs) {
  Cover cover(spec.num_inputs(), spec.num_outputs());
  if (!share_outputs) {
    for (int o = 0; o < spec.num_outputs(); ++o)
      for (const std::uint64_t code : spec.on(o))
        cover.add(Cube::minterm(code, spec.num_inputs(), 1ULL << o));
    return cover;
  }
  std::vector<std::uint64_t> codes;
  for (int o = 0; o < spec.num_outputs(); ++o)
    codes.insert(codes.end(), spec.on(o).begin(), spec.on(o).end());
  std::sort(codes.begin(), codes.end());
  codes.erase(std::unique(codes.begin(), codes.end()), codes.end());

  for (const std::uint64_t code : codes) {
    std::uint64_t outs = 0;
    for (int o = 0; o < spec.num_outputs(); ++o) {
      if (std::binary_search(spec.on(o).begin(), spec.on(o).end(), code)) outs |= (1ULL << o);
    }
    if (outs != 0) cover.add(Cube::minterm(code, spec.num_inputs(), outs));
  }
  return cover;
}

}  // namespace

CoverCost cost_of(const Cover& cover) {
  return CoverCost{cover.size(), cover.literal_count()};
}

void espresso_expand(Cover& cover, const TwoLevelSpec& spec, bool share_outputs) {
  const std::size_t n = cover.size();
  obs::count(obs::Counter::kCubesExpanded, static_cast<long>(n));
  std::vector<bool> done(n, false);  // already expanded or absorbed
  std::vector<Cube> result;
  result.reserve(n);

  // Expand narrow cubes first: they are the least likely to be absorbed.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return cover[a].literal_count() > cover[b].literal_count();
  });

  for (const std::size_t idx : order) {
    if (done[idx]) continue;
    done[idx] = true;
    Cube cube = cover[idx];

    // Greedy literal raising: at each step raise the valid direction that
    // absorbs the most still-pending cubes.
    bool progress = true;
    while (progress) {
      progress = false;
      int best_var = -1;
      long best_gain = -1;
      for (int v = 0; v < spec.num_inputs(); ++v) {
        if (cube.var_is_free(v)) continue;
        Cube candidate = cube;
        candidate.raise_var(v);
        if (!spec.cube_is_valid(candidate)) continue;
        long gain = 0;
        std::size_t scanned = 0;
        for (const std::size_t j : order) {
          if (done[j]) continue;
          if (candidate.contains(cover[j])) ++gain;
          if (++scanned >= kGainScanCap) break;
        }
        if (gain > best_gain) {
          best_gain = gain;
          best_var = v;
        }
      }
      if (best_var >= 0) {
        cube.raise_var(best_var);
        progress = true;
      }
    }

    // Output raising: let this AND gate feed further outputs when valid and
    // useful (covers at least one on-minterm of that output).
    if (share_outputs) {
      for (int o = 0; o < spec.num_outputs(); ++o) {
        if (cube.has_output(o)) continue;
        if (!spec.cube_valid_for_output(cube, o)) continue;
        bool useful = false;
        for (const std::uint64_t code : spec.on(o)) {
          if (cube.covers_minterm(code)) {
            useful = true;
            break;
          }
        }
        if (useful) cube.add_output(o);
      }
    }

    // Absorb pending cubes now contained in the expanded cube.
    for (const std::size_t j : order)
      if (!done[j] && cube.contains(cover[j])) done[j] = true;

    result.push_back(cube);
  }

  Cover expanded(spec.num_inputs(), spec.num_outputs());
  for (const Cube& c : result) expanded.add(c);
  expanded.remove_contained();
  cover = std::move(expanded);
}

void espresso_irredundant(Cover& cover, const TwoLevelSpec& spec) {
  const std::vector<OnPair> pairs = collect_on_pairs(spec);
  const std::size_t n = cover.size();

  // For every on-pair, the set of cubes that cover it.
  std::vector<std::vector<std::size_t>> coverers(pairs.size());
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    for (std::size_t i = 0; i < n; ++i)
      if (cover[i].has_output(pairs[p].output) && cover[i].covers_minterm(pairs[p].code))
        coverers[p].push_back(i);
    NSHOT_ASSERT(!coverers[p].empty(), "cover lost an on-minterm before IRREDUNDANT");
  }

  std::vector<bool> selected(n, false);
  std::vector<bool> pair_done(pairs.size(), false);
  std::size_t remaining = pairs.size();

  auto select = [&](std::size_t cube_index) {
    if (selected[cube_index]) return;
    selected[cube_index] = true;
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      if (pair_done[p]) continue;
      for (const std::size_t i : coverers[p]) {
        if (i == cube_index) {
          pair_done[p] = true;
          --remaining;
          break;
        }
      }
    }
  };

  // Relatively essential cubes first.
  for (std::size_t p = 0; p < pairs.size(); ++p)
    if (coverers[p].size() == 1) select(coverers[p][0]);

  // Greedy set cover for the rest.
  while (remaining > 0) {
    std::vector<std::size_t> uncovered_count(n, 0);
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      if (pair_done[p]) continue;
      for (const std::size_t i : coverers[p]) ++uncovered_count[i];
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i)
      if (uncovered_count[i] > uncovered_count[best]) best = i;
    NSHOT_ASSERT(uncovered_count[best] > 0, "greedy IRREDUNDANT cannot make progress");
    select(best);
  }

  Cover pruned(cover.num_inputs(), cover.num_outputs());
  for (std::size_t i = 0; i < n; ++i)
    if (selected[i]) pruned.add(cover[i]);
  cover = std::move(pruned);
}

void espresso_reduce(Cover& cover, const TwoLevelSpec& spec) {
  const std::vector<OnPair> pairs = collect_on_pairs(spec);

  // Process widest cubes first so they shed minterms to the narrow ones.
  std::vector<std::size_t> order(cover.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return cover[a].literal_count() < cover[b].literal_count();
  });

  std::vector<bool> dead(cover.size(), false);
  for (const std::size_t i : order) {
    // On-pairs for which cube i is currently the only coverer.
    std::optional<Cube> shrunk;
    std::uint64_t outs = 0;
    for (const OnPair& p : pairs) {
      if (!cover[i].has_output(p.output) || !cover[i].covers_minterm(p.code)) continue;
      bool elsewhere = false;
      for (std::size_t j = 0; j < cover.size() && !elsewhere; ++j)
        elsewhere = j != i && !dead[j] && cover[j].has_output(p.output) &&
                    cover[j].covers_minterm(p.code);
      if (elsewhere) continue;
      const Cube point = Cube::minterm(p.code, cover.num_inputs(), 0);
      shrunk = shrunk ? shrunk->supercube(point) : point;
      outs |= (1ULL << p.output);
    }
    if (!shrunk) {
      dead[i] = true;
    } else {
      shrunk->set_outputs(outs);
      cover[i] = *shrunk;
    }
  }

  Cover reduced(cover.num_inputs(), cover.num_outputs());
  for (std::size_t i = 0; i < cover.size(); ++i)
    if (!dead[i]) reduced.add(cover[i]);
  cover = std::move(reduced);
}

Cover espresso(const TwoLevelSpec& spec, const EspressoOptions& options) {
  const obs::Span span("espresso");
  TwoLevelSpec normalized = spec;
  normalized.normalize();
  normalized.validate();

  Cover cover = initial_cover(normalized, options.share_outputs);
  if (cover.empty()) return cover;

  espresso_expand(cover, normalized, options.share_outputs);
  espresso_irredundant(cover, normalized);
  Cover best = cover;
  CoverCost best_cost = cost_of(best);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    espresso_reduce(cover, normalized);
    espresso_expand(cover, normalized, options.share_outputs);
    espresso_irredundant(cover, normalized);
    const CoverCost cost = cost_of(cover);
    if (!(cost < best_cost)) break;
    best = cover;
    best_cost = cost;
  }
  best.remove_contained();
  return best;
}

}  // namespace nshot::logic
