// Randomized invariants of the region machinery (Definitions 5-9,
// Properties 1-2): over fuzzed controller SGs, every excitation region
// must trap its output (Prop 1), reach a trigger region without firing the
// output (Prop 2), and the Tarjan-based trigger regions must equal a naive
// reachability-closure reference for "bottom SCCs of the ER minus *a
// arcs".  Single traversal must agree between the per-region check and the
// whole-graph predicate.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "bench_suite/generators.hpp"
#include "sg/properties.hpp"
#include "sg/regions.hpp"
#include "util/rng.hpp"

namespace nshot {
namespace {

/// Random parallel-chains controller (generator family of
/// random_controller_test.cpp, different seed stream).
std::string random_chains(Rng& rng, int index) {
  const int width = 2 + static_cast<int>(rng.next_below(3));
  std::vector<std::vector<std::string>> chains;
  std::vector<std::string> inputs, outputs;
  for (int c = 0; c < width; ++c) {
    const int length = 1 + static_cast<int>(rng.next_below(3));
    std::vector<std::string> chain;
    for (int k = 0; k < length; ++k) {
      const std::string name = "c" + std::to_string(c) + "_" + std::to_string(k);
      chain.push_back(name);
      (k == 0 && rng.next_bool(0.7) ? inputs : outputs).push_back(name);
    }
    chains.push_back(std::move(chain));
  }
  return bench_suite::parallel_chains_g("inv" + std::to_string(index), "m",
                                        /*master_is_input=*/true, chains, inputs, outputs);
}

/// Naive reference for the trigger regions of `er`: the bottom SCCs of the
/// subgraph of ER(*a) induced by the arcs that do not fire *a, computed by
/// full reachability closure (O(|ER|^2) — fine at fuzz sizes, and sharing
/// no code with the Tarjan implementation under test).
std::vector<std::vector<sg::StateId>> naive_trigger_regions(const sg::StateGraph& g,
                                                            const sg::ExcitationRegion& er) {
  const std::vector<sg::StateId>& states = er.states;
  const auto index_of = [&](sg::StateId s) -> int {
    const auto it = std::find(states.begin(), states.end(), s);
    return it == states.end() ? -1 : static_cast<int>(it - states.begin());
  };

  // reach[u] = set of ER-internal states reachable from u over non-*a arcs.
  const int n = static_cast<int>(states.size());
  std::vector<std::vector<bool>> reach(static_cast<std::size_t>(n),
                                       std::vector<bool>(static_cast<std::size_t>(n), false));
  for (int u = 0; u < n; ++u) {
    std::vector<int> stack{u};
    reach[static_cast<std::size_t>(u)][static_cast<std::size_t>(u)] = true;
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (const sg::Edge& e : g.out_edges(states[static_cast<std::size_t>(v)])) {
        if (e.label.signal == er.signal) continue;  // fires *a
        const int w = index_of(e.target);
        if (w < 0) continue;  // leaves the ER
        if (!reach[static_cast<std::size_t>(u)][static_cast<std::size_t>(w)]) {
          reach[static_cast<std::size_t>(u)][static_cast<std::size_t>(w)] = true;
          stack.push_back(w);
        }
      }
    }
  }

  // SCC of u = { v : u and v reach each other }; bottom iff reach(u) stays
  // inside the SCC.
  std::vector<std::vector<sg::StateId>> bottoms;
  std::vector<bool> assigned(static_cast<std::size_t>(n), false);
  for (int u = 0; u < n; ++u) {
    if (assigned[static_cast<std::size_t>(u)]) continue;
    std::vector<int> scc;
    for (int v = 0; v < n; ++v)
      if (reach[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] &&
          reach[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)])
        scc.push_back(v);
    for (const int v : scc) assigned[static_cast<std::size_t>(v)] = true;
    bool bottom = true;
    for (const int v : scc)
      for (int w = 0; w < n; ++w)
        if (reach[static_cast<std::size_t>(v)][static_cast<std::size_t>(w)] &&
            !reach[static_cast<std::size_t>(w)][static_cast<std::size_t>(v)])
          bottom = false;
    if (!bottom) continue;
    std::vector<sg::StateId> region;
    for (const int v : scc) region.push_back(states[static_cast<std::size_t>(v)]);
    std::sort(region.begin(), region.end());
    bottoms.push_back(std::move(region));
  }
  std::sort(bottoms.begin(), bottoms.end());
  return bottoms;
}

std::vector<std::vector<sg::StateId>> sorted_regions(
    const std::vector<std::vector<sg::StateId>>& regions) {
  std::vector<std::vector<sg::StateId>> out = regions;
  for (std::vector<sg::StateId>& r : out) std::sort(r.begin(), r.end());
  std::sort(out.begin(), out.end());
  return out;
}

void check_graph(const sg::StateGraph& g, const std::string& context) {
  bool all_singleton = true;
  for (const sg::SignalId a : g.noninput_signals()) {
    const sg::SignalRegions regions = sg::compute_regions(g, a);
    for (const sg::ExcitationRegion& er : regions.regions) {
      // Property 1: arcs leaving the ER fire *a.
      EXPECT_TRUE(sg::verify_output_trapping(g, er))
          << context << ": output trapping fails for signal " << g.signal(a).name;
      // Property 2: every ER state reaches a trigger region without *a.
      EXPECT_TRUE(sg::verify_trigger_reachability(g, er))
          << context << ": trigger reachability fails for signal " << g.signal(a).name;
      // The Tarjan bottom-SCCs equal the naive reachability reference.
      EXPECT_EQ(sorted_regions(er.trigger_regions), naive_trigger_regions(g, er))
          << context << ": trigger regions diverge for signal " << g.signal(a).name;
      // Per-region single traversal = "every trigger region is a singleton".
      bool singleton = true;
      for (const std::vector<sg::StateId>& tr : er.trigger_regions)
        if (tr.size() != 1) singleton = false;
      EXPECT_EQ(er.single_traversal(), singleton) << context;
      all_singleton = all_singleton && singleton;
    }
  }
  // Whole-graph predicate agrees with the conjunction over all regions.
  EXPECT_EQ(sg::is_single_traversal(g), all_singleton) << context;
}

class RegionInvariantsTest : public ::testing::TestWithParam<int> {};

TEST_P(RegionInvariantsTest, FuzzedControllersSatisfyRegionInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 0xB5297A4DULL + 11);
  const std::string g_text = random_chains(rng, GetParam());
  const sg::StateGraph g = bench_suite::build_g(g_text);
  ASSERT_TRUE(sg::check_implementability(g).ok()) << g_text;
  check_graph(g, g_text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionInvariantsTest, ::testing::Range(1, 31));

TEST(RegionInvariantsTest, BenchmarkSuiteSatisfiesRegionInvariants) {
  // The real circuits exercise shapes the fuzzer rarely hits
  // (non-distributive SGs, multi-state trigger regions).
  for (const auto& info : bench_suite::all_benchmarks()) {
    if (info.paper_states > 300) continue;  // keep the naive O(n^2) cheap
    check_graph(info.build(), info.name);
  }
}

}  // namespace
}  // namespace nshot
