file(REMOVE_RECURSE
  "CMakeFiles/dcc_decoder_frontend.dir/dcc_decoder_frontend.cpp.o"
  "CMakeFiles/dcc_decoder_frontend.dir/dcc_decoder_frontend.cpp.o.d"
  "dcc_decoder_frontend"
  "dcc_decoder_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcc_decoder_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
