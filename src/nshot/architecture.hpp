// Mapping of minimized set/reset covers onto the N-SHOT architecture
// (Figure 3 of the paper).
//
// Per non-input signal a the circuit contains:
//   * the shared AND plane (one AND gate per cube; cubes shared between
//     outputs are instantiated once),
//   * an OR tree per set/reset function,
//   * the two acknowledgement AND gates: gated_set = set_sop & enable_set,
//     gated_reset = reset_sop & enable_reset, where enable_set is derived
//     from the qb rail of the MHS flip-flop (optionally through the local
//     delay compensation line) and enable_reset from the q rail,
//   * one MHS flip-flop with dual-rail outputs a (q) and a_b (qb).
//
// Negative literals of non-input signals use the qb rail directly (the
// flip-flop is dual-rail encoded, so no inverter is needed); negative
// literals of input signals use the inversion bubble of the AND gate (the
// paper assumes AND gates with input inversions as basic gates).
#pragma once

#include <vector>

#include "logic/cover.hpp"
#include "netlist/netlist.hpp"
#include "nshot/delay_requirement.hpp"
#include "nshot/spec_derivation.hpp"
#include "sg/state_graph.hpp"

namespace nshot::core {

struct ArchitectureOptions {
  /// Insert the local delay compensation line when Eq. 1 requires it.
  bool insert_delay_lines = true;
};

/// Initialization analysis of one MHS flip-flop (Section IV-F).
struct InitInfo {
  bool value = false;     // required initial output value (value of a in s0)
  bool explicit_reset = false;  // an explicit reset product term is needed
};

InitInfo analyze_initialization(const sg::StateGraph& sg, sg::SignalId a,
                                const logic::Cover& cover, const OutputIndex& index);

/// Build the complete N-SHOT netlist for `sg` from the minimized joint
/// cover.  `delays` holds the per-signal Eq. 1 results, in the order of
/// derived.outputs.
netlist::Netlist build_nshot_netlist(const sg::StateGraph& sg, const DerivedSpec& derived,
                                     const logic::Cover& cover,
                                     const std::vector<DelayRequirement>& delays,
                                     const ArchitectureOptions& options = {});

}  // namespace nshot::core
