.model undecl
.inputs a
.outputs c
.graph
a+ c+
c+ q+
q+ a-
a- c-
c- a+
.marking { <c-,a+> }
.end
