#include "serve/server.hpp"

#include <utility>

#include "exec/thread_pool.hpp"
#include "nshot/journal.hpp"
#include "nshot/synthesis.hpp"
#include "obs/obs.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace nshot::serve {

namespace {

/// Effective request deadline for admission: the override if present and
/// parsable, else the server's base RunConfig deadline.  Unparsable
/// values are treated as "no deadline" here — submit() will classify them
/// as kInputInvalid when the request actually runs.
double admission_deadline_ms(const PipelineOptions& base, const Request& request) {
  const auto it = request.overrides.find("deadline_ms");
  if (it == request.overrides.end()) return base.run.deadline_ms;
  try {
    return parse_double(it->second, 0, 1e9, "deadline_ms");
  } catch (const std::exception&) {
    return 0.0;
  }
}

PipelineOptions server_pipeline(const ServeOptions& options) {
  PipelineOptions pipeline = options.pipeline;
  pipeline.label = options.label;
  return pipeline;
}

}  // namespace

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      pipeline_(server_pipeline(options_)),
      queue_(options_.admission) {
  journaled_ = read_journal(options_.journal_path);
  if (!options_.journal_path.empty()) {
    journal_out_ = std::make_unique<std::ofstream>(options_.journal_path, std::ios::app);
    NSHOT_REQUIRE(static_cast<bool>(*journal_out_),
                  "cannot open serve journal " + options_.journal_path);
  }
}

Server::~Server() { drain(); }

void Server::finish_rejected(const std::shared_ptr<Job>& job, const std::string& id,
                             ErrorCode code, const std::string& message) {
  // Called without the lock held: rejection callbacks run inline on the
  // rejecting thread.
  obs::count(obs::Counter::kServeRejected);
  job->done(rejection(id, code, message));
}

void Server::enqueue(const WireRequest& wire, ResponseCallback done) {
  auto job = std::make_shared<Job>(Job{wire, std::move(done)});
  Ticket ticket;
  ticket.id = wire.request.id;
  ticket.client = wire.client;
  ticket.klass = wire.request.kind.empty() ? "batch" : wire.request.kind;
  ticket.deadline_ms = admission_deadline_ms(options_.pipeline, wire.request);

  std::string reason;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (draining_) {
      ++stats_.rejected;
      lock.unlock();
      finish_rejected(job, ticket.id, ErrorCode::kResourceExhausted,
                      "draining: server is shutting down");
      return;
    }
    ticket.seq = next_seq_++;
    if (!queue_.offer(ticket, &reason)) {
      ++stats_.rejected;
      lock.unlock();
      finish_rejected(job, ticket.id, ErrorCode::kResourceExhausted, reason);
      return;
    }
    ++stats_.accepted;
    jobs_[ticket.seq] = std::move(job);
    obs::count(obs::Counter::kServeAdmitted);
    pump_locked();
  }
}

std::future<Response> Server::enqueue(const WireRequest& wire) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();
  enqueue(wire, [promise](const Response& response) { promise->set_value(response); });
  return future;
}

void Server::pump_locked() {
  // Dispatch every currently runnable ticket onto the shared pool.  Must
  // be called with mutex_ held; re-entered from completion handlers, so
  // the queue keeps flowing without a dedicated dispatcher thread.
  while (std::optional<Ticket> ticket = queue_.take()) {
    const auto it = jobs_.find(ticket->seq);
    if (it == jobs_.end()) {  // evicted by a concurrent drain
      queue_.complete(ticket->client, 0.0);
      continue;
    }
    std::shared_ptr<Job> job = std::move(it->second);
    jobs_.erase(it);
    ++running_;
    exec::ThreadPool::shared().submit(
        [this, ticket = std::move(*ticket), job = std::move(job)]() mutable {
          run_job(std::move(ticket), std::move(job));
        });
  }
}

void Server::run_job(Ticket ticket, std::shared_ptr<Job> job) {
  const Response response = pipeline_.submit(job->wire.request);
  obs::count(obs::Counter::kServeCompleted);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.completed;
    if (!response.outcome.ok()) ++stats_.failed;
    if (journal_out_) {
      const BatchRunResult record = batch_result(response);
      *journal_out_ << journal_line(record) << "\n" << std::flush;
      journaled_[record.id] = journal_line(record);
    }
    queue_.complete(ticket.client, response.elapsed_ms);
    pump_locked();
  }
  job->done(response);
  {
    // Only now does drain() consider the job finished: the transport's
    // completion callback (response file / socket write) has returned.
    std::lock_guard<std::mutex> lock(mutex_);
    --running_;
  }
  idle_cv_.notify_all();
}

std::string Server::journaled(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = journaled_.find(id);
  return it == journaled_.end() ? std::string() : it->second;
}

void Server::count_resumed() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.resumed;
}

void Server::drain() {
  std::vector<std::pair<std::shared_ptr<Job>, std::string>> evicted;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    draining_ = true;
    for (const Ticket& ticket : queue_.evict_queued()) {
      const auto it = jobs_.find(ticket.seq);
      if (it == jobs_.end()) continue;
      evicted.emplace_back(std::move(it->second), ticket.id);
      jobs_.erase(it);
      ++stats_.rejected;
    }
  }
  for (const auto& [job, id] : evicted)
    finish_rejected(job, id, ErrorCode::kResourceExhausted,
                    "draining: request evicted before execution");
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] { return queue_.inflight() == 0 && running_ == 0; });
}

bool Server::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

ServeStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServeStats stats = stats_;
  stats.queued = queue_.queued();
  stats.inflight = queue_.inflight();
  stats.service_estimate_ms = queue_.service_estimate_ms();
  const core::MinimizationCacheStats memo = core::minimization_cache_stats();
  stats.memo_hits = memo.hits;
  stats.memo_misses = memo.misses;
  return stats;
}

std::string ServeStats::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("accepted").value(accepted);
  json.key("rejected").value(rejected);
  json.key("completed").value(completed);
  json.key("failed").value(failed);
  json.key("resumed").value(resumed);
  json.key("queued").value(queued);
  json.key("inflight").value(inflight);
  json.key("service_estimate_ms").value(service_estimate_ms);
  json.key("memo_hits").value(memo_hits);
  json.key("memo_misses").value(memo_misses);
  json.end_object();
  return json.str();
}

std::string Server::report_json() const { return pipeline_.report_json(); }

std::string Server::trace_json() const { return pipeline_.trace_json(); }

}  // namespace nshot::serve
