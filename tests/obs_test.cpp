// Observability-layer tests: span nesting across thread-pool workers,
// counter determinism under different worker counts, the deterministic
// exporters' byte-stability (including golden files), the RunConfig
// extraction's source compatibility, and the nshot::Pipeline facade.
//
// Regenerate the golden exports after an INTENDED format change with:
//   NSHOT_UPDATE_GOLDEN=1 ./obs_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "bench_suite/benchmarks.hpp"
#include "exec/thread_pool.hpp"
#include "faults/stress.hpp"
#include "logic/exact.hpp"
#include "nshot/pipeline.hpp"
#include "nshot/synthesis.hpp"
#include "obs/obs.hpp"
#include "sim/conformance.hpp"

namespace nshot {
namespace {

// ---------------------------------------------------------------------------
// Core span/counter mechanics
// ---------------------------------------------------------------------------

TEST(ObsTest, DisabledCallsAreNoOps) {
  ASSERT_FALSE(obs::session_active());
  ASSERT_FALSE(obs::enabled());
  // None of these may crash or allocate a session.
  obs::count(obs::Counter::kStatesVisited, 7);
  obs::gauge(obs::Gauge::kOmegaSlack, 1.5);
  { const obs::Span span("orphan"); }
  ASSERT_FALSE(obs::session_active());
}

TEST(ObsTest, SessionCollectsCountersAndGauges) {
  obs::Session session("test");
  ASSERT_TRUE(obs::session_active());
  ASSERT_TRUE(obs::enabled());
  obs::count(obs::Counter::kStatesVisited, 5);
  obs::count(obs::Counter::kStatesVisited, 3);
  obs::gauge(obs::Gauge::kOmegaSlack, 2.0);
  obs::gauge(obs::Gauge::kOmegaSlack, -1.0);
  obs::gauge(obs::Gauge::kOmegaSlack, 4.0);
  EXPECT_EQ(session.counter_total(obs::Counter::kStatesVisited), 8);
  const obs::GaugeStats stats = session.gauge_stats(obs::Gauge::kOmegaSlack);
  EXPECT_EQ(stats.count, 3);
  EXPECT_DOUBLE_EQ(stats.min, -1.0);
  EXPECT_DOUBLE_EQ(stats.max, 4.0);
  EXPECT_DOUBLE_EQ(stats.sum, 5.0);
}

TEST(ObsTest, SessionScopesTheEnabledFlag) {
  { obs::Session session("test"); }
  EXPECT_FALSE(obs::enabled());
  EXPECT_FALSE(obs::session_active());
  // A fresh session starts from zero even though the thread buffers are
  // reused.
  obs::Session session("test");
  EXPECT_EQ(session.counter_total(obs::Counter::kStatesVisited), 0);
  EXPECT_TRUE(session.canonical_spans().empty());
}

std::vector<obs::CanonicalSpan> spans_of_parallel_region(int jobs) {
  obs::Session session("test");
  {
    const obs::Span outer("outer");
    exec::parallel_for(
        6, [](int i) { const obs::Span span("item", i); }, jobs);
  }
  return session.canonical_spans();
}

TEST(ObsTest, WorkerSpansNestUnderSubmitterContext) {
  for (const int jobs : {1, 4}) {
    const std::vector<obs::CanonicalSpan> spans = spans_of_parallel_region(jobs);
    ASSERT_EQ(spans.size(), 7u) << "jobs=" << jobs;
    EXPECT_EQ(spans[0].path, "outer");
    EXPECT_EQ(spans[0].depth, 1);
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(spans[static_cast<std::size_t>(i + 1)].path, "outer/item") << "jobs=" << jobs;
      EXPECT_EQ(spans[static_cast<std::size_t>(i + 1)].index, i) << "jobs=" << jobs;
      EXPECT_EQ(spans[static_cast<std::size_t>(i + 1)].depth, 2) << "jobs=" << jobs;
    }
  }
}

TEST(ObsTest, TaskSpansAreHiddenFromCanonicalOrder) {
  obs::Session session("test");
  {
    const obs::Span outer("outer");
    {
      const obs::Span chunk = obs::Span::task("chunk", 0);
      const obs::Span inner("inner");
    }
  }
  // Task spans drop out; their children re-attach to the nearest kept
  // ancestor.
  const auto canonical = session.canonical_spans(/*include_tasks=*/false);
  ASSERT_EQ(canonical.size(), 2u);
  EXPECT_EQ(canonical[1].path, "outer/inner");
  const auto with_tasks = session.canonical_spans(/*include_tasks=*/true);
  ASSERT_EQ(with_tasks.size(), 3u);
  EXPECT_EQ(with_tasks[1].path, "outer/chunk");
  EXPECT_EQ(with_tasks[2].path, "outer/chunk/inner");
}

// ---------------------------------------------------------------------------
// Determinism across worker counts on the real pipeline
// ---------------------------------------------------------------------------

struct FlowCapture {
  std::string trace;
  std::string report;
  long counters[static_cast<int>(obs::Counter::kCount)] = {};
};

FlowCapture run_instrumented_flow(int jobs) {
  obs::Session session("obs_test", "chu133");
  const sg::StateGraph graph = bench_suite::build_benchmark("chu133");
  core::SynthesisOptions options;
  options.jobs = jobs;
  // The process-wide minimization memo would let a later call skip the
  // minimizer (and its counters) entirely; keep each capture self-contained.
  options.memoize_minimization = false;
  const core::SynthesisResult result = core::synthesize(graph, options);

  sim::ConformanceOptions copt;
  copt.runs = 6;
  copt.max_transitions = 60;
  copt.jobs = jobs;
  const sim::ConformanceReport report = sim::check_conformance(graph, result.circuit, copt);
  EXPECT_TRUE(report.clean());

  FlowCapture capture;
  obs::TraceOptions topt;
  topt.deterministic = true;
  capture.trace = session.trace_json(topt);
  obs::ReportOptions ropt;
  ropt.deterministic = true;
  capture.report = session.report_json(ropt);
  for (int i = 0; i < static_cast<int>(obs::Counter::kCount); ++i)
    capture.counters[i] = session.counter_total(static_cast<obs::Counter>(i));
  return capture;
}

TEST(ObsTest, DeterministicExportsAreByteIdenticalAcrossJobs) {
  const FlowCapture serial = run_instrumented_flow(1);
  const FlowCapture parallel = run_instrumented_flow(8);
  EXPECT_EQ(serial.trace, parallel.trace);
  EXPECT_EQ(serial.report, parallel.report);
  for (int i = 0; i < static_cast<int>(obs::Counter::kCount); ++i) {
    const obs::CounterInfo& info = obs::counter_info(static_cast<obs::Counter>(i));
    if (!info.deterministic) continue;
    EXPECT_EQ(serial.counters[i], parallel.counters[i]) << info.name;
  }
}

TEST(ObsTest, WallClockTraceParsesAndCoversAllSpans) {
  obs::Session session("obs_test");
  const sg::StateGraph graph = bench_suite::build_benchmark("chu133");
  const core::SynthesisResult result = core::synthesize(graph);
  (void)result;
  const std::string trace = session.trace_json();
  // Structural sanity without a JSON parser: the document is an object
  // with a traceEvents array holding one complete event per span.
  EXPECT_EQ(trace.find("{\"traceEvents\":["), 0u);
  const std::size_t events = [&] {
    std::size_t n = 0, pos = 0;
    while ((pos = trace.find("\"ph\":\"X\"", pos)) != std::string::npos) ++n, pos += 8;
    return n;
  }();
  EXPECT_EQ(events, session.canonical_spans(/*include_tasks=*/true).size());
}

// ---------------------------------------------------------------------------
// Golden exporter files
// ---------------------------------------------------------------------------

void compare_with_golden(const std::string& filename, const std::string& actual) {
  const std::string path = std::string(NSHOT_GOLDEN_DIR) + "/" + filename;
  if (std::getenv("NSHOT_UPDATE_GOLDEN") != nullptr) {
    std::ofstream(path) << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with NSHOT_UPDATE_GOLDEN=1 to create it)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << filename
      << " diverged from the golden file; if intended, regenerate with NSHOT_UPDATE_GOLDEN=1";
}

TEST(ObsGoldenTest, DeterministicTrace) {
  compare_with_golden("obs_trace.json", run_instrumented_flow(3).trace);
}

TEST(ObsGoldenTest, DeterministicReport) {
  compare_with_golden("obs_report.json", run_instrumented_flow(3).report);
}

// ---------------------------------------------------------------------------
// RunConfig extraction: source compatibility
// ---------------------------------------------------------------------------

TEST(RunConfigTest, SharedFieldsReachEveryOptionsStruct) {
  RunConfig shared;
  shared.seed = 99;
  shared.jobs = 3;
  shared.grain = 16;
  shared.reference_kernels = true;

  core::SynthesisOptions synthesis;
  sim::ConformanceOptions conformance;
  faults::StressOptions stress;
  faults::AdversarialOptions adversarial;
  core::TriggerOptions trigger;
  logic::ExactOptions exact;
  synthesis.apply_run_config(shared);
  conformance.apply_run_config(shared);
  stress.apply_run_config(shared);
  adversarial.apply_run_config(shared);
  trigger.apply_run_config(shared);
  exact.apply_run_config(shared);
  for (const RunConfig& config :
       {static_cast<const RunConfig&>(synthesis), static_cast<const RunConfig&>(conformance),
        static_cast<const RunConfig&>(stress), static_cast<const RunConfig&>(adversarial),
        static_cast<const RunConfig&>(trigger), static_cast<const RunConfig&>(exact)}) {
    EXPECT_EQ(config.seed, 99u);
    EXPECT_EQ(config.jobs, 3);
    EXPECT_EQ(config.grain, 16);
    EXPECT_TRUE(config.reference_kernels);
  }
}

TEST(RunConfigTest, OldMemberSpellingsStillCompile) {
  // The pre-extraction code assigned these members directly on each struct;
  // inheritance keeps every spelling valid.
  sim::ConformanceOptions conformance;
  conformance.seed = 7;
  conformance.jobs = 2;
  conformance.grain = 4;
  conformance.reference_kernels = true;
  EXPECT_EQ(conformance.seed, 7u);

  faults::StressOptions stress;
  stress.seed = 11;
  stress.margin_runs = 3;
  EXPECT_EQ(stress.seed, 11u);

  core::SynthesisOptions synthesis;
  synthesis.jobs = 5;
  EXPECT_EQ(synthesis.jobs, 5);
}

// The deprecated per-struct aliases (ExactOptions::reference_sets,
// TriggerOptions::reference_membership) shipped one release of warnings
// and were removed: RunConfig::reference_kernels is the only spelling.
// Member-detection asserts they stay gone — re-adding either is a
// compile-time test failure, not a silent back-compat regression.
template <typename T, typename = void>
struct has_reference_sets : std::false_type {};
template <typename T>
struct has_reference_sets<T, std::void_t<decltype(std::declval<T>().reference_sets)>>
    : std::true_type {};

template <typename T, typename = void>
struct has_reference_membership : std::false_type {};
template <typename T>
struct has_reference_membership<T, std::void_t<decltype(std::declval<T>().reference_membership)>>
    : std::true_type {};

TEST(RunConfigTest, DeprecatedReferenceAliasesAreGone) {
  static_assert(!has_reference_sets<logic::ExactOptions>::value,
                "ExactOptions::reference_sets was removed; use reference_kernels");
  static_assert(!has_reference_membership<core::TriggerOptions>::value,
                "TriggerOptions::reference_membership was removed; use reference_kernels");

  // The shared spelling still reaches both consumers.
  logic::ExactOptions exact;
  exact.reference_kernels = true;
  EXPECT_TRUE(exact.reference_kernels);
  core::TriggerOptions trigger;
  trigger.reference_kernels = true;
  EXPECT_TRUE(trigger.reference_kernels);
}

TEST(RunConfigTest, DefaultsAreUnchanged) {
  const RunConfig config;
  EXPECT_EQ(config.seed, 1u);
  EXPECT_EQ(config.jobs, 0);
  EXPECT_EQ(config.grain, 0);
  EXPECT_FALSE(config.reference_kernels);
}

// ---------------------------------------------------------------------------
// The Pipeline facade
// ---------------------------------------------------------------------------

TEST(PipelineTest, RunsSynthesisAndConformanceWithOneCall) {
  PipelineOptions options;
  options.conformance.runs = 4;
  options.conformance.max_transitions = 60;
  Pipeline pipeline(std::move(options));
  const PipelineRun run = pipeline.run(bench_suite::build_benchmark("chu133"));
  EXPECT_EQ(run.benchmark, "chu133");
  EXPECT_TRUE(run.conformance_ran);
  EXPECT_FALSE(run.stress_ran);
  EXPECT_TRUE(run.ok());
  EXPECT_GT(run.synthesis.cover.size(), 0u);

  // The owned session saw the library spans.  Look passes up by name:
  // build_benchmark parses .g text inside the session, so "reachability"
  // precedes "synthesize" in first-appearance order.
  const obs::RunReport report = pipeline.report();
  const auto has_pass = [&](const char* name) {
    for (const obs::PassTime& pass : report.passes)
      if (pass.name == name) return true;
    return false;
  };
  ASSERT_GE(report.passes.size(), 2u);
  EXPECT_TRUE(has_pass("synthesize"));
  EXPECT_TRUE(has_pass("conformance"));
  EXPECT_GT(report.total_ms, 0.0);
}

TEST(PipelineTest, SharedRunConfigPropagatesToStages) {
  PipelineOptions options;
  options.run.jobs = 2;
  options.run.seed = 77;
  options.verify_conformance = false;
  options.collect_observability = false;
  Pipeline pipeline(std::move(options));
  EXPECT_EQ(pipeline.options().synthesis.jobs, 2);
  EXPECT_EQ(pipeline.options().conformance.seed, 77u);
  EXPECT_EQ(pipeline.options().stress.seed, 77u);
  EXPECT_EQ(pipeline.options().stress.adversarial.jobs, 2);
  EXPECT_EQ(pipeline.session(), nullptr);
  const std::string trace = pipeline.trace_json();
  EXPECT_EQ(trace.find("{\"traceEvents\":["), 0u);
}

TEST(PipelineTest, RunGBuildsTheStateGraphThroughReachability) {
  PipelineOptions options;
  options.conformance.runs = 2;
  options.conformance.max_transitions = 40;
  Pipeline pipeline(std::move(options));
  // Two-phase handshake: one input req, one output ack.
  const PipelineRun run = pipeline.run_g(
      ".model tiny\n"
      ".inputs req\n"
      ".outputs ack\n"
      ".graph\n"
      "req+ ack+\n"
      "ack+ req-\n"
      "req- ack-\n"
      "ack- req+\n"
      ".marking {<ack-,req+>}\n"
      ".end\n");
  EXPECT_EQ(run.graph.num_states(), 4);
  EXPECT_TRUE(run.ok());
  // run_g's reachability pass lands in the report ahead of synthesis.
  const obs::RunReport report = pipeline.report();
  ASSERT_GE(report.passes.size(), 2u);
  EXPECT_EQ(report.passes[0].name, "reachability");
}

TEST(PipelineTest, StaysUninstrumentedWhenASessionAlreadyExists) {
  obs::Session outer("outer");
  PipelineOptions options;
  options.verify_conformance = false;
  Pipeline pipeline(std::move(options));
  EXPECT_EQ(pipeline.session(), nullptr);  // refused to double-collect
  (void)pipeline.run(bench_suite::build_benchmark("chu133"));
  EXPECT_FALSE(outer.canonical_spans().empty());  // outer session got the spans
}

}  // namespace
}  // namespace nshot
