#include "logic/verify.hpp"

namespace nshot::logic {

VerifyResult verify_cover(const TwoLevelSpec& spec, const Cover& cover) {
  for (int o = 0; o < spec.num_outputs(); ++o) {
    for (const std::uint64_t code : spec.on(o)) {
      if (!cover.covers(code, o))
        return {false, "on-minterm " + std::to_string(code) + " of output " + std::to_string(o) +
                           " is not covered"};
    }
    for (const std::uint64_t code : spec.off(o)) {
      if (cover.covers(code, o))
        return {false, "off-minterm " + std::to_string(code) + " of output " + std::to_string(o) +
                           " is covered"};
    }
  }
  return {};
}

VerifyResult verify_irredundant(const TwoLevelSpec& spec, const Cover& cover) {
  for (std::size_t i = 0; i < cover.size(); ++i) {
    bool needed = false;
    for (int o = 0; o < spec.num_outputs() && !needed; ++o) {
      if (!cover[i].has_output(o)) continue;
      for (const std::uint64_t code : spec.on(o)) {
        if (!cover[i].covers_minterm(code)) continue;
        bool elsewhere = false;
        for (std::size_t j = 0; j < cover.size() && !elsewhere; ++j)
          elsewhere = j != i && cover[j].has_output(o) && cover[j].covers_minterm(code);
        if (!elsewhere) {
          needed = true;
          break;
        }
      }
    }
    if (!needed)
      return {false, "cube " + std::to_string(i) + " (" + cover[i].to_string() + ") is redundant"};
  }
  return {};
}

}  // namespace nshot::logic
