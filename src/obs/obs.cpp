#include "obs/obs.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "util/error.hpp"
#include "util/json.hpp"

namespace nshot::obs {

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kNumCounters = static_cast<int>(Counter::kCount);
constexpr int kNumGauges = static_cast<int>(Gauge::kCount);

constexpr CounterInfo kCounterTable[kNumCounters] = {
    {"states_visited", true},
    {"regions_extracted", true},
    {"cubes_expanded", true},
    {"primes_generated", true},
    {"trigger_cubes_added", true},
    {"trials_run", true},
    {"kernel_mismatches", true},
    {"kernel_fallbacks", true},
    {"faults_injected", true},
    {"batch_trials", true},
    {"adversarial_evaluations", false},
    {"memo_hits", false},
    {"memo_misses", false},
    {"batch_peels", false},
    {"batch_lockstep_shared", false},
    {"calendar_resizes", false},
    {"serve_admitted", false},
    {"serve_rejected", false},
    {"serve_completed", false},
};

constexpr GaugeInfo kGaugeTable[kNumGauges] = {
    {"omega_slack", true},
    {"eq1_slack", true},
    {"calendar_fill", false},
};

/// One completed span as recorded by its owning thread.
struct SpanRecord {
  const char* name = "";
  std::int64_t id = 0;
  std::int64_t parent = 0;  // 0 = session root
  long index = -1;
  bool task = false;
  double t0_us = 0.0;
  double t1_us = 0.0;
};

/// Per-thread collection buffer.  The owning thread appends under
/// `mutex`; the session reader locks the same mutex at snapshot time, so
/// reads are race-free even without an external join (the join is still
/// required for COMPLETENESS — see the lifecycle contract in obs.hpp).
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<SpanRecord> spans;
  std::atomic<long> counters[kNumCounters] = {};
  GaugeStats gauges[kNumGauges];  // guarded by mutex (low frequency)

  void clear() {
    std::lock_guard<std::mutex> lock(mutex);
    spans.clear();
    for (auto& c : counters) c.store(0, std::memory_order_relaxed);
    for (auto& g : gauges) g = GaugeStats{};
  }
};

/// Registry of every thread buffer ever created.  Buffers are leaked on
/// purpose: a thread's buffer pointer stays valid for the process
/// lifetime, so instrumentation can never dangle across session
/// boundaries; a new session simply clears the contents.
struct Registry {
  std::mutex mutex;
  std::vector<ThreadBuffer*> buffers;
  std::atomic<bool> session_active{false};
  Clock::time_point t0;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

std::atomic<std::int64_t> g_next_span_id{1};

thread_local ThreadBuffer* t_buffer = nullptr;
thread_local std::vector<std::int64_t> t_stack;  // innermost active span ids

ThreadBuffer& thread_buffer() {
  if (t_buffer == nullptr) {
    auto* buffer = new ThreadBuffer;  // leaked via the registry, see above
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.buffers.push_back(buffer);
    t_buffer = buffer;
  }
  return *t_buffer;
}

double now_us() {
  return std::chrono::duration<double, std::micro>(Clock::now() - registry().t0).count();
}

}  // namespace

const CounterInfo& counter_info(Counter c) { return kCounterTable[static_cast<int>(c)]; }
const GaugeInfo& gauge_info(Gauge g) { return kGaugeTable[static_cast<int>(g)]; }
const char* gauge_name(Gauge g) { return kGaugeTable[static_cast<int>(g)].name; }

namespace detail {

std::atomic<bool> g_enabled{false};
int (*g_default_jobs_provider)() = nullptr;

void count_slow(Counter c, long delta) {
  thread_buffer().counters[static_cast<int>(c)].fetch_add(delta, std::memory_order_relaxed);
}

void gauge_slow(Gauge g, double value) {
  ThreadBuffer& buffer = thread_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  GaugeStats& stats = buffer.gauges[static_cast<int>(g)];
  if (stats.count == 0 || value < stats.min) stats.min = value;
  if (stats.count == 0 || value > stats.max) stats.max = value;
  stats.sum += value;
  ++stats.count;
}

std::int64_t current_context() {
#ifdef NSHOT_OBS_DISABLE
  return 0;
#else
  if (!enabled()) return 0;
  return t_stack.empty() ? 0 : t_stack.back();
#endif
}

ContextScope::ContextScope(std::int64_t context) {
#ifndef NSHOT_OBS_DISABLE
  if (context != 0 && enabled()) {
    t_stack.push_back(context);
    pushed_ = true;
  }
#else
  (void)context;
#endif
}

ContextScope::~ContextScope() {
#ifndef NSHOT_OBS_DISABLE
  if (pushed_) t_stack.pop_back();
#endif
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

#ifndef NSHOT_OBS_DISABLE

Span::Span(const char* name, long index) : Span(name, index, /*is_task=*/false) {}

Span Span::task(const char* name, long index) { return Span(name, index, /*is_task=*/true); }

Span::Span(const char* name, long index, bool is_task) {
  if (!enabled()) return;
  active_ = true;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  start_us_ = now_us();
  ThreadBuffer& buffer = thread_buffer();
  SpanRecord record;
  record.name = name;
  record.id = id_;
  record.parent = t_stack.empty() ? 0 : t_stack.back();
  record.index = index;
  record.task = is_task;
  record.t0_us = start_us_;
  record.t1_us = start_us_;  // finalized in the destructor
  {
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.spans.push_back(record);
  }
  t_stack.push_back(id_);
}

Span::~Span() {
  if (!active_) return;
  // Balanced by construction: the matching push happened on this thread.
  if (!t_stack.empty() && t_stack.back() == id_) t_stack.pop_back();
  const double end = now_us();
  ThreadBuffer& buffer = thread_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  for (auto it = buffer.spans.rbegin(); it != buffer.spans.rend(); ++it) {
    if (it->id == id_) {
      it->t1_us = end;
      break;
    }
  }
}

#endif  // NSHOT_OBS_DISABLE

Span::Span(Span&& other) noexcept
    : active_(other.active_), id_(other.id_), start_us_(other.start_us_) {
  other.active_ = false;
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(std::string tool, std::string label)
    : tool_(std::move(tool)), label_(std::move(label)) {
#ifndef NSHOT_OBS_DISABLE
  Registry& r = registry();
  NSHOT_ASSERT(!r.session_active.exchange(true), "an obs::Session is already active");
  active_ = true;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    for (ThreadBuffer* buffer : r.buffers) buffer->clear();
  }
  g_next_span_id.store(1, std::memory_order_relaxed);
  r.t0 = Clock::now();
  detail::g_enabled.store(true, std::memory_order_release);
#endif
}

Session::~Session() {
#ifndef NSHOT_OBS_DISABLE
  if (!active_) return;
  detail::g_enabled.store(false, std::memory_order_release);
  registry().session_active.store(false);
#endif
}

namespace {

/// Snapshot of every buffer, merged: all span records plus counter and
/// gauge totals.
struct Snapshot {
  std::vector<SpanRecord> spans;
  long counters[kNumCounters] = {};
  GaugeStats gauges[kNumGauges];
  double elapsed_ms = 0.0;
};

Snapshot take_snapshot() {
  Snapshot snap;
  Registry& r = registry();
  std::lock_guard<std::mutex> registry_lock(r.mutex);
  for (ThreadBuffer* buffer : r.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    snap.spans.insert(snap.spans.end(), buffer->spans.begin(), buffer->spans.end());
    for (int i = 0; i < kNumCounters; ++i)
      snap.counters[i] += buffer->counters[i].load(std::memory_order_relaxed);
    for (int i = 0; i < kNumGauges; ++i) {
      const GaugeStats& g = buffer->gauges[i];
      if (g.count == 0) continue;
      GaugeStats& total = snap.gauges[i];
      if (total.count == 0 || g.min < total.min) total.min = g.min;
      if (total.count == 0 || g.max > total.max) total.max = g.max;
      total.sum += g.sum;
      total.count += g.count;
    }
  }
  snap.elapsed_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - r.t0).count();
  return snap;
}

/// The merged span tree.  Children are kept in canonical order: sorted by
/// (name, index, id).  Name/index are the caller-chosen stable identity;
/// the id tiebreak only orders same-key siblings, which by the
/// instrumentation contract are created serially on one thread, where id
/// allocation order IS program order.
struct TreeNode {
  const SpanRecord* record = nullptr;  // null for the root
  std::vector<TreeNode*> children;
};

struct Tree {
  std::vector<std::unique_ptr<TreeNode>> storage;
  TreeNode* root = nullptr;

  explicit Tree(const std::vector<SpanRecord>& spans, bool include_tasks) {
    storage.push_back(std::make_unique<TreeNode>());
    root = storage.back().get();
    std::unordered_map<std::int64_t, const SpanRecord*> record_of;
    std::unordered_map<std::int64_t, TreeNode*> by_id;
    record_of.reserve(spans.size());
    by_id.reserve(spans.size());
    for (const SpanRecord& record : spans) record_of.emplace(record.id, &record);
    for (const SpanRecord& record : spans) {
      if (record.task && !include_tasks) continue;
      storage.push_back(std::make_unique<TreeNode>());
      storage.back()->record = &record;
      by_id.emplace(record.id, storage.back().get());
    }
    for (const auto& node : storage) {
      if (node->record == nullptr) continue;
      // A dropped task span hoists its children to the nearest kept
      // ancestor (walking up through any chain of task spans).
      std::int64_t parent = node->record->parent;
      while (parent != 0 && by_id.find(parent) == by_id.end()) {
        const auto up = record_of.find(parent);
        parent = up != record_of.end() ? up->second->parent : 0;
      }
      const auto it = by_id.find(parent);
      (it != by_id.end() ? it->second : root)->children.push_back(node.get());
    }
    for (const auto& node : storage) {
      std::sort(node->children.begin(), node->children.end(),
                [](const TreeNode* a, const TreeNode* b) {
                  const int cmp = std::strcmp(a->record->name, b->record->name);
                  if (cmp != 0) return cmp < 0;
                  if (a->record->index != b->record->index)
                    return a->record->index < b->record->index;
                  return a->record->id < b->record->id;
                });
    }
  }
};

void flatten(const TreeNode* node, const std::string& prefix, int depth,
             std::vector<CanonicalSpan>& out) {
  for (const TreeNode* child : node->children) {
    // Local copy: recursing with a reference into `out` would dangle when
    // the vector reallocates.
    const std::string path =
        prefix.empty() ? child->record->name : prefix + "/" + child->record->name;
    CanonicalSpan span;
    span.path = path;
    span.index = child->record->index;
    span.depth = depth;
    out.push_back(std::move(span));
    flatten(child, path, depth + 1, out);
  }
}

}  // namespace

long Session::counter_total(Counter c) const {
  return take_snapshot().counters[static_cast<int>(c)];
}

GaugeStats Session::gauge_stats(Gauge g) const {
  return take_snapshot().gauges[static_cast<int>(g)];
}

std::vector<CanonicalSpan> Session::canonical_spans(bool include_tasks) const {
  const Snapshot snap = take_snapshot();
  const Tree tree(snap.spans, include_tasks);
  std::vector<CanonicalSpan> out;
  flatten(tree.root, "", 1, out);
  return out;
}

namespace {

/// Emit one span subtree as Chrome "complete" (ph:X) events.  In
/// deterministic mode timestamps are logical: ts is the preorder tick at
/// entry and dur spans the subtree's ticks, so nesting is preserved
/// without any wall-clock content.
void write_span_events(JsonWriter& json, const TreeNode* node,
                       const std::unordered_map<const SpanRecord*, int>& tids,
                       bool deterministic, long& tick) {
  for (const TreeNode* child : node->children) {
    const SpanRecord& record = *child->record;
    json.begin_object();
    json.key("name").value(record.name);
    json.key("cat").value(record.task ? "task" : "pass");
    json.key("ph").value("X");
    if (deterministic) {
      const long ts = tick++;
      // Children consume ticks; dur is assigned after they are emitted,
      // so compute the subtree first into the same writer via recursion
      // ordering: emit ts now, recurse, then we know the exit tick.
      // JsonWriter is append-only, so instead pre-count the subtree size.
      long subtree = 0;
      std::vector<const TreeNode*> stack(child->children.begin(), child->children.end());
      while (!stack.empty()) {
        const TreeNode* n = stack.back();
        stack.pop_back();
        ++subtree;
        stack.insert(stack.end(), n->children.begin(), n->children.end());
      }
      json.key("ts").value(ts);
      json.key("dur").value(subtree * 2 + 1);
      json.key("pid").value(1);
      json.key("tid").value(0);
    } else {
      json.key("ts").value(record.t0_us);
      json.key("dur").value(record.t1_us - record.t0_us);
      json.key("pid").value(1);
      json.key("tid").value(tids.at(&record));
    }
    if (record.index >= 0) {
      json.key("args").begin_object();
      json.key("index").value(record.index);
      json.end_object();
    }
    json.end_object();
    write_span_events(json, child, tids, deterministic, tick);
    if (deterministic) ++tick;  // exit tick keeps sibling intervals disjoint
  }
}

}  // namespace

std::string Session::trace_json(const TraceOptions& options) const {
  const Snapshot snap = take_snapshot();

  // Wall-clock mode: tid = the buffer ordinal the span was recorded on.
  // Rebuild that mapping from record pointers (records were concatenated
  // buffer by buffer in take_snapshot, but pointers into snap.spans do not
  // say which buffer — so recompute by re-walking the registry order).
  std::unordered_map<const SpanRecord*, int> tids;
  if (!options.deterministic) {
    // take_snapshot concatenated buffers in registry order; recover the
    // boundaries by matching span ids per buffer.
    std::unordered_map<std::int64_t, int> tid_of_id;
    {
      Registry& r = registry();
      std::lock_guard<std::mutex> registry_lock(r.mutex);
      int tid = 0;
      for (ThreadBuffer* buffer : r.buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        for (const SpanRecord& record : buffer->spans) tid_of_id[record.id] = tid;
        ++tid;
      }
    }
    for (const SpanRecord& record : snap.spans) tids[&record] = tid_of_id[record.id];
  }

  const Tree tree(snap.spans, /*include_tasks=*/!options.deterministic);

  JsonWriter json;
  json.begin_object();
  json.key("traceEvents").begin_array();
  long tick = 0;
  write_span_events(json, tree.root, tids, options.deterministic, tick);

  // Counter totals as one Chrome counter event at the end of the trace.
  json.begin_object();
  json.key("name").value("counters");
  json.key("ph").value("C");
  json.key("ts").value(options.deterministic ? static_cast<double>(tick) : snap.elapsed_ms * 1e3);
  json.key("pid").value(1);
  json.key("args").begin_object();
  for (int i = 0; i < kNumCounters; ++i) {
    if (options.deterministic && !kCounterTable[i].deterministic) continue;
    json.key(kCounterTable[i].name).value(snap.counters[i]);
  }
  json.end_object();
  json.end_object();

  json.end_array();
  json.key("displayTimeUnit").value("ms");
  json.key("otherData").begin_object();
  json.key("tool").value(tool_);
  json.key("label").value(label_);
  json.key("deterministic").value(options.deterministic);
  json.end_object();
  json.end_object();
  return json.str() + "\n";
}

RunReport Session::report() const {
  const Snapshot snap = take_snapshot();
  const Tree tree(snap.spans, /*include_tasks=*/false);

  RunReport report;
  report.tool = tool_;
  report.label = label_;
  report.total_ms = snap.elapsed_ms;
  report.peak_rss_kb = peak_rss_kb();
  report.hardware_jobs = static_cast<int>(std::thread::hardware_concurrency());
  if (detail::g_default_jobs_provider) report.default_jobs = detail::g_default_jobs_provider();
  for (int i = 0; i < kNumCounters; ++i) report.counters[i] = snap.counters[i];
  for (int i = 0; i < kNumGauges; ++i) report.gauges[i] = snap.gauges[i];

  // Depth-1 spans aggregated by name, ordered by first start time: these
  // are the pipeline passes.
  std::vector<const TreeNode*> top(tree.root->children.begin(), tree.root->children.end());
  std::sort(top.begin(), top.end(), [](const TreeNode* a, const TreeNode* b) {
    return a->record->t0_us < b->record->t0_us;
  });
  std::map<std::string, std::size_t> slot;
  for (const TreeNode* node : top) {
    const SpanRecord& record = *node->record;
    const auto it = slot.find(record.name);
    if (it == slot.end()) {
      slot.emplace(record.name, report.passes.size());
      report.passes.push_back({record.name, (record.t1_us - record.t0_us) / 1e3, 1});
    } else {
      PassTime& pass = report.passes[it->second];
      pass.wall_ms += (record.t1_us - record.t0_us) / 1e3;
      ++pass.spans;
    }
  }
  return report;
}

double RunReport::attributed_ms() const {
  double total = 0.0;
  for (const PassTime& pass : passes) total += pass.wall_ms;
  return total;
}

std::string Session::report_json(const ReportOptions& options) const {
  return obs::report_json(report(), options);
}

std::string report_json(const RunReport& report, const ReportOptions& options) {
  JsonWriter json;
  json.begin_object();
  json.key("tool").value(report.tool);
  json.key("label").value(report.label);
  if (!options.deterministic) {
    json.key("total_ms").value(report.total_ms);
    json.key("attributed_ms").value(report.attributed_ms());
    json.key("peak_rss_kb").value(report.peak_rss_kb);
    json.key("hardware_jobs").value(report.hardware_jobs);
    json.key("jobs").value(report.default_jobs);
  }
  json.key("passes").begin_array();
  for (const PassTime& pass : report.passes) {
    json.begin_object();
    json.key("name").value(pass.name);
    if (!options.deterministic) json.key("wall_ms").value(pass.wall_ms);
    json.key("spans").value(pass.spans);
    json.end_object();
  }
  json.end_array();
  json.key("counters").begin_object();
  for (int i = 0; i < kNumCounters; ++i) {
    if (options.deterministic && !kCounterTable[i].deterministic) continue;
    json.key(kCounterTable[i].name).value(report.counters[i]);
  }
  json.end_object();
  json.key("gauges").begin_object();
  for (int i = 0; i < kNumGauges; ++i) {
    if (options.deterministic && !kGaugeTable[i].deterministic) continue;
    const GaugeStats& stats = report.gauges[i];
    json.key(kGaugeTable[i].name).begin_object();
    json.key("count").value(stats.count);
    if (stats.count > 0) {
      json.key("min").value(stats.min);
      json.key("max").value(stats.max);
      if (!options.deterministic) json.key("mean").value(stats.mean());
    }
    json.end_object();
  }
  json.end_object();
  json.end_object();
  return json.str() + "\n";
}

std::string passes_json_fragment(const RunReport& report) {
  JsonWriter json;
  json.begin_array();
  for (const PassTime& pass : report.passes) {
    json.begin_object();
    json.key("name").value(pass.name);
    json.key("wall_ms").value(pass.wall_ms);
    json.key("spans").value(pass.spans);
    json.end_object();
  }
  json.end_array();
  return "\"passes\": " + json.str();
}

long peak_rss_kb() {
  struct rusage usage = {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<long>(usage.ru_maxrss);  // KB on Linux
}

bool session_active() {
#ifdef NSHOT_OBS_DISABLE
  return false;
#else
  return registry().session_active.load();
#endif
}

}  // namespace nshot::obs
