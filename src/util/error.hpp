// Error handling helpers shared by all nshot libraries.
//
// All precondition violations and invalid-input conditions are reported by
// throwing nshot::Error (a std::runtime_error).  The NSHOT_REQUIRE macro is
// used at public API boundaries; internal invariants use NSHOT_ASSERT which
// also throws (never aborts) so that library users can recover.
#pragma once

#include <stdexcept>
#include <string>

namespace nshot {

/// Base exception type for all errors raised by the nshot libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void raise_error(const char* file, int line, const std::string& message);

}  // namespace nshot

/// Check a caller-visible precondition; throws nshot::Error on failure.
#define NSHOT_REQUIRE(cond, msg)                                  \
  do {                                                            \
    if (!(cond)) ::nshot::raise_error(__FILE__, __LINE__, (msg)); \
  } while (false)

/// Check an internal invariant; throws nshot::Error on failure.
#define NSHOT_ASSERT(cond, msg)                                                            \
  do {                                                                                     \
    if (!(cond)) ::nshot::raise_error(__FILE__, __LINE__, std::string("internal: ") + (msg)); \
  } while (false)
