// Regenerates Figure 4: the response of the MHS flip-flop to excitation
// pulses of varying width.  Pulses shorter than the threshold ω are not
// transmitted; pulses of width >= ω produce an output transition simply
// translated forward in time by τ.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <optional>

#include "gatelib/gate_library.hpp"
#include "netlist/netlist.hpp"
#include "sim/event_sim.hpp"

namespace {

using namespace nshot;
using gatelib::GateType;
using netlist::Gate;
using netlist::NetId;
using netlist::Netlist;

struct MhsHarness {
  Netlist nl{"mhs"};
  NetId set, reset, en_set, en_reset, q, qb;

  MhsHarness() {
    set = nl.add_net("set");
    reset = nl.add_net("reset");
    en_set = nl.add_net("en_set");
    en_reset = nl.add_net("en_reset");
    q = nl.add_net("q");
    qb = nl.add_net("qb");
    for (const NetId n : {set, reset, en_set, en_reset}) nl.add_primary_input(n);
    nl.add_gate(Gate{.type = GateType::kMhsFlipFlop,
                     .name = "ff",
                     .inputs = {set, reset, en_set, en_reset},
                     .outputs = {q, qb}});
  }
};

/// Fire one set pulse of the given width; return the q-rise time if any.
std::optional<double> response_to_pulse(double width) {
  const gatelib::GateLibrary& lib = gatelib::GateLibrary::standard();
  MhsHarness h;
  sim::SimulatorOptions options;
  options.randomize_delays = false;
  sim::Simulator sim(h.nl, lib, options);
  std::optional<double> rise;
  sim.set_observer([&](NetId n, bool v, double t) {
    if (n == h.q && v) rise = t;
  });
  sim.initialize({{h.set, false}, {h.reset, false}, {h.en_set, true}, {h.en_reset, true},
                  {h.q, false}, {h.qb, true}});
  sim.set_input(h.set, true, 10.0);
  sim.set_input(h.set, false, 10.0 + width);
  sim.run_until(1000.0);
  return rise;
}

void print_figure() {
  const gatelib::GateLibrary& lib = gatelib::GateLibrary::standard();
  std::printf("Figure 4: MHS flip-flop response (omega = %.2f, tau = %.2f)\n\n",
              lib.mhs_threshold(), lib.mhs_response());
  std::printf("%-12s %-12s %-14s %s\n", "pulse width", "fires?", "output latency",
              "(latency measured from the pulse's rising edge)");
  for (const double width : {0.05, 0.10, 0.15, 0.20, 0.25, 0.29, 0.30, 0.35, 0.50, 0.80,
                             1.20, 2.00, 4.00}) {
    const auto rise = response_to_pulse(width);
    if (rise)
      std::printf("%-12.2f %-12s %-14.2f\n", width, "yes", *rise - 10.0);
    else
      std::printf("%-12.2f %-12s %-14s\n", width, "no (absorbed)", "-");
  }
  std::printf(
      "\nSeries shape as in the paper: a hard threshold at omega; every\n"
      "super-threshold pulse appears at the output delayed by exactly tau.\n");
}

void bm_mhs_pulse(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(response_to_pulse(1.0));
}
BENCHMARK(bm_mhs_pulse);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
