file(REMOVE_RECURSE
  "CMakeFiles/bench_area_breakdown.dir/bench_area_breakdown.cpp.o"
  "CMakeFiles/bench_area_breakdown.dir/bench_area_breakdown.cpp.o.d"
  "bench_area_breakdown"
  "bench_area_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_area_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
